// End-to-end ORB behavior over the simulated network.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {
namespace {

struct OrbFixture : public ::testing::Test {
  OrbFixture()
      : net(engine),
        client_node(net.add_node("client")),
        server_node(net.add_node("server")),
        client_cpu(engine, "client-cpu"),
        server_cpu(engine, "server-cpu"),
        client(net, client_node, client_cpu),
        server(net, server_node, server_cpu) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 100e6;
    cfg.propagation = microseconds(100);
    net.add_duplex_link(client_node, server_node, cfg);
  }

  /// Registers an echo servant; returns its reference.
  ObjectRef make_echo(Poa& poa, Duration cost = microseconds(100)) {
    auto servant = std::make_shared<FunctionServant>(cost, [](ServerRequest& req) {
      req.reply_body = req.body;  // echo
    });
    return poa.activate_object("echo", std::move(servant));
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId client_node;
  net::NodeId server_node;
  os::Cpu client_cpu;
  os::Cpu server_cpu;
  OrbEndpoint client;
  OrbEndpoint server;
};

TEST_F(OrbFixture, TwowayEchoRoundTrip) {
  Poa& poa = server.create_poa("app");
  const ObjectRef ref = make_echo(poa);
  std::optional<CompletionStatus> status;
  std::vector<std::uint8_t> reply;
  client.invoke(ref, "echo", {1, 2, 3}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t> body) {
                  status = s;
                  reply = std::move(body);
                });
  engine.run();
  ASSERT_TRUE(status);
  EXPECT_EQ(*status, CompletionStatus::Ok);
  EXPECT_EQ(reply, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(client.stats().requests_sent, 1u);
  EXPECT_EQ(client.stats().replies_ok, 1u);
  EXPECT_EQ(server.stats().requests_dispatched, 1u);
}

TEST_F(OrbFixture, OnewayDeliversWithoutReply) {
  Poa& poa = server.create_poa("app");
  int handled = 0;
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [&](ServerRequest&) { ++handled; });
  const ObjectRef ref = poa.activate_object("sink", std::move(servant));
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "push", {42}, opts);
  engine.run();
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(client.stats().replies_ok, 0u);
}

TEST_F(OrbFixture, UnknownObjectAnswersObjectNotExist) {
  server.create_poa("app");
  ObjectRef bogus;
  bogus.node = server_node;
  bogus.object_key = "app/missing";
  std::optional<CompletionStatus> status;
  client.invoke(bogus, "op", {}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_TRUE(status);
  EXPECT_EQ(*status, CompletionStatus::ObjectNotExist);
}

TEST_F(OrbFixture, UnknownPoaAnswersObjectNotExist) {
  ObjectRef bogus;
  bogus.node = server_node;
  bogus.object_key = "ghost/obj";
  std::optional<CompletionStatus> status;
  client.invoke(bogus, "op", {}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::ObjectNotExist);
}

TEST_F(OrbFixture, TimeoutWhenServerUnreachable) {
  // Reference points at a node with no ORB message handler: request is
  // swallowed, client must time out.
  const net::NodeId ghost = net.add_node("ghost");
  net::LinkConfig cfg;
  net.add_duplex_link(client_node, ghost, cfg);
  ObjectRef ref;
  ref.node = ghost;
  ref.object_key = "a/b";
  std::optional<CompletionStatus> status;
  std::optional<TimePoint> when;
  InvokeOptions opts;
  opts.timeout = milliseconds(500);
  client.invoke(ref, "op", {}, opts, [&](CompletionStatus s, std::vector<std::uint8_t>) {
    status = s;
    when = engine.now();
  });
  engine.run();
  ASSERT_TRUE(status);
  EXPECT_EQ(*status, CompletionStatus::Timeout);
  EXPECT_GE(when->ns(), milliseconds(500).ns());
  EXPECT_EQ(client.stats().timeouts, 1u);
}

TEST_F(OrbFixture, ServantExceptionMapsToStatus) {
  Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<FunctionServant>(
      microseconds(10), [](ServerRequest&) { throw Transient("overloaded"); });
  const ObjectRef ref = poa.activate_object("flaky", std::move(servant));
  std::optional<CompletionStatus> status;
  client.invoke(ref, "op", {}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::Transient);
  EXPECT_EQ(client.stats().replies_error, 1u);
}

TEST_F(OrbFixture, ClientPropagatedPriorityReachesServant) {
  PoaPolicies policies;
  policies.priority_model = PriorityModel::ClientPropagated;
  Poa& poa = server.create_poa("app", policies);
  std::optional<CorbaPriority> seen;
  auto servant = std::make_shared<FunctionServant>(
      microseconds(10), [&](ServerRequest& req) { seen = req.priority; });
  const ObjectRef ref = poa.activate_object("obj", std::move(servant));

  client.set_client_priority(21'000);
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "op", {}, opts);
  engine.run();
  ASSERT_TRUE(seen);
  EXPECT_EQ(*seen, 21'000);
}

TEST_F(OrbFixture, ServerDeclaredPriorityOverridesClient) {
  PoaPolicies policies;
  policies.priority_model = PriorityModel::ServerDeclared;
  policies.server_priority = 30'000;
  Poa& poa = server.create_poa("app", policies);
  std::optional<CorbaPriority> seen;
  auto servant = std::make_shared<FunctionServant>(
      microseconds(10), [&](ServerRequest& req) { seen = req.priority; });
  const ObjectRef ref = poa.activate_object("obj", std::move(servant));
  EXPECT_EQ(ref.priority_model, PriorityModel::ServerDeclared);
  EXPECT_EQ(ref.server_priority, 30'000);

  client.set_client_priority(100);
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "op", {}, opts);
  engine.run();
  ASSERT_TRUE(seen);
  EXPECT_EQ(*seen, 30'000);
}

TEST_F(OrbFixture, PerInvokePriorityOverride) {
  Poa& poa = server.create_poa("app");
  std::optional<CorbaPriority> seen;
  auto servant = std::make_shared<FunctionServant>(
      microseconds(10), [&](ServerRequest& req) { seen = req.priority; });
  const ObjectRef ref = poa.activate_object("obj", std::move(servant));
  InvokeOptions opts;
  opts.oneway = true;
  opts.priority = 12'345;
  client.invoke(ref, "op", {}, opts);
  engine.run();
  EXPECT_EQ(seen, 12'345);
}

TEST_F(OrbFixture, TimestampContextGivesClientSendTime) {
  Poa& poa = server.create_poa("app");
  std::optional<TimePoint> send_time;
  std::optional<TimePoint> handled_at;
  auto servant = std::make_shared<FunctionServant>(
      milliseconds(1), [&](ServerRequest& req) {
        send_time = req.client_send_time;
        handled_at = req.handled_at;
      });
  const ObjectRef ref = poa.activate_object("obj", std::move(servant));
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "op", std::vector<std::uint8_t>(5000), opts);
  engine.run();
  ASSERT_TRUE(send_time && handled_at);
  // End-to-end latency is positive and includes the 1ms servant cost.
  EXPECT_GT((*handled_at - *send_time).ns(), milliseconds(1).ns());
}

TEST_F(OrbFixture, StubConvenienceWrappers) {
  Poa& poa = server.create_poa("app");
  const ObjectRef ref = make_echo(poa);
  ObjectStub stub(client, ref);
  stub.set_flow(77);
  std::optional<CompletionStatus> status;
  stub.twoway("echo", {5}, [&](CompletionStatus s, std::vector<std::uint8_t>) {
    status = s;
  });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::Ok);
  EXPECT_GT(net.flow(77).sent, 0u);
}

TEST_F(OrbFixture, InvokeRejectsInvalidArgs) {
  ObjectRef invalid;
  EXPECT_THROW(client.invoke(invalid, "op", {}, InvokeOptions{}, nullptr), BadParam);
  ObjectRef ok;
  ok.node = server_node;
  ok.object_key = "a/b";
  EXPECT_THROW(client.invoke(ok, "op", {}, InvokeOptions{}, nullptr), BadParam);
}

TEST_F(OrbFixture, PoaDemuxManyServants) {
  Poa& poa = server.create_poa("app");
  int hit = -1;
  for (int i = 0; i < 100; ++i) {
    auto servant = std::make_shared<FunctionServant>(
        microseconds(10), [&hit, i](ServerRequest&) { hit = i; });
    poa.activate_object("obj" + std::to_string(i), std::move(servant));
  }
  EXPECT_EQ(poa.servant_count(), 100u);
  ObjectRef ref;
  ref.node = server_node;
  ref.object_key = "app/obj42";
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "op", {}, opts);
  engine.run();
  EXPECT_EQ(hit, 42);
}

TEST_F(OrbFixture, DeactivatedObjectStopsReceiving) {
  Poa& poa = server.create_poa("app");
  const ObjectRef ref = make_echo(poa);
  poa.deactivate_object("echo");
  std::optional<CompletionStatus> status;
  client.invoke(ref, "echo", {}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::ObjectNotExist);
}

TEST_F(OrbFixture, CollocatedCallSkipsTheWire) {
  // Client and servant on the same ORB: the call must complete without any
  // network traffic and far faster than the propagation delay.
  Poa& poa = client.create_poa("local");
  const ObjectRef ref = make_echo(poa, microseconds(10));
  const auto packets_before = net.totals().sent;
  std::optional<TimePoint> done;
  client.invoke(ref, "echo", {1}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) {
                  EXPECT_EQ(s, CompletionStatus::Ok);
                  done = engine.now();
                });
  engine.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(client.stats().collocated_calls, 1u);
  // Request bytes never hit the network (the loopback reply may).
  EXPECT_LE(net.totals().sent - packets_before, 1u);
  // Faster than even one wire round trip (2 x 100us propagation): all the
  // remaining time is marshal/demux/servant CPU cost.
  EXPECT_LT(done->ns(), microseconds(200).ns());
}

TEST_F(OrbFixture, RemoteCallIsNotCountedCollocated) {
  Poa& poa = server.create_poa("app");
  const ObjectRef ref = make_echo(poa);
  std::optional<CompletionStatus> status;
  client.invoke(ref, "echo", {1}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::Ok);
  EXPECT_EQ(client.stats().collocated_calls, 0u);
}

TEST_F(OrbFixture, DscpMappingManagerControlsMarking) {
  // With the default best-effort mapping installed, high priority still
  // maps to DSCP 0; with the banded mapping it maps to EF.
  EXPECT_EQ(client.dscp_mappings().to_dscp(30'000), net::dscp::kBestEffort);
  client.dscp_mappings().install(std::make_unique<rt::BandedDscpMapping>());
  EXPECT_EQ(client.dscp_mappings().to_dscp(30'000), net::dscp::kEf);
  EXPECT_EQ(client.dscp_mappings().to_dscp(0), net::dscp::kBestEffort);
  client.dscp_mappings().install(nullptr);  // restore default
  EXPECT_EQ(client.dscp_mappings().to_dscp(30'000), net::dscp::kBestEffort);
}

}  // namespace
}  // namespace aqm::orb

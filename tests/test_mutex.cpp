// Priority-inheritance mutex: the classic inversion scenario and the
// protocol that fixes it.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "os/cpu.hpp"
#include "os/mutex.hpp"
#include "sim/engine.hpp"

namespace aqm::os {
namespace {

CpuConfig fifo_config() {
  CpuConfig cfg;
  cfg.quantum = Duration::max() - Duration{1};
  return cfg;
}

TEST(PiMutex, UncontendedAcquireIsImmediate) {
  sim::Engine engine;
  Cpu cpu(engine, "cpu", fifo_config());
  PiMutex mutex(cpu);
  bool granted = false;
  mutex.acquire(50, [&](PiMutex::Guard guard) {
    granted = true;
    guard.release();
  });
  EXPECT_TRUE(granted);
  EXPECT_FALSE(mutex.locked());
}

TEST(PiMutex, WaitersGrantedInPriorityOrder) {
  sim::Engine engine;
  Cpu cpu(engine, "cpu", fifo_config());
  PiMutex mutex(cpu);
  std::vector<int> order;
  PiMutex::Guard held;
  mutex.acquire(10, [&](PiMutex::Guard g) { held = g; });
  mutex.acquire(20, [&](PiMutex::Guard g) {
    order.push_back(20);
    g.release();
  });
  mutex.acquire(90, [&](PiMutex::Guard g) {
    order.push_back(90);
    g.release();
  });
  mutex.acquire(50, [&](PiMutex::Guard g) {
    order.push_back(50);
    g.release();
  });
  EXPECT_EQ(mutex.waiter_count(), 3u);
  held.release();  // cascades through all waiters
  EXPECT_EQ(order, (std::vector<int>{90, 50, 20}));
  EXPECT_FALSE(mutex.locked());
}

TEST(PiMutex, FifoWithinEqualPriority) {
  sim::Engine engine;
  Cpu cpu(engine, "cpu", fifo_config());
  PiMutex mutex(cpu);
  std::vector<int> order;
  PiMutex::Guard held;
  mutex.acquire(10, [&](PiMutex::Guard g) { held = g; });
  mutex.acquire(50, [&](PiMutex::Guard g) {
    order.push_back(1);
    g.release();
  });
  mutex.acquire(50, [&](PiMutex::Guard g) {
    order.push_back(2);
    g.release();
  });
  held.release();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(PiMutex, DoubleReleaseIsIdempotent) {
  sim::Engine engine;
  Cpu cpu(engine, "cpu", fifo_config());
  PiMutex mutex(cpu);
  PiMutex::Guard guard;
  mutex.acquire(10, [&](PiMutex::Guard g) { guard = g; });
  guard.release();
  guard.release();  // stale: must not disturb the next holder
  bool second_granted = false;
  PiMutex::Guard second;
  mutex.acquire(20, [&](PiMutex::Guard g) {
    second_granted = true;
    second = g;
  });
  EXPECT_TRUE(second_granted);
  guard.release();  // still stale
  EXPECT_TRUE(mutex.locked());
  second.release();
  EXPECT_FALSE(mutex.locked());
}

/// The Mars-Pathfinder shape: low-priority L holds the lock, medium M
/// preempts L, high H blocks on the lock. Without inheritance H waits for
/// M's unrelated work; with inheritance L is boosted past M and H gets the
/// lock promptly.
struct InversionResult {
  TimePoint high_done;
  std::uint64_t boosts;
};

InversionResult run_inversion(bool priority_inheritance) {
  sim::Engine engine;
  Cpu cpu(engine, "cpu", fifo_config());
  PiMutex mutex(cpu, priority_inheritance);
  InversionResult result{};

  // t=0: L (prio 10) takes the lock and starts a 30 ms critical section.
  mutex.acquire(10, [&](PiMutex::Guard g) {
    const JobId job = cpu.submit_for(milliseconds(30), 10,
                                     [g]() mutable { g.release(); });
    g.set_holder_job(job);
  });

  // t=1ms: M (prio 50) — 200 ms of unrelated work that preempts L.
  engine.after(milliseconds(1), [&] {
    cpu.submit_for(milliseconds(200), 50, [] {});
  });

  // t=2ms: H (prio 90) needs the lock for a 5 ms critical section.
  engine.after(milliseconds(2), [&] {
    mutex.acquire(90, [&](PiMutex::Guard g) {
      const JobId job = cpu.submit_for(milliseconds(5), 90, [&result, &engine, g]() mutable {
        g.release();
        result.high_done = engine.now();
      });
      g.set_holder_job(job);
    });
  });

  engine.run();
  result.boosts = mutex.inheritance_boosts();
  return result;
}

TEST(PiMutex, InversionWithoutInheritance) {
  const InversionResult r = run_inversion(false);
  // H waits for M's 200 ms plus L's remaining section: > 230 ms.
  EXPECT_GT(r.high_done.ns(), milliseconds(230).ns());
  EXPECT_EQ(r.boosts, 0u);
}

TEST(PiMutex, InheritanceBoundsHighPriorityBlocking) {
  const InversionResult r = run_inversion(true);
  // L is boosted to 90 at t=2ms, finishes its remaining ~29 ms, then H's
  // 5 ms section runs: done by ~40 ms, two orders before M completes.
  EXPECT_LT(r.high_done.ns(), milliseconds(45).ns());
  EXPECT_GE(r.boosts, 1u);
}

TEST(PiMutex, BoostRestoredAfterRelease) {
  sim::Engine engine;
  Cpu cpu(engine, "cpu", fifo_config());
  PiMutex mutex(cpu);
  std::optional<Priority> low_priority_after;

  mutex.acquire(10, [&](PiMutex::Guard g) {
    const JobId job = cpu.submit_for(milliseconds(10), 10, [] {});
    g.set_holder_job(job);
    // A high waiter boosts the holder...
    mutex.acquire(90, [](PiMutex::Guard g2) { g2.release(); });
    EXPECT_EQ(cpu.base_priority(job), 90);
    // ...and release restores it.
    g.release();
    low_priority_after = cpu.base_priority(job);
  });
  ASSERT_TRUE(low_priority_after.has_value());
  EXPECT_EQ(*low_priority_after, 10);
  engine.run();
}

}  // namespace
}  // namespace aqm::os

// RSVP signaling: PATH/RESV establishment, admission control, teardown.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "net/rsvp.hpp"
#include "sim/engine.hpp"

namespace aqm::net {
namespace {

struct RsvpFixture : public ::testing::Test {
  RsvpFixture() : net(engine) {
    sender = net.add_node("sender");
    router = net.add_node("router");
    receiver = net.add_node("receiver");
    LinkConfig cfg;
    cfg.bandwidth_bps = 10e6;
    cfg.propagation = microseconds(100);
    net.add_link(sender, router, cfg, std::make_unique<IntServQueue>(IntServQueue::Config{}));
    net.add_link(router, sender, cfg);
    net.add_link(router, receiver, cfg,
                 std::make_unique<IntServQueue>(IntServQueue::Config{}));
    net.add_link(receiver, router, cfg);
    for (const NodeId n : {sender, router, receiver}) {
      agents.push_back(std::make_unique<RsvpAgent>(net, n));
    }
  }

  RsvpAgent& agent_at(NodeId n) { return *agents[static_cast<std::size_t>(n)]; }
  IntServQueue* queue_on(NodeId from, NodeId to) {
    return dynamic_cast<IntServQueue*>(&net.link_between(from, to)->queue());
  }

  sim::Engine engine;
  Network net;
  NodeId sender{};
  NodeId router{};
  NodeId receiver{};
  std::vector<std::unique_ptr<RsvpAgent>> agents;
};

TEST_F(RsvpFixture, ReservationInstallsOnEveryHop) {
  std::optional<bool> outcome;
  agent_at(sender).reserve(7, receiver, FlowSpec{1.2e6, 16'000},
                           [&](Status<std::string> s) { outcome = s.ok(); });
  engine.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  EXPECT_TRUE(agent_at(sender).confirmed(7));
  ASSERT_NE(queue_on(sender, router), nullptr);
  EXPECT_TRUE(queue_on(sender, router)->has_reservation(7));
  EXPECT_TRUE(queue_on(router, receiver)->has_reservation(7));
}

TEST_F(RsvpFixture, SignalingTakesNetworkTime) {
  std::optional<TimePoint> confirmed_at;
  agent_at(sender).reserve(7, receiver, FlowSpec{1e6, 16'000},
                           [&](Status<std::string>) { confirmed_at = engine.now(); });
  engine.run();
  ASSERT_TRUE(confirmed_at.has_value());
  // PATH out (2 hops) + RESV back (2 hops): at least 4 propagation delays.
  EXPECT_GT(confirmed_at->ns(), 4 * microseconds(100).ns());
}

TEST_F(RsvpFixture, AdmissionRejectsOverBudgetAndTearsDown) {
  // First flow takes 8 Mbps of the 9 Mbps reservable (0.9 * 10 Mbps).
  std::optional<bool> first;
  agent_at(sender).reserve(1, receiver, FlowSpec{8e6, 16'000},
                           [&](Status<std::string> s) { first = s.ok(); });
  engine.run();
  ASSERT_TRUE(first && *first);

  std::optional<Status<std::string>> second;
  agent_at(sender).reserve(2, receiver, FlowSpec{2e6, 16'000},
                           [&](Status<std::string> s) { second = std::move(s); });
  engine.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->ok());
  EXPECT_NE(second->error().find("admission denied"), std::string::npos);
  EXPECT_FALSE(agent_at(sender).confirmed(2));
  // No partial state for flow 2 anywhere.
  EXPECT_FALSE(queue_on(sender, router)->has_reservation(2));
  EXPECT_FALSE(queue_on(router, receiver)->has_reservation(2));
  // Flow 1 untouched.
  EXPECT_TRUE(queue_on(router, receiver)->has_reservation(1));
}

TEST_F(RsvpFixture, ReleaseRemovesStateEverywhere) {
  std::optional<bool> ok;
  agent_at(sender).reserve(7, receiver, FlowSpec{1e6, 16'000},
                           [&](Status<std::string> s) { ok = s.ok(); });
  engine.run();
  ASSERT_TRUE(ok && *ok);
  agent_at(sender).release(7);
  engine.run();
  EXPECT_FALSE(agent_at(sender).confirmed(7));
  EXPECT_FALSE(queue_on(sender, router)->has_reservation(7));
  EXPECT_FALSE(queue_on(router, receiver)->has_reservation(7));
  EXPECT_FALSE(agent_at(receiver).has_path_state(7));
}

TEST_F(RsvpFixture, ModifyReplacesRate) {
  std::optional<bool> ok;
  agent_at(sender).reserve(7, receiver, FlowSpec{1e6, 16'000},
                           [&](Status<std::string> s) { ok = s.ok(); });
  engine.run();
  ASSERT_TRUE(ok && *ok);
  std::optional<bool> ok2;
  agent_at(sender).reserve(7, receiver, FlowSpec{2e6, 16'000},
                           [&](Status<std::string> s) { ok2 = s.ok(); });
  engine.run();
  ASSERT_TRUE(ok2 && *ok2);
  EXPECT_DOUBLE_EQ(queue_on(router, receiver)->flow_rate_bps(7), 2e6);
  EXPECT_DOUBLE_EQ(queue_on(router, receiver)->reserved_rate_bps(), 2e6);
}

TEST_F(RsvpFixture, TwoFlowsCoexist) {
  int confirmed = 0;
  agent_at(sender).reserve(1, receiver, FlowSpec{3e6, 16'000},
                           [&](Status<std::string> s) { confirmed += s.ok(); });
  agent_at(sender).reserve(2, receiver, FlowSpec{4e6, 16'000},
                           [&](Status<std::string> s) { confirmed += s.ok(); });
  engine.run();
  EXPECT_EQ(confirmed, 2);
  EXPECT_DOUBLE_EQ(queue_on(router, receiver)->reserved_rate_bps(), 7e6);
}

TEST_F(RsvpFixture, ReservationFromReceiverSideSeparateDirection) {
  // Reserve the reverse direction: receiver -> sender. Links receiver->router
  // and router->sender have no IntServ queue, so installation is a no-op
  // pass-through but signaling still succeeds end to end.
  std::optional<bool> ok;
  agent_at(receiver).reserve(9, sender, FlowSpec{1e6, 16'000},
                             [&](Status<std::string> s) { ok = s.ok(); });
  engine.run();
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(*ok);
}

TEST(RsvpTimeout, FailsAfterRetriesWhenPathBroken) {
  sim::Engine engine;
  Network net(engine);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("island");  // unreachable
  RsvpAgent agent(net, a);
  std::optional<Status<std::string>> outcome;
  agent.reserve(5, b, FlowSpec{1e6, 16'000},
                [&](Status<std::string> s) { outcome = std::move(s); });
  engine.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("timed out"), std::string::npos);
}

TEST(RsvpLoss, RetriesSucceedOverLossyLink) {
  // Signaling packets can be lost on a noisy segment; the PATH retry loop
  // must still establish the reservation.
  int successes = 0;
  const int trials = 10;
  for (int trial = 0; trial < trials; ++trial) {
    sim::Engine engine;
    Network net(engine);
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    LinkConfig lossy;
    lossy.bandwidth_bps = 10e6;
    lossy.loss_probability = 0.3;  // per packet, both directions
    lossy.loss_seed = static_cast<std::uint64_t>(trial) + 100;
    net.add_link(a, b, lossy, std::make_unique<IntServQueue>(IntServQueue::Config{}));
    net.add_link(b, a, lossy);
    RsvpAgent agent_a(net, a);
    RsvpAgent agent_b(net, b);
    std::optional<bool> ok;
    agent_a.reserve(5, b, FlowSpec{1e6, 16'000},
                    [&](Status<std::string> s) { ok = s.ok(); });
    engine.run();
    ASSERT_TRUE(ok.has_value());
    if (*ok) ++successes;
  }
  // P(single round trip survives) ~ 0.49; three attempts push overall
  // success to ~0.87. Require a clear majority.
  EXPECT_GE(successes, 6);
}

TEST(RsvpTimeout, SupersededRequestReportsError) {
  sim::Engine engine;
  Network net(engine);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  net.add_duplex_link(a, b, cfg);
  RsvpAgent agent_a(net, a);
  RsvpAgent agent_b(net, b);
  std::vector<std::string> events;
  agent_a.reserve(5, b, FlowSpec{1e6, 16'000}, [&](Status<std::string> s) {
    events.push_back(s.ok() ? "ok1" : "err1");
  });
  // Immediately supersede before signaling completes.
  agent_a.reserve(5, b, FlowSpec{2e6, 16'000}, [&](Status<std::string> s) {
    events.push_back(s.ok() ? "ok2" : "err2");
  });
  engine.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "err1");
  EXPECT_EQ(events[1], "ok2");
}

}  // namespace
}  // namespace aqm::net

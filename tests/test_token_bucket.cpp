#include "net/token_bucket.hpp"

#include <gtest/gtest.h>

namespace aqm::net {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(8000.0, 1000);  // 1000 B/s refill, 1000 B depth
  EXPECT_DOUBLE_EQ(tb.available(TimePoint::zero()), 1000.0);
  EXPECT_TRUE(tb.conforms(1000, TimePoint::zero()));
  EXPECT_FALSE(tb.conforms(1001, TimePoint::zero()));
}

TEST(TokenBucket, ConsumeReducesTokens) {
  TokenBucket tb(8000.0, 1000);
  EXPECT_TRUE(tb.consume(600, TimePoint::zero()));
  EXPECT_NEAR(tb.available(TimePoint::zero()), 400.0, 1e-9);
  EXPECT_FALSE(tb.consume(500, TimePoint::zero()));
  EXPECT_NEAR(tb.available(TimePoint::zero()), 400.0, 1e-9);  // unchanged on failure
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(8000.0, 1000);  // 1000 bytes/sec
  ASSERT_TRUE(tb.consume(1000, TimePoint::zero()));
  const TimePoint half_second{500'000'000};
  EXPECT_NEAR(tb.available(half_second), 500.0, 1e-6);
}

TEST(TokenBucket, RefillCapsAtDepth) {
  TokenBucket tb(8000.0, 1000);
  ASSERT_TRUE(tb.consume(500, TimePoint::zero()));
  const TimePoint later{seconds(100).ns()};
  EXPECT_DOUBLE_EQ(tb.available(later), 1000.0);
}

TEST(TokenBucket, TimeUntilConforms) {
  TokenBucket tb(8000.0, 1000);
  ASSERT_TRUE(tb.consume(1000, TimePoint::zero()));
  // Need 250 bytes => 0.25s at 1000 B/s.
  const Duration wait = tb.time_until_conforms(250, TimePoint::zero());
  EXPECT_NEAR(wait.seconds(), 0.25, 1e-6);
  EXPECT_EQ(tb.time_until_conforms(100, TimePoint{seconds(1).ns()}).ns(), 0);
}

TEST(TokenBucket, OversizedPacketNeverConforms) {
  TokenBucket tb(8000.0, 1000);
  EXPECT_EQ(tb.time_until_conforms(1001, TimePoint::zero()), Duration::max());
}

TEST(TokenBucket, ReconfigurePreservesFillLevel) {
  TokenBucket tb(8000.0, 1000);  // 1000 B/s, 1000 B depth
  ASSERT_TRUE(tb.consume(600, TimePoint::zero()));
  // Re-stamp to double the rate: the 400 remaining tokens carry over
  // (no free burst from a rate change), and refill now runs at 2000 B/s.
  tb.reconfigure(16'000.0, 1000, TimePoint::zero());
  EXPECT_NEAR(tb.available(TimePoint::zero()), 400.0, 1e-9);
  const TimePoint quarter{250'000'000};
  EXPECT_NEAR(tb.available(quarter), 900.0, 1e-6);
}

TEST(TokenBucket, ReconfigureSettlesOldRateFirst) {
  TokenBucket tb(8000.0, 1000);
  ASSERT_TRUE(tb.consume(1000, TimePoint::zero()));
  // Half a second at the OLD 1000 B/s rate must be credited before the
  // new rate takes over — the re-stamp is not retroactive.
  const TimePoint half{500'000'000};
  tb.reconfigure(80'000.0, 2000, half);
  EXPECT_NEAR(tb.available(half), 500.0, 1e-6);
  const TimePoint later{600'000'000};  // +0.1 s at 10 KB/s
  EXPECT_NEAR(tb.available(later), 1500.0, 1e-6);
}

TEST(TokenBucket, ReconfigureClampsTokensToShrunkDepth) {
  TokenBucket tb(8000.0, 1000);
  tb.reconfigure(8000.0, 250, TimePoint::zero());
  EXPECT_DOUBLE_EQ(tb.available(TimePoint::zero()), 250.0);
  EXPECT_FALSE(tb.conforms(251, TimePoint::zero()));
}

TEST(TokenBucket, ReconfigureIsIdempotent) {
  TokenBucket tb(8000.0, 1000);
  ASSERT_TRUE(tb.consume(300, TimePoint::zero()));
  tb.reconfigure(8000.0, 1000, TimePoint::zero());
  tb.reconfigure(8000.0, 1000, TimePoint::zero());
  EXPECT_NEAR(tb.available(TimePoint::zero()), 700.0, 1e-9);
}

TEST(TokenBucket, SustainedRateMatchesConfigured) {
  // Drain packets as fast as conformance allows; the long-run rate must
  // match the configured token rate.
  TokenBucket tb(80'000.0, 2000);  // 10 KB/s
  TimePoint now = TimePoint::zero();
  std::uint64_t sent_bytes = 0;
  const std::uint32_t pkt = 500;
  while (now < TimePoint{seconds(10).ns()}) {
    if (tb.consume(pkt, now)) {
      sent_bytes += pkt;
    } else {
      now = now + tb.time_until_conforms(pkt, now);
      continue;
    }
  }
  // 10 KB/s for 10 s = 100 KB (+ the initial 2 KB burst).
  EXPECT_NEAR(static_cast<double>(sent_bytes), 102'000.0, 1'000.0);
}

}  // namespace
}  // namespace aqm::net

// Observability layer: trace recorder semantics, metrics registry merge
// determinism, and end-to-end causal trace propagation through the ORB
// and network.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "net/flow_monitor.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm {
namespace {

// --- TraceRecorder -------------------------------------------------------------

TEST(TraceRecorder, RecordsEventsWithStableTracks) {
  obs::TraceRecorder tr;
  const std::uint16_t a = tr.track("alpha");
  const std::uint16_t b = tr.track("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(tr.track("alpha"), a);  // same name -> same lane

  tr.instant(obs::TraceCategory::Net, "hit", a, TimePoint{1000}, 7, {{"x", 1.0}});
  tr.complete(obs::TraceCategory::Net, "span", b, TimePoint{2000}, microseconds(5));
  EXPECT_EQ(tr.size(), 2u);

  std::vector<const char*> names;
  tr.for_each([&](const obs::TraceEvent& e) { names.push_back(e.name); });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_STREQ(names[0], "hit");
  EXPECT_STREQ(names[1], "span");
}

TEST(TraceRecorder, CategoryMaskFilters) {
  obs::TraceRecorder tr(static_cast<std::uint32_t>(obs::TraceCategory::Net));
  EXPECT_TRUE(tr.wants(obs::TraceCategory::Net));
  EXPECT_FALSE(tr.wants(obs::TraceCategory::Orb));
  tr.set_enabled(false);
  EXPECT_FALSE(tr.wants(obs::TraceCategory::Net));
}

TEST(TraceRecorder, InternReturnsStablePointers) {
  obs::TraceRecorder tr;
  const char* p1 = tr.intern("call frame");
  // Force growth of the intern table.
  for (int i = 0; i < 100; ++i) (void)tr.intern("label " + std::to_string(i));
  const char* p2 = tr.intern("call frame");
  EXPECT_EQ(p1, p2);
  EXPECT_STREQ(p1, "call frame");
}

TEST(TraceRecorder, ClearKeepsRegistriesAndReusesChunks) {
  obs::TraceRecorder tr;
  const std::uint16_t lane = tr.track("lane");
  for (int i = 0; i < 5000; ++i) {  // spans multiple chunks
    tr.instant(obs::TraceCategory::Net, "e", lane, TimePoint{i});
  }
  EXPECT_EQ(tr.size(), 5000u);
  tr.clear();
  EXPECT_TRUE(tr.empty());
  EXPECT_EQ(tr.track("lane"), lane);
  tr.instant(obs::TraceCategory::Net, "e", lane, TimePoint{1});
  EXPECT_EQ(tr.size(), 1u);
}

TEST(TraceRecorder, RingCapacityRoundsUpToWholeChunks) {
  obs::TraceRecorder tr;
  EXPECT_EQ(tr.ring_capacity(), 0u);  // unbounded by default
  tr.set_ring_capacity(100);          // chunks are 2048 events
  EXPECT_EQ(tr.ring_capacity(), 2048u);
  tr.set_ring_capacity(2049);
  EXPECT_EQ(tr.ring_capacity(), 4096u);
}

TEST(TraceRecorder, RingEvictsWholeChunksAcrossBoundaries) {
  obs::TraceRecorder tr;
  tr.set_ring_capacity(4096);  // 2 chunks
  const std::uint16_t lane = tr.track("ring");
  const std::size_t recorded = 3 * 2048 + 5;  // crosses two chunk boundaries
  for (std::size_t i = 0; i < recorded; ++i) {
    tr.instant(obs::TraceCategory::Net, "e", lane, TimePoint{static_cast<std::int64_t>(i)});
  }
  // Eviction is chunk-granular: starting chunk 3 reclaimed chunk 1, starting
  // chunk 4 reclaimed chunk 2, so exactly two whole chunks were lost.
  EXPECT_EQ(tr.overwritten(), 4096u);
  EXPECT_EQ(tr.size(), recorded - 4096u);
  // Iteration starts at the oldest surviving event and stays in record order.
  std::int64_t expect_ts = 4096;
  std::size_t seen = 0;
  tr.for_each([&](const obs::TraceEvent& e) {
    EXPECT_EQ(e.ts_ns, expect_ts++);
    ++seen;
  });
  EXPECT_EQ(seen, tr.size());
  // clear() resets the loss counter along with the events.
  tr.clear();
  EXPECT_EQ(tr.overwritten(), 0u);
  EXPECT_TRUE(tr.empty());
}

TEST(TraceRecorder, RingModeStillHonorsCategoryMask) {
  obs::TraceRecorder tr(static_cast<std::uint32_t>(obs::TraceCategory::Net));
  tr.set_ring_capacity(2048);
  const std::uint16_t lane = tr.track("ring");
  for (int i = 0; i < 3000; ++i) {
    tr.instant(obs::TraceCategory::Orb, "masked", lane, TimePoint{i});
  }
  EXPECT_TRUE(tr.empty());  // masked-out events never enter the ring
  EXPECT_EQ(tr.overwritten(), 0u);
  for (int i = 0; i < 3000; ++i) {
    tr.instant(obs::TraceCategory::Net, "kept", lane, TimePoint{i});
  }
  EXPECT_EQ(tr.size() + tr.overwritten(), 3000u);
  tr.for_each([](const obs::TraceEvent& e) { EXPECT_STREQ(e.name, "kept"); });
}

TEST(TraceRecorder, ChromeJsonIsWellFormedAndNamesTracks) {
  obs::TraceRecorder tr;
  const std::uint16_t lane = tr.track("orb:client");
  tr.async_begin(obs::TraceCategory::Orb, "call echo", lane, TimePoint{1500}, 42);
  tr.async_end(obs::TraceCategory::Orb, "call echo", lane, TimePoint{2500}, 42);
  std::ostringstream os;
  tr.write_chrome_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("orb:client"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy (no parser available).
  const auto open = std::count(json.begin(), json.end(), '{');
  const auto close = std::count(json.begin(), json.end(), '}');
  EXPECT_EQ(open, close);
}

TEST(TraceRecorder, AmbientCurrentId) {
  obs::TraceRecorder tr;
  EXPECT_EQ(tr.current(), 0u);
  tr.set_current(99);
  EXPECT_EQ(tr.current(), 99u);
  tr.set_current(0);
  EXPECT_EQ(tr.current(), 0u);
}

// --- Engine guard --------------------------------------------------------------

TEST(EngineTracer, NullByDefaultAndCategoryGated) {
  sim::Engine engine;
  EXPECT_EQ(engine.tracer(), nullptr);
  EXPECT_EQ(engine.tracer_for(obs::TraceCategory::Net), nullptr);

  obs::TraceRecorder tr;  // default mask excludes Engine
  engine.set_tracer(&tr);
  EXPECT_EQ(engine.tracer(), &tr);
  EXPECT_NE(engine.tracer_for(obs::TraceCategory::Net), nullptr);
  EXPECT_EQ(engine.tracer_for(obs::TraceCategory::Engine), nullptr);

  engine.set_tracer(nullptr);
  EXPECT_EQ(engine.tracer_for(obs::TraceCategory::Net), nullptr);
}

// --- MetricsRegistry -----------------------------------------------------------

TEST(MetricsRegistry, SnapshotRoundTrip) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").inc(3);
  reg.gauge("a.util").set(0.5);
  reg.stats("a.lat").add(10.0);
  reg.stats("a.lat").add(20.0);
  reg.histogram("a.hist", 0.0, 10.0, 10).add(5.0);

  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("a.count"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("a.util").mean(), 0.5);
  EXPECT_EQ(snap.stats.at("a.lat").count(), 2u);
  EXPECT_EQ(snap.histograms.at("a.hist").count(), 1u);
}

TEST(MetricsSnapshot, MergeSemantics) {
  obs::MetricsRegistry r1;
  r1.counter("c").inc(2);
  r1.gauge("g").set(1.0);
  r1.stats("s").add(1.0);
  r1.histogram("h", 0.0, 10.0, 10).add(1.0);
  obs::MetricsRegistry r2;
  r2.counter("c").inc(5);
  r2.gauge("g").set(3.0);
  r2.stats("s").add(3.0);
  r2.histogram("h", 0.0, 10.0, 10).add(9.0);

  obs::MetricsSnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());
  EXPECT_EQ(merged.counters.at("c"), 7u);                 // counters sum
  EXPECT_EQ(merged.gauges.at("g").count(), 2u);           // one sample per shard
  EXPECT_DOUBLE_EQ(merged.gauges.at("g").mean(), 2.0);
  EXPECT_EQ(merged.stats.at("s").count(), 2u);            // Welford merge
  EXPECT_EQ(merged.histograms.at("h").count(), 2u);       // bucket-wise sum
  EXPECT_EQ(merged.merge_conflicts, 0u);
}

TEST(MetricsSnapshot, MergeConflictCountsAndKeepsExisting) {
  obs::MetricsRegistry r1;
  r1.histogram("h", 0.0, 10.0, 10).add(1.0);
  obs::MetricsRegistry r2;
  r2.histogram("h", 0.0, 20.0, 10).add(1.0);  // different bounds
  obs::MetricsSnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());
  EXPECT_EQ(merged.merge_conflicts, 1u);
  EXPECT_EQ(merged.histograms.at("h").count(), 1u);
}

TEST(MetricsSnapshot, HistogramMergeRejectsEveryLayoutMismatch) {
  // Each mismatch axis — bucket count, bounds, linear vs log scale — keeps
  // the existing histogram and bumps merge_conflicts; a matching layout
  // then still merges cleanly into the same snapshot.
  obs::MetricsRegistry base;
  base.histogram("h", 1.0, 100.0, 10).add(2.0);
  obs::MetricsSnapshot merged = base.snapshot();

  obs::MetricsSnapshot buckets;
  buckets.histograms.emplace("h", Histogram(1.0, 100.0, 20));
  merged.merge(buckets);
  EXPECT_EQ(merged.merge_conflicts, 1u);

  obs::MetricsSnapshot scale;
  scale.histograms.emplace("h", Histogram::log_scaled(1.0, 100.0, 10));
  merged.merge(scale);
  EXPECT_EQ(merged.merge_conflicts, 2u);
  EXPECT_EQ(merged.histograms.at("h").count(), 1u);
  EXPECT_FALSE(merged.histograms.at("h").log_scale());

  obs::MetricsRegistry ok;
  ok.histogram("h", 1.0, 100.0, 10).add(50.0);
  merged.merge(ok.snapshot());
  EXPECT_EQ(merged.merge_conflicts, 2u);
  EXPECT_EQ(merged.histograms.at("h").count(), 2u);
}

TEST(MetricsSidecar, DeterministicBytesForAnyGrouping) {
  // Simulates the shard-merge contract: trials merged in index order give
  // identical bytes no matter how work was distributed.
  const auto make = [](std::uint64_t seed) {
    obs::MetricsRegistry reg;
    reg.counter("n").inc(seed);
    reg.stats("v").add(static_cast<double>(seed) * 0.1);
    return reg.snapshot();
  };
  std::vector<obs::NamedSnapshot> trials;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    trials.push_back({"trial-" + std::to_string(i), make(i)});
  }
  std::ostringstream a;
  obs::write_metrics_sidecar(a, trials);
  std::ostringstream b;
  obs::write_metrics_sidecar(b, trials);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"merged\""), std::string::npos);
  EXPECT_NE(a.str().find("\"trials\""), std::string::npos);
}

// --- Log thread tags -----------------------------------------------------------

TEST(LogThreadTag, PrefixesMessagesPerThread) {
  std::vector<std::string> lines;
  Log::set_sink([&](LogLevel, std::string_view msg) { lines.emplace_back(msg); });
  const LogLevel prev = Log::level();
  Log::set_level(LogLevel::Info);

  Log::set_thread_tag("main");
  AQM_INFO() << "hello";
  std::thread t([] {
    // Worker threads start untagged regardless of the caller's tag.
    AQM_INFO() << "worker untagged";
    Log::set_thread_tag("w7");
    AQM_INFO() << "worker tagged";
  });
  t.join();
  Log::set_thread_tag("");
  AQM_INFO() << "untagged again";

  Log::set_level(prev);
  Log::set_sink(nullptr);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "[main] hello");
  EXPECT_EQ(lines[1], "worker untagged");
  EXPECT_EQ(lines[2], "[w7] worker tagged");
  EXPECT_EQ(lines[3], "untagged again");
}

// --- End-to-end causal propagation ---------------------------------------------

struct TracedOrbFixture : public ::testing::Test {
  TracedOrbFixture()
      : net(engine),
        client_node(net.add_node("client")),
        server_node(net.add_node("server")),
        client_cpu(engine, "client-cpu"),
        server_cpu(engine, "server-cpu"),
        client(net, client_node, client_cpu),
        server(net, server_node, server_cpu) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 100e6;
    cfg.propagation = microseconds(100);
    net.add_duplex_link(client_node, server_node, cfg);
    engine.set_tracer(&recorder);
  }

  obs::TraceRecorder recorder;
  sim::Engine engine;
  net::Network net;
  net::NodeId client_node;
  net::NodeId server_node;
  os::Cpu client_cpu;
  os::Cpu server_cpu;
  orb::OrbEndpoint client;
  orb::OrbEndpoint server;
};

TEST_F(TracedOrbFixture, RequestTraceChainsAcrossLayers) {
  orb::Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(100), [](orb::ServerRequest& req) { req.reply_body = req.body; });
  const orb::ObjectRef ref = poa.activate_object("echo", std::move(servant));

  std::optional<orb::CompletionStatus> status;
  client.invoke(ref, "echo", {1, 2, 3}, orb::InvokeOptions{},
                [&](orb::CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_TRUE(status);
  EXPECT_EQ(*status, orb::CompletionStatus::Ok);

  // Exactly one client call span, opened and closed.
  std::uint64_t call_id = 0;
  int begins = 0;
  int ends = 0;
  recorder.for_each([&](const obs::TraceEvent& e) {
    if (std::string_view(e.name).substr(0, 5) != "call ") return;
    if (e.phase == obs::TracePhase::AsyncBegin) {
      ++begins;
      call_id = e.id;
    } else if (e.phase == obs::TracePhase::AsyncEnd) {
      ++ends;
    }
  });
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  ASSERT_NE(call_id, 0u);

  // The same id shows up on ORB send, network hops, dispatch and reply.
  std::set<std::string> names;
  recorder.for_each([&](const obs::TraceEvent& e) {
    if (e.id == call_id) names.insert(e.name);
  });
  EXPECT_TRUE(names.count("send"));
  EXPECT_TRUE(names.count("enqueue"));
  EXPECT_TRUE(names.count("tx"));
  EXPECT_TRUE(names.count("deliver"));
  EXPECT_TRUE(names.count("dispatch"));
  EXPECT_TRUE(names.count("reply.send"));
  EXPECT_TRUE(names.count("reply.recv"));
  EXPECT_EQ(server.last_dispatch_trace(), call_id);
}

TEST_F(TracedOrbFixture, NoTracerMeansNoEventsAndSameResults) {
  engine.set_tracer(nullptr);
  orb::Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(100), [](orb::ServerRequest& req) { req.reply_body = req.body; });
  const orb::ObjectRef ref = poa.activate_object("echo", std::move(servant));
  std::optional<orb::CompletionStatus> status;
  client.invoke(ref, "echo", {9}, orb::InvokeOptions{},
                [&](orb::CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_TRUE(status);
  EXPECT_EQ(*status, orb::CompletionStatus::Ok);
  EXPECT_TRUE(recorder.empty());
}

// --- FlowMonitor metrics -------------------------------------------------------

TEST(FlowMonitorObs, JitterAndInterarrivalAndExport) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 10e6;
  cfg.propagation = microseconds(100);
  net.add_duplex_link(a, b, cfg);
  net::FlowMonitor mon(net, b);

  for (int i = 0; i < 10; ++i) {
    engine.at(TimePoint{milliseconds(10 * (i + 1)).ns()}, [&net, a, b, i] {
      net::Packet p;
      p.dst = b;
      p.flow = 1;
      p.seq = static_cast<std::uint64_t>(i);
      p.size_bytes = 500;
      net.send(a, p);
    });
  }
  engine.run();

  EXPECT_EQ(mon.received(1), 10u);
  EXPECT_EQ(mon.dropped(1), 0u);
  // Constant spacing and constant transit: ~10 ms gaps, ~zero jitter.
  EXPECT_EQ(mon.interarrival_ms(1).count(), 9u);
  EXPECT_NEAR(mon.interarrival_ms(1).mean(), 10.0, 0.1);
  EXPECT_NEAR(mon.jitter_ms(1), 0.0, 0.01);
  // Unknown flows read as zero.
  EXPECT_EQ(mon.received(7), 0u);
  EXPECT_DOUBLE_EQ(mon.jitter_ms(7), 0.0);

  obs::MetricsRegistry reg;
  mon.export_metrics(reg, "mon");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("mon.flow1.received"), 10u);
  EXPECT_EQ(snap.counters.at("mon.flow1.dropped"), 0u);
  EXPECT_EQ(snap.stats.at("mon.flow1.interarrival_ms").count(), 9u);
}

TEST(NetworkObs, ExportMetricsCountsFlows) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 10e6;
  net.add_duplex_link(a, b, cfg);
  net.set_receiver(b, [](net::Packet&&) {});
  net::Packet p;
  p.dst = b;
  p.flow = 3;
  p.size_bytes = 100;
  net.send(a, p);
  engine.run();

  obs::MetricsRegistry reg;
  net.export_metrics(reg, "net");
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("net.total.sent"), 1u);
  EXPECT_EQ(snap.counters.at("net.total.delivered"), 1u);
  EXPECT_EQ(snap.counters.at("net.flow3.sent"), 1u);
}

}  // namespace
}  // namespace aqm

#include "common/time.hpp"

#include <gtest/gtest.h>

namespace aqm {
namespace {

TEST(Duration, FactoryHelpersScale) {
  EXPECT_EQ(nanoseconds(7).ns(), 7);
  EXPECT_EQ(microseconds(3).ns(), 3'000);
  EXPECT_EQ(milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(seconds(1).ns(), 1'000'000'000);
}

TEST(Duration, UnitConversions) {
  const Duration d = milliseconds(1500);
  EXPECT_DOUBLE_EQ(d.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(d.millis(), 1500.0);
  EXPECT_DOUBLE_EQ(d.micros(), 1'500'000.0);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((milliseconds(5) + milliseconds(3)).ns(), 8'000'000);
  EXPECT_EQ((milliseconds(5) - milliseconds(3)).ns(), 2'000'000);
  EXPECT_EQ((milliseconds(5) * 4).ns(), 20'000'000);
  EXPECT_EQ((4 * milliseconds(5)).ns(), 20'000'000);
  EXPECT_EQ((milliseconds(10) / 4).ns(), 2'500'000);
  EXPECT_EQ((-milliseconds(1)).ns(), -1'000'000);
}

TEST(Duration, CompoundAssignment) {
  Duration d = milliseconds(1);
  d += microseconds(500);
  EXPECT_EQ(d.ns(), 1'500'000);
  d -= microseconds(250);
  EXPECT_EQ(d.ns(), 1'250'000);
}

TEST(Duration, Ordering) {
  EXPECT_LT(milliseconds(1), milliseconds(2));
  EXPECT_GT(seconds(1), milliseconds(999));
  EXPECT_EQ(milliseconds(1000), seconds(1));
  EXPECT_LE(Duration::zero(), nanoseconds(0));
  EXPECT_LT(Duration::zero(), Duration::max());
}

TEST(Duration, SecondsFloatConversion) {
  EXPECT_EQ(seconds_f(0.001).ns(), 1'000'000);
  EXPECT_EQ(seconds_f(2.5).ns(), 2'500'000'000LL);
}

TEST(TimePoint, ArithmeticWithDurations) {
  const TimePoint t{1'000};
  EXPECT_EQ((t + nanoseconds(500)).ns(), 1'500);
  EXPECT_EQ((nanoseconds(500) + t).ns(), 1'500);
  EXPECT_EQ((t - nanoseconds(400)).ns(), 600);
}

TEST(TimePoint, DifferenceIsDuration) {
  const TimePoint a{5'000};
  const TimePoint b{2'000};
  EXPECT_EQ((a - b).ns(), 3'000);
  EXPECT_EQ((b - a).ns(), -3'000);
}

TEST(TimePoint, Ordering) {
  EXPECT_LT(TimePoint::zero(), TimePoint{1});
  EXPECT_LT(TimePoint{1}, TimePoint::max());
}

}  // namespace
}  // namespace aqm

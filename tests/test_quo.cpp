// QuO layer: system condition objects, contracts, delegates, qoskets.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "quo/contract.hpp"
#include "quo/delegate.hpp"
#include "quo/qosket.hpp"
#include "quo/syscond.hpp"
#include "sim/engine.hpp"

namespace aqm::quo {
namespace {

TEST(SysCond, ValueSetNotifiesSubscribers) {
  ValueSysCond cond("load");
  int notifications = 0;
  cond.subscribe([&] { ++notifications; });
  cond.set(1.0);
  cond.set(2.0);
  cond.set(2.0);  // unchanged: no notification
  EXPECT_EQ(notifications, 2);
  EXPECT_DOUBLE_EQ(cond.value(), 2.0);
}

TEST(SysCond, LambdaPullsThrough) {
  double backing = 5.0;
  LambdaSysCond cond("cpu-util", [&] { return backing; });
  EXPECT_DOUBLE_EQ(cond.value(), 5.0);
  backing = 7.0;
  EXPECT_DOUBLE_EQ(cond.value(), 7.0);
}

TEST(SysCond, RateMeasuresWindowedRate) {
  sim::Engine engine;
  RateSysCond cond(engine, "fps", seconds(1));
  // 10 events over one second.
  for (int i = 0; i < 10; ++i) {
    engine.after(milliseconds(100 * i), [&] { cond.record(); });
  }
  engine.run_until(TimePoint{milliseconds(950).ns()});
  EXPECT_NEAR(cond.value(), 10.0, 1.0);
}

TEST(SysCond, RateDropsAsEventsAge) {
  sim::Engine engine;
  RateSysCond cond(engine, "fps", seconds(1));
  cond.start();
  for (int i = 0; i < 10; ++i) {
    engine.after(milliseconds(50 * i), [&] { cond.record(); });
  }
  engine.run_until(TimePoint{seconds(3).ns()});
  cond.stop();
  EXPECT_DOUBLE_EQ(cond.value(), 0.0);
}

TEST(SysCond, RateTickNotifiesOnDrop) {
  sim::Engine engine;
  RateSysCond cond(engine, "fps", seconds(1));
  cond.start();
  int notified = 0;
  cond.subscribe([&] { ++notified; });
  cond.record();
  const int after_record = notified;
  engine.run_until(TimePoint{seconds(2).ns()});
  cond.stop();
  // The periodic tick must have notified again when the rate fell to 0.
  EXPECT_GT(notified, after_record);
}

struct ContractFixture : public ::testing::Test {
  ContractFixture() : contract(engine, "bandwidth") {}
  sim::Engine engine;
  Contract contract;
};

TEST_F(ContractFixture, FirstMatchingRegionWins) {
  ValueSysCond bw("bw", 10.0);
  contract.add_region("high", [&] { return bw.value() >= 8.0; })
      .add_region("medium", [&] { return bw.value() >= 4.0; })
      .add_region("low", nullptr);
  EXPECT_EQ(contract.eval(), "high");
  bw.set(5.0);
  EXPECT_EQ(contract.eval(), "medium");
  bw.set(0.5);
  EXPECT_EQ(contract.eval(), "low");
}

TEST_F(ContractFixture, ObserveTriggersAutomaticEval) {
  ValueSysCond bw("bw", 10.0);
  contract.add_region("good", [&] { return bw.value() >= 5.0; })
      .add_region("bad", nullptr)
      .observe(bw);
  contract.eval();
  EXPECT_EQ(contract.current_region(), "good");
  bw.set(1.0);  // auto re-eval via subscription
  EXPECT_EQ(contract.current_region(), "bad");
}

TEST_F(ContractFixture, CallbacksFireOnTransitions) {
  ValueSysCond bw("bw", 10.0);
  std::vector<std::string> events;
  contract.add_region("good", [&] { return bw.value() >= 5.0; })
      .add_region("bad", nullptr)
      .on_enter("bad", [&] { events.push_back("enter-bad"); })
      .on_enter("good", [&] { events.push_back("enter-good"); })
      .on_transition("good", "bad", [&] { events.push_back("good->bad"); })
      .observe(bw);
  contract.eval();  // -> good
  bw.set(1.0);      // -> bad
  bw.set(9.0);      // -> good
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0], "enter-good");
  EXPECT_EQ(events[1], "good->bad");
  EXPECT_EQ(events[2], "enter-bad");
  EXPECT_EQ(events[3], "enter-good");
}

TEST_F(ContractFixture, HistoryRecordsTimeline) {
  ValueSysCond bw("bw", 10.0);
  contract.add_region("good", [&] { return bw.value() >= 5.0; })
      .add_region("bad", nullptr)
      .observe(bw);
  contract.eval();
  engine.after(seconds(2), [&] { bw.set(0.0); });
  engine.run();
  ASSERT_EQ(contract.history().size(), 2u);
  EXPECT_EQ(contract.history()[0].second, "good");
  EXPECT_EQ(contract.history()[1].second, "bad");
  EXPECT_EQ(contract.history()[1].first.ns(), seconds(2).ns());
  EXPECT_EQ(contract.transition_count(), 1u);
}

TEST_F(ContractFixture, NoRegionMatchKeepsCurrent) {
  ValueSysCond v("v", 10.0);
  contract.add_region("only", [&] { return v.value() > 5.0; });
  contract.eval();
  EXPECT_EQ(contract.current_region(), "only");
  v.set(1.0);
  EXPECT_EQ(contract.eval(), "only");  // nothing matches: stay put
}

TEST_F(ContractFixture, TransitionCallbackSettingConditionDoesNotRecurse) {
  ValueSysCond v("v", 10.0);
  contract.add_region("a", [&] { return v.value() > 5.0; })
      .add_region("b", nullptr)
      .observe(v);
  contract.on_enter("b", [&] { v.set(9.0); });  // would re-trigger eval
  contract.eval();
  v.set(1.0);
  // Re-entrant eval is suppressed; a later eval picks up the new value.
  EXPECT_EQ(contract.current_region(), "b");
  EXPECT_EQ(contract.eval(), "a");
}

TEST(Qosket, OwnsContractsAndConditions) {
  sim::Engine engine;
  Qosket qosket("video-quality");
  auto& cond = qosket.make_syscond<ValueSysCond>("bw", 3.0);
  auto& contract = qosket.make_contract(engine, "main");
  contract.add_region("any", nullptr);
  EXPECT_EQ(qosket.contract("main"), &contract);
  EXPECT_EQ(qosket.syscond("bw"), &cond);
  EXPECT_EQ(qosket.contract("missing"), nullptr);
  EXPECT_EQ(qosket.syscond("missing"), nullptr);
  EXPECT_EQ(qosket.contract_count(), 1u);
  EXPECT_EQ(qosket.syscond_count(), 1u);
}

}  // namespace
}  // namespace aqm::quo

// Core integration layer: CORBA CPU-reservation manager, network QoS
// manager, end-to-end QoS sessions, testbeds.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "core/cpu_reservation_manager.hpp"
#include "core/network_qos_manager.hpp"
#include "core/qos_policy_interceptor.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"

namespace aqm::core {
namespace {

struct AtrFixture : public ::testing::Test {
  AtrFixture()
      : bed(AtrTestbedParams{}),
        manager_poa(&bed.server_orb.create_poa("mgmt")),
        manager(*manager_poa, bed.server_cpu),
        client(bed.client_orb, manager.ref()) {}

  AtrTestbed bed;
  orb::Poa* manager_poa;
  CpuReservationManagerServer manager;
  CpuReservationClient client;
};

TEST_F(AtrFixture, RemoteReserveCreationSucceeds) {
  std::optional<Result<os::ReserveId>> outcome;
  client.create_reserve({milliseconds(20), milliseconds(100), true},
                        [&](Result<os::ReserveId> r) { outcome = std::move(r); });
  bed.engine.run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_TRUE(outcome->ok());
  EXPECT_TRUE(bed.server_cpu.has_reserve(outcome->value()));
  EXPECT_NEAR(bed.server_cpu.reserved_utilization(), 0.2, 1e-9);
}

TEST_F(AtrFixture, RemoteReserveAdmissionFailureReported) {
  std::optional<Result<os::ReserveId>> first;
  std::optional<Result<os::ReserveId>> second;
  client.create_reserve({milliseconds(80), milliseconds(100), true},
                        [&](Result<os::ReserveId> r) { first = std::move(r); });
  bed.engine.run();
  ASSERT_TRUE(first && first->ok());
  client.create_reserve({milliseconds(30), milliseconds(100), true},
                        [&](Result<os::ReserveId> r) { second = std::move(r); });
  bed.engine.run();
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->ok());
  EXPECT_NE(second->error().find("admission denied"), std::string::npos);
}

TEST_F(AtrFixture, RemoteUtilizationQueryTracksAdmittedReserves) {
  std::optional<Result<double>> util;
  client.query_utilization([&](Result<double> r) { util = std::move(r); });
  bed.engine.run();
  ASSERT_TRUE(util && util->ok());
  EXPECT_DOUBLE_EQ(util->value(), 0.0);

  client.create_reserve({milliseconds(20), milliseconds(100), true},
                        [](Result<os::ReserveId> r) { ASSERT_TRUE(r.ok()); });
  std::optional<os::ReserveId> second;
  client.create_reserve({milliseconds(30), milliseconds(200), false},
                        [&](Result<os::ReserveId> r) {
                          ASSERT_TRUE(r.ok());
                          second = r.value();
                        });
  util.reset();
  client.query_utilization([&](Result<double> r) { util = std::move(r); });
  bed.engine.run();
  ASSERT_TRUE(util && util->ok());
  EXPECT_NEAR(util->value(), 0.2 + 0.15, 1e-12);

  ASSERT_TRUE(second);
  client.destroy_reserve(*second);
  util.reset();
  client.query_utilization([&](Result<double> r) { util = std::move(r); });
  bed.engine.run();
  ASSERT_TRUE(util && util->ok());
  EXPECT_NEAR(util->value(), 0.2, 1e-12);
}

TEST_F(AtrFixture, RemoteDestroyReleasesReserve) {
  std::optional<os::ReserveId> id;
  client.create_reserve({milliseconds(50), milliseconds(100), true},
                        [&](Result<os::ReserveId> r) {
                          ASSERT_TRUE(r.ok());
                          id = r.value();
                        });
  bed.engine.run();
  ASSERT_TRUE(id);
  std::optional<bool> destroyed;
  client.destroy_reserve(*id, [&](bool ok) { destroyed = ok; });
  bed.engine.run();
  EXPECT_EQ(destroyed, true);
  EXPECT_FALSE(bed.server_cpu.has_reserve(*id));
  EXPECT_DOUBLE_EQ(bed.server_cpu.reserved_utilization(), 0.0);
}

struct SessionFixture : public ::testing::Test {
  SessionFixture()
      : bed(ReservationTestbedParams{}),
        app_poa(&bed.receiver_orb.create_poa("app")),
        mgmt_poa(&bed.receiver_orb.create_poa("mgmt")),
        manager(*mgmt_poa, bed.receiver_cpu),
        cpu_client(bed.sender_orb, manager.ref()) {
    auto servant = std::make_shared<orb::FunctionServant>(
        microseconds(100), [](orb::ServerRequest&) {});
    target = app_poa->activate_object("target", std::move(servant));
    stub = std::make_unique<orb::ObjectStub>(bed.sender_orb, target);
    stub->set_flow(kFlowVideo);
  }

  ReservationTestbed bed;
  orb::Poa* app_poa;
  orb::Poa* mgmt_poa;
  CpuReservationManagerServer manager;
  CpuReservationClient cpu_client;
  orb::ObjectRef target;
  std::unique_ptr<orb::ObjectStub> stub;
};

TEST_F(SessionFixture, CombinedPolicyAppliesAllMechanisms) {
  QoSSession session(bed.sender_orb, *stub, &bed.qos, &cpu_client);
  EndToEndQosPolicy policy;
  policy.priority = 28'000;
  policy.map_priority_to_dscp = true;
  policy.server_cpu_reserve = os::ReserveSpec{milliseconds(20), milliseconds(100), true};
  policy.network_reservation = net::FlowSpec{1.2e6, 32'000};

  std::optional<bool> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = s.ok(); });
  bed.engine.run_until(TimePoint{seconds(2).ns()});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  EXPECT_TRUE(session.network_reserved());
  ASSERT_TRUE(session.cpu_reserve_id().has_value());
  EXPECT_TRUE(bed.receiver_cpu.has_reserve(*session.cpu_reserve_id()));
  // The priority->DSCP mapping is bound per-target through the QoS-policy
  // interceptor; the ORB's global mapping stays best-effort.
  QosPolicyInterceptor* icpt = QosPolicyInterceptor::find(bed.sender_orb);
  ASSERT_NE(icpt, nullptr);
  EXPECT_EQ(icpt->effective_dscp(target.node, target.object_key, 28'000),
            net::dscp::kEf);
  EXPECT_EQ(bed.sender_orb.dscp_mappings().to_dscp(28'000), net::dscp::kBestEffort);
  // The bottleneck queue carries the stream reservation.
  auto* q = dynamic_cast<net::IntServQueue*>(
      &bed.network.link_between(bed.switch_node, bed.receiver_node)->queue());
  ASSERT_NE(q, nullptr);
  EXPECT_TRUE(q->has_reservation(kFlowVideo));
}

TEST_F(SessionFixture, RevokeTearsDownEverything) {
  QoSSession session(bed.sender_orb, *stub, &bed.qos, &cpu_client);
  EndToEndQosPolicy policy;
  policy.network_reservation = net::FlowSpec{1e6, 32'000};
  policy.server_cpu_reserve = os::ReserveSpec{milliseconds(10), milliseconds(100), true};
  std::optional<bool> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = s.ok(); });
  bed.engine.run_until(TimePoint{seconds(2).ns()});
  ASSERT_TRUE(outcome && *outcome);

  session.revoke();
  bed.engine.run_until(TimePoint{seconds(4).ns()});
  EXPECT_FALSE(session.network_reserved());
  EXPECT_FALSE(session.cpu_reserve_id().has_value());
  EXPECT_DOUBLE_EQ(bed.receiver_cpu.reserved_utilization(), 0.0);
  auto* q = dynamic_cast<net::IntServQueue*>(
      &bed.network.link_between(bed.switch_node, bed.receiver_node)->queue());
  EXPECT_FALSE(q->has_reservation(kFlowVideo));
}

TEST_F(SessionFixture, PriorityOnlyPolicyIsSynchronous) {
  QoSSession session(bed.sender_orb, *stub);
  EndToEndQosPolicy policy;
  policy.priority = 15'000;
  policy.explicit_dscp = net::dscp::kAf41;
  std::optional<bool> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = s.ok(); });
  // No simulation time needed: callback fires inline.
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  QosPolicyInterceptor* icpt = QosPolicyInterceptor::find(bed.sender_orb);
  ASSERT_NE(icpt, nullptr);
  const EndToEndQosPolicy* bound = icpt->binding(target.node, target.object_key);
  ASSERT_NE(bound, nullptr);
  EXPECT_EQ(bound->priority, 15'000);
  // The explicit DSCP wins at any priority, and the stub's protocol
  // properties are no longer mutated behind the caller's back.
  EXPECT_EQ(icpt->effective_dscp(target.node, target.object_key, 0), net::dscp::kAf41);
  EXPECT_FALSE(stub->ref().protocol.dscp.has_value());
  EXPECT_TRUE(policy.uses_priorities());
  EXPECT_FALSE(policy.uses_reservations());
}

TEST_F(SessionFixture, MissingManagersReportedAsErrors) {
  QoSSession session(bed.sender_orb, *stub, nullptr, nullptr);
  EndToEndQosPolicy policy;
  policy.network_reservation = net::FlowSpec{1e6, 32'000};
  policy.server_cpu_reserve = os::ReserveSpec{milliseconds(10), milliseconds(100), true};
  std::optional<Status<std::string>> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = std::move(s); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("NetworkQosManager"), std::string::npos);
  EXPECT_NE(outcome->error().find("CpuReservationClient"), std::string::npos);
}

TEST_F(SessionFixture, ReservationWithoutFlowIdFails) {
  orb::ObjectStub flowless(bed.sender_orb, target);
  QoSSession session(bed.sender_orb, flowless, &bed.qos, nullptr);
  EndToEndQosPolicy policy;
  policy.network_reservation = net::FlowSpec{1e6, 32'000};
  std::optional<Status<std::string>> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = std::move(s); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("flow id"), std::string::npos);
}

TEST(NetworkQosManagerTest, AgentsAreReused) {
  sim::Engine engine;
  net::Network network(engine);
  const net::NodeId a = network.add_node("a");
  NetworkQosManager qos(network);
  net::RsvpAgent& first = qos.agent(a);
  net::RsvpAgent& again = qos.agent(a);
  EXPECT_EQ(&first, &again);
}

TEST(Testbeds, PriorityTestbedTopology) {
  PriorityTestbed bed((PriorityTestbedParams{}));
  EXPECT_EQ(bed.network.node_count(), 4u);
  EXPECT_EQ(bed.network.next_hop(bed.sender_node, bed.receiver_node), bed.router_node);
  EXPECT_EQ(bed.network.next_hop(bed.cross_node, bed.receiver_node), bed.router_node);
  ASSERT_NE(bed.network.link_between(bed.router_node, bed.receiver_node), nullptr);
  EXPECT_DOUBLE_EQ(
      bed.network.link_between(bed.router_node, bed.receiver_node)->config().bandwidth_bps,
      10e6);
}

TEST(Testbeds, DiffservFlagSwitchesQueueType) {
  PriorityTestbedParams p;
  p.diffserv_bottleneck = true;
  PriorityTestbed bed(p);
  auto* q = dynamic_cast<net::DiffServQueue*>(
      &bed.network.link_between(bed.router_node, bed.receiver_node)->queue());
  EXPECT_NE(q, nullptr);
}

TEST(Testbeds, ReservationTestbedHasIntservPath) {
  ReservationTestbed bed((ReservationTestbedParams{}));
  EXPECT_NE(dynamic_cast<net::IntServQueue*>(
                &bed.network.link_between(bed.sender_node, bed.switch_node)->queue()),
            nullptr);
  EXPECT_NE(dynamic_cast<net::IntServQueue*>(
                &bed.network.link_between(bed.switch_node, bed.receiver_node)->queue()),
            nullptr);
}

}  // namespace
}  // namespace aqm::core

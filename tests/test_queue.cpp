#include "net/queue.hpp"

#include <gtest/gtest.h>

namespace aqm::net {
namespace {

Packet make_packet(std::uint32_t size, Dscp dscp = dscp::kBestEffort,
                   FlowId flow = kNoFlow) {
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = size;
  p.dscp = dscp;
  p.flow = flow;
  return p;
}

const TimePoint t0 = TimePoint::zero();

// --- DropTailQueue -------------------------------------------------------------

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    auto p = make_packet(i * 100);
    EXPECT_FALSE(q.enqueue(std::move(p), t0).has_value());
  }
  EXPECT_EQ(q.packets(), 3u);
  EXPECT_EQ(q.bytes(), 600u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 100u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 200u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 300u);
  EXPECT_FALSE(q.dequeue(t0).has_value());
}

TEST(DropTailQueue, DropsWhenFull) {
  DropTailQueue q(2);
  EXPECT_FALSE(q.enqueue(make_packet(100), t0).has_value());
  EXPECT_FALSE(q.enqueue(make_packet(100), t0).has_value());
  const auto rejected = q.enqueue(make_packet(999), t0);
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->size_bytes, 999u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
}

TEST(DropTailQueue, AlwaysReadyWhenNonEmpty) {
  DropTailQueue q(5);
  EXPECT_FALSE(q.next_ready_delay(t0).has_value());
  (void)q.enqueue(make_packet(10), t0);
  // Drop-tail has no gating: next_ready_delay stays nullopt (callers use
  // dequeue() directly).
  EXPECT_FALSE(q.next_ready_delay(t0).has_value());
}

// --- DiffServQueue -------------------------------------------------------------

TEST(DiffServQueue, EfServedBeforeBestEffort) {
  DiffServQueue q(100);
  (void)q.enqueue(make_packet(1, dscp::kBestEffort), t0);
  (void)q.enqueue(make_packet(2, dscp::kEf), t0);
  (void)q.enqueue(make_packet(3, dscp::kBestEffort), t0);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 2u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 1u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 3u);
}

TEST(DiffServQueue, StrictPriorityAcrossAllClasses) {
  DiffServQueue q(100);
  (void)q.enqueue(make_packet(5, dscp::kAf11), t0);
  (void)q.enqueue(make_packet(4, dscp::kAf21), t0);
  (void)q.enqueue(make_packet(3, dscp::kAf31), t0);
  (void)q.enqueue(make_packet(2, dscp::kAf41), t0);
  (void)q.enqueue(make_packet(1, dscp::kEf), t0);
  (void)q.enqueue(make_packet(6, dscp::kBestEffort), t0);
  (void)q.enqueue(make_packet(0, dscp::kCs6), t0);
  std::vector<std::uint32_t> order;
  while (auto p = q.dequeue(t0)) order.push_back(p->size_bytes);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(DiffServQueue, PerClassCapacityIsolation) {
  DiffServQueue q(2);
  // Fill best effort.
  EXPECT_FALSE(q.enqueue(make_packet(1, dscp::kBestEffort), t0).has_value());
  EXPECT_FALSE(q.enqueue(make_packet(1, dscp::kBestEffort), t0).has_value());
  EXPECT_TRUE(q.enqueue(make_packet(1, dscp::kBestEffort), t0).has_value());
  // EF class still has room: congestion in BE does not hurt EF.
  EXPECT_FALSE(q.enqueue(make_packet(1, dscp::kEf), t0).has_value());
  EXPECT_EQ(q.class_packets(PhbClass::Ef), 1u);
  EXPECT_EQ(q.class_packets(PhbClass::BestEffort), 2u);
}

TEST(DiffServQueue, ClassifyMapsCodepoints) {
  EXPECT_EQ(classify(dscp::kEf), PhbClass::Ef);
  EXPECT_EQ(classify(dscp::kCs6), PhbClass::NetworkControl);
  EXPECT_EQ(classify(dscp::kAf41), PhbClass::Af4);
  EXPECT_EQ(classify(dscp::kAf11), PhbClass::Af1);
  EXPECT_EQ(classify(dscp::kBestEffort), PhbClass::BestEffort);
  EXPECT_EQ(classify(7), PhbClass::BestEffort);  // unknown codepoint
}

// --- IntServQueue --------------------------------------------------------------

IntServQueue::Config small_config() {
  IntServQueue::Config cfg;
  cfg.best_effort_capacity = 4;
  cfg.flow_capacity = 4;
  cfg.control_capacity = 4;
  return cfg;
}

IntServQueue::Config shaping_config() {
  IntServQueue::Config cfg = small_config();
  cfg.excess_to_best_effort = false;  // shape in the flow queue
  return cfg;
}

TEST(IntServQueue, UnreservedTrafficIsBestEffort) {
  IntServQueue q(small_config());
  (void)q.enqueue(make_packet(1, dscp::kBestEffort, 5), t0);
  EXPECT_EQ(q.packets(), 1u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 1u);
}

TEST(IntServQueue, ReservedFlowServedAheadOfBestEffort) {
  IntServQueue q(small_config());
  q.install_reservation(7, 1e6, 50'000, t0);
  (void)q.enqueue(make_packet(100, dscp::kBestEffort, kNoFlow), t0);
  (void)q.enqueue(make_packet(200, dscp::kBestEffort, 7), t0);
  EXPECT_EQ(q.dequeue(t0)->flow, 7u);
  EXPECT_EQ(q.dequeue(t0)->flow, kNoFlow);
}

TEST(IntServQueue, NonConformingReservedWaitsForTokens) {
  IntServQueue q(shaping_config());
  // 8000 bps = 1000 B/s, bucket 1000 B.
  q.install_reservation(7, 8000.0, 1000, t0);
  (void)q.enqueue(make_packet(800, dscp::kBestEffort, 7), t0);
  (void)q.enqueue(make_packet(800, dscp::kBestEffort, 7), t0);
  EXPECT_TRUE(q.dequeue(t0).has_value());   // first conforms (bucket full)
  EXPECT_FALSE(q.dequeue(t0).has_value());  // second must wait for tokens
  const auto delay = q.next_ready_delay(t0);
  ASSERT_TRUE(delay.has_value());
  EXPECT_NEAR(delay->seconds(), 0.6, 0.01);  // needs 600 more bytes at 1000 B/s
  const TimePoint later = t0 + *delay;
  EXPECT_TRUE(q.dequeue(later).has_value());
}

TEST(IntServQueue, FlowQueueTailDropsWhenFull) {
  IntServQueue q(shaping_config());  // flow capacity 4
  q.install_reservation(7, 8000.0, 10'000, t0);
  int dropped = 0;
  for (int i = 0; i < 6; ++i) {
    if (q.enqueue(make_packet(500, dscp::kBestEffort, 7), t0).has_value()) ++dropped;
  }
  EXPECT_EQ(dropped, 2);
  EXPECT_EQ(q.stats().dropped, 2u);
}

TEST(IntServQueue, OversizedReservedPacketDroppedWhenShaping) {
  IntServQueue q(shaping_config());
  q.install_reservation(7, 8000.0, 1000, t0);
  EXPECT_TRUE(q.enqueue(make_packet(2000, dscp::kBestEffort, 7), t0).has_value());
}

TEST(IntServQueue, ExcessDemotesToBestEffortByDefault) {
  IntServQueue q(small_config());
  // 1000 B/s, bucket 1000 B: only the first 1000-byte burst conforms.
  q.install_reservation(7, 8000.0, 1000, t0);
  EXPECT_FALSE(q.enqueue(make_packet(800, dscp::kBestEffort, 7), t0).has_value());
  EXPECT_FALSE(q.enqueue(make_packet(800, dscp::kBestEffort, 7), t0).has_value());
  // First packet conformed (guaranteed queue); second was demoted but NOT
  // dropped: with idle capacity it still flows as best effort.
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_EQ(q.stats().dropped, 0u);
  // Both are immediately eligible (no token gating at dequeue).
  EXPECT_TRUE(q.dequeue(t0).has_value());
  EXPECT_TRUE(q.dequeue(t0).has_value());
}

TEST(IntServQueue, DemotedExcessDropsOnlyWhenBestEffortFull) {
  IntServQueue q(small_config());  // best-effort capacity 4
  q.install_reservation(7, 8000.0, 1000, t0);
  int dropped = 0;
  for (int i = 0; i < 8; ++i) {
    if (q.enqueue(make_packet(900, dscp::kBestEffort, 7), t0).has_value()) ++dropped;
  }
  // 1 conforming + 4 best effort accepted; the rest dropped.
  EXPECT_EQ(dropped, 3);
}

TEST(IntServQueue, ControlPlaneBypassesEverything) {
  IntServQueue q(small_config());
  q.install_reservation(7, 1e9, 50'000, t0);
  (void)q.enqueue(make_packet(1, dscp::kBestEffort, 7), t0);
  (void)q.enqueue(make_packet(2, dscp::kCs6), t0);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 2u);
}

TEST(IntServQueue, RemoveReservationDemotesQueuedPackets) {
  IntServQueue q(shaping_config());
  q.install_reservation(7, 8000.0, 1000, t0);
  (void)q.enqueue(make_packet(400, dscp::kBestEffort, 7), t0);
  (void)q.enqueue(make_packet(400, dscp::kBestEffort, 7), t0);
  q.remove_reservation(7);
  EXPECT_FALSE(q.has_reservation(7));
  EXPECT_EQ(q.packets(), 2u);  // still queued, now as best effort
  EXPECT_TRUE(q.dequeue(t0).has_value());
  EXPECT_TRUE(q.dequeue(t0).has_value());
}

TEST(IntServQueue, ReservedRateSumsFlows) {
  IntServQueue q(small_config());
  q.install_reservation(1, 1e6, 10'000, t0);
  q.install_reservation(2, 2e6, 10'000, t0);
  EXPECT_DOUBLE_EQ(q.reserved_rate_bps(), 3e6);
  EXPECT_DOUBLE_EQ(q.flow_rate_bps(1), 1e6);
  EXPECT_DOUBLE_EQ(q.flow_rate_bps(99), 0.0);
  // Modify replaces, does not add.
  q.install_reservation(1, 0.5e6, 10'000, t0);
  EXPECT_DOUBLE_EQ(q.reserved_rate_bps(), 2.5e6);
}

TEST(IntServQueue, NextReadyNulloptWhenEmpty) {
  IntServQueue q(small_config());
  EXPECT_FALSE(q.next_ready_delay(t0).has_value());
}

}  // namespace
}  // namespace aqm::net

// Determinism and allocation guarantees of the calendar-queue engine.
//
// 1. Golden trace: a reference engine (binary heap ordered by (time, seq)
//    with lazy cancellation — the semantics the calendar queue replaced)
//    runs the same randomized schedule/fire/cancel workload as sim::Engine;
//    both execution traces must match event for event.
// 2. Steady-state scheduling is allocation-free: a hold-model loop with
//    capture-light handlers performs zero heap allocations once warmed up,
//    verified by counting global operator new.
// 3. Partitioned diff suite: randomized star-of-branches topologies with
//    lossy and token-bucket-gated links run under --partitions 1/2/4; the
//    canonical delivery trace, merged per-flow counters and merged metrics
//    snapshot must be byte-identical to the single-engine run (the
//    partitioned-execution contract of DESIGN.md §14).
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "net/queue.hpp"
#include "obs/metrics.hpp"
#include "sim/partition.hpp"

// --- counting allocator ------------------------------------------------------

namespace {
// Atomic: the partitioned-diff suite allocates from worker threads, and the
// replacement operator new below is process-global.
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqm::sim {
namespace {

// --- reference engine --------------------------------------------------------

/// Textbook DES queue: std::push_heap/pop_heap over (time, seq) with an
/// unordered_set of lazily-cancelled sequence numbers. Kept here as the
/// behavioral oracle for the calendar queue.
class RefEngine {
 public:
  struct Id {
    std::uint64_t seq = 0;
  };

  [[nodiscard]] TimePoint now() const { return now_; }

  template <typename F>
  Id at(TimePoint t, F&& fn) {
    queue_.push_back(Event{t, next_seq_, std::function<void()>(std::forward<F>(fn))});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
    return Id{next_seq_++};
  }

  template <typename F>
  Id after(Duration d, F&& fn) {
    return at(now_ + d, std::forward<F>(fn));
  }

  bool cancel(Id id) {
    if (id.seq == 0 || id.seq >= next_seq_) return false;
    return cancelled_.insert(id.seq).second;
  }

  bool step() {
    while (!queue_.empty()) {
      std::pop_heap(queue_.begin(), queue_.end(), Later{});
      Event ev = std::move(queue_.back());
      queue_.pop_back();
      if (cancelled_.erase(ev.seq) != 0) continue;
      now_ = ev.time;
      ev.fn();
      return true;
    }
    return false;
  }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::zero();
  std::uint64_t next_seq_ = 1;
  std::vector<Event> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

// --- golden-trace workload ---------------------------------------------------

/// Runs a self-sustaining schedule/cancel workload on any engine with the
/// at/after/cancel/step API. All decisions come from one LCG, so two
/// engines with identical firing order consume identical random streams
/// and produce identical traces; any ordering divergence derails the
/// streams and shows up as a trace mismatch.
template <typename EngineT>
class Workload {
 public:
  std::vector<std::pair<std::int64_t, int>> run(int budget) {
    budget_ = budget;
    for (int i = 0; i < 32; ++i) schedule_one();
    while (engine_.step()) {
    }
    return std::move(trace_);
  }

 private:
  using Id = decltype(std::declval<EngineT&>().after(Duration::zero(),
                                                     std::function<void()>{}));

  std::uint32_t next() {
    rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(rng_ >> 33);
  }

  /// Mixed magnitudes: same-instant ties, sub-bucket, rung-sized, and
  /// far-future deltas, so the calendar queue crosses every routing path.
  Duration delta() {
    switch (next() % 4) {
      case 0: return nanoseconds(0);
      case 1: return nanoseconds(next() % 64);
      case 2: return nanoseconds(next() % 4096);
      default: return nanoseconds(next() % 1'000'000);
    }
  }

  void schedule_one() {
    if (budget_ <= 0) return;
    --budget_;
    const int label = next_label_++;
    Id id = engine_.after(delta(), [this, label] { fired(label); });
    if (next() % 4 == 0) cancellable_.push_back(id);
  }

  void fired(int label) {
    trace_.emplace_back(engine_.now().ns(), label);
    const std::uint32_t children = next() % 4;  // avg 1.5 sustains the load
    for (std::uint32_t i = 0; i < children; ++i) schedule_one();
    if (!cancellable_.empty() && next() % 3 == 0) {
      // May hit an already-fired id — both engines must reject it without
      // disturbing anything.
      const std::size_t pick = next() % cancellable_.size();
      engine_.cancel(cancellable_[pick]);
      cancellable_.erase(cancellable_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    }
  }

  EngineT engine_;
  std::vector<std::pair<std::int64_t, int>> trace_;
  std::vector<Id> cancellable_;
  std::uint64_t rng_ = 0x2545F4914F6CDD1DULL;
  int next_label_ = 0;
  int budget_ = 0;
};

TEST(EngineDeterminism, TraceMatchesReferenceHeapEngine) {
  const auto actual = Workload<Engine>{}.run(20'000);
  const auto expected = Workload<RefEngine>{}.run(20'000);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i]) << "divergence at event " << i;
  }
  // The workload must have actually fired a nontrivial number of events.
  EXPECT_GT(actual.size(), 10'000u);
}

TEST(EngineDeterminism, TraceTimesAreMonotonic) {
  const auto trace = Workload<Engine>{}.run(5'000);
  EXPECT_TRUE(std::is_sorted(
      trace.begin(), trace.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

// --- zero-allocation steady state --------------------------------------------

/// Hold-model event: fires, draws a pseudo-random delay, reschedules
/// itself. 24-byte capture — comfortably inside InlineHandler's buffer.
struct HoldOp {
  Engine* e;
  std::uint64_t* rng;
  std::uint64_t* sink;

  void operator()() const {
    *rng = *rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto r = static_cast<std::uint32_t>(*rng >> 33);
    *sink += r & 1;
    e->after(nanoseconds(static_cast<std::int64_t>(r & 0x3fff) + 1),
             HoldOp{e, rng, sink});
  }
};

TEST(EngineAllocation, SteadyStateHoldLoopIsAllocationFree) {
  Engine e;
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  std::uint64_t sink = 0;
  for (int i = 0; i < 256; ++i) HoldOp{&e, &rng, &sink}();
  // Warm up until every recycled vector (slab, near list, rung buckets)
  // has reached its steady-state capacity.
  for (int i = 0; i < 200'000; ++i) ASSERT_TRUE(e.step());

  const std::uint64_t before = g_heap_allocs;
  for (int i = 0; i < 50'000; ++i) ASSERT_TRUE(e.step());
  EXPECT_EQ(g_heap_allocs - before, 0u)
      << "schedule->fire loop allocated on the heap";
  EXPECT_GT(sink, 0u);
}

// --- partitioned diff suite --------------------------------------------------

/// One run of a seed-randomized city fabric at a given partition count.
/// Every decision (topology jitter, loss seeds, reservations, send times,
/// packet sizes) comes from the seed alone, so two runs with the same seed
/// describe the same simulated world regardless of how it is sharded.
struct FabricRun {
  /// Deliveries in canonical (arrival_ns, flow, seq) order.
  std::vector<std::tuple<std::int64_t, net::FlowId, std::uint64_t>> deliveries;
  std::map<std::string, std::uint64_t> counters;  // merged metrics export
  WorldStats stats;
};

FabricRun run_fabric(std::uint64_t seed, unsigned partitions) {
  constexpr std::size_t kBranches = 6;
  constexpr std::size_t kHostsPerBranch = 4;
  constexpr int kPacketsPerFlow = 60;

  std::uint64_t rng = seed * 0x9E3779B97F4A7C15ULL + 1;
  const auto next = [&rng] {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(rng >> 33);
  };

  World world(EngineConfig{partitions});
  net::Network net(world);

  const net::NodeId hub = net.add_node("hub");
  std::vector<net::NodeId> branches;
  std::vector<net::NodeId> hosts;
  std::vector<net::IntServQueue*> uplinks;  // branch -> hub egress queues
  for (std::size_t b = 0; b < kBranches; ++b) {
    const net::NodeId br = net.add_node("br" + std::to_string(b));
    branches.push_back(br);

    // Branch uplink: the fabric bottleneck. IntServ egress with a small
    // best-effort ring (drops under burst) and, below, token-bucket-gated
    // reservations; every third uplink is additionally lossy. Propagation
    // is ns-jittered so cross-partition arrivals never tie with local
    // events (the §14 tie-break caveat).
    net::LinkConfig up;
    up.bandwidth_bps = 20e6 + static_cast<double>(next() % 4) * 10e6;
    up.propagation = microseconds(50) + nanoseconds(1 + next() % 4999);
    if (b % 3 == 2) {
      up.loss_probability = 0.02;
      up.loss_seed = seed ^ (b * 0x51ED2701ULL);
    }
    net::IntServQueue::Config qc;
    qc.best_effort_capacity = 48;
    auto q = std::make_unique<net::IntServQueue>(qc);
    uplinks.push_back(q.get());
    net.add_link(br, hub, up, std::move(q));

    net::LinkConfig down = up;
    down.loss_probability = 0.0;
    down.propagation = microseconds(50) + nanoseconds(1 + next() % 4999);
    net.add_link(hub, br, down);

    for (std::size_t h = 0; h < kHostsPerBranch; ++h) {
      const net::NodeId host = net.add_node("h" + std::to_string(b) + "_" +
                                            std::to_string(h));
      hosts.push_back(host);
      net::LinkConfig access;
      access.bandwidth_bps = 100e6;
      access.propagation = microseconds(10) + nanoseconds(1 + next() % 997);
      net.add_duplex_link(host, br, access);
    }
  }

  // Every 4th flow holds a token-bucket-gated EF reservation on its
  // branch uplink (the conformance-retry path crosses the cut).
  const std::size_t n_hosts = hosts.size();
  for (std::size_t i = 0; i < n_hosts; i += 4) {
    const auto f = static_cast<net::FlowId>(i + 1);
    uplinks[i / kHostsPerBranch]->install_reservation(f, 40e3, 4'000,
                                                      TimePoint::zero());
  }

  net.auto_partition();

  // Per-host delivery logs: each is written only by the receiving node's
  // partition thread, merged canonically after the run.
  std::vector<std::vector<std::tuple<std::int64_t, net::FlowId, std::uint64_t>>>
      logs(n_hosts);
  for (std::size_t i = 0; i < n_hosts; ++i) {
    const net::NodeId node = hosts[i];
    auto* log = &logs[i];
    sim::Engine& eng = net.engine_of(node);
    net.set_receiver(node, [log, &eng](net::Packet&& p) {
      log->emplace_back(eng.now().ns(), p.flow, p.seq);
    });
  }

  // Traffic: host i drives flow i+1 at a pseudo-random host in another
  // branch; ns-granularity send times spread over two simulated seconds.
  for (std::size_t i = 0; i < n_hosts; ++i) {
    const std::size_t branch = i / kHostsPerBranch;
    const net::NodeId src = hosts[i];
    sim::Engine& eng = net.engine_of(src);
    for (int k = 0; k < kPacketsPerFlow; ++k) {
      std::size_t dst_i = next() % n_hosts;
      if (dst_i / kHostsPerBranch == branch) {
        dst_i = (dst_i + kHostsPerBranch) % n_hosts;
      }
      net::Packet p;
      p.dst = hosts[dst_i];
      p.flow = static_cast<net::FlowId>(i + 1);
      p.seq = static_cast<std::uint64_t>(k);
      p.size_bytes = 200 + next() % 1201;
      p.dscp = i % 4 == 0 ? net::dscp::kEf : net::dscp::kBestEffort;
      const TimePoint t =
          TimePoint::zero() +
          nanoseconds(static_cast<std::int64_t>(next() % 2'000'000'000u));
      eng.at(t, [&net, src, p]() mutable { net.send(src, std::move(p)); });
    }
  }

  world.run();

  FabricRun out;
  for (const auto& log : logs) {
    out.deliveries.insert(out.deliveries.end(), log.begin(), log.end());
  }
  std::sort(out.deliveries.begin(), out.deliveries.end());
  obs::MetricsRegistry reg;
  net.export_metrics(reg, "net");
  out.counters = reg.snapshot().counters;
  out.stats = world.stats();
  return out;
}

TEST(PartitionedDiff, RandomizedFabricsMatchSingleEngineRun) {
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const FabricRun ref = run_fabric(seed, 1);
    // The workload must be non-trivial: thousands of deliveries and some
    // loss (lossy uplinks + best-effort drops) or the diff proves little.
    ASSERT_GT(ref.deliveries.size(), 1000u) << "seed " << seed;
    ASSERT_GT(ref.counters.at("net.total.dropped"), 0u) << "seed " << seed;

    for (const unsigned parts : {2u, 4u}) {
      const FabricRun run = run_fabric(seed, parts);
      EXPECT_EQ(run.deliveries, ref.deliveries)
          << "seed " << seed << " partitions " << parts;
      EXPECT_EQ(run.counters, ref.counters)
          << "seed " << seed << " partitions " << parts;
      // The cut must actually carry traffic, or the run degenerated into
      // a single-partition world and the comparison is vacuous.
      EXPECT_GT(run.stats.messages, 0u)
          << "seed " << seed << " partitions " << parts;
      EXPECT_GT(run.stats.windows, 0u);
    }
  }
}

}  // namespace
}  // namespace aqm::sim

// Determinism and allocation guarantees of the calendar-queue engine.
//
// 1. Golden trace: a reference engine (binary heap ordered by (time, seq)
//    with lazy cancellation — the semantics the calendar queue replaced)
//    runs the same randomized schedule/fire/cancel workload as sim::Engine;
//    both execution traces must match event for event.
// 2. Steady-state scheduling is allocation-free: a hold-model loop with
//    capture-light handlers performs zero heap allocations once warmed up,
//    verified by counting global operator new.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <new>
#include <unordered_set>
#include <utility>
#include <vector>

// --- counting allocator ------------------------------------------------------

namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqm::sim {
namespace {

// --- reference engine --------------------------------------------------------

/// Textbook DES queue: std::push_heap/pop_heap over (time, seq) with an
/// unordered_set of lazily-cancelled sequence numbers. Kept here as the
/// behavioral oracle for the calendar queue.
class RefEngine {
 public:
  struct Id {
    std::uint64_t seq = 0;
  };

  [[nodiscard]] TimePoint now() const { return now_; }

  template <typename F>
  Id at(TimePoint t, F&& fn) {
    queue_.push_back(Event{t, next_seq_, std::function<void()>(std::forward<F>(fn))});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
    return Id{next_seq_++};
  }

  template <typename F>
  Id after(Duration d, F&& fn) {
    return at(now_ + d, std::forward<F>(fn));
  }

  bool cancel(Id id) {
    if (id.seq == 0 || id.seq >= next_seq_) return false;
    return cancelled_.insert(id.seq).second;
  }

  bool step() {
    while (!queue_.empty()) {
      std::pop_heap(queue_.begin(), queue_.end(), Later{});
      Event ev = std::move(queue_.back());
      queue_.pop_back();
      if (cancelled_.erase(ev.seq) != 0) continue;
      now_ = ev.time;
      ev.fn();
      return true;
    }
    return false;
  }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = TimePoint::zero();
  std::uint64_t next_seq_ = 1;
  std::vector<Event> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

// --- golden-trace workload ---------------------------------------------------

/// Runs a self-sustaining schedule/cancel workload on any engine with the
/// at/after/cancel/step API. All decisions come from one LCG, so two
/// engines with identical firing order consume identical random streams
/// and produce identical traces; any ordering divergence derails the
/// streams and shows up as a trace mismatch.
template <typename EngineT>
class Workload {
 public:
  std::vector<std::pair<std::int64_t, int>> run(int budget) {
    budget_ = budget;
    for (int i = 0; i < 32; ++i) schedule_one();
    while (engine_.step()) {
    }
    return std::move(trace_);
  }

 private:
  using Id = decltype(std::declval<EngineT&>().after(Duration::zero(),
                                                     std::function<void()>{}));

  std::uint32_t next() {
    rng_ = rng_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(rng_ >> 33);
  }

  /// Mixed magnitudes: same-instant ties, sub-bucket, rung-sized, and
  /// far-future deltas, so the calendar queue crosses every routing path.
  Duration delta() {
    switch (next() % 4) {
      case 0: return nanoseconds(0);
      case 1: return nanoseconds(next() % 64);
      case 2: return nanoseconds(next() % 4096);
      default: return nanoseconds(next() % 1'000'000);
    }
  }

  void schedule_one() {
    if (budget_ <= 0) return;
    --budget_;
    const int label = next_label_++;
    Id id = engine_.after(delta(), [this, label] { fired(label); });
    if (next() % 4 == 0) cancellable_.push_back(id);
  }

  void fired(int label) {
    trace_.emplace_back(engine_.now().ns(), label);
    const std::uint32_t children = next() % 4;  // avg 1.5 sustains the load
    for (std::uint32_t i = 0; i < children; ++i) schedule_one();
    if (!cancellable_.empty() && next() % 3 == 0) {
      // May hit an already-fired id — both engines must reject it without
      // disturbing anything.
      const std::size_t pick = next() % cancellable_.size();
      engine_.cancel(cancellable_[pick]);
      cancellable_.erase(cancellable_.begin() +
                         static_cast<std::ptrdiff_t>(pick));
    }
  }

  EngineT engine_;
  std::vector<std::pair<std::int64_t, int>> trace_;
  std::vector<Id> cancellable_;
  std::uint64_t rng_ = 0x2545F4914F6CDD1DULL;
  int next_label_ = 0;
  int budget_ = 0;
};

TEST(EngineDeterminism, TraceMatchesReferenceHeapEngine) {
  const auto actual = Workload<Engine>{}.run(20'000);
  const auto expected = Workload<RefEngine>{}.run(20'000);
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ASSERT_EQ(actual[i], expected[i]) << "divergence at event " << i;
  }
  // The workload must have actually fired a nontrivial number of events.
  EXPECT_GT(actual.size(), 10'000u);
}

TEST(EngineDeterminism, TraceTimesAreMonotonic) {
  const auto trace = Workload<Engine>{}.run(5'000);
  EXPECT_TRUE(std::is_sorted(
      trace.begin(), trace.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

// --- zero-allocation steady state --------------------------------------------

/// Hold-model event: fires, draws a pseudo-random delay, reschedules
/// itself. 24-byte capture — comfortably inside InlineHandler's buffer.
struct HoldOp {
  Engine* e;
  std::uint64_t* rng;
  std::uint64_t* sink;

  void operator()() const {
    *rng = *rng * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto r = static_cast<std::uint32_t>(*rng >> 33);
    *sink += r & 1;
    e->after(nanoseconds(static_cast<std::int64_t>(r & 0x3fff) + 1),
             HoldOp{e, rng, sink});
  }
};

TEST(EngineAllocation, SteadyStateHoldLoopIsAllocationFree) {
  Engine e;
  std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
  std::uint64_t sink = 0;
  for (int i = 0; i < 256; ++i) HoldOp{&e, &rng, &sink}();
  // Warm up until every recycled vector (slab, near list, rung buckets)
  // has reached its steady-state capacity.
  for (int i = 0; i < 200'000; ++i) ASSERT_TRUE(e.step());

  const std::uint64_t before = g_heap_allocs;
  for (int i = 0; i < 50'000; ++i) ASSERT_TRUE(e.step());
  EXPECT_EQ(g_heap_allocs - before, 0u)
      << "schedule->fire loop allocated on the heap";
  EXPECT_GT(sink, 0u);
}

}  // namespace
}  // namespace aqm::sim

// Protocol-level tests for sim::World, the conservative-lookahead
// partitioned executor. These exercise the raw safe-window machinery
// (horizons, barriers, channel injection order, termination, exception
// propagation) against a single-engine reference, independent of the
// net-layer boundary-link wiring that tests/test_engine_determinism.cpp
// covers end to end.
#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/time.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace aqm::sim {
namespace {

struct Rec {
  unsigned part;
  std::int64_t t_ns;
  int chain;
  int hop;
  bool operator==(const Rec&) const = default;
};

constexpr Duration kLookahead = milliseconds(1);

/// Message chains hopping around a ring of partitions: chain c starts on
/// partition c % P and each hop crosses to the next partition at
/// t + lookahead + (c*7+1) ns — a strictly-conforming cross-partition
/// send with all record times distinct by construction.
struct Ring {
  World* w;
  std::vector<std::vector<Rec>>* recs;
  int hops;

  void fire(unsigned part, int chain, int hop, TimePoint t) {
    (*recs)[part].push_back(Rec{part, t.ns(), chain, hop});
    if (hop + 1 >= hops) return;
    const unsigned next = (part + 1) % w->partitions();
    const TimePoint arr = t + kLookahead + nanoseconds(chain * 7 + 1);
    auto handler = [this, next, chain, hop, arr] { fire(next, chain, hop + 1, arr); };
    if (next == part) {
      w->engine(part).at(arr, handler);  // single-partition ring: stay local
    } else {
      w->post(next, arr, handler);
    }
  }
};

std::vector<Rec> run_ring(unsigned partitions, int chains, int hops) {
  World w(EngineConfig{partitions});
  w.set_lookahead(kLookahead);
  std::vector<std::vector<Rec>> recs(partitions);
  Ring ring{&w, &recs, hops};
  for (int c = 0; c < chains; ++c) {
    const unsigned part = static_cast<unsigned>(c) % partitions;
    const TimePoint start{microseconds(10 * (c + 1)).ns()};
    w.engine(part).at(start, [&ring, part, c, start] { ring.fire(part, c, 0, start); });
  }
  w.run();
  std::vector<Rec> merged;
  for (const auto& r : recs) merged.insert(merged.end(), r.begin(), r.end());
  std::sort(merged.begin(), merged.end(),
            [](const Rec& a, const Rec& b) { return a.t_ns < b.t_ns; });
  return merged;
}

/// The oracle: the same chains on one plain engine, partition index kept
/// as a plain label.
std::vector<Rec> run_ring_reference(unsigned partitions, int chains, int hops) {
  Engine e;
  std::vector<Rec> recs;
  struct Hop {
    Engine* e;
    std::vector<Rec>* recs;
    unsigned partitions;
    int hops;
    void fire(unsigned part, int chain, int hop, TimePoint t) {
      recs->push_back(Rec{part, t.ns(), chain, hop});
      if (hop + 1 >= hops) return;
      const unsigned next = (part + 1) % partitions;
      const TimePoint arr = t + kLookahead + nanoseconds(chain * 7 + 1);
      e->at(arr, [this, next, chain, hop, arr] { fire(next, chain, hop + 1, arr); });
    }
  };
  Hop h{&e, &recs, partitions, hops};
  for (int c = 0; c < chains; ++c) {
    const unsigned part = static_cast<unsigned>(c) % partitions;
    const TimePoint start{microseconds(10 * (c + 1)).ns()};
    e.at(start, [&h, part, c, start] { h.fire(part, c, 0, start); });
  }
  e.run();
  std::sort(recs.begin(), recs.end(),
            [](const Rec& a, const Rec& b) { return a.t_ns < b.t_ns; });
  return recs;
}

TEST(World, SinglePartitionRunsInline) {
  World w(EngineConfig{1});
  int fired = 0;
  w.engine(0).after(milliseconds(1), [&] { ++fired; });
  w.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(w.stats().events, 1u);
  EXPECT_EQ(w.stats().windows, 0u);
  EXPECT_EQ(w.stats().messages, 0u);
}

TEST(World, ZeroPartitionsClampsToOne) {
  World w(EngineConfig{0});
  EXPECT_EQ(w.partitions(), 1u);
}

TEST(World, RingMatchesSingleEngineReference) {
  EXPECT_EQ(run_ring(1, 8, 6), run_ring_reference(1, 8, 6));
  EXPECT_EQ(run_ring(2, 8, 6), run_ring_reference(2, 8, 6));
  EXPECT_EQ(run_ring(4, 8, 6), run_ring_reference(4, 8, 6));
}

TEST(World, RepeatedPartitionedRunsAreBitIdentical) {
  const std::vector<Rec> first = run_ring(4, 12, 5);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_ring(4, 12, 5), first);
}

TEST(World, SameTimeArrivalsInjectInSourceThenSequenceOrder) {
  // Partitions 1 and 2 each post two handlers to partition 0 at the SAME
  // arrival time. The contract: injection orders by (time, source
  // partition, per-channel sequence) — a pure function of simulation
  // state, independent of which worker ran first.
  World w(EngineConfig{3});
  w.set_lookahead(kLookahead);
  std::vector<int> order;
  const TimePoint arr{milliseconds(5).ns()};
  for (unsigned src : {1u, 2u}) {
    w.engine(src).at(TimePoint{microseconds(src).ns()}, [&w, &order, arr, src] {
      w.post(0, arr, [&order, src] { order.push_back(static_cast<int>(src) * 10); });
      w.post(0, arr, [&order, src] { order.push_back(static_cast<int>(src) * 10 + 1); });
    });
  }
  w.run();
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21}));
}

TEST(World, StatsCountProtocolTraffic) {
  World w(EngineConfig{2});
  w.set_lookahead(kLookahead);
  int received = 0;
  w.engine(0).at(TimePoint{microseconds(1).ns()}, [&] {
    w.post(1, TimePoint{microseconds(1).ns() + kLookahead.ns()}, [&] { ++received; });
  });
  w.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(w.stats().messages, 1u);
  EXPECT_GE(w.stats().windows, 2u);  // sender's window + receiver's window
  // CloseInject runs once per window plus the final termination round.
  EXPECT_EQ(w.stats().horizon_posts, (w.stats().windows + 1) * 2);
  EXPECT_EQ(w.stats().events, 2u);
}

TEST(World, HandlerExceptionPropagatesAndTerminates) {
  World w(EngineConfig{2});
  w.set_lookahead(kLookahead);
  // Give partition 0 an endless timer chain: without the abort path the
  // protocol would keep opening windows forever after partition 1 dies.
  struct Chain {
    World* w;
    int remaining;
    void arm(TimePoint t) {
      if (remaining-- <= 0) return;
      w->engine(0).at(t, [this, t] { arm(t + milliseconds(1)); });
    }
  };
  Chain chain{&w, 1'000'000};
  chain.arm(TimePoint{milliseconds(1).ns()});
  w.engine(1).at(TimePoint{milliseconds(3).ns()},
                 [] { throw std::runtime_error("boom"); });
  EXPECT_THROW(w.run(), std::runtime_error);
}

TEST(World, CurrentPartitionTracksOwningThread) {
  World w(EngineConfig{2});
  w.set_lookahead(kLookahead);
  EXPECT_EQ(World::current_partition(), 0u);
  unsigned seen0 = 99, seen1 = 99;
  w.engine(0).at(TimePoint{microseconds(1).ns()},
                 [&] { seen0 = World::current_partition(); });
  w.engine(1).at(TimePoint{microseconds(1).ns()},
                 [&] { seen1 = World::current_partition(); });
  w.run();
  EXPECT_EQ(seen0, 0u);
  EXPECT_EQ(seen1, 1u);
  EXPECT_EQ(World::current_partition(), 0u);
}

// --- Network world-mode wiring -----------------------------------------------

/// a --(1ms)--> b, nodes pinned to different partitions by hand. The cut
/// link's propagation becomes the lookahead; counters land in separate
/// shards and merge through the accessors.
TEST(WorldNetwork, CrossPartitionDeliveryAndCounterMerge) {
  World w(EngineConfig{2});
  net::Network net(w);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig lc;
  lc.propagation = milliseconds(1);
  net.add_link(a, b, lc);
  net.set_node_partition(b, 1);

  int got = 0;
  net.set_receiver(b, [&got](net::Packet&&) { ++got; });
  for (int i = 0; i < 4; ++i) {
    net.engine_of(a).at(TimePoint{microseconds(10 * (i + 1)).ns()}, [&net, a, b, i] {
      net::Packet p;
      p.dst = b;
      p.flow = 7;
      p.seq = static_cast<std::uint64_t>(i);
      p.size_bytes = 500;
      net.send(a, std::move(p));
    });
  }
  w.run();

  EXPECT_EQ(got, 4);
  EXPECT_TRUE(net.link_between(a, b)->is_boundary());
  EXPECT_EQ(w.stats().messages, 4u);  // one channel crossing per packet
  // sent is counted on partition 0's shard, delivered on partition 1's;
  // flow()/totals() must merge them back together.
  EXPECT_EQ(net.flow(7).sent, 4u);
  EXPECT_EQ(net.flow(7).delivered, 4u);
  EXPECT_EQ(net.totals().sent, 4u);
  EXPECT_EQ(net.totals().delivered, 4u);
  EXPECT_GE(net.end_time().ns(), milliseconds(1).ns());
}

TEST(WorldNetwork, ZeroPropagationCutThrowsAtStart) {
  World w(EngineConfig{2});
  net::Network net(w);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig lc;
  lc.propagation = Duration::zero();
  net.add_link(a, b, lc);
  net.set_node_partition(b, 1);
  EXPECT_THROW(w.run(), std::runtime_error);
}

TEST(WorldNetwork, AutoPartitionPinsHubAndKeepsBranchesWhole) {
  World w(EngineConfig{2});
  net::Network net(w);
  const net::NodeId hub = net.add_node("hub");
  net::LinkConfig lc;
  lc.propagation = microseconds(100);
  std::vector<std::vector<net::NodeId>> branch_nodes;
  for (int b = 0; b < 4; ++b) {
    const net::NodeId br = net.add_node("br" + std::to_string(b));
    net.add_duplex_link(hub, br, lc);
    branch_nodes.push_back({br});
    for (int h = 0; h < 3; ++h) {
      const net::NodeId host = net.add_node("h" + std::to_string(b) + std::to_string(h));
      net.add_duplex_link(br, host, lc);
      branch_nodes.back().push_back(host);
    }
  }
  net.auto_partition();

  EXPECT_EQ(net.node_partition(hub), 0u);
  bool used1 = false;
  for (const auto& branch : branch_nodes) {
    // A branch never straddles the cut: its router and hosts agree.
    const unsigned part = net.node_partition(branch[0]);
    for (const net::NodeId n : branch) EXPECT_EQ(net.node_partition(n), part);
    used1 |= part == 1;
  }
  EXPECT_TRUE(used1) << "heuristic left partition 1 empty";
  // Deterministic: a second pass lands every node in the same place.
  std::vector<unsigned> first;
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    first.push_back(net.node_partition(static_cast<net::NodeId>(n)));
  }
  net.auto_partition();
  for (std::size_t n = 0; n < net.node_count(); ++n) {
    EXPECT_EQ(net.node_partition(static_cast<net::NodeId>(n)), first[n]);
  }
}

TEST(WorldNetwork, AutoPartitionKeepsZeroPropagationEdgesInternal) {
  World w(EngineConfig{2});
  net::Network net(w);
  const net::NodeId hub = net.add_node("hub");
  net::LinkConfig lc;
  lc.propagation = microseconds(100);
  net::LinkConfig glued = lc;
  glued.propagation = Duration::zero();
  // Two branches of unequal weight joined by a zero-propagation edge: the
  // heuristic must keep them on one partition (the cut needs lookahead).
  const net::NodeId b0 = net.add_node("b0");
  const net::NodeId b1 = net.add_node("b1");
  net.add_duplex_link(hub, b0, lc);
  net.add_duplex_link(hub, b1, lc);
  net.add_duplex_link(b0, b1, glued);
  const net::NodeId b2 = net.add_node("b2");
  net.add_duplex_link(hub, b2, lc);
  net.auto_partition();
  EXPECT_EQ(net.node_partition(b0), net.node_partition(b1));
  w.run();  // finalize validates: no zero-propagation edge on the cut
}

}  // namespace
}  // namespace aqm::sim

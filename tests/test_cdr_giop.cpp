#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "orb/cdr.hpp"
#include "orb/giop.hpp"

namespace aqm::orb {
namespace {

// --- CDR -------------------------------------------------------------------------

TEST(Cdr, PrimitiveRoundTrip) {
  CdrWriter w;
  w.write_u8(0xAB);
  w.write_u16(0x1234);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i32(-42);
  w.write_i64(std::numeric_limits<std::int64_t>::min());
  w.write_bool(true);
  w.write_f32(3.5F);
  w.write_f64(-2.25);

  CdrReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u16(), 0x1234);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i32(), -42);
  EXPECT_EQ(r.read_i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(r.read_bool());
  EXPECT_FLOAT_EQ(r.read_f32(), 3.5F);
  EXPECT_DOUBLE_EQ(r.read_f64(), -2.25);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Cdr, AlignmentRules) {
  CdrWriter w;
  w.write_u8(1);     // offset 0
  w.write_u32(2);    // aligns to 4: pads 3 bytes
  EXPECT_EQ(w.size(), 8u);
  w.write_u8(3);     // offset 8
  w.write_u64(4);    // aligns to 16: pads 7
  EXPECT_EQ(w.size(), 24u);

  CdrReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 1);
  EXPECT_EQ(r.read_u32(), 2u);
  EXPECT_EQ(r.read_u8(), 3);
  EXPECT_EQ(r.read_u64(), 4u);
}

TEST(Cdr, StringRoundTrip) {
  CdrWriter w;
  w.write_string("hello");
  w.write_string("");
  w.write_string("with \0 no, actually not");  // literal truncates at NUL
  CdrReader r(w.buffer());
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_EQ(r.read_string(), "");
  EXPECT_EQ(r.read_string(), "with ");
}

TEST(Cdr, OctetsRoundTrip) {
  CdrWriter w;
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  w.write_octets(data);
  CdrReader r(w.buffer());
  EXPECT_EQ(r.read_octets(), data);
}

TEST(Cdr, UnderrunThrows) {
  CdrWriter w;
  w.write_u16(7);
  CdrReader r(w.buffer());
  (void)r.read_u16();
  EXPECT_THROW((void)r.read_u32(), MarshalError);
}

TEST(Cdr, TruncatedStringThrows) {
  CdrWriter w;
  w.write_u32(100);  // claims 100 bytes follow
  w.write_u8('x');
  CdrReader r(w.buffer());
  EXPECT_THROW((void)r.read_string(), MarshalError);
}

TEST(Cdr, PatchU32) {
  CdrWriter w;
  w.write_u32(0);
  w.write_u32(7);
  w.patch_u32(0, 99);
  CdrReader r(w.buffer());
  EXPECT_EQ(r.read_u32(), 99u);
  EXPECT_EQ(r.read_u32(), 7u);
  EXPECT_THROW(w.patch_u32(100, 1), MarshalError);
}

TEST(Cdr, RandomizedRoundTrip) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    CdrWriter w;
    std::vector<std::uint64_t> values;
    std::vector<int> kinds;
    const int n = static_cast<int>(rng.uniform_int(1, 30));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.uniform_int(0, 3));
      const std::uint64_t v = rng.next_u64();
      kinds.push_back(kind);
      values.push_back(v);
      switch (kind) {
        case 0: w.write_u8(static_cast<std::uint8_t>(v)); break;
        case 1: w.write_u16(static_cast<std::uint16_t>(v)); break;
        case 2: w.write_u32(static_cast<std::uint32_t>(v)); break;
        default: w.write_u64(v); break;
      }
    }
    CdrReader r(w.buffer());
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = values[static_cast<std::size_t>(i)];
      switch (kinds[static_cast<std::size_t>(i)]) {
        case 0: ASSERT_EQ(r.read_u8(), static_cast<std::uint8_t>(v)); break;
        case 1: ASSERT_EQ(r.read_u16(), static_cast<std::uint16_t>(v)); break;
        case 2: ASSERT_EQ(r.read_u32(), static_cast<std::uint32_t>(v)); break;
        default: ASSERT_EQ(r.read_u64(), v); break;
      }
    }
  }
}

// --- GIOP -------------------------------------------------------------------------

RequestHeader make_request_header() {
  RequestHeader h;
  h.request_id = 42;
  h.response_expected = true;
  h.object_key = "video/receiver1";
  h.operation = "push_frame";
  h.contexts.push_back(make_priority_context(20'000));
  h.contexts.push_back(make_timestamp_context(TimePoint{123'456'789}));
  return h;
}

TEST(Giop, RequestRoundTrip) {
  const std::vector<std::uint8_t> body{9, 8, 7, 6, 5};
  const auto bytes = encode_request(make_request_header(), body);
  const GiopMessage msg = decode(bytes);
  EXPECT_EQ(msg.type, GiopMsgType::Request);
  EXPECT_EQ(msg.request.request_id, 42u);
  EXPECT_TRUE(msg.request.response_expected);
  EXPECT_EQ(msg.request.object_key, "video/receiver1");
  EXPECT_EQ(msg.request.operation, "push_frame");
  EXPECT_EQ(msg.body, body);
  EXPECT_EQ(find_priority(msg.request.contexts), 20'000);
  EXPECT_EQ(find_timestamp(msg.request.contexts), TimePoint{123'456'789});
}

TEST(Giop, ReplyRoundTrip) {
  ReplyHeader h;
  h.request_id = 77;
  h.status = ReplyStatus::SystemException;
  h.contexts.push_back(make_priority_context(5));
  const std::vector<std::uint8_t> body{1, 2, 3};
  const auto bytes = encode_reply(h, body);
  const GiopMessage msg = decode(bytes);
  EXPECT_EQ(msg.type, GiopMsgType::Reply);
  EXPECT_EQ(msg.reply.request_id, 77u);
  EXPECT_EQ(msg.reply.status, ReplyStatus::SystemException);
  EXPECT_EQ(msg.body, body);
  EXPECT_EQ(find_priority(msg.reply.contexts), 5);
}

TEST(Giop, EmptyBodyRoundTrip) {
  const auto bytes = encode_request(make_request_header(), {});
  const GiopMessage msg = decode(bytes);
  EXPECT_TRUE(msg.body.empty());
}

TEST(Giop, OnewayFlagPreserved) {
  RequestHeader h = make_request_header();
  h.response_expected = false;
  const auto bytes = encode_request(h, {});
  EXPECT_FALSE(decode(bytes).request.response_expected);
}

TEST(Giop, BadMagicRejected) {
  auto bytes = encode_request(make_request_header(), {});
  bytes[0] = 'X';
  EXPECT_THROW((void)decode(bytes), MarshalError);
}

TEST(Giop, TruncatedMessageRejected) {
  const std::vector<std::uint8_t> body{1, 2, 3, 4};
  auto bytes = encode_request(make_request_header(), body);
  bytes.resize(bytes.size() - 2);
  EXPECT_THROW((void)decode(bytes), MarshalError);
}

TEST(Giop, ShortHeaderRejected) {
  const std::vector<std::uint8_t> tiny{'G', 'I', 'O', 'P', 1};
  EXPECT_THROW((void)decode(tiny), MarshalError);
}

TEST(Giop, UnknownTypeRejected) {
  auto bytes = encode_request(make_request_header(), {});
  bytes[7] = 9;
  EXPECT_THROW((void)decode(bytes), MarshalError);
}

TEST(Giop, MissingContextsReturnNullopt) {
  RequestHeader h;
  h.request_id = 1;
  h.object_key = "a/b";
  h.operation = "op";
  const GiopMessage msg = decode(encode_request(h, {}));
  EXPECT_FALSE(find_priority(msg.request.contexts).has_value());
  EXPECT_FALSE(find_timestamp(msg.request.contexts).has_value());
}

TEST(Giop, LargeBodyRoundTrip) {
  std::vector<std::uint8_t> body(100'000);
  for (std::size_t i = 0; i < body.size(); ++i) body[i] = static_cast<std::uint8_t>(i);
  const auto bytes = encode_request(make_request_header(), body);
  EXPECT_EQ(decode(bytes).body, body);
}

}  // namespace
}  // namespace aqm::orb

// Invocation-pipeline contract: interceptor registration and ordering,
// veto short-circuits on both sides, deadline expiry drops, bounded
// retry with exponential backoff, service-context round-trips, QuO
// delegate gating through the pipeline, and worker-count invariance of
// the parallel experiment runner with interceptors installed.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "orb/interceptor.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "quo/contract.hpp"
#include "quo/delegate.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {
namespace {

struct PipelineFixture : public ::testing::Test {
  PipelineFixture()
      : net(engine),
        client_node(net.add_node("client")),
        server_node(net.add_node("server")),
        client_cpu(engine, "client-cpu"),
        server_cpu(engine, "server-cpu"),
        client(net, client_node, client_cpu),
        server(net, server_node, server_cpu) {
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 100e6;
    cfg.propagation = microseconds(100);
    net.add_duplex_link(client_node, server_node, cfg);
  }

  ObjectRef make_echo(Duration cost = microseconds(100)) {
    Poa& poa = server.create_poa("app");
    auto servant = std::make_shared<FunctionServant>(cost, [this](ServerRequest& req) {
      ++handled;
      req.reply_body = req.body;
    });
    return poa.activate_object("echo", std::move(servant));
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId client_node;
  net::NodeId server_node;
  os::Cpu client_cpu;
  os::Cpu server_cpu;
  OrbEndpoint client;
  OrbEndpoint server;
  int handled = 0;
};

/// Records which of its phases ran (and in what global order) into a
/// shared log; optionally vetoes a phase.
class ProbeClientInterceptor final : public ClientRequestInterceptor {
 public:
  ProbeClientInterceptor(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(log) {}
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

  InterceptStatus establish(ClientRequestContext& ctx) override {
    log_.push_back(name_ + ".establish");
    native_priority_seen = ctx.native_priority;
    if (veto_establish) return veto(CompletionStatus::SystemError);
    return {};
  }
  InterceptStatus send_request(ClientRequestContext& ctx) override {
    log_.push_back(name_ + ".send_request");
    if (stamp_context_id != 0) {
      ctx.contexts->push_back({stamp_context_id, stamp_data});
    }
    return {};
  }
  void receive_reply(ClientRequestContext&) override {
    log_.push_back(name_ + ".receive_reply");
  }
  void receive_exception(ClientRequestContext&) override {
    log_.push_back(name_ + ".receive_exception");
  }

  bool veto_establish = false;
  std::uint32_t stamp_context_id = 0;
  std::vector<std::uint8_t> stamp_data;
  os::Priority native_priority_seen = 0;

 private:
  std::string name_;
  std::vector<std::string>& log_;
};

class ProbeServerInterceptor final : public ServerRequestInterceptor {
 public:
  ProbeServerInterceptor(std::string name, std::vector<std::string>& log)
      : name_(std::move(name)), log_(log) {}
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

  InterceptStatus receive_request(ServerRequestContext& ctx) override {
    log_.push_back(name_ + ".receive_request");
    priority_seen = ctx.priority;
    had_send_time = ctx.client_send_time.has_value();
    if (watch_context_id != 0) {
      for (const ServiceContext& sc : *ctx.contexts) {
        if (sc.id == watch_context_id) context_data = sc.data;
      }
    }
    if (vetoes_remaining > 0) {
      --vetoes_remaining;
      return veto(veto_status);
    }
    return {};
  }
  InterceptStatus send_reply(ServerRequestContext&) override {
    log_.push_back(name_ + ".send_reply");
    if (veto_reply) return veto(CompletionStatus::SystemError);
    return {};
  }

  int vetoes_remaining = 0;
  CompletionStatus veto_status = CompletionStatus::Transient;
  bool veto_reply = false;
  std::uint32_t watch_context_id = 0;
  std::vector<std::uint8_t> context_data;
  CorbaPriority priority_seen = -1;
  bool had_send_time = false;

 private:
  std::string name_;
  std::vector<std::string>& log_;
};

// --- registration and ordering ------------------------------------------------

TEST_F(PipelineFixture, BuiltInChainsAreRegisteredByName) {
  for (const char* name : {"rt.priority", "obs.timestamp", "obs.trace", "rt.deadline",
                           "rt.dscp", "net.flow"}) {
    EXPECT_NE(client.find_client_interceptor(name), nullptr) << name;
  }
  for (const char* name : {"rt.priority", "obs.timestamp", "obs.trace", "rt.deadline",
                           "rt.dscp"}) {
    EXPECT_NE(server.find_server_interceptor(name), nullptr) << name;
  }
  EXPECT_EQ(client.find_client_interceptor("no.such"), nullptr);
}

TEST_F(PipelineFixture, UserInterceptorsRunInRegistrationOrderAndUnwindReversed) {
  std::vector<std::string> log;
  auto& a = static_cast<ProbeClientInterceptor&>(client.add_client_interceptor(
      std::make_unique<ProbeClientInterceptor>("a", log)));
  client.add_client_interceptor(std::make_unique<ProbeClientInterceptor>("b", log));
  server.add_server_interceptor(std::make_unique<ProbeServerInterceptor>("s", log));

  const ObjectRef ref = make_echo();
  std::optional<CompletionStatus> status;
  client.invoke(ref, "echo", {1}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Ok);

  const std::vector<std::string> expected = {
      "a.establish",    "b.establish",       // forward, before marshal
      "a.send_request", "b.send_request",    // forward, post-marshal
      "s.receive_request", "s.send_reply",   // server side
      "b.receive_reply", "a.receive_reply",  // reverse unwind
  };
  EXPECT_EQ(log, expected);
  // User client interceptors run BEFORE the built-ins: the native priority
  // has not been resolved yet when their establish phase sees the context.
  EXPECT_EQ(a.native_priority_seen, 0);
}

TEST_F(PipelineFixture, UserServerInterceptorObservesResolvedRequest) {
  std::vector<std::string> log;
  auto& probe = static_cast<ProbeServerInterceptor&>(server.add_server_interceptor(
      std::make_unique<ProbeServerInterceptor>("s", log)));

  const ObjectRef ref = make_echo();
  InvokeOptions opts;
  opts.priority = 12'345;
  client.invoke(ref, "echo", {1}, opts, [](CompletionStatus, std::vector<std::uint8_t>) {});
  engine.run();
  // Built-ins ran first: priority and send timestamp already extracted.
  EXPECT_EQ(probe.priority_seen, 12'345);
  EXPECT_TRUE(probe.had_send_time);
}

// --- veto short-circuits --------------------------------------------------------

TEST_F(PipelineFixture, ClientVetoShortCircuitsBeforeAnyCost) {
  std::vector<std::string> log;
  auto& probe = static_cast<ProbeClientInterceptor&>(client.add_client_interceptor(
      std::make_unique<ProbeClientInterceptor>("gate", log)));
  probe.veto_establish = true;

  const ObjectRef ref = make_echo();
  std::optional<CompletionStatus> status;
  client.invoke(ref, "echo", {1}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  // The veto completes the invocation synchronously: no engine time needed.
  ASSERT_EQ(status, CompletionStatus::SystemError);
  engine.run();
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(client.stats().requests_sent, 0u);
  EXPECT_EQ(client.stats().client_vetoed, 1u);
  EXPECT_EQ(server.stats().requests_dispatched, 0u);
}

TEST_F(PipelineFixture, ServerVetoRejectsBeforeServantWork) {
  std::vector<std::string> log;
  auto& probe = static_cast<ProbeServerInterceptor&>(server.add_server_interceptor(
      std::make_unique<ProbeServerInterceptor>("gate", log)));
  probe.vetoes_remaining = 1;
  probe.veto_status = CompletionStatus::Transient;

  const ObjectRef ref = make_echo();
  std::optional<CompletionStatus> status;
  client.invoke(ref, "echo", {1}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Transient);
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(server.stats().server_vetoed, 1u);
  EXPECT_EQ(server.stats().requests_dispatched, 0u);
}

TEST_F(PipelineFixture, SendReplyVetoSuppressesTheReply) {
  std::vector<std::string> log;
  auto& probe = static_cast<ProbeServerInterceptor&>(server.add_server_interceptor(
      std::make_unique<ProbeServerInterceptor>("gate", log)));
  probe.veto_reply = true;

  const ObjectRef ref = make_echo();
  std::optional<CompletionStatus> status;
  InvokeOptions opts;
  opts.timeout = milliseconds(50);
  client.invoke(ref, "echo", {1}, opts,
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(handled, 1);  // the servant DID run; only the reply was dropped
  ASSERT_EQ(status, CompletionStatus::Timeout);
  EXPECT_EQ(server.stats().server_vetoed, 1u);
}

// --- deadline / retry -----------------------------------------------------------

TEST_F(PipelineFixture, ExpiredDeadlineDropsBeforeServantWork) {
  const ObjectRef ref = make_echo();
  ObjectStub stub(client, ref);
  // 100 us propagation delay guarantees the 50 us end-to-end deadline has
  // expired by the time the request reaches the server's receive chain.
  stub.set_deadline(microseconds(50));
  std::optional<CompletionStatus> status;
  stub.twoway("echo", {1},
              [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Timeout);
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(server.stats().deadline_dropped, 1u);
  EXPECT_EQ(server.stats().server_vetoed, 1u);
  EXPECT_EQ(server.stats().requests_dispatched, 0u);
}

TEST_F(PipelineFixture, GenerousDeadlinePassesThrough) {
  const ObjectRef ref = make_echo();
  ObjectStub stub(client, ref);
  stub.set_deadline(seconds(1));
  std::optional<CompletionStatus> status;
  stub.twoway("echo", {1},
              [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Ok);
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(server.stats().deadline_dropped, 0u);
}

TEST_F(PipelineFixture, RetrySucceedsAfterTransientVetoes) {
  std::vector<std::string> log;
  auto& flaky = static_cast<ProbeServerInterceptor&>(server.add_server_interceptor(
      std::make_unique<ProbeServerInterceptor>("flaky", log)));
  flaky.vetoes_remaining = 2;
  flaky.veto_status = CompletionStatus::Transient;

  const ObjectRef ref = make_echo();
  ObjectStub stub(client, ref);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = milliseconds(10);
  retry.backoff_multiplier = 2.0;
  stub.set_retry(retry);

  std::optional<CompletionStatus> status;
  std::optional<TimePoint> done_at;
  stub.twoway("echo", {1}, [&](CompletionStatus s, std::vector<std::uint8_t>) {
    status = s;
    done_at = engine.now();
  });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Ok);
  EXPECT_EQ(handled, 1);  // only the final attempt reached the servant
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(server.stats().server_vetoed, 2u);
  // Exponential backoff: 10 ms after attempt 1, 20 ms after attempt 2.
  ASSERT_TRUE(done_at);
  EXPECT_GE(*done_at, TimePoint{milliseconds(30).ns()});
}

TEST_F(PipelineFixture, RetryExhaustionReportsLastError) {
  std::vector<std::string> log;
  auto& flaky = static_cast<ProbeServerInterceptor&>(server.add_server_interceptor(
      std::make_unique<ProbeServerInterceptor>("flaky", log)));
  flaky.vetoes_remaining = 100;  // never recovers

  const ObjectRef ref = make_echo();
  ObjectStub stub(client, ref);
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = milliseconds(5);
  stub.set_retry(retry);

  std::optional<CompletionStatus> status;
  stub.twoway("echo", {1},
              [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Transient);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(server.stats().server_vetoed, 3u);
  EXPECT_EQ(handled, 0);
}

TEST_F(PipelineFixture, RetryCoversLocalTimeouts) {
  // Reference points at a node with no ORB: every attempt times out locally.
  const net::NodeId ghost = net.add_node("ghost");
  net::LinkConfig cfg;
  net.add_duplex_link(client_node, ghost, cfg);
  ObjectRef ref;
  ref.node = ghost;
  ref.object_key = "a/b";

  InvokeOptions opts;
  opts.timeout = milliseconds(20);
  opts.retry.max_attempts = 3;
  opts.retry.initial_backoff = milliseconds(5);
  std::optional<CompletionStatus> status;
  client.invoke(ref, "op", {}, opts,
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  ASSERT_EQ(status, CompletionStatus::Timeout);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().timeouts, 3u);
}

// --- service contexts -----------------------------------------------------------

TEST_F(PipelineFixture, CustomServiceContextRoundTrips) {
  constexpr std::uint32_t kContextId = 0x600DF00D;
  std::vector<std::string> log;
  auto& stamper = static_cast<ProbeClientInterceptor&>(client.add_client_interceptor(
      std::make_unique<ProbeClientInterceptor>("stamp", log)));
  stamper.stamp_context_id = kContextId;
  stamper.stamp_data = {7, 8, 9};
  auto& watcher = static_cast<ProbeServerInterceptor&>(server.add_server_interceptor(
      std::make_unique<ProbeServerInterceptor>("watch", log)));
  watcher.watch_context_id = kContextId;

  const ObjectRef ref = make_echo();
  client.invoke(ref, "echo", {1}, InvokeOptions{},
                [](CompletionStatus, std::vector<std::uint8_t>) {});
  engine.run();
  EXPECT_EQ(watcher.context_data, (std::vector<std::uint8_t>{7, 8, 9}));
}

// --- QuO delegate gating through the pipeline -----------------------------------

TEST_F(PipelineFixture, DelegateContractGateVetoesOutOfRegionCalls) {
  const ObjectRef ref = make_echo();
  quo::Delegate delegate(ObjectStub(client, ref));

  quo::Contract contract(engine, "modes");
  contract.add_region("active", [] { return true; });
  contract.eval();
  delegate.gate_on_contract(contract, "standby");  // current region: active

  std::optional<CompletionStatus> status;
  delegate.twoway("echo", {1},
                  [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  ASSERT_EQ(status, CompletionStatus::Transient);  // vetoed synchronously
  engine.run();
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(delegate.dropped(), 1u);
  EXPECT_EQ(client.stats().client_vetoed, 1u);

  delegate.gate_on_contract(contract, "active");
  delegate.twoway("echo", {1},
                  [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::Ok);
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(delegate.forwarded(), 1u);
}

TEST_F(PipelineFixture, DelegateGateAppliesToOtherStubsOfTheTarget) {
  // The delegate's registration is per-target on the ORB's pipeline, so a
  // plain stub bound to the same object is gated too.
  const ObjectRef ref = make_echo();
  quo::Delegate delegate(ObjectStub(client, ref));
  delegate.set_pre_invoke([](const std::string&, std::vector<std::uint8_t>&) {
    return quo::CallAction::Drop;
  });

  ObjectStub other(client, ref);
  other.oneway("echo", {1});
  engine.run();
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(delegate.dropped(), 1u);
}

// --- worker-count invariance with interceptors installed ------------------------

struct PipelineTrialStats {
  std::uint64_t replies_ok = 0;
  std::uint64_t retries = 0;
  std::uint64_t server_vetoed = 0;
  std::uint64_t deadline_dropped = 0;
  std::uint64_t handled = 0;
  std::uint64_t events_executed = 0;

  bool operator==(const PipelineTrialStats&) const = default;
};

/// Self-contained trial: a batch of deadline-bound, retry-enabled twoways
/// against a server whose user interceptor vetoes every third request.
PipelineTrialStats run_pipeline_trial(std::size_t index) {
  sim::Engine engine;
  net::Network net(engine);
  const auto cn = net.add_node("client");
  const auto sn = net.add_node("server");
  os::Cpu ccpu(engine, "ccpu");
  os::Cpu scpu(engine, "scpu");
  OrbEndpoint client(net, cn, ccpu);
  OrbEndpoint server(net, sn, scpu);
  net::LinkConfig link;
  link.bandwidth_bps = 50e6;
  link.propagation = microseconds(100 + 10 * index);
  net.add_duplex_link(cn, sn, link);

  class EveryThirdVeto final : public ServerRequestInterceptor {
   public:
    [[nodiscard]] const char* name() const override { return "test.flaky"; }
    InterceptStatus receive_request(ServerRequestContext&) override {
      if (++count_ % 3 == 0) return veto(CompletionStatus::Transient);
      return {};
    }

   private:
    int count_ = 0;
  };
  server.add_server_interceptor(std::make_unique<EveryThirdVeto>());

  PipelineTrialStats stats;
  Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<FunctionServant>(
      microseconds(200), [&](ServerRequest& req) {
        ++stats.handled;
        req.reply_body = req.body;
      });
  ObjectStub stub(client, poa.activate_object("echo", std::move(servant)));
  stub.set_deadline(milliseconds(40));
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.initial_backoff = milliseconds(2 + index % 3);
  stub.set_retry(retry);

  sim::PeriodicTimer source(engine, milliseconds(5), [&] {
    stub.twoway("echo", std::vector<std::uint8_t>(64 + index),
                [](CompletionStatus, std::vector<std::uint8_t>) {});
  });
  source.start();
  engine.run_until(TimePoint{milliseconds(500).ns()});
  source.stop();
  engine.run_until(TimePoint{milliseconds(700).ns()});

  stats.replies_ok = client.stats().replies_ok;
  stats.retries = client.stats().retries;
  stats.server_vetoed = server.stats().server_vetoed;
  stats.deadline_dropped = server.stats().deadline_dropped;
  stats.events_executed = engine.executed();
  return stats;
}

TEST(PipelineParallel, WorkerCountInvarianceWithInterceptors) {
  constexpr std::size_t kTrials = 12;
  auto sweep = [&](unsigned jobs) {
    core::Experiment<PipelineTrialStats> exp;
    for (std::size_t i = 0; i < kTrials; ++i) {
      exp.add("pipeline-" + std::to_string(i), core::derive_seed(11, i),
              [i](const core::TrialSpec&) { return run_pipeline_trial(i); });
    }
    core::ExperimentOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return exp.run(opts);
  };

  const auto serial = sweep(1);
  ASSERT_EQ(serial.size(), kTrials);
  // The scenario exercises the machinery it claims to: successful replies,
  // vetoes, and retries all occur.
  EXPECT_GT(serial.front().replies_ok, 0u);
  EXPECT_GT(serial.front().server_vetoed, 0u);
  EXPECT_GT(serial.front().retries, 0u);

  for (const unsigned jobs : {2u, 4u}) {
    const auto parallel = sweep(jobs);
    ASSERT_EQ(parallel.size(), kTrials);
    for (std::size_t i = 0; i < kTrials; ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "trial " << i << " differs at jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace aqm::orb

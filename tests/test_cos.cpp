// CORBA object services: naming and real-time events.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "cos/events.hpp"
#include "cos/naming.hpp"
#include "net/network.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::cos {
namespace {

struct CosFixture : public ::testing::Test {
  CosFixture()
      : net(engine),
        host_a(net.add_node("a")),
        host_b(net.add_node("b")),
        host_c(net.add_node("c")),
        cpu_a(engine, "cpu-a"),
        cpu_b(engine, "cpu-b"),
        cpu_c(engine, "cpu-c"),
        orb_a(net, host_a, cpu_a),
        orb_b(net, host_b, cpu_b),
        orb_c(net, host_c, cpu_c) {
    net::LinkConfig link;
    net.add_duplex_link(host_a, host_b, link);
    net.add_duplex_link(host_b, host_c, link);
  }

  orb::ObjectRef make_dummy(orb::OrbEndpoint& orb, const std::string& poa_name) {
    orb::Poa& poa = orb.create_poa(poa_name);
    return poa.activate_object(
        "obj", std::make_shared<orb::FunctionServant>(microseconds(10),
                                                      [](orb::ServerRequest&) {}));
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId host_a;
  net::NodeId host_b;
  net::NodeId host_c;
  os::Cpu cpu_a;
  os::Cpu cpu_b;
  os::Cpu cpu_c;
  orb::OrbEndpoint orb_a;
  orb::OrbEndpoint orb_b;
  orb::OrbEndpoint orb_c;
};

// --- naming ------------------------------------------------------------------------

TEST_F(CosFixture, LocalBindResolveUnbind) {
  orb::Poa& poa = orb_b.create_poa("cos");
  NamingServiceServer naming(poa);
  const orb::ObjectRef obj = make_dummy(orb_b, "app");

  EXPECT_TRUE(naming.bind("sensors/uav1/video", obj).ok());
  const auto found = naming.resolve("sensors/uav1/video");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->object_key, obj.object_key);
  EXPECT_EQ(found->node, obj.node);

  EXPECT_TRUE(naming.unbind("sensors/uav1/video"));
  EXPECT_FALSE(naming.resolve("sensors/uav1/video").has_value());
  EXPECT_FALSE(naming.unbind("sensors/uav1/video"));
}

TEST_F(CosFixture, NamingRejectsMalformedNames) {
  orb::Poa& poa = orb_b.create_poa("cos");
  NamingServiceServer naming(poa);
  const orb::ObjectRef obj = make_dummy(orb_b, "app");
  EXPECT_FALSE(naming.bind("", obj).ok());
  EXPECT_FALSE(naming.bind("/leading", obj).ok());
  EXPECT_FALSE(naming.bind("trailing/", obj).ok());
  EXPECT_FALSE(naming.bind("dou//ble", obj).ok());
  EXPECT_FALSE(naming.bind("x", orb::ObjectRef{}).ok());
}

TEST_F(CosFixture, NamingListByPrefix) {
  orb::Poa& poa = orb_b.create_poa("cos");
  NamingServiceServer naming(poa);
  const orb::ObjectRef obj = make_dummy(orb_b, "app");
  ASSERT_TRUE(naming.bind("sensors/uav1/video", obj).ok());
  ASSERT_TRUE(naming.bind("sensors/uav2/video", obj).ok());
  ASSERT_TRUE(naming.bind("control/station", obj).ok());
  EXPECT_EQ(naming.list("sensors/").size(), 2u);
  EXPECT_EQ(naming.list().size(), 3u);
  EXPECT_EQ(naming.list("nothing/").size(), 0u);
}

TEST_F(CosFixture, RemoteBindAndResolveAcrossHosts) {
  // Naming service on B; server on C binds; client on A resolves and calls.
  orb::Poa& poa = orb_b.create_poa("cos");
  NamingServiceServer naming(poa);

  int handled = 0;
  orb::Poa& app_poa = orb_c.create_poa("app");
  const orb::ObjectRef service = app_poa.activate_object(
      "worker", std::make_shared<orb::FunctionServant>(
                    microseconds(10), [&](orb::ServerRequest&) { ++handled; }));

  NamingClient server_side(orb_c, naming.ref());
  std::optional<bool> bound;
  server_side.bind("services/worker", service, [&](bool ok) { bound = ok; });
  engine.run();
  ASSERT_EQ(bound, true);

  NamingClient client_side(orb_a, naming.ref());
  std::optional<Result<orb::ObjectRef>> resolved;
  client_side.resolve("services/worker",
                      [&](Result<orb::ObjectRef> r) { resolved = std::move(r); });
  engine.run();
  ASSERT_TRUE(resolved && resolved->ok());

  orb::InvokeOptions opts;
  opts.oneway = true;
  orb_a.invoke(resolved->value(), "work", {}, opts);
  engine.run();
  EXPECT_EQ(handled, 1);
}

TEST_F(CosFixture, RemoteResolveMissingNameFails) {
  orb::Poa& poa = orb_b.create_poa("cos");
  NamingServiceServer naming(poa);
  NamingClient client(orb_a, naming.ref());
  std::optional<Result<orb::ObjectRef>> resolved;
  client.resolve("ghost", [&](Result<orb::ObjectRef> r) { resolved = std::move(r); });
  engine.run();
  ASSERT_TRUE(resolved.has_value());
  EXPECT_FALSE(resolved->ok());
  EXPECT_NE(resolved->error().find("not bound"), std::string::npos);
}

// --- events ------------------------------------------------------------------------

TEST(EventCodec, RoundTrip) {
  Event e;
  e.topic = "sensors/uav1/frame";
  e.priority = 23'000;
  e.payload = {1, 2, 3};
  e.published_at = TimePoint{42};
  const Event back = decode_event(encode_event(e));
  EXPECT_EQ(back.topic, e.topic);
  EXPECT_EQ(back.priority, 23'000);
  EXPECT_EQ(back.payload, e.payload);
  EXPECT_EQ(back.published_at, TimePoint{42});
}

TEST_F(CosFixture, EventsFanOutToMatchingConsumers) {
  orb::Poa& channel_poa = orb_b.create_poa("cos");
  EventChannel channel(orb_b, channel_poa);

  std::vector<std::string> a_topics;
  orb::Poa& a_poa = orb_a.create_poa("app");
  EventConsumer consumer_a(a_poa, "listener", microseconds(20),
                           [&](const Event& e) { a_topics.push_back(e.topic); });
  int c_count = 0;
  orb::Poa& c_poa = orb_c.create_poa("app");
  EventConsumer consumer_c(c_poa, "listener", microseconds(20),
                           [&](const Event&) { ++c_count; });

  std::optional<bool> ack_a;
  std::optional<bool> ack_c;
  consumer_a.subscribe(orb_a, channel.ref(), "sensors/", [&](bool ok) { ack_a = ok; });
  consumer_c.subscribe(orb_c, channel.ref(), "sensors/uav1/", [&](bool ok) { ack_c = ok; });
  engine.run();
  ASSERT_EQ(ack_a, true);
  ASSERT_EQ(ack_c, true);
  EXPECT_EQ(channel.consumer_count(), 2u);

  EventSupplier supplier(orb_c, channel.ref());
  supplier.push("sensors/uav1/frame", 20'000);
  supplier.push("sensors/uav2/frame", 20'000);
  supplier.push("control/heartbeat", 20'000);
  engine.run();

  // A (prefix "sensors/") sees both sensor events; C only uav1's.
  ASSERT_EQ(a_topics.size(), 2u);
  EXPECT_EQ(c_count, 1);
  EXPECT_EQ(channel.events_published(), 3u);
  EXPECT_EQ(channel.deliveries(), 3u);
  EXPECT_EQ(consumer_a.received(), 2u);
}

TEST_F(CosFixture, EventPriorityPropagatesToConsumers) {
  orb::Poa& channel_poa = orb_b.create_poa("cos");
  EventChannel channel(orb_b, channel_poa);

  std::optional<orb::CorbaPriority> delivered_priority;
  orb::Poa& a_poa = orb_a.create_poa("app");
  auto probe = std::make_shared<orb::FunctionServant>(
      microseconds(10), [&](orb::ServerRequest& req) {
        if (req.operation == kPushEventOp) delivered_priority = req.priority;
      });
  const orb::ObjectRef consumer = a_poa.activate_object("probe", std::move(probe));
  channel.subscribe("alerts/", consumer);

  EventSupplier supplier(orb_c, channel.ref());
  supplier.push("alerts/threat", 31'000);
  engine.run();
  // The delivery request ran at the event's CORBA priority end to end.
  ASSERT_TRUE(delivered_priority.has_value());
  EXPECT_EQ(*delivered_priority, 31'000);
}

TEST_F(CosFixture, UnsubscribeStopsDelivery) {
  orb::Poa& channel_poa = orb_b.create_poa("cos");
  EventChannel channel(orb_b, channel_poa);
  int received = 0;
  orb::Poa& a_poa = orb_a.create_poa("app");
  EventConsumer consumer(a_poa, "listener", microseconds(20),
                         [&](const Event&) { ++received; });
  channel.subscribe("x/", consumer.ref());
  EventSupplier supplier(orb_c, channel.ref());
  supplier.push("x/one", 100);
  engine.run();
  channel.unsubscribe("x/", consumer.ref());
  supplier.push("x/two", 100);
  engine.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(channel.consumer_count(), 0u);
}

TEST_F(CosFixture, DuplicateSubscriptionReplaced) {
  orb::Poa& channel_poa = orb_b.create_poa("cos");
  EventChannel channel(orb_b, channel_poa);
  int received = 0;
  orb::Poa& a_poa = orb_a.create_poa("app");
  EventConsumer consumer(a_poa, "listener", microseconds(20),
                         [&](const Event&) { ++received; });
  channel.subscribe("x/", consumer.ref());
  channel.subscribe("x/", consumer.ref());  // no duplicate deliveries
  EventSupplier supplier(orb_c, channel.ref());
  supplier.push("x/e", 100);
  engine.run();
  EXPECT_EQ(received, 1);
}

TEST_F(CosFixture, NamingBootstrapsEventChannel) {
  // The full service dance: channel registers itself in the naming
  // service; a consumer resolves it by name and subscribes.
  orb::Poa& cos_poa = orb_b.create_poa("cos");
  NamingServiceServer naming(cos_poa);
  EventChannel channel(orb_b, cos_poa);
  ASSERT_TRUE(naming.bind("services/events", channel.ref()).ok());

  int received = 0;
  orb::Poa& a_poa = orb_a.create_poa("app");
  EventConsumer consumer(a_poa, "listener", microseconds(20),
                         [&](const Event&) { ++received; });

  NamingClient resolver(orb_a, naming.ref());
  resolver.resolve("services/events", [&](Result<orb::ObjectRef> r) {
    ASSERT_TRUE(r.ok());
    consumer.subscribe(orb_a, r.value(), "t/");
  });
  engine.run();

  EventSupplier supplier(orb_c, channel.ref());
  supplier.push("t/event", 100);
  engine.run();
  EXPECT_EQ(received, 1);
}

}  // namespace
}  // namespace aqm::cos

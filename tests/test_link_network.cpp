#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "net/flow_monitor.hpp"
#include "net/network.hpp"
#include "net/traffic_gen.hpp"
#include "sim/engine.hpp"

namespace aqm::net {
namespace {

LinkConfig fast_link(double bps = 10e6, Duration prop = microseconds(100)) {
  LinkConfig cfg;
  cfg.bandwidth_bps = bps;
  cfg.propagation = prop;
  return cfg;
}

Packet make_packet(NodeId dst, std::uint32_t size, FlowId flow = 1) {
  Packet p;
  p.dst = dst;
  p.size_bytes = size;
  p.flow = flow;
  return p;
}

TEST(Network, DirectDeliveryLatencyIsTxPlusPropagation) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(10e6, microseconds(100)));
  std::optional<TimePoint> arrival;
  net.set_receiver(b, [&](Packet&&) { arrival = e.now(); });
  net.send(a, make_packet(b, 1250));  // 1250 B at 10 Mbps = 1 ms tx
  e.run();
  ASSERT_TRUE(arrival);
  EXPECT_EQ(arrival->ns(), milliseconds(1).ns() + microseconds(100).ns());
}

TEST(Network, SerializationDelaysBackToBackPackets) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(10e6, microseconds(0)));
  std::vector<std::int64_t> arrivals;
  net.set_receiver(b, [&](Packet&&) { arrivals.push_back(e.now().ns()); });
  net.send(a, make_packet(b, 1250));
  net.send(a, make_packet(b, 1250));
  net.send(a, make_packet(b, 1250));
  e.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], milliseconds(1).ns());
  EXPECT_EQ(arrivals[1], milliseconds(2).ns());
  EXPECT_EQ(arrivals[2], milliseconds(3).ns());
}

TEST(Network, MultiHopRoutingViaRouter) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId r = net.add_node("router");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, r, fast_link());
  net.add_duplex_link(r, b, fast_link());
  bool arrived = false;
  net.set_receiver(b, [&](Packet&& p) {
    arrived = true;
    EXPECT_EQ(p.src, a);
    EXPECT_EQ(p.dst, b);
  });
  net.send(a, make_packet(b, 500));
  e.run();
  EXPECT_TRUE(arrived);
  EXPECT_EQ(net.next_hop(a, b), r);
  EXPECT_EQ((net.path(a, b)), (std::vector<NodeId>{a, r, b}));
}

TEST(Network, ShortestPathPreferred) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId r1 = net.add_node("r1");
  const NodeId r2 = net.add_node("r2");
  const NodeId b = net.add_node("b");
  // Long path a-r1-r2-b and a direct a-b link.
  net.add_duplex_link(a, r1, fast_link());
  net.add_duplex_link(r1, r2, fast_link());
  net.add_duplex_link(r2, b, fast_link());
  net.add_duplex_link(a, b, fast_link());
  EXPECT_EQ(net.next_hop(a, b), b);
  EXPECT_EQ(net.path(a, b).size(), 2u);
}

TEST(Network, UnreachableDestinationDropsPacket) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("island");
  bool arrived = false;
  net.set_receiver(b, [&](Packet&&) { arrived = true; });
  net.send(a, make_packet(b, 100, 5));
  e.run();
  EXPECT_FALSE(arrived);
  EXPECT_EQ(net.flow(5).dropped, 1u);
  EXPECT_EQ(net.next_hop(a, b), kInvalidNode);
  EXPECT_TRUE(net.path(a, b).empty());
}

TEST(Network, FlowCountersTrackSentAndDelivered) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link());
  net.set_receiver(b, [](Packet&&) {});
  for (int i = 0; i < 5; ++i) net.send(a, make_packet(b, 100, 9));
  e.run();
  EXPECT_EQ(net.flow(9).sent, 5u);
  EXPECT_EQ(net.flow(9).delivered, 5u);
  EXPECT_EQ(net.flow(9).dropped, 0u);
  EXPECT_EQ(net.flow(9).sent_bytes, 500u);
  EXPECT_EQ(net.totals().sent, 5u);
}

TEST(Network, CongestionDropsAreCounted) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  // Tiny queue: 2 packets.
  net.add_link(a, b, fast_link(1e6), std::make_unique<DropTailQueue>(2));
  net.add_link(b, a, fast_link());
  net.set_receiver(b, [](Packet&&) {});
  // Burst of 10 packets into a slow link: 1 transmitting + 2 queued pass.
  for (int i = 0; i < 10; ++i) net.send(a, make_packet(b, 1000, 3));
  e.run();
  EXPECT_EQ(net.flow(3).sent, 10u);
  EXPECT_EQ(net.flow(3).delivered, 3u);
  EXPECT_EQ(net.flow(3).dropped, 7u);
}

TEST(Network, LinkUtilizationAndCounters) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(10e6, Duration::zero()));
  net.set_receiver(b, [](Packet&&) {});
  net.send(a, make_packet(b, 1250));  // 1 ms tx
  e.after(milliseconds(2), [] {});    // extend wall time to 2 ms
  e.run();
  Link* link = net.link_between(a, b);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->packets_transmitted(), 1u);
  EXPECT_EQ(link->bytes_transmitted(), 1250u);
  EXPECT_NEAR(link->utilization(), 0.5, 0.01);
}

TEST(Network, TransmissionTimeComputation) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(100e6));
  const Link* link = net.link_between(a, b);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->transmission_time(1250).ns(), 100'000);  // 1250B @ 100Mbps = 100us
}

TEST(TrafficGenerator, CbrRateIsAccurate) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(100e6));
  net.set_receiver(b, [](Packet&&) {});
  TrafficGenerator::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 1.2e6;
  cfg.packet_bytes = 1500;
  cfg.flow = 4;
  cfg.poisson = false;
  TrafficGenerator gen(net, cfg);
  gen.start();
  e.run_until(TimePoint{seconds(10).ns()});
  gen.stop();
  // 1.2 Mbps = 150 KB/s = 100 pkts/s of 1500 B.
  EXPECT_NEAR(static_cast<double>(gen.packets_sent()), 1000.0, 10.0);
}

TEST(TrafficGenerator, PoissonApproximatesRate) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(100e6));
  net.set_receiver(b, [](Packet&&) {});
  TrafficGenerator::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 8e6;
  cfg.packet_bytes = 1000;  // 1000 pkts/s
  cfg.poisson = true;
  cfg.seed = 99;
  TrafficGenerator gen(net, cfg);
  gen.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(6).ns()});
  e.run_until(TimePoint{seconds(10).ns()});
  EXPECT_NEAR(static_cast<double>(gen.packets_sent()), 5000.0, 300.0);
}

TEST(FlowMonitor, RecordsLatencyAndGaps) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link(10e6, Duration::zero()));
  FlowMonitor monitor(net, b);
  Packet p1 = make_packet(b, 1250, 6);
  p1.seq = 0;
  Packet p2 = make_packet(b, 1250, 6);
  p2.seq = 2;  // seq 1 lost
  net.send(a, std::move(p1));
  net.send(a, std::move(p2));
  e.run();
  EXPECT_EQ(monitor.received(6), 2u);
  EXPECT_EQ(monitor.sequence_gaps(6), 1u);
  EXPECT_EQ(monitor.received_bytes(6), 2500u);
  const auto stats = monitor.latency_series(6).stats();
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_NEAR(stats.min(), 1.0, 0.01);  // 1ms serialization
}

TEST(LossyLink, DropsApproximatelyConfiguredFraction) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig lossy = fast_link(100e6);
  lossy.loss_probability = 0.2;
  lossy.loss_seed = 5;
  net.add_link(a, b, lossy);
  net.add_link(b, a, fast_link());
  int received = 0;
  net.set_receiver(b, [&](Packet&&) { ++received; });
  const int sent = 5000;
  for (int i = 0; i < sent; ++i) {
    e.after(microseconds(200 * i), [&] { net.send(a, make_packet(b, 500, 8)); });
  }
  e.run();
  EXPECT_NEAR(static_cast<double>(received) / sent, 0.8, 0.03);
  EXPECT_EQ(net.flow(8).dropped + net.flow(8).delivered, net.flow(8).sent);
  EXPECT_EQ(net.link_between(a, b)->packets_corrupted(), net.flow(8).dropped);
}

TEST(LossyLink, ZeroLossByDefault) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link());
  int received = 0;
  net.set_receiver(b, [&](Packet&&) { ++received; });
  for (int i = 0; i < 100; ++i) {
    e.after(microseconds(100 * i), [&] { net.send(a, make_packet(b, 500)); });
  }
  e.run();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(net.link_between(a, b)->packets_corrupted(), 0u);
}

TEST(LossyLink, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Engine e;
    Network net(e);
    const NodeId a = net.add_node("a");
    const NodeId b = net.add_node("b");
    LinkConfig lossy = fast_link(100e6);
    lossy.loss_probability = 0.3;
    lossy.loss_seed = seed;
    net.add_link(a, b, lossy);
    net.add_link(b, a, fast_link());
    int received = 0;
    net.set_receiver(b, [&](Packet&&) { ++received; });
    for (int i = 0; i < 500; ++i) {
      e.after(microseconds(100 * i), [&] { net.send(a, make_packet(b, 500)); });
    }
    e.run();
    return received;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(FlowMonitor, DownstreamStillSeesPackets) {
  sim::Engine e;
  Network net(e);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, fast_link());
  FlowMonitor monitor(net, b);
  int seen = 0;
  monitor.set_downstream([&](Packet&&) { ++seen; });
  net.send(a, make_packet(b, 100));
  e.run();
  EXPECT_EQ(seen, 1);
}

}  // namespace
}  // namespace aqm::net

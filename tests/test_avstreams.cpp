// A/V streaming service: frame codec, sink endpoints, stream bindings and
// RSVP attachment.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "avstreams/frame_codec.hpp"
#include "avstreams/stream.hpp"
#include "core/testbed.hpp"
#include "media/video_source.hpp"

namespace aqm::av {
namespace {

TEST(FrameCodec, RoundTripPreservesMetadata) {
  media::VideoFrame f;
  f.index = 123;
  f.type = media::FrameType::P;
  f.size_bytes = 6800;
  f.capture_time = TimePoint{987'654'321};
  const auto body = encode_frame(f);
  EXPECT_EQ(body.size(), 6800u);  // padded to the frame's real size
  const media::VideoFrame out = decode_frame(body);
  EXPECT_EQ(out.index, 123u);
  EXPECT_EQ(out.type, media::FrameType::P);
  EXPECT_EQ(out.size_bytes, 6800u);
  EXPECT_EQ(out.capture_time, TimePoint{987'654'321});
}

TEST(FrameCodec, RejectsGarbage) {
  EXPECT_THROW((void)decode_frame({1, 2, 3}), orb::MarshalError);
  std::vector<std::uint8_t> bad(64, 0);
  bad[8] = 99;  // invalid frame type
  EXPECT_THROW((void)decode_frame(bad), orb::MarshalError);
}

struct StreamFixture : public ::testing::Test {
  StreamFixture() : bed(core::ReservationTestbedParams{}) {}
  core::ReservationTestbed bed;
};

TEST_F(StreamFixture, FramesFlowEndToEnd) {
  std::vector<media::VideoFrame> received;
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  VideoSinkEndpoint sink(poa, "display", microseconds(200),
                         [&](const media::VideoFrame& f) { received.push_back(f); });
  StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);

  media::VideoSource source(bed.engine, media::GopStructure::mpeg1_paper_profile(), 30.0,
                            [&](const media::VideoFrame& f) { binding.push(f); });
  source.start();
  bed.engine.run_until(TimePoint{seconds(2).ns()});
  source.stop();
  bed.engine.run_until(TimePoint{seconds(3).ns()});

  EXPECT_EQ(binding.frames_pushed(), 60u);
  EXPECT_EQ(received.size(), 60u);
  EXPECT_EQ(sink.frames_received(), 60u);
  EXPECT_EQ(received.front().type, media::FrameType::I);
  // Latency is positive: frames arrive after their capture time.
  EXPECT_GT(bed.engine.now(), received.front().capture_time);
}

TEST_F(StreamFixture, ReservationAttachesToStreamFlow) {
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  VideoSinkEndpoint sink(poa, "display", microseconds(200),
                         [](const media::VideoFrame&) {});
  StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);

  std::optional<bool> outcome;
  binding.reserve(bed.qos.agent(bed.sender_node), net::FlowSpec{1.2e6, 32'000},
                  [&](Status<std::string> s) { outcome = s.ok(); });
  bed.engine.run_until(TimePoint{seconds(1).ns()});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  // The bottleneck egress holds the reservation for the stream's flow.
  auto* queue = dynamic_cast<net::IntServQueue*>(
      &bed.network.link_between(bed.switch_node, bed.receiver_node)->queue());
  ASSERT_NE(queue, nullptr);
  EXPECT_TRUE(queue->has_reservation(core::kFlowVideo));

  binding.release(bed.qos.agent(bed.sender_node));
  bed.engine.run_until(TimePoint{seconds(2).ns()});
  EXPECT_FALSE(queue->has_reservation(core::kFlowVideo));
}

TEST_F(StreamFixture, StreamPriorityAffectsDscp) {
  bed.sender_orb.dscp_mappings().install(
      std::make_unique<orb::rt::BandedDscpMapping>());
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  VideoSinkEndpoint sink(poa, "display", microseconds(200),
                         [](const media::VideoFrame&) {});
  StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);
  binding.set_priority(30'000);  // maps to EF under the banded mapping

  media::VideoFrame f;
  f.index = 0;
  f.type = media::FrameType::I;
  f.size_bytes = 13'600;
  f.capture_time = bed.engine.now();
  binding.push(f);
  bed.engine.run_until(TimePoint{seconds(1).ns()});
  EXPECT_EQ(sink.frames_received(), 1u);
  // Delivered through the IntServ control-free path as EF-marked best
  // effort (no reservation): delivery statistics confirm the flow moved.
  EXPECT_GT(bed.network.flow(core::kFlowVideo).delivered, 0u);
}

}  // namespace
}  // namespace aqm::av

// RED queue behavior and end-to-end ECN congestion feedback.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/red_queue.hpp"
#include "net/traffic_gen.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::net {
namespace {

Packet make_packet(Ecn ecn = Ecn::NotCapable) {
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.size_bytes = 1000;
  p.ecn = ecn;
  return p;
}

RedConfig small_red() {
  RedConfig cfg;
  cfg.capacity_packets = 100;
  cfg.min_threshold = 5;
  cfg.max_threshold = 20;
  cfg.max_probability = 0.2;
  cfg.weight = 0.5;  // fast-moving average for unit tests
  return cfg;
}

TEST(RedQueue, NoSignalsBelowMinThreshold) {
  RedQueue q(small_red());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(q.enqueue(make_packet(Ecn::Capable), TimePoint::zero()).has_value());
  }
  EXPECT_EQ(q.ecn_marked(), 0u);
  EXPECT_EQ(q.early_dropped(), 0u);
}

TEST(RedQueue, SustainedBacklogMarksCapablePackets) {
  RedQueue q(small_red());
  // Build a standing queue well past max_threshold without dequeuing.
  for (int i = 0; i < 60; ++i) (void)q.enqueue(make_packet(Ecn::Capable), TimePoint::zero());
  EXPECT_GT(q.ecn_marked(), 10u);
  EXPECT_EQ(q.early_dropped(), 0u);  // capable packets are marked, not dropped
  // Marked packets come out with CongestionExperienced set.
  int ce = 0;
  while (auto p = q.dequeue(TimePoint::zero())) {
    if (p->ecn == Ecn::CongestionExperienced) ++ce;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(ce), q.ecn_marked());
}

TEST(RedQueue, NonCapablePacketsAreDroppedInstead) {
  RedQueue q(small_red());
  for (int i = 0; i < 60; ++i) (void)q.enqueue(make_packet(Ecn::NotCapable), TimePoint::zero());
  EXPECT_EQ(q.ecn_marked(), 0u);
  EXPECT_GT(q.early_dropped(), 10u);
  EXPECT_EQ(q.stats().dropped, q.early_dropped());
}

TEST(RedQueue, EcnDisabledDropsCapablePacketsToo) {
  RedConfig cfg = small_red();
  cfg.ecn = false;
  RedQueue q(cfg);
  for (int i = 0; i < 60; ++i) (void)q.enqueue(make_packet(Ecn::Capable), TimePoint::zero());
  EXPECT_EQ(q.ecn_marked(), 0u);
  EXPECT_GT(q.early_dropped(), 10u);
}

TEST(RedQueue, HardCapacityStillEnforced) {
  RedConfig cfg = small_red();
  cfg.capacity_packets = 10;
  RedQueue q(cfg);
  int rejected = 0;
  for (int i = 0; i < 30; ++i) {
    if (q.enqueue(make_packet(Ecn::Capable), TimePoint::zero()).has_value()) ++rejected;
  }
  EXPECT_EQ(q.packets(), 10u);
  EXPECT_GT(rejected, 0);
}

TEST(RedQueue, AverageTracksOccupancy) {
  RedQueue q(small_red());
  EXPECT_DOUBLE_EQ(q.average_queue(), 0.0);
  for (int i = 0; i < 30; ++i) (void)q.enqueue(make_packet(Ecn::Capable), TimePoint::zero());
  EXPECT_GT(q.average_queue(), 5.0);
}

TEST(EcnEndToEnd, TransportCountsCongestionMarks) {
  sim::Engine engine;
  Network net(engine);
  const NodeId sender = net.add_node("sender");
  const NodeId router = net.add_node("router");
  const NodeId receiver = net.add_node("receiver");
  const NodeId load_src = net.add_node("load");

  LinkConfig access;
  access.bandwidth_bps = 100e6;
  LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  net.add_duplex_link(sender, router, access);
  net.add_duplex_link(load_src, router, access);
  RedConfig red;
  red.min_threshold = 20;
  red.max_threshold = 100;
  red.max_probability = 0.2;
  net.add_link(router, receiver, bottleneck, std::make_unique<RedQueue>(red));
  net.add_link(receiver, router, access);

  os::Cpu sender_cpu(engine, "sender-cpu");
  os::Cpu receiver_cpu(engine, "receiver-cpu");
  orb::OrbConfig ecn_orb;
  ecn_orb.transport.ecn_capable = true;
  orb::OrbEndpoint sender_orb(net, sender, sender_cpu, ecn_orb);
  orb::OrbEndpoint receiver_orb(net, receiver, receiver_cpu, ecn_orb);

  int received = 0;
  orb::Poa& poa = receiver_orb.create_poa("app");
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(50), [&](orb::ServerRequest&) { ++received; });
  const orb::ObjectRef ref = poa.activate_object("sink", std::move(servant));
  orb::ObjectStub stub(sender_orb, ref);
  stub.set_flow(5);

  // Saturating (non-ECN) load + an ECN-capable message stream.
  TrafficGenerator::Config load;
  load.src = load_src;
  load.dst = receiver;
  load.rate_bps = 15e6;
  load.flow = 9;
  TrafficGenerator load_gen(net, load);
  load_gen.start();

  sim::PeriodicTimer task(engine, milliseconds(10), [&] {
    stub.oneway("push", std::vector<std::uint8_t>(1200));
  });
  task.start();
  engine.run_until(TimePoint{seconds(10).ns()});
  task.stop();
  load_gen.stop();
  engine.run_until(TimePoint{seconds(12).ns()});

  // The router marked our capable packets instead of dropping everything:
  // marks observed at the receiver-side transport, and goodput survived.
  EXPECT_GT(receiver_orb.transport().ce_marks(5), 20u);
  EXPECT_GT(received, 500);
}

}  // namespace
}  // namespace aqm::net

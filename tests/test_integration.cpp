// Scaled-down versions of the paper's experiments, asserting the headline
// *shapes* end to end (the full-scale runs live in bench/).
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "avstreams/stream.hpp"
#include "core/testbed.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "os/load_generator.hpp"

namespace aqm {
namespace {

/// Runs a 2-sender video scenario on the priority testbed for `duration`
/// with cross traffic; returns per-flow latency stats measured at the
/// receiving servants.
struct PriorityRunResult {
  RunningStats s1_latency_ms;
  RunningStats s2_latency_ms;
  std::uint64_t s1_received = 0;
  std::uint64_t s2_received = 0;
};

PriorityRunResult run_priority_scenario(core::PriorityTestbed& bed, bool banded_dscp,
                                        orb::CorbaPriority p1, orb::CorbaPriority p2,
                                        Duration duration, bool cross_traffic) {
  if (banded_dscp) {
    bed.sender_orb.dscp_mappings().install(
        std::make_unique<orb::rt::BandedDscpMapping>());
  }
  orb::Poa& poa1 = bed.receiver_orb.create_poa("recv1");
  orb::Poa& poa2 = bed.receiver_orb.create_poa("recv2");

  PriorityRunResult result;
  auto make_sink = [&](orb::Poa& poa, RunningStats& stats, std::uint64_t& count) {
    auto servant = std::make_shared<orb::FunctionServant>(
        microseconds(300), [&stats, &count, &bed](orb::ServerRequest& req) {
          ++count;
          if (req.client_send_time) {
            stats.add((bed.engine.now() - *req.client_send_time).millis());
          }
        });
    return poa.activate_object("sink", std::move(servant));
  };
  const orb::ObjectRef sink1 = make_sink(poa1, result.s1_latency_ms, result.s1_received);
  const orb::ObjectRef sink2 = make_sink(poa2, result.s2_latency_ms, result.s2_received);

  orb::ObjectStub stub1(bed.sender_orb, sink1);
  stub1.set_flow(core::kFlowSender1);
  stub1.set_priority(p1);
  orb::ObjectStub stub2(bed.sender_orb, sink2);
  stub2.set_flow(core::kFlowSender2);
  stub2.set_priority(p2);

  // Two "video" tasks: 120 messages/s of 1200 B each (~1.15 Mbps).
  sim::PeriodicTimer task1(bed.engine, microseconds(8333), [&] {
    stub1.oneway("frame", std::vector<std::uint8_t>(1200));
  });
  sim::PeriodicTimer task2(bed.engine, microseconds(8333), [&] {
    stub2.oneway("frame", std::vector<std::uint8_t>(1200));
  });
  task1.start();
  task2.start();
  if (cross_traffic) bed.cross_traffic->start();
  bed.engine.run_until(TimePoint::zero() + duration);
  task1.stop();
  task2.stop();
  if (cross_traffic) bed.cross_traffic->stop();
  bed.engine.run_until(TimePoint::zero() + duration + seconds(2));
  return result;
}

TEST(IntegrationPriority, IdleNetworkIsFastAndFlat) {
  core::PriorityTestbed bed((core::PriorityTestbedParams{}));
  const auto r =
      run_priority_scenario(bed, false, 1000, 1000, seconds(5), /*cross=*/false);
  ASSERT_GT(r.s1_received, 500u);
  // ~1.5 ms flat latency, like the paper's Figure 4(a).
  EXPECT_LT(r.s1_latency_ms.mean(), 5.0);
  EXPECT_LT(r.s1_latency_ms.stddev(), 1.0);
}

TEST(IntegrationPriority, CrossTrafficWrecksBestEffort) {
  core::PriorityTestbed bed((core::PriorityTestbedParams{}));
  const auto r =
      run_priority_scenario(bed, false, 1000, 1000, seconds(8), /*cross=*/true);
  // Figure 4(b): wild latency and/or massive loss.
  const bool unstable = r.s1_latency_ms.max() > 100.0 ||
                        r.s1_received < 8 * 120 / 2;  // >50% loss
  EXPECT_TRUE(unstable) << "mean=" << r.s1_latency_ms.mean()
                        << " max=" << r.s1_latency_ms.max()
                        << " received=" << r.s1_received;
}

TEST(IntegrationPriority, DscpProtectsMarkedStreamsFromCrossTraffic) {
  core::PriorityTestbedParams params;
  params.diffserv_bottleneck = true;
  core::PriorityTestbed bed(params);
  // Figure 6: both senders DSCP-marked above cross traffic, sender 1 higher.
  const auto r =
      run_priority_scenario(bed, true, 30'000, 25'000, seconds(8), /*cross=*/true);
  ASSERT_GT(r.s1_received, 800u);
  ASSERT_GT(r.s2_received, 800u);
  // Both streams predictable despite 16 Mbps cross traffic.
  EXPECT_LT(r.s1_latency_ms.mean(), 10.0);
  EXPECT_LT(r.s2_latency_ms.mean(), 20.0);
  // Sender 1 (EF) at least as good as sender 2 (AF41).
  EXPECT_LE(r.s1_latency_ms.mean(), r.s2_latency_ms.mean());
}

TEST(IntegrationCpu, ThreadPriorityDecidesLatencyUnderCpuLoad) {
  // Figure 5(a): with CPU load on the receiver, the high-priority task has
  // visibly lower latency than the low-priority one.
  core::PriorityTestbed bed((core::PriorityTestbedParams{}));
  os::LoadGenerator::Config load_cfg;
  load_cfg.priority = 128;  // between the two mapped priorities
  load_cfg.burst_mean = milliseconds(15);
  load_cfg.interval_mean = milliseconds(25);
  load_cfg.seed = 11;
  os::LoadGenerator load(bed.engine, bed.receiver_cpu, load_cfg);
  load.start();
  // CORBA 30000 -> native ~233 (above load); CORBA 1000 -> native ~7 (below).
  const auto r =
      run_priority_scenario(bed, false, 30'000, 1'000, seconds(8), /*cross=*/false);
  load.stop();
  ASSERT_GT(r.s1_received, 500u);
  ASSERT_GT(r.s2_received, 500u);
  EXPECT_LT(r.s1_latency_ms.mean(), r.s2_latency_ms.mean() / 2.0)
      << "high-prio " << r.s1_latency_ms.mean() << "ms vs low-prio "
      << r.s2_latency_ms.mean() << "ms";
}

TEST(IntegrationReservation, FullReservationSurvivesOverload) {
  core::ReservationTestbed bed((core::ReservationTestbedParams{}));
  media::VideoSinkStats stats(bed.engine, media::GopStructure::mpeg1_paper_profile());
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  av::VideoSinkEndpoint sink(poa, "display", microseconds(500),
                             [&](const media::VideoFrame& f) { stats.on_received(f); });
  av::StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);

  std::optional<bool> reserved;
  binding.reserve(bed.qos.agent(bed.sender_node), net::FlowSpec{1.3e6, 40'000},
                  [&](Status<std::string> s) { reserved = s.ok(); });

  media::VideoSource source(bed.engine, media::GopStructure::mpeg1_paper_profile(), 30.0,
                            [&](const media::VideoFrame& f) {
                              stats.on_source(f);
                              stats.on_transmitted(f);
                              binding.push(f);
                            });
  source.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(11).ns()});
  bed.load_traffic->run_between(TimePoint{seconds(3).ns()}, TimePoint{seconds(9).ns()});
  bed.engine.run_until(TimePoint{seconds(13).ns()});

  ASSERT_TRUE(reserved && *reserved);
  // Under 43.8 Mbps of load, the fully reserved stream still delivers
  // essentially everything (paper: 100%).
  EXPECT_GT(stats.received_count(), stats.transmitted_count() * 95 / 100);
}

TEST(IntegrationReservation, NoAdaptationCollapsesUnderOverload) {
  core::ReservationTestbed bed((core::ReservationTestbedParams{}));
  media::VideoSinkStats stats(bed.engine, media::GopStructure::mpeg1_paper_profile());
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  av::VideoSinkEndpoint sink(poa, "display", microseconds(500),
                             [&](const media::VideoFrame& f) { stats.on_received(f); });
  av::StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);

  media::VideoSource source(bed.engine, media::GopStructure::mpeg1_paper_profile(), 30.0,
                            [&](const media::VideoFrame& f) {
                              stats.on_transmitted(f);
                              binding.push(f);
                            });
  source.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(11).ns()});
  bed.load_traffic->run_between(TimePoint{seconds(3).ns()}, TimePoint{seconds(9).ns()});
  bed.engine.run_until(TimePoint{seconds(13).ns()});

  // Frames sent while the network was loaded mostly vanish (paper: 0.83%
  // delivered). Allow up to 20% to keep the test robust.
  const auto sent_under_load =
      stats.transmitted_between(TimePoint{seconds(3).ns()}, TimePoint{seconds(9).ns()});
  const auto received_under_load =
      stats.received_between(TimePoint{seconds(3).ns() + milliseconds(200).ns()},
                             TimePoint{seconds(9).ns()});
  ASSERT_GT(sent_under_load, 100u);
  EXPECT_LT(received_under_load, sent_under_load / 5);
}

TEST(IntegrationReservation, CpuReserveRestoresProcessingTime) {
  // Table 2 in miniature: one algorithm, with/without load and reserve.
  core::AtrTestbed bed((core::AtrTestbedParams{}));
  const Duration work = milliseconds(30);

  auto measure = [&](bool with_load, bool with_reserve) {
    RunningStats times;
    os::ReserveId reserve = os::kNoReserve;
    if (with_reserve) {
      const auto r =
          bed.server_cpu.create_reserve({milliseconds(45), milliseconds(50), true});
      EXPECT_TRUE(r.ok());
      reserve = r.value();
    }
    std::unique_ptr<os::LoadGenerator> load;
    if (with_load) {
      os::LoadGenerator::Config cfg;
      cfg.priority = 100;  // same priority as the processing job
      cfg.burst_mean = milliseconds(20);
      cfg.interval_mean = milliseconds(50);
      cfg.seed = 5;
      load = std::make_unique<os::LoadGenerator>(bed.engine, bed.server_cpu, cfg);
      load->start();
    }
    const TimePoint deadline = bed.engine.now() + seconds(10);
    std::function<void()> next = [&] {
      if (bed.engine.now() >= deadline) return;
      const TimePoint begin = bed.engine.now();
      bed.server_cpu.submit_for(work, 100,
                                [&, begin] {
                                  times.add((bed.engine.now() - begin).millis());
                                  next();
                                },
                                reserve);
    };
    next();
    bed.engine.run_until(deadline + seconds(1));
    if (load) load->stop();
    if (reserve != os::kNoReserve) bed.server_cpu.destroy_reserve(reserve);
    return times;
  };

  const RunningStats baseline = measure(false, false);
  const RunningStats loaded = measure(true, false);
  const RunningStats reserved = measure(true, true);

  EXPECT_NEAR(baseline.mean(), 30.0, 1.0);
  // Load inflates latency noticeably (paper: +13..41%).
  EXPECT_GT(loaded.mean(), baseline.mean() * 1.1);
  // Reserve restores to near baseline.
  EXPECT_LT(reserved.mean(), baseline.mean() * 1.15);
  EXPECT_LT(reserved.stddev(), loaded.stddev());
}

}  // namespace
}  // namespace aqm

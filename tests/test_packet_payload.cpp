#include "net/packet_payload.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace aqm::net {
namespace {

struct Small {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};
static_assert(sizeof(Small) <= PacketPayload::kInlineSize);

struct Big {
  std::array<std::uint8_t, 128> bytes{};
};
static_assert(sizeof(Big) > PacketPayload::kInlineSize);

/// Instance-counting payload, to verify destruction across copy/move/reset.
struct Counted {
  static inline int live = 0;
  int value = 0;
  explicit Counted(int v) : value(v) { ++live; }
  Counted(const Counted& o) : value(o.value) { ++live; }
  Counted(Counted&& o) noexcept : value(o.value) { ++live; }
  ~Counted() { --live; }
};

TEST(PacketPayload, DefaultIsEmpty) {
  PacketPayload p;
  EXPECT_FALSE(p.has_value());
  EXPECT_EQ(p.get<Small>(), nullptr);
}

TEST(PacketPayload, StoresAndRetrievesInlineType) {
  PacketPayload p = Small{3, 4};
  ASSERT_TRUE(p.has_value());
  const Small* s = p.get<Small>();
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->a, 3u);
  EXPECT_EQ(s->b, 4u);
}

TEST(PacketPayload, GetWithWrongTypeReturnsNull) {
  PacketPayload p = Small{1, 2};
  EXPECT_EQ(p.get<int>(), nullptr);
  EXPECT_EQ(p.get<Big>(), nullptr);
  EXPECT_NE(p.get<Small>(), nullptr);
}

TEST(PacketPayload, TakeMovesOutAndEmpties) {
  PacketPayload p = std::string(64, 'x');
  const std::string s = p.take<std::string>();
  EXPECT_EQ(s, std::string(64, 'x'));
  EXPECT_FALSE(p.has_value());
}

TEST(PacketPayload, CopyIsIndependent) {
  PacketPayload a = std::vector<int>{1, 2, 3};
  PacketPayload b = a;
  ASSERT_NE(b.get<std::vector<int>>(), nullptr);
  b.get<std::vector<int>>()->push_back(4);
  EXPECT_EQ(a.get<std::vector<int>>()->size(), 3u);
  EXPECT_EQ(b.get<std::vector<int>>()->size(), 4u);
}

TEST(PacketPayload, MoveTransfersOwnership) {
  PacketPayload a = Small{7, 8};
  PacketPayload b = std::move(a);
  EXPECT_FALSE(a.has_value());  // NOLINT(bugprone-use-after-move): asserting moved-from state
  ASSERT_NE(b.get<Small>(), nullptr);
  EXPECT_EQ(b.get<Small>()->a, 7u);
}

TEST(PacketPayload, MoveAssignDestroysPrevious) {
  Counted::live = 0;
  {
    PacketPayload a = Counted{1};
    PacketPayload b = Counted{2};
    EXPECT_EQ(Counted::live, 2);
    a = std::move(b);
    EXPECT_EQ(Counted::live, 1);
    ASSERT_NE(a.get<Counted>(), nullptr);
    EXPECT_EQ(a.get<Counted>()->value, 2);
  }
  EXPECT_EQ(Counted::live, 0);
}

TEST(PacketPayload, ResetDestroysValue) {
  Counted::live = 0;
  PacketPayload p = Counted{5};
  EXPECT_EQ(Counted::live, 1);
  p.reset();
  EXPECT_EQ(Counted::live, 0);
  EXPECT_FALSE(p.has_value());
}

TEST(PacketPayload, OversizedTypeFallsBackToHeap) {
  Big big;
  big.bytes[0] = 42;
  big.bytes[127] = 7;
  PacketPayload p = big;
  const Big* stored = p.get<Big>();
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->bytes[0], 42);
  EXPECT_EQ(stored->bytes[127], 7);

  PacketPayload copy = p;
  EXPECT_NE(copy.get<Big>(), stored) << "heap payloads must deep-copy";
  PacketPayload moved = std::move(copy);
  EXPECT_EQ(moved.get<Big>()->bytes[0], 42);
}

TEST(PacketPayload, ReassignmentReplacesValue) {
  PacketPayload p = Small{1, 1};
  p = PacketPayload{std::string("hello")};
  EXPECT_EQ(p.get<Small>(), nullptr);
  ASSERT_NE(p.get<std::string>(), nullptr);
  EXPECT_EQ(*p.get<std::string>(), "hello");
}

}  // namespace
}  // namespace aqm::net

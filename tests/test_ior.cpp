#include <gtest/gtest.h>

#include <cctype>

#include "orb/exceptions.hpp"
#include "orb/ior.hpp"

namespace aqm::orb {
namespace {

ObjectRef sample_ref() {
  ObjectRef ref;
  ref.node = 42;
  ref.object_key = "video/receiver1";
  ref.priority_model = PriorityModel::ServerDeclared;
  ref.server_priority = 22'000;
  ref.protocol.dscp = net::dscp::kEf;
  return ref;
}

TEST(Ior, RoundTripPreservesEverything) {
  const ObjectRef ref = sample_ref();
  const std::string ior = object_to_string(ref);
  const ObjectRef back = string_to_object(ior);
  EXPECT_EQ(back.node, 42);
  EXPECT_EQ(back.object_key, "video/receiver1");
  EXPECT_EQ(back.priority_model, PriorityModel::ServerDeclared);
  EXPECT_EQ(back.server_priority, 22'000);
  ASSERT_TRUE(back.protocol.dscp.has_value());
  EXPECT_EQ(*back.protocol.dscp, net::dscp::kEf);
}

TEST(Ior, RoundTripWithoutOptionalComponents) {
  ObjectRef ref;
  ref.node = 1;
  ref.object_key = "a/b";
  const ObjectRef back = string_to_object(object_to_string(ref));
  EXPECT_EQ(back.priority_model, PriorityModel::ClientPropagated);
  EXPECT_EQ(back.server_priority, 0);
  EXPECT_FALSE(back.protocol.dscp.has_value());
}

TEST(Ior, StartsWithIorPrefixAndIsHex) {
  const std::string ior = object_to_string(sample_ref());
  ASSERT_GT(ior.size(), 4u);
  EXPECT_EQ(ior.substr(0, 4), "IOR:");
  for (std::size_t i = 4; i < ior.size(); ++i) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(ior[i]))) << "at " << i;
  }
}

TEST(Ior, DeterministicForSameRef) {
  EXPECT_EQ(object_to_string(sample_ref()), object_to_string(sample_ref()));
}

TEST(Ior, RejectsInvalidRef) {
  EXPECT_THROW((void)object_to_string(ObjectRef{}), BadParam);
}

TEST(Ior, RejectsGarbageStrings) {
  EXPECT_THROW((void)string_to_object("not an ior"), MarshalError);
  EXPECT_THROW((void)string_to_object("IOR:zz"), MarshalError);
  EXPECT_THROW((void)string_to_object("IOR:abc"), MarshalError);  // odd length
  EXPECT_THROW((void)string_to_object("IOR:00000000"), MarshalError);  // bad magic
}

TEST(Ior, RejectsTruncatedProfile) {
  std::string ior = object_to_string(sample_ref());
  ior.resize(ior.size() - 8);
  EXPECT_THROW((void)string_to_object(ior), MarshalError);
}

}  // namespace
}  // namespace aqm::orb

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace aqm::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), TimePoint::zero());
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.after(milliseconds(30), [&] { order.push_back(3); });
  e.after(milliseconds(10), [&] { order.push_back(1); });
  e.after(milliseconds(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now().ns(), milliseconds(30).ns());
}

TEST(Engine, SameTimeFiresInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.after(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  TimePoint seen;
  e.after(microseconds(123), [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen.ns(), 123'000);
}

TEST(Engine, HandlersCanScheduleMoreEvents) {
  Engine e;
  int fired = 0;
  e.after(milliseconds(1), [&] {
    ++fired;
    e.after(milliseconds(1), [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now().ns(), milliseconds(2).ns());
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const EventId id = e.after(milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelInvalidIdIsNoop) {
  Engine e;
  EXPECT_FALSE(e.cancel(EventId{}));
  EXPECT_FALSE(e.cancel(EventId{9999}));
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine e;
  const EventId id = e.after(milliseconds(1), [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);  // double cancel must not underflow the count
  e.run();
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  int fired = 0;
  const EventId id = e.after(milliseconds(1), [&] { ++fired; });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.cancel(id));
  EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, StaleIdDoesNotCancelSlotReuser) {
  Engine e;
  // Fire A so its slot recycles, then schedule B (which reuses the slot).
  // A's stale id must not cancel B: the generation in the id catches it.
  const EventId a = e.after(milliseconds(1), [] {});
  e.run();
  bool b_ran = false;
  const EventId b = e.after(milliseconds(1), [&] { b_ran = true; });
  EXPECT_FALSE(e.cancel(a));
  e.run();
  EXPECT_TRUE(b_ran);
  EXPECT_TRUE((a.seq & 0xffffffffu) == (b.seq & 0xffffffffu))
      << "test premise: B reuses A's slot";
}

TEST(Engine, CancelFromInsideHandler) {
  Engine e;
  bool victim_ran = false;
  const EventId victim = e.after(milliseconds(2), [&] { victim_ran = true; });
  e.after(milliseconds(1), [&] { EXPECT_TRUE(e.cancel(victim)); });
  e.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(e.executed(), 1u);
}

TEST(Engine, FarFutureAndNearEventsInterleaveInOrder) {
  // Exercises the calendar queue's near/rung/far routing: handlers keep
  // scheduling across a wide range of deltas and everything must still
  // fire in global (time, schedule-order) order.
  Engine e;
  std::vector<std::int64_t> times;
  auto record = [&] { times.push_back(e.now().ns()); };
  for (int i = 0; i < 40; ++i) {
    e.after(nanoseconds(17 * i % 64), record);        // dense near ties
    e.after(microseconds(1 + 13 * i % 29), record);   // mid-range rung
    e.after(milliseconds(1 + i % 7), record);         // far overflow
    e.after(seconds(1) + nanoseconds(i), record);     // distant rung rebuild
  }
  e.after(nanoseconds(1), [&] {
    for (int i = 0; i < 20; ++i) e.after(microseconds(100 + i), record);
  });
  e.run();
  EXPECT_EQ(times.size(), 180u);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.after(milliseconds(10), [&] { ++fired; });
  e.after(milliseconds(30), [&] { ++fired; });
  e.run_until(TimePoint{milliseconds(20).ns()});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now().ns(), milliseconds(20).ns());
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilIncludesBoundaryEvents) {
  Engine e;
  bool ran = false;
  e.after(milliseconds(10), [&] { ran = true; });
  e.run_until(TimePoint{milliseconds(10).ns()});
  EXPECT_TRUE(ran);
}

TEST(Engine, AfterSaturatesInsteadOfWrapping) {
  // A far-future delay whose absolute target overflows int64 nanoseconds
  // must clamp to TimePoint::max(), not wrap negative (which would fire
  // "in the past" and corrupt calendar routing).
  Engine e;
  e.after(milliseconds(1), [] {});
  e.run();  // now() > 0, so now + Duration::max() overflows
  TimePoint fired_at = TimePoint::zero();
  e.after(Duration::max(), [&] { fired_at = e.now(); });
  TimePoint next;
  ASSERT_TRUE(e.next_event_time(next));
  EXPECT_EQ(next, TimePoint::max());
  e.run();
  EXPECT_EQ(fired_at, TimePoint::max());
}

TEST(Engine, AfterSaturatedEventsKeepScheduleOrder) {
  // Two overflowing delays of different magnitudes land on the same
  // clamped instant and must fire in schedule order, after every
  // finite-time event.
  Engine e;
  e.after(milliseconds(1), [] {});
  e.run();  // now() = 1ms, so both delays below overflow
  std::vector<int> order;
  e.after(seconds(1), [&] { order.push_back(0); });
  e.after(Duration::max(), [&] { order.push_back(1); });
  e.after(Duration::max() - nanoseconds(7), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, RunBeforeExcludesBoundaryAndKeepsClock) {
  Engine e;
  int fired = 0;
  e.after(milliseconds(10), [&] { ++fired; });
  e.after(milliseconds(20), [&] { ++fired; });
  e.run_before(TimePoint{milliseconds(20).ns()});
  EXPECT_EQ(fired, 1);
  // Unlike run_until, the clock stays at the last fired event so later
  // cross-partition injections anywhere in [now, boundary) stay legal.
  EXPECT_EQ(e.now().ns(), milliseconds(10).ns());
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, NextEventTimeSkipsCancelled) {
  Engine e;
  const EventId id = e.after(milliseconds(1), [] {});
  e.after(milliseconds(2), [] {});
  e.cancel(id);
  TimePoint next;
  ASSERT_TRUE(e.next_event_time(next));
  EXPECT_EQ(next.ns(), milliseconds(2).ns());
  e.run();
  EXPECT_FALSE(e.next_event_time(next));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine e;
  EXPECT_FALSE(e.step());
  e.after(milliseconds(1), [] {});
  EXPECT_TRUE(e.step());
  EXPECT_FALSE(e.step());
}

TEST(Engine, ExecutedCounter) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.after(milliseconds(i + 1), [] {});
  e.run();
  EXPECT_EQ(e.executed(), 5u);
}

TEST(PeriodicTimer, TicksAtPeriod) {
  Engine e;
  int ticks = 0;
  PeriodicTimer timer(e, milliseconds(10), [&] { ++ticks; });
  timer.start();
  e.run_until(TimePoint{milliseconds(35).ns()});
  EXPECT_EQ(ticks, 3);  // at 10, 20, 30 ms
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Engine e;
  int ticks = 0;
  PeriodicTimer timer(e, milliseconds(10), [&] { ++ticks; });
  timer.start();
  e.at(TimePoint{milliseconds(25).ns()}, [&] { timer.stop(); });
  e.run_until(TimePoint{milliseconds(100).ns()});
  EXPECT_EQ(ticks, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StartAfterInitialDelay) {
  Engine e;
  std::vector<std::int64_t> tick_times;
  PeriodicTimer timer(e, milliseconds(10), [&] { tick_times.push_back(e.now().ns()); });
  timer.start_after(milliseconds(5));
  e.run_until(TimePoint{milliseconds(30).ns()});
  ASSERT_EQ(tick_times.size(), 3u);
  EXPECT_EQ(tick_times[0], milliseconds(5).ns());
  EXPECT_EQ(tick_times[1], milliseconds(15).ns());
  EXPECT_EQ(tick_times[2], milliseconds(25).ns());
}

TEST(PeriodicTimer, CallbackMayStopTimer) {
  Engine e;
  int ticks = 0;
  PeriodicTimer timer(e, milliseconds(1), [&] {
    if (++ticks == 3) timer.stop();
  });
  timer.start();
  e.run();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTimer, RestartFromInsideCallbackRearmsExactlyOnce) {
  Engine e;
  std::vector<std::int64_t> tick_times;
  PeriodicTimer timer(e, milliseconds(10), [&] {
    tick_times.push_back(e.now().ns());
    if (tick_times.size() == 1) {
      // Restart with a new period from inside the tick. The timer must
      // re-arm exactly once (no duplicate chain from the old period).
      timer.set_period(milliseconds(3));
      timer.start();
    }
  });
  timer.start();
  e.run_until(TimePoint{milliseconds(20).ns()});
  const std::vector<std::int64_t> expected{
      milliseconds(10).ns(), milliseconds(13).ns(), milliseconds(16).ns(),
      milliseconds(19).ns()};
  EXPECT_EQ(tick_times, expected);
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Engine e;
  std::vector<std::int64_t> tick_times;
  PeriodicTimer timer(e, milliseconds(10), [&] { tick_times.push_back(e.now().ns()); });
  timer.start();
  e.at(TimePoint{milliseconds(5).ns()}, [&] { timer.start(); });  // restart mid-period
  e.run_until(TimePoint{milliseconds(20).ns()});
  ASSERT_FALSE(tick_times.empty());
  EXPECT_EQ(tick_times[0], milliseconds(15).ns());  // 5ms restart + 10ms period
}

}  // namespace
}  // namespace aqm::sim

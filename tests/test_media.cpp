#include <gtest/gtest.h>

#include <vector>

#include "media/frame_filter.hpp"
#include "media/gop.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"
#include "sim/engine.hpp"

namespace aqm::media {
namespace {

TEST(Gop, PaperProfileShape) {
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  EXPECT_EQ(gop.gop_length(), 15u);
  EXPECT_EQ(gop.type_at(0), FrameType::I);
  EXPECT_EQ(gop.type_at(1), FrameType::B);
  EXPECT_EQ(gop.type_at(3), FrameType::P);
  EXPECT_EQ(gop.type_at(15), FrameType::I);  // wraps to next GOP
  // I-frames at 2 per second at 30 fps.
  int i_frames = 0;
  for (std::uint64_t f = 0; f < 30; ++f) {
    if (gop.type_at(f) == FrameType::I) ++i_frames;
  }
  EXPECT_EQ(i_frames, 2);
}

TEST(Gop, PaperProfileRates) {
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  // Full stream ~1.2 Mbps.
  EXPECT_NEAR(gop.rate_bps(30.0), 1.2e6, 0.05e6);
  // I+P (10 fps) fits under the 670 kbps partial reservation.
  const double ip = gop.rate_bps_filtered(30.0, true, true, false);
  EXPECT_LT(ip, 670e3);
  EXPECT_GT(ip, 500e3);
  // I-only (2 fps) is small.
  const double i_only = gop.rate_bps_filtered(30.0, true, false, false);
  EXPECT_LT(i_only, 250e3);
}

TEST(Gop, SizeRatiosMatchTypes) {
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  EXPECT_GT(gop.size_of(FrameType::I), gop.size_of(FrameType::P));
  EXPECT_GT(gop.size_of(FrameType::P), gop.size_of(FrameType::B));
}

TEST(Gop, RejectsBadPatterns) {
  EXPECT_THROW(GopStructure("BIP", 100, 50, 25), std::invalid_argument);
  EXPECT_THROW(GopStructure("", 100, 50, 25), std::invalid_argument);
  EXPECT_THROW(GopStructure("IXZ", 100, 50, 25), std::invalid_argument);
}

TEST(VideoSource, EmitsAtConfiguredFps) {
  sim::Engine engine;
  std::vector<VideoFrame> frames;
  VideoSource src(engine, GopStructure::mpeg1_paper_profile(), 30.0,
                  [&](const VideoFrame& f) { frames.push_back(f); });
  src.start();
  engine.run_until(TimePoint{seconds(2).ns()});
  src.stop();
  EXPECT_EQ(frames.size(), 60u);
  EXPECT_EQ(frames[0].type, FrameType::I);
  EXPECT_EQ(frames[0].index, 0u);
  EXPECT_EQ(frames[59].index, 59u);
}

TEST(VideoSource, RunBetweenWindowsEmission) {
  sim::Engine engine;
  int count = 0;
  VideoSource src(engine, GopStructure::mpeg1_paper_profile(), 30.0,
                  [&](const VideoFrame&) { ++count; });
  src.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(2).ns()});
  engine.run_until(TimePoint{seconds(3).ns()});
  EXPECT_NEAR(count, 30, 1);
}

TEST(FrameFilter, LevelsPassExpectedTypes) {
  FrameFilter filter(FilterLevel::Full);
  EXPECT_TRUE(filter.passes(FrameType::I));
  EXPECT_TRUE(filter.passes(FrameType::P));
  EXPECT_TRUE(filter.passes(FrameType::B));
  filter.set_level(FilterLevel::IpOnly);
  EXPECT_TRUE(filter.passes(FrameType::I));
  EXPECT_TRUE(filter.passes(FrameType::P));
  EXPECT_FALSE(filter.passes(FrameType::B));
  filter.set_level(FilterLevel::IOnly);
  EXPECT_TRUE(filter.passes(FrameType::I));
  EXPECT_FALSE(filter.passes(FrameType::P));
  EXPECT_FALSE(filter.passes(FrameType::B));
}

TEST(FrameFilter, IpOnlyYields10FpsOfPaperGop) {
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  FrameFilter filter(FilterLevel::IpOnly);
  int passed = 0;
  for (std::uint64_t i = 0; i < 30; ++i) {
    VideoFrame f;
    f.index = i;
    f.type = gop.type_at(i);
    if (filter.filter(f)) ++passed;
  }
  EXPECT_EQ(passed, 10);  // 10 fps out of 30
  EXPECT_EQ(filter.forwarded(), 10u);
  EXPECT_EQ(filter.dropped(), 20u);
}

TEST(FrameFilter, IOnlyYields2FpsOfPaperGop) {
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  FrameFilter filter(FilterLevel::IOnly);
  int passed = 0;
  for (std::uint64_t i = 0; i < 30; ++i) {
    VideoFrame f;
    f.index = i;
    f.type = gop.type_at(i);
    if (filter.filter(f)) ++passed;
  }
  EXPECT_EQ(passed, 2);
}

struct SinkFixture : public ::testing::Test {
  SinkFixture() : sink(engine, GopStructure::mpeg1_paper_profile()) {}

  VideoFrame frame(std::uint64_t index) {
    const GopStructure gop = GopStructure::mpeg1_paper_profile();
    VideoFrame f;
    f.index = index;
    f.type = gop.type_at(index);
    f.size_bytes = gop.size_of(f.type);
    f.capture_time = engine.now();
    return f;
  }

  sim::Engine engine;
  VideoSinkStats sink;
};

TEST_F(SinkFixture, CountsByType) {
  for (std::uint64_t i = 0; i < 15; ++i) {
    const auto f = frame(i);
    sink.on_transmitted(f);
    sink.on_received(f);
  }
  EXPECT_EQ(sink.received_count(), 15u);
  EXPECT_EQ(sink.received_of(FrameType::I), 1u);
  EXPECT_EQ(sink.received_of(FrameType::P), 4u);
  EXPECT_EQ(sink.received_of(FrameType::B), 10u);
}

TEST_F(SinkFixture, FullGopIsFullyDecodable) {
  for (std::uint64_t i = 0; i < 15; ++i) sink.on_received(frame(i));
  // Trailing B frames of the GOP reference the next GOP's I frame.
  sink.on_received(frame(15));
  EXPECT_EQ(sink.decodable_count(), 16u);
}

TEST_F(SinkFixture, MissingIFrameKillsDependents) {
  // GOP without its I frame: P and B frames are undecodable.
  for (std::uint64_t i = 1; i < 15; ++i) sink.on_received(frame(i));
  EXPECT_EQ(sink.decodable_count(), 0u);
}

TEST_F(SinkFixture, IPOnlyDeliveryDecodableWithoutBFrames) {
  // Deliver only I and P frames (the 10fps filtered stream).
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  for (std::uint64_t i = 0; i < 15; ++i) {
    if (gop.type_at(i) != FrameType::B) sink.on_received(frame(i));
  }
  EXPECT_EQ(sink.decodable_count(), 5u);  // 1 I + 4 P
}

TEST_F(SinkFixture, MissingMiddlePBreaksChain) {
  const GopStructure gop = GopStructure::mpeg1_paper_profile();
  // Deliver I and all P except the first P (position 3).
  for (std::uint64_t i = 0; i < 15; ++i) {
    if (gop.type_at(i) == FrameType::B) continue;
    if (i == 3) continue;
    sink.on_received(frame(i));
  }
  // Only the I frame is decodable: every later P depends on P@3.
  EXPECT_EQ(sink.decodable_count(), 1u);
}

TEST_F(SinkFixture, LatencySeriesTracksDelay) {
  auto f = frame(0);
  engine.after(milliseconds(25), [&, f] { sink.on_received(f); });
  engine.run();
  const auto stats = sink.latency_series().stats();
  ASSERT_EQ(stats.count(), 1u);
  EXPECT_NEAR(stats.mean(), 25.0, 0.001);
}

TEST_F(SinkFixture, WindowedCountsUseRightClocks) {
  // Transmit at t=0; receive at t=5s (post-window).
  const auto f = frame(0);
  sink.on_transmitted(f);
  engine.after(seconds(5), [&, f] { sink.on_received(f); });
  engine.run();
  EXPECT_EQ(sink.transmitted_between(TimePoint::zero(), TimePoint{seconds(1).ns()}), 1u);
  EXPECT_EQ(sink.received_between(TimePoint::zero(), TimePoint{seconds(1).ns()}), 0u);
  EXPECT_EQ(sink.received_between(TimePoint{seconds(4).ns()}, TimePoint{seconds(6).ns()}), 1u);
}

}  // namespace
}  // namespace aqm::media

#include "os/cpu.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sim/engine.hpp"

namespace aqm::os {
namespace {

CpuConfig fifo_config() {
  CpuConfig cfg;
  cfg.quantum = Duration::max() - Duration{1};  // effectively run-to-completion
  return cfg;
}

TEST(Cpu, SingleJobTakesItsDuration) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::optional<TimePoint> done;
  cpu.submit_for(milliseconds(10), 100, [&] { done = e.now(); });
  e.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->ns(), milliseconds(10).ns());
}

TEST(Cpu, CyclesMapToTimeAtHz) {
  sim::Engine e;
  CpuConfig cfg;
  cfg.hz = 2'000'000'000;  // 2 GHz
  Cpu cpu(e, "cpu", cfg);
  std::optional<TimePoint> done;
  cpu.submit(2'000'000, 100, [&] { done = e.now(); });  // 2M cycles @ 2GHz = 1ms
  e.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->ns(), milliseconds(1).ns());
}

TEST(Cpu, HigherPriorityPreemptsImmediately) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  std::optional<TimePoint> low_done;
  std::optional<TimePoint> high_done;
  cpu.submit_for(milliseconds(10), 10, [&] { low_done = e.now(); });
  e.after(milliseconds(2), [&] {
    cpu.submit_for(milliseconds(4), 200, [&] { high_done = e.now(); });
  });
  e.run();
  // High arrives at 2ms, runs 4ms -> done at 6ms. Low resumes and finishes
  // its remaining 8ms at 14ms.
  ASSERT_TRUE(high_done && low_done);
  EXPECT_EQ(high_done->ns(), milliseconds(6).ns());
  EXPECT_EQ(low_done->ns(), milliseconds(14).ns());
}

TEST(Cpu, EqualPriorityFifoWithoutQuantum) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  std::vector<int> order;
  cpu.submit_for(milliseconds(5), 50, [&] { order.push_back(1); });
  cpu.submit_for(milliseconds(5), 50, [&] { order.push_back(2); });
  cpu.submit_for(milliseconds(5), 50, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now().ns(), milliseconds(15).ns());
}

TEST(Cpu, RoundRobinSharesWithinPriority) {
  sim::Engine e;
  CpuConfig cfg;
  cfg.quantum = milliseconds(1);
  Cpu cpu(e, "cpu", cfg);
  std::optional<TimePoint> a_done;
  std::optional<TimePoint> b_done;
  cpu.submit_for(milliseconds(5), 50, [&] { a_done = e.now(); });
  cpu.submit_for(milliseconds(5), 50, [&] { b_done = e.now(); });
  e.run();
  ASSERT_TRUE(a_done && b_done);
  // Interleaved 1ms slices: A finishes around 9ms, B at 10ms — far from
  // the FIFO outcome (5ms, 10ms).
  EXPECT_GT(a_done->ns(), milliseconds(8).ns());
  EXPECT_EQ(b_done->ns(), milliseconds(10).ns());
}

TEST(Cpu, LowerPriorityWaitsForIdle) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  std::vector<int> order;
  cpu.submit_for(milliseconds(3), 100, [&] { order.push_back(1); });
  cpu.submit_for(milliseconds(3), 10, [&] { order.push_back(2); });
  cpu.submit_for(milliseconds(3), 50, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Cpu, CancelPendingJob) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  bool ran = false;
  cpu.submit_for(milliseconds(5), 100, [] {});
  const JobId waiting = cpu.submit_for(milliseconds(5), 50, [&] { ran = true; });
  EXPECT_TRUE(cpu.cancel(waiting));
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.now().ns(), milliseconds(5).ns());
}

TEST(Cpu, CancelRunningJobFreesCpu) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  bool long_ran = false;
  std::optional<TimePoint> short_done;
  const JobId long_job = cpu.submit_for(milliseconds(100), 100, [&] { long_ran = true; });
  cpu.submit_for(milliseconds(5), 50, [&] { short_done = e.now(); });
  e.after(milliseconds(2), [&] { EXPECT_TRUE(cpu.cancel(long_job)); });
  e.run();
  EXPECT_FALSE(long_ran);
  ASSERT_TRUE(short_done);
  EXPECT_EQ(short_done->ns(), milliseconds(7).ns());
}

TEST(Cpu, CancelUnknownJobReturnsFalse) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  EXPECT_FALSE(cpu.cancel(12345));
}

TEST(Cpu, CompletionCallbackMaySubmit) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  std::optional<TimePoint> second_done;
  cpu.submit_for(milliseconds(2), 50, [&] {
    cpu.submit_for(milliseconds(3), 50, [&] { second_done = e.now(); });
  });
  e.run();
  ASSERT_TRUE(second_done);
  EXPECT_EQ(second_done->ns(), milliseconds(5).ns());
}

TEST(Cpu, BusyTimeAccountsAllWork) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  cpu.submit_for(milliseconds(4), 10, [] {});
  cpu.submit_for(milliseconds(6), 90, [] {});
  e.run();
  EXPECT_EQ(cpu.busy_time().ns(), milliseconds(10).ns());
}

TEST(Cpu, UtilizationUnderIdleGaps) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  cpu.submit_for(milliseconds(5), 50, [] {});
  e.after(milliseconds(15), [] {});  // extend the run to 15ms wall
  e.run();
  EXPECT_NEAR(cpu.utilization(), 5.0 / 15.0, 1e-9);
}

TEST(Cpu, RunningPriorityReflectsCurrentJob) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  EXPECT_FALSE(cpu.running_priority().has_value());
  cpu.submit_for(milliseconds(5), 77, [] {});
  e.after(milliseconds(1), [&] {
    ASSERT_TRUE(cpu.running_priority().has_value());
    EXPECT_EQ(*cpu.running_priority(), 77);
  });
  e.run();
}

TEST(Cpu, TraceRecordsPreemption) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  cpu.enable_trace(true);
  cpu.submit_for(milliseconds(10), 10, [] {});
  e.after(milliseconds(3), [&] { cpu.submit_for(milliseconds(2), 100, [] {}); });
  e.run();
  const auto& trace = cpu.trace();
  ASSERT_GE(trace.size(), 3u);
  // Slice 1: low job 0-3ms; slice 2: high job 3-5ms; slice 3: low 5-12ms.
  EXPECT_EQ(trace[0].effective_priority, 10);
  EXPECT_EQ(trace[0].end.ns(), milliseconds(3).ns());
  EXPECT_EQ(trace[1].effective_priority, 100);
  EXPECT_EQ(trace[1].end.ns(), milliseconds(5).ns());
  EXPECT_EQ(trace[2].end.ns(), milliseconds(12).ns());
}

TEST(Cpu, ZeroCostJobCompletesImmediately) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool done = false;
  cpu.submit(0, 100, [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), TimePoint::zero());
}

}  // namespace
}  // namespace aqm::os

// Tests for the shard-parallel experiment runner and the coalesced link
// transmitter:
//  * ParallelRunner mechanics: full coverage of indices, exception
//    propagation out of worker threads, inline fallback.
//  * parse_experiment_options / derive_seed helpers.
//  * Worker-count invariance: a 32-trial load sweep produces bit-identical
//    per-trial results at 1, 2 and 8 workers (the determinism contract).
//  * Event-coalescing equivalence: per-flow delivered/dropped counts on a
//    saturated link are identical with the coalesced and the legacy
//    two-event transmitter, across drop-tail, lossy-link and token-bucket
//    gated (IntServ) configurations — and the coalesced path executes
//    fewer simulator events to get there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "net/traffic_gen.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_runner.hpp"

namespace {

using namespace aqm;

// --- ParallelRunner mechanics -----------------------------------------------

TEST(ParallelRunner, RunsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 100;
  std::vector<std::atomic<int>> hits(kN);
  const sim::ParallelRunner runner(4);
  runner.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelRunner, InlineWhenSingleJob) {
  std::vector<std::size_t> order;
  const sim::ParallelRunner runner(1);
  runner.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelRunner, PropagatesWorkerException) {
  const sim::ParallelRunner runner(4);
  EXPECT_THROW(
      runner.run(50,
                 [](std::size_t i) {
                   if (i == 13) throw std::runtime_error("trial 13 failed");
                 }),
      std::runtime_error);
}

TEST(ParallelRunner, ResolveJobsZeroMeansAllCores) {
  EXPECT_GE(sim::ParallelRunner::resolve_jobs(0), 1u);
  EXPECT_EQ(sim::ParallelRunner::resolve_jobs(3), 3u);
}

// --- option parsing and seed derivation ---------------------------------------

TEST(ExperimentOptions, ParsesAndStripsJobsFlag) {
  char a0[] = "prog", a1[] = "--jobs", a2[] = "3", a3[] = "keep";
  char* argv[] = {a0, a1, a2, a3, nullptr};
  int argc = 4;
  const auto opts = core::parse_experiment_options(argc, argv);
  EXPECT_EQ(opts.jobs, 3u);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "keep");
}

TEST(ExperimentOptions, ParsesCompactForms) {
  {
    char a0[] = "prog", a1[] = "-j8";
    char* argv[] = {a0, a1, nullptr};
    int argc = 2;
    EXPECT_EQ(core::parse_experiment_options(argc, argv).jobs, 8u);
    EXPECT_EQ(argc, 1);
  }
  {
    char a0[] = "prog", a1[] = "--jobs=5";
    char* argv[] = {a0, a1, nullptr};
    int argc = 2;
    EXPECT_EQ(core::parse_experiment_options(argc, argv).jobs, 5u);
    EXPECT_EQ(argc, 1);
  }
}

TEST(ExperimentOptions, DefaultIsSerial) {
  char a0[] = "prog";
  char* argv[] = {a0, nullptr};
  int argc = 1;
  EXPECT_EQ(core::parse_experiment_options(argc, argv).jobs, 1u);
}

TEST(DeriveSeed, DecorrelatesIndices) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 64; ++i) seen.insert(core::derive_seed(42, i));
  EXPECT_EQ(seen.size(), 64u);  // no collisions across the sweep
  // Stable: same (base, index) must give the same seed forever.
  EXPECT_EQ(core::derive_seed(42, 0), core::derive_seed(42, 0));
  EXPECT_NE(core::derive_seed(42, 0), core::derive_seed(43, 0));
}

// --- worker-count invariance on a fig7-style load sweep -----------------------

/// Everything externally observable about one trial, compared bit-exactly.
struct TrialStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t events_executed = 0;

  bool operator==(const TrialStats&) const = default;
};

/// One self-contained trial: Poisson traffic at a per-trial rate through a
/// 10 Mbps bottleneck. Private Engine/Network/RNG — no shared state.
TrialStats run_load_trial(std::size_t index, std::uint64_t seed) {
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("a");
  const auto r = net.add_node("r");
  const auto b = net.add_node("b");
  net::LinkConfig access;
  access.bandwidth_bps = 100e6;
  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  net.add_duplex_link(a, r, access);
  net.add_link(r, b, bottleneck, std::make_unique<net::DropTailQueue>(50));
  net.add_link(b, r, bottleneck);

  net::TrafficGenerator::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.flow = 9;
  cfg.poisson = true;
  // Sweep from below to well above the bottleneck rate.
  cfg.rate_bps = 4e6 + 0.5e6 * static_cast<double>(index);
  net::TrafficGenerator gen(net, cfg, seed);
  gen.run_between(TimePoint::zero(), TimePoint{milliseconds(200).ns()});
  engine.run();

  const net::FlowCounters& flow = net.flow(9);
  TrialStats s;
  s.sent = flow.sent;
  s.delivered = flow.delivered;
  s.dropped = flow.dropped;
  s.delivered_bytes = flow.delivered_bytes;
  s.events_executed = engine.executed();
  return s;
}

TEST(Experiment, WorkerCountInvariance) {
  constexpr std::size_t kTrials = 32;

  auto sweep = [&](unsigned jobs) {
    core::Experiment<TrialStats> exp;
    for (std::size_t i = 0; i < kTrials; ++i) {
      exp.add("load-" + std::to_string(i), core::derive_seed(7, i),
              [i](const core::TrialSpec& spec) { return run_load_trial(i, spec.seed); });
    }
    core::ExperimentOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return exp.run(opts);
  };

  const auto serial = sweep(1);
  ASSERT_EQ(serial.size(), kTrials);
  // The sweep actually sweeps: saturated trials drop packets, light ones don't.
  EXPECT_GT(serial.back().dropped, 0u);
  EXPECT_EQ(serial.front().dropped, 0u);
  EXPECT_GT(serial.front().delivered, 0u);

  for (const unsigned jobs : {2u, 8u}) {
    const auto parallel = sweep(jobs);
    ASSERT_EQ(parallel.size(), kTrials);
    for (std::size_t i = 0; i < kTrials; ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "trial " << i << " differs at jobs=" << jobs;
    }
  }
}

TEST(Experiment, ResultsKeepAddOrder) {
  core::Experiment<std::size_t> exp;
  for (std::size_t i = 0; i < 16; ++i) {
    exp.add("t" + std::to_string(i), i, [](const core::TrialSpec& s) { return s.index; });
  }
  core::ExperimentOptions opts;
  opts.jobs = 4;
  opts.progress = false;
  const auto results = exp.run(opts);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i);
}

// --- event-coalescing equivalence ---------------------------------------------

struct LinkCase {
  double loss_probability = 0.0;
  bool gated = false;  // IntServ token-bucket egress with one reserved flow
};

struct LinkCaseStats {
  net::FlowCounters flow_a;
  net::FlowCounters flow_b;
  std::uint64_t transmitted = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t events_executed = 0;

  static bool same_flow(const net::FlowCounters& x, const net::FlowCounters& y) {
    return x.sent == y.sent && x.delivered == y.delivered && x.dropped == y.dropped &&
           x.sent_bytes == y.sent_bytes && x.delivered_bytes == y.delivered_bytes;
  }
};

/// Two flows overdriving a 10 Mbps egress for 300 ms. Flow 5 holds a
/// token-bucket reservation in the gated variant (exercising the
/// ready-delay / retry path of the transmitter service loop).
LinkCaseStats run_link_case(bool coalesced, const LinkCase& c) {
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 10e6;
  cfg.coalesced_events = coalesced;
  cfg.loss_probability = c.loss_probability;
  cfg.loss_seed = 99;

  std::unique_ptr<net::Queue> egress;
  if (c.gated) {
    auto q = std::make_unique<net::IntServQueue>(net::IntServQueue::Config{
        /*best_effort_capacity=*/40, /*flow_capacity=*/60, /*control_capacity=*/10,
        /*excess_to_best_effort=*/false});
    q->install_reservation(/*flow=*/5, /*rate_bps=*/4e6, /*bucket_bytes=*/6'000,
                           TimePoint::zero());
    egress = std::move(q);
  } else {
    egress = std::make_unique<net::DropTailQueue>(40);
  }
  net::Link& link = net.add_link(a, b, cfg, std::move(egress));
  net.add_link(b, a, cfg);

  net::TrafficGenerator::Config f5;
  f5.src = a;
  f5.dst = b;
  f5.flow = 5;
  f5.rate_bps = 8e6;
  f5.poisson = true;
  net::TrafficGenerator gen5(net, f5, /*trial_seed=*/101);

  net::TrafficGenerator::Config f6 = f5;
  f6.flow = 6;
  f6.rate_bps = 7e6;  // CBR
  f6.poisson = false;
  net::TrafficGenerator gen6(net, f6, /*trial_seed=*/202);

  const TimePoint stop{milliseconds(300).ns()};
  gen5.run_between(TimePoint::zero(), stop);
  gen6.run_between(TimePoint::zero(), stop);
  engine.run();

  LinkCaseStats s;
  s.flow_a = net.flow(5);
  s.flow_b = net.flow(6);
  s.transmitted = link.packets_transmitted();
  s.corrupted = link.packets_corrupted();
  s.events_executed = engine.executed();
  return s;
}

void expect_equivalent(const LinkCase& c, const char* what) {
  const LinkCaseStats legacy = run_link_case(false, c);
  const LinkCaseStats coalesced = run_link_case(true, c);

  // The workload is saturating: something must actually be dropped, or the
  // case is not testing what it claims to.
  EXPECT_GT(legacy.flow_a.sent, 0u) << what;
  EXPECT_GT(legacy.flow_a.dropped + legacy.flow_b.dropped + legacy.corrupted, 0u) << what;

  EXPECT_TRUE(LinkCaseStats::same_flow(legacy.flow_a, coalesced.flow_a)) << what;
  EXPECT_TRUE(LinkCaseStats::same_flow(legacy.flow_b, coalesced.flow_b)) << what;
  EXPECT_EQ(legacy.transmitted, coalesced.transmitted) << what;
  EXPECT_EQ(legacy.corrupted, coalesced.corrupted) << what;
  // The point of the change: same observable outcome, fewer events.
  EXPECT_LT(coalesced.events_executed, legacy.events_executed) << what;
}

TEST(LinkCoalescing, EquivalentOnSaturatedDropTail) {
  expect_equivalent({}, "drop-tail");
}

TEST(LinkCoalescing, EquivalentWithRandomLoss) {
  LinkCase c;
  c.loss_probability = 0.05;
  expect_equivalent(c, "lossy");
}

TEST(LinkCoalescing, EquivalentWithTokenBucketGating) {
  LinkCase c;
  c.gated = true;
  expect_equivalent(c, "gated");
}

TEST(LinkCoalescing, EquivalentGatedAndLossy) {
  LinkCase c;
  c.gated = true;
  c.loss_probability = 0.03;
  expect_equivalent(c, "gated+lossy");
}

/// Steady-state event cost: on a long saturated drain the coalesced
/// transmitter needs ~1 event per delivered packet vs ~2 for the legacy
/// two-event path.
TEST(LinkCoalescing, EventsPerPacketNearOne) {
  auto events_per_packet = [](bool coalesced) {
    sim::Engine engine;
    net::Network net(engine);
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 10e6;
    cfg.coalesced_events = coalesced;
    constexpr int kPackets = 2'000;
    net.add_link(a, b, cfg, std::make_unique<net::DropTailQueue>(kPackets));
    net.add_link(b, a, cfg);
    int delivered = 0;
    net.set_receiver(b, [&delivered](net::Packet&&) { ++delivered; });
    for (int i = 0; i < kPackets; ++i) {
      net::Packet p;
      p.dst = b;
      p.size_bytes = 1000;
      net.send(a, std::move(p));
    }
    engine.run();
    EXPECT_EQ(delivered, kPackets);
    return static_cast<double>(engine.executed()) / static_cast<double>(delivered);
  };

  EXPECT_NEAR(events_per_packet(true), 1.0, 0.05);
  EXPECT_NEAR(events_per_packet(false), 2.0, 0.05);
}

}  // namespace

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "orb/rt/threadpool.hpp"
#include "sim/engine.hpp"

namespace aqm::orb::rt {
namespace {

os::CpuConfig fifo_config() {
  os::CpuConfig cfg;
  cfg.quantum = Duration::max() - Duration{1};
  return cfg;
}

struct PoolFixture : public ::testing::Test {
  PoolFixture() : cpu(engine, "cpu", fifo_config()) {}
  sim::Engine engine;
  os::Cpu cpu;
  PriorityMappingManager mapping;
};

TEST_F(PoolFixture, LaneSelectionByPriority) {
  ThreadPool pool(cpu, mapping,
                  {{0, 1, 8}, {10'000, 1, 8}, {25'000, 1, 8}});
  EXPECT_EQ(pool.lane_for(0), 0u);
  EXPECT_EQ(pool.lane_for(9'999), 0u);
  EXPECT_EQ(pool.lane_for(10'000), 1u);
  EXPECT_EQ(pool.lane_for(24'999), 1u);
  EXPECT_EQ(pool.lane_for(32'767), 2u);
}

TEST_F(PoolFixture, SingleThreadSerializesRequests) {
  ThreadPool pool(cpu, mapping, {{0, 1, 8}});
  std::vector<std::int64_t> completions;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(pool.dispatch(0, milliseconds(10),
                              [&] { completions.push_back(engine.now().ns()); }));
  }
  engine.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], milliseconds(10).ns());
  EXPECT_EQ(completions[1], milliseconds(20).ns());
  EXPECT_EQ(completions[2], milliseconds(30).ns());
}

TEST_F(PoolFixture, MultipleThreadsOverlapOnCpu) {
  // Two threads: both jobs become CPU-runnable immediately; with FIFO
  // scheduling they still serialize on the single core, but the second
  // does not wait for the first to *complete* before being submitted.
  ThreadPool pool(cpu, mapping, {{0, 2, 8}});
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));
  EXPECT_EQ(pool.busy(0), 2u);
  EXPECT_EQ(pool.queued(0), 0u);
  engine.run();
  EXPECT_EQ(pool.completed(), 2u);
}

TEST_F(PoolFixture, QueueBoundRejects) {
  ThreadPool pool(cpu, mapping, {{0, 1, 2}});
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));  // running
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));  // queued 1
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));  // queued 2
  EXPECT_FALSE(pool.dispatch(0, milliseconds(10), [] {})); // rejected
  EXPECT_EQ(pool.rejected(), 1u);
  engine.run();
  EXPECT_EQ(pool.completed(), 3u);
}

TEST_F(PoolFixture, HigherLaneRunsAtHigherNativePriority) {
  ThreadPool pool(cpu, mapping, {{0, 1, 8}, {30'000, 1, 8}});
  std::optional<std::int64_t> low_done;
  std::optional<std::int64_t> high_done;
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [&] { low_done = engine.now().ns(); }));
  EXPECT_TRUE(
      pool.dispatch(30'000, milliseconds(10), [&] { high_done = engine.now().ns(); }));
  engine.run();
  ASSERT_TRUE(low_done && high_done);
  // The high-priority request preempts: it finishes first even though it
  // was dispatched second.
  EXPECT_LT(*high_done, *low_done);
}

TEST_F(PoolFixture, QueuedWorkDrainsInFifoOrder) {
  ThreadPool pool(cpu, mapping, {{0, 1, 8}});
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.dispatch(0, milliseconds(1), [&order, i] { order.push_back(i); }));
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(PoolFixture, IndependentLaneQueues) {
  ThreadPool pool(cpu, mapping, {{0, 1, 1}, {20'000, 1, 1}});
  // Saturate the low lane.
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));
  EXPECT_TRUE(pool.dispatch(0, milliseconds(10), [] {}));
  EXPECT_FALSE(pool.dispatch(0, milliseconds(10), [] {}));
  // High lane unaffected.
  EXPECT_TRUE(pool.dispatch(25'000, milliseconds(10), [] {}));
  engine.run();
}

}  // namespace
}  // namespace aqm::orb::rt

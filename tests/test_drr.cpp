// Deficit-round-robin weighted fair queuing.
#include <gtest/gtest.h>

#include <memory>

#include "net/drr_queue.hpp"
#include "net/network.hpp"
#include "net/traffic_gen.hpp"
#include "sim/engine.hpp"

namespace aqm::net {
namespace {

Packet make_packet(Dscp dscp, std::uint32_t size = 1000, FlowId flow = kNoFlow) {
  Packet p;
  p.src = 0;
  p.dst = 1;
  p.dscp = dscp;
  p.size_bytes = size;
  p.flow = flow;
  return p;
}

const TimePoint t0 = TimePoint::zero();

TEST(DrrQueue, FifoWithinSingleClass) {
  DrrQueue q(DrrConfig{});
  for (std::uint32_t i = 1; i <= 3; ++i) {
    EXPECT_FALSE(q.enqueue(make_packet(dscp::kBestEffort, i * 100), t0).has_value());
  }
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 100u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 200u);
  EXPECT_EQ(q.dequeue(t0)->size_bytes, 300u);
  EXPECT_FALSE(q.dequeue(t0).has_value());
}

TEST(DrrQueue, PerClassCapacityEnforced) {
  DrrConfig cfg;
  cfg.class_capacity = 2;
  DrrQueue q(cfg);
  EXPECT_FALSE(q.enqueue(make_packet(dscp::kEf), t0).has_value());
  EXPECT_FALSE(q.enqueue(make_packet(dscp::kEf), t0).has_value());
  EXPECT_TRUE(q.enqueue(make_packet(dscp::kEf), t0).has_value());
  EXPECT_FALSE(q.enqueue(make_packet(dscp::kBestEffort), t0).has_value());
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(DrrQueue, BacklogDrainsAccordingToWeights) {
  // EF (weight 8) vs best effort (weight 1): a standing backlog drains
  // roughly 8:1 by bytes.
  DrrConfig cfg;
  cfg.class_capacity = 1000;
  DrrQueue q(cfg);
  for (int i = 0; i < 400; ++i) {
    (void)q.enqueue(make_packet(dscp::kEf, 1000), t0);
    (void)q.enqueue(make_packet(dscp::kBestEffort, 1000), t0);
  }
  // Drain 180 packets (both classes stay backlogged throughout).
  int ef = 0;
  int be = 0;
  for (int i = 0; i < 180; ++i) {
    const auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    (classify(p->dscp) == PhbClass::Ef ? ef : be) += 1;
  }
  ASSERT_GT(be, 0);  // no starvation, unlike strict priority
  EXPECT_NEAR(static_cast<double>(ef) / be, 8.0, 1.5);
}

TEST(DrrQueue, NoStarvationUnderHighClassOverload) {
  // Contrast with DiffServQueue: best effort still drains while EF is
  // permanently backlogged.
  DrrQueue q(DrrConfig{});
  for (int i = 0; i < 300; ++i) (void)q.enqueue(make_packet(dscp::kEf), t0);
  (void)q.enqueue(make_packet(dscp::kBestEffort, 777), t0);
  bool be_served = false;
  for (int i = 0; i < 100 && !be_served; ++i) {
    const auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    be_served = p->size_bytes == 777;
    (void)q.enqueue(make_packet(dscp::kEf), t0);  // keep EF backlogged
  }
  EXPECT_TRUE(be_served);
}

TEST(DrrQueue, LargePacketsEventuallyServedDespiteSmallQuantum) {
  DrrConfig cfg;
  cfg.quantum_bytes = 100;  // far below the packet size
  DrrQueue q(cfg);
  (void)q.enqueue(make_packet(dscp::kBestEffort, 5000), t0);
  const auto p = q.dequeue(t0);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size_bytes, 5000u);
}

TEST(DrrQueue, IdleClassDoesNotHoardCredit) {
  DrrQueue q(DrrConfig{});
  // Serve a lone BE packet; the class retires and must not keep credit.
  (void)q.enqueue(make_packet(dscp::kBestEffort, 100), t0);
  (void)q.dequeue(t0);
  // A later competition round behaves as if fresh.
  for (int i = 0; i < 100; ++i) {
    (void)q.enqueue(make_packet(dscp::kEf, 1000), t0);
    (void)q.enqueue(make_packet(dscp::kBestEffort, 1000), t0);
  }
  int ef = 0;
  int be = 0;
  for (int i = 0; i < 90; ++i) {
    const auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    (classify(p->dscp) == PhbClass::Ef ? ef : be) += 1;
  }
  EXPECT_GT(ef, be);  // EF's 8x weight dominates again
}

TEST(DrrQueue, EndToEndThroughputSharesLinkByWeight) {
  sim::Engine engine;
  Network net(engine);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  DrrConfig cfg;
  net.add_link(a, b, bottleneck, std::make_unique<DrrQueue>(cfg));
  net.add_link(b, a, bottleneck);
  net.set_receiver(b, [](Packet&&) {});

  // Two saturating flows: EF (weight 8) and BE (weight 1).
  TrafficGenerator::Config ef;
  ef.src = a;
  ef.dst = b;
  ef.rate_bps = 20e6;
  ef.dscp = dscp::kEf;
  ef.flow = 1;
  TrafficGenerator ef_gen(net, ef);
  TrafficGenerator::Config be = ef;
  be.dscp = dscp::kBestEffort;
  be.flow = 2;
  be.seed = 8;
  TrafficGenerator be_gen(net, be);
  ef_gen.start();
  be_gen.start();
  engine.run_until(TimePoint{seconds(10).ns()});
  ef_gen.stop();
  be_gen.stop();

  const double ef_bytes = static_cast<double>(net.flow(1).delivered_bytes);
  const double be_bytes = static_cast<double>(net.flow(2).delivered_bytes);
  ASSERT_GT(be_bytes, 0.0);
  EXPECT_NEAR(ef_bytes / be_bytes, 8.0, 1.0);
  // Link fully utilized: combined goodput ~ 10 Mbps.
  EXPECT_NEAR((ef_bytes + be_bytes) * 8.0 / 10.0, 10e6, 0.5e6);
}

}  // namespace
}  // namespace aqm::net

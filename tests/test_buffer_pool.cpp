#include "orb/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace aqm::orb {
namespace {

TEST(CdrBufferPool, FirstAcquireAllocates) {
  CdrBufferPool pool;
  const auto buf = pool.acquire();
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.pooled_buffers(), 1u);
}

TEST(CdrBufferPool, ReleasedBufferIsReused) {
  CdrBufferPool pool;
  auto buf = pool.acquire();
  buf->assign({1, 2, 3});
  const auto* raw = buf.get();
  buf.reset();  // last external reference gone -> slot is free again

  const auto again = pool.acquire();
  EXPECT_EQ(again.get(), raw) << "expected the same pooled buffer back";
  EXPECT_TRUE(again->empty()) << "acquire must hand out a cleared buffer";
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.allocations(), 1u);
}

TEST(CdrBufferPool, HeldBufferIsNotReused) {
  CdrBufferPool pool;
  const auto held = pool.acquire();
  const auto other = pool.acquire();
  EXPECT_NE(held.get(), other.get());
  EXPECT_EQ(pool.allocations(), 2u);
}

TEST(CdrBufferPool, FrozenMessageKeepsSlotBusyUntilDropped) {
  CdrBufferPool pool;
  auto buf = pool.acquire();
  buf->assign({9, 9, 9});
  const auto* raw = buf.get();
  MessageBuffer msg = CdrBufferPool::freeze(std::move(buf));
  // freeze() reuses the same control block — no copy.
  EXPECT_EQ(static_cast<const void*>(msg->data()), static_cast<const void*>(raw->data()));

  // While the message is in flight the slot must not be handed out.
  const auto other = pool.acquire();
  EXPECT_NE(other.get(), raw);

  msg.reset();  // message fully delivered
  const auto reused = pool.acquire();
  EXPECT_EQ(reused.get(), raw);
}

TEST(CdrBufferPool, PoolFullFallsBackToUntrackedBuffer) {
  CdrBufferPool pool(/*max_buffers=*/1);
  const auto a = pool.acquire();
  const auto b = pool.acquire();  // pool exhausted: one-off buffer
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.pooled_buffers(), 1u);
  EXPECT_EQ(pool.allocations(), 2u);
}

TEST(CdrBufferPool, SizeHintTracksRecentMaximumAndDecays) {
  CdrBufferPool pool;
  pool.note_message_size(10'000);
  EXPECT_EQ(pool.size_hint(), 10'000u);
  // Smaller messages decay the hint toward their size, 1/8 per message.
  pool.note_message_size(2'000);
  EXPECT_EQ(pool.size_hint(), 9'000u);
  for (int i = 0; i < 200; ++i) pool.note_message_size(2'000);
  EXPECT_LT(pool.size_hint(), 2'100u);
  EXPECT_GE(pool.size_hint(), 2'000u);
}

TEST(CdrBufferPool, AcquireReservesSizeHint) {
  CdrBufferPool pool;
  pool.note_message_size(4'096);
  const auto buf = pool.acquire();
  EXPECT_GE(buf->capacity(), 4'096u);
}

TEST(CdrBufferPool, SteadyStateChurnNeverReallocates) {
  CdrBufferPool pool;
  // Simulate the ORB send loop: acquire, encode, freeze, deliver, drop.
  pool.note_message_size(1'500);
  { const auto warm = pool.acquire(); }
  const std::uint64_t allocs = pool.allocations();
  for (int i = 0; i < 1'000; ++i) {
    auto buf = pool.acquire();
    buf->assign(1'400, static_cast<std::uint8_t>(i));
    pool.note_message_size(buf->size());
    MessageBuffer msg = CdrBufferPool::freeze(std::move(buf));
    // msg dropped at scope exit -> slot free for the next iteration
  }
  EXPECT_EQ(pool.allocations(), allocs);
  EXPECT_GE(pool.reuses(), 1'000u);
}

}  // namespace
}  // namespace aqm::orb

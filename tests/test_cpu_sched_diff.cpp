// Differential suite for the indexed CPU scheduler (DESIGN.md §9).
//
// The indexed scheduler (per-level ready queues, reserve membership index,
// period-boundary heaps) must be observably indistinguishable from the
// original scan-everything implementation, which is kept verbatim behind
// CpuConfig::legacy_scan as the oracle. Every test here builds one
// deterministic operation script, replays it against both schedulers in
// separate engines, and asserts byte-identical run traces, completion
// orders, and sampled state probes — the same new-vs-oracle pattern the
// link layer uses for LinkConfig::coalesced_events.
#include "os/cpu.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace aqm::os {
namespace {

// --- operation scripts ------------------------------------------------------

struct Op {
  enum class Kind {
    Submit,         // cycles, priority, reserve_slot (-1 = none, -2 = future id)
    Cancel,         // job_slot
    SetPriority,    // job_slot, priority
    CreateReserve,  // compute/period/hard
    UpdateReserve,  // reserve_slot, compute/period/hard (in-place re-stamp)
    DestroyReserve, // reserve_slot
    Probe,          // sample utilization/runnable/busy counters
  };
  Kind kind;
  TimePoint at;
  std::uint64_t cycles = 0;
  Priority priority = 0;
  int job_slot = -1;
  int reserve_slot = -1;
  ReserveId raw_reserve = kNoReserve;  // for Submit against a not-yet-created id
  Duration compute;
  Duration period;
  bool hard = true;
};

struct Outcome {
  std::vector<Cpu::RunSlice> trace;
  // (time ns, job id) per completion, in callback order.
  std::vector<std::pair<std::int64_t, JobId>> completions;
  std::vector<std::string> probes;
  std::vector<ReserveId> reserves_created;
  std::int64_t final_busy_ns = 0;
  std::int64_t end_time_ns = 0;
  std::size_t leftover_jobs = 0;
};

/// Replays `script` on a fresh engine+cpu and records everything observable.
Outcome run_script(const std::vector<Op>& script, const CpuConfig& base_config,
                   bool legacy) {
  CpuConfig config = base_config;
  config.legacy_scan = legacy;

  sim::Engine engine;
  Cpu cpu(engine, "diff", config);
  cpu.enable_trace(true);

  Outcome out;
  std::vector<JobId> submitted;    // by submit order; slots index into this
  std::vector<ReserveId> created;  // successful creations only

  for (const Op& op : script) {
    engine.at(op.at, [&, op] {
      switch (op.kind) {
        case Op::Kind::Submit: {
          ReserveId reserve = kNoReserve;
          if (op.raw_reserve != kNoReserve) {
            reserve = op.raw_reserve;  // may not exist (yet): legacy contract
          } else if (op.reserve_slot >= 0 && !created.empty()) {
            reserve = created[static_cast<std::size_t>(op.reserve_slot) % created.size()];
          }
          const JobId id = cpu.submit(
              op.cycles, op.priority,
              [&out, &engine, id_slot = submitted.size()]() mutable {
                // Job ids are sequential and identical across runs; record
                // the slot so the comparison is structural.
                out.completions.emplace_back(engine.now().ns(),
                                             static_cast<JobId>(id_slot));
              },
              reserve);
          submitted.push_back(id);
          break;
        }
        case Op::Kind::Cancel:
          if (!submitted.empty()) {
            cpu.cancel(submitted[static_cast<std::size_t>(op.job_slot) % submitted.size()]);
          }
          break;
        case Op::Kind::SetPriority:
          if (!submitted.empty()) {
            cpu.set_base_priority(
                submitted[static_cast<std::size_t>(op.job_slot) % submitted.size()],
                op.priority);
          }
          break;
        case Op::Kind::CreateReserve: {
          const auto r = cpu.create_reserve({op.compute, op.period, op.hard});
          if (r.ok()) created.push_back(r.value());
          break;
        }
        case Op::Kind::UpdateReserve:
          if (!created.empty()) {
            cpu.update_reserve(
                created[static_cast<std::size_t>(op.reserve_slot) % created.size()],
                {op.compute, op.period, op.hard});
          }
          break;
        case Op::Kind::DestroyReserve:
          if (!created.empty()) {
            cpu.destroy_reserve(
                created[static_cast<std::size_t>(op.reserve_slot) % created.size()]);
          }
          break;
        case Op::Kind::Probe: {
          std::ostringstream s;
          s << engine.now().ns() << ":util=" << cpu.reserved_utilization()
            << ":runnable=" << cpu.runnable_count() << ":jobs=" << cpu.job_count()
            << ":busy=" << cpu.busy_time().ns();
          for (const ReserveId r : created) {
            s << ":b" << r << "=" << cpu.reserve_budget(r).ns();
          }
          out.probes.push_back(s.str());
          break;
        }
      }
    });
  }

  engine.run();
  out.trace = cpu.trace();
  out.reserves_created = created;
  out.final_busy_ns = cpu.busy_time().ns();
  out.end_time_ns = engine.now().ns();
  out.leftover_jobs = cpu.job_count();
  return out;
}

void expect_identical(const Outcome& indexed, const Outcome& legacy,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(indexed.reserves_created, legacy.reserves_created);
  EXPECT_EQ(indexed.completions, legacy.completions);
  EXPECT_EQ(indexed.probes, legacy.probes);
  EXPECT_EQ(indexed.final_busy_ns, legacy.final_busy_ns);
  EXPECT_EQ(indexed.end_time_ns, legacy.end_time_ns);
  EXPECT_EQ(indexed.leftover_jobs, legacy.leftover_jobs);

  ASSERT_EQ(indexed.trace.size(), legacy.trace.size());
  for (std::size_t i = 0; i < indexed.trace.size(); ++i) {
    const auto& a = indexed.trace[i];
    const auto& b = legacy.trace[i];
    ASSERT_TRUE(a.job == b.job && a.effective_priority == b.effective_priority &&
                a.reserve == b.reserve && a.boosted == b.boosted &&
                a.start == b.start && a.end == b.end)
        << "run-trace slice " << i << " diverges: job " << a.job << "/" << b.job
        << " ep " << a.effective_priority << "/" << b.effective_priority
        << " start " << a.start.ns() << "/" << b.start.ns() << " end "
        << a.end.ns() << "/" << b.end.ns();
  }
}

void run_diff(const std::vector<Op>& script, const CpuConfig& config,
              const std::string& label, std::size_t min_slices = 10) {
  const Outcome indexed = run_script(script, config, /*legacy=*/false);
  const Outcome legacy = run_script(script, config, /*legacy=*/true);
  // Guard against a vacuous pass: every script must actually run work.
  EXPECT_GE(indexed.trace.size(), min_slices) << label << ": workload too trivial";
  expect_identical(indexed, legacy, label);
}

/// Randomized script generator. Times, costs and priorities are drawn from a
/// seeded engine so every case is reproducible from its seed.
std::vector<Op> random_script(std::uint64_t seed, bool with_reserves,
                              int n_ops, std::int64_t horizon_ns) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> when(0, horizon_ns);
  std::uniform_int_distribution<std::uint64_t> cost(50'000, 4'000'000);  // 50µs..4ms @1GHz
  std::uniform_int_distribution<int> prio(0, 5);   // few levels: force FIFO ties
  std::uniform_int_distribution<int> slot(0, 63);
  std::uniform_int_distribution<int> pct(0, 99);

  std::vector<Op> script;
  script.reserve(static_cast<std::size_t>(n_ops));
  if (with_reserves) {
    // A couple of reserves exist from t=0 so early submits can attach.
    for (int i = 0; i < 2; ++i) {
      Op op;
      op.kind = Op::Kind::CreateReserve;
      op.at = TimePoint::zero();
      op.compute = microseconds(300 + 200 * i);
      op.period = milliseconds(2 + i);
      op.hard = i % 2 == 0;
      script.push_back(op);
    }
  }
  for (int i = 0; i < n_ops; ++i) {
    Op op;
    op.at = TimePoint{when(rng)};
    const int roll = pct(rng);
    if (roll < 55) {
      op.kind = Op::Kind::Submit;
      op.cycles = cost(rng);
      op.priority = prio(rng);
      if (with_reserves) {
        const int attach = pct(rng);
        if (attach < 40) {
          op.reserve_slot = slot(rng);  // existing reserve (round-robin)
        } else if (attach < 45) {
          // A reserve id that may only come into existence later — the
          // legacy scheduler resolves lazily, so attachment must "wake up"
          // when the id is eventually created.
          op.raw_reserve = static_cast<ReserveId>(1 + slot(rng) % 8);
        }
      }
    } else if (roll < 70) {
      op.kind = Op::Kind::Cancel;
      op.job_slot = slot(rng);
    } else if (roll < 82) {
      op.kind = Op::Kind::SetPriority;
      op.job_slot = slot(rng);
      op.priority = prio(rng);
    } else if (roll < 86 && with_reserves) {
      op.kind = Op::Kind::CreateReserve;
      op.compute = microseconds(100 + 100 * (slot(rng) % 8));
      op.period = milliseconds(1 + slot(rng) % 5);
      op.hard = pct(rng) < 50;
    } else if (roll < 90 && with_reserves) {
      // In-place re-stamp churn: the control plane's update_reserve must
      // leave both schedulers in lockstep through boundary moves, budget
      // clamps and admission re-checks.
      op.kind = Op::Kind::UpdateReserve;
      op.reserve_slot = slot(rng);
      op.compute = microseconds(100 + 100 * (slot(rng) % 8));
      op.period = milliseconds(1 + slot(rng) % 5);
      op.hard = pct(rng) < 50;
    } else if (roll < 93 && with_reserves) {
      op.kind = Op::Kind::DestroyReserve;
      op.reserve_slot = slot(rng);
    } else {
      op.kind = Op::Kind::Probe;
    }
    script.push_back(op);
  }
  // Stable sort by time keeps same-instant ops in generation order, so both
  // replays schedule them identically.
  std::stable_sort(script.begin(), script.end(),
                   [](const Op& a, const Op& b) { return a.at < b.at; });
  return script;
}

CpuConfig quantum_config(Duration quantum) {
  CpuConfig cfg;
  cfg.quantum = quantum;
  return cfg;
}

// --- randomized differential cases ------------------------------------------

TEST(CpuSchedDiff, RandomChurnNoReserves) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto script =
        random_script(seed, /*with_reserves=*/false, 220, milliseconds(60).ns());
    run_diff(script, quantum_config(microseconds(300)),
             "no-reserves seed " + std::to_string(seed));
  }
}

TEST(CpuSchedDiff, RandomChurnWithReserves) {
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    const auto script =
        random_script(seed, /*with_reserves=*/true, 220, milliseconds(60).ns());
    run_diff(script, quantum_config(microseconds(500)),
             "reserves seed " + std::to_string(seed));
  }
}

TEST(CpuSchedDiff, RandomChurnFifoNoQuantum) {
  CpuConfig cfg;
  cfg.quantum = Duration::max() - Duration{1};  // run-to-completion
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    const auto script =
        random_script(seed, /*with_reserves=*/true, 180, milliseconds(50).ns());
    run_diff(script, cfg, "fifo seed " + std::to_string(seed));
  }
}

// --- directed corner cases ----------------------------------------------------

TEST(CpuSchedDiff, ReserveExhaustionAndReplenishment) {
  // Hard + soft reserves starved against saturating competition: exercises
  // suspension, fall-back-to-base, boundary wakes and multi-period skips.
  std::vector<Op> script;
  auto add = [&script](Op op) { script.push_back(op); };

  Op hard;
  hard.kind = Op::Kind::CreateReserve;
  hard.at = TimePoint::zero();
  hard.compute = microseconds(400);
  hard.period = milliseconds(2);
  hard.hard = true;
  add(hard);

  Op soft = hard;
  soft.compute = microseconds(250);
  soft.period = milliseconds(3);
  soft.hard = false;
  add(soft);

  // Saturating background load at a mid priority.
  for (int i = 0; i < 10; ++i) {
    Op op;
    op.kind = Op::Kind::Submit;
    op.at = TimePoint{milliseconds(i).ns()};
    op.cycles = 3'000'000;  // 3ms
    op.priority = 3;
    add(op);
  }
  // Reserved work that overruns its budget repeatedly.
  for (int i = 0; i < 6; ++i) {
    Op op;
    op.kind = Op::Kind::Submit;
    op.at = TimePoint{(milliseconds(1) * i).ns()};
    op.cycles = 1'500'000;  // 1.5ms >> per-period budget
    op.priority = 1;
    op.reserve_slot = i % 2;
    add(op);
  }
  for (int i = 0; i < 8; ++i) {
    Op probe;
    probe.kind = Op::Kind::Probe;
    probe.at = TimePoint{(milliseconds(3) * i).ns()};
    add(probe);
  }
  std::stable_sort(script.begin(), script.end(),
                   [](const Op& a, const Op& b) { return a.at < b.at; });
  run_diff(script, quantum_config(microseconds(500)), "exhaustion");
}

TEST(CpuSchedDiff, SubmitAgainstFutureReserveId) {
  // A job can name a reserve id that is only created later; both schedulers
  // must boost it the instant the reserve appears.
  std::vector<Op> script;

  Op early;
  early.kind = Op::Kind::Submit;
  early.at = TimePoint::zero();
  early.cycles = 4'000'000;  // 4ms
  early.priority = 1;
  early.raw_reserve = 1;  // id 1 does not exist yet
  script.push_back(early);

  Op competitor;
  competitor.kind = Op::Kind::Submit;
  competitor.at = TimePoint::zero();
  competitor.cycles = 4'000'000;
  competitor.priority = 200;  // outranks the orphan job until the boost
  script.push_back(competitor);

  Op create;
  create.kind = Op::Kind::CreateReserve;  // becomes id 1
  create.at = TimePoint{milliseconds(1).ns()};
  create.compute = milliseconds(5);
  create.period = milliseconds(10);
  create.hard = true;
  script.push_back(create);

  Op probe;
  probe.kind = Op::Kind::Probe;
  probe.at = TimePoint{milliseconds(2).ns()};
  script.push_back(probe);

  const Outcome indexed = run_script(script, quantum_config(milliseconds(10)), false);
  const Outcome legacy = run_script(script, quantum_config(milliseconds(10)), true);
  expect_identical(indexed, legacy, "future-reserve-id");

  // Semantic check, not just parity: after the reserve appears at 1ms the
  // orphan job preempts the priority-200 competitor (boost band).
  ASSERT_GE(indexed.trace.size(), 3u);
  EXPECT_EQ(indexed.trace[0].job, 2u);  // competitor runs first
  EXPECT_EQ(indexed.trace[1].job, 1u);  // boosted orphan takes over at 1ms
  EXPECT_TRUE(indexed.trace[1].boosted);
  EXPECT_EQ(indexed.trace[1].start.ns(), milliseconds(1).ns());
}

TEST(CpuSchedDiff, QuantumRotationParity) {
  // Many equal-priority jobs under a small quantum: the rotation rank churn
  // must stay in lockstep between the two ready-queue representations.
  std::vector<Op> script;
  for (int i = 0; i < 24; ++i) {
    Op op;
    op.kind = Op::Kind::Submit;
    op.at = TimePoint{(microseconds(40) * i).ns()};
    op.cycles = 900'000 + 37'000 * i;  // slightly uneven: varied finish order
    op.priority = i % 2;               // two contended levels
    script.push_back(op);
  }
  run_diff(script, quantum_config(microseconds(150)), "rotation");
}

TEST(CpuSchedDiff, DestroyReserveMidBoost) {
  std::vector<Op> script;

  Op create;
  create.kind = Op::Kind::CreateReserve;
  create.at = TimePoint::zero();
  create.compute = milliseconds(4);
  create.period = milliseconds(8);
  create.hard = true;
  script.push_back(create);

  Op reserved;
  reserved.kind = Op::Kind::Submit;
  reserved.at = TimePoint::zero();
  reserved.cycles = 5'000'000;
  reserved.priority = 1;
  reserved.reserve_slot = 0;
  script.push_back(reserved);

  Op normal;
  normal.kind = Op::Kind::Submit;
  normal.at = TimePoint::zero();
  normal.cycles = 2'000'000;
  normal.priority = 100;
  script.push_back(normal);

  Op destroy;
  destroy.kind = Op::Kind::DestroyReserve;
  destroy.at = TimePoint{milliseconds(1).ns()};
  destroy.reserve_slot = 0;
  script.push_back(destroy);

  run_diff(script, quantum_config(milliseconds(10)), "destroy-mid-boost",
           /*min_slices=*/3);
}

TEST(CpuSchedDiff, UpdateReserveResizeParity) {
  // A reserved job overruns while its reserve is grown, shrunk (budget
  // clamp) and period-moved in place; the re-stamp must keep both
  // schedulers' slice traces and budget probes in lockstep.
  std::vector<Op> script;

  Op create;
  create.kind = Op::Kind::CreateReserve;
  create.at = TimePoint::zero();
  create.compute = microseconds(400);
  create.period = milliseconds(2);
  create.hard = true;
  script.push_back(create);

  Op reserved;
  reserved.kind = Op::Kind::Submit;
  reserved.at = TimePoint::zero();
  reserved.cycles = 6'000'000;  // 6ms, far past any single budget
  reserved.priority = 1;
  reserved.reserve_slot = 0;
  script.push_back(reserved);

  Op competitor;
  competitor.kind = Op::Kind::Submit;
  competitor.at = TimePoint::zero();
  competitor.cycles = 5'000'000;
  competitor.priority = 150;
  script.push_back(competitor);

  Op grow = create;
  grow.kind = Op::Kind::UpdateReserve;
  grow.at = TimePoint{milliseconds(1).ns()};
  grow.reserve_slot = 0;
  grow.compute = milliseconds(1);  // mid-period grow: extra budget this period
  script.push_back(grow);

  Op shrink = grow;
  shrink.at = TimePoint{milliseconds(3).ns()};
  shrink.compute = microseconds(200);  // shrink below consumption: budget clamps to 0
  script.push_back(shrink);

  Op move = grow;
  move.at = TimePoint{(milliseconds(4) + microseconds(500)).ns()};
  move.compute = microseconds(600);
  move.period = milliseconds(5);  // boundary moves later: replenish heap re-push
  script.push_back(move);

  for (int i = 0; i < 10; ++i) {
    Op probe;
    probe.kind = Op::Kind::Probe;
    probe.at = TimePoint{(milliseconds(1) * i).ns()};
    script.push_back(probe);
  }
  std::stable_sort(script.begin(), script.end(),
                   [](const Op& a, const Op& b) { return a.at < b.at; });
  run_diff(script, quantum_config(microseconds(500)), "update-resize",
           /*min_slices=*/4);
}

// --- incremental accounting ---------------------------------------------------

TEST(CpuSchedDiff, IncrementalUtilizationMatchesRecomputation) {
  // Create/destroy churn: the incrementally maintained sum must stay
  // bit-identical to the legacy fresh summation (same admission decisions).
  sim::Engine e_idx;
  sim::Engine e_leg;
  CpuConfig legacy_cfg;
  legacy_cfg.legacy_scan = true;
  Cpu indexed(e_idx, "idx");
  Cpu legacy(e_leg, "leg", legacy_cfg);

  std::mt19937_64 rng(7);
  std::vector<ReserveId> live;
  for (int i = 0; i < 200; ++i) {
    if (live.empty() || rng() % 3 != 0) {
      ReserveSpec spec;
      spec.compute = microseconds(100 + static_cast<std::int64_t>(rng() % 900));
      spec.period = milliseconds(10 + static_cast<std::int64_t>(rng() % 90));
      spec.hard = rng() % 2 == 0;
      const auto a = indexed.create_reserve(spec);
      const auto b = legacy.create_reserve(spec);
      ASSERT_EQ(a.ok(), b.ok()) << "admission diverged at step " << i;
      if (a.ok()) {
        ASSERT_EQ(a.value(), b.value());
        live.push_back(a.value());
      }
    } else if (rng() % 2 == 0) {
      // In-place resize: the incremental sum swaps the old share for the
      // new one; admission must agree bit-for-bit with the fresh summation.
      const std::size_t pick = rng() % live.size();
      ReserveSpec spec;
      spec.compute = microseconds(100 + static_cast<std::int64_t>(rng() % 900));
      spec.period = milliseconds(10 + static_cast<std::int64_t>(rng() % 90));
      spec.hard = rng() % 2 == 0;
      const auto a = indexed.update_reserve(live[pick], spec);
      const auto b = legacy.update_reserve(live[pick], spec);
      ASSERT_EQ(a.ok(), b.ok()) << "update admission diverged at step " << i;
    } else {
      const std::size_t pick = rng() % live.size();
      indexed.destroy_reserve(live[pick]);
      legacy.destroy_reserve(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Bit-identical, not merely close: admission compares against the cap
    // with exact floating-point values.
    ASSERT_EQ(indexed.reserved_utilization(), legacy.reserved_utilization())
        << "utilization diverged at step " << i;
  }
  for (const ReserveId id : live) {
    indexed.destroy_reserve(id);
    legacy.destroy_reserve(id);
  }
  EXPECT_EQ(indexed.reserved_utilization(), 0.0);
  EXPECT_EQ(legacy.reserved_utilization(), 0.0);
}

}  // namespace
}  // namespace aqm::os

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aqm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    const auto v = rng.uniform_int(0, 9);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 9);
    ++counts[static_cast<std::size_t>(v)];
  }
  // Roughly uniform: each bucket within 10% of the expectation.
  for (const int c : counts) EXPECT_NEAR(c, 10'000, 1'000);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  const int n = 200'000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.split();
  // The child stream should not replicate the parent stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformRealRange) {
  Rng rng(29);
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

}  // namespace
}  // namespace aqm

// Differential suite for the indexed per-flow network state (DESIGN.md §10).
//
// The SoA flow table behind IntServQueue (hashed FlowId -> dense slot,
// shared packet-node pool, explicit ordered/ready indexes, incremental
// reserved-rate accounting) must be observably indistinguishable from the
// original std::map implementation, which is kept verbatim behind
// IntServQueue::Config::legacy_flow_map as the oracle — the same
// new-vs-oracle pattern the CPU scheduler uses for CpuConfig::legacy_scan.
// Every test builds one deterministic operation script, replays it against
// both queues, and asserts byte-identical observation logs (doubles are
// compared through hexfloat formatting, so the reserved-rate sums must
// match bit for bit, not just approximately).
#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "net/flow_table.hpp"
#include "net/network.hpp"
#include "net/flow_monitor.hpp"
#include "net/queue.hpp"
#include "net/rsvp.hpp"
#include "net/token_bucket.hpp"
#include "sim/engine.hpp"

namespace aqm::net {
namespace {

// --- FlowMap unit coverage ---------------------------------------------------

TEST(FlowMap, InsertFindEraseRecycle) {
  FlowMap<int> m;
  EXPECT_TRUE(m.empty());
  m[7] = 70;
  m[3] = 30;
  m[11] = 110;
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 70);
  EXPECT_EQ(m.find(8), nullptr);
  EXPECT_TRUE(m.contains(3));

  EXPECT_TRUE(m.erase(3));
  EXPECT_FALSE(m.erase(3));
  EXPECT_FALSE(m.contains(3));
  // The freed slot is recycled and the value reset, not a stale leftover.
  m[5] = 50;
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(*m.find(5), 50);
  EXPECT_EQ(*m.find(7), 70);
}

TEST(FlowMap, ZeroIsARealKey) {
  // kNoFlow == 0 indexes unclassified traffic in Network::flows_; the table
  // must treat it as an ordinary key with no sentinel semantics.
  FlowMap<int> m;
  m[kNoFlow] = 1;
  EXPECT_TRUE(m.contains(kNoFlow));
  EXPECT_EQ(m.sorted_ids().front(), kNoFlow);
}

TEST(FlowMap, OrderedIterationIsAscending) {
  FlowMap<int> m;
  for (const FlowId id : {9u, 2u, 40u, 1u, 17u}) m[id] = static_cast<int>(id * 10);
  m.erase(40);
  m[4] = 40;  // recycles 40's slot: order must follow ids, not slots
  const std::vector<FlowId> want{1, 2, 4, 9, 17};
  EXPECT_EQ(m.sorted_ids(), want);
  std::vector<FlowId> seen;
  m.for_each_ordered([&](FlowId id, const int& v) {
    seen.push_back(id);
    EXPECT_EQ(v, static_cast<int>(id * 10));
  });
  EXPECT_EQ(seen, want);
}

// --- hierarchical token bucket ----------------------------------------------

TEST(HierarchicalTokenBucket, RequiresBothLevels) {
  const TimePoint t0 = TimePoint::zero();
  TokenBucket parent(800.0, 100);     // shallow, slow parent
  TokenBucket child(8000.0, 1000);    // generous child
  // Conforms at the child but not the parent: rejected, and neither bucket
  // is debited (the failed check must be side-effect free).
  EXPECT_FALSE(hierarchical_consume(parent, child, 500, t0));
  EXPECT_DOUBLE_EQ(child.available(t0), 1000.0);
  EXPECT_DOUBLE_EQ(parent.available(t0), 100.0);
  // Small enough for both: accepted, both debited.
  EXPECT_TRUE(hierarchical_consume(parent, child, 100, t0));
  EXPECT_DOUBLE_EQ(child.available(t0), 900.0);
  EXPECT_DOUBLE_EQ(parent.available(t0), 0.0);
  // Parent exhausted: rejected again with no child debit.
  EXPECT_FALSE(hierarchical_consume(parent, child, 100, t0));
  EXPECT_DOUBLE_EQ(child.available(t0), 900.0);
}

TEST(HierarchicalTokenBucket, WaitIsTheSlowerLevel) {
  const TimePoint t0 = TimePoint::zero();
  TokenBucket parent(800.0, 100);
  TokenBucket child(8000.0, 1000);
  ASSERT_TRUE(hierarchical_consume(parent, child, 100, t0));
  // Parent refills 100 bytes/s, child 1000 bytes/s: the parent dominates.
  const Duration wait = hierarchical_time_until_conforms(parent, child, 100, t0);
  EXPECT_EQ(wait, parent.time_until_conforms(100, t0));
  EXPECT_GT(wait, child.time_until_conforms(100, t0));
  // A packet deeper than the parent can never conform.
  EXPECT_EQ(hierarchical_time_until_conforms(parent, child, 500, t0), Duration::max());
}

// --- IntServQueue operation-script differencing ------------------------------

struct Op {
  enum class Kind {
    Install,  // flow, rate_bps, bucket_bytes
    Update,   // flow, rate_bps, bucket_bytes (in-place re-stamp, keeps fill)
    Remove,   // flow
    Enqueue,  // flow, size, dscp
    Dequeue,
    Probe,    // reserved sum (bitwise), per-flow rates, counts, stats
  };
  Kind kind;
  std::int64_t at_ns = 0;
  FlowId flow = kNoFlow;
  double rate_bps = 0.0;
  std::uint32_t bucket_bytes = 0;
  std::uint32_t size = 0;
  Dscp dscp = dscp::kBestEffort;
};

std::string hex(double v) {
  std::ostringstream os;
  os << std::hexfloat << v;
  return os.str();
}

/// Replays `script` on a fresh queue and records everything observable.
std::vector<std::string> run_script(const std::vector<Op>& script,
                                    IntServQueue::Config config, bool legacy) {
  config.legacy_flow_map = legacy;
  IntServQueue q(config);
  std::vector<std::string> log;
  for (const Op& op : script) {
    const TimePoint now{op.at_ns};
    std::ostringstream line;
    switch (op.kind) {
      case Op::Kind::Install:
        q.install_reservation(op.flow, op.rate_bps, op.bucket_bytes, now);
        line << "install " << op.flow;
        break;
      case Op::Kind::Update:
        line << "update " << op.flow << " "
             << q.update_reservation(op.flow, op.rate_bps, op.bucket_bytes, now);
        break;
      case Op::Kind::Remove:
        q.remove_reservation(op.flow);
        line << "remove " << op.flow;
        break;
      case Op::Kind::Enqueue: {
        Packet p;
        p.src = 0;
        p.dst = 1;
        p.flow = op.flow;
        p.size_bytes = op.size;
        p.dscp = op.dscp;
        const auto rejected = q.enqueue(std::move(p), now);
        line << "enq " << op.flow << " "
             << (rejected ? "drop:" + std::to_string(rejected->size_bytes) : "ok");
        break;
      }
      case Op::Kind::Dequeue: {
        const auto p = q.dequeue(now);
        if (p) {
          line << "deq " << p->flow << " " << p->size_bytes << " "
               << static_cast<int>(p->dscp);
        } else {
          line << "deq none";
        }
        break;
      }
      case Op::Kind::Probe: {
        const auto delay = q.next_ready_delay(now);
        line << "probe sum=" << hex(q.reserved_rate_bps())
             << " n=" << q.reservation_count() << " pkts=" << q.packets()
             << " bytes=" << q.bytes()
             << " rate(" << op.flow << ")=" << hex(q.flow_rate_bps(op.flow))
             << " has=" << q.has_reservation(op.flow)
             << " delay=" << (delay ? std::to_string(delay->ns()) : "none")
             << " stats=" << q.stats().enqueued << "/" << q.stats().dequeued << "/"
             << q.stats().dropped << "/" << q.stats().dropped_bytes;
        break;
      }
    }
    log.push_back(line.str());
  }
  // Drain whatever is left, far enough out that every shaped packet has
  // earned its tokens: exit paths must match too.
  TimePoint end{script.empty() ? 0 : script.back().at_ns + 10'000'000'000};
  while (auto p = q.dequeue(end)) {
    log.push_back("drain " + std::to_string(p->flow) + " " +
                  std::to_string(p->size_bytes));
  }
  log.push_back("final sum=" + hex(q.reserved_rate_bps()) +
                " n=" + std::to_string(q.reservation_count()));
  return log;
}

std::vector<Op> random_script(std::uint64_t seed, std::size_t n_ops) {
  std::mt19937_64 rng(seed);
  std::vector<Op> script;
  std::int64_t now_ns = 0;
  // A mix of a small hot id set (heavy churn, slot recycling) and a wide
  // range (exercises ordering away from insertion order).
  const auto pick_flow = [&]() -> FlowId {
    return rng() % 4 == 0 ? 100 + rng() % 900 : 1 + rng() % 16;
  };
  const Dscp dscps[] = {dscp::kBestEffort, dscp::kEf, dscp::kAf11, dscp::kCs6};
  for (std::size_t i = 0; i < n_ops; ++i) {
    now_ns += static_cast<std::int64_t>(rng() % 2'000'000);  // 0-2ms strides
    Op op;
    op.at_ns = now_ns;
    switch (rng() % 11) {
      case 0:
      case 1: {
        op.kind = Op::Kind::Install;  // fresh install or modify
        op.flow = pick_flow();
        op.rate_bps = 1e5 + static_cast<double>(rng() % 1000) * 977.0;
        op.bucket_bytes = 2'000 + static_cast<std::uint32_t>(rng() % 8) * 1'000;
        break;
      }
      case 2:
        op.kind = Op::Kind::Remove;
        op.flow = pick_flow();
        break;
      case 10: {
        // Control-plane re-stamp churn: rate/bucket change in place, bucket
        // fill preserved, incremental reserved-rate sum must stay bitwise
        // equal to the legacy map's fresh bookkeeping.
        op.kind = Op::Kind::Update;
        op.flow = pick_flow();
        op.rate_bps = 1e5 + static_cast<double>(rng() % 1000) * 977.0;
        op.bucket_bytes = 2'000 + static_cast<std::uint32_t>(rng() % 8) * 1'000;
        break;
      }
      case 3:
      case 4:
      case 5:
      case 6: {
        op.kind = Op::Kind::Enqueue;
        op.flow = rng() % 8 == 0 ? kNoFlow : pick_flow();  // some unreserved
        op.size = 64 + static_cast<std::uint32_t>(rng() % 1400);
        op.dscp = dscps[rng() % 4];
        break;
      }
      case 7:
      case 8:
        op.kind = Op::Kind::Dequeue;
        break;
      default:
        op.kind = Op::Kind::Probe;
        op.flow = pick_flow();
        break;
    }
    script.push_back(op);
  }
  return script;
}

class FlowTableDiff : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowTableDiff, DemoteModeMatchesLegacy) {
  IntServQueue::Config config;
  config.excess_to_best_effort = true;
  config.flow_capacity = 4;           // small: exercises capacity clamps
  config.best_effort_capacity = 32;   // small: exercises demote drops
  const auto script = random_script(GetParam(), 600);
  EXPECT_EQ(run_script(script, config, false), run_script(script, config, true));
}

TEST_P(FlowTableDiff, ShapeModeMatchesLegacy) {
  IntServQueue::Config config;
  config.excess_to_best_effort = false;
  config.flow_capacity = 4;
  config.best_effort_capacity = 32;
  const auto script = random_script(GetParam() ^ 0xD1FFu, 600);
  EXPECT_EQ(run_script(script, config, false), run_script(script, config, true));
}

TEST_P(FlowTableDiff, HierarchicalParentMatchesLegacy) {
  // The shared parent bucket must behave identically through both storage
  // modes (demote and shape alike route policing through the same helpers).
  for (const bool demote : {true, false}) {
    IntServQueue::Config config;
    config.excess_to_best_effort = demote;
    config.flow_capacity = 4;
    config.best_effort_capacity = 32;
    config.parent_rate_bps = 2e6;
    config.parent_bucket_bytes = 6'000;
    const auto script = random_script(GetParam() ^ (demote ? 0xA1u : 0xB2u), 600);
    EXPECT_EQ(run_script(script, config, false), run_script(script, config, true));
  }
}

INSTANTIATE_TEST_SUITE_P(Churn, FlowTableDiff,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// --- network-level diff: RSVP signaling + forwarding + metrics export --------

/// Runs a small reserved-traffic scenario with every IntServ egress queue in
/// the given storage mode and returns the full metrics-registry JSON.
std::string run_network_scenario(bool legacy) {
  sim::Engine engine;
  Network net(engine);
  const NodeId a = net.add_node("a");
  const NodeId r = net.add_node("r");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 10e6;
  cfg.propagation = microseconds(50);
  const auto make_queue = [legacy]() -> std::unique_ptr<Queue> {
    IntServQueue::Config qc;
    qc.legacy_flow_map = legacy;
    return std::make_unique<IntServQueue>(qc);
  };
  net.add_duplex_link(a, r, cfg, make_queue);
  net.add_duplex_link(r, b, cfg, make_queue);

  std::vector<std::unique_ptr<RsvpAgent>> agents;
  for (const NodeId n : {a, r, b}) agents.push_back(std::make_unique<RsvpAgent>(net, n));
  FlowMonitor monitor(net, b);

  // Reserve flows 1-4, tear one down mid-run, and keep data flowing across
  // reserved, unreserved, and torn-down flows throughout.
  for (FlowId f = 1; f <= 4; ++f) {
    agents[0]->reserve(f, b, FlowSpec{1e6, 8'000}, [](Status<std::string>) {});
  }
  engine.at(TimePoint::zero() + milliseconds(40), [&] { agents[0]->release(2); });
  for (int i = 0; i < 200; ++i) {
    engine.at(TimePoint::zero() + milliseconds(1 + i / 2), [&net, a, b, i] {
      Packet p;
      p.dst = b;
      p.flow = static_cast<FlowId>(i % 6);  // 0 = unclassified, 5 = never reserved
      p.size_bytes = 400 + static_cast<std::uint32_t>(i % 7) * 100;
      p.dscp = i % 3 == 0 ? dscp::kEf : dscp::kBestEffort;
      p.seq = static_cast<std::uint64_t>(i);
      net.send(a, std::move(p));
    });
  }
  engine.run();

  obs::MetricsRegistry reg;
  net.export_metrics(reg, "net");
  monitor.export_metrics(reg, "mon");
  std::ostringstream os;
  reg.snapshot().write_json(os, 2);
  return os.str();
}

TEST(FlowTableDiff, NetworkScenarioExportsIdenticalMetrics) {
  const std::string indexed = run_network_scenario(false);
  const std::string legacy = run_network_scenario(true);
  EXPECT_FALSE(indexed.empty());
  EXPECT_EQ(indexed, legacy);
}

TEST(FlowMonitorSnapshot, ObservedFlowsAreSorted) {
  sim::Engine engine;
  Network net(engine);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  LinkConfig cfg;
  cfg.bandwidth_bps = 10e6;
  net.add_duplex_link(a, b, cfg);
  FlowMonitor monitor(net, b);
  for (const FlowId f : {9u, 2u, 31u, 5u}) {
    engine.after(microseconds(10), [&net, a, b, f] {
      Packet p;
      p.dst = b;
      p.flow = f;
      p.size_bytes = 200;
      net.send(a, std::move(p));
    });
  }
  engine.run();
  const std::vector<FlowId> want{2, 5, 9, 31};
  EXPECT_EQ(monitor.observed_flows(), want);
}

}  // namespace
}  // namespace aqm::net

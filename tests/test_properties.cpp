// Property-style parameterized sweeps over the core invariants:
//  * scheduler: work conservation, priority ordering, reserve guarantees
//  * token bucket: long-run rate never exceeds the configured rate
//  * IntServ: a reserved flow's goodput >= min(offered, reserved) under load
//  * priority/DSCP mappings: monotonicity and round-trip sanity
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "net/traffic_gen.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "orb/rt/priority_mapping.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm {
namespace {

// --- scheduler properties ---------------------------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, WorkIsConservedAcrossRandomWorkloads) {
  sim::Engine engine;
  os::Cpu cpu(engine, "cpu");
  Rng rng(GetParam());
  std::int64_t total_work_ns = 0;
  int completed = 0;
  int jobs = 0;
  for (int i = 0; i < 60; ++i) {
    const auto arrival = Duration{rng.uniform_int(0, seconds(1).ns())};
    const auto cost = Duration{rng.uniform_int(microseconds(10).ns(), milliseconds(20).ns())};
    const auto prio = static_cast<os::Priority>(rng.uniform_int(0, 255));
    total_work_ns += cost.ns();
    ++jobs;
    engine.after(arrival, [&cpu, cost, prio, &completed] {
      cpu.submit_for(cost, prio, [&completed] { ++completed; });
    });
  }
  engine.run();
  EXPECT_EQ(completed, jobs);
  // All submitted CPU time is accounted as busy time (tolerance: integer
  // rounding of one cycle per job).
  EXPECT_NEAR(static_cast<double>(cpu.busy_time().ns()),
              static_cast<double>(total_work_ns), 100.0);
}

TEST_P(SchedulerProperty, TraceNeverRunsLowWhileHigherWaits) {
  sim::Engine engine;
  os::CpuConfig cfg;
  cfg.quantum = Duration::max() - Duration{1};  // strict FIFO within priority
  os::Cpu cpu(engine, "cpu", cfg);
  cpu.enable_trace(true);
  Rng rng(GetParam() + 1000);

  // Reconstruct runnable intervals: job -> [arrival, completion).
  struct JobInfo {
    TimePoint arrival;
    TimePoint completion;
    os::Priority priority;
  };
  std::map<os::JobId, std::shared_ptr<JobInfo>> info;
  for (int i = 0; i < 40; ++i) {
    const auto arrival = Duration{rng.uniform_int(0, milliseconds(500).ns())};
    const auto cost = Duration{rng.uniform_int(microseconds(100).ns(), milliseconds(10).ns())};
    const auto prio = static_cast<os::Priority>(rng.uniform_int(0, 10));
    engine.after(arrival, [&, cost, prio] {
      auto rec = std::make_shared<JobInfo>(JobInfo{engine.now(), TimePoint::max(), prio});
      const os::JobId id =
          cpu.submit_for(cost, prio, [&engine, rec] { rec->completion = engine.now(); });
      info[id] = rec;
    });
  }
  engine.run();

  // For every run slice of priority p, no job with higher priority may be
  // runnable (arrived, not yet completed) during that slice.
  for (const auto& slice : cpu.trace()) {
    if (slice.boosted) continue;
    for (const auto& [id, job] : info) {
      if (id == slice.job) continue;
      if (job->priority <= slice.effective_priority) continue;
      const bool overlaps =
          job->arrival < slice.end && job->completion > slice.start + Duration{1};
      EXPECT_FALSE(overlaps) << "priority inversion: job " << id << " (prio "
                             << job->priority << ") runnable while slice of prio "
                             << slice.effective_priority << " ran";
    }
  }
}

TEST_P(SchedulerProperty, ReserveReceivesItsBudgetEveryPeriod) {
  sim::Engine engine;
  os::Cpu cpu(engine, "cpu");
  cpu.enable_trace(true);
  Rng rng(GetParam() + 2000);

  const Duration compute = milliseconds(static_cast<std::int64_t>(rng.uniform_int(5, 20)));
  const Duration period = milliseconds(100);
  const auto reserve = cpu.create_reserve({compute, period, true});
  ASSERT_TRUE(reserve.ok());

  // Saturating interference.
  std::function<void()> refill = [&] {
    cpu.submit_for(milliseconds(37), os::kMaxPriority, [&] { refill(); });
  };
  refill();

  // Reserved work queue: always backlogged.
  std::function<void()> reserved_refill = [&] {
    cpu.submit_for(milliseconds(250), 10, [&] { reserved_refill(); }, reserve.value());
  };
  reserved_refill();

  const int periods = 10;
  engine.run_until(TimePoint{(period * periods).ns()});

  // Sum boosted run time per period: must equal the budget in every full
  // period (the workload is backlogged).
  std::vector<std::int64_t> per_period(periods, 0);
  for (const auto& slice : cpu.trace()) {
    if (!slice.boosted) continue;
    const auto p = static_cast<std::size_t>(slice.start.ns() / period.ns());
    if (p < per_period.size()) per_period[p] += (slice.end - slice.start).ns();
  }
  for (int p = 0; p < periods; ++p) {
    EXPECT_NEAR(static_cast<double>(per_period[static_cast<std::size_t>(p)]),
                static_cast<double>(compute.ns()), 1000.0)
        << "period " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Values(1, 2, 3, 4, 5));

// --- token bucket / IntServ properties -------------------------------------------

class RateProperty : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(RateProperty, ReservedFlowGoodputHonorsReservationUnderOverload) {
  const auto [reserved_bps, shaping] = GetParam();
  sim::Engine engine;
  net::Network network(engine);
  const auto src = network.add_node("src");
  const auto dst = network.add_node("dst");
  const auto load_src = network.add_node("load");
  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  net::IntServQueue::Config qcfg;
  qcfg.excess_to_best_effort = !shaping;
  auto queue = std::make_unique<net::IntServQueue>(qcfg);
  queue->install_reservation(5, reserved_bps, 32'000, TimePoint::zero());
  network.add_link(src, dst, bottleneck, std::move(queue));
  network.add_link(dst, src, bottleneck);
  net::LinkConfig access;
  access.bandwidth_bps = 100e6;
  network.add_duplex_link(load_src, src, access);

  // Reserved flow offers 2x its reservation; load saturates the link.
  net::TrafficGenerator::Config video;
  video.src = src;
  video.dst = dst;
  video.rate_bps = reserved_bps * 2;
  video.packet_bytes = 1000;
  video.flow = 5;
  net::TrafficGenerator video_gen(network, video);

  net::TrafficGenerator::Config load;
  load.src = load_src;
  load.dst = dst;
  load.rate_bps = 40e6;
  load.flow = 6;
  net::TrafficGenerator load_gen(network, load);

  video_gen.start();
  load_gen.start();
  engine.run_until(TimePoint{seconds(10).ns()});
  video_gen.stop();
  load_gen.stop();

  const double delivered_bps =
      static_cast<double>(network.flow(5).delivered_bytes) * 8.0 / 10.0;
  if (shaping) {
    // Shaping pins goodput at the token rate (within 15%).
    EXPECT_NEAR(delivered_bps, reserved_bps, reserved_bps * 0.15);
  } else {
    // Policing guarantees at least the reservation; demoted excess may
    // scavenge leftover best-effort capacity on top.
    EXPECT_GE(delivered_bps, reserved_bps * 0.9);
    EXPECT_LE(delivered_bps, reserved_bps * 2.0 + 0.1e6);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, RateProperty,
                         ::testing::Combine(::testing::Values(0.5e6, 1e6, 2e6, 4e6),
                                            ::testing::Bool()));

// --- mapping properties ------------------------------------------------------------

class MappingProperty : public ::testing::TestWithParam<int> {};

TEST_P(MappingProperty, LinearPriorityMappingIsMonotone) {
  orb::rt::LinearPriorityMapping mapping;
  const int step = GetParam();
  os::Priority last = os::kMinPriority;
  for (orb::CorbaPriority p = 0; p <= orb::kMaxCorbaPriority; p += step) {
    const os::Priority native = mapping.to_native(p);
    EXPECT_GE(native, last);
    EXPECT_GE(native, os::kMinPriority);
    EXPECT_LE(native, os::kMaxPriority);
    last = native;
  }
  EXPECT_EQ(mapping.to_native(0), os::kMinPriority);
  EXPECT_EQ(mapping.to_native(orb::kMaxCorbaPriority), os::kMaxPriority);
}

TEST_P(MappingProperty, RoundTripStaysClose) {
  orb::rt::LinearPriorityMapping mapping;
  const int step = GetParam();
  for (orb::CorbaPriority p = 0; p <= orb::kMaxCorbaPriority; p += step) {
    const orb::CorbaPriority back = mapping.to_corba(mapping.to_native(p));
    // 255 native levels over 32768 CORBA levels: quantization <= 1 step.
    EXPECT_NEAR(back, p, 32767.0 / 255.0 + 1.0);
  }
}

TEST_P(MappingProperty, BandedDscpIsMonotoneInServiceClass) {
  orb::rt::BandedDscpMapping mapping;
  const int step = GetParam();
  auto rank = [](net::Dscp d) {
    return static_cast<int>(net::kPhbClassCount) -
           static_cast<int>(net::classify(d));  // higher = better service
  };
  int last = rank(net::dscp::kBestEffort);
  for (orb::CorbaPriority p = 0; p <= orb::kMaxCorbaPriority; p += step) {
    const int r = rank(mapping.to_dscp(p));
    EXPECT_GE(r, last);
    last = r;
  }
}

INSTANTIATE_TEST_SUITE_P(Steps, MappingProperty, ::testing::Values(1, 7, 97, 1013));

}  // namespace
}  // namespace aqm

// Streaming QoS telemetry: windowed SLO monitors, breach/recovery
// hysteresis, flight-recorder dumps and the deterministic health sidecar
// (DESIGN.md §12). Unit tests drive the hub directly with a small window
// (10 ms buckets, 4-bucket ring); scenario tests push real packets through
// a congested net::Link and check the end-to-end contract, including
// byte-identical sidecars for any --jobs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/qos_policy.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"
#include "sim/engine.hpp"

namespace aqm {
namespace {

obs::TelemetryConfig small_config() {
  obs::TelemetryConfig cfg;
  cfg.bucket = milliseconds(10);
  cfg.buckets = 4;
  return cfg;
}

TimePoint at_ms(std::int64_t ms) { return TimePoint{milliseconds(ms).ns()}; }

TEST(SloMonitor, WindowAggregatesAndRates) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_miss_rate = 0.9;  // never violated here
  hub.set_slo(7, spec);

  for (int i = 0; i < 8; ++i) hub.on_call(7, at_ms(1), 2.0);
  hub.on_deadline_miss(7, at_ms(2));
  hub.on_deadline_miss(7, at_ms(2));
  for (int i = 0; i < 6; ++i) hub.on_delivery(7, at_ms(3), 1000);
  hub.on_drop(7, at_ms(4));
  hub.on_drop(7, at_ms(4));

  const obs::WindowStats w = hub.window(7, at_ms(5));
  EXPECT_EQ(w.calls, 10u);  // misses count as calls
  EXPECT_EQ(w.misses, 2u);
  EXPECT_EQ(w.deliveries, 6u);
  EXPECT_EQ(w.drops, 2u);
  EXPECT_EQ(w.bytes, 6000u);
  EXPECT_DOUBLE_EQ(w.miss_rate, 0.2);
  EXPECT_DOUBLE_EQ(w.drop_rate, 0.25);
  EXPECT_GT(w.p99_latency_ms, 1.0);
  EXPECT_LT(w.p99_latency_ms, 4.0);

  // The window is 4 buckets: everything above expires once the clock moves
  // a full window past the bucket that held it.
  const obs::WindowStats after = hub.window(7, at_ms(60));
  EXPECT_EQ(after.calls, 0u);
  EXPECT_EQ(after.deliveries, 0u);
  EXPECT_EQ(after.drops, 0u);
  EXPECT_DOUBLE_EQ(after.p99_latency_ms, 0.0);
}

TEST(SloMonitor, UnmonitoredFlowHasZeroWindow) {
  obs::TelemetryHub hub(small_config());
  hub.on_call(9, at_ms(1), 5.0);
  const obs::WindowStats w = hub.window(9, at_ms(2));
  EXPECT_EQ(w.calls, 0u);
  EXPECT_EQ(hub.slo(9), nullptr);
}

TEST(SloMonitor, SetAndClearSlo) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_drop_rate = 0.1;
  hub.set_slo(5, spec);
  ASSERT_NE(hub.slo(5), nullptr);
  EXPECT_DOUBLE_EQ(*hub.slo(5)->max_drop_rate, 0.1);
  hub.clear_slo(5);
  EXPECT_EQ(hub.slo(5), nullptr);
}

// Timeline (10 ms buckets, 4-bucket window, breach_windows = recover = 2):
// drops in buckets [0,10) and [10,20), deliveries in every bucket through
// [60,70). Evaluations at each boundary: bad at 10 ms (streak 1), bad at
// 20 ms (streak 2 -> breach), still bad while the drop buckets remain in
// the window, clean at 60 ms (streak 1) and 70 ms (streak 2 -> recovery).
TEST(SloMonitor, BreachAndRecoveryHysteresis) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_drop_rate = 0.1;
  hub.set_slo(5, spec);

  for (int b = 0; b < 7; ++b) {
    for (int i = 0; i < 5; ++i) hub.on_delivery(5, at_ms(10 * b + 1), 100);
    if (b < 2) {
      for (int i = 0; i < 5; ++i) hub.on_drop(5, at_ms(10 * b + 2));
    }
  }
  hub.poll(at_ms(80));

  ASSERT_EQ(hub.events().size(), 2u);
  const obs::HealthEvent& breach = hub.events()[0];
  EXPECT_TRUE(breach.breach);
  EXPECT_STREQ(breach.metric, "drop_rate");
  EXPECT_EQ(breach.t_ns, milliseconds(20).ns());
  EXPECT_EQ(breach.flow, 5u);
  EXPECT_DOUBLE_EQ(breach.threshold, 0.1);
  EXPECT_DOUBLE_EQ(breach.value, 0.5);
  EXPECT_EQ(breach.window.drops, 10u);
  EXPECT_EQ(breach.window.deliveries, 10u);

  const obs::HealthEvent& recovery = hub.events()[1];
  EXPECT_FALSE(recovery.breach);
  EXPECT_EQ(recovery.t_ns, milliseconds(70).ns());

  const obs::HealthReport report = hub.report();
  ASSERT_EQ(report.flows.count(5u), 1u);
  const obs::FlowHealthSummary& s = report.flows.at(5u);
  EXPECT_EQ(s.breaches, 1u);
  EXPECT_EQ(s.recoveries, 1u);
  EXPECT_EQ(s.breached_ns, milliseconds(50).ns());
  EXPECT_FALSE(hub.breached(5));
}

TEST(SloMonitor, EmptyWindowsCountCleanAndRecover) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_drop_rate = 0.1;
  hub.set_slo(5, spec);
  for (int i = 0; i < 5; ++i) hub.on_drop(5, at_ms(1));
  hub.poll(at_ms(25));
  EXPECT_TRUE(hub.breached(5));
  // No traffic at all afterwards: once the drop bucket leaves the window
  // the empty evaluations count clean, so an idle flow recovers.
  hub.poll(at_ms(200));
  EXPECT_FALSE(hub.breached(5));
  ASSERT_EQ(hub.events().size(), 2u);
  EXPECT_FALSE(hub.events()[1].breach);
}

TEST(SloMonitor, ViolationPriorityMissRateFirst) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_miss_rate = 0.1;
  spec.max_drop_rate = 0.1;
  spec.breach_windows = 1;
  hub.set_slo(5, spec);
  // Both rates are violated in the same window; the breach names the
  // highest-priority metric (miss_rate before drop_rate).
  hub.on_call(5, at_ms(1), 2.0);
  hub.on_deadline_miss(5, at_ms(2));
  hub.on_delivery(5, at_ms(3), 100);
  hub.on_drop(5, at_ms(4));
  hub.poll(at_ms(15));
  ASSERT_EQ(hub.events().size(), 1u);
  EXPECT_STREQ(hub.events()[0].metric, "miss_rate");
}

TEST(SloMonitor, P99LatencyBreachFromLogHistogram) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_p99_latency_ms = 50.0;
  hub.set_slo(5, spec);
  for (int b = 0; b < 2; ++b) {
    for (int i = 0; i < 98; ++i) hub.on_call(5, at_ms(10 * b + 1), 1.0);
    hub.on_call(5, at_ms(10 * b + 2), 500.0);
    hub.on_call(5, at_ms(10 * b + 2), 500.0);
  }
  hub.poll(at_ms(25));
  ASSERT_FALSE(hub.events().empty());
  const obs::HealthEvent& e = hub.events()[0];
  EXPECT_TRUE(e.breach);
  EXPECT_STREQ(e.metric, "p99_latency_ms");
  // The p99 lands in the log bucket holding 500 ms; geometric buckets give
  // bounded relative error, not an exact value.
  EXPECT_GT(e.value, 50.0);
  EXPECT_LT(e.value, 1000.0);
}

TEST(SloMonitor, ThroughputEwmaDecaysIntoBreach) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.min_throughput_bps = 1e6;
  hub.set_slo(5, spec);
  // Four healthy buckets at 10 Mbps seed the EWMA well above the floor.
  for (int b = 0; b < 4; ++b) hub.on_delivery(5, at_ms(10 * b + 1), 12'500);
  hub.poll(at_ms(40));
  EXPECT_FALSE(hub.breached(5));
  // Then a trickle (8 kbps instantaneous) decays the EWMA through the
  // floor; the window stays non-empty so the evaluations are not skipped.
  for (int b = 4; b < 16; ++b) hub.on_delivery(5, at_ms(10 * b + 1), 10);
  hub.poll(at_ms(160));
  EXPECT_TRUE(hub.breached(5));
  bool saw_throughput_breach = false;
  for (const obs::HealthEvent& e : hub.events()) {
    if (e.breach && std::string_view(e.metric) == "throughput_bps") {
      saw_throughput_breach = true;
      EXPECT_LT(e.value, 1e6);
      EXPECT_DOUBLE_EQ(e.threshold, 1e6);
    }
  }
  EXPECT_TRUE(saw_throughput_breach);
}

TEST(FlightRecorder, DumpContainsOnlyImplicatedEvents) {
  obs::TelemetryHub hub(small_config());
  obs::SloSpec spec;
  spec.max_drop_rate = 0.1;
  spec.breach_windows = 1;
  hub.set_slo(5, spec);

  obs::TraceRecorder& ring = hub.flight();
  const std::uint16_t track = ring.track("test");
  // Implicated by trace id: on_call registers 7 as recently seen.
  hub.on_call(5, at_ms(1), 2.0, /*trace=*/7);
  ring.instant(obs::TraceCategory::Net, "send", track, at_ms(1), 7);
  // Implicated by flow argument.
  ring.instant(obs::TraceCategory::Net, "drop", track, at_ms(2), 0, {{"flow", 5.0}});
  // Unrelated: foreign trace id and foreign flow.
  ring.instant(obs::TraceCategory::Net, "send", track, at_ms(1), 9);
  ring.instant(obs::TraceCategory::Net, "drop", track, at_ms(2), 0, {{"flow", 6.0}});

  for (int i = 0; i < 5; ++i) hub.on_drop(5, at_ms(3));
  hub.poll(at_ms(15));

  ASSERT_EQ(hub.dumps().size(), 1u);
  const obs::FlightDump& d = hub.dumps()[0];
  EXPECT_EQ(d.flow, 5u);
  EXPECT_EQ(d.metric, "drop_rate");
  EXPECT_EQ(d.ring_overwritten, 0u);
  ASSERT_EQ(d.events.size(), 2u);
  EXPECT_EQ(d.events[0].id, 7u);
  EXPECT_EQ(d.events[1].name, "drop");
  ASSERT_EQ(d.events[1].argc, 1u);
  EXPECT_EQ(d.events[1].args[0].first, "flow");
  EXPECT_DOUBLE_EQ(d.events[1].args[0].second, 5.0);
}

TEST(HealthSidecar, DeterministicBytesAndNonFiniteAsNull) {
  obs::HealthReport report;
  obs::HealthEvent e;
  e.t_ns = milliseconds(20).ns();
  e.flow = 5;
  e.breach = true;
  e.metric = "drop_rate";
  e.value = 0.5;
  e.threshold = 0.1;
  report.events.push_back(e);
  e.value = std::nan("");
  report.events.push_back(e);
  report.flows[5] = {2, 1, milliseconds(30).ns()};

  std::ostringstream a;
  std::ostringstream b;
  obs::write_health_sidecar(a, {{"trial", report}});
  obs::write_health_sidecar(b, {{"trial", report}});
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"drop_rate\""), std::string::npos);
  EXPECT_NE(a.str().find("null"), std::string::npos);
  EXPECT_EQ(a.str().find("nan"), std::string::npos);
}

// --- QoSSession wiring ------------------------------------------------------

TEST(QoSSessionSlo, InstallsAndRevokesThroughPolicy) {
  core::PriorityTestbed bed((core::PriorityTestbedParams{}));
  obs::TelemetryHub hub(small_config());
  bed.engine.set_telemetry(&hub);

  orb::Poa& poa = bed.receiver_orb.create_poa("app");
  auto servant = std::make_shared<orb::FunctionServant>(microseconds(100),
                                                        [](orb::ServerRequest&) {});
  const orb::ObjectRef target = poa.activate_object("target", servant);
  orb::ObjectStub stub(bed.sender_orb, target);
  stub.set_flow(core::kFlowSender1);

  core::QoSSession session(bed.sender_orb, stub);
  core::EndToEndQosPolicy policy;
  policy.flow = core::kFlowSender1;
  policy.slo = obs::SloSpec{};
  policy.slo->max_drop_rate = 0.05;

  std::optional<bool> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = s.ok(); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  ASSERT_NE(hub.slo(core::kFlowSender1), nullptr);
  EXPECT_DOUBLE_EQ(*hub.slo(core::kFlowSender1)->max_drop_rate, 0.05);

  session.revoke();
  EXPECT_EQ(hub.slo(core::kFlowSender1), nullptr);
  bed.engine.set_telemetry(nullptr);
}

TEST(QoSSessionSlo, RequiresFlowAndHub) {
  core::PriorityTestbed bed((core::PriorityTestbedParams{}));
  orb::Poa& poa = bed.receiver_orb.create_poa("app");
  auto servant = std::make_shared<orb::FunctionServant>(microseconds(100),
                                                        [](orb::ServerRequest&) {});
  const orb::ObjectRef target = poa.activate_object("target", servant);
  orb::ObjectStub stub(bed.sender_orb, target);

  core::QoSSession session(bed.sender_orb, stub);
  core::EndToEndQosPolicy policy;
  policy.slo = obs::SloSpec{};
  policy.slo->max_drop_rate = 0.05;

  std::optional<Status<std::string>> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = std::move(s); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("flow id"), std::string::npos);

  // With a flow but no hub on the engine, the apply still fails cleanly.
  policy.flow = core::kFlowSender1;
  outcome.reset();
  session.apply(policy, [&](Status<std::string> s) { outcome = std::move(s); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("TelemetryHub"), std::string::npos);
}

// --- end-to-end scenario ----------------------------------------------------

struct ScenarioOut {
  obs::HealthReport health;
  std::vector<obs::FlightDump> dumps;
};

// One trial: a 10 Mbps link with a 20-packet drop-tail queue; a burst at
// t = 1 ms overflows the queue (drops -> breach), then the line goes idle
// and the empty windows recover the flow. All observations arrive through
// the real net-layer hooks and the flight ring doubles as the engine
// tracer, exactly the shipped wiring.
ScenarioOut run_congestion_trial(std::size_t burst) {
  sim::Engine e;
  obs::TelemetryConfig cfg;
  cfg.bucket = milliseconds(50);
  cfg.buckets = 4;
  obs::TelemetryHub hub(cfg);
  e.set_telemetry(&hub);
  e.set_tracer(&hub.flight());

  obs::SloSpec spec;
  spec.max_drop_rate = 0.05;
  hub.set_slo(5, spec);

  net::Network net(e);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig link;
  link.bandwidth_bps = 10e6;
  link.propagation = microseconds(100);
  net.add_duplex_link(a, b, link,
                      [] { return std::make_unique<net::DropTailQueue>(20); });
  net.set_receiver(b, [](net::Packet&&) {});

  e.after(milliseconds(1), [&] {
    for (std::size_t i = 0; i < burst; ++i) {
      net::Packet p;
      p.dst = b;
      p.size_bytes = 1250;
      p.flow = 5;
      net.send(a, p);
    }
  });
  e.run();
  hub.finalize(at_ms(500));
  e.set_telemetry(nullptr);
  e.set_tracer(nullptr);

  ScenarioOut out;
  out.health = hub.report();
  out.dumps = hub.dumps();
  return out;
}

TEST(TelemetryScenario, CongestionBreachThenRecoveryWithFlightDump) {
  const ScenarioOut out = run_congestion_trial(100);

  ASSERT_GE(out.health.events.size(), 2u);
  const obs::HealthEvent& breach = out.health.events[0];
  EXPECT_TRUE(breach.breach);
  EXPECT_EQ(breach.flow, 5u);
  EXPECT_STREQ(breach.metric, "drop_rate");
  EXPECT_GT(breach.value, 0.05);
  EXPECT_DOUBLE_EQ(breach.threshold, 0.05);
  EXPECT_GT(breach.window.drops, 0u);
  // Boundary instants are integer multiples of the bucket width.
  EXPECT_EQ(breach.t_ns % milliseconds(50).ns(), 0);

  const obs::HealthEvent& last = out.health.events.back();
  EXPECT_FALSE(last.breach);

  ASSERT_EQ(out.health.flows.count(5u), 1u);
  EXPECT_GE(out.health.flows.at(5u).breaches, 1u);
  EXPECT_GE(out.health.flows.at(5u).recoveries, 1u);

  // The breach cut a flight dump whose events are attributed to the flow.
  ASSERT_FALSE(out.dumps.empty());
  const obs::FlightDump& d = out.dumps[0];
  EXPECT_EQ(d.flow, 5u);
  ASSERT_FALSE(d.events.empty());
  bool saw_drop = false;
  for (const obs::FlightEvent& fe : d.events) {
    if (fe.name == "drop") saw_drop = true;
  }
  EXPECT_TRUE(saw_drop);
}

TEST(TelemetryScenario, SidecarsByteIdenticalForAnyJobs) {
  auto build = [] {
    core::Experiment<ScenarioOut> exp;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t burst = 60 + 20 * i;
      exp.add("burst-" + std::to_string(burst), /*seed=*/i,
              [burst](const core::TrialSpec&) { return run_congestion_trial(burst); });
    }
    return exp;
  };

  auto render = [&](unsigned jobs) {
    core::Experiment<ScenarioOut> exp = build();
    core::ExperimentOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    const auto results = exp.run(opts);
    std::vector<obs::NamedHealthReport> reports;
    std::vector<obs::NamedFlightDumps> dumps;
    for (std::size_t i = 0; i < results.size(); ++i) {
      reports.push_back({exp.spec(i).name, results[i].health});
      dumps.push_back({exp.spec(i).name, results[i].dumps});
    }
    std::ostringstream health;
    std::ostringstream flight;
    obs::write_health_sidecar(health, reports);
    obs::write_flight_sidecar(flight, dumps);
    return std::make_pair(health.str(), flight.str());
  };

  const auto serial = render(1);
  const auto parallel = render(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_NE(serial.first.find("\"breach\""), std::string::npos);
}

}  // namespace
}  // namespace aqm

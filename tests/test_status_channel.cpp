// Distributed QuO plumbing: status reports, collectors, and the reusable
// rate-adaptation qosket.
#include <gtest/gtest.h>

#include <memory>

#include "avstreams/rate_adaptation.hpp"
#include "net/network.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "quo/status_channel.hpp"
#include "sim/engine.hpp"

namespace aqm::quo {
namespace {

TEST(StatusReportCodec, RoundTrip) {
  StatusReport report;
  report.sent_at = TimePoint{123'456};
  report.values = {{"fps", 29.5}, {"loss", 0.02}, {"cpu", 0.8}};
  const auto body = encode_status_report(report);
  const StatusReport back = decode_status_report(body);
  EXPECT_EQ(back.sent_at, TimePoint{123'456});
  ASSERT_EQ(back.values.size(), 3u);
  EXPECT_EQ(back.values[0].first, "fps");
  EXPECT_DOUBLE_EQ(back.values[0].second, 29.5);
  EXPECT_EQ(back.values[2].first, "cpu");
}

TEST(StatusReportCodec, RejectsGarbage) {
  EXPECT_THROW((void)decode_status_report({1, 2}), orb::MarshalError);
}

struct ChannelFixture : public ::testing::Test {
  ChannelFixture()
      : net(engine),
        producer_node(net.add_node("producer")),
        consumer_node(net.add_node("consumer")),
        producer_cpu(engine, "producer-cpu"),
        consumer_cpu(engine, "consumer-cpu"),
        producer(net, producer_node, producer_cpu),
        consumer(net, consumer_node, consumer_cpu) {
    net.add_duplex_link(producer_node, consumer_node, net::LinkConfig{});
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId producer_node;
  net::NodeId consumer_node;
  os::Cpu producer_cpu;
  os::Cpu consumer_cpu;
  orb::OrbEndpoint producer;
  orb::OrbEndpoint consumer;
};

TEST_F(ChannelFixture, ReportsUpdateCollectorConditions) {
  orb::Poa& poa = consumer.create_poa("quo");
  StatusCollector collector(poa, "status");
  ValueSysCond& fps = collector.condition("fps");

  double measured = 30.0;
  StatusReporter reporter(producer, collector.ref(), milliseconds(100));
  reporter.probe("fps", [&] { return measured; });
  reporter.start();
  engine.run_until(TimePoint{milliseconds(350).ns()});
  EXPECT_DOUBLE_EQ(fps.value(), 30.0);

  measured = 10.0;
  engine.run_until(TimePoint{milliseconds(550).ns()});
  reporter.stop();
  EXPECT_DOUBLE_EQ(fps.value(), 10.0);
  EXPECT_GE(collector.reports_received(), 4u);
  EXPECT_TRUE(collector.last_report_at().has_value());
}

TEST_F(ChannelFixture, UnregisteredEntriesIgnored) {
  orb::Poa& poa = consumer.create_poa("quo");
  StatusCollector collector(poa, "status");
  StatusReporter reporter(producer, collector.ref(), milliseconds(100));
  reporter.probe("unknown-metric", [] { return 7.0; });
  reporter.start();
  engine.run_until(TimePoint{milliseconds(250).ns()});
  reporter.stop();
  EXPECT_GE(collector.reports_received(), 2u);  // delivered, just unused
}

TEST_F(ChannelFixture, UnchangedValueStillNotifies) {
  // update() semantics: a stalled counter keeps generating notifications,
  // which loss-detection logic depends on.
  orb::Poa& poa = consumer.create_poa("quo");
  StatusCollector collector(poa, "status");
  ValueSysCond& counter = collector.condition("counter");
  int notifications = 0;
  counter.subscribe([&] { ++notifications; });
  StatusReporter reporter(producer, collector.ref(), milliseconds(100));
  reporter.probe("counter", [] { return 5.0; });  // never changes
  reporter.start();
  engine.run_until(TimePoint{milliseconds(450).ns()});
  reporter.stop();
  EXPECT_GE(notifications, 4);
}

TEST_F(ChannelFixture, ContractObservesRemoteCondition) {
  orb::Poa& poa = consumer.create_poa("quo");
  StatusCollector collector(poa, "status");
  ValueSysCond& load = collector.condition("load", 0.0);
  Contract contract(engine, "load-watch");
  contract.add_region("calm", [&] { return load.value() < 0.5; })
      .add_region("stressed", nullptr)
      .observe(load);
  contract.eval();

  double remote_load = 0.1;
  StatusReporter reporter(producer, collector.ref(), milliseconds(100));
  reporter.probe("load", [&] { return remote_load; });
  reporter.start();
  engine.run_until(TimePoint{milliseconds(250).ns()});
  EXPECT_EQ(contract.current_region(), "calm");
  remote_load = 0.9;
  engine.run_until(TimePoint{milliseconds(450).ns()});
  reporter.stop();
  EXPECT_EQ(contract.current_region(), "stressed");
}

}  // namespace
}  // namespace aqm::quo

namespace aqm::av {
namespace {

RateAdaptationConfig quick_config(double reserved, double ip_rate) {
  RateAdaptationConfig cfg;
  cfg.grace_reports = 0;
  cfg.persistent_loss_reports = 2;
  cfg.initial_upgrade_hold_reports = 3;
  cfg.reserved_rate_bps = reserved;
  cfg.ip_stream_rate_bps = ip_rate;
  return cfg;
}

TEST(RateAdaptationQosket, DowngradesToIpWhenReservationCoversIt) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(700e3, 650e3));
  EXPECT_EQ(qosket.level(), media::FilterLevel::Full);
  qosket.report(0.3);
  EXPECT_EQ(qosket.level(), media::FilterLevel::IpOnly);
}

TEST(RateAdaptationQosket, DowngradesToIOnlyWithoutReservation) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(0.0, 650e3));
  qosket.report(0.1);
  EXPECT_EQ(qosket.level(), media::FilterLevel::IOnly);
}

TEST(RateAdaptationQosket, PersistentLossStepsDownAgain) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(700e3, 650e3));
  qosket.report(0.3);  // Full -> IpOnly
  qosket.report(0.3);
  qosket.report(0.3);  // persistent (2 reports in loss) -> IOnly
  EXPECT_EQ(qosket.level(), media::FilterLevel::IOnly);
}

TEST(RateAdaptationQosket, UpgradesAfterCleanHold) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(700e3, 650e3));
  qosket.report(0.3);  // -> IpOnly
  for (int i = 0; i < 3; ++i) qosket.report(1.0);
  EXPECT_EQ(qosket.level(), media::FilterLevel::Full);
}

TEST(RateAdaptationQosket, BackoffDoublesUpgradeHold) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(700e3, 650e3));
  qosket.report(0.3);                               // -> IpOnly
  for (int i = 0; i < 3; ++i) qosket.report(1.0);   // probe up -> Full
  qosket.report(0.3);                               // fails -> IpOnly
  for (int i = 0; i < 3; ++i) qosket.report(1.0);   // 3 clean: NOT enough now
  EXPECT_EQ(qosket.level(), media::FilterLevel::IpOnly);
  for (int i = 0; i < 3; ++i) qosket.report(1.0);   // 6 total clean: upgrade
  EXPECT_EQ(qosket.level(), media::FilterLevel::Full);
}

TEST(RateAdaptationQosket, GraceSuppressesTransientLoss) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationConfig cfg = quick_config(700e3, 650e3);
  cfg.grace_reports = 2;
  RateAdaptationQosket qosket(engine, filter, cfg);
  qosket.report(0.3);  // -> IpOnly, grace armed
  qosket.report(0.1);  // swallowed by grace
  qosket.report(0.1);  // swallowed by grace
  EXPECT_EQ(qosket.level(), media::FilterLevel::IpOnly);
  qosket.report(0.1);  // now it counts (fresh loss region entry: no change)
  EXPECT_EQ(qosket.level(), media::FilterLevel::IpOnly);
  qosket.report(0.1);  // persistent-loss counter reaches 2 -> IOnly
  EXPECT_EQ(qosket.level(), media::FilterLevel::IOnly);
}

TEST(RateAdaptationQosket, HistoryRecordsTransitions) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(700e3, 650e3));
  qosket.report(0.3);
  for (int i = 0; i < 3; ++i) qosket.report(1.0);
  ASSERT_EQ(qosket.history().size(), 2u);
  EXPECT_EQ(qosket.history()[0].second, "ip-10fps");
  EXPECT_EQ(qosket.history()[1].second, "full-30fps");
}

TEST(RateAdaptationQosket, ObserveWiresACondition) {
  sim::Engine engine;
  media::FrameFilter filter;
  RateAdaptationQosket qosket(engine, filter, quick_config(700e3, 650e3));
  quo::ValueSysCond ratio("ratio", 1.0);
  qosket.observe(ratio);
  ratio.update(0.2);
  EXPECT_EQ(qosket.level(), media::FilterLevel::IpOnly);
}

}  // namespace
}  // namespace aqm::av

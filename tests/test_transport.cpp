#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "net/network.hpp"
#include "orb/transport.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {
namespace {

MessageBuffer make_message(std::size_t size) {
  auto v = std::make_shared<std::vector<std::uint8_t>>(size);
  for (std::size_t i = 0; i < size; ++i) (*v)[i] = static_cast<std::uint8_t>(i * 7);
  return v;
}

struct TransportFixture : public ::testing::Test {
  TransportFixture() : net(engine) {
    a = net.add_node("a");
    b = net.add_node("b");
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 100e6;
    cfg.propagation = microseconds(50);
    net.add_duplex_link(a, b, cfg);
    ta = std::make_unique<GiopTransport>(net, a);
    tb = std::make_unique<GiopTransport>(net, b);
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId a{};
  net::NodeId b{};
  std::unique_ptr<GiopTransport> ta;
  std::unique_ptr<GiopTransport> tb;
};

TEST_F(TransportFixture, SmallMessageSinglePacket) {
  std::optional<std::size_t> got;
  tb->set_message_handler([&](net::NodeId src, MessageView msg) {
    EXPECT_EQ(src, a);
    got = msg.size();
  });
  ta->send_message(b, make_message(500), net::dscp::kBestEffort, 1);
  engine.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 500u);
  EXPECT_EQ(net.flow(1).sent, 1u);  // one fragment
  EXPECT_EQ(ta->messages_sent(), 1u);
  EXPECT_EQ(tb->messages_delivered(), 1u);
}

TEST_F(TransportFixture, LargeMessageFragmentsToMtu) {
  std::optional<std::size_t> got;
  tb->set_message_handler([&](net::NodeId, MessageView msg) { got = msg.size(); });
  // 10 KB with MTU 1500 and 40 B overhead: payload per packet 1460 -> 7 fragments.
  ta->send_message(b, make_message(10'000), net::dscp::kBestEffort, 2);
  engine.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(*got, 10'000u);
  EXPECT_EQ(net.flow(2).sent, 7u);
}

TEST_F(TransportFixture, ContentSurvivesTransit) {
  std::vector<std::uint8_t> received;
  bool got = false;
  tb->set_message_handler([&](net::NodeId, MessageView msg) {
    received.assign(msg.data(), msg.data() + msg.size());
    got = true;
  });
  const auto original = make_message(5000);
  ta->send_message(b, original, net::dscp::kBestEffort);
  engine.run();
  ASSERT_TRUE(got);
  EXPECT_EQ(received, *original);
}

TEST_F(TransportFixture, BidirectionalMessaging) {
  int a_got = 0;
  int b_got = 0;
  ta->set_message_handler([&](net::NodeId, MessageView) { ++a_got; });
  tb->set_message_handler([&](net::NodeId, MessageView) { ++b_got; });
  ta->send_message(b, make_message(100), net::dscp::kBestEffort);
  tb->send_message(a, make_message(100), net::dscp::kBestEffort);
  engine.run();
  EXPECT_EQ(a_got, 1);
  EXPECT_EQ(b_got, 1);
}

TEST_F(TransportFixture, DscpStampsEveryFragment) {
  // Verify via a tap at the receiving node before the transport reassembles:
  // easiest check is the DiffServ classification on the egress queue, so
  // here we just assert the transport's packets carry the DSCP by observing
  // flow counters on a marked flow (wire-level checks live in queue tests).
  tb->set_message_handler([](net::NodeId, MessageView) {});
  ta->send_message(b, make_message(4000), net::dscp::kEf, 3);
  engine.run();
  EXPECT_EQ(net.flow(3).delivered, 3u);  // 4000/1460 -> 3 fragments, all EF
}

TEST(TransportLoss, IncompleteMessageExpires) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig slow;
  slow.bandwidth_bps = 1e6;
  // Queue of 2: a multi-fragment burst loses its tail.
  net.add_link(a, b, slow, std::make_unique<net::DropTailQueue>(2));
  net.add_link(b, a, slow);
  TransportConfig cfg;
  cfg.reassembly_timeout = milliseconds(500);
  GiopTransport ta(net, a, cfg);
  GiopTransport tb(net, b, cfg);
  int delivered = 0;
  tb.set_message_handler([&](net::NodeId, MessageView) { ++delivered; });
  auto msg = std::make_shared<std::vector<std::uint8_t>>(10'000);  // 7 fragments
  ta.send_message(b, msg, net::dscp::kBestEffort, 4);
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(tb.messages_expired(), 1u);
  EXPECT_GT(net.flow(4).dropped, 0u);
}

TEST(TransportLoss, DuplicateFragmentsIgnored) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, net::LinkConfig{});
  GiopTransport tb(net, b);
  int delivered = 0;
  tb.set_message_handler([&](net::NodeId, MessageView) { ++delivered; });
  // Hand-craft duplicate fragments of a 2-fragment message.
  auto data = std::make_shared<const std::vector<std::uint8_t>>(3000);
  auto send_frag = [&](std::uint32_t idx) {
    net::Packet p;
    p.dst = b;
    p.size_bytes = 1500;
    p.payload = GiopFragment{55, idx, 2, idx * 1500, 1500, data};
    net.send(a, std::move(p));
  };
  send_frag(0);
  send_frag(0);  // duplicate
  send_frag(1);
  engine.run();
  EXPECT_EQ(delivered, 1);
}

TEST(TransportLoss, NonGiopPacketsIgnored) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net.add_duplex_link(a, b, net::LinkConfig{});
  GiopTransport tb(net, b);
  int delivered = 0;
  tb.set_message_handler([&](net::NodeId, MessageView) { ++delivered; });
  net::Packet p;
  p.dst = b;
  p.size_bytes = 100;  // cross-traffic packet, no payload
  net.send(a, std::move(p));
  engine.run();
  EXPECT_EQ(delivered, 0);
}

}  // namespace
}  // namespace aqm::orb

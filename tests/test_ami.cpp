// Asynchronous method handling: deferred (AMI-style) servant replies.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {
namespace {

struct AmiFixture : public ::testing::Test {
  AmiFixture()
      : net(engine),
        client_node(net.add_node("client")),
        server_node(net.add_node("server")),
        client_cpu(engine, "client-cpu"),
        server_cpu(engine, "server-cpu"),
        client(net, client_node, client_cpu),
        server(net, server_node, server_cpu) {
    net.add_duplex_link(client_node, server_node, net::LinkConfig{});
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId client_node;
  net::NodeId server_node;
  os::Cpu client_cpu;
  os::Cpu server_cpu;
  OrbEndpoint client;
  OrbEndpoint server;
};

TEST_F(AmiFixture, DeferredReplyArrivesWhenCompleted) {
  Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [&](ServerRequest& req) {
        auto reply = req.defer();
        // Finish after more simulated work (e.g. a pipeline of CPU jobs).
        server_cpu.submit_for(milliseconds(20), 100, [reply]() mutable {
          reply({'d', 'o', 'n', 'e'});
        });
      });
  const ObjectRef ref = poa.activate_object("worker", std::move(servant));

  std::optional<CompletionStatus> status;
  std::optional<TimePoint> when;
  std::vector<std::uint8_t> body;
  client.invoke(ref, "work", {}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t> b) {
                  status = s;
                  when = engine.now();
                  body = std::move(b);
                });
  engine.run();
  ASSERT_TRUE(status);
  EXPECT_EQ(*status, CompletionStatus::Ok);
  EXPECT_EQ(body, (std::vector<std::uint8_t>{'d', 'o', 'n', 'e'}));
  // The reply waited for the 20 ms pipeline.
  EXPECT_GT(when->ns(), milliseconds(20).ns());
}

TEST_F(AmiFixture, DoubleCompletionIsIgnored) {
  Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [&](ServerRequest& req) {
        auto reply = req.defer();
        server_cpu.submit_for(milliseconds(1), 100, [reply]() mutable {
          reply({1});
          reply({2});  // no-op
        });
      });
  const ObjectRef ref = poa.activate_object("worker", std::move(servant));

  int replies = 0;
  std::vector<std::uint8_t> body;
  client.invoke(ref, "work", {}, InvokeOptions{},
                [&](CompletionStatus, std::vector<std::uint8_t> b) {
                  ++replies;
                  body = std::move(b);
                });
  engine.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(body, (std::vector<std::uint8_t>{1}));
}

TEST_F(AmiFixture, NeverCompletedDeferredHitsClientTimeout) {
  Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [](ServerRequest& req) {
        (void)req.defer();  // dropped on the floor
      });
  const ObjectRef ref = poa.activate_object("worker", std::move(servant));

  std::optional<CompletionStatus> status;
  InvokeOptions opts;
  opts.timeout = milliseconds(200);
  client.invoke(ref, "work", {}, opts,
                [&](CompletionStatus s, std::vector<std::uint8_t>) { status = s; });
  engine.run();
  EXPECT_EQ(status, CompletionStatus::Timeout);
}

TEST_F(AmiFixture, DeferOnOnewayThrows) {
  Poa& poa = server.create_poa("app");
  bool threw = false;
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [&](ServerRequest& req) {
        try {
          (void)req.defer();
        } catch (const BadParam&) {
          threw = true;
        }
      });
  const ObjectRef ref = poa.activate_object("worker", std::move(servant));
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "work", {}, opts);
  engine.run();
  EXPECT_TRUE(threw);
}

TEST_F(AmiFixture, ExceptionAfterDeferAnswersOnce) {
  Poa& poa = server.create_poa("app");
  ServerRequest::Replier stolen;
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [&](ServerRequest& req) {
        stolen = req.defer();
        throw Transient("changed my mind");
      });
  const ObjectRef ref = poa.activate_object("worker", std::move(servant));

  int replies = 0;
  std::optional<CompletionStatus> status;
  client.invoke(ref, "work", {}, InvokeOptions{},
                [&](CompletionStatus s, std::vector<std::uint8_t>) {
                  ++replies;
                  status = s;
                });
  engine.run();
  // The exception reply went out; the stolen replier must now be inert.
  stolen({9, 9});
  engine.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(status, CompletionStatus::Transient);
}

TEST_F(AmiFixture, SynchronousServantsStillReplyNormally) {
  Poa& poa = server.create_poa("app");
  auto servant = std::make_shared<FunctionServant>(
      microseconds(50), [](ServerRequest& req) { req.reply_body = {7}; });
  const ObjectRef ref = poa.activate_object("worker", std::move(servant));
  std::vector<std::uint8_t> body;
  client.invoke(ref, "work", {}, InvokeOptions{},
                [&](CompletionStatus, std::vector<std::uint8_t> b) { body = std::move(b); });
  engine.run();
  EXPECT_EQ(body, (std::vector<std::uint8_t>{7}));
}

}  // namespace
}  // namespace aqm::orb

// Figure 2 of the paper: end-to-end priority propagation across
// heterogeneous hosts. The RTCorbaPriority service context carries the
// platform-independent priority; each host's priority-mapping manager
// translates it to that OS's native range (QNX / LynxOS / Solaris RT).
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "orb/rt/priority_mapping.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {
namespace {

/// Client (QNX) -> middle-tier (LynxOS) -> server (Solaris RT), like the
/// paper's Figure 2 topology.
struct Figure2Fixture : public ::testing::Test {
  Figure2Fixture()
      : net(engine),
        client_node(net.add_node("client-qnx")),
        middle_node(net.add_node("middle-lynxos")),
        server_node(net.add_node("server-solaris")),
        client_cpu(engine, "qnx-cpu"),
        middle_cpu(engine, "lynx-cpu"),
        server_cpu(engine, "solaris-cpu"),
        client(net, client_node, client_cpu),
        middle(net, middle_node, middle_cpu),
        server(net, server_node, server_cpu) {
    net::LinkConfig link;
    net.add_duplex_link(client_node, middle_node, link);
    net.add_duplex_link(middle_node, server_node, link);
    client.priority_mappings().install(rt::make_qnx_mapping());
    middle.priority_mappings().install(rt::make_lynxos_mapping());
    server.priority_mappings().install(rt::make_solaris_rt_mapping());
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId client_node;
  net::NodeId middle_node;
  net::NodeId server_node;
  os::Cpu client_cpu;
  os::Cpu middle_cpu;
  os::Cpu server_cpu;
  OrbEndpoint client;
  OrbEndpoint middle;
  OrbEndpoint server;
};

TEST_F(Figure2Fixture, OsMappingsCoverTheirNativeRanges) {
  // CORBA extremes land on each OS's band edges.
  EXPECT_EQ(client.priority_mappings().to_native(0), 1);        // QNX 1..31
  EXPECT_EQ(client.priority_mappings().to_native(32'767), 31);
  EXPECT_EQ(middle.priority_mappings().to_native(0), 0);        // LynxOS 0..255
  EXPECT_EQ(middle.priority_mappings().to_native(32'767), 255);
  EXPECT_EQ(server.priority_mappings().to_native(0), 100);      // Solaris RT 100..159
  EXPECT_EQ(server.priority_mappings().to_native(32'767), 159);
}

TEST_F(Figure2Fixture, PriorityPropagatesUnchangedAcrossHops) {
  constexpr CorbaPriority kPriority = 15'000;

  // Backend servant records the propagated CORBA priority.
  std::optional<CorbaPriority> backend_saw;
  Poa& backend_poa = server.create_poa("backend");
  auto backend = std::make_shared<FunctionServant>(
      microseconds(100), [&](ServerRequest& req) { backend_saw = req.priority; });
  const ObjectRef backend_ref = backend_poa.activate_object("sink", std::move(backend));

  // Middle-tier relay: forwards to the backend at the *request's* priority
  // (the RTCurrent pattern: the propagated priority drives nested calls).
  std::optional<CorbaPriority> middle_saw;
  Poa& relay_poa = middle.create_poa("relay");
  auto relay = std::make_shared<FunctionServant>(
      microseconds(100), [&](ServerRequest& req) {
        middle_saw = req.priority;
        InvokeOptions opts;
        opts.oneway = true;
        opts.priority = req.priority;
        middle.invoke(backend_ref, "forward", req.body, opts);
      });
  const ObjectRef relay_ref = relay_poa.activate_object("hop", std::move(relay));

  client.set_client_priority(kPriority);
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(relay_ref, "send", {1, 2, 3}, opts);
  engine.run();

  // The platform-independent priority is identical end to end...
  ASSERT_TRUE(middle_saw && backend_saw);
  EXPECT_EQ(*middle_saw, kPriority);
  EXPECT_EQ(*backend_saw, kPriority);

  // ...while its native translation differs per OS (the point of Fig. 2).
  const os::Priority qnx = client.priority_mappings().to_native(kPriority);
  const os::Priority lynx = middle.priority_mappings().to_native(kPriority);
  const os::Priority solaris = server.priority_mappings().to_native(kPriority);
  EXPECT_NE(qnx, lynx);
  EXPECT_NE(lynx, solaris);
  EXPECT_GE(qnx, 1);
  EXPECT_LE(qnx, 31);
  EXPECT_GE(solaris, 100);
  EXPECT_LE(solaris, 159);
}

TEST_F(Figure2Fixture, NativeExecutionUsesLocalMapping) {
  // Verify the backend job actually runs at the Solaris-mapped native
  // priority by peeking at the CPU while it executes.
  constexpr CorbaPriority kPriority = 20'000;
  const os::Priority expected_native = server.priority_mappings().to_native(kPriority);

  std::optional<os::Priority> observed;
  Poa& poa = server.create_poa("backend");
  auto servant = std::make_shared<FunctionServant>(
      milliseconds(5), [&](ServerRequest&) {});
  const ObjectRef ref = poa.activate_object("sink", std::move(servant));

  client.set_client_priority(kPriority);
  InvokeOptions opts;
  opts.oneway = true;
  client.invoke(ref, "op", {}, opts);
  // Sample the server CPU while the request should be executing.
  engine.after(milliseconds(3), [&] { observed = server_cpu.running_priority(); });
  engine.run();
  ASSERT_TRUE(observed.has_value());
  EXPECT_EQ(*observed, expected_native);
}

TEST(RtMappings, RoundTripWithinEachOsBand) {
  const auto mappings = {rt::make_qnx_mapping(), rt::make_lynxos_mapping(),
                         rt::make_solaris_rt_mapping()};
  for (const auto& m : mappings) {
    for (CorbaPriority p = 0; p <= kMaxCorbaPriority; p += 1111) {
      const os::Priority native = m->to_native(p);
      const CorbaPriority back = m->to_corba(native);
      // Coarse bands (QNX has 31 levels) quantize heavily; the round trip
      // must stay within one native step.
      const double step = 32767.0 / 30.0;
      EXPECT_NEAR(back, p, step + 1);
    }
  }
}

}  // namespace
}  // namespace aqm::orb

// GIOP transport batching (DESIGN.md §11).
//
// 1. Coalescing mechanics: framing, byte/count threshold flushes, the
//    deadline flush timer, per-invocation flush overrides, the oversized
//    bypass, and per-flow policy overrides.
// 2. Differential suite: randomized send/invoke churn must be observably
//    identical with batching on and off (per-key payload streams at the
//    transport level; servant bodies and reply bodies at the ORB level).
//    Loss and ECN change wire-level packetization, so those paths are
//    asserted as batched-mode behavior rather than diffed across modes.
// 3. Zero-alloc steady state: the receive path (fragment reassembly, batch
//    unpack, zero-copy view handoff) performs no heap allocation once
//    warmed up, verified by counting global operator new. Self-delivery
//    (dst == src bypasses links, whose delivery events intentionally
//    capture whole packets) keeps the assertion scoped to the transport.
// 4. Key128Map churn vs a reference std::map.
#include "orb/transport.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "core/qos_policy.hpp"
#include "core/qos_session.hpp"
#include "net/network.hpp"
#include "net/red_queue.hpp"
#include "orb/flat_index.hpp"
#include "orb/orb.hpp"
#include "orb/poa.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

// --- counting allocator ------------------------------------------------------

namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqm::orb {
namespace {

MessageBuffer make_message(std::size_t size, std::uint8_t salt = 0) {
  auto v = std::make_shared<std::vector<std::uint8_t>>(size);
  for (std::size_t i = 0; i < size; ++i) {
    (*v)[i] = static_cast<std::uint8_t>(i * 7 + salt);
  }
  return v;
}

TransportConfig batched_config() {
  TransportConfig cfg;
  cfg.batching.enabled = true;
  return cfg;
}

/// Two hosts over a 100 Mb/s, 50 µs link — the test_transport topology.
struct World {
  World(TransportConfig cfg_a, TransportConfig cfg_b, double bandwidth_bps = 100e6)
      : net(engine) {
    a = net.add_node("a");
    b = net.add_node("b");
    net::LinkConfig link;
    link.bandwidth_bps = bandwidth_bps;
    link.propagation = microseconds(50);
    net.add_duplex_link(a, b, link);
    ta = std::make_unique<GiopTransport>(net, a, cfg_a);
    tb = std::make_unique<GiopTransport>(net, b, cfg_b);
  }

  sim::Engine engine;
  net::Network net;
  net::NodeId a{};
  net::NodeId b{};
  std::unique_ptr<GiopTransport> ta;
  std::unique_ptr<GiopTransport> tb;
};

// --- coalescing mechanics ----------------------------------------------------

TEST(Coalescing, SmallMessagesShareOneWirePacket) {
  World w(batched_config(), batched_config());
  std::vector<std::vector<std::uint8_t>> got;
  w.tb->set_message_handler([&](net::NodeId src, MessageView m) {
    EXPECT_EQ(src, w.a);
    got.emplace_back(m.data(), m.data() + m.size());
  });
  std::vector<MessageBuffer> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(make_message(100, static_cast<std::uint8_t>(i)));
    w.ta->send_message(w.b, sent.back(), net::dscp::kBestEffort, 1);
  }
  w.engine.run();  // the deadline timer flushes the batch
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], *sent[i]) << "entry " << i;
  // 5 x (4 B length + 100 B) + 8 B header = 528 B: one wire packet.
  EXPECT_EQ(w.net.flow(1).sent, 1u);
  EXPECT_EQ(w.ta->messages_sent(), 5u);
  EXPECT_EQ(w.ta->batches_sent(), 1u);
  EXPECT_EQ(w.ta->batched_messages(), 5u);
  EXPECT_EQ(w.tb->messages_delivered(), 5u);
  EXPECT_EQ(w.tb->batches_delivered(), 1u);
}

TEST(Coalescing, CountThresholdFlushesBeforeDeadline) {
  TransportConfig cfg = batched_config();
  cfg.batching.max_messages = 3;
  cfg.batching.flush_delay = seconds(10);  // would time out the test if used
  World w(cfg, cfg);
  std::optional<TimePoint> delivered_at;
  int got = 0;
  w.tb->set_message_handler([&](net::NodeId, MessageView) {
    ++got;
    delivered_at = w.engine.now();
  });
  for (int i = 0; i < 3; ++i) {
    w.ta->send_message(w.b, make_message(200), net::dscp::kBestEffort, 1);
  }
  w.engine.run();
  EXPECT_EQ(got, 3);
  ASSERT_TRUE(delivered_at);
  EXPECT_LT(delivered_at->ns(), milliseconds(1).ns());  // wire time, not 10 s
  EXPECT_EQ(w.ta->batches_sent(), 1u);
}

TEST(Coalescing, ByteThresholdFlushesBeforeDeadline) {
  TransportConfig cfg = batched_config();
  cfg.batching.max_bytes = 2048;
  cfg.batching.flush_delay = seconds(10);
  World w(cfg, cfg);
  std::optional<TimePoint> delivered_at;
  int got = 0;
  w.tb->set_message_handler([&](net::NodeId, MessageView) {
    ++got;
    delivered_at = w.engine.now();
  });
  // 3 x 804 B entries + header > 2048: the third send trips the threshold.
  for (int i = 0; i < 3; ++i) {
    w.ta->send_message(w.b, make_message(800), net::dscp::kBestEffort, 1);
  }
  w.engine.run();
  EXPECT_EQ(got, 3);
  ASSERT_TRUE(delivered_at);
  EXPECT_LT(delivered_at->ns(), milliseconds(1).ns());
}

TEST(Coalescing, OversizedBypassPreservesPerKeyOrder) {
  TransportConfig cfg = batched_config();
  cfg.batching.max_bytes = 1024;
  cfg.batching.flush_delay = seconds(10);
  World w(cfg, cfg);
  std::vector<std::size_t> sizes;
  w.tb->set_message_handler(
      [&](net::NodeId, MessageView m) { sizes.push_back(m.size()); });
  w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 1);
  // >= max_bytes: must flush the staged 100 B message first, then bypass.
  w.ta->send_message(w.b, make_message(2000), net::dscp::kBestEffort, 1);
  w.engine.run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 100u);
  EXPECT_EQ(sizes[1], 2000u);
  EXPECT_EQ(w.ta->batches_sent(), 1u);
  EXPECT_EQ(w.ta->batched_messages(), 1u);  // only the small one was staged
}

TEST(Coalescing, DeadlineFlushShipsAtFlushDelay) {
  World w(batched_config(), batched_config());  // flush_delay = 500 µs
  int before_deadline = -1;
  int got = 0;
  std::optional<TimePoint> delivered_at;
  w.tb->set_message_handler([&](net::NodeId, MessageView) {
    ++got;
    delivered_at = w.engine.now();
  });
  w.ta->send_message(w.b, make_message(200), net::dscp::kBestEffort, 1);
  w.engine.after(microseconds(499), [&] { before_deadline = got; });
  w.engine.run();
  EXPECT_EQ(before_deadline, 0);  // nothing ships before the deadline
  ASSERT_TRUE(delivered_at);
  // 212 B batch + 40 B overhead at 100 Mb/s + 50 µs propagation ≈ 570 µs.
  EXPECT_GE(delivered_at->ns(), microseconds(500).ns());
  EXPECT_LT(delivered_at->ns(), microseconds(600).ns());
}

TEST(Coalescing, FlushOverridePullsDeadlineForwardOnly) {
  World w(batched_config(), batched_config());  // flush_delay = 500 µs
  int got = 0;
  std::optional<TimePoint> delivered_at;
  w.tb->set_message_handler([&](net::NodeId, MessageView) {
    ++got;
    delivered_at = w.engine.now();
  });
  // Second send carries a tighter deadline: the whole batch moves up.
  w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 1);
  w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 1, 0,
                     microseconds(100));
  w.engine.run();
  EXPECT_EQ(got, 2);
  ASSERT_TRUE(delivered_at);
  EXPECT_LT(delivered_at->ns(), microseconds(200).ns());
  EXPECT_EQ(w.ta->batches_sent(), 1u);

  // A looser override never pushes an armed deadline back.
  got = 0;
  delivered_at.reset();
  const TimePoint t0 = w.engine.now();
  w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 1, 0,
                     microseconds(100));
  w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 1, 0,
                     microseconds(400));
  w.engine.run();
  EXPECT_EQ(got, 2);
  ASSERT_TRUE(delivered_at);
  EXPECT_LT((*delivered_at - t0).ns(), microseconds(200).ns());
}

TEST(Coalescing, PerFlowOverrideBeatsGlobalDefault) {
  // Transport default off; flow 7 opts in via set_flow_batching.
  World w(TransportConfig{}, TransportConfig{});
  BatchPolicy pol;
  pol.enabled = true;
  pol.max_messages = 100;
  pol.flush_delay = seconds(10);
  w.ta->set_flow_batching(7, pol);
  ASSERT_NE(w.ta->flow_batching(7), nullptr);
  int got = 0;
  w.tb->set_message_handler([&](net::NodeId, MessageView) { ++got; });
  for (int i = 0; i < 3; ++i) {
    w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 7);
  }
  w.ta->send_message(w.b, make_message(100), net::dscp::kBestEffort, 8);
  w.engine.run_until(TimePoint{milliseconds(2).ns()});
  EXPECT_EQ(got, 1);  // flow 8 (default: unbatched) arrived; flow 7 staged
  // Dropping the override flushes what the departing policy staged.
  w.ta->clear_flow_batching(7);
  EXPECT_EQ(w.ta->flow_batching(7), nullptr);
  w.engine.run();
  EXPECT_EQ(got, 4);
  EXPECT_EQ(w.ta->batches_sent(), 1u);
}

// --- differential suite ------------------------------------------------------

struct ChurnOp {
  Duration at{};
  bool a_to_b = true;
  net::FlowId flow = 1;
  net::Dscp dscp = net::dscp::kBestEffort;
  std::uint32_t size = 0;
  std::uint8_t salt = 0;
};

/// Deterministic 64-bit LCG (self-contained so the op schedule never
/// depends on library distribution internals).
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  std::uint64_t next(std::uint64_t n) { return next() % n; }
};

std::vector<ChurnOp> make_churn(std::uint64_t seed, int n) {
  Lcg rng{seed};
  std::vector<ChurnOp> ops;
  Duration t = Duration::zero();
  for (int i = 0; i < n; ++i) {
    t = t + microseconds(static_cast<std::int64_t>(rng.next(120)));
    ChurnOp op;
    op.at = t;
    op.a_to_b = rng.next(4) != 0;  // mostly a -> b, some reverse traffic
    op.flow = 1 + rng.next(3);
    op.dscp = rng.next(2) == 0 ? net::dscp::kBestEffort : net::dscp::kEf;
    op.size = static_cast<std::uint32_t>(9 + rng.next(2991));  // 9..2999 B
    op.salt = static_cast<std::uint8_t>(rng.next(256));
    ops.push_back(op);
  }
  return ops;
}

/// First 9 payload bytes identify the stream: u32 flow LE, u8 dscp, then
/// u32 of salt (batching preserves order only per (dst, dscp, flow) key, so
/// streams are compared per key, not globally).
MessageBuffer churn_payload(const ChurnOp& op) {
  auto v = std::make_shared<std::vector<std::uint8_t>>(op.size);
  auto& b = *v;
  b[0] = static_cast<std::uint8_t>(op.flow);
  b[1] = static_cast<std::uint8_t>(op.flow >> 8);
  b[2] = static_cast<std::uint8_t>(op.flow >> 16);
  b[3] = static_cast<std::uint8_t>(op.flow >> 24);
  b[4] = op.dscp;
  for (std::size_t i = 5; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(i * 13 + op.salt);
  }
  return v;
}

struct ChurnResult {
  // (receiving node, flow, dscp) -> concatenated delivered payload bytes.
  std::map<std::tuple<net::NodeId, std::uint32_t, std::uint8_t>,
           std::vector<std::uint8_t>>
      streams;
  std::uint64_t delivered = 0;
  std::uint64_t sent = 0;
  std::uint64_t batches = 0;
};

ChurnResult run_transport_churn(const std::vector<ChurnOp>& ops, bool batching) {
  TransportConfig cfg;
  cfg.batching.enabled = batching;
  cfg.batching.max_bytes = 2048;  // exercises byte threshold + oversized bypass
  cfg.batching.max_messages = 16;
  World w(cfg, cfg);
  ChurnResult r;
  auto handler = [&r](net::NodeId dst) {
    return [&r, dst](net::NodeId, MessageView m) {
      ASSERT_GE(m.size(), 9u);
      const std::uint32_t flow = m.data()[0] |
                                 (static_cast<std::uint32_t>(m.data()[1]) << 8) |
                                 (static_cast<std::uint32_t>(m.data()[2]) << 16) |
                                 (static_cast<std::uint32_t>(m.data()[3]) << 24);
      auto& s = r.streams[{dst, flow, m.data()[4]}];
      s.insert(s.end(), m.data(), m.data() + m.size());
      ++r.delivered;
    };
  };
  w.ta->set_message_handler(handler(w.a));
  w.tb->set_message_handler(handler(w.b));
  for (const ChurnOp& op : ops) {
    w.engine.after(op.at, [&w, &op] {
      GiopTransport& t = op.a_to_b ? *w.ta : *w.tb;
      t.send_message(op.a_to_b ? w.b : w.a, churn_payload(op), op.dscp, op.flow);
    });
  }
  w.engine.run();  // every staged batch has a deadline timer: run() drains all
  r.sent = w.ta->messages_sent() + w.tb->messages_sent();
  r.batches = w.ta->batches_sent() + w.tb->batches_sent();
  EXPECT_EQ(w.ta->messages_expired() + w.tb->messages_expired(), 0u);
  return r;
}

TEST(BatchDifferential, RandomTransportChurnMatchesUnbatched) {
  for (std::uint64_t seed : {11ull, 29ull, 47ull}) {
    const auto ops = make_churn(seed, 400);
    const ChurnResult plain = run_transport_churn(ops, false);
    const ChurnResult batched = run_transport_churn(ops, true);
    EXPECT_EQ(plain.sent, batched.sent) << "seed " << seed;
    EXPECT_EQ(plain.delivered, batched.delivered) << "seed " << seed;
    EXPECT_EQ(plain.batches, 0u);
    EXPECT_GT(batched.batches, 10u) << "churn never exercised coalescing";
    ASSERT_EQ(plain.streams.size(), batched.streams.size()) << "seed " << seed;
    for (const auto& [key, bytes] : plain.streams) {
      const auto it = batched.streams.find(key);
      ASSERT_NE(it, batched.streams.end()) << "seed " << seed;
      EXPECT_EQ(bytes, it->second)
          << "seed " << seed << " stream diverged (flow " << std::get<1>(key)
          << ", dscp " << int{std::get<2>(key)} << ")";
    }
  }
}

struct OrbChurnResult {
  std::vector<std::vector<std::uint8_t>> servant_bodies;
  std::map<int, std::vector<std::uint8_t>> replies;
  std::uint64_t replies_ok = 0;
  std::uint64_t timeouts = 0;
};

OrbChurnResult run_orb_churn(std::uint64_t seed, bool batching) {
  sim::Engine engine;
  net::Network net(engine);
  const auto client_node = net.add_node("client");
  const auto server_node = net.add_node("server");
  net::LinkConfig link;
  link.bandwidth_bps = 100e6;
  link.propagation = microseconds(50);
  net.add_duplex_link(client_node, server_node, link);
  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");
  OrbConfig cfg;
  cfg.transport.batching.enabled = batching;
  OrbEndpoint client(net, client_node, client_cpu, cfg);
  OrbEndpoint server(net, server_node, server_cpu, cfg);

  OrbChurnResult r;
  Poa& poa = server.create_poa("app");
  const ObjectRef ref = poa.activate_object(
      "echo", std::make_shared<FunctionServant>(microseconds(10),
                                                [&r](ServerRequest& req) {
                                                  r.servant_bodies.push_back(req.body);
                                                  req.reply_body = req.body;
                                                }));

  Lcg rng{seed};
  Duration t = Duration::zero();
  struct Op {
    Duration at{};
    bool oneway = false;
    std::vector<std::uint8_t> body;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 120; ++i) {
    t = t + microseconds(static_cast<std::int64_t>(rng.next(200)));
    Op op;
    op.at = t;
    op.oneway = rng.next(5) < 3;
    op.body.resize(8 + rng.next(600));
    op.body[0] = static_cast<std::uint8_t>(i);
    op.body[1] = static_cast<std::uint8_t>(i >> 8);
    for (std::size_t j = 2; j < op.body.size(); ++j) {
      op.body[j] = static_cast<std::uint8_t>(rng.next(256));
    }
    ops.push_back(std::move(op));
  }
  for (int i = 0; i < static_cast<int>(ops.size()); ++i) {
    engine.after(ops[i].at, [&, i] {
      InvokeOptions opts;
      opts.oneway = ops[i].oneway;
      if (ops[i].oneway) {
        client.invoke(ref, "op", ops[i].body, opts);
      } else {
        client.invoke(ref, "op", ops[i].body, opts,
                      [&r, i](CompletionStatus s, std::vector<std::uint8_t> body) {
                        if (s == CompletionStatus::Ok) r.replies[i] = std::move(body);
                      });
      }
    });
  }
  engine.run();
  r.replies_ok = client.stats().replies_ok;
  r.timeouts = client.stats().timeouts;
  return r;
}

TEST(BatchDifferential, OrbOnewayTwowayChurnMatchesUnbatched) {
  const OrbChurnResult plain = run_orb_churn(1234, false);
  const OrbChurnResult batched = run_orb_churn(1234, true);
  EXPECT_EQ(plain.timeouts, 0u);
  EXPECT_EQ(batched.timeouts, 0u);
  EXPECT_EQ(plain.replies_ok, batched.replies_ok);
  // Same key (dst, dscp, flow) for every request: dispatch order and the
  // echoed reply bodies must be identical in both modes.
  EXPECT_EQ(plain.servant_bodies, batched.servant_bodies);
  EXPECT_EQ(plain.replies, batched.replies);
  EXPECT_GT(plain.replies.size(), 20u);  // sanity: churn had real twoways
}

// --- loss and ECN on the batched path ---------------------------------------

TEST(BatchLoss, LostBatchExpiresOnceHoweverManyMessagesItCarried) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig slow;
  slow.bandwidth_bps = 1e6;
  // Queue of 2: the flushed batch's fragment burst loses its tail.
  net.add_link(a, b, slow, std::make_unique<net::DropTailQueue>(2));
  net.add_link(b, a, slow);
  TransportConfig cfg = batched_config();
  cfg.batching.max_messages = 100;
  cfg.batching.flush_delay = milliseconds(1);
  cfg.reassembly_timeout = milliseconds(500);
  GiopTransport ta(net, a, cfg);
  GiopTransport tb(net, b, cfg);
  int delivered = 0;
  tb.set_message_handler([&](net::NodeId, MessageView) { ++delivered; });
  for (int i = 0; i < 12; ++i) {
    ta.send_message(b, make_message(800), net::dscp::kBestEffort, 4);
  }
  engine.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ta.batches_sent(), 1u);
  EXPECT_EQ(ta.batched_messages(), 12u);
  // One wire message lost = one expiry, not twelve.
  EXPECT_EQ(tb.messages_expired(), 1u);
  EXPECT_GT(net.flow(4).dropped, 0u);
}

TEST(BatchEcn, CeMarksSurfaceOnBatchedFlow) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId a = net.add_node("a");
  const net::NodeId b = net.add_node("b");
  net::LinkConfig slow;
  slow.bandwidth_bps = 1e6;
  net::RedConfig red;
  red.capacity_packets = 1000;
  red.min_threshold = 5.0;
  red.max_threshold = 500.0;  // marks only: queue depth stays below max
  red.max_probability = 0.5;
  red.weight = 1.0;  // avg == instantaneous queue, marks build fast
  red.ecn = true;
  red.seed = 7;
  net.add_link(a, b, slow, std::make_unique<net::RedQueue>(red));
  net.add_link(b, a, slow);
  TransportConfig cfg = batched_config();
  cfg.ecn_capable = true;
  cfg.batching.max_messages = 2;
  cfg.batching.flush_delay = microseconds(100);
  GiopTransport ta(net, a, cfg);
  GiopTransport tb(net, b, cfg);
  int delivered = 0;
  tb.set_message_handler([&](net::NodeId, MessageView) { ++delivered; });
  for (int i = 0; i < 300; ++i) {
    ta.send_message(b, make_message(600), net::dscp::kBestEffort, 9);
  }
  engine.run();
  // Below max_threshold RED marks ECN-capable packets instead of dropping:
  // every message still arrives, and the congestion feedback is visible on
  // the receiving transport's per-flow CE counter.
  EXPECT_EQ(delivered, 300);
  EXPECT_EQ(ta.batches_sent(), 150u);
  EXPECT_GT(tb.ce_marks(9), 0u);
  EXPECT_EQ(tb.ce_marks(10), 0u);
}

// --- QoSSession / policy plumbing --------------------------------------------

TEST(QosSessionBatching, PolicyAppliesFlushesOnRevoke) {
  sim::Engine engine;
  net::Network net(engine);
  const auto client_node = net.add_node("client");
  const auto server_node = net.add_node("server");
  net.add_duplex_link(client_node, server_node, net::LinkConfig{});
  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");
  OrbEndpoint client(net, client_node, client_cpu);
  OrbEndpoint server(net, server_node, server_cpu);
  Poa& poa = server.create_poa("app");
  int served = 0;
  const ObjectRef ref = poa.activate_object(
      "sink", std::make_shared<FunctionServant>(
                  microseconds(10), [&served](ServerRequest&) { ++served; }));
  ObjectStub stub(client, ref);

  core::QoSSession session(client, stub);
  core::EndToEndQosPolicy policy;
  policy.flow = 77;
  core::OnewayBatchingPolicy batching;
  batching.max_messages = 64;
  batching.flush_deadline = milliseconds(5);
  policy.oneway_batching = batching;
  std::optional<bool> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = s.ok(); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(*outcome);
  // The policy landed on the client transport as a flow-scoped override
  // (the transport's own default stays off).
  const BatchPolicy* bp = client.transport().flow_batching(77);
  ASSERT_NE(bp, nullptr);
  EXPECT_TRUE(bp->enabled);
  EXPECT_EQ(bp->flush_delay, milliseconds(5));

  for (int i = 0; i < 5; ++i) stub.oneway("op", std::vector<std::uint8_t>(600));
  // Past marshaling but short of the 5 ms flush deadline: still staged.
  engine.run_until(TimePoint{milliseconds(1).ns()});
  EXPECT_EQ(served, 0);
  EXPECT_EQ(client.transport().batched_messages(), 5u);
  EXPECT_EQ(client.transport().batches_sent(), 0u);

  // Revoke flushes the staged batch before dropping the override.
  session.revoke();
  EXPECT_EQ(client.transport().batches_sent(), 1u);
  EXPECT_EQ(client.transport().flow_batching(77), nullptr);
  engine.run();
  EXPECT_EQ(served, 5);
}

TEST(QosSessionBatching, BatchingWithoutFlowIdFails) {
  sim::Engine engine;
  net::Network net(engine);
  const auto client_node = net.add_node("client");
  const auto server_node = net.add_node("server");
  net.add_duplex_link(client_node, server_node, net::LinkConfig{});
  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");
  OrbEndpoint client(net, client_node, client_cpu);
  OrbEndpoint server(net, server_node, server_cpu);
  Poa& poa = server.create_poa("app");
  const ObjectRef ref = poa.activate_object(
      "sink",
      std::make_shared<FunctionServant>(microseconds(10), [](ServerRequest&) {}));
  ObjectStub stub(client, ref);

  core::QoSSession session(client, stub);
  core::EndToEndQosPolicy policy;
  policy.oneway_batching = core::OnewayBatchingPolicy{};
  std::optional<Status<std::string>> outcome;
  session.apply(policy, [&](Status<std::string> s) { outcome = std::move(s); });
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("flow id"), std::string::npos);
}

// --- zero-alloc steady-state receive -----------------------------------------

TEST(BatchZeroAlloc, SteadyStateSendReceiveIsAllocationFree) {
  sim::Engine engine;
  net::Network net(engine);
  const net::NodeId n = net.add_node("host");
  TransportConfig cfg = batched_config();
  cfg.batching.max_messages = 8;  // count threshold: no flush_all in the loop
  GiopTransport t(net, n, cfg);
  std::uint64_t bytes_seen = 0;
  std::uint64_t msgs_seen = 0;
  t.set_message_handler([&](net::NodeId, MessageView m) {
    bytes_seen += m.size();
    ++msgs_seen;
  });
  // Pre-built payloads: the steady-state claim covers the transport, not
  // the caller's message construction.
  std::vector<MessageBuffer> msgs;
  for (int i = 0; i < 8; ++i) msgs.push_back(make_message(900, static_cast<std::uint8_t>(i)));

  // dst == src delivers synchronously through Network::send with no link
  // events, so one iteration is: stage 8 entries, threshold-flush one
  // 7240 B batch, fragment to 5 packets, reassemble, unpack 8 views.
  auto iteration = [&] {
    for (const MessageBuffer& m : msgs) {
      t.send_message(n, m, net::dscp::kBestEffort, 3);
    }
    engine.run();  // drains the cancelled flush/expiry timer tombstones
  };
  for (int i = 0; i < 100; ++i) iteration();  // warm pools, tables, calendar
  const std::uint64_t msgs_before = msgs_seen;
  const std::uint64_t allocs_before = g_heap_allocs;
  for (int i = 0; i < 50; ++i) iteration();
  const std::uint64_t allocs = g_heap_allocs - allocs_before;
  const std::uint64_t delivered = msgs_seen - msgs_before;
  EXPECT_EQ(allocs, 0u) << "steady-state batched send/receive allocated";
  EXPECT_EQ(delivered, 400u);
  EXPECT_EQ(bytes_seen, 900u * msgs_seen);
  EXPECT_EQ(t.messages_expired(), 0u);
}

// --- Key128Map ---------------------------------------------------------------

TEST(FlatIndex, RandomChurnMatchesReferenceMap) {
  Key128Map index;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint32_t> ref;
  Lcg rng{99};
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t hi = rng.next(40);
    const std::uint64_t lo = rng.next(40);
    const auto key = std::make_pair(hi, lo);
    switch (rng.next(3)) {
      case 0: {  // insert (if absent)
        if (ref.count(key) == 0) {
          const auto slot = static_cast<std::uint32_t>(rng.next(1 << 20));
          index.insert(hi, lo, slot);
          ref[key] = slot;
        }
        break;
      }
      case 1: {  // erase
        index.erase(hi, lo);
        ref.erase(key);
        break;
      }
      default: {  // find
        const std::uint32_t got = index.find(hi, lo);
        const auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, Key128Map::kNoSlot) << "op " << i;
        } else {
          EXPECT_EQ(got, it->second) << "op " << i;
        }
        break;
      }
    }
    EXPECT_EQ(index.size(), ref.size());
  }
  // Full sweep at the end: every surviving key resolves, nothing extra.
  for (const auto& [key, slot] : ref) {
    EXPECT_EQ(index.find(key.first, key.second), slot);
  }
}

}  // namespace
}  // namespace aqm::orb

#include <gtest/gtest.h>

#include "core/scheduling_service.hpp"

namespace aqm::core {
namespace {

ActivitySpec task(const std::string& name, Duration period, Duration cost,
                  int importance = 0) {
  return ActivitySpec{name, period, cost, importance};
}

TEST(SchedulingService, RateMonotonicOrdering) {
  SchedulingService svc;
  svc.declare(task("video", milliseconds(33), milliseconds(5)));
  svc.declare(task("telemetry", milliseconds(100), milliseconds(10)));
  svc.declare(task("logging", seconds(1), milliseconds(50)));
  ASSERT_TRUE(svc.assign().ok());
  const auto video = svc.priority_of("video");
  const auto telemetry = svc.priority_of("telemetry");
  const auto logging = svc.priority_of("logging");
  ASSERT_TRUE(video && telemetry && logging);
  EXPECT_GT(*video, *telemetry);     // shorter period -> higher priority
  EXPECT_GT(*telemetry, *logging);
}

TEST(SchedulingService, ImportanceBreaksPeriodTies) {
  SchedulingService svc;
  svc.declare(task("a", milliseconds(50), milliseconds(5), 1));
  svc.declare(task("b", milliseconds(50), milliseconds(5), 9));
  ASSERT_TRUE(svc.assign().ok());
  EXPECT_GT(*svc.priority_of("b"), *svc.priority_of("a"));
}

TEST(SchedulingService, PrioritiesSpanTheConfiguredBand) {
  SchedulingServiceConfig cfg;
  cfg.band_min = 10'000;
  cfg.band_max = 20'000;
  SchedulingService svc(cfg);
  svc.declare(task("fast", milliseconds(10), milliseconds(1)));
  svc.declare(task("mid", milliseconds(100), milliseconds(1)));
  svc.declare(task("slow", seconds(1), milliseconds(1)));
  ASSERT_TRUE(svc.assign().ok());
  EXPECT_EQ(*svc.priority_of("fast"), 20'000);
  EXPECT_EQ(*svc.priority_of("slow"), 10'000);
  EXPECT_GT(*svc.priority_of("mid"), 10'000);
  EXPECT_LT(*svc.priority_of("mid"), 20'000);
}

TEST(SchedulingService, SingleTaskGetsTopOfBand) {
  SchedulingService svc;
  svc.declare(task("only", milliseconds(10), milliseconds(2)));
  ASSERT_TRUE(svc.assign().ok());
  EXPECT_EQ(*svc.priority_of("only"), 30'000);
}

TEST(SchedulingService, LiuLaylandBoundValues) {
  EXPECT_DOUBLE_EQ(SchedulingService::liu_layland_bound(1), 1.0);
  EXPECT_NEAR(SchedulingService::liu_layland_bound(2), 0.8284, 1e-3);
  EXPECT_NEAR(SchedulingService::liu_layland_bound(3), 0.7798, 1e-3);
  // Limit: ln 2 ~ 0.693.
  EXPECT_NEAR(SchedulingService::liu_layland_bound(1000), 0.6934, 1e-3);
}

TEST(SchedulingService, UtilizationSumsDeclaredTasks) {
  SchedulingService svc;
  svc.declare(task("a", milliseconds(100), milliseconds(25)));
  svc.declare(task("b", milliseconds(200), milliseconds(50)));
  EXPECT_NEAR(svc.total_utilization(), 0.5, 1e-12);
}

TEST(SchedulingService, ClassicFeasibleBeyondTheBound) {
  // U = 0.25 + 0.25 + 0.25 = 0.75 < LL bound for 3 (0.7798): bound passes.
  SchedulingService svc;
  svc.declare(task("t1", milliseconds(40), milliseconds(10)));
  svc.declare(task("t2", milliseconds(80), milliseconds(20)));
  svc.declare(task("t3", milliseconds(160), milliseconds(40)));
  EXPECT_TRUE(svc.feasible_by_bound());
  EXPECT_TRUE(svc.feasible_by_response_time());

  // Harmonic task set at U = 1.0: fails the LL bound but is exactly
  // schedulable — RTA proves it.
  SchedulingService harmonic;
  harmonic.declare(task("h1", milliseconds(10), milliseconds(5)));
  harmonic.declare(task("h2", milliseconds(20), milliseconds(10)));
  EXPECT_FALSE(harmonic.feasible_by_bound());
  EXPECT_TRUE(harmonic.feasible_by_response_time());
  EXPECT_TRUE(harmonic.assign().ok());
}

TEST(SchedulingService, ResponseTimeAnalysisKnownExample) {
  // Textbook example: T={7,12,20}, C={3,3,5}.
  // R1=3; R2=3+ceil(R2/7)*3 -> 6; R3=5+...-> 20 (fits exactly).
  SchedulingService svc;
  svc.declare(task("t1", milliseconds(7), milliseconds(3)));
  svc.declare(task("t2", milliseconds(12), milliseconds(3)));
  svc.declare(task("t3", milliseconds(20), milliseconds(5)));
  ASSERT_TRUE(svc.feasible_by_response_time());
  EXPECT_EQ(svc.worst_case_response("t1")->ns(), milliseconds(3).ns());
  EXPECT_EQ(svc.worst_case_response("t2")->ns(), milliseconds(6).ns());
  EXPECT_EQ(svc.worst_case_response("t3")->ns(), milliseconds(20).ns());
}

TEST(SchedulingService, InfeasibleSetRefusedAtAssign) {
  SchedulingService svc;
  svc.declare(task("t1", milliseconds(10), milliseconds(6)));
  svc.declare(task("t2", milliseconds(14), milliseconds(6)));
  EXPECT_FALSE(svc.feasible_by_response_time());
  const auto status = svc.assign();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.error().find("infeasible"), std::string::npos);
  EXPECT_FALSE(svc.priority_of("t1").has_value());
}

TEST(SchedulingService, RemoveMakesSetFeasibleAgain) {
  SchedulingService svc;
  svc.declare(task("t1", milliseconds(10), milliseconds(6)));
  svc.declare(task("t2", milliseconds(14), milliseconds(6)));
  ASSERT_FALSE(svc.assign().ok());
  svc.remove("t2");
  ASSERT_TRUE(svc.assign().ok());
  EXPECT_TRUE(svc.priority_of("t1").has_value());
  EXPECT_EQ(svc.activity_count(), 1u);
}

TEST(SchedulingService, UtilizationStaysExactThroughChurn) {
  // The sum is maintained incrementally; interleaved declare/remove/replace
  // cycles must land on exactly the same values as a fresh service would.
  SchedulingService svc;
  for (int round = 0; round < 50; ++round) {
    svc.declare(task("a", milliseconds(100), milliseconds(20 + round % 3)));
    svc.declare(task("b", milliseconds(250), milliseconds(50)));
    svc.declare(task("a", milliseconds(100), milliseconds(25)));  // replace
    svc.remove("b");
    svc.remove("missing");  // no-op must not disturb the sum
  }
  SchedulingService fresh;
  fresh.declare(task("a", milliseconds(100), milliseconds(25)));
  EXPECT_EQ(svc.total_utilization(), fresh.total_utilization());
  svc.remove("a");
  EXPECT_EQ(svc.total_utilization(), 0.0);
}

TEST(SchedulingService, RedeclareReplacesSpec) {
  SchedulingService svc;
  svc.declare(task("t", milliseconds(100), milliseconds(90)));
  svc.declare(task("t", milliseconds(100), milliseconds(10)));  // replace
  EXPECT_EQ(svc.activity_count(), 1u);
  EXPECT_NEAR(svc.total_utilization(), 0.1, 1e-12);
}

}  // namespace
}  // namespace aqm::core

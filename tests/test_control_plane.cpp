// Runtime QoS control plane (DESIGN.md §13).
//
// 1. Override mechanics: merge_override semantics, live re-stamps through
//    QosControlPlane (versioned binding bumps, no session restart), the
//    clear path, idempotence, and the remote QosControlClient round-trip.
// 2. Zero-alloc steady state: repeated re-stamps of the per-invocation
//    knobs (priority / DSCP / deadline) through both QoSSession::update
//    and the control plane perform no heap allocation once warmed up,
//    verified by counting global operator new.
// 3. Revoke safety: revoking while RSVP signaling is in flight releases
//    the late reservation instead of leaking it, a partial apply tears
//    down only the stages that applied, and a never-applied session's
//    revoke cannot wipe another session's binding.
// 4. Differential oracle: randomized override churn (override_flow /
//    clear_override) must be observably identical to tearing the session
//    down and rebinding with the merged policy at every step.
// 5. Feedback epochs: deterministic epoch grid, equal-share division at
//    zero deficit, and the hysteresis dead zone.
// 6. Flash crowd: under the static policy the SLO breach is sustained;
//    with the FeedbackScheduler the flow breaches and then recovers while
//    the crowd is still arriving.
#include "core/qos_control_plane.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <optional>
#include <random>
#include <vector>

#include "common/flash_crowd.hpp"
#include "common/policy_builder.hpp"
#include "core/feedback_scheduler.hpp"
#include "core/qos_policy_interceptor.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"
#include "net/dscp.hpp"
#include "net/queue.hpp"
#include "obs/telemetry.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

// --- counting allocator ------------------------------------------------------

namespace {
std::uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace aqm::core {
namespace {

TEST(MergeOverride, EngagedFieldsReplaceDisengagedKeepBase) {
  EndToEndQosPolicy base;
  base.flow = kFlowVideo;
  base.priority = 10'000;
  base.explicit_dscp = net::dscp::kAf11;
  base.network_reservation = net::FlowSpec{2e6, 40'000};

  PolicyOverride ov;
  EXPECT_FALSE(ov.any());
  ov.priority = 25'000;
  ov.deadline = milliseconds(8);
  EXPECT_TRUE(ov.any());

  const EndToEndQosPolicy merged = merge_override(base, ov);
  EXPECT_EQ(merged.priority, 25'000);                        // engaged: replaced
  EXPECT_EQ(merged.deadline, milliseconds(8));               // engaged: added
  EXPECT_EQ(merged.explicit_dscp, net::dscp::kAf11);         // disengaged: kept
  EXPECT_EQ(merged.flow, base.flow);                         // never overridden
  EXPECT_EQ(merged.network_reservation, base.network_reservation);
  // An empty override merges to exactly the base policy.
  EXPECT_EQ(merge_override(base, PolicyOverride{}), base);
}

struct ControlPlaneFixture : public ::testing::Test {
  ControlPlaneFixture()
      : bed(ReservationTestbedParams{}),
        app_poa(&bed.receiver_orb.create_poa("app")),
        ctrl_poa(&bed.sender_orb.create_poa("ctrl")),
        plane(*ctrl_poa) {
    auto servant = std::make_shared<orb::FunctionServant>(
        microseconds(100), [](orb::ServerRequest&) {});
    target = app_poa->activate_object("target", std::move(servant));
    stub = std::make_unique<orb::ObjectStub>(bed.sender_orb, target);
    stub->set_flow(kFlowVideo);
  }

  [[nodiscard]] const QosBindingState* binding_state() {
    QosPolicyInterceptor* icpt = QosPolicyInterceptor::find(bed.sender_orb);
    return icpt == nullptr
               ? nullptr
               : icpt->binding_state(target.node, target.object_key);
  }

  ReservationTestbed bed;
  orb::Poa* app_poa;
  orb::Poa* ctrl_poa;
  QosControlPlane plane;
  orb::ObjectRef target;
  std::unique_ptr<orb::ObjectStub> stub;
};

TEST_F(ControlPlaneFixture, OverrideRestampsLiveBindingWithoutRestart) {
  QoSSession session(bed.sender_orb, *stub);
  session.apply(bench::PolicyBuilder::sender(kFlowVideo, 10'000));
  plane.manage(kFlowVideo, session);
  ASSERT_TRUE(plane.manages(kFlowVideo));

  const QosBindingState* state = binding_state();
  ASSERT_NE(state, nullptr);
  const std::uint64_t v0 = state->version;

  PolicyOverride ov;
  ov.priority = 22'000;
  ov.dscp = net::dscp::kEf;
  ov.deadline = milliseconds(5);
  ASSERT_TRUE(plane.override_flow(kFlowVideo, ov).ok());

  // Same binding object, version bumped once, new knobs live — the next
  // invocation reads them with no rebind and no session restart.
  ASSERT_EQ(binding_state(), state);
  EXPECT_EQ(state->version, v0 + 1);
  EXPECT_EQ(state->policy.priority, 22'000);
  EXPECT_EQ(state->policy.explicit_dscp, net::dscp::kEf);
  EXPECT_EQ(state->policy.deadline, milliseconds(5));
  EXPECT_EQ(session.updates_applied(), 1u);
  ASSERT_NE(plane.active_override(kFlowVideo), nullptr);
  EXPECT_EQ(*plane.active_override(kFlowVideo), ov);

  // clear_override restores the base policy through the same re-stamp.
  ASSERT_TRUE(plane.clear_override(kFlowVideo).ok());
  EXPECT_EQ(state->version, v0 + 2);
  EXPECT_EQ(state->policy.priority, 10'000);
  EXPECT_FALSE(state->policy.explicit_dscp.has_value());
  EXPECT_FALSE(state->policy.deadline.has_value());
  EXPECT_EQ(plane.active_override(kFlowVideo), nullptr);

  // Clearing again is idempotent: no stamp, no version churn.
  ASSERT_TRUE(plane.clear_override(kFlowVideo).ok());
  EXPECT_EQ(state->version, v0 + 2);

  // Unknown flows are an error, not a crash.
  EXPECT_FALSE(plane.override_flow(kFlowSender1, ov).ok());
  EXPECT_FALSE(plane.clear_override(kFlowSender1).ok());
  plane.unmanage(kFlowVideo);
  EXPECT_FALSE(plane.manages(kFlowVideo));
}

TEST_F(ControlPlaneFixture, RemoteOverrideRoundTrip) {
  QoSSession session(bed.sender_orb, *stub);
  session.apply(bench::PolicyBuilder::sender(kFlowVideo, 10'000));
  plane.manage(kFlowVideo, session);

  // The controller lives on another host and drives the sender's control
  // plane over CORBA.
  QosControlClient controller(bed.receiver_orb, plane.ref());
  PolicyOverride ov;
  ov.priority = 30'000;
  ov.server_cpu_reserve = os::ReserveSpec{milliseconds(10), milliseconds(100), true};
  ov.network_reservation = net::FlowSpec{1.5e6, 32'000};
  ov.oneway_batching = OnewayBatchingPolicy{8 * 1024, 16, microseconds(250)};

  std::optional<Status<std::string>> outcome;
  controller.override_flow(kFlowVideo, ov,
                           [&](Status<std::string> s) { outcome = std::move(s); });
  bed.engine.run_until(TimePoint{seconds(2).ns()});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
  // The override decoded losslessly on the far side (every payload field
  // survived the CDR trip) and re-stamped the live session.
  ASSERT_NE(plane.active_override(kFlowVideo), nullptr);
  EXPECT_EQ(*plane.active_override(kFlowVideo), ov);
  EXPECT_EQ(session.active_policy().priority, 30'000);
  EXPECT_EQ(session.active_policy().oneway_batching, ov.oneway_batching);

  outcome.reset();
  controller.clear_override(kFlowVideo,
                            [&](Status<std::string> s) { outcome = std::move(s); });
  bed.engine.run_until(TimePoint{seconds(4).ns()});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->ok());
  EXPECT_EQ(plane.active_override(kFlowVideo), nullptr);
  EXPECT_EQ(session.active_policy().priority, 10'000);

  // An unmanaged flow's error text crosses the wire too.
  outcome.reset();
  controller.override_flow(kFlowCross, ov,
                           [&](Status<std::string> s) { outcome = std::move(s); });
  bed.engine.run_until(TimePoint{seconds(6).ns()});
  ASSERT_TRUE(outcome.has_value());
  EXPECT_FALSE(outcome->ok());
  EXPECT_NE(outcome->error().find("not under control-plane management"),
            std::string::npos);
}

TEST_F(ControlPlaneFixture, RestampPathDoesNotAllocate) {
  QoSSession session(bed.sender_orb, *stub);
  session.apply(bench::PolicyBuilder::sender(kFlowVideo, 10'000).deadline(milliseconds(20)));
  plane.manage(kFlowVideo, session);

  // Warm up both paths once (first override populates the Managed slot's
  // optionals; the binding itself was populated by apply).
  EndToEndQosPolicy policy = session.active_policy();
  policy.priority = 11'000;
  session.update(policy);
  PolicyOverride ov;
  ov.priority = 12'000;
  ov.dscp = net::dscp::kEf;
  ov.deadline = milliseconds(5);
  ASSERT_TRUE(plane.override_flow(kFlowVideo, ov).ok());
  ASSERT_TRUE(plane.clear_override(kFlowVideo).ok());

  const QosBindingState* state = binding_state();
  ASSERT_NE(state, nullptr);
  const std::uint64_t v0 = state->version;

  // Steady state: per-invocation knob re-stamps are pure in-place writes.
  const std::uint64_t before = g_heap_allocs;
  for (int i = 0; i < 100; ++i) {
    policy.priority = 12'000 + (i % 2) * 1'000;
    policy.deadline = milliseconds(5 + i % 3);
    session.update(policy);
  }
  for (int i = 0; i < 100; ++i) {
    ov.priority = 20'000 + (i % 2) * 1'000;
    if (plane.override_flow(kFlowVideo, ov).ok() &&
        plane.clear_override(kFlowVideo).ok()) {
      continue;
    }
  }
  EXPECT_EQ(g_heap_allocs, before);
  // Every one of those was a real stamp on the live binding.
  EXPECT_EQ(state->version, v0 + 100 + 200);
}

TEST_F(ControlPlaneFixture, RevokeDuringInFlightSignalingLeaksNothing) {
  QoSSession session(bed.sender_orb, *stub, &bed.qos);
  // Network reservation plus a CPU reserve with no client: the CPU stage
  // fails synchronously (partial apply) while RSVP is still in flight.
  std::optional<Status<std::string>> outcome;
  session.apply(bench::PolicyBuilder::sender(kFlowVideo, 10'000)
                    .network(1e6, 32'000)
                    .cpu_reserve(milliseconds(10), milliseconds(100), true),
                [&](Status<std::string> s) { outcome = std::move(s); });
  // The CPU stage failed synchronously, but the apply has not settled: the
  // RSVP exchange is still in flight, so the callback has not fired.
  EXPECT_FALSE(outcome.has_value());

  // Revoke before the RSVP Path/Resv exchange lands. The late reservation
  // must be released by its own stale callback, not recorded — and the
  // cancelled apply's callback must never fire on the revoked session.
  session.revoke();
  EXPECT_EQ(binding_state(), nullptr);
  bed.engine.run_until(TimePoint{seconds(2).ns()});
  EXPECT_FALSE(outcome.has_value());
  EXPECT_FALSE(session.network_reserved());
  auto* q = dynamic_cast<net::IntServQueue*>(
      &bed.network.link_between(bed.switch_node, bed.receiver_node)->queue());
  ASSERT_NE(q, nullptr);
  EXPECT_FALSE(q->has_reservation(kFlowVideo));

  // A session that never applied anything has nothing to tear down: its
  // revoke must not wipe another session's live binding on the same stub.
  QoSSession owner(bed.sender_orb, *stub);
  owner.apply(bench::PolicyBuilder::sender(kFlowVideo, 15'000));
  ASSERT_NE(binding_state(), nullptr);
  QoSSession bystander(bed.sender_orb, *stub);
  bystander.revoke();
  ASSERT_NE(binding_state(), nullptr);
  EXPECT_EQ(binding_state()->policy.priority, 15'000);
}

// --- override churn vs tear-down-and-rebind oracle ---------------------------

struct ChurnStep {
  std::int64_t at_ms = 0;
  bool clear = false;
  PolicyOverride ov;
};

std::vector<ChurnStep> churn_script(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<ChurnStep> script;
  for (int k = 0; k < 24; ++k) {
    ChurnStep step;
    step.at_ms = 200 + 80 * k;
    step.clear = rng() % 4 == 0;
    if (!step.clear) {
      step.ov.priority =
          static_cast<orb::CorbaPriority>(1'000 + (rng() % 30) * 1'000);
      if (rng() % 2 == 0) {
        step.ov.dscp = (rng() % 2 == 0) ? net::dscp::kEf : net::dscp::kAf41;
      }
      if (rng() % 2 == 0) {
        step.ov.deadline = milliseconds(1 + static_cast<std::int64_t>(rng() % 50));
      }
    }
    script.push_back(step);
  }
  return script;
}

struct ChurnTrace {
  std::uint64_t sent = 0;
  std::vector<std::int64_t> delivery_ns;  // per-delivery engine clock
};

/// One 2.5 s contended run (load source saturating the bottleneck),
/// replaying `script` either as live override_flow/clear_override
/// re-stamps or as full revoke + re-apply of the merged policy.
ChurnTrace run_churn(const std::vector<ChurnStep>& script, bool rebind) {
  ReservationTestbedParams params;
  params.load_seed = 7;
  ReservationTestbed bed(params);

  ChurnTrace trace;
  orb::Poa& poa = bed.receiver_orb.create_poa("app");
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(50), [&trace, &bed](orb::ServerRequest&) {
        trace.delivery_ns.push_back(bed.engine.now().ns());
      });
  const orb::ObjectRef target = poa.activate_object("target", std::move(servant));
  orb::ObjectStub stub(bed.sender_orb, target);

  const EndToEndQosPolicy base = bench::PolicyBuilder::sender(kFlowVideo, 10'000);
  QoSSession session(bed.sender_orb, stub);
  session.apply(base);
  // The plane exists in both modes so the two worlds are identical up to
  // the churn mechanism under test.
  orb::Poa& ctrl_poa = bed.sender_orb.create_poa("ctrl");
  QosControlPlane plane(ctrl_poa);
  plane.manage(kFlowVideo, session);

  for (const ChurnStep& step : script) {
    bed.engine.at(TimePoint{milliseconds(step.at_ms).ns()}, [&plane, &session,
                                                            &base, &step, rebind] {
      if (!rebind) {
        if (step.clear) {
          (void)plane.clear_override(kFlowVideo);
        } else {
          (void)plane.override_flow(kFlowVideo, step.ov);
        }
        return;
      }
      // Oracle: the pre-control-plane way — tear the binding down and
      // rebuild it from scratch with the merged policy.
      session.revoke();
      session.apply(step.clear ? base : merge_override(base, step.ov));
    });
  }

  sim::PeriodicTimer task(bed.engine, milliseconds(1), [&] {
    ++trace.sent;
    stub.oneway("frame", std::vector<std::uint8_t>(1000));
  });
  task.start();
  bed.load_traffic->start();
  bed.engine.run_until(TimePoint{milliseconds(2'500).ns()});
  task.stop();
  bed.load_traffic->stop();
  bed.engine.run_until(TimePoint{milliseconds(3'500).ns()});  // drain
  return trace;
}

TEST(OverrideChurnOracle, LiveRestampMatchesTearDownAndRebind) {
  const std::vector<ChurnStep> script = churn_script(0x5eed'2026);
  const ChurnTrace live = run_churn(script, /*rebind=*/false);
  const ChurnTrace oracle = run_churn(script, /*rebind=*/true);
  ASSERT_GT(live.sent, 0u);
  ASSERT_FALSE(live.delivery_ns.empty());
  EXPECT_EQ(live.sent, oracle.sent);
  // Byte-identical flow metrics: every delivery lands at the same clock
  // tick whether the policy churned in place or via full rebinds.
  EXPECT_EQ(live.delivery_ns, oracle.delivery_ns);
}

// --- feedback epochs ----------------------------------------------------------

TEST(FeedbackSchedulerTest, EpochGridIsDeterministicAndHysteresisHolds) {
  sim::Engine engine;
  obs::TelemetryHub hub;
  os::Cpu cpu(engine, "host");
  const auto r1 = cpu.create_reserve({milliseconds(10), milliseconds(100), true});
  const auto r2 = cpu.create_reserve({milliseconds(10), milliseconds(100), true});
  ASSERT_TRUE(r1.ok() && r2.ok());

  FeedbackConfig cfg;
  cfg.cpu_pool_utilization = 0.6;
  FeedbackScheduler fs(engine, hub, cfg);
  fs.control_cpu(kFlowSender1, cpu, r1.value(), milliseconds(100), true);
  fs.control_cpu(kFlowSender2, cpu, r2.value(), milliseconds(100), true);
  EXPECT_TRUE(fs.controls(kFlowSender1));
  EXPECT_FALSE(fs.controls(kFlowCross));

  // Start off-grid: the first epoch still lands on the next integer
  // multiple of the epoch length (500 ms), not 123 + 500.
  engine.run_until(TimePoint{milliseconds(123).ns()});
  fs.start();
  engine.run_until(TimePoint{milliseconds(1'600).ns()});
  EXPECT_EQ(fs.epochs_run(), 3u);  // 500, 1000, 1500 ms

  // No traffic, zero deficit everywhere: both flows settle on the equal
  // share of the pool (0.3 utilization -> 30 ms per 100 ms period), and
  // epochs after the first change nothing (inside the dead zone).
  EXPECT_DOUBLE_EQ(fs.deficit(kFlowSender1), 0.0);
  EXPECT_EQ(fs.restamps_applied(), 2u);
  EXPECT_EQ(fs.restamps_rejected(), 0u);
  EXPECT_NEAR(cpu.reserved_utilization(), 0.6, 1e-9);

  fs.stop();
  const std::uint64_t epochs = fs.epochs_run();
  engine.run_until(TimePoint{milliseconds(3'000).ns()});
  EXPECT_EQ(fs.epochs_run(), epochs);  // stop() cancels the pending tick
}

// --- flash crowd ---------------------------------------------------------------

TEST(FlashCrowd, FeedbackRecoversWhereStaticPolicyCollapses) {
  bench::FlashCrowdConfig cfg;
  cfg.feedback = false;
  const bench::FlashCrowdResult is = bench::run_flash_crowd(cfg);
  cfg.feedback = true;
  const bench::FlashCrowdResult fb = bench::run_flash_crowd(cfg);

  // Static policy: the crowd pushes flow A past its fixed reservation and
  // the SLO breach is sustained to the end of traffic — no recovery.
  EXPECT_GE(is.a_breaches, 1u);
  EXPECT_EQ(is.a_recoveries, 0u);
  EXPECT_TRUE(is.a_breached_at_end);
  EXPECT_EQ(is.epochs_run, 0u);

  // Feedback: the same crowd breaches, the controller re-divides the pool,
  // and the SLO recovers while the crowd is still arriving.
  EXPECT_GE(fb.a_breaches, 1u);
  EXPECT_GE(fb.a_recoveries, 1u);
  EXPECT_FALSE(fb.a_breached_at_end);
  EXPECT_GE(fb.epochs_run, 1u);
  EXPECT_GE(fb.restamps_applied, 1u);

  // The adaptation is worth real goodput, not just a clean SLO lamp.
  EXPECT_GT(fb.a_post_step_delivery, is.a_post_step_delivery + 0.2);
  EXPECT_LT(fb.a_breached_ns, is.a_breached_ns);
}

}  // namespace
}  // namespace aqm::core

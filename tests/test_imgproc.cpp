#include <gtest/gtest.h>

#include "imgproc/edge.hpp"
#include "imgproc/image.hpp"
#include "imgproc/ppm.hpp"
#include "imgproc/synth.hpp"

namespace aqm::img {
namespace {

/// Image with a sharp vertical edge at x = w/2.
GrayImage vertical_edge_image(int w, int h) {
  GrayImage im(w, h, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = w / 2; x < w; ++x) im.at(x, y) = 255;
  }
  return im;
}

TEST(Image, ClampedSampling) {
  GrayImage im(4, 4, 10);
  im.at(0, 0) = 99;
  EXPECT_EQ(im.at_clamped(-5, -5), 99);
  EXPECT_EQ(im.at_clamped(100, 100), im.at(3, 3));
}

TEST(Image, RgbToGrayLuma) {
  RgbImage rgb(2, 1);
  rgb.at(0, 0, 0) = 255;  // pure red
  rgb.at(1, 0, 1) = 255;  // pure green
  const GrayImage gray = rgb.to_gray();
  EXPECT_NEAR(gray.at(0, 0), 76, 2);   // 0.299 * 255
  EXPECT_NEAR(gray.at(1, 0), 150, 2);  // 0.587 * 255
}

class EdgeDetectorTest : public ::testing::TestWithParam<EdgeAlgorithm> {};

TEST_P(EdgeDetectorTest, RespondsAtStepEdge) {
  const GrayImage im = vertical_edge_image(32, 16);
  const GrayImage out = run_edge(GetParam(), im);
  ASSERT_EQ(out.width(), 32);
  ASSERT_EQ(out.height(), 16);
  // Strong response at the edge column...
  EXPECT_GT(out.at(16, 8), 100);
  // ...and silence in the flat regions.
  EXPECT_EQ(out.at(4, 8), 0);
  EXPECT_EQ(out.at(28, 8), 0);
}

TEST_P(EdgeDetectorTest, FlatImageGivesNoResponse) {
  const GrayImage im(16, 16, 128);
  const GrayImage out = run_edge(GetParam(), im);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) EXPECT_EQ(out.at(x, y), 0);
  }
}

TEST_P(EdgeDetectorTest, HorizontalEdgeAlsoDetected) {
  GrayImage im(16, 32, 0);
  for (int y = 16; y < 32; ++y) {
    for (int x = 0; x < 16; ++x) im.at(x, y) = 200;
  }
  const GrayImage out = run_edge(GetParam(), im);
  EXPECT_GT(out.at(8, 16), 50);
  EXPECT_EQ(out.at(8, 4), 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, EdgeDetectorTest,
                         ::testing::Values(EdgeAlgorithm::Kirsch, EdgeAlgorithm::Prewitt,
                                           EdgeAlgorithm::Sobel),
                         [](const auto& info) { return to_string(info.param); });

TEST(Edge, KirschIsOmnidirectional) {
  // A bright corner: Kirsch (compass masks) responds on both edges.
  GrayImage im(20, 20, 0);
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) im.at(x, y) = 255;
  }
  const GrayImage out = kirsch(im);
  EXPECT_GT(out.at(10, 5), 80);  // vertical edge
  EXPECT_GT(out.at(5, 10), 80);  // horizontal edge
}

TEST(Edge, ThresholdBinarizes) {
  const GrayImage im = vertical_edge_image(16, 8);
  const GrayImage edges = sobel(im);
  const GrayImage binary = threshold(edges, 128);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 16; ++x) {
      EXPECT_TRUE(binary.at(x, y) == 0 || binary.at(x, y) == 255);
    }
  }
}

TEST(Edge, CostModelOrdersAlgorithms) {
  const std::size_t pixels = 400 * 250;
  const std::uint64_t hz = 1'000'000'000;
  const Duration k = estimated_cost(EdgeAlgorithm::Kirsch, pixels, hz);
  const Duration p = estimated_cost(EdgeAlgorithm::Prewitt, pixels, hz);
  const Duration s = estimated_cost(EdgeAlgorithm::Sobel, pixels, hz);
  EXPECT_GT(k, s);
  EXPECT_GT(s, p);
  // Kirsch runs 8 masks vs 2: at least 3x the cost of Prewitt.
  EXPECT_GT(k.ns(), 3 * p.ns());
  // Sanity: 100k pixels in the tens-of-ms range at 1 GHz.
  EXPECT_GT(p.ns(), milliseconds(5).ns());
  EXPECT_LT(k.ns(), milliseconds(500).ns());
}

TEST(Ppm, RgbRoundTrip) {
  const RgbImage scene = make_scene(40, 25, 7);
  const auto bytes = encode_ppm(scene);
  const RgbImage back = decode_ppm(bytes);
  ASSERT_EQ(back.width(), 40);
  ASSERT_EQ(back.height(), 25);
  for (int y = 0; y < 25; ++y) {
    for (int x = 0; x < 40; ++x) {
      for (int c = 0; c < 3; ++c) ASSERT_EQ(back.at(x, y, c), scene.at(x, y, c));
    }
  }
}

TEST(Ppm, GrayRoundTrip) {
  const GrayImage im = vertical_edge_image(17, 9);
  const GrayImage back = decode_pgm(encode_pgm(im));
  ASSERT_EQ(back.width(), 17);
  for (int y = 0; y < 9; ++y) {
    for (int x = 0; x < 17; ++x) ASSERT_EQ(back.at(x, y), im.at(x, y));
  }
}

TEST(Ppm, PaperImageSizeMatches) {
  // The paper: "400x250 pixels, 300,060 bytes" binary PPM. Header size
  // varies slightly with formatting; we must land within a few bytes.
  const RgbImage scene = make_paper_scene(1);
  const auto bytes = encode_ppm(scene);
  EXPECT_NEAR(static_cast<double>(bytes.size()), 300'060.0, 60.0);
}

TEST(Ppm, RejectsMalformedInput) {
  EXPECT_THROW((void)decode_ppm({'P', '6'}), std::runtime_error);
  std::vector<std::uint8_t> truncated = encode_ppm(make_scene(10, 10, 1));
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW((void)decode_ppm(truncated), std::runtime_error);
  // Wrong magic.
  auto pgm_as_ppm = encode_pgm(GrayImage(4, 4, 1));
  EXPECT_THROW((void)decode_ppm(pgm_as_ppm), std::runtime_error);
}

TEST(Synth, DeterministicForSeed) {
  const RgbImage a = make_scene(50, 30, 99);
  const RgbImage b = make_scene(50, 30, 99);
  const RgbImage c = make_scene(50, 30, 100);
  EXPECT_TRUE(std::equal(a.data().begin(), a.data().end(), b.data().begin()));
  EXPECT_FALSE(std::equal(a.data().begin(), a.data().end(), c.data().begin()));
}

TEST(Synth, SceneHasEdgesForAtr) {
  // The synthetic scene must actually exercise the edge detectors.
  const GrayImage gray = make_paper_scene(3).to_gray();
  const GrayImage edges = sobel(gray);
  int strong = 0;
  for (int y = 0; y < edges.height(); ++y) {
    for (int x = 0; x < edges.width(); ++x) {
      if (edges.at(x, y) > 64) ++strong;
    }
  }
  // Target outlines (rectangles + circle perimeter) are hundreds of pixels.
  EXPECT_GT(strong, 200);
}

}  // namespace
}  // namespace aqm::img

// Resource-kernel CPU reserve semantics (TimeSys RK model).
#include <gtest/gtest.h>

#include <optional>

#include "os/cpu.hpp"
#include "os/load_generator.hpp"
#include "sim/engine.hpp"

namespace aqm::os {
namespace {

CpuConfig fifo_config() {
  CpuConfig cfg;
  cfg.quantum = Duration::max() - Duration{1};
  return cfg;
}

TEST(Reserve, AdmissionAcceptsWithinCap) {
  sim::Engine e;
  Cpu cpu(e, "cpu");  // default cap 0.9
  const auto r1 = cpu.create_reserve({milliseconds(40), milliseconds(100), true});
  ASSERT_TRUE(r1.ok());
  const auto r2 = cpu.create_reserve({milliseconds(40), milliseconds(100), true});
  ASSERT_TRUE(r2.ok());
  EXPECT_NEAR(cpu.reserved_utilization(), 0.8, 1e-12);
}

TEST(Reserve, AdmissionRejectsOverCap) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  ASSERT_TRUE(cpu.create_reserve({milliseconds(80), milliseconds(100), true}).ok());
  const auto r = cpu.create_reserve({milliseconds(20), milliseconds(100), true});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("admission denied"), std::string::npos);
}

TEST(Reserve, RejectsInvalidSpec) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  EXPECT_FALSE(cpu.create_reserve({milliseconds(0), milliseconds(100), true}).ok());
  EXPECT_FALSE(cpu.create_reserve({milliseconds(200), milliseconds(100), true}).ok());
  EXPECT_FALSE(cpu.create_reserve({milliseconds(10), Duration::zero(), true}).ok());
}

TEST(Reserve, DestroyFreesUtilization) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  const auto r = cpu.create_reserve({milliseconds(80), milliseconds(100), true});
  ASSERT_TRUE(r.ok());
  cpu.destroy_reserve(r.value());
  EXPECT_DOUBLE_EQ(cpu.reserved_utilization(), 0.0);
  EXPECT_TRUE(cpu.create_reserve({milliseconds(80), milliseconds(100), true}).ok());
}

TEST(Reserve, ReservedJobPreemptsHigherBasePriority) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  const auto r = cpu.create_reserve({milliseconds(50), milliseconds(100), true});
  ASSERT_TRUE(r.ok());
  std::optional<TimePoint> reserved_done;
  std::optional<TimePoint> normal_done;
  // Normal job at max base priority; reserved job at low base priority.
  cpu.submit_for(milliseconds(10), kMaxPriority, [&] { normal_done = e.now(); });
  cpu.submit_for(milliseconds(5), kMinPriority, [&] { reserved_done = e.now(); },
                 r.value());
  e.run();
  ASSERT_TRUE(reserved_done && normal_done);
  // Reserve budget (50ms) covers the whole 5ms job: it runs first.
  EXPECT_EQ(reserved_done->ns(), milliseconds(5).ns());
  EXPECT_EQ(normal_done->ns(), milliseconds(15).ns());
}

TEST(Reserve, HardReserveSuspendsOnBudgetExhaustion) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  // 10ms budget per 50ms period.
  const auto r = cpu.create_reserve({milliseconds(10), milliseconds(50), true});
  ASSERT_TRUE(r.ok());
  std::optional<TimePoint> done;
  // Needs 25ms of CPU: 10ms in period 1, 10ms in period 2, 5ms in period 3.
  cpu.submit_for(milliseconds(25), 100, [&] { done = e.now(); }, r.value());
  e.run();
  ASSERT_TRUE(done);
  // Runs [0,10), suspends until 50, runs [50,60), suspends until 100,
  // finishes at 105.
  EXPECT_EQ(done->ns(), milliseconds(105).ns());
}

TEST(Reserve, SoftReserveFallsBackToBasePriority) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  const auto r = cpu.create_reserve({milliseconds(10), milliseconds(100), false});
  ASSERT_TRUE(r.ok());
  std::optional<TimePoint> done;
  // 25ms of work with only 10ms of budget: after exhaustion the job
  // continues at its base priority on the idle CPU.
  cpu.submit_for(milliseconds(25), 100, [&] { done = e.now(); }, r.value());
  e.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(done->ns(), milliseconds(25).ns());
}

TEST(Reserve, GuaranteesBudgetUnderSaturatingLoad) {
  sim::Engine e;
  CpuConfig cfg;
  cfg.quantum = milliseconds(10);
  Cpu cpu(e, "cpu", cfg);
  const auto r = cpu.create_reserve({milliseconds(20), milliseconds(100), true});
  ASSERT_TRUE(r.ok());

  // Saturating competing work at max priority.
  std::function<void()> refill = [&] {
    cpu.submit_for(milliseconds(50), kMaxPriority, [&] { refill(); });
  };
  refill();

  std::optional<TimePoint> done;
  // 60ms of reserved work at 20ms/100ms: needs 3 periods.
  cpu.submit_for(milliseconds(60), kMinPriority, [&] { done = e.now(); }, r.value());
  e.run_until(TimePoint{milliseconds(400).ns()});
  ASSERT_TRUE(done);
  // Periods: [0,100) 20ms, [100,200) 20ms, [200,220] final 20ms.
  EXPECT_LE(done->ns(), milliseconds(225).ns());
}

TEST(Reserve, BudgetReplenishesEachPeriod) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  const auto r = cpu.create_reserve({milliseconds(10), milliseconds(20), true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(cpu.reserve_budget(r.value()).ns(), milliseconds(10).ns());
  cpu.submit_for(milliseconds(10), 100, [] {}, r.value());
  e.run_until(TimePoint{milliseconds(15).ns()});
  EXPECT_EQ(cpu.reserve_budget(r.value()).ns(), 0);
  e.run_until(TimePoint{milliseconds(21).ns()});
  EXPECT_EQ(cpu.reserve_budget(r.value()).ns(), milliseconds(10).ns());
}

TEST(Reserve, DestroyWhileJobAttachedDemotesJob) {
  sim::Engine e;
  Cpu cpu(e, "cpu", fifo_config());
  const auto r = cpu.create_reserve({milliseconds(50), milliseconds(100), true});
  ASSERT_TRUE(r.ok());
  std::optional<TimePoint> reserved_done;
  std::optional<TimePoint> normal_done;
  cpu.submit_for(milliseconds(20), 10, [&] { reserved_done = e.now(); }, r.value());
  cpu.submit_for(milliseconds(10), 100, [&] { normal_done = e.now(); });
  // Kill the reserve after 5ms: the reserved job drops to base prio 10 and
  // the normal prio-100 job takes over.
  e.after(milliseconds(5), [&] { cpu.destroy_reserve(r.value()); });
  e.run();
  ASSERT_TRUE(reserved_done && normal_done);
  EXPECT_EQ(normal_done->ns(), milliseconds(15).ns());
  EXPECT_EQ(reserved_done->ns(), milliseconds(30).ns());
}

TEST(Reserve, UnknownReserveBudgetIsZero) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  EXPECT_EQ(cpu.reserve_budget(99).ns(), 0);
  EXPECT_FALSE(cpu.has_reserve(99));
}

TEST(LoadGenerator, OfferedUtilizationMatchesConfig) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  LoadGenerator::Config cfg;
  cfg.burst_mean = milliseconds(20);
  cfg.interval_mean = milliseconds(80);
  LoadGenerator load(e, cpu, cfg);
  EXPECT_NEAR(load.offered_utilization(), 0.25, 1e-12);
}

TEST(LoadGenerator, GeneratesApproximatelyConfiguredLoad) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  LoadGenerator::Config cfg;
  cfg.priority = 100;
  cfg.burst_mean = milliseconds(10);
  cfg.interval_mean = milliseconds(40);
  cfg.seed = 7;
  LoadGenerator load(e, cpu, cfg);
  load.start();
  e.run_until(TimePoint{seconds(20).ns()});
  load.stop();
  // ~25% utilization requested; CPU otherwise idle, so it should be close.
  EXPECT_NEAR(cpu.utilization(), 0.25, 0.05);
  EXPECT_GT(load.bursts_submitted(), 400u);
}

TEST(LoadGenerator, StopHaltsSubmission) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  LoadGenerator::Config cfg;
  cfg.burst_mean = milliseconds(1);
  cfg.interval_mean = milliseconds(10);
  LoadGenerator load(e, cpu, cfg);
  load.start();
  e.run_until(TimePoint{seconds(1).ns()});
  load.stop();
  const auto count = load.bursts_submitted();
  e.run_until(TimePoint{seconds(2).ns()});
  EXPECT_EQ(load.bursts_submitted(), count);
}

}  // namespace
}  // namespace aqm::os

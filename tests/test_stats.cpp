#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace aqm {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum of squared devs = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(5);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(3.0, 1.5);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-100.0);  // clamps into first bucket
  h.add(100.0);   // clamps into last bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(RunningStats, MergeEmptyIntoEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Histogram, QuantileEmptyIsZero) {
  const Histogram h(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, QuantileSingleSample) {
  Histogram h(0.0, 10.0, 10);
  h.add(4.5);  // lands in bucket [4, 5)
  // Every quantile of a one-sample histogram falls inside that bucket.
  for (const double q : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    EXPECT_GE(h.quantile(q), 4.0);
    EXPECT_LE(h.quantile(q), 5.0);
  }
}

TEST(Histogram, QuantileOutOfRangeClamped) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_NEAR(h.quantile(2.0), 100.0, 1.0);
}

TEST(Histogram, MergeSumsBuckets) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.add(1.5);
  b.add(1.5);
  b.add(8.5);
  ASSERT_TRUE(a.merge(b));
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bucket(1), 2u);
  EXPECT_EQ(a.bucket(8), 1u);
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(0.0, 10.0, 10);
  a.add(5.0);
  const Histogram other_bounds(0.0, 20.0, 10);
  const Histogram other_buckets(0.0, 10.0, 20);
  EXPECT_FALSE(a.merge(other_bounds));
  EXPECT_FALSE(a.merge(other_buckets));
  // A failed merge leaves the target untouched.
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.bucket(5), 1u);
}

TEST(Histogram, BucketBounds) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 20.0);
}

TEST(Histogram, LogScaledGeometricEdgesAndClamping) {
  // 4 buckets over [1, 10000]: each edge is 10x the previous.
  Histogram h = Histogram::log_scaled(1.0, 10000.0, 4);
  EXPECT_TRUE(h.log_scale());
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 1.0);
  EXPECT_NEAR(h.bucket_hi(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bucket_lo(3), 1000.0, 1e-6);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 10000.0);
  EXPECT_EQ(h.bucket_index(5.0), 0u);
  EXPECT_EQ(h.bucket_index(50.0), 1u);
  EXPECT_EQ(h.bucket_index(5000.0), 3u);
  // At or below lo clamps into the first bucket — including non-positive
  // values, which have no logarithm; above hi clamps into the last.
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(-3.0), 0u);
  EXPECT_EQ(h.bucket_index(1e9), 3u);
}

TEST(Histogram, BucketIndexPlusAddAtMatchesAdd) {
  // The hot-path split (classify once, add_at into same-layout histograms)
  // must land samples exactly where add() does.
  Histogram a = Histogram::log_scaled(0.01, 1e5, 96);
  Histogram b = Histogram::log_scaled(0.01, 1e5, 96);
  const double samples[] = {0.005, 0.01, 0.7, 1.0, 33.3, 950.0, 2e5};
  for (const double x : samples) {
    a.add(x);
    b.add_at(b.bucket_index(x));
  }
  ASSERT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
  }
}

TEST(Histogram, LogScaledQuantileTracksUpperBucket) {
  Histogram h = Histogram::log_scaled(0.01, 1e5, 96);
  for (int i = 0; i < 99; ++i) h.add(1.0);
  h.add(500.0);
  const double p50 = h.quantile(0.50);
  const double p99 = h.quantile(0.99);
  // Geometric buckets bound relative error: p50 sits in the bucket
  // holding 1.0, the tail quantile in the bucket holding 500.
  EXPECT_GT(p50, 0.8);
  EXPECT_LT(p50, 1.3);
  EXPECT_GT(p99, 1.0);
  EXPECT_LE(h.quantile(1.0), 600.0);
  EXPECT_GT(h.quantile(1.0), 400.0);
}

TEST(Histogram, SubtractInvertsMergeAndRejectsMismatch) {
  Histogram window = Histogram::log_scaled(1.0, 1000.0, 12);
  Histogram expiring = Histogram::log_scaled(1.0, 1000.0, 12);
  window.add(5.0);
  window.add(50.0);
  expiring.add(5.0);
  ASSERT_TRUE(window.merge(expiring));
  EXPECT_EQ(window.count(), 3u);
  ASSERT_TRUE(window.subtract(expiring));
  EXPECT_EQ(window.count(), 2u);
  EXPECT_EQ(window.bucket(window.bucket_index(5.0)), 1u);
  // Scale is part of the layout: a linear histogram with the same bounds
  // and bucket count neither merges nor subtracts.
  Histogram linear(1.0, 1000.0, 12);
  EXPECT_FALSE(window.merge(linear));
  EXPECT_FALSE(window.subtract(linear));
  EXPECT_EQ(window.count(), 2u);
}

TEST(TimeSeries, StatsBetweenWindow) {
  TimeSeries ts;
  ts.add(TimePoint{seconds(1).ns()}, 10.0);
  ts.add(TimePoint{seconds(2).ns()}, 20.0);
  ts.add(TimePoint{seconds(3).ns()}, 30.0);
  const auto s = ts.stats_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(3).ns()});
  EXPECT_EQ(s.count(), 2u);  // [1s, 3s): includes t=1s and t=2s
  EXPECT_DOUBLE_EQ(s.mean(), 15.0);
}

TEST(TimeSeries, BucketizeIncludesEmptyIntervals) {
  TimeSeries ts;
  ts.add(TimePoint{seconds(0).ns() + 1}, 5.0);
  ts.add(TimePoint{seconds(2).ns() + 1}, 7.0);
  const auto buckets = ts.bucketize(seconds(1), TimePoint{seconds(3).ns()});
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_EQ(buckets[1].count, 0u);
  EXPECT_EQ(buckets[2].count, 1u);
  EXPECT_DOUBLE_EQ(buckets[2].mean, 7.0);
}

TEST(TimeSeries, FormatTableHasRowPerBucket) {
  TimeSeries ts;
  ts.add(TimePoint{1}, 1.0);
  const auto buckets = ts.bucketize(seconds(1), TimePoint{seconds(2).ns()});
  const std::string table = format_series_table(buckets, "ms");
  // Header + 2 rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 3);
}

}  // namespace
}  // namespace aqm

// ATR (automated target recognition) demo: real image processing, end to
// end. Generates synthetic 400x250 reconnaissance scenes, ships them as
// binary PPM over the ORB to an image-processing servant, runs the real
// Kirsch / Prewitt / Sobel edge detectors on the pixels, and writes the
// edge maps next to the binary (atr_*.pgm). Also shows a CPU reserve
// protecting the processing pipeline from a competing load, with timing
// from the simulated resource kernel.
#include <array>
#include <iostream>
#include <memory>

#include "common/stats.hpp"
#include "core/cpu_reservation_manager.hpp"
#include "core/testbed.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/ppm.hpp"
#include "imgproc/synth.hpp"
#include "orb/orb.hpp"
#include "os/load_generator.hpp"

int main() {
  using namespace aqm;

  // --- real pixel processing first -----------------------------------------------
  std::cout << "generating a 400x250 synthetic reconnaissance scene...\n";
  const img::RgbImage scene = img::make_paper_scene(2026);
  img::write_ppm_file("atr_scene.ppm", scene);
  const img::GrayImage gray = scene.to_gray();

  constexpr std::array<img::EdgeAlgorithm, 3> algorithms = {
      img::EdgeAlgorithm::Kirsch, img::EdgeAlgorithm::Prewitt, img::EdgeAlgorithm::Sobel};
  for (const auto a : algorithms) {
    const img::GrayImage edges = img::run_edge(a, gray);
    const img::GrayImage binary = img::threshold(edges, 96);
    int pixels_on = 0;
    for (const auto v : binary.data()) pixels_on += v > 0 ? 1 : 0;
    const std::string path = std::string("atr_") + img::to_string(a) + ".pgm";
    img::write_pgm_file(path, edges);
    std::cout << "  " << img::to_string(a) << ": " << pixels_on
              << " edge pixels above threshold -> " << path << "\n";
  }

  // --- then the middleware + resource-kernel side ---------------------------------
  std::cout << "\nsimulated client -> ATR server run (20 images, with competing "
               "CPU load, then with a reserve):\n";
  for (const bool with_reserve : {false, true}) {
    core::AtrTestbedParams params;
    params.server_cpu.reserve_utilization_cap = 0.95;
    core::AtrTestbed bed(params);

    orb::Poa& mgmt = bed.server_orb.create_poa("mgmt");
    core::CpuReservationManagerServer manager(mgmt, bed.server_cpu);
    core::CpuReservationClient reserve_client(bed.client_orb, manager.ref());
    os::ReserveId reserve = os::kNoReserve;
    if (with_reserve) {
      reserve_client.create_reserve({microseconds(47'500), milliseconds(50), true},
                                    [&](Result<os::ReserveId> r) {
                                      if (r.ok()) reserve = r.value();
                                    });
      bed.engine.run_until(bed.engine.now() + seconds(1));
    }

    os::LoadGenerator::Config load_cfg;
    load_cfg.priority = 100;
    load_cfg.burst_mean = milliseconds(20);
    load_cfg.interval_mean = milliseconds(50);
    os::LoadGenerator load(bed.engine, bed.server_cpu, load_cfg);
    load.start();

    RunningStats per_image_ms;
    orb::Poa& atr_poa = bed.server_orb.create_poa("atr");
    int remaining = 20;
    std::function<void()> send_next;
    auto servant = std::make_shared<orb::FunctionServant>(
        milliseconds(2), [&](orb::ServerRequest& req) {
          const img::RgbImage received = img::decode_ppm(req.body);
          const TimePoint begin = bed.engine.now();
          // Sequence the three detectors on the simulated CPU.
          const std::size_t pixels = received.to_gray().pixel_count();
          Duration total = Duration::zero();
          for (const auto a : algorithms) {
            total += img::estimated_cost(a, pixels, bed.server_cpu.hz());
          }
          bed.server_cpu.submit_for(total, 100,
                                    [&, begin] {
                                      per_image_ms.add((bed.engine.now() - begin).millis());
                                      send_next();
                                    },
                                    reserve);
        });
    const orb::ObjectRef atr_ref = atr_poa.activate_object("processor", servant);
    orb::ObjectStub stub(bed.client_orb, atr_ref);
    std::uint64_t seed = 1;
    send_next = [&] {
      if (remaining-- <= 0) return;
      stub.oneway("process_image", img::encode_ppm(img::make_paper_scene(seed++)));
    };
    send_next();
    bed.engine.run_until(bed.engine.now() + seconds(60));
    load.stop();

    std::cout << "  " << (with_reserve ? "with 95% CPU reserve" : "no reserve       ")
              << ": " << per_image_ms.count() << " images, mean "
              << per_image_ms.mean() << " ms/image, stddev " << per_image_ms.stddev()
              << " ms\n";
  }
  std::cout << "\n(the reserve shields the ATR pipeline from the competing load)\n";
  return 0;
}

// The paper's Figure 3 application in miniature: a three-stage pipeline
//
//   UAV (video source) --2 Mbps wireless--> distributor --LAN--> display
//                                                     \--LAN--> ATR host
//
// The distributor fans each frame out to a human display (wants smooth
// video) and an ATR image processor (slow; wants I-frames only). A QuO
// contract on the UAV watches the delivery ratio reported by the
// distributor and filters the wireless uplink down to 10/2 fps when the
// wireless link degrades (a competing transmitter appears mid-run).
#include <iostream>
#include <memory>

#include "avstreams/stream.hpp"
#include "media/frame_filter.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"
#include "net/traffic_gen.hpp"
#include "orb/cdr.hpp"
#include "orb/orb.hpp"
#include "quo/contract.hpp"
#include "quo/syscond.hpp"

int main() {
  using namespace aqm;

  // --- topology -------------------------------------------------------------
  sim::Engine engine;
  net::Network network(engine);
  const auto uav = network.add_node("uav");
  const auto dist = network.add_node("distributor");
  const auto display = network.add_node("display");
  const auto atr = network.add_node("atr");
  const auto jammer = network.add_node("competing-tx");

  net::LinkConfig wireless;
  wireless.bandwidth_bps = 2e6;  // constrained air link
  wireless.propagation = milliseconds(2);
  net::LinkConfig lan;
  lan.bandwidth_bps = 100e6;
  lan.propagation = microseconds(100);
  network.add_duplex_link(uav, dist, wireless);
  network.add_duplex_link(jammer, uav, lan);  // shares the uav->dist uplink? no:
  // the competing transmitter routes through the uav's radio to dist,
  // contending on the same 2 Mbps wireless segment.
  network.add_duplex_link(dist, display, lan);
  network.add_duplex_link(dist, atr, lan);

  os::Cpu uav_cpu(engine, "uav-cpu");
  os::Cpu dist_cpu(engine, "dist-cpu");
  os::Cpu display_cpu(engine, "display-cpu");
  os::Cpu atr_cpu(engine, "atr-cpu");

  orb::OrbEndpoint uav_orb(network, uav, uav_cpu);
  orb::OrbEndpoint dist_orb(network, dist, dist_cpu);
  orb::OrbEndpoint display_orb(network, display, display_cpu);
  orb::OrbEndpoint atr_orb(network, atr, atr_cpu);

  const media::GopStructure gop = media::GopStructure::mpeg1_paper_profile();

  // --- stage 3: consumers ------------------------------------------------------
  media::VideoSinkStats display_stats(engine, gop);
  orb::Poa& display_poa = display_orb.create_poa("video");
  av::VideoSinkEndpoint display_sink(
      display_poa, "screen", microseconds(300),
      [&](const media::VideoFrame& f) { display_stats.on_received(f); });

  media::VideoSinkStats atr_stats(engine, gop);
  orb::Poa& atr_poa = atr_orb.create_poa("video");
  av::VideoSinkEndpoint atr_sink(atr_poa, "processor", milliseconds(130),  // edge detection
                                 [&](const media::VideoFrame& f) {
                                   atr_stats.on_received(f);
                                 });

  // --- stage 2: distributor fans out + reports upstream ------------------------
  av::StreamBinding to_display(dist_orb, display_sink.ref(), 401);
  av::StreamBinding to_atr(dist_orb, atr_sink.ref(), 402);
  media::FrameFilter atr_branch_filter(media::FilterLevel::IOnly);  // ATR wants I-frames

  std::uint64_t dist_received = 0;
  orb::Poa& dist_poa = dist_orb.create_poa("video");
  av::VideoSinkEndpoint dist_in(dist_poa, "relay", microseconds(200),
                                [&](const media::VideoFrame& f) {
                                  ++dist_received;
                                  to_display.push(f);
                                  if (atr_branch_filter.filter(f)) to_atr.push(f);
                                });

  // --- stage 1: UAV source with QuO adaptation ---------------------------------
  av::StreamBinding uplink(uav_orb, dist_in.ref(), 400);
  media::FrameFilter uplink_filter(media::FilterLevel::Full);
  media::VideoSinkStats uav_stats(engine, gop);
  media::VideoSource camera(engine, gop, 30.0, [&](const media::VideoFrame& f) {
    uav_stats.on_source(f);
    if (!uplink_filter.filter(f)) return;
    uav_stats.on_transmitted(f);
    uplink.push(f);
  });

  // QuO wiring: the distributor reports its received count every 500 ms on
  // a control channel; a ValueSysCond holds the measured delivery ratio; a
  // contract drives the uplink filter level.
  quo::ValueSysCond ratio("uplink-delivery-ratio", 1.0);
  // Hysteresis: upgrades need a sustained clean streak, otherwise the
  // contract would bounce off the congested link every report period.
  quo::ValueSysCond clean_streak("clean-reports", 100.0);
  quo::Contract contract(engine, "uplink-quality");
  contract
      .add_region("full-rate",
                  [&] { return ratio.value() >= 0.92 && clean_streak.value() >= 8.0; })
      .add_region("degraded",
                  [&] { return ratio.value() >= 0.25 && clean_streak.value() >= 2.0; })
      .add_region("minimal", nullptr)
      .observe(ratio);
  contract.on_enter("full-rate", [&] {
    uplink_filter.set_level(media::FilterLevel::Full);
    std::cout << "  [QuO " << engine.now().seconds() << "s] region full-rate -> 30 fps\n";
  });
  contract.on_enter("degraded", [&] {
    uplink_filter.set_level(media::FilterLevel::IpOnly);
    std::cout << "  [QuO " << engine.now().seconds() << "s] region degraded -> 10 fps\n";
  });
  contract.on_enter("minimal", [&] {
    uplink_filter.set_level(media::FilterLevel::IOnly);
    std::cout << "  [QuO " << engine.now().seconds() << "s] region minimal -> 2 fps\n";
  });
  contract.eval();

  orb::Poa& uav_ctl = uav_orb.create_poa("ctl");
  std::uint64_t last_rx = 0;
  std::uint64_t last_tx = 0;
  auto status_servant = std::make_shared<orb::FunctionServant>(
      microseconds(20), [&](orb::ServerRequest& req) {
        orb::CdrReader r(req.body);
        const std::uint64_t rx_total = r.read_u64();
        const std::uint64_t tx_total = uav_stats.transmitted_count();
        const auto dtx = tx_total - last_tx;
        const auto drx = rx_total - last_rx;
        last_tx = tx_total;
        last_rx = rx_total;
        if (dtx > 0) {
          const double r = static_cast<double>(drx) / static_cast<double>(dtx);
          clean_streak.set(r >= 0.92 ? clean_streak.value() + 1.0 : 0.0);
          ratio.set(r);
          contract.eval();
        }
      });
  const orb::ObjectRef status_ref = uav_ctl.activate_object("status", status_servant);
  orb::ObjectStub status_stub(dist_orb, status_ref);
  sim::PeriodicTimer status_timer(engine, milliseconds(500), [&] {
    orb::CdrWriter w;
    w.write_u64(dist_received);
    status_stub.oneway("status_report", w.take());
  });

  // --- the mission -----------------------------------------------------------
  // A competing transmitter floods the wireless segment from t=10s to 25s.
  net::TrafficGenerator::Config jam;
  jam.src = jammer;
  jam.dst = dist;
  jam.rate_bps = 6e6;  // 3x the air link
  jam.flow = 999;
  net::TrafficGenerator jammer_gen(network, jam);
  // Competing traffic must cross the same uav->dist radio.
  // (Topology above routes jammer->uav->dist.)

  std::cout << "UAV pipeline: 30 fps MPEG-1 over a 2 Mbps air link; jammer active "
               "10s-25s\n";
  camera.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(40).ns()});
  status_timer.start();
  jammer_gen.run_between(TimePoint{seconds(10).ns()}, TimePoint{seconds(25).ns()});
  engine.run_until(TimePoint{seconds(42).ns()});
  status_timer.stop();

  // --- report ------------------------------------------------------------------
  const auto lat = display_stats.latency_series().stats();
  std::cout << "\nresults:\n"
            << "  camera frames        : " << uav_stats.source_count() << "\n"
            << "  uplink transmitted   : " << uav_stats.transmitted_count() << "\n"
            << "  display received     : " << display_stats.received_count()
            << " (decodable " << display_stats.decodable_count() << ")\n"
            << "  display mean latency : " << lat.mean() << " ms (max " << lat.max()
            << ")\n"
            << "  ATR received         : " << atr_stats.received_count()
            << " I-frames (" << atr_stats.received_of(media::FrameType::I) << ")\n"
            << "  QuO transitions      : " << contract.transition_count() << "\n";
  return 0;
}

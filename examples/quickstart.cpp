// Quickstart: two simulated hosts, an RT-CORBA style ORB on each, one
// servant, a prioritized twoway call, and a look at what the RT machinery
// did (priority propagation, mapping, DSCP marking) — then a custom
// portable interceptor riding the invocation pipeline, and a
// deadline-bounded call with automatic retry.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "net/network.hpp"
#include "orb/interceptor.hpp"
#include "orb/orb.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aqm;

// A custom client interceptor: every invocation crosses the pipeline, so
// this sees (and could rewrite) the QoS decision in `establish`, and
// stamps its own GIOP service context in `send_request` — without any
// change to the call sites. User client interceptors run BEFORE the
// built-ins, so a priority rewritten here would still be mapped, stamped,
// and DSCP-marked by them.
class AuditInterceptor final : public orb::ClientRequestInterceptor {
 public:
  static constexpr std::uint32_t kContextId = 0x41554454;  // "AUDT"

  [[nodiscard]] const char* name() const override { return "app.audit"; }

  orb::InterceptStatus establish(orb::ClientRequestContext& ctx) override {
    std::cout << "  [audit] establish '" << *ctx.operation << "' priority "
              << ctx.priority << " attempt " << ctx.attempt << "\n";
    return {};  // returning veto(CompletionStatus::...) would reject pre-cost
  }

  orb::InterceptStatus send_request(orb::ClientRequestContext& ctx) override {
    ctx.contexts->push_back({kContextId, {static_cast<std::uint8_t>(ctx.attempt)}});
    return {};
  }

  void receive_reply(orb::ClientRequestContext& ctx) override {
    std::cout << "  [audit] reply for request " << ctx.request_id << ": "
              << orb::to_string(ctx.status) << "\n";
  }
};

// The matching server half observes the fully resolved request (user
// server interceptors run AFTER the built-ins) and reads the custom
// context back off the wire.
class AuditServerInterceptor final : public orb::ServerRequestInterceptor {
 public:
  [[nodiscard]] const char* name() const override { return "app.audit"; }

  orb::InterceptStatus receive_request(orb::ServerRequestContext& ctx) override {
    for (const orb::ServiceContext& sc : *ctx.contexts) {
      if (sc.id == AuditInterceptor::kContextId) {
        std::cout << "  [audit] server saw attempt " << int{sc.data.at(0)}
                  << " at resolved priority " << ctx.priority << "\n";
      }
    }
    return {};
  }
};

}  // namespace

int main() {
  using namespace aqm;

  // --- substrate: one engine, two hosts, one link ------------------------------
  sim::Engine engine;
  net::Network network(engine);
  const net::NodeId client_node = network.add_node("client-host");
  const net::NodeId server_node = network.add_node("server-host");
  net::LinkConfig link;
  link.bandwidth_bps = 100e6;           // 100 Mbps
  link.propagation = microseconds(200);  // campus LAN
  network.add_duplex_link(client_node, server_node, link);

  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");

  // --- ORBs --------------------------------------------------------------------
  orb::OrbEndpoint client(network, client_node, client_cpu);
  orb::OrbEndpoint server(network, server_node, server_cpu);

  // Map CORBA priorities onto DiffServ codepoints (the paper's TAO
  // enhancement); default mapping would leave everything best-effort.
  client.dscp_mappings().install(std::make_unique<orb::rt::BandedDscpMapping>());

  // --- a servant ------------------------------------------------------------------
  orb::PoaPolicies policies;
  policies.priority_model = orb::PriorityModel::ClientPropagated;
  orb::Poa& poa = server.create_poa("demo", policies);
  auto servant = std::make_shared<orb::FunctionServant>(
      milliseconds(2),  // simulated CPU cost of handling the request
      [&](orb::ServerRequest& req) {
        std::cout << "[server " << engine.now().millis() << "ms] '" << req.operation
                  << "' handled at CORBA priority " << req.priority
                  << " (native " << server.priority_mappings().to_native(req.priority)
                  << ")\n";
        req.reply_body = {'p', 'o', 'n', 'g'};
      });
  const orb::ObjectRef ref = poa.activate_object("greeter", std::move(servant));
  std::cout << "activated object key '" << ref.object_key << "' on node "
            << network.node_name(ref.node) << "\n";

  // --- a prioritized client call -----------------------------------------------
  client.set_client_priority(30'000);  // RTCurrent: high RT-CORBA priority
  std::cout << "client DSCP for priority 30000: "
            << static_cast<int>(client.dscp_mappings().to_dscp(30'000))
            << " (46 = Expedited Forwarding)\n";

  orb::ObjectStub stub(client, ref);
  stub.twoway("ping", {'p', 'i', 'n', 'g'},
              [&](orb::CompletionStatus status, std::vector<std::uint8_t> body) {
                std::cout << "[client " << engine.now().millis() << "ms] reply: "
                          << orb::to_string(status) << " '"
                          << std::string(body.begin(), body.end()) << "'\n";
              });

  engine.run();

  // --- the invocation pipeline, extended ----------------------------------------
  std::cout << "\ncustom interceptors on the invocation pipeline:\n";
  client.add_client_interceptor(std::make_unique<AuditInterceptor>());
  server.add_server_interceptor(std::make_unique<AuditServerInterceptor>());

  // Deadline + retry ride the same pipeline: the deadline travels in a
  // service context and the server drops expired requests pre-dispatch;
  // a timeout re-issues the call with exponential backoff.
  stub.set_deadline(milliseconds(50));
  stub.set_retry({3, milliseconds(10), 2.0});
  stub.twoway("ping", {'p', 'i', 'n', 'g'},
              [&](orb::CompletionStatus status, std::vector<std::uint8_t> body) {
                std::cout << "[client " << engine.now().millis()
                          << "ms] deadline-bounded reply: " << orb::to_string(status)
                          << " '" << std::string(body.begin(), body.end()) << "'\n";
              });
  engine.run();
  std::cout << "done at t=" << engine.now().millis() << "ms; client sent "
            << client.stats().requests_sent << " request(s), server dispatched "
            << server.stats().requests_dispatched << "\n";
  return 0;
}

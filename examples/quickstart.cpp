// Quickstart: two simulated hosts, an RT-CORBA style ORB on each, one
// servant, a prioritized twoway call, and a look at what the RT machinery
// did (priority propagation, mapping, DSCP marking).
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <memory>

#include "net/network.hpp"
#include "orb/orb.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aqm;

  // --- substrate: one engine, two hosts, one link ------------------------------
  sim::Engine engine;
  net::Network network(engine);
  const net::NodeId client_node = network.add_node("client-host");
  const net::NodeId server_node = network.add_node("server-host");
  net::LinkConfig link;
  link.bandwidth_bps = 100e6;           // 100 Mbps
  link.propagation = microseconds(200);  // campus LAN
  network.add_duplex_link(client_node, server_node, link);

  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");

  // --- ORBs --------------------------------------------------------------------
  orb::OrbEndpoint client(network, client_node, client_cpu);
  orb::OrbEndpoint server(network, server_node, server_cpu);

  // Map CORBA priorities onto DiffServ codepoints (the paper's TAO
  // enhancement); default mapping would leave everything best-effort.
  client.dscp_mappings().install(std::make_unique<orb::rt::BandedDscpMapping>());

  // --- a servant ------------------------------------------------------------------
  orb::PoaPolicies policies;
  policies.priority_model = orb::PriorityModel::ClientPropagated;
  orb::Poa& poa = server.create_poa("demo", policies);
  auto servant = std::make_shared<orb::FunctionServant>(
      milliseconds(2),  // simulated CPU cost of handling the request
      [&](orb::ServerRequest& req) {
        std::cout << "[server " << engine.now().millis() << "ms] '" << req.operation
                  << "' handled at CORBA priority " << req.priority
                  << " (native " << server.priority_mappings().to_native(req.priority)
                  << ")\n";
        req.reply_body = {'p', 'o', 'n', 'g'};
      });
  const orb::ObjectRef ref = poa.activate_object("greeter", std::move(servant));
  std::cout << "activated object key '" << ref.object_key << "' on node "
            << network.node_name(ref.node) << "\n";

  // --- a prioritized client call -----------------------------------------------
  client.set_client_priority(30'000);  // RTCurrent: high RT-CORBA priority
  std::cout << "client DSCP for priority 30000: "
            << static_cast<int>(client.dscp_mappings().to_dscp(30'000))
            << " (46 = Expedited Forwarding)\n";

  orb::ObjectStub stub(client, ref);
  stub.twoway("ping", {'p', 'i', 'n', 'g'},
              [&](orb::CompletionStatus status, std::vector<std::uint8_t> body) {
                std::cout << "[client " << engine.now().millis() << "ms] reply: "
                          << orb::to_string(status) << " '"
                          << std::string(body.begin(), body.end()) << "'\n";
              });

  engine.run();
  std::cout << "done at t=" << engine.now().millis() << "ms; client sent "
            << client.stats().requests_sent << " request(s), server dispatched "
            << server.stats().requests_dispatched << "\n";
  return 0;
}

// A remote-sensor network built from the middleware services: the naming
// service bootstraps discovery, the real-time event channel decouples
// sensor suppliers from consumers, and the global scheduling service
// assigns CORBA priorities from declared timing requirements (periods) so
// nobody hand-picks priority numbers.
//
//   uav1, uav2  --events-->  ops-center (naming + event channel)
//                                 |--> control station (all telemetry)
//                                 '--> threat console (detections only)
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "core/scheduling_service.hpp"
#include "cos/events.hpp"
#include "cos/naming.hpp"
#include "net/network.hpp"
#include "orb/cdr.hpp"
#include "orb/orb.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace aqm;

  // --- hosts ------------------------------------------------------------------
  sim::Engine engine;
  net::Network network(engine);
  const auto ops = network.add_node("ops-center");
  const auto uav1 = network.add_node("uav1");
  const auto uav2 = network.add_node("uav2");
  const auto station = network.add_node("control-station");
  net::LinkConfig link;
  link.bandwidth_bps = 10e6;
  link.propagation = milliseconds(2);
  for (const auto n : {uav1, uav2, station}) network.add_duplex_link(ops, n, link);

  os::Cpu ops_cpu(engine, "ops-cpu");
  os::Cpu uav1_cpu(engine, "uav1-cpu");
  os::Cpu uav2_cpu(engine, "uav2-cpu");
  os::Cpu station_cpu(engine, "station-cpu");
  orb::OrbEndpoint ops_orb(network, ops, ops_cpu);
  orb::OrbEndpoint uav1_orb(network, uav1, uav1_cpu);
  orb::OrbEndpoint uav2_orb(network, uav2, uav2_cpu);
  orb::OrbEndpoint station_orb(network, station, station_cpu);

  // --- middleware services on the ops center -----------------------------------
  orb::Poa& cos_poa = ops_orb.create_poa("cos");
  cos::NamingServiceServer naming(cos_poa);
  cos::EventChannel channel(ops_orb, cos_poa);
  if (!naming.bind("services/events", channel.ref()).ok()) return 1;

  // --- the scheduling service decides priorities --------------------------------
  core::SchedulingService scheduler;
  scheduler.declare({"threat-detection", milliseconds(100), milliseconds(5), 10});
  scheduler.declare({"telemetry", seconds(1), milliseconds(20), 0});
  if (const auto status = scheduler.assign(); !status.ok()) {
    std::cerr << "scheduling failed: " << status.error() << "\n";
    return 1;
  }
  const orb::CorbaPriority detection_prio = *scheduler.priority_of("threat-detection");
  const orb::CorbaPriority telemetry_prio = *scheduler.priority_of("telemetry");
  std::cout << "scheduling service (rate-monotonic): threat-detection -> "
            << detection_prio << ", telemetry -> " << telemetry_prio
            << " (utilization " << scheduler.total_utilization() << ")\n";

  // --- consumers discover the channel through the naming service ----------------
  int station_events = 0;
  orb::Poa& station_poa = station_orb.create_poa("app");
  cos::EventConsumer telemetry_console(station_poa, "telemetry", microseconds(200),
                                       [&](const cos::Event&) { ++station_events; });
  int threats = 0;
  cos::EventConsumer threat_console(
      station_poa, "threats", microseconds(100), [&](const cos::Event& e) {
        ++threats;
        orb::CdrReader r(e.payload);
        std::cout << "  [threat " << engine.now().seconds() << "s] " << e.topic
                  << " confidence " << r.read_f64() << " (priority " << e.priority
                  << ")\n";
      });

  cos::NamingClient resolver(station_orb, naming.ref());
  resolver.resolve("services/events", [&](Result<orb::ObjectRef> r) {
    if (!r.ok()) return;
    telemetry_console.subscribe(station_orb, r.value(), "sensors/");
    threat_console.subscribe(station_orb, r.value(), "sensors/detections/");
  });

  // --- suppliers ----------------------------------------------------------------
  cos::EventSupplier uav1_supplier(uav1_orb, channel.ref());
  cos::EventSupplier uav2_supplier(uav2_orb, channel.ref());
  Rng rng(2026);

  sim::PeriodicTimer uav1_telemetry(engine, seconds(1), [&] {
    uav1_supplier.push("sensors/telemetry/uav1", telemetry_prio);
  });
  sim::PeriodicTimer uav2_telemetry(engine, seconds(1), [&] {
    uav2_supplier.push("sensors/telemetry/uav2", telemetry_prio);
  });
  sim::PeriodicTimer detector(engine, milliseconds(100), [&] {
    // Occasionally the ATR pipeline flags something.
    if (!rng.bernoulli(0.02)) return;
    orb::CdrWriter w;
    w.write_f64(rng.uniform(0.6, 0.99));
    uav1_supplier.push("sensors/detections/uav1", detection_prio, w.take());
  });

  uav1_telemetry.start();
  uav2_telemetry.start();
  detector.start();
  engine.run_until(TimePoint{seconds(30).ns()});
  uav1_telemetry.stop();
  uav2_telemetry.stop();
  detector.stop();
  engine.run_until(TimePoint{seconds(31).ns()});

  std::cout << "\nafter 30s:\n"
            << "  events published      : " << channel.events_published() << "\n"
            << "  deliveries            : " << channel.deliveries() << "\n"
            << "  station telemetry     : " << station_events << " events\n"
            << "  threat console        : " << threats << " detections\n"
            << "  names bound           : " << naming.size() << "\n";
  return 0;
}

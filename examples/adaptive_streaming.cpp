// Adaptive streaming demo: the reservation experiment as an interactive
// story. Streams MPEG-1 video across the 10 Mbps bottleneck; at t=20s a
// 43.8 Mbps load appears. A QuO contract watches the delivery ratio and
// the middleware reacts twice:
//   1. immediately: filter frames down to what the partial reservation
//      carries (data shaping), and
//   2. at t=40s: the application upgrades its reservation to full rate via
//      RSVP, after which the contract returns the stream to 30 fps even
//      though the load is still there.
#include <iostream>
#include <memory>

#include "avstreams/stream.hpp"
#include "core/testbed.hpp"
#include "media/frame_filter.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"
#include "orb/cdr.hpp"
#include "quo/contract.hpp"
#include "quo/syscond.hpp"

int main() {
  using namespace aqm;

  core::ReservationTestbed bed((core::ReservationTestbedParams{}));
  const media::GopStructure gop = media::GopStructure::mpeg1_paper_profile();

  media::VideoSinkStats stats(bed.engine, gop);
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  av::VideoSinkEndpoint sink(poa, "display", microseconds(400),
                             [&](const media::VideoFrame& f) { stats.on_received(f); });
  av::StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);

  media::FrameFilter filter(media::FilterLevel::Full);
  media::VideoSource source(bed.engine, gop, 30.0, [&](const media::VideoFrame& f) {
    stats.on_source(f);
    if (!filter.filter(f)) return;
    stats.on_transmitted(f);
    binding.push(f);
  });

  // QuO contract on the measured delivery ratio.
  quo::ValueSysCond ratio("delivery-ratio", 1.0);
  quo::ValueSysCond reserved_kbps("reserved-kbps", 730.0);
  quo::Contract contract(bed.engine, "stream-quality");
  contract
      .add_region("clean", [&] { return ratio.value() >= 0.92; })
      .add_region("shape-to-reservation", nullptr)
      .observe(ratio)
      .observe(reserved_kbps);
  contract.on_enter("shape-to-reservation", [&] {
    const auto level = reserved_kbps.value() >= 650.0 ? media::FilterLevel::IpOnly
                                                      : media::FilterLevel::IOnly;
    filter.set_level(level);
    std::cout << "  [QuO " << bed.engine.now().seconds() << "s] loss detected -> "
              << media::to_string(level) << "\n";
  });
  auto restore_full_rate = [&] {
    if (reserved_kbps.value() >= 1200.0 &&
        filter.level() != media::FilterLevel::Full) {
      filter.set_level(media::FilterLevel::Full);
      std::cout << "  [QuO " << bed.engine.now().seconds()
                << "s] clean + full reservation -> full-30fps\n";
    }
  };
  contract.on_enter("clean", restore_full_rate);
  // A reservation change while already "clean" does not transition the
  // region, so re-apply the level whenever the reservation knob moves.
  reserved_kbps.subscribe([&] {
    if (contract.current_region() == "clean") restore_full_rate();
  });
  contract.eval();

  // Receiver-side delivery reports every 500 ms.
  std::uint64_t last_rx = 0;
  std::uint64_t last_tx = 0;
  sim::PeriodicTimer reporter(bed.engine, milliseconds(500), [&] {
    const auto rx = stats.received_count();
    const auto tx = stats.transmitted_count();
    if (tx > last_tx) {
      ratio.set(static_cast<double>(rx - last_rx) / static_cast<double>(tx - last_tx));
    }
    last_rx = rx;
    last_tx = tx;
  });

  // Initial partial reservation.
  binding.reserve(bed.qos.agent(bed.sender_node), net::FlowSpec{730e3, 40'000},
                  [&](Status<std::string> s) {
                    std::cout << "  [RSVP " << bed.engine.now().seconds()
                              << "s] partial reservation (730 kbps wire-rate): "
                              << (s.ok() ? "granted" : s.error()) << "\n";
                  });

  // t=40s: the application asks for a full-rate reservation (modify).
  bed.engine.at(TimePoint{seconds(40).ns()}, [&] {
    binding.reserve(bed.qos.agent(bed.sender_node), net::FlowSpec{1.3e6, 40'000},
                    [&](Status<std::string> s) {
                      std::cout << "  [RSVP " << bed.engine.now().seconds()
                                << "s] upgrade to full reservation: "
                                << (s.ok() ? "granted" : s.error()) << "\n";
                      if (s.ok()) reserved_kbps.set(1300.0);
                    });
  });

  std::cout << "adaptive stream: video 0-60s, 43.8 Mbps load from 20s on\n";
  source.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(61).ns()});
  reporter.start();
  bed.load_traffic->run_between(TimePoint{seconds(20).ns()}, TimePoint{seconds(61).ns()});
  bed.engine.run_until(TimePoint{seconds(63).ns()});
  reporter.stop();

  const auto lat = stats.latency_series().stats();
  std::cout << "\nresults:\n"
            << "  frames sourced/transmitted/received : " << stats.source_count() << " / "
            << stats.transmitted_count() << " / " << stats.received_count() << "\n"
            << "  decodable                           : " << stats.decodable_count() << "\n"
            << "  latency mean/max                    : " << lat.mean() << " / "
            << lat.max() << " ms\n"
            << "  contract transitions                : " << contract.transition_count()
            << "\n";
  return 0;
}

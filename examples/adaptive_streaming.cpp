// Adaptive streaming demo: the reservation experiment as an interactive
// story. Streams MPEG-1 video across the 10 Mbps bottleneck; at t=20s a
// 43.8 Mbps load appears. A QuO contract watches the delivery ratio and
// the middleware reacts twice:
//   1. immediately: filter frames down to what the partial reservation
//      carries (data shaping), and
//   2. at t=40s: the application upgrades its reservation to full rate via
//      RSVP, after which the contract returns the stream to 30 fps even
//      though the load is still there.
// Pass --trace FILE to capture the whole run as Chrome trace-event JSON
// (load in Perfetto): ORB call spans chain through per-hop link/queue
// events to the server dispatch and the QuO region transitions they cause.
// Pass --metrics FILE for the run's metrics sidecar. Pass --slo FILE to
// put the video flow under a drop-rate SLO: the 20s load breaches it, and
// the contract's immediate frame filtering (reaction 1) sheds enough load
// that the SLO recovers within ~1s — one breach/recovery pair in the
// health-event sidecar; --flight FILE writes the flight-recorder dumps
// cut at each breach.
#include <iostream>
#include <memory>
#include <vector>

#include "avstreams/stream.hpp"
#include "core/experiment.hpp"
#include "core/testbed.hpp"
#include "media/frame_filter.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"
#include "net/flow_monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "orb/cdr.hpp"
#include "quo/contract.hpp"
#include "quo/syscond.hpp"

int main(int argc, char** argv) {
  using namespace aqm;

  const auto opts = core::parse_experiment_options(argc, argv);

  core::ReservationTestbed bed((core::ReservationTestbedParams{}));
  const media::GopStructure gop = media::GopStructure::mpeg1_paper_profile();

  obs::TraceRecorder tracer;
  if (!opts.trace_path.empty()) bed.engine.set_tracer(&tracer);

  // Telemetry: the video flow runs under a drop-rate SLO. With full
  // tracing off, the hub's lossy flight ring doubles as the engine tracer
  // so breach dumps still have events to cut.
  const bool telemetry = !opts.slo_path.empty() || !opts.flight_path.empty();
  obs::TelemetryHub hub;
  if (telemetry) {
    bed.engine.set_telemetry(&hub);
    if (!opts.trace_path.empty()) {
      hub.set_dump_source(&tracer);
    } else {
      bed.engine.set_tracer(&hub.flight());
    }
    obs::SloSpec slo;
    slo.max_drop_rate = 0.05;
    hub.set_slo(core::kFlowVideo, slo);
  }

  // Receiver-side per-flow accounting (jitter, inter-arrival, drops) goes
  // through registry names via the FlowMonitor tap, not ad-hoc prints.
  net::FlowMonitor monitor(bed.network, bed.receiver_node);

  media::VideoSinkStats stats(bed.engine, gop);
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  av::VideoSinkEndpoint sink(poa, "display", microseconds(400),
                             [&](const media::VideoFrame& f) { stats.on_received(f); });
  av::StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);

  media::FrameFilter filter(media::FilterLevel::Full);
  media::VideoSource source(bed.engine, gop, 30.0, [&](const media::VideoFrame& f) {
    stats.on_source(f);
    if (!filter.filter(f)) return;
    stats.on_transmitted(f);
    binding.push(f);
  });

  // QuO contract on the measured delivery ratio.
  quo::ValueSysCond ratio("delivery-ratio", 1.0);
  quo::ValueSysCond reserved_kbps("reserved-kbps", 730.0);
  quo::Contract contract(bed.engine, "stream-quality");
  contract
      .add_region("clean", [&] { return ratio.value() >= 0.92; })
      .add_region("shape-to-reservation", nullptr)
      .observe(ratio)
      .observe(reserved_kbps);
  contract.on_enter("shape-to-reservation", [&] {
    const auto level = reserved_kbps.value() >= 650.0 ? media::FilterLevel::IpOnly
                                                      : media::FilterLevel::IOnly;
    filter.set_level(level);
    std::cout << "  [QuO " << bed.engine.now().seconds() << "s] loss detected -> "
              << media::to_string(level) << "\n";
  });
  auto restore_full_rate = [&] {
    if (reserved_kbps.value() >= 1200.0 &&
        filter.level() != media::FilterLevel::Full) {
      filter.set_level(media::FilterLevel::Full);
      std::cout << "  [QuO " << bed.engine.now().seconds()
                << "s] clean + full reservation -> full-30fps\n";
    }
  };
  contract.on_enter("clean", restore_full_rate);
  // A reservation change while already "clean" does not transition the
  // region, so re-apply the level whenever the reservation knob moves.
  reserved_kbps.subscribe([&] {
    if (contract.current_region() == "clean") restore_full_rate();
  });
  contract.eval();

  // Receiver-side delivery reports every 500 ms.
  std::uint64_t last_rx = 0;
  std::uint64_t last_tx = 0;
  sim::PeriodicTimer reporter(bed.engine, milliseconds(500), [&] {
    const auto rx = stats.received_count();
    const auto tx = stats.transmitted_count();
    if (tx > last_tx) {
      // Chain the measurement (and any contract transition it triggers) to
      // the most recently dispatched frame — the request whose delivery
      // tipped the ratio — so the causal trace runs client send -> per-hop
      // network -> server dispatch -> QuO reaction.
      obs::TraceRecorder* tr = bed.engine.tracer();
      if (tr != nullptr) tr->set_current(bed.receiver_orb.last_dispatch_trace());
      ratio.set(static_cast<double>(rx - last_rx) / static_cast<double>(tx - last_tx));
      if (tr != nullptr) tr->set_current(0);
    }
    last_rx = rx;
    last_tx = tx;
  });

  // Initial partial reservation.
  binding.reserve(bed.qos.agent(bed.sender_node), net::FlowSpec{730e3, 40'000},
                  [&](Status<std::string> s) {
                    std::cout << "  [RSVP " << bed.engine.now().seconds()
                              << "s] partial reservation (730 kbps wire-rate): "
                              << (s.ok() ? "granted" : s.error()) << "\n";
                  });

  // t=40s: the application asks for a full-rate reservation (modify).
  bed.engine.at(TimePoint{seconds(40).ns()}, [&] {
    binding.reserve(bed.qos.agent(bed.sender_node), net::FlowSpec{1.3e6, 40'000},
                    [&](Status<std::string> s) {
                      std::cout << "  [RSVP " << bed.engine.now().seconds()
                                << "s] upgrade to full reservation: "
                                << (s.ok() ? "granted" : s.error()) << "\n";
                      if (s.ok()) reserved_kbps.set(1300.0);
                    });
  });

  std::cout << "adaptive stream: video 0-60s, 43.8 Mbps load from 20s on\n";
  source.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(61).ns()});
  reporter.start();
  bed.load_traffic->run_between(TimePoint{seconds(20).ns()}, TimePoint{seconds(61).ns()});
  bed.engine.run_until(TimePoint{seconds(63).ns()});
  reporter.stop();

  if (telemetry) hub.finalize(bed.engine.now());

  const auto lat = stats.latency_series().stats();
  std::cout << "\nresults:\n"
            << "  frames sourced/transmitted/received : " << stats.source_count() << " / "
            << stats.transmitted_count() << " / " << stats.received_count() << "\n"
            << "  decodable                           : " << stats.decodable_count() << "\n"
            << "  latency mean/max                    : " << lat.mean() << " / "
            << lat.max() << " ms\n"
            << "  contract transitions                : " << contract.transition_count()
            << "\n"
            << "  receiver jitter (RFC 3550)          : "
            << monitor.jitter_ms(core::kFlowVideo) << " ms\n";
  if (telemetry) {
    std::cout << "  SLO health transitions              : " << hub.events().size()
              << " (flight dumps: " << hub.dumps().size() << ")\n";
  }

  if (!opts.trace_path.empty()) {
    if (!tracer.write_chrome_json_file(opts.trace_path)) {
      std::cerr << "failed to write trace to " << opts.trace_path << "\n";
      return 1;
    }
    std::cerr << "trace (" << tracer.size() << " events, " << tracer.track_count()
              << " tracks) written to " << opts.trace_path << "\n";
  }
  if (!opts.metrics_path.empty()) {
    obs::MetricsRegistry reg;
    bed.sender_orb.export_metrics(reg, "orb.sender");
    bed.receiver_orb.export_metrics(reg, "orb.receiver");
    bed.network.export_metrics(reg, "net");
    bed.sender_cpu.export_metrics(reg, "cpu.sender");
    bed.receiver_cpu.export_metrics(reg, "cpu.receiver");
    monitor.export_metrics(reg, "recv");
    if (telemetry) hub.export_metrics(reg, "telemetry");
    reg.counter("stream.frames_sourced").set(stats.source_count());
    reg.counter("stream.frames_transmitted").set(stats.transmitted_count());
    reg.counter("stream.frames_received").set(stats.received_count());
    reg.counter("stream.frames_decodable").set(stats.decodable_count());
    reg.counter("quo.contract_transitions").set(contract.transition_count());
    reg.stats("stream.latency_ms").merge(lat);
    const std::vector<obs::NamedSnapshot> snaps{{"adaptive_streaming", reg.snapshot()}};
    if (!obs::write_metrics_sidecar_file(opts.metrics_path, snaps)) {
      std::cerr << "failed to write metrics to " << opts.metrics_path << "\n";
      return 1;
    }
    std::cerr << "metrics written to " << opts.metrics_path << "\n";
  }
  if (!opts.slo_path.empty()) {
    const std::vector<obs::NamedHealthReport> reports{
        {"adaptive_streaming", hub.report()}};
    if (!obs::write_health_sidecar_file(opts.slo_path, reports)) {
      std::cerr << "failed to write health events to " << opts.slo_path << "\n";
      return 1;
    }
    std::cerr << "health events written to " << opts.slo_path << "\n";
  }
  if (!opts.flight_path.empty()) {
    const std::vector<obs::NamedFlightDumps> dumps{
        {"adaptive_streaming", hub.dumps()}};
    if (!obs::write_flight_sidecar_file(opts.flight_path, dumps)) {
      std::cerr << "failed to write flight dumps to " << opts.flight_path << "\n";
      return 1;
    }
    std::cerr << "flight dumps written to " << opts.flight_path << "\n";
  }
  return 0;
}

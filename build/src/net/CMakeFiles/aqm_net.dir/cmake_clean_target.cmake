file(REMOVE_RECURSE
  "libaqm_net.a"
)

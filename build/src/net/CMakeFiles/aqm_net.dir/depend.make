# Empty dependencies file for aqm_net.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/drr_queue.cpp" "src/net/CMakeFiles/aqm_net.dir/drr_queue.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/drr_queue.cpp.o.d"
  "/root/repo/src/net/flow_monitor.cpp" "src/net/CMakeFiles/aqm_net.dir/flow_monitor.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/flow_monitor.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/aqm_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/aqm_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/network.cpp.o.d"
  "/root/repo/src/net/queue.cpp" "src/net/CMakeFiles/aqm_net.dir/queue.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/queue.cpp.o.d"
  "/root/repo/src/net/red_queue.cpp" "src/net/CMakeFiles/aqm_net.dir/red_queue.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/red_queue.cpp.o.d"
  "/root/repo/src/net/rsvp.cpp" "src/net/CMakeFiles/aqm_net.dir/rsvp.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/rsvp.cpp.o.d"
  "/root/repo/src/net/token_bucket.cpp" "src/net/CMakeFiles/aqm_net.dir/token_bucket.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/token_bucket.cpp.o.d"
  "/root/repo/src/net/traffic_gen.cpp" "src/net/CMakeFiles/aqm_net.dir/traffic_gen.cpp.o" "gcc" "src/net/CMakeFiles/aqm_net.dir/traffic_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/aqm_net.dir/drr_queue.cpp.o"
  "CMakeFiles/aqm_net.dir/drr_queue.cpp.o.d"
  "CMakeFiles/aqm_net.dir/flow_monitor.cpp.o"
  "CMakeFiles/aqm_net.dir/flow_monitor.cpp.o.d"
  "CMakeFiles/aqm_net.dir/link.cpp.o"
  "CMakeFiles/aqm_net.dir/link.cpp.o.d"
  "CMakeFiles/aqm_net.dir/network.cpp.o"
  "CMakeFiles/aqm_net.dir/network.cpp.o.d"
  "CMakeFiles/aqm_net.dir/queue.cpp.o"
  "CMakeFiles/aqm_net.dir/queue.cpp.o.d"
  "CMakeFiles/aqm_net.dir/red_queue.cpp.o"
  "CMakeFiles/aqm_net.dir/red_queue.cpp.o.d"
  "CMakeFiles/aqm_net.dir/rsvp.cpp.o"
  "CMakeFiles/aqm_net.dir/rsvp.cpp.o.d"
  "CMakeFiles/aqm_net.dir/token_bucket.cpp.o"
  "CMakeFiles/aqm_net.dir/token_bucket.cpp.o.d"
  "CMakeFiles/aqm_net.dir/traffic_gen.cpp.o"
  "CMakeFiles/aqm_net.dir/traffic_gen.cpp.o.d"
  "libaqm_net.a"
  "libaqm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

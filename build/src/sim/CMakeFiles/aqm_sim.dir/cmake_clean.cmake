file(REMOVE_RECURSE
  "CMakeFiles/aqm_sim.dir/engine.cpp.o"
  "CMakeFiles/aqm_sim.dir/engine.cpp.o.d"
  "libaqm_sim.a"
  "libaqm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for aqm_sim.
# This may be replaced when dependencies are built.

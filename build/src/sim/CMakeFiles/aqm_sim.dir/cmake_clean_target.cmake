file(REMOVE_RECURSE
  "libaqm_sim.a"
)

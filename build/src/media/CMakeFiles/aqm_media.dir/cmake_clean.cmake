file(REMOVE_RECURSE
  "CMakeFiles/aqm_media.dir/gop.cpp.o"
  "CMakeFiles/aqm_media.dir/gop.cpp.o.d"
  "CMakeFiles/aqm_media.dir/video_sink.cpp.o"
  "CMakeFiles/aqm_media.dir/video_sink.cpp.o.d"
  "CMakeFiles/aqm_media.dir/video_source.cpp.o"
  "CMakeFiles/aqm_media.dir/video_source.cpp.o.d"
  "libaqm_media.a"
  "libaqm_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/gop.cpp" "src/media/CMakeFiles/aqm_media.dir/gop.cpp.o" "gcc" "src/media/CMakeFiles/aqm_media.dir/gop.cpp.o.d"
  "/root/repo/src/media/video_sink.cpp" "src/media/CMakeFiles/aqm_media.dir/video_sink.cpp.o" "gcc" "src/media/CMakeFiles/aqm_media.dir/video_sink.cpp.o.d"
  "/root/repo/src/media/video_source.cpp" "src/media/CMakeFiles/aqm_media.dir/video_source.cpp.o" "gcc" "src/media/CMakeFiles/aqm_media.dir/video_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/aqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libaqm_media.a"
)

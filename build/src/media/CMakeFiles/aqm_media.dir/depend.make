# Empty dependencies file for aqm_media.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aqm_quo.dir/contract.cpp.o"
  "CMakeFiles/aqm_quo.dir/contract.cpp.o.d"
  "CMakeFiles/aqm_quo.dir/delegate.cpp.o"
  "CMakeFiles/aqm_quo.dir/delegate.cpp.o.d"
  "CMakeFiles/aqm_quo.dir/qosket.cpp.o"
  "CMakeFiles/aqm_quo.dir/qosket.cpp.o.d"
  "CMakeFiles/aqm_quo.dir/status_channel.cpp.o"
  "CMakeFiles/aqm_quo.dir/status_channel.cpp.o.d"
  "CMakeFiles/aqm_quo.dir/syscond.cpp.o"
  "CMakeFiles/aqm_quo.dir/syscond.cpp.o.d"
  "libaqm_quo.a"
  "libaqm_quo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_quo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for aqm_quo.
# This may be replaced when dependencies are built.

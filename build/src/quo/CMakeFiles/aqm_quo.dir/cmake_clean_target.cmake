file(REMOVE_RECURSE
  "libaqm_quo.a"
)

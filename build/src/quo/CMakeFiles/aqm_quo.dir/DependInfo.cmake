
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quo/contract.cpp" "src/quo/CMakeFiles/aqm_quo.dir/contract.cpp.o" "gcc" "src/quo/CMakeFiles/aqm_quo.dir/contract.cpp.o.d"
  "/root/repo/src/quo/delegate.cpp" "src/quo/CMakeFiles/aqm_quo.dir/delegate.cpp.o" "gcc" "src/quo/CMakeFiles/aqm_quo.dir/delegate.cpp.o.d"
  "/root/repo/src/quo/qosket.cpp" "src/quo/CMakeFiles/aqm_quo.dir/qosket.cpp.o" "gcc" "src/quo/CMakeFiles/aqm_quo.dir/qosket.cpp.o.d"
  "/root/repo/src/quo/status_channel.cpp" "src/quo/CMakeFiles/aqm_quo.dir/status_channel.cpp.o" "gcc" "src/quo/CMakeFiles/aqm_quo.dir/status_channel.cpp.o.d"
  "/root/repo/src/quo/syscond.cpp" "src/quo/CMakeFiles/aqm_quo.dir/syscond.cpp.o" "gcc" "src/quo/CMakeFiles/aqm_quo.dir/syscond.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/aqm_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aqm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/aqm_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

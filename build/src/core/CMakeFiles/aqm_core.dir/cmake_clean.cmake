file(REMOVE_RECURSE
  "CMakeFiles/aqm_core.dir/cpu_reservation_manager.cpp.o"
  "CMakeFiles/aqm_core.dir/cpu_reservation_manager.cpp.o.d"
  "CMakeFiles/aqm_core.dir/network_qos_manager.cpp.o"
  "CMakeFiles/aqm_core.dir/network_qos_manager.cpp.o.d"
  "CMakeFiles/aqm_core.dir/qos_session.cpp.o"
  "CMakeFiles/aqm_core.dir/qos_session.cpp.o.d"
  "CMakeFiles/aqm_core.dir/scheduling_service.cpp.o"
  "CMakeFiles/aqm_core.dir/scheduling_service.cpp.o.d"
  "CMakeFiles/aqm_core.dir/testbed.cpp.o"
  "CMakeFiles/aqm_core.dir/testbed.cpp.o.d"
  "libaqm_core.a"
  "libaqm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaqm_core.a"
)

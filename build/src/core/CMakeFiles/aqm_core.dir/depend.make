# Empty dependencies file for aqm_core.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/src/cos
# Build directory: /root/repo/build/src/cos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cos/events.cpp" "src/cos/CMakeFiles/aqm_cos.dir/events.cpp.o" "gcc" "src/cos/CMakeFiles/aqm_cos.dir/events.cpp.o.d"
  "/root/repo/src/cos/naming.cpp" "src/cos/CMakeFiles/aqm_cos.dir/naming.cpp.o" "gcc" "src/cos/CMakeFiles/aqm_cos.dir/naming.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/orb/CMakeFiles/aqm_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aqm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/aqm_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

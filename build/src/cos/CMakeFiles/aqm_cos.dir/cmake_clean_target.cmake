file(REMOVE_RECURSE
  "libaqm_cos.a"
)

# Empty dependencies file for aqm_cos.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aqm_cos.dir/events.cpp.o"
  "CMakeFiles/aqm_cos.dir/events.cpp.o.d"
  "CMakeFiles/aqm_cos.dir/naming.cpp.o"
  "CMakeFiles/aqm_cos.dir/naming.cpp.o.d"
  "libaqm_cos.a"
  "libaqm_cos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_cos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

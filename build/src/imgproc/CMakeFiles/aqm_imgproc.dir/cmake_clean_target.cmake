file(REMOVE_RECURSE
  "libaqm_imgproc.a"
)

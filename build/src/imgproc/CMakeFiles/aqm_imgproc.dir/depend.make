# Empty dependencies file for aqm_imgproc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aqm_imgproc.dir/edge.cpp.o"
  "CMakeFiles/aqm_imgproc.dir/edge.cpp.o.d"
  "CMakeFiles/aqm_imgproc.dir/image.cpp.o"
  "CMakeFiles/aqm_imgproc.dir/image.cpp.o.d"
  "CMakeFiles/aqm_imgproc.dir/ppm.cpp.o"
  "CMakeFiles/aqm_imgproc.dir/ppm.cpp.o.d"
  "CMakeFiles/aqm_imgproc.dir/synth.cpp.o"
  "CMakeFiles/aqm_imgproc.dir/synth.cpp.o.d"
  "libaqm_imgproc.a"
  "libaqm_imgproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_imgproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

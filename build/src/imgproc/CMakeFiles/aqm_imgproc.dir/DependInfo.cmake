
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imgproc/edge.cpp" "src/imgproc/CMakeFiles/aqm_imgproc.dir/edge.cpp.o" "gcc" "src/imgproc/CMakeFiles/aqm_imgproc.dir/edge.cpp.o.d"
  "/root/repo/src/imgproc/image.cpp" "src/imgproc/CMakeFiles/aqm_imgproc.dir/image.cpp.o" "gcc" "src/imgproc/CMakeFiles/aqm_imgproc.dir/image.cpp.o.d"
  "/root/repo/src/imgproc/ppm.cpp" "src/imgproc/CMakeFiles/aqm_imgproc.dir/ppm.cpp.o" "gcc" "src/imgproc/CMakeFiles/aqm_imgproc.dir/ppm.cpp.o.d"
  "/root/repo/src/imgproc/synth.cpp" "src/imgproc/CMakeFiles/aqm_imgproc.dir/synth.cpp.o" "gcc" "src/imgproc/CMakeFiles/aqm_imgproc.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

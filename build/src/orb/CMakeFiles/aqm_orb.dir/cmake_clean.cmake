file(REMOVE_RECURSE
  "CMakeFiles/aqm_orb.dir/cdr.cpp.o"
  "CMakeFiles/aqm_orb.dir/cdr.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/giop.cpp.o"
  "CMakeFiles/aqm_orb.dir/giop.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/ior.cpp.o"
  "CMakeFiles/aqm_orb.dir/ior.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/orb.cpp.o"
  "CMakeFiles/aqm_orb.dir/orb.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/poa.cpp.o"
  "CMakeFiles/aqm_orb.dir/poa.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/rt/dscp_mapping.cpp.o"
  "CMakeFiles/aqm_orb.dir/rt/dscp_mapping.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/rt/priority_mapping.cpp.o"
  "CMakeFiles/aqm_orb.dir/rt/priority_mapping.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/rt/threadpool.cpp.o"
  "CMakeFiles/aqm_orb.dir/rt/threadpool.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/servant.cpp.o"
  "CMakeFiles/aqm_orb.dir/servant.cpp.o.d"
  "CMakeFiles/aqm_orb.dir/transport.cpp.o"
  "CMakeFiles/aqm_orb.dir/transport.cpp.o.d"
  "libaqm_orb.a"
  "libaqm_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

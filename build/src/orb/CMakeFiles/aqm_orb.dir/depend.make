# Empty dependencies file for aqm_orb.
# This may be replaced when dependencies are built.

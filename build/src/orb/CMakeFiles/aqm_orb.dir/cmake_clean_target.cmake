file(REMOVE_RECURSE
  "libaqm_orb.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/orb/cdr.cpp" "src/orb/CMakeFiles/aqm_orb.dir/cdr.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/cdr.cpp.o.d"
  "/root/repo/src/orb/giop.cpp" "src/orb/CMakeFiles/aqm_orb.dir/giop.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/giop.cpp.o.d"
  "/root/repo/src/orb/ior.cpp" "src/orb/CMakeFiles/aqm_orb.dir/ior.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/ior.cpp.o.d"
  "/root/repo/src/orb/orb.cpp" "src/orb/CMakeFiles/aqm_orb.dir/orb.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/orb.cpp.o.d"
  "/root/repo/src/orb/poa.cpp" "src/orb/CMakeFiles/aqm_orb.dir/poa.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/poa.cpp.o.d"
  "/root/repo/src/orb/rt/dscp_mapping.cpp" "src/orb/CMakeFiles/aqm_orb.dir/rt/dscp_mapping.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/rt/dscp_mapping.cpp.o.d"
  "/root/repo/src/orb/rt/priority_mapping.cpp" "src/orb/CMakeFiles/aqm_orb.dir/rt/priority_mapping.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/rt/priority_mapping.cpp.o.d"
  "/root/repo/src/orb/rt/threadpool.cpp" "src/orb/CMakeFiles/aqm_orb.dir/rt/threadpool.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/rt/threadpool.cpp.o.d"
  "/root/repo/src/orb/servant.cpp" "src/orb/CMakeFiles/aqm_orb.dir/servant.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/servant.cpp.o.d"
  "/root/repo/src/orb/transport.cpp" "src/orb/CMakeFiles/aqm_orb.dir/transport.cpp.o" "gcc" "src/orb/CMakeFiles/aqm_orb.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/aqm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/aqm_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

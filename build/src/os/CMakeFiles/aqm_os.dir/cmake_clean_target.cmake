file(REMOVE_RECURSE
  "libaqm_os.a"
)

# Empty compiler generated dependencies file for aqm_os.
# This may be replaced when dependencies are built.

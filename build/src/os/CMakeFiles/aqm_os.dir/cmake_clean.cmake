file(REMOVE_RECURSE
  "CMakeFiles/aqm_os.dir/cpu.cpp.o"
  "CMakeFiles/aqm_os.dir/cpu.cpp.o.d"
  "CMakeFiles/aqm_os.dir/load_generator.cpp.o"
  "CMakeFiles/aqm_os.dir/load_generator.cpp.o.d"
  "CMakeFiles/aqm_os.dir/mutex.cpp.o"
  "CMakeFiles/aqm_os.dir/mutex.cpp.o.d"
  "libaqm_os.a"
  "libaqm_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libaqm_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aqm_common.dir/log.cpp.o"
  "CMakeFiles/aqm_common.dir/log.cpp.o.d"
  "CMakeFiles/aqm_common.dir/rng.cpp.o"
  "CMakeFiles/aqm_common.dir/rng.cpp.o.d"
  "CMakeFiles/aqm_common.dir/stats.cpp.o"
  "CMakeFiles/aqm_common.dir/stats.cpp.o.d"
  "libaqm_common.a"
  "libaqm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

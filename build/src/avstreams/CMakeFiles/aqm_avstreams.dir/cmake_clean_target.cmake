file(REMOVE_RECURSE
  "libaqm_avstreams.a"
)

# Empty dependencies file for aqm_avstreams.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/aqm_avstreams.dir/frame_codec.cpp.o"
  "CMakeFiles/aqm_avstreams.dir/frame_codec.cpp.o.d"
  "CMakeFiles/aqm_avstreams.dir/rate_adaptation.cpp.o"
  "CMakeFiles/aqm_avstreams.dir/rate_adaptation.cpp.o.d"
  "CMakeFiles/aqm_avstreams.dir/stream.cpp.o"
  "CMakeFiles/aqm_avstreams.dir/stream.cpp.o.d"
  "libaqm_avstreams.a"
  "libaqm_avstreams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_avstreams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig4_control.dir/fig4_control.cpp.o"
  "CMakeFiles/fig4_control.dir/fig4_control.cpp.o.d"
  "fig4_control"
  "fig4_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

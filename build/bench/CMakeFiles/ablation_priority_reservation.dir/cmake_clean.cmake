file(REMOVE_RECURSE
  "CMakeFiles/ablation_priority_reservation.dir/ablation_priority_reservation.cpp.o"
  "CMakeFiles/ablation_priority_reservation.dir/ablation_priority_reservation.cpp.o.d"
  "ablation_priority_reservation"
  "ablation_priority_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priority_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_priority_reservation.
# This may be replaced when dependencies are built.

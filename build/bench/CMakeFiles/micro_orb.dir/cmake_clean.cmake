file(REMOVE_RECURSE
  "CMakeFiles/micro_orb.dir/micro_orb.cpp.o"
  "CMakeFiles/micro_orb.dir/micro_orb.cpp.o.d"
  "micro_orb"
  "micro_orb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_orb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

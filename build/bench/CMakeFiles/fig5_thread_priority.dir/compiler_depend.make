# Empty compiler generated dependencies file for fig5_thread_priority.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig5_thread_priority.dir/fig5_thread_priority.cpp.o"
  "CMakeFiles/fig5_thread_priority.dir/fig5_thread_priority.cpp.o.d"
  "fig5_thread_priority"
  "fig5_thread_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_thread_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_red_ecn.
# This may be replaced when dependencies are built.

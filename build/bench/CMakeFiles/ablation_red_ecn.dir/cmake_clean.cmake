file(REMOVE_RECURSE
  "CMakeFiles/ablation_red_ecn.dir/ablation_red_ecn.cpp.o"
  "CMakeFiles/ablation_red_ecn.dir/ablation_red_ecn.cpp.o.d"
  "ablation_red_ecn"
  "ablation_red_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_red_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table2_cpu_reservation.
# This may be replaced when dependencies are built.

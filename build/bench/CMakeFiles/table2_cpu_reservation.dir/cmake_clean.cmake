file(REMOVE_RECURSE
  "CMakeFiles/table2_cpu_reservation.dir/table2_cpu_reservation.cpp.o"
  "CMakeFiles/table2_cpu_reservation.dir/table2_cpu_reservation.cpp.o.d"
  "table2_cpu_reservation"
  "table2_cpu_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cpu_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig6_combined_priority.dir/fig6_combined_priority.cpp.o"
  "CMakeFiles/fig6_combined_priority.dir/fig6_combined_priority.cpp.o.d"
  "fig6_combined_priority"
  "fig6_combined_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_combined_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_combined_policy.dir/ablation_combined_policy.cpp.o"
  "CMakeFiles/ablation_combined_policy.dir/ablation_combined_policy.cpp.o.d"
  "ablation_combined_policy"
  "ablation_combined_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combined_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

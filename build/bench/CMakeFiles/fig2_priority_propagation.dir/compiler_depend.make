# Empty compiler generated dependencies file for fig2_priority_propagation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_priority_propagation.dir/fig2_priority_propagation.cpp.o"
  "CMakeFiles/fig2_priority_propagation.dir/fig2_priority_propagation.cpp.o.d"
  "fig2_priority_propagation"
  "fig2_priority_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_priority_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

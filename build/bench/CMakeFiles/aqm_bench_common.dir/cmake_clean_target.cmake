file(REMOVE_RECURSE
  "libaqm_bench_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/aqm_bench_common.dir/common/priority_scenario.cpp.o"
  "CMakeFiles/aqm_bench_common.dir/common/priority_scenario.cpp.o.d"
  "CMakeFiles/aqm_bench_common.dir/common/reservation_scenario.cpp.o"
  "CMakeFiles/aqm_bench_common.dir/common/reservation_scenario.cpp.o.d"
  "libaqm_bench_common.a"
  "libaqm_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

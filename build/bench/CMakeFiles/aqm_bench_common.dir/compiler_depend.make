# Empty compiler generated dependencies file for aqm_bench_common.
# This may be replaced when dependencies are built.

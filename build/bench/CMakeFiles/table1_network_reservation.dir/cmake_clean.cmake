file(REMOVE_RECURSE
  "CMakeFiles/table1_network_reservation.dir/table1_network_reservation.cpp.o"
  "CMakeFiles/table1_network_reservation.dir/table1_network_reservation.cpp.o.d"
  "table1_network_reservation"
  "table1_network_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_network_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table1_network_reservation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_reservation.dir/fig7_reservation.cpp.o"
  "CMakeFiles/fig7_reservation.dir/fig7_reservation.cpp.o.d"
  "fig7_reservation"
  "fig7_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig7_reservation.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_status_channel.dir/test_status_channel.cpp.o"
  "CMakeFiles/test_status_channel.dir/test_status_channel.cpp.o.d"
  "test_status_channel"
  "test_status_channel.pdb"
  "test_status_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

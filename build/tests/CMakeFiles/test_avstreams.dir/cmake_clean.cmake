file(REMOVE_RECURSE
  "CMakeFiles/test_avstreams.dir/test_avstreams.cpp.o"
  "CMakeFiles/test_avstreams.dir/test_avstreams.cpp.o.d"
  "test_avstreams"
  "test_avstreams.pdb"
  "test_avstreams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avstreams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_avstreams.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cos.dir/test_cos.cpp.o"
  "CMakeFiles/test_cos.dir/test_cos.cpp.o.d"
  "test_cos"
  "test_cos.pdb"
  "test_cos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

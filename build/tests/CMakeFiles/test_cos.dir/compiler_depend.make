# Empty compiler generated dependencies file for test_cos.
# This may be replaced when dependencies are built.

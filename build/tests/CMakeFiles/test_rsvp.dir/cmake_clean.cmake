file(REMOVE_RECURSE
  "CMakeFiles/test_rsvp.dir/test_rsvp.cpp.o"
  "CMakeFiles/test_rsvp.dir/test_rsvp.cpp.o.d"
  "test_rsvp"
  "test_rsvp.pdb"
  "test_rsvp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rsvp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

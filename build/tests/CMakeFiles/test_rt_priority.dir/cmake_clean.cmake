file(REMOVE_RECURSE
  "CMakeFiles/test_rt_priority.dir/test_rt_priority.cpp.o"
  "CMakeFiles/test_rt_priority.dir/test_rt_priority.cpp.o.d"
  "test_rt_priority"
  "test_rt_priority.pdb"
  "test_rt_priority[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

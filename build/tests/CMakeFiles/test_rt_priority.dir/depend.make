# Empty dependencies file for test_rt_priority.
# This may be replaced when dependencies are built.

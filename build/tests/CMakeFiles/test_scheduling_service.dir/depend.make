# Empty dependencies file for test_scheduling_service.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_scheduling_service.dir/test_scheduling_service.cpp.o"
  "CMakeFiles/test_scheduling_service.dir/test_scheduling_service.cpp.o.d"
  "test_scheduling_service"
  "test_scheduling_service.pdb"
  "test_scheduling_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduling_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_reserve.dir/test_reserve.cpp.o"
  "CMakeFiles/test_reserve.dir/test_reserve.cpp.o.d"
  "test_reserve"
  "test_reserve.pdb"
  "test_reserve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reserve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

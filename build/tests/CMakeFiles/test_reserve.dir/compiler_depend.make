# Empty compiler generated dependencies file for test_reserve.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_link_network.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_quo.cpp" "tests/CMakeFiles/test_quo.dir/test_quo.cpp.o" "gcc" "tests/CMakeFiles/test_quo.dir/test_quo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/aqm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cos/CMakeFiles/aqm_cos.dir/DependInfo.cmake"
  "/root/repo/build/src/avstreams/CMakeFiles/aqm_avstreams.dir/DependInfo.cmake"
  "/root/repo/build/src/quo/CMakeFiles/aqm_quo.dir/DependInfo.cmake"
  "/root/repo/build/src/orb/CMakeFiles/aqm_orb.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/aqm_media.dir/DependInfo.cmake"
  "/root/repo/build/src/imgproc/CMakeFiles/aqm_imgproc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aqm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/aqm_os.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aqm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

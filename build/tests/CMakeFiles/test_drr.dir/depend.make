# Empty dependencies file for test_drr.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_cdr_giop.
# This may be replaced when dependencies are built.

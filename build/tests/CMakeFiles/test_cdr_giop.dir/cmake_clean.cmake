file(REMOVE_RECURSE
  "CMakeFiles/test_cdr_giop.dir/test_cdr_giop.cpp.o"
  "CMakeFiles/test_cdr_giop.dir/test_cdr_giop.cpp.o.d"
  "test_cdr_giop"
  "test_cdr_giop.pdb"
  "test_cdr_giop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdr_giop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

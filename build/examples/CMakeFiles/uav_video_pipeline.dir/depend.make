# Empty dependencies file for uav_video_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/uav_video_pipeline.dir/uav_video_pipeline.cpp.o"
  "CMakeFiles/uav_video_pipeline.dir/uav_video_pipeline.cpp.o.d"
  "uav_video_pipeline"
  "uav_video_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uav_video_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/atr_edge_detection.dir/atr_edge_detection.cpp.o"
  "CMakeFiles/atr_edge_detection.dir/atr_edge_detection.cpp.o.d"
  "atr_edge_detection"
  "atr_edge_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atr_edge_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for atr_edge_detection.
# This may be replaced when dependencies are built.

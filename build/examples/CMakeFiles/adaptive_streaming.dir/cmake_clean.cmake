file(REMOVE_RECURSE
  "CMakeFiles/adaptive_streaming.dir/adaptive_streaming.cpp.o"
  "CMakeFiles/adaptive_streaming.dir/adaptive_streaming.cpp.o.d"
  "adaptive_streaming"
  "adaptive_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

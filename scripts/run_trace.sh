#!/usr/bin/env bash
# Captures a causal trace + metrics sidecar from the adaptive-streaming
# demo and sanity-checks both artifacts: the trace must be valid Chrome
# trace-event JSON (load it at https://ui.perfetto.dev or
# chrome://tracing), and the metrics sidecar must be byte-identical
# regardless of --jobs, which this script also verifies via the
# ablation_queue_depth sweep at 1 and 4 workers.
#
# Usage: scripts/run_trace.sh [build-dir] [out-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_dir="${2:-$repo_root/traces}"

for bin in examples/adaptive_streaming bench/ablation_queue_depth; do
  if [[ ! -x "$build_dir/$bin" ]]; then
    echo "not built; run: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
  fi
done

mkdir -p "$out_dir"

echo "== adaptive_streaming -> $out_dir/adaptive_streaming.trace.json"
"$build_dir/examples/adaptive_streaming" \
  --trace "$out_dir/adaptive_streaming.trace.json" \
  --metrics "$out_dir/adaptive_streaming.metrics.json" > /dev/null

echo "== validating JSON"
python3 -m json.tool "$out_dir/adaptive_streaming.trace.json" > /dev/null
python3 -m json.tool "$out_dir/adaptive_streaming.metrics.json" > /dev/null

echo "== queue-depth sweep trace -> $out_dir/queue_depth.trace.json"
"$build_dir/bench/ablation_queue_depth" --jobs 0 \
  --trace "$out_dir/queue_depth.trace.json" > /dev/null
python3 -m json.tool "$out_dir/queue_depth.trace.json" > /dev/null

# Note: tracing rides a GIOP service context, so --trace adds real bytes
# to every twoway (DESIGN.md §7) — the determinism comparison therefore
# runs trace-free on both sides.
echo "== metrics determinism: ablation_queue_depth --jobs 1 vs --jobs 4"
"$build_dir/bench/ablation_queue_depth" --jobs 1 \
  --metrics "$out_dir/queue_depth.metrics.j1.json" > /dev/null
"$build_dir/bench/ablation_queue_depth" --jobs 4 \
  --metrics "$out_dir/queue_depth.metrics.j4.json" > /dev/null
python3 -m json.tool "$out_dir/queue_depth.metrics.j1.json" > /dev/null
cmp "$out_dir/queue_depth.metrics.j1.json" "$out_dir/queue_depth.metrics.j4.json"
mv "$out_dir/queue_depth.metrics.j1.json" "$out_dir/queue_depth.metrics.json"
rm -f "$out_dir/queue_depth.metrics.j4.json"

# SLO telemetry (DESIGN.md §12): the health-event stream and the flight
# dumps are merged in trial-index order like the metrics sidecar, so both
# must be byte-identical for any worker count.
echo "== SLO sidecar determinism: ablation_queue_depth --jobs 1 vs --jobs 4"
"$build_dir/bench/ablation_queue_depth" --jobs 1 \
  --slo "$out_dir/queue_depth.health.j1.json" \
  --flight "$out_dir/queue_depth.flight.j1.json" > /dev/null
"$build_dir/bench/ablation_queue_depth" --jobs 4 \
  --slo "$out_dir/queue_depth.health.j4.json" \
  --flight "$out_dir/queue_depth.flight.j4.json" > /dev/null
python3 -m json.tool "$out_dir/queue_depth.health.j1.json" > /dev/null
python3 -m json.tool "$out_dir/queue_depth.flight.j1.json" > /dev/null
cmp "$out_dir/queue_depth.health.j1.json" "$out_dir/queue_depth.health.j4.json"
cmp "$out_dir/queue_depth.flight.j1.json" "$out_dir/queue_depth.flight.j4.json"
mv "$out_dir/queue_depth.health.j1.json" "$out_dir/queue_depth.health.json"
mv "$out_dir/queue_depth.flight.j1.json" "$out_dir/queue_depth.flight.json"
rm -f "$out_dir/queue_depth.health.j4.json" "$out_dir/queue_depth.flight.j4.json"

# The congested trials must actually breach (the sweep overloads a 10 Mbps
# bottleneck 2x): an empty health stream means the monitors are not wired.
python3 - "$out_dir/queue_depth.health.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
events = sum(len(t["health"]["events"]) for t in doc["trials"])
assert events > 0, "no SLO breach events in the congested sweep"
assert doc["merged"]["events"] == events, "merged event count mismatch"
print(f"   {events} health events across {len(doc['trials'])} trials")
EOF

echo "done; open the *.trace.json files in https://ui.perfetto.dev"
echo "flight dumps for post-mortems: $out_dir/queue_depth.flight.json"

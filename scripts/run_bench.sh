#!/usr/bin/env bash
# Runs the tracked microbenchmark suites and refreshes the BENCH_*.json
# reports at the repo root. These files are committed: they are the
# PR-over-PR performance record of the hot paths (see bench/baselines/ for
# the pre-optimization numbers).
#
# Usage: scripts/run_bench.sh [build-dir] [min-time-seconds]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
min_time="${2:-0.5}"

if [[ ! -x "$build_dir/bench/micro_engine" || ! -x "$build_dir/bench/micro_cdr" ]]; then
  echo "benchmarks not built; run: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

run() {
  local bin="$1" out="$2"
  echo "== $(basename "$bin") -> $out"
  "$bin" "--benchmark_min_time=$min_time" "--json_out=$out"
}

run "$build_dir/bench/micro_engine" "$repo_root/BENCH_engine.json"
run "$build_dir/bench/micro_cdr" "$repo_root/BENCH_orb.json"

echo "done; compare against bench/baselines/*.seed.json"

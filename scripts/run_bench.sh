#!/usr/bin/env bash
# Runs the tracked microbenchmark suites, refreshes the BENCH_*.json
# reports at the repo root, and compares each suite against its seed
# baseline in bench/baselines/, failing loudly on a >15% throughput
# regression (3% for BM_InterceptorOverhead — the invocation-pipeline
# refactor's hot-path budget). These files are committed: they are the
# PR-over-PR performance record of the hot paths.
#
# Usage: scripts/run_bench.sh [--rerecord[=N]] [build-dir] [min-time-seconds]
#
# --rerecord re-records the seed floors in bench/baselines/ instead of
# gating against them: each suite runs N times (default 3) and every
# benchmark keeps its WORST round (lowest items/s), so the committed
# floors are conservative and the 15% gate does not fire on run-to-run
# noise. The repo-root BENCH_*.json records are refreshed from the last
# round. Run this on the machine the floors are meant for.
#
# Set AQM_BENCH_NO_COMPARE=1 to skip the baseline comparison (e.g. when
# running on hardware unrelated to the machine that recorded the
# baselines — absolute items/second are only comparable on like hardware).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
rerecord=0
positional=()
for arg in "$@"; do
  case "$arg" in
    --rerecord) rerecord=3 ;;
    --rerecord=*) rerecord="${arg#--rerecord=}" ;;
    *) positional+=("$arg") ;;
  esac
done
build_dir="${positional[0]:-$repo_root/build}"
min_time="${positional[1]:-0.5}"

for bin in micro_engine micro_cdr micro_orb micro_substrate; do
  if [[ ! -x "$build_dir/bench/$bin" ]]; then
    echo "benchmarks not built; run: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
    exit 1
  fi
done

run() {
  local bin="$1" out="$2"
  echo "== $(basename "$bin") -> $out"
  "$bin" "--benchmark_min_time=$min_time" "--json_out=$out"
}

# Writes BENCH_engine.json, BENCH_orb.json (micro_cdr + micro_orb merged)
# and BENCH_net.json into the given directory.
generate_reports() {
  local out_dir="$1"
  run "$build_dir/bench/micro_engine" "$out_dir/BENCH_engine.json"
  run "$build_dir/bench/micro_cdr" "$out_dir/BENCH_orb.json"
  # micro_orb shares suite "orb" with micro_cdr; merge its benchmarks into
  # BENCH_orb.json (first writer wins on any duplicated benchmark name).
  local orb_tmp
  orb_tmp="$(mktemp)"
  run "$build_dir/bench/micro_orb" "$orb_tmp"
  python3 - "$out_dir/BENCH_orb.json" "$orb_tmp" <<'EOF'
import json, sys
dest_path, src_path = sys.argv[1], sys.argv[2]

def entry_lines(path):
    # One benchmark object per line in the reporter's output; keep the raw
    # lines so the merged file matches the writer's formatting exactly.
    out = []
    for line in open(path).read().splitlines():
        stripped = line.strip()
        if stripped.startswith('{"name"'):
            raw = line.rstrip().rstrip(",")
            out.append((json.loads(raw.strip())["name"], raw))
    return out

entries = entry_lines(dest_path)
seen = {name for name, _ in entries}
entries += [(n, raw) for n, raw in entry_lines(src_path) if n not in seen]
with open(dest_path, "w") as f:
    f.write('{\n  "suite": "orb",\n  "benchmarks": [\n')
    f.write(",\n".join(raw for _, raw in entries))
    f.write("\n  ]\n}\n")
EOF
  rm -f "$orb_tmp"
  run "$build_dir/bench/micro_substrate" "$out_dir/BENCH_net.json"
}

if [[ "$rerecord" -gt 0 ]]; then
  rounds_dir="$(mktemp -d)"
  trap 'rm -rf "$rounds_dir"' EXIT
  for ((round = 1; round <= rerecord; round++)); do
    echo "=== rerecord round $round/$rerecord"
    mkdir -p "$rounds_dir/$round"
    generate_reports "$rounds_dir/$round"
  done
  echo "== folding worst-of-$rerecord floors into bench/baselines/"
  python3 - "$repo_root" "$rounds_dir" "$rerecord" <<'EOF'
import json, pathlib, sys

root, rounds_dir, n = pathlib.Path(sys.argv[1]), pathlib.Path(sys.argv[2]), int(sys.argv[3])

def entry_lines(path):
    out = []
    for line in path.read_text().splitlines():
        if line.strip().startswith('{"name"'):
            raw = line.rstrip().rstrip(",")
            out.append((json.loads(raw.strip())["name"], raw))
    return out

for report in ["BENCH_engine.json", "BENCH_orb.json", "BENCH_net.json"]:
    rounds = [dict(entry_lines(rounds_dir / str(r) / report)) for r in range(1, n + 1)]
    suite = json.loads((rounds_dir / "1" / report).read_text())["suite"]
    floors = []
    for name, first_raw in entry_lines(rounds_dir / "1" / report):
        # Worst round = lowest items/s: a floor no healthy run dips under.
        worst = min((r[name] for r in rounds if name in r),
                    key=lambda raw: json.loads(raw.strip()).get("items_per_second", 0.0))
        floors.append(worst)
    dest = root / "bench" / "baselines" / (report.replace(".json", ".seed.json"))
    dest.write_text('{\n  "suite": "%s",\n  "benchmarks": [\n' % suite
                    + ",\n".join(floors) + "\n  ]\n}\n")
    print(f"  {dest.relative_to(root)}: {len(floors)} floors")
EOF
  for f in BENCH_engine.json BENCH_orb.json BENCH_net.json; do
    cp "$rounds_dir/$rerecord/$f" "$repo_root/$f"
  done
  echo "done (seed floors re-recorded; BENCH_*.json refreshed from last round)"
  exit 0
fi

generate_reports "$repo_root"

# The batching tentpole's win is a ratio, so it is machine-independent and
# holds even when absolute baselines are skipped: pipelined batched calls
# must sustain >= 3x the plain GIOP round-trip marshal rate measured in
# this same run (DESIGN.md §11).
echo "== transport batching gate: BM_GiopPipelined/64 >= 3x BM_GiopRoundTrip (same run)"
python3 - "$repo_root/BENCH_orb.json" <<'EOF'
import json, sys
marks = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]}
pipe = marks.get("BM_GiopPipelined/64")
base = marks.get("BM_GiopRoundTrip")
if pipe is None or base is None:
    sys.exit("BENCH_orb.json is missing BM_GiopPipelined/64 or BM_GiopRoundTrip")
ratio = pipe["items_per_second"] / base["items_per_second"]
print(f"  pipelined {pipe['items_per_second']:.4g} calls/s vs round-trip "
      f"{base['items_per_second']:.4g}/s -> {ratio:.2f}x")
if ratio < 3.0:
    sys.exit(f"batching win below gate: {ratio:.2f}x < 3x (DESIGN.md §11)")
EOF

# The telemetry tentpole's budget is also a same-run ratio: a hub with
# quiet SLO monitors attached (Arg 2) must sustain >= 97% of the detached
# loop's rate (Arg 0). Sequential single runs drift by several percent on
# a busy host, so the gate re-runs just this benchmark with interleaved
# repetitions and compares medians (DESIGN.md §12).
echo "== telemetry gate: BM_TelemetryOverhead/2 >= 0.97x /0 (15 interleaved reps, median)"
tel_tmp="$(mktemp)"
"$build_dir/bench/micro_engine" \
  --benchmark_filter='BM_TelemetryOverhead' \
  --benchmark_min_time=0.1 \
  --benchmark_repetitions=15 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$tel_tmp" --benchmark_out_format=json > /dev/null
python3 - "$tel_tmp" <<'EOF'
import json, sys
marks = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]}
quiet = marks.get("BM_TelemetryOverhead/2_median")
base = marks.get("BM_TelemetryOverhead/0_median")
if quiet is None or base is None:
    sys.exit("telemetry gate run is missing BM_TelemetryOverhead medians")
ratio = quiet["items_per_second"] / base["items_per_second"]
print(f"  quiet-monitored {quiet['items_per_second']:.4g} steps/s vs detached "
      f"{base['items_per_second']:.4g}/s -> {ratio:.4f}x")
if ratio < 0.97:
    sys.exit(f"telemetry overhead above gate: {ratio:.4f}x < 0.97x (DESIGN.md §12)")
EOF
rm -f "$tel_tmp"

# The control-plane budget (DESIGN.md §13) is the same kind of same-run
# ratio: a FeedbackScheduler installed over every flow but never started
# (Arg 1) must sustain >= 98% of the uncontrolled forwarding rate (Arg 0)
# — disabling the controller has to actually make it free. Interleaved
# repetitions + medians for the same noise-immunity reasons as above.
echo "== control-plane gate: BM_ControllerOverhead/1 >= 0.98x /0 (15 interleaved reps, median)"
ctl_tmp="$(mktemp)"
"$build_dir/bench/micro_substrate" \
  --benchmark_filter='BM_ControllerOverhead' \
  --benchmark_min_time=0.1 \
  --benchmark_repetitions=15 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$ctl_tmp" --benchmark_out_format=json > /dev/null
python3 - "$ctl_tmp" <<'EOF'
import json, sys
marks = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]}
disabled = marks.get("BM_ControllerOverhead/1_median")
base = marks.get("BM_ControllerOverhead/0_median")
if disabled is None or base is None:
    sys.exit("control-plane gate run is missing BM_ControllerOverhead medians")
ratio = disabled["items_per_second"] / base["items_per_second"]
print(f"  controller-disabled {disabled['items_per_second']:.4g} pkts/s vs bare "
      f"{base['items_per_second']:.4g}/s -> {ratio:.4f}x")
if ratio < 0.98:
    sys.exit(f"controller-disabled overhead above gate: {ratio:.4f}x < 0.98x (DESIGN.md §13)")
EOF
rm -f "$ctl_tmp"

if [[ "${AQM_BENCH_NO_COMPARE:-0}" == "1" ]]; then
  echo "baseline comparison skipped (AQM_BENCH_NO_COMPARE=1)"
  exit 0
fi

echo "== comparing against bench/baselines/*.seed.json (fail on >15% regression)"
python3 - "$repo_root" <<'EOF'
import json, pathlib, sys

root = pathlib.Path(sys.argv[1])
TOLERANCE = 0.15
# Multi-worker / multi-partition rows: wall time depends on the host's
# core count and scheduler, so they are a record, not a regression gate
# (the single-threaded row of each family still carries a gated floor).
RECORD_ONLY = ("BM_ParallelSweep", "BM_PartitionedWorld/2", "BM_PartitionedWorld/4")
UNGATED_COUNTERS = {"workers", "partitions", "null_msgs_per_event"}
# The interceptor refactor promised the invocation hot path stays within
# 3% of the recorded pre-refactor baseline; hold it to that.
TIGHT = {"BM_InterceptorOverhead": 0.03}
# The scheduler-scaling suite exists for the shape (ns_per_job roughly
# flat from 256 to 16384 pending jobs — CI asserts that, self-relative,
# per run), not for absolute floors: the per-iteration work is small
# enough that single-machine noise swamps a 15% gate. Gate it loosely
# and let BM_CpuSchedulerThroughput carry the scheduler throughput floor.
LOOSE = {
    "BM_CpuSchedulerScaling": 0.40,
    # Same story for the router fan-in sweep: CI asserts the shape
    # (ns_per_packet at 256k flows <= 3x the 1k point, self-relative per
    # run); the absolute floors here are a loose backstop.
    "BM_RouterFanIn": 0.40,
    # The telemetry budget is the dedicated same-run ratio gate above
    # (quiet monitors within 3% of a detached loop, interleaved medians);
    # the absolute hold-loop floors recorded here are a loose backstop.
    "BM_TelemetryOverhead": 0.40,
    # The control-plane budget is the dedicated same-run ratio gate above
    # (controller-disabled within 2% of bare forwarding, interleaved
    # medians); the absolute floors here are a loose backstop.
    "BM_ControllerOverhead": 0.40,
}


def tolerance_for(name):
    for prefix, tol in {**TIGHT, **LOOSE}.items():
        if name.startswith(prefix):
            return tol
    return TOLERANCE


failures = []
rows = []  # (benchmark, baseline items/s, current items/s, delta, verdict)

def fmt_ips(v):
    return f"{v:.4g}" if v else "-"

for current_path in sorted(root.glob("BENCH_*.json")):
    baseline_path = root / "bench" / "baselines" / (current_path.stem + ".seed.json")
    if not baseline_path.exists():
        print(f"  {current_path.name}: no baseline, skipped")
        continue
    current = {b["name"]: b for b in json.loads(current_path.read_text())["benchmarks"]}
    baseline = {b["name"]: b for b in json.loads(baseline_path.read_text())["benchmarks"]}
    for name, base in baseline.items():
        cur = current.get(name)
        if cur is None:
            failures.append(f"{current_path.name}: benchmark '{name}' disappeared")
            rows.append((name, base.get("items_per_second", 0.0), 0.0, "", "MISSING"))
            continue
        base_ips = base.get("items_per_second", 0.0)
        cur_ips = cur.get("items_per_second", 0.0)
        delta = f"{(cur_ips / base_ips - 1):+.1%}" if base_ips > 0 else ""
        if any(name.startswith(p) for p in RECORD_ONLY):
            rows.append((name, base_ips, cur_ips, delta, "recorded"))
            continue
        # Throughput must not regress by more than the tolerance.
        tol = tolerance_for(name)
        verdict = f"ok ({tol:.0%})"
        if base_ips > 0 and cur_ips < base_ips * (1 - tol):
            verdict = "FAIL"
            failures.append(
                f"{current_path.name}: {name} items/s {cur_ips:.3g} < "
                f"{(1-tol):.0%} of baseline {base_ips:.3g}")
        # Tracked cost counters (e.g. events_per_packet) must not grow.
        for key, base_val in base.get("counters", {}).items():
            if key in UNGATED_COUNTERS or base_val <= 0:
                continue
            cur_val = cur.get("counters", {}).get(key, 0.0)
            if cur_val > base_val * (1 + tol):
                verdict = "FAIL"
                failures.append(
                    f"{current_path.name}: {name} counter {key} {cur_val:.3g} > "
                    f"{(1+tol):.0%} of baseline {base_val:.3g}")
        rows.append((name, base_ips, cur_ips, delta, verdict))

name_w = max((len(r[0]) for r in rows), default=9)
print(f"  {'benchmark':<{name_w}}  {'floor/s':>10}  {'current/s':>10}  {'delta':>7}  verdict")
for name, base_ips, cur_ips, delta, verdict in rows:
    print(f"  {name:<{name_w}}  {fmt_ips(base_ips):>10}  {fmt_ips(cur_ips):>10}  "
          f"{delta:>7}  {verdict}")
print(f"  {len(rows)} benchmarks compared")
if failures:
    print("PERF REGRESSION DETECTED:", file=sys.stderr)
    for f in failures:
        print(f"  {f}", file=sys.stderr)
    sys.exit(1)
print("  all within tolerance")
EOF

echo "done"

// Micro-benchmarks of the discrete-event engine hot paths: schedule→fire
// throughput, schedule+cancel churn (the ORB request-timeout pattern), and
// periodic-timer churn. Every simulated experiment is bounded by these
// loops, so they are tracked as BENCH_engine.json from PR to PR.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/json_report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aqm;

/// Deterministic 64-bit LCG so every iteration schedules the same workload.
inline std::uint64_t next_rng(std::uint64_t& s) {
  s = s * 6364136223846793005ull + 1442695040888963407ull;
  return s;
}

/// Headline: the classic event-queue "hold model". A steady-state
/// population of `k` pending events; every fired event schedules its
/// successor at now + random delay, exactly the reactor loop of a running
/// simulation. One item = one schedule + one fire. The 24-byte capture
/// (three references) matches real call sites and exceeds libstdc++'s
/// 16-byte std::function inline buffer.
struct HoldOp {
  sim::Engine& e;
  std::uint64_t& rng;
  std::uint64_t& sink;
  void operator()() {
    const std::uint64_t r = next_rng(rng);
    sink += r & 1;
    e.after(nanoseconds(static_cast<std::int64_t>(r & 0x3fff) + 1), HoldOp{e, rng, sink});
  }
};

void BM_EngineHold(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sim::Engine e;
  e.reserve(static_cast<std::size_t>(k));
  std::uint64_t rng = 2024;
  std::uint64_t sink = 0;
  std::uint64_t seed_rng = 7;
  for (int i = 0; i < k; ++i) {
    e.after(nanoseconds(static_cast<std::int64_t>(next_rng(seed_rng) & 0x3fff) + 1),
            HoldOp{e, rng, sink});
  }
  for (auto _ : state) {
    e.step();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineHold)->Arg(64)->Arg(1024)->Arg(16384);

/// Batch variant: schedule `k` events at scattered times, then fire them
/// all. The handler captures 24 bytes (a pointer plus two ids) — the shape
/// of real call sites like transport reassembly-expiry and request timeouts.
void BM_EngineScheduleFire(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sim::Engine e;
  e.reserve(static_cast<std::size_t>(k));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    std::uint64_t rng = 42;
    for (int i = 0; i < k; ++i) {
      const std::uint64_t r = next_rng(rng);
      const std::uint64_t id = r >> 8;
      const std::uint64_t src = r & 0xff;
      e.after(nanoseconds(static_cast<std::int64_t>(r >> 40)),
              [&sink, id, src] { sink += id ^ src; });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_EngineScheduleFire)->Arg(64)->Arg(1024)->Arg(16384);

/// Schedule `k` events and cancel every one before firing — the stale-timer
/// stress test for the cancellation path.
void BM_EngineScheduleCancel(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sim::Engine e;
  e.reserve(static_cast<std::size_t>(k));
  std::vector<sim::EventId> ids(static_cast<std::size_t>(k));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    std::uint64_t rng = 7;
    for (int i = 0; i < k; ++i) {
      const std::uint64_t r = next_rng(rng);
      ids[static_cast<std::size_t>(i)] =
          e.after(nanoseconds(static_cast<std::int64_t>(r >> 40) + 1),
                  [&sink] { ++sink; });
    }
    for (int i = 0; i < k; ++i) e.cancel(ids[static_cast<std::size_t>(i)]);
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_EngineScheduleCancel)->Arg(1024);

/// The twoway-invocation pattern: every request arms a far-away timeout
/// that the (much earlier) reply then cancels.
void BM_EngineTimeoutChurn(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  sim::Engine e;
  e.reserve(static_cast<std::size_t>(2 * k));
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < k; ++i) {
      const sim::EventId timeout = e.after(seconds(2), [&sink] { sink += 1000; });
      e.after(microseconds(i + 1), [&e, &sink, timeout] {
        ++sink;
        e.cancel(timeout);
      });
    }
    e.run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_EngineTimeoutChurn)->Arg(512);

/// Observability tax on the engine hot loop. Arg(0) runs the hold model
/// with no recorder attached — the shipped default, which must stay within
/// noise (<2%) of BM_EngineHold/1024. Arg(1) attaches a recorder whose
/// category mask excludes Engine (instrumentation point reached, bitmask
/// test fails), Arg(2) records a dispatch instant per event — the upper
/// bound, clearing the recorder periodically so memory stays flat.
void BM_TraceOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int k = 1024;
  sim::Engine e;
  e.reserve(k);
  obs::TraceRecorder recorder(mode == 2
                                  ? obs::kAllCategories
                                  : static_cast<std::uint32_t>(obs::TraceCategory::Net));
  if (mode != 0) e.set_tracer(&recorder);
  std::uint64_t rng = 2024;
  std::uint64_t sink = 0;
  std::uint64_t seed_rng = 7;
  for (int i = 0; i < k; ++i) {
    e.after(nanoseconds(static_cast<std::int64_t>(next_rng(seed_rng) & 0x3fff) + 1),
            HoldOp{e, rng, sink});
  }
  // Keep the mode-0/1 loop byte-identical to BM_EngineHold's: the mode
  // branch lives outside it, so any measured delta is engine-side only.
  if (mode == 2) {
    std::size_t since_clear = 0;
    for (auto _ : state) {
      e.step();
      if (++since_clear == 1u << 16) {
        since_clear = 0;
        recorder.clear();
      }
    }
  } else {
    for (auto _ : state) {
      e.step();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Arg(2);

/// Telemetry tax on the engine hot loop: the hold model where every 64th
/// fired event reports a completed call into the TelemetryHub. The density
/// is calibrated, not guessed: in a PriorityTestbed a completed twoway call
/// costs ~3.2us of host-side engine work (~510ns/event across the request/
/// reply event chain), i.e. ~80 hold-model steps' worth — so observing
/// every 64th step taxes the loop slightly *harder* than the real ORB path
/// does. The loop is byte-identical across modes; only the hub wiring
/// differs. Arg(0): hub detached — the observation point degrades to one
/// pointer test (the shipped default). Arg(1): hub attached, flow
/// unmonitored — lifetime counters only. Arg(2): hub attached with a quiet
/// SLO on the flow — the full windowed path (bucket ring, log-histogram
/// latency, boundary evaluations) with thresholds never violated.
/// run_bench.sh gates Arg(2) within 3% of Arg(0) in the same run.
struct TelemetryHoldOp {
  sim::Engine& e;
  std::uint64_t& rng;
  std::uint64_t& sink;
  void operator()() {
    const std::uint64_t r = next_rng(rng);
    sink += r & 1;
    if ((r & 0x3f) == 0) {
      if (obs::TelemetryHub* th = e.telemetry()) {
        th->on_call(101, e.now(), 1.0 + static_cast<double>(r & 0xff) * 0.01);
      }
    }
    e.after(nanoseconds(static_cast<std::int64_t>(r & 0x3fff) + 1),
            TelemetryHoldOp{e, rng, sink});
  }
};

void BM_TelemetryOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int k = 1024;
  sim::Engine e;
  e.reserve(k);
  obs::TelemetryHub hub;
  if (mode != 0) e.set_telemetry(&hub);
  if (mode == 2) {
    obs::SloSpec slo;
    slo.max_miss_rate = 0.5;            // no misses are ever reported
    slo.max_p99_latency_ms = 1e9;       // never violated
    hub.set_slo(101, slo);
  }
  std::uint64_t rng = 2024;
  std::uint64_t sink = 0;
  std::uint64_t seed_rng = 7;
  for (int i = 0; i < k; ++i) {
    e.after(nanoseconds(static_cast<std::int64_t>(next_rng(seed_rng) & 0x3fff) + 1),
            TelemetryHoldOp{e, rng, sink});
  }
  for (auto _ : state) {
    e.step();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Arg(2);

/// Many periodic timers ticking through a horizon (rate-monotonic style
/// period spread), measuring the rearm path.
void BM_EnginePeriodicTimers(benchmark::State& state) {
  const int timers = static_cast<int>(state.range(0));
  std::uint64_t ticks = 0;
  for (auto _ : state) {
    sim::Engine e;
    std::vector<std::unique_ptr<sim::PeriodicTimer>> ts;
    ts.reserve(static_cast<std::size_t>(timers));
    for (int i = 0; i < timers; ++i) {
      ts.push_back(std::make_unique<sim::PeriodicTimer>(
          e, microseconds(100 + 13 * i), [&ticks] { ++ticks; }));
      ts.back()->start();
    }
    e.run_until(TimePoint{milliseconds(50).ns()});
    for (auto& t : ts) t->stop();
  }
  benchmark::DoNotOptimize(ticks);
  state.SetItemsProcessed(static_cast<std::int64_t>(ticks));
}
BENCHMARK(BM_EnginePeriodicTimers)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  return aqm::bench::run_with_json_report(argc, argv, "engine");
}

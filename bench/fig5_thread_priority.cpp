// Figure 5: thread priority alone. Sender 1 high / sender 2 low RT-CORBA
// priority mapped to receiver-host thread priorities; competing CPU load on
// the receiver; no network management (no DSCP).
//
// Paper shape: (a) without cross traffic the high-priority task exhibits
// significantly lower latency; (b) with cross traffic the network is the
// bottleneck and thread priorities cannot maintain QoS — both streams
// become unpredictable.
//
// The two runs are independent trials on the shard-parallel experiment
// runner (--jobs N); output is byte-identical for every worker count.
#include <iostream>

#include "common/priority_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  PriorityScenarioConfig base;
  base.duration = seconds(30);
  // 30'000 maps to a high native thread priority, 1'000 to a low one.
  base.sender1_policy = PolicyBuilder::sender(core::kFlowSender1, 30'000);
  base.sender2_policy = PolicyBuilder::sender(core::kFlowSender2, 1'000);
  base.cpu_load = true;            // load lands between the two

  PriorityScenarioConfig congested = base;
  congested.cross_traffic = true;

  core::Experiment<PriorityScenarioResult> exp;
  exp.add("fig5a-quiet-net", base.seed,
          [base](const core::TrialSpec&) { return run_priority_scenario(base); });
  exp.add("fig5b-congested", congested.seed, [congested](const core::TrialSpec&) {
    return run_priority_scenario(congested);
  });
  const auto results = exp.run(opts);
  const auto& a = results[0];
  const auto& b = results[1];

  banner("Figure 5(a): thread priorities + CPU load, no cross traffic");
  print_latency_series(a, seconds(2), TimePoint{seconds(30).ns()});
  print_summary("Figure 5(a) summary", a);

  banner("Figure 5(b): thread priorities + CPU load + 16 Mbps cross traffic");
  print_latency_series(b, seconds(2), TimePoint{seconds(30).ns()});
  print_summary("Figure 5(b) summary", b);

  const auto a1 = a.s1_stats();
  const auto a2 = a.s2_stats();
  const auto b1 = b.s1_stats();
  std::cout << "\nShape check vs paper:\n"
            << "  (a) high-prio mean " << fmt(a1.mean()) << " ms vs low-prio mean "
            << fmt(a2.mean()) << " ms (" << fmt(a2.mean() / std::max(0.001, a1.mean()), 1)
            << "x)\n"
            << "  (b) even the high-prio stream degrades: mean " << fmt(b1.mean())
            << " ms, max " << fmt(b1.max()) << " ms — thread priority cannot fix a"
            << " network bottleneck\n";
  return 0;
}

// city_scale: the million-flow substrate driver (DESIGN.md §10).
//
// Sweeps one simulated "city" fabric — H sender hosts spread over M edge
// routers, all funneling through a core router into one sink — from ~1k to
// ~256k concurrent flows, with EF reservations installed for every 8th
// flow on both IntServ egress stages (edge->core and core->sink). This is
// the workload the flat flow tables exist for: hundreds of thousands of
// reservations live on a single egress queue while packets from across the
// whole id space interleave at the fan-in point.
//
// One variant trial re-runs the 32k configuration with the hierarchical
// policing parent enabled on the core egress, capping the reserved
// aggregate below the sum of the children — the per-class parent bucket in
// action (two bucket touches per packet regardless of sibling count).
//
// Trials fan out over the shard-parallel experiment runner (--jobs N); the
// table is assembled from results in case order, so the output is
// byte-identical for every worker count — which CI exercises, since every
// number below ultimately comes out of the hashed flow tables through
// their deterministic ordered snapshots.
//
// --partitions N additionally shards each world ACROSS worker threads with
// the conservative-lookahead partitioned engine (DESIGN.md §14): the
// topology cut falls on the edge->core uplinks, whose propagation delay is
// the lookahead. Counters, the table, the --metrics sidecar and the --slo
// health stream are all byte-identical for every partition count — CI
// diffs --partitions 2 against 1.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "sim/partition.hpp"

namespace {

using namespace aqm;

struct CityConfig {
  std::size_t edge_routers = 4;
  std::size_t hosts = 64;            // senders, spread round-robin over edges
  std::size_t flows_per_host = 16;   // total flows = hosts * flows_per_host
  int packets_per_flow = 8;
  double parent_rate_bps = 0.0;      // > 0: HTB parent on the core egress
  unsigned partitions = 1;           // world shards (1 = single engine)
  bool collect_metrics = false;      // fill CityResult::metrics
  bool telemetry = false;            // fill CityResult::health (drop-rate SLOs)
};

struct CityResult {
  std::uint64_t n_flows = 0;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t reserved_sent = 0;
  std::uint64_t reserved_delivered = 0;
  double core_reserved_rate_bps = 0.0;
  std::uint64_t core_dropped = 0;
  // End-to-end latency sums at the sink (ns), split reserved vs. the rest.
  std::int64_t reserved_latency_ns = 0;
  std::int64_t other_latency_ns = 0;
  obs::MetricsSnapshot metrics;  // --metrics sidecar payload
  obs::HealthReport health;      // --slo sidecar payload

  [[nodiscard]] double reserved_latency_ms() const {
    return reserved_delivered == 0
               ? 0.0
               : static_cast<double>(reserved_latency_ns) / 1e6 /
                     static_cast<double>(reserved_delivered);
  }
  [[nodiscard]] double other_latency_ms() const {
    const std::uint64_t n = delivered - reserved_delivered;
    return n == 0 ? 0.0
                  : static_cast<double>(other_latency_ns) / 1e6 /
                        static_cast<double>(n);
  }
};

bool is_reserved(net::FlowId f) { return (f - 1) % 8 == 0; }

CityResult run_city(const CityConfig& cfg) {
  sim::World world(sim::EngineConfig{cfg.partitions});
  for (unsigned p = 0; p < world.partitions(); ++p) world.engine(p).reserve(1 << 16);
  net::Network net(world);

  const net::NodeId core = net.add_node("core");
  const net::NodeId sink = net.add_node("sink");
  std::vector<net::NodeId> edges;
  for (std::size_t m = 0; m < cfg.edge_routers; ++m) {
    edges.push_back(net.add_node("edge" + std::to_string(m)));
  }
  std::vector<net::NodeId> hosts;
  for (std::size_t h = 0; h < cfg.hosts; ++h) {
    hosts.push_back(net.add_node("host" + std::to_string(h)));
  }

  const auto make_intserv = [&cfg](bool is_core) -> std::unique_ptr<net::Queue> {
    net::IntServQueue::Config qc;
    qc.best_effort_capacity = 4'096;
    if (is_core && cfg.parent_rate_bps > 0.0) {
      qc.parent_rate_bps = cfg.parent_rate_bps;
      qc.parent_bucket_bytes = 64'000;
    }
    return std::make_unique<net::IntServQueue>(qc);
  };

  net::LinkConfig host_up;
  host_up.bandwidth_bps = 100e6;
  net::LinkConfig edge_up;
  edge_up.bandwidth_bps = 1e9;
  // The core uplink is the deliberate bottleneck: every configuration
  // offers far more than 30 Mbps at the fan-in, so best effort sheds load
  // there while reserved flows ride the guaranteed queues through.
  net::LinkConfig core_up;
  core_up.bandwidth_bps = 30e6;
  for (std::size_t h = 0; h < cfg.hosts; ++h) {
    net.add_link(hosts[h], edges[h % cfg.edge_routers], host_up);
  }
  std::vector<net::IntServQueue*> edge_egress;
  for (const net::NodeId e : edges) {
    auto q = make_intserv(false);
    edge_egress.push_back(static_cast<net::IntServQueue*>(q.get()));
    net.add_link(e, core, edge_up, std::move(q));
  }
  auto core_q = make_intserv(true);
  net::IntServQueue& core_egress = *static_cast<net::IntServQueue*>(core_q.get());
  net.add_link(core, sink, core_up, std::move(core_q));

  // Reservations: every 8th flow is EF with a guaranteed rate, installed on
  // both IntServ stages its packets cross. Ids ascend, so each install
  // extends the incremental reserved-rate sum (no O(n) re-sum on this path).
  const std::uint64_t n_flows = cfg.hosts * cfg.flows_per_host;
  const TimePoint t0 = TimePoint::zero();
  for (std::uint64_t f = 1; f <= n_flows; f += 8) {
    const std::size_t host = static_cast<std::size_t>((f - 1) / cfg.flows_per_host);
    edge_egress[host % cfg.edge_routers]->install_reservation(f, 50e3, 16'000, t0);
    core_egress.install_reservation(f, 50e3, 16'000, t0);
  }

  // Cut the world: the branch heuristic puts each edge router's host tree
  // in one unit and cuts on the edge->core uplinks (positive propagation,
  // so they carry the lookahead); core + sink stay on partition 0.
  net.auto_partition();
  if (cfg.telemetry) net.enable_telemetry_log();

  CityResult out;
  sim::Engine& sink_engine = net.engine_of(sink);
  net.set_receiver(sink, [&sink_engine, &out](net::Packet&& p) {
    const std::int64_t lat = (sink_engine.now() - p.sent_at).ns();
    (is_reserved(p.flow) ? out.reserved_latency_ns : out.other_latency_ns) += lat;
  });

  // Each host bursts its flows round-robin, hosts staggered across one
  // second so the fan-in stages see interleaved ids from the whole space.
  out.n_flows = n_flows;
  for (std::size_t h = 0; h < cfg.hosts; ++h) {
    const TimePoint start =
        TimePoint::zero() + microseconds(static_cast<std::int64_t>(
                                1 + (h * 1'000'000) / cfg.hosts));
    const net::NodeId src = hosts[h];
    net.engine_of(src).at(start, [&net, &cfg, h, src, sink] {
      for (int round = 0; round < cfg.packets_per_flow; ++round) {
        for (std::size_t j = 0; j < cfg.flows_per_host; ++j) {
          const auto f =
              static_cast<net::FlowId>(h * cfg.flows_per_host + j + 1);
          net::Packet p;
          p.dst = sink;
          p.flow = f;
          p.seq = static_cast<std::uint64_t>(round);
          p.size_bytes = 700;
          p.dscp = is_reserved(f)  ? net::dscp::kEf
                   : j % 3 == 0    ? net::dscp::kAf11
                                   : net::dscp::kBestEffort;
          net.send(src, std::move(p));
        }
      }
    });
  }
  world.run();

  out.sent = net.totals().sent;
  out.delivered = net.totals().delivered;
  out.dropped = net.totals().dropped;
  for (std::uint64_t f = 1; f <= n_flows; f += 8) {
    out.reserved_sent += net.flow(f).sent;
    out.reserved_delivered += net.flow(f).delivered;
  }
  out.core_reserved_rate_bps = core_egress.reserved_rate_bps();
  out.core_dropped = core_egress.stats().dropped;

  if (cfg.collect_metrics) {
    // Totals plus a probe flow per traffic class (full per-flow export at
    // 256k flows would be a ~1.5M-line sidecar). The probes cross shard
    // boundaries in partitioned runs, so the merge itself is on the diff.
    obs::MetricsRegistry reg;
    const auto emit = [&reg](const std::string& base, const net::FlowCounters& c) {
      reg.counter(base + ".sent").set(c.sent);
      reg.counter(base + ".delivered").set(c.delivered);
      reg.counter(base + ".dropped").set(c.dropped);
      reg.counter(base + ".sent_bytes").set(c.sent_bytes);
      reg.counter(base + ".delivered_bytes").set(c.delivered_bytes);
    };
    emit("net.total", net.totals());
    const net::FlowId probes[] = {1, 2, 4, static_cast<net::FlowId>(n_flows)};
    for (const net::FlowId f : probes) {
      emit("net.flow" + std::to_string(f), net.flow(f));
    }
    reg.counter("net.core.dropped").set(out.core_dropped);
    out.metrics = reg.snapshot();
  }

  if (cfg.telemetry) {
    // One hub, fed after the fact from the per-partition telemetry logs in
    // merged (time, partition, sequence) order — never attached to the
    // engines, so the health stream is independent of the partition count.
    obs::TelemetryHub hub;
    obs::SloSpec slo;
    slo.max_drop_rate = 0.05;
    // 64 monitors spread across the id space, so they land on hosts over
    // the whole burst stagger — late hosts hit the saturated core uplink
    // and their best-effort monitors breach.
    const std::uint64_t stride = n_flows < 64 ? 1 : n_flows / 64;
    for (std::uint64_t f = 1; f <= n_flows; f += stride) {
      hub.set_slo(f, slo);
    }
    net.replay_telemetry(hub);
    hub.finalize(net.end_time());
    out.health = hub.report();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  banner("city_scale: flow-substrate fan-in sweep (1k -> 256k flows)");

  struct Case {
    const char* name;
    CityConfig cfg;
  };
  const Case cases[] = {
      {"1k flows (4 edges)", {4, 64, 16, 8, 0.0}},
      {"32k flows (8 edges)", {8, 256, 128, 2, 0.0}},
      {"256k flows (16 edges)", {16, 512, 512, 1, 0.0}},
      {"32k flows + HTB parent", {8, 256, 128, 2, /*parent=*/20e6}},
  };

  core::Experiment<CityResult> exp;
  for (const auto& c : cases) {
    CityConfig cfg = c.cfg;
    cfg.partitions = opts.partitions;
    cfg.collect_metrics = !opts.metrics_path.empty();
    cfg.telemetry = !opts.slo_path.empty();
    exp.add(c.name, /*seed=*/cfg.hosts * cfg.flows_per_host,
            [cfg](const core::TrialSpec&) { return run_city(cfg); });
  }
  const auto results = exp.run(opts);

  if (!opts.slo_path.empty()) {
    std::vector<obs::NamedHealthReport> reports;
    for (std::size_t i = 0; i < results.size(); ++i) {
      reports.push_back({exp.spec(i).name, results[i].health});
    }
    if (obs::write_health_sidecar_file(opts.slo_path, reports)) {
      std::cerr << "health events written to " << opts.slo_path << "\n";
    } else {
      std::cerr << "failed to write health events to " << opts.slo_path << "\n";
      return 1;
    }
  }
  if (!opts.metrics_path.empty()) {
    std::vector<obs::NamedSnapshot> snaps;
    for (std::size_t i = 0; i < results.size(); ++i) {
      snaps.push_back({exp.spec(i).name, results[i].metrics});
    }
    if (obs::write_metrics_sidecar_file(opts.metrics_path, snaps)) {
      std::cerr << "metrics written to " << opts.metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << opts.metrics_path << "\n";
      return 1;
    }
  }

  TextTable table({"scenario", "flows", "sent", "delivered", "dropped",
                   "resv delivered", "resv lat (ms)", "BE lat (ms)",
                   "core resv (Mbps)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.row({cases[i].name, std::to_string(r.n_flows), std::to_string(r.sent),
               std::to_string(r.delivered), std::to_string(r.dropped),
               std::to_string(r.reserved_delivered) + "/" +
                   std::to_string(r.reserved_sent),
               fmt(r.reserved_latency_ms(), 2), fmt(r.other_latency_ms(), 2),
               fmt(r.core_reserved_rate_bps / 1e6, 3)});
  }
  std::cout << "\n";
  table.print();
  std::cout << "\nNotes: every 8th flow holds an EF reservation on both IntServ\n"
            << "stages (edge->core, core->sink); the 30 Mbps core uplink is\n"
            << "oversubscribed at every scale, so past 1k flows best effort\n"
            << "sheds load there while reserved flows ride the guaranteed\n"
            << "queues through (100% delivered, much lower latency). The HTB\n"
            << "variant adds a 20 Mbps shared parent bucket over the reserved\n"
            << "class at the core egress: excess EF is demoted into the\n"
            << "saturated best-effort queue and mostly dropped there, so only\n"
            << "about half the reserved packets survive vs. the uncapped\n"
            << "32k row.\n";
  return 0;
}

// Ablation: "using the priority paradigm to drive who gets reservations
// and to what degree" — the research direction the paper's conclusion
// proposes. Four video streams with distinct CORBA priorities share the
// 10 Mbps bottleneck with a 43.8 Mbps load pulse; the middleware allocates
// RSVP reservations greedily in priority order until admission control
// refuses, then compares per-stream delivery with and without the policy.
//
// The two policy runs are independent trials on the shard-parallel
// experiment runner (--jobs N); each returns its per-stream rows, which
// are appended to the table in policy order — output is byte-identical
// for every worker count.
#include <array>
#include <iostream>
#include <memory>

#include "core/experiment.hpp"

#include "avstreams/stream.hpp"
#include "common/policy_builder.hpp"
#include "common/table.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"

namespace {

using namespace aqm;
using namespace aqm::bench;

struct Stream {
  orb::CorbaPriority priority;
  net::FlowId flow;
  std::unique_ptr<media::VideoSinkStats> stats;
  std::unique_ptr<av::VideoSinkEndpoint> sink;
  std::unique_ptr<av::StreamBinding> binding;
  std::unique_ptr<media::VideoSource> source;
  bool reserved = false;
};

struct StreamRow {
  orb::CorbaPriority priority;
  bool reserved;
  double delivered_pct;
  double latency_mean_ms;
  double latency_stddev_ms;
};

std::array<StreamRow, 4> run_case(bool priority_driven_reservations) {
  core::ReservationTestbed bed((core::ReservationTestbedParams{}));
  const media::GopStructure gop = media::GopStructure::mpeg1_paper_profile();
  // Deliberately generous per-stream reservations (jitter headroom) so the
  // 90%-of-10Mbps admission budget cannot hold all four streams.
  const double stream_rate = 2.8e6;

  std::array<Stream, 4> streams;
  const orb::CorbaPriority priorities[] = {30'000, 22'000, 14'000, 6'000};
  orb::Poa& poa = bed.receiver_orb.create_poa("video");
  for (std::size_t i = 0; i < streams.size(); ++i) {
    Stream& s = streams[i];
    s.priority = priorities[i];
    s.flow = core::kFlowVideo + i;
    s.stats = std::make_unique<media::VideoSinkStats>(bed.engine, gop);
    auto* stats = s.stats.get();
    s.sink = std::make_unique<av::VideoSinkEndpoint>(
        poa, "display" + std::to_string(i), microseconds(400),
        [stats](const media::VideoFrame& f) { stats->on_received(f); });
    s.binding = std::make_unique<av::StreamBinding>(bed.sender_orb, s.sink->ref(), s.flow);
    // Per-stream CORBA priority as a declarative policy binding on the
    // QoS-policy interceptor (rather than pinning the stub).
    core::QoSSession(bed.sender_orb, s.binding->stub())
        .apply(PolicyBuilder{}.priority(s.priority));
    auto* binding = s.binding.get();
    s.source = std::make_unique<media::VideoSource>(
        bed.engine, gop, 30.0, [stats, binding](const media::VideoFrame& f) {
          stats->on_transmitted(f);
          binding->push(f);
        });
  }

  if (priority_driven_reservations) {
    // Priority drives reservation: walk streams from highest CORBA
    // priority down, reserving until admission control says no.
    for (auto& s : streams) {
      s.binding->reserve(bed.qos.agent(bed.sender_node),
                         net::FlowSpec{stream_rate, 40'000},
                         [&s](Status<std::string> status) { s.reserved = status.ok(); });
    }
  }

  const TimePoint start{seconds(1).ns()};
  const TimePoint stop{seconds(61).ns()};
  for (auto& s : streams) s.source->run_between(start, stop);
  bed.load_traffic->run_between(TimePoint{seconds(10).ns()}, TimePoint{seconds(50).ns()});
  bed.engine.run_until(stop + seconds(5));

  std::array<StreamRow, 4> rows;
  for (std::size_t i = 0; i < streams.size(); ++i) {
    const auto& s = streams[i];
    const auto lat = s.stats->latency_series().stats();
    const double pct = s.stats->transmitted_count() == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(s.stats->received_count()) /
                                 static_cast<double>(s.stats->transmitted_count());
    rows[i] = {s.priority, s.reserved, pct, lat.mean(), lat.stddev()};
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = core::parse_experiment_options(argc, argv);

  banner("Ablation: priority-driven reservation allocation (paper Section 6)");

  const bool policies[] = {false, true};
  core::Experiment<std::array<StreamRow, 4>> exp;
  for (const bool policy : policies) {
    exp.add(policy ? "priority-driven" : "best-effort", 43,
            [policy](const core::TrialSpec&) { return run_case(policy); });
  }
  const auto results = exp.run(opts);

  TextTable table({"policy", "CORBA priority", "reserved", "% delivered",
                   "mean latency(ms)", "stddev(ms)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const StreamRow& row : results[i]) {
      table.row({policies[i] ? "priority-driven" : "best effort",
                 std::to_string(row.priority), row.reserved ? "yes" : "no",
                 fmt(row.delivered_pct, 1), fmt(row.latency_mean_ms, 1),
                 fmt(row.latency_stddev_ms, 1)});
    }
  }
  table.print();
  std::cout << "\nReading: 4 x 1.2 Mbps streams + 43.8 Mbps load over 10 Mbps.\n"
            << "Admission control (90% reservable) grants reservations to the\n"
            << "highest-priority streams; they ride out the load pulse while\n"
            << "unreserved streams collapse with the best-effort traffic.\n";
  return 0;
}

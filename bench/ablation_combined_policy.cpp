// Ablation: which mechanism buys what, as contention grows. Sweeps the
// cross-traffic rate and compares four end-to-end policies for the two
// video senders under simultaneous CPU load:
//   none        — best effort everywhere (Fig 4 regime)
//   thread-prio — RT-CORBA -> thread priorities only (Fig 5 regime)
//   dscp        — network DSCP marking only
//   combined    — thread priorities + DSCP (Fig 6 regime)
// This extends the paper's Figures 4-6 into a single contention sweep.
//
// The 20 (cross rate x policy) cells are independent trials on the
// shard-parallel experiment runner (--jobs N); the table is assembled in
// sweep order afterwards, so output is byte-identical for every worker
// count.
#include <iostream>

#include "common/priority_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  banner("Ablation: policy x cross-traffic sweep (sender 1 = high priority)");

  const double cross_rates[] = {4e6, 8e6, 12e6, 16e6, 24e6};
  struct Policy {
    const char* name;
    bool thread_prio;
    bool dscp;
  };
  const Policy policies[] = {
      {"none", false, false},
      {"thread-prio", true, false},
      {"dscp", false, true},
      {"combined", true, true},
  };

  struct Cell {
    double cross;
    const Policy* policy;
  };
  std::vector<Cell> cells;
  core::Experiment<PriorityScenarioResult> exp;
  for (const double cross : cross_rates) {
    for (const auto& p : policies) {
      PriorityScenarioConfig cfg;
      cfg.duration = seconds(15);
      cfg.cross_traffic = true;
      cfg.cpu_load = true;
      // Identical router hardware across policies; only the control knobs
      // differ. Thread priority via the CORBA priority mapping; network
      // priority via an explicit EF protocol property (so "dscp" does NOT
      // silently raise the thread priority too).
      cfg.diffserv_router = true;
      auto s1 = PolicyBuilder::sender(core::kFlowSender1, p.thread_prio ? 30'000 : 1'000);
      if (p.dscp) s1.dscp(net::dscp::kEf);
      cfg.sender1_policy = s1;
      cfg.sender2_policy = PolicyBuilder::sender(core::kFlowSender2, 1'000);
      cfg.cross_rate_bps = cross;
      cells.push_back({cross, &p});
      exp.add(std::string("cross-") + fmt(cross / 1e6, 0) + "-" + p.name, cfg.seed,
              [cfg](const core::TrialSpec&) { return run_priority_scenario(cfg); });
    }
  }
  const auto results = exp.run(opts);

  TextTable table({"cross(Mbps)", "policy", "s1 mean(ms)", "s1 stddev", "s1 loss%",
                   "s2 mean(ms)", "s2 loss%"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto s1 = r.s1_stats();
    const auto s2 = r.s2_stats();
    const double loss1 =
        100.0 * (1.0 - static_cast<double>(r.s1_received) /
                           static_cast<double>(std::max<std::uint64_t>(1, r.s1_sent)));
    const double loss2 =
        100.0 * (1.0 - static_cast<double>(r.s2_received) /
                           static_cast<double>(std::max<std::uint64_t>(1, r.s2_sent)));
    table.row({fmt(cells[i].cross / 1e6, 0), cells[i].policy->name, fmt(s1.mean()),
               fmt(s1.stddev()), fmt(loss1, 1), fmt(s2.mean()), fmt(loss2, 1)});
  }
  std::cout << "\n";
  table.print();
  std::cout << "\nReading: once the offered load exceeds the 10 Mbps bottleneck,\n"
            << "'none' and 'thread-prio' collapse; 'dscp' and 'combined' keep the\n"
            << "marked stream flat, and only 'combined' also bounds the receiver-\n"
            << "host processing delay (visible at low cross rates).\n";
  return 0;
}

// Figure 6: combined thread + network priority. Both senders get thread
// priorities AND DSCPs (sender 1 higher on both), giving them preferential
// treatment over the congestion traffic, with CPU load and 16 Mbps cross
// traffic both active.
//
// Paper shape: both senders become much more predictable; sender 1 shows
// better performance (lower latency) than sender 2 and than thread
// priority alone (Figure 5).
//
// The combined run and the thread-priority-only reference run are
// independent trials on the shard-parallel experiment runner (--jobs N);
// output is byte-identical for every worker count.
#include <iostream>

#include "common/priority_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  PriorityScenarioConfig cfg;
  cfg.duration = seconds(30);
  // DiffServ router + per-binding banded DSCP mapping on both senders:
  // 30'000 maps to EF with native prio above the CPU load, 10'000 to AF11
  // with native prio below it.
  cfg.sender1_policy = PolicyBuilder::sender(core::kFlowSender1, 30'000).banded_dscp();
  cfg.sender2_policy = PolicyBuilder::sender(core::kFlowSender2, 10'000).banded_dscp();
  cfg.cpu_load = true;
  cfg.cross_traffic = true;

  // For comparison: the same contention with thread priority only (Fig 5b).
  PriorityScenarioConfig fig5b = cfg;
  fig5b.sender1_policy = PolicyBuilder::sender(core::kFlowSender1, 30'000);
  fig5b.sender2_policy = PolicyBuilder::sender(core::kFlowSender2, 10'000);

  core::Experiment<PriorityScenarioResult> exp;
  exp.add("fig6-combined", cfg.seed,
          [cfg](const core::TrialSpec&) { return run_priority_scenario(cfg); });
  exp.add("fig6-ref-thread-only", fig5b.seed,
          [fig5b](const core::TrialSpec&) { return run_priority_scenario(fig5b); });
  const auto results = exp.run(opts);
  const auto& r = results[0];
  const auto& r5 = results[1];

  banner("Figure 6: thread priorities + DSCP, CPU load + 16 Mbps cross traffic");
  print_latency_series(r, seconds(2), TimePoint{seconds(30).ns()});
  print_summary("Figure 6 summary", r);
  print_summary("Reference (same contention, thread priority only)", r5);

  const auto s1 = r.s1_stats();
  const auto s2 = r.s2_stats();
  const auto ref = r5.s1_stats();
  std::cout << "\nShape check vs paper:\n"
            << "  combined control:  sender1 mean " << fmt(s1.mean()) << " ms (stddev "
            << fmt(s1.stddev()) << "), sender2 mean " << fmt(s2.mean()) << " ms\n"
            << "  thread-prio only:  sender1 mean " << fmt(ref.mean()) << " ms (stddev "
            << fmt(ref.stddev()) << ")\n"
            << "  => combined management delivers predictability neither mechanism\n"
            << "     achieves alone, and sender1 < sender2 in latency.\n";
  return 0;
}

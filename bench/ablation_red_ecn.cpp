// Ablation: early congestion signaling with the ECN bits.
//
// The paper notes the DiffServ byte carries "two bits of Explicit
// Congestion Notification" but never uses them. This experiment shows what
// they buy: with a RED router marking ECN-capable GIOP traffic, the QuO
// rate-adaptation qosket reacts to *marks* before any queue overflows, so
// the stream adapts with low latency and (nearly) no loss; with a plain
// drop-tail router the same qosket only reacts after the queue has filled
// and frames have died.
//
// One 30 fps MPEG stream over the 10 Mbps bottleneck; bursty cross traffic
// (average 9 Mbps) pushes the aggregate just past capacity.
//
// The three router/feedback cases are independent trials on the
// shard-parallel experiment runner (--jobs N); output is byte-identical
// for every worker count.
#include <iostream>
#include <memory>

#include "core/experiment.hpp"

#include "avstreams/rate_adaptation.hpp"
#include "avstreams/stream.hpp"
#include "common/table.hpp"
#include "media/video_sink.hpp"
#include "media/video_source.hpp"
#include "net/red_queue.hpp"
#include "net/traffic_gen.hpp"
#include "orb/orb.hpp"
#include "quo/status_channel.hpp"

namespace {

using namespace aqm;
using namespace aqm::bench;

enum class RouterKind { DropTail, RedEcn };
enum class Feedback { None, LossRatio, EcnMarks };

struct CaseResult {
  std::uint64_t transmitted = 0;
  std::uint64_t received = 0;
  RunningStats latency_ms;
  std::uint64_t ce_marks = 0;
  std::size_t adaptations = 0;
};

CaseResult run_case(RouterKind router, Feedback feedback) {
  sim::Engine engine;
  net::Network network(engine);
  const auto sender = network.add_node("sender");
  const auto hub = network.add_node("router");
  const auto receiver = network.add_node("receiver");
  const auto load_src = network.add_node("load");

  net::LinkConfig access;
  access.bandwidth_bps = 100e6;
  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  network.add_duplex_link(sender, hub, access);
  network.add_duplex_link(load_src, hub, access);
  std::unique_ptr<net::Queue> egress;
  if (router == RouterKind::RedEcn) {
    net::RedConfig red;
    red.capacity_packets = 1000;
    red.min_threshold = 30;
    red.max_threshold = 200;
    red.max_probability = 0.15;
    egress = std::make_unique<net::RedQueue>(red);
  } else {
    egress = std::make_unique<net::DropTailQueue>(1000);
  }
  network.add_link(hub, receiver, bottleneck, std::move(egress));
  network.add_link(receiver, hub, access);

  os::Cpu sender_cpu(engine, "sender-cpu");
  os::Cpu receiver_cpu(engine, "receiver-cpu");
  orb::OrbConfig orb_cfg;
  orb_cfg.transport.ecn_capable = (router == RouterKind::RedEcn);
  orb::OrbEndpoint sender_orb(network, sender, sender_cpu, orb_cfg);
  orb::OrbEndpoint receiver_orb(network, receiver, receiver_cpu, orb_cfg);

  const media::GopStructure gop = media::GopStructure::mpeg1_paper_profile();
  const net::FlowId flow = 71;

  CaseResult result;
  media::VideoSinkStats stats(engine, gop);
  orb::Poa& video_poa = receiver_orb.create_poa("video");
  av::VideoSinkEndpoint sink(video_poa, "display", microseconds(400),
                             [&](const media::VideoFrame& f) { stats.on_received(f); });
  av::StreamBinding binding(sender_orb, sink.ref(), flow);

  media::FrameFilter filter;
  av::RateAdaptationConfig qcfg;
  qcfg.reserved_rate_bps = 700e3;  // adaptation target: the 10 fps stream
  qcfg.ip_stream_rate_bps = 650e3;
  av::RateAdaptationQosket qosket(engine, filter, qcfg);

  media::VideoSource source(engine, gop, 30.0, [&](const media::VideoFrame& f) {
    if (feedback != Feedback::None && !filter.filter(f)) return;
    stats.on_transmitted(f);
    binding.push(f);
  });

  // Receiver reports both delivery count and cumulative CE marks.
  orb::Poa& ctl_poa = sender_orb.create_poa("ctl");
  quo::StatusCollector collector(ctl_poa, "status");
  quo::ValueSysCond& rx_total = collector.condition("frames_received");
  quo::ValueSysCond& marks_total = collector.condition("ce_marks");
  quo::StatusReporter reporter(receiver_orb, collector.ref(), milliseconds(500));
  reporter.probe("frames_received",
                 [&] { return static_cast<double>(sink.frames_received()); });
  reporter.probe("ce_marks", [&] {
    return static_cast<double>(receiver_orb.transport().ce_marks(flow));
  });

  std::uint64_t last_rx = 0;
  std::uint64_t last_tx = 0;
  double last_marks = 0.0;
  rx_total.subscribe([&] {
    const auto rx = static_cast<std::uint64_t>(rx_total.value());
    const std::uint64_t tx = stats.transmitted_count();
    const std::uint64_t dtx = tx - last_tx;
    const std::uint64_t drx = rx - last_rx;
    const double dmarks = marks_total.value() - last_marks;
    last_tx = tx;
    last_rx = rx;
    last_marks = marks_total.value();
    if (dtx == 0) return;
    if (feedback == Feedback::LossRatio) {
      qosket.report(static_cast<double>(drx) / static_cast<double>(dtx));
    } else if (feedback == Feedback::EcnMarks) {
      // A congestion-experienced mark is a "please slow down" even though
      // the frame arrived: treat marked deliveries as pressure.
      const double clean = std::max(0.0, static_cast<double>(drx) - dmarks);
      qosket.report(clean / static_cast<double>(dtx));
    }
  });

  source.run_between(TimePoint{seconds(1).ns()}, TimePoint{seconds(61).ns()});
  reporter.start();

  net::TrafficGenerator::Config load;
  load.src = load_src;
  load.dst = receiver;
  load.rate_bps = 18e6;  // 50% duty -> ~9 Mbps average
  load.on_mean = seconds(2);
  load.off_mean = seconds(2);
  load.flow = 72;
  load.poisson = true;
  load.seed = 21;
  net::TrafficGenerator load_gen(network, load);
  load_gen.run_between(TimePoint{seconds(10).ns()}, TimePoint{seconds(50).ns()});

  engine.run_until(TimePoint{seconds(63).ns()});
  reporter.stop();

  result.transmitted = stats.transmitted_count();
  result.received = stats.received_count();
  result.latency_ms = stats.latency_series().stats();
  result.ce_marks = receiver_orb.transport().ce_marks(flow);
  result.adaptations = qosket.history().size();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = core::parse_experiment_options(argc, argv);

  banner("Ablation: RED/ECN early adaptation vs loss-triggered adaptation");

  struct Case {
    const char* name;
    RouterKind router;
    Feedback feedback;
  };
  const Case cases[] = {
      {"drop-tail, no adaptation", RouterKind::DropTail, Feedback::None},
      {"drop-tail, loss-triggered QuO", RouterKind::DropTail, Feedback::LossRatio},
      {"RED+ECN, mark-triggered QuO", RouterKind::RedEcn, Feedback::EcnMarks},
  };

  core::Experiment<CaseResult> exp;
  for (const auto& c : cases) {
    exp.add(c.name, 21, [router = c.router, feedback = c.feedback](
                            const core::TrialSpec&) { return run_case(router, feedback); });
  }
  const auto results = exp.run(opts);

  TextTable table({"configuration", "delivered/sent", "loss%", "mean lat(ms)",
                   "max lat(ms)", "CE marks", "adaptations"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& r = results[i];
    const double loss =
        r.transmitted == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.transmitted - std::min(r.transmitted, r.received)) /
                  static_cast<double>(r.transmitted);
    table.row({cases[i].name,
               std::to_string(r.received) + "/" + std::to_string(r.transmitted),
               fmt(loss, 1), fmt(r.latency_ms.mean(), 1),
               fmt(r.latency_ms.empty() ? 0.0 : r.latency_ms.max(), 1),
               std::to_string(r.ce_marks), std::to_string(r.adaptations)});
  }
  std::cout << "\n";
  table.print();
  std::cout << "\nReading: RED keeps the bottleneck queue short and the ECN marks\n"
            << "let the qosket shed rate before frames die — lower latency and\n"
            << "loss than reacting to losses after the drop-tail queue overflows.\n";
  return 0;
}

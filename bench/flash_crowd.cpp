// Flash crowd vs the adaptation loop: flow A's offered load steps from
// 1.5 Mbps to 4.5 Mbps at t=6 s while its reservation was admitted at
// 2 Mbps and the bottleneck's best-effort service is drowned by the
// 43.8 Mbps load source. Two trials over the identical arrival curve:
//   static    — reservations keep their admission-time rates; the excess
//               rides best effort and is lost for the rest of the run
//               (sustained drop-rate SLO breach).
//   feedback  — the FeedbackScheduler reads each flow's windowed drop
//               rate from the TelemetryHub every 500 ms epoch and
//               re-divides the bottleneck HTB pool proportional to
//               deficit, re-stamping the live reservations in place; the
//               SLO breaches at the step and recovers within a few epochs.
//
// Both trials run on the shard-parallel experiment runner (--jobs N);
// output is identical for every worker count.
#include <iostream>

#include "common/flash_crowd.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace {

using namespace aqm;
using namespace aqm::bench;

void print_case(const char* title, const FlashCrowdResult& r) {
  banner(title);
  TextTable table({"flow", "sent", "delivered", "post-step delivery%", "breaches",
                   "recoveries", "breached(s)", "breached at end"});
  table.row({"A (crowd)", std::to_string(r.a_sent), std::to_string(r.a_received),
             fmt(100.0 * r.a_post_step_delivery, 1), std::to_string(r.a_breaches),
             std::to_string(r.a_recoveries),
             fmt(static_cast<double>(r.a_breached_ns) / 1e9, 1),
             r.a_breached_at_end ? "yes" : "no"});
  table.row({"B (steady)", std::to_string(r.b_sent), std::to_string(r.b_received), "-",
             "-", "-", "-", "-"});
  table.print();
  if (r.epochs_run > 0) {
    std::cout << "  controller: " << r.epochs_run << " epochs, "
              << r.restamps_applied << " re-stamps applied\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = core::parse_experiment_options(argc, argv);

  core::Experiment<FlashCrowdResult> exp;
  for (const bool feedback : {false, true}) {
    FlashCrowdConfig cfg;
    cfg.feedback = feedback;
    exp.add(feedback ? "flash-crowd-feedback" : "flash-crowd-static", cfg.load_seed,
            [cfg](const core::TrialSpec&) { return run_flash_crowd(cfg); });
  }
  const auto results = exp.run(opts);

  print_case("Flash crowd, static policy", results[0]);
  print_case("Flash crowd, feedback control", results[1]);
  std::cout << "\nShape check: the static run breaches at the step and never\n"
            << "recovers; the feedback run breaches, then the controller grows\n"
            << "flow A's HTB share and the SLO recovers while the crowd is\n"
            << "still arriving.\n";
  return 0;
}

// Table 2: CPU reservation experiments. A client streams 400x250 PPM
// sensor images to a CORBA image-processing (ATR) server that runs the
// Kirsch, Prewitt and Sobel edge detectors in sequence on each image.
// Three runs: {no load, competing variable CPU load, load + CPU reserve}.
// Reported: average processing time and standard deviation per algorithm.
//
// Paper shape: load inflates times (Kirsch +41%, Prewitt +13%, Sobel +30%)
// and their variance; adding a CPU reserve restores both to near-unloaded
// values. The reserve here is created remotely through the CORBA
// CPU-reservation-manager servant (the paper's Utah/CMU agent).
//
// The three conditions are independent trials on the shard-parallel
// experiment runner (--jobs N); output is byte-identical for every worker
// count.
#include <array>
#include <iostream>
#include <optional>
#include <stdexcept>

#include "common/policy_builder.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/cpu_reservation_manager.hpp"
#include "core/experiment.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/ppm.hpp"
#include "imgproc/synth.hpp"
#include "orb/orb.hpp"
#include "os/load_generator.hpp"

namespace {

using namespace aqm;
using namespace aqm::bench;

constexpr std::array<img::EdgeAlgorithm, 3> kAlgorithms = {
    img::EdgeAlgorithm::Kirsch, img::EdgeAlgorithm::Prewitt, img::EdgeAlgorithm::Sobel};
constexpr os::Priority kAtrPriority = 100;
constexpr int kImages = 40;

struct RunResult {
  std::array<RunningStats, 3> per_algorithm_ms;
};

RunResult run_condition(bool with_load, bool with_reserve, std::uint64_t load_seed) {
  core::AtrTestbedParams params;
  params.server_cpu.reserve_utilization_cap = 0.95;
  core::AtrTestbed bed(params);

  // CPU reservation manager exposed over CORBA on the server host. The ATR
  // binding's stub is created up front so the reserve can be requested
  // declaratively: a QoSSession applies an EndToEndQosPolicy whose
  // server_cpu_reserve part rides the CORBA reservation manager.
  orb::Poa& mgmt_poa = bed.server_orb.create_poa("mgmt");
  core::CpuReservationManagerServer manager(mgmt_poa, bed.server_cpu);
  core::CpuReservationClient reserve_client(bed.client_orb, manager.ref());

  RunResult result;
  const std::size_t pixels = 400 * 250;
  os::ReserveId reserve = os::kNoReserve;

  // ATR server: each image is a twoway request answered asynchronously
  // (AMI deferred reply) after the three detectors ran in sequence as CPU
  // jobs (optionally attached to the reserve).
  orb::Poa& atr_poa = bed.server_orb.create_poa("atr");
  auto process_image = [&](std::size_t algo_index, orb::ServerRequest::Replier reply,
                           auto&& self) -> void {
    if (algo_index == kAlgorithms.size()) {
      reply({});
      return;
    }
    const auto algorithm = kAlgorithms[algo_index];
    const Duration cost =
        img::estimated_cost(algorithm, pixels, bed.server_cpu.hz());
    const TimePoint begin = bed.engine.now();
    bed.server_cpu.submit_for(
        cost, kAtrPriority,
        [&, algo_index, begin, reply, self]() mutable {
          result.per_algorithm_ms[algo_index].add((bed.engine.now() - begin).millis());
          self(algo_index + 1, std::move(reply), self);
        },
        reserve);
  };
  auto atr_servant = std::make_shared<orb::FunctionServant>(
      milliseconds(2),  // demarshal + PPM decode of the 300 KB image
      [&](orb::ServerRequest& req) {
        (void)img::decode_ppm(req.body);  // real decode; throws on corruption
        process_image(0, req.defer(), process_image);
      });
  const orb::ObjectRef atr_ref = atr_poa.activate_object("processor", atr_servant);
  orb::ObjectStub atr_stub(bed.client_orb, atr_ref);
  atr_stub.set_flow(core::kFlowImages);

  // Declarative reserve: the policy's server_cpu_reserve part rides the
  // CORBA reservation manager through a QoSSession on the ATR binding.
  core::QoSSession session(bed.client_orb, atr_stub, nullptr, &reserve_client);
  if (with_reserve) {
    const auto policy =
        PolicyBuilder{}.cpu_reserve(microseconds(47'500), milliseconds(50), true).build();
    std::optional<bool> granted;
    session.apply(policy, [&](Status<std::string> s) { granted = s.ok(); });
    bed.engine.run_until(bed.engine.now() + seconds(1));
    if (!granted.value_or(false) || !session.cpu_reserve_id()) {
      // Thrown (not exit()) so the parallel runner can surface the failure
      // from a worker thread.
      throw std::runtime_error("table2: CPU reserve creation failed");
    }
    reserve = *session.cpu_reserve_id();
  }

  std::unique_ptr<os::LoadGenerator> load;
  if (with_load) {
    os::LoadGenerator::Config cfg;
    cfg.priority = kAtrPriority;  // vanilla-Linux-style timeshared contention
    cfg.burst_mean = milliseconds(14);
    cfg.interval_mean = milliseconds(55);
    cfg.burst_jitter = 0.8;  // "variable and not sustained"
    load = std::make_unique<os::LoadGenerator>(bed.engine, bed.server_cpu, cfg,
                                               load_seed);
    load->start();
  }

  // Client: send the next image when the previous one's reply arrives.
  int remaining = kImages;
  std::uint64_t image_seed = 1;
  std::function<void()> send_next = [&] {
    if (remaining-- <= 0) return;
    const img::RgbImage scene = img::make_paper_scene(image_seed++);
    atr_stub.twoway("process_image", img::encode_ppm(scene),
                    [&](orb::CompletionStatus, std::vector<std::uint8_t>) { send_next(); },
                    seconds(30));
  };

  send_next();
  bed.engine.run_until(bed.engine.now() + seconds(120));
  if (load) load->stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = core::parse_experiment_options(argc, argv);

  banner("Table 2: CPU reservation experiments (400x250 PPM, Kirsch/Prewitt/Sobel)");
  std::cout << "conditions: no load, competing load, load + CPU reservation\n\n"
            << std::flush;

  // Same load seed (17) for both loaded conditions, as in the serial driver.
  core::Experiment<RunResult> exp;
  exp.add("table2-no-load", 17,
          [](const core::TrialSpec&) { return run_condition(false, false, 17); });
  exp.add("table2-load", 17,
          [](const core::TrialSpec&) { return run_condition(true, false, 17); });
  exp.add("table2-load-reserve", 17,
          [](const core::TrialSpec&) { return run_condition(true, true, 17); });
  const auto results = exp.run(opts);
  const RunResult& no_load = results[0];
  const RunResult& loaded = results[1];
  const RunResult& reserved = results[2];

  TextTable table({"Algorithm", "No Load avg(ms)", "std", "Load avg(ms)", "std",
                   "+%", "Load+Resv avg(ms)", "std"});
  for (std::size_t i = 0; i < kAlgorithms.size(); ++i) {
    const auto& base = no_load.per_algorithm_ms[i];
    const auto& load = loaded.per_algorithm_ms[i];
    const auto& resv = reserved.per_algorithm_ms[i];
    const double inflation = 100.0 * (load.mean() / base.mean() - 1.0);
    table.row({img::to_string(kAlgorithms[i]), fmt(base.mean(), 1), fmt(base.stddev(), 1),
               fmt(load.mean(), 1), fmt(load.stddev(), 1), "+" + fmt(inflation, 0) + "%",
               fmt(resv.mean(), 1), fmt(resv.stddev(), 1)});
  }
  table.print();
  std::cout << "\nShape check vs paper: competing load inflates execution time\n"
            << "(paper: Kirsch +41%, Prewitt +13%, Sobel +30%) and variance; the\n"
            << "CPU reserve (47.5 ms / 50 ms, granted via the CORBA reservation\n"
            << "manager) restores both to near-unloaded values.\n";
  return 0;
}

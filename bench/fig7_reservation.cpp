// Figure 7: predictability of image delivery using network reservation.
// 300 s of 1.2 Mbps MPEG-1 over the 10 Mbps bottleneck; 43.8 Mbps of load
// during t in [60, 120) s. Three configurations:
//   1. no adaptation                      (paper: almost all frames lost under load)
//   2. partial reservation + frame filter (paper: all I-frames delivered)
//   3. full reservation                   (paper: all frames delivered)
// Output: per-second frames sent / received series plus I-frame accounting.
//
// The three cases are independent trials on the shard-parallel experiment
// runner (--jobs N); output is identical for every worker count.
#include <iostream>

#include "common/reservation_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

namespace {

using namespace aqm;
using namespace aqm::bench;

struct Case {
  const char* title;
  ReservationLevel level;
  bool filtering;
};

constexpr Case kCases[] = {
    {"Figure 7 case 1: no adaptation", ReservationLevel::None, false},
    {"Figure 7 case 2: partial reservation (670 kbps) + QuO frame filtering",
     ReservationLevel::Partial, true},
    {"Figure 7 case 3: full reservation (1.3 Mbps)", ReservationLevel::Full, false},
};

void print_case(const Case& c, const ReservationScenarioResult& r) {
  banner(c.title);
  TextTable series({"t(s)", "frames sent", "frames received"});
  // Print a readable subsample: every 5 s, denser around the load window.
  for (std::size_t i = 0; i < r.tx_per_second.size(); ++i) {
    const bool near_load = i >= 55 && i <= 130;
    if (!near_load && i % 10 != 0) continue;
    if (near_load && i % 5 != 0) continue;
    const auto rx = i < r.rx_per_second.size() ? r.rx_per_second[i].count : 0;
    series.row({fmt(r.tx_per_second[i].start.seconds(), 0),
                std::to_string(r.tx_per_second[i].count), std::to_string(rx)});
  }
  series.print();

  std::cout << "\n  frames sourced      : " << r.frames_sourced << "\n"
            << "  frames transmitted  : " << r.frames_transmitted << "\n"
            << "  frames received     : " << r.frames_received << "\n"
            << "  decodable frames    : " << r.frames_decodable << "\n"
            << "  I-frames sent/recv  : " << r.i_frames_transmitted << " / "
            << r.i_frames_received << "\n"
            << "  under load          : " << r.received_under_load << " of "
            << r.sent_under_load << " transmitted frames delivered ("
            << fmt(r.delivered_percent_under_load(), 1) << "%)\n";
  if (!r.contract_history.empty()) {
    std::cout << "  QuO contract transitions:\n";
    for (const auto& [t, level_name] : r.contract_history) {
      std::cout << "    t=" << fmt(t.seconds(), 1) << "s -> " << level_name << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = core::parse_experiment_options(argc, argv);

  core::Experiment<ReservationScenarioResult> exp;
  for (const Case& c : kCases) {
    ReservationScenarioConfig cfg;
    cfg.reservation = c.level;
    cfg.frame_filtering = c.filtering;
    exp.add(c.title, cfg.load_seed,
            [cfg](const core::TrialSpec&) { return run_reservation_scenario(cfg); });
  }
  const auto results = exp.run(opts);

  for (std::size_t i = 0; i < results.size(); ++i) print_case(kCases[i], results[i]);
  std::cout << "\nShape check vs paper: case 1 loses almost everything under load;\n"
            << "case 2 keeps delivering the full-content (I) frames; case 3 delivers\n"
            << "essentially all frames.\n";
  return 0;
}

// Ablation: router queue-depth sensitivity of the Figure 4(b) congestion
// collapse. Deeper drop-tail queues trade loss for delay: the latency
// ceiling in the control run is set by the bottleneck queue, which is why
// the paper sees excursions "to over a second".
#include <iostream>

#include "common/priority_scenario.hpp"
#include "common/table.hpp"

int main() {
  using namespace aqm;
  using namespace aqm::bench;

  banner("Ablation: drop-tail queue depth under 16 Mbps cross traffic");

  TextTable table({"queue(pkts)", "theoretical ceiling(ms)", "s1 mean(ms)",
                   "s1 max(ms)", "s1 loss%"});
  for (const std::size_t depth : {100UL, 250UL, 500UL, 1000UL, 2000UL}) {
    // A full queue of 1500 B packets drains at 10 Mbps: 1.2 ms per packet.
    const double ceiling_ms = static_cast<double>(depth) * 1500.0 * 8.0 / 10e6 * 1000.0;

    PriorityScenarioConfig cfg;
    cfg.duration = seconds(12);
    cfg.cross_traffic = true;
    cfg.queue_pkts = depth;
    const auto r = run_priority_scenario(cfg);
    const auto s1 = r.s1_stats();
    const double loss =
        100.0 * (1.0 - static_cast<double>(r.s1_received) /
                           static_cast<double>(std::max<std::uint64_t>(1, r.s1_sent)));
    table.row({std::to_string(depth), fmt(ceiling_ms, 0), fmt(s1.mean(), 1),
               fmt(s1.empty() ? 0.0 : s1.max(), 1), fmt(loss, 1)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print();
  std::cout << "\nReading: measured max latency tracks the queue-drain ceiling;\n"
            << "loss stays high regardless (the overload is 2x the bottleneck),\n"
            << "so deeper buffers only buy worse tail latency — bufferbloat.\n";
  return 0;
}

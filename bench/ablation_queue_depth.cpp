// Ablation: router queue-depth sensitivity of the Figure 4(b) congestion
// collapse. Deeper drop-tail queues trade loss for delay: the latency
// ceiling in the control run is set by the bottleneck queue, which is why
// the paper sees excursions "to over a second".
//
// The five depths are independent trials on the shard-parallel experiment
// runner (--jobs N); output is byte-identical for every worker count —
// including the --metrics sidecar, whose snapshots are merged in trial
// order. --trace FILE records the first trial as Chrome trace-event JSON.
//
// --slo FILE enables per-flow SLO monitoring (both senders bound to a
// 250 ms window-p99 / 5% drop-rate objective, which the congested trials
// breach) and writes the deterministic health-event sidecar; --flight FILE
// writes the flight-recorder dumps cut at each breach. Both sidecars are
// byte-identical for any --jobs.
#include <iostream>
#include <vector>

#include "common/priority_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  banner("Ablation: drop-tail queue depth under 16 Mbps cross traffic");

  const std::size_t depths[] = {100, 250, 500, 1000, 2000};

  const bool telemetry = !opts.slo_path.empty() || !opts.flight_path.empty();
  obs::SloSpec slo;
  slo.max_p99_latency_ms = 250.0;
  slo.max_drop_rate = 0.05;

  core::Experiment<PriorityScenarioResult> exp;
  bool first = true;
  for (const std::size_t depth : depths) {
    PriorityScenarioConfig cfg;
    cfg.duration = seconds(12);
    cfg.cross_traffic = true;
    cfg.queue_pkts = depth;
    cfg.collect_metrics = !opts.metrics_path.empty();
    cfg.trace = first && !opts.trace_path.empty();
    cfg.telemetry = telemetry;
    if (telemetry) {
      cfg.sender1_policy = PolicyBuilder::sender(core::kFlowSender1).slo(slo);
      cfg.sender2_policy = PolicyBuilder::sender(core::kFlowSender2).slo(slo);
    }
    first = false;
    exp.add("queue-depth-" + std::to_string(depth), cfg.seed,
            [cfg](const core::TrialSpec&) { return run_priority_scenario(cfg); });
  }
  const auto results = exp.run(opts);

  if (!opts.slo_path.empty()) {
    std::vector<obs::NamedHealthReport> reports;
    for (std::size_t i = 0; i < results.size(); ++i) {
      reports.push_back({exp.spec(i).name, results[i].health});
    }
    if (obs::write_health_sidecar_file(opts.slo_path, reports)) {
      std::cerr << "health events written to " << opts.slo_path << "\n";
    } else {
      std::cerr << "failed to write health events to " << opts.slo_path << "\n";
      return 1;
    }
  }
  if (!opts.flight_path.empty()) {
    std::vector<obs::NamedFlightDumps> dumps;
    for (std::size_t i = 0; i < results.size(); ++i) {
      dumps.push_back({exp.spec(i).name, results[i].flight_dumps});
    }
    if (obs::write_flight_sidecar_file(opts.flight_path, dumps)) {
      std::cerr << "flight dumps written to " << opts.flight_path << "\n";
    } else {
      std::cerr << "failed to write flight dumps to " << opts.flight_path << "\n";
      return 1;
    }
  }

  if (!opts.metrics_path.empty()) {
    std::vector<obs::NamedSnapshot> snaps;
    for (std::size_t i = 0; i < results.size(); ++i) {
      snaps.push_back({exp.spec(i).name, results[i].metrics});
    }
    if (obs::write_metrics_sidecar_file(opts.metrics_path, snaps)) {
      std::cerr << "metrics written to " << opts.metrics_path << "\n";
    } else {
      std::cerr << "failed to write metrics to " << opts.metrics_path << "\n";
      return 1;
    }
  }
  if (!opts.trace_path.empty() && results[0].trace != nullptr) {
    if (results[0].trace->write_chrome_json_file(opts.trace_path)) {
      std::cerr << "trace (" << results[0].trace->size() << " events) written to "
                << opts.trace_path << "\n";
    } else {
      std::cerr << "failed to write trace to " << opts.trace_path << "\n";
      return 1;
    }
  }

  TextTable table({"queue(pkts)", "theoretical ceiling(ms)", "s1 mean(ms)",
                   "s1 max(ms)", "s1 loss%"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::size_t depth = depths[i];
    // A full queue of 1500 B packets drains at 10 Mbps: 1.2 ms per packet.
    const double ceiling_ms = static_cast<double>(depth) * 1500.0 * 8.0 / 10e6 * 1000.0;
    const auto& r = results[i];
    const auto s1 = r.s1_stats();
    const double loss =
        100.0 * (1.0 - static_cast<double>(r.s1_received) /
                           static_cast<double>(std::max<std::uint64_t>(1, r.s1_sent)));
    table.row({std::to_string(depth), fmt(ceiling_ms, 0), fmt(s1.mean(), 1),
               fmt(s1.empty() ? 0.0 : s1.max(), 1), fmt(loss, 1)});
  }
  std::cout << "\n";
  table.print();
  std::cout << "\nReading: measured max latency tracks the queue-drain ceiling;\n"
            << "loss stays high regardless (the overload is 2x the bottleneck),\n"
            << "so deeper buffers only buy worse tail latency — bufferbloat.\n";
  return 0;
}

// Figure 2: "Example Priority Propagation in RT-CORBA + DiffServ".
// A three-hop invocation (client -> middle-tier server -> server) across
// heterogeneous "operating systems" (QNX / LynxOS / Solaris RT priority
// ranges). The RTCorbaPriority service context carries the platform-
// independent priority; each host's priority-mapping manager translates it
// into that OS's native band, and the DSCP mapping marks the wire traffic.
// This binary prints the per-hop table the figure draws.
//
// Each CORBA priority is an independent trial (own engine / network / ORBs)
// on the shard-parallel experiment runner (--jobs N); output is
// byte-identical for every worker count.
#include <iostream>
#include <memory>
#include <optional>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "net/network.hpp"
#include "orb/orb.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "orb/rt/priority_mapping.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aqm;
using namespace aqm::bench;

struct HopObservation {
  orb::CorbaPriority relay_saw = -1;
  orb::CorbaPriority backend_saw = -1;
  os::Priority client_native = 0;
  os::Priority middle_native = 0;
  os::Priority server_native = 0;
  int client_dscp = 0;
  int middle_dscp = 0;
};

HopObservation run_propagation(orb::CorbaPriority corba) {
  sim::Engine engine;
  net::Network network(engine);
  const auto client_node = network.add_node("client (QNX)");
  const auto middle_node = network.add_node("middle-tier (LynxOS)");
  const auto server_node = network.add_node("server (Solaris)");
  net::LinkConfig link;
  network.add_duplex_link(client_node, middle_node, link);
  network.add_duplex_link(middle_node, server_node, link);

  os::Cpu client_cpu(engine, "qnx-cpu");
  os::Cpu middle_cpu(engine, "lynx-cpu");
  os::Cpu server_cpu(engine, "solaris-cpu");
  orb::OrbEndpoint client(network, client_node, client_cpu);
  orb::OrbEndpoint middle(network, middle_node, middle_cpu);
  orb::OrbEndpoint server(network, server_node, server_cpu);

  client.priority_mappings().install(orb::rt::make_qnx_mapping());
  middle.priority_mappings().install(orb::rt::make_lynxos_mapping());
  server.priority_mappings().install(orb::rt::make_solaris_rt_mapping());
  for (orb::OrbEndpoint* o : {&client, &middle, &server}) {
    o->dscp_mappings().install(std::make_unique<orb::rt::BandedDscpMapping>());
  }

  // Backend and relay servants record what they observed.
  std::optional<orb::CorbaPriority> backend_saw;
  orb::Poa& backend_poa = server.create_poa("backend");
  const orb::ObjectRef backend_ref = backend_poa.activate_object(
      "sink", std::make_shared<orb::FunctionServant>(
                  microseconds(200),
                  [&](orb::ServerRequest& req) { backend_saw = req.priority; }));

  std::optional<orb::CorbaPriority> relay_saw;
  orb::Poa& relay_poa = middle.create_poa("relay");
  orb::ObjectStub backend_stub(middle, backend_ref);
  const orb::ObjectRef relay_ref = relay_poa.activate_object(
      "hop", std::make_shared<orb::FunctionServant>(
                 microseconds(200), [&](orb::ServerRequest& req) {
                   relay_saw = req.priority;
                   // RTCurrent pattern: re-assert the received priority on
                   // the outgoing binding before forwarding.
                   backend_stub.set_priority(req.priority);
                   backend_stub.oneway("forward", req.body);
                 }));

  // The client leg rides the ambient client priority (no per-binding pin),
  // exercising the stub -> interceptor-pipeline default path.
  client.set_client_priority(corba);
  orb::ObjectStub relay_stub(client, relay_ref);
  relay_stub.oneway("send", std::vector<std::uint8_t>(256));
  engine.run();

  HopObservation obs;
  obs.relay_saw = relay_saw.value_or(-1);
  obs.backend_saw = backend_saw.value_or(-1);
  obs.client_native = client.priority_mappings().to_native(corba);
  obs.middle_native = middle.priority_mappings().to_native(corba);
  obs.server_native = server.priority_mappings().to_native(corba);
  obs.client_dscp = static_cast<int>(client.dscp_mappings().to_dscp(corba));
  obs.middle_dscp = static_cast<int>(middle.dscp_mappings().to_dscp(corba));
  return obs;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = core::parse_experiment_options(argc, argv);

  constexpr orb::CorbaPriority kPriorities[] = {4'000, 15'000, 30'000};

  core::Experiment<HopObservation> exp;
  for (const orb::CorbaPriority corba : kPriorities) {
    exp.add("fig2-prio-" + std::to_string(corba), static_cast<std::uint64_t>(corba),
            [corba](const core::TrialSpec&) { return run_propagation(corba); });
  }
  const auto results = exp.run(opts);

  banner("Figure 2: end-to-end priority propagation (RT-CORBA + DiffServ)");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const orb::CorbaPriority corba = kPriorities[i];
    const HopObservation& obs = results[i];
    TextTable table({"hop", "service-context priority", "native priority",
                     "DSCP on egress"});
    table.row({"client (QNX 1..31)", std::to_string(corba),
               std::to_string(obs.client_native), std::to_string(obs.client_dscp)});
    table.row({"middle-tier (LynxOS 0..255)", std::to_string(obs.relay_saw),
               std::to_string(obs.middle_native), std::to_string(obs.middle_dscp)});
    table.row({"server (Solaris RT 100..159)", std::to_string(obs.backend_saw),
               std::to_string(obs.server_native), "-"});
    std::cout << "CORBA priority " << corba << ":\n";
    table.print();
    std::cout << "\n";
  }

  std::cout << "The platform-independent priority rides the RTCorbaPriority\n"
            << "service context unchanged; each hop maps it to its own native\n"
            << "range and codepoint (the paper's QNX 16 / LynxOS 128 / Solaris\n"
            << "136 / DSCP EF picture).\n";
  return 0;
}

// Micro-benchmarks of the ORB data path (google-benchmark): CDR
// marshaling, GIOP encode/decode, frame codec, POA demultiplexing scaling
// — the TAO-style optimizations Section 2.1 of the paper leans on.
#include <benchmark/benchmark.h>

#include <memory>

#include "avstreams/frame_codec.hpp"
#include "common/json_report.hpp"
#include "orb/cdr.hpp"
#include "orb/giop.hpp"
#include "orb/poa.hpp"
#include "orb/orb.hpp"
#include "net/network.hpp"
#include "os/cpu.hpp"
#include "quo/contract.hpp"
#include "quo/syscond.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aqm;

void BM_CdrWritePrimitives(benchmark::State& state) {
  for (auto _ : state) {
    orb::CdrWriter w;
    for (int i = 0; i < 64; ++i) {
      w.write_u32(static_cast<std::uint32_t>(i));
      w.write_u64(static_cast<std::uint64_t>(i) * 7);
      w.write_u8(static_cast<std::uint8_t>(i));
    }
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * 192);
}
BENCHMARK(BM_CdrWritePrimitives);

void BM_CdrReadPrimitives(benchmark::State& state) {
  orb::CdrWriter w;
  for (int i = 0; i < 64; ++i) {
    w.write_u32(static_cast<std::uint32_t>(i));
    w.write_u64(static_cast<std::uint64_t>(i) * 7);
    w.write_u8(static_cast<std::uint8_t>(i));
  }
  for (auto _ : state) {
    orb::CdrReader r(w.buffer());
    std::uint64_t sum = 0;
    for (int i = 0; i < 64; ++i) {
      sum += r.read_u32();
      sum += r.read_u64();
      sum += r.read_u8();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 192);
}
BENCHMARK(BM_CdrReadPrimitives);

void BM_GiopEncodeRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  orb::RequestHeader header;
  header.request_id = 1;
  header.object_key = "video/receiver";
  header.operation = "push_frame";
  header.contexts.push_back(orb::make_priority_context(20'000));
  header.contexts.push_back(orb::make_timestamp_context(TimePoint{123}));
  for (auto _ : state) {
    auto bytes = orb::encode_request(header, body);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_GiopEncodeRequest)->Arg(128)->Arg(1400)->Arg(13'600);

void BM_GiopDecodeRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  orb::RequestHeader header;
  header.request_id = 1;
  header.object_key = "video/receiver";
  header.operation = "push_frame";
  header.contexts.push_back(orb::make_priority_context(20'000));
  const auto bytes = orb::encode_request(header, body);
  for (auto _ : state) {
    const auto msg = orb::decode(bytes);
    benchmark::DoNotOptimize(msg.request.request_id);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_GiopDecodeRequest)->Arg(128)->Arg(1400)->Arg(13'600);

void BM_FrameCodecRoundTrip(benchmark::State& state) {
  media::VideoFrame f;
  f.index = 7;
  f.type = media::FrameType::I;
  f.size_bytes = 13'600;
  for (auto _ : state) {
    const auto body = av::encode_frame(f);
    const auto out = av::decode_frame(body);
    benchmark::DoNotOptimize(out.index);
  }
  state.SetBytesProcessed(state.iterations() * 13'600);
}
BENCHMARK(BM_FrameCodecRoundTrip);

/// Active-demultiplexing claim: POA servant lookup stays O(1) in the
/// number of registered servants.
void BM_PoaDemux(benchmark::State& state) {
  sim::Engine engine;
  net::Network net(engine);
  const auto node = net.add_node("host");
  os::Cpu cpu(engine, "cpu");
  orb::OrbEndpoint orb_endpoint(net, node, cpu);
  orb::Poa& poa = orb_endpoint.create_poa("app");
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    poa.activate_object("servant" + std::to_string(i),
                        std::make_shared<orb::FunctionServant>(
                            microseconds(1), [](orb::ServerRequest&) {}));
  }
  const std::string target = "servant" + std::to_string(n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poa.find(target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoaDemux)->Arg(10)->Arg(100)->Arg(1000)->Arg(10'000);

/// Full oneway invocation path (marshal -> transport -> demux -> dispatch
/// -> servant) drained to completion each iteration. Arg(0): the stock
/// endpoint (built-in pipeline only) — the hot path the interceptor
/// refactor must keep within 3% of the recorded pre-refactor baseline.
/// Arg(1): four extra registered no-op interceptors, bounding the
/// marginal per-interceptor cost.
void BM_InterceptorOverhead(benchmark::State& state) {
  const int extra = static_cast<int>(state.range(0));
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("client");
  const auto b = net.add_node("server");
  net::LinkConfig link;
  link.bandwidth_bps = 1e9;
  net.add_duplex_link(a, b, link);
  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");
  orb::OrbEndpoint client(net, a, client_cpu);
  orb::OrbEndpoint server(net, b, server_cpu);
  class NoopClientInterceptor final : public orb::ClientRequestInterceptor {
   public:
    [[nodiscard]] const char* name() const override { return "bench.noop"; }
  };
  class NoopServerInterceptor final : public orb::ServerRequestInterceptor {
   public:
    [[nodiscard]] const char* name() const override { return "bench.noop"; }
  };
  if (extra != 0) {
    client.add_client_interceptor(std::make_unique<NoopClientInterceptor>());
    client.add_client_interceptor(std::make_unique<NoopClientInterceptor>());
    server.add_server_interceptor(std::make_unique<NoopServerInterceptor>());
    server.add_server_interceptor(std::make_unique<NoopServerInterceptor>());
  }
  orb::Poa& poa = server.create_poa("app");
  std::uint64_t handled = 0;
  const orb::ObjectRef ref = poa.activate_object(
      "sink", std::make_shared<orb::FunctionServant>(
                  microseconds(1), [&handled](orb::ServerRequest&) { ++handled; }));
  const std::vector<std::uint8_t> body(512);
  orb::InvokeOptions opts;
  opts.oneway = true;
  for (auto _ : state) {
    client.invoke(ref, "op", body, opts);
    engine.run();
  }
  benchmark::DoNotOptimize(handled);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterceptorOverhead)->Arg(0)->Arg(1);

void BM_ContractEval(benchmark::State& state) {
  sim::Engine engine;
  quo::ValueSysCond bw("bw", 10.0);
  quo::Contract contract(engine, "bench");
  contract.add_region("high", [&] { return bw.value() >= 8.0; })
      .add_region("medium", [&] { return bw.value() >= 4.0; })
      .add_region("low", nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contract.eval());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContractEval);

}  // namespace

int main(int argc, char** argv) {
  return aqm::bench::run_with_json_report(argc, argv, "orb");
}

// Micro-benchmarks of the ORB data path (google-benchmark): CDR
// marshaling, GIOP encode/decode, frame codec, POA demultiplexing scaling
// — the TAO-style optimizations Section 2.1 of the paper leans on.
#include <benchmark/benchmark.h>

#include <memory>

#include "avstreams/frame_codec.hpp"
#include "common/json_report.hpp"
#include "orb/buffer_pool.hpp"
#include "orb/cdr.hpp"
#include "orb/giop.hpp"
#include "orb/transport.hpp"
#include "orb/poa.hpp"
#include "orb/orb.hpp"
#include "core/qos_control_plane.hpp"
#include "core/qos_policy.hpp"
#include "core/qos_session.hpp"
#include "net/network.hpp"
#include "os/cpu.hpp"
#include "quo/contract.hpp"
#include "quo/syscond.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aqm;

void BM_CdrWritePrimitives(benchmark::State& state) {
  for (auto _ : state) {
    orb::CdrWriter w;
    for (int i = 0; i < 64; ++i) {
      w.write_u32(static_cast<std::uint32_t>(i));
      w.write_u64(static_cast<std::uint64_t>(i) * 7);
      w.write_u8(static_cast<std::uint8_t>(i));
    }
    benchmark::DoNotOptimize(w.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * 192);
}
BENCHMARK(BM_CdrWritePrimitives);

void BM_CdrReadPrimitives(benchmark::State& state) {
  orb::CdrWriter w;
  for (int i = 0; i < 64; ++i) {
    w.write_u32(static_cast<std::uint32_t>(i));
    w.write_u64(static_cast<std::uint64_t>(i) * 7);
    w.write_u8(static_cast<std::uint8_t>(i));
  }
  for (auto _ : state) {
    orb::CdrReader r(w.buffer());
    std::uint64_t sum = 0;
    for (int i = 0; i < 64; ++i) {
      sum += r.read_u32();
      sum += r.read_u64();
      sum += r.read_u8();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 192);
}
BENCHMARK(BM_CdrReadPrimitives);

void BM_GiopEncodeRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  orb::RequestHeader header;
  header.request_id = 1;
  header.object_key = "video/receiver";
  header.operation = "push_frame";
  header.contexts.push_back(orb::make_priority_context(20'000));
  header.contexts.push_back(orb::make_timestamp_context(TimePoint{123}));
  for (auto _ : state) {
    auto bytes = orb::encode_request(header, body);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_GiopEncodeRequest)->Arg(128)->Arg(1400)->Arg(13'600);

void BM_GiopDecodeRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  orb::RequestHeader header;
  header.request_id = 1;
  header.object_key = "video/receiver";
  header.operation = "push_frame";
  header.contexts.push_back(orb::make_priority_context(20'000));
  const auto bytes = orb::encode_request(header, body);
  for (auto _ : state) {
    const auto msg = orb::decode(bytes);
    benchmark::DoNotOptimize(msg.request.request_id);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_GiopDecodeRequest)->Arg(128)->Arg(1400)->Arg(13'600);

void BM_FrameCodecRoundTrip(benchmark::State& state) {
  media::VideoFrame f;
  f.index = 7;
  f.type = media::FrameType::I;
  f.size_bytes = 13'600;
  for (auto _ : state) {
    const auto body = av::encode_frame(f);
    const auto out = av::decode_frame(body);
    benchmark::DoNotOptimize(out.index);
  }
  state.SetBytesProcessed(state.iterations() * 13'600);
}
BENCHMARK(BM_FrameCodecRoundTrip);

/// Active-demultiplexing claim: POA servant lookup stays O(1) in the
/// number of registered servants.
void BM_PoaDemux(benchmark::State& state) {
  sim::Engine engine;
  net::Network net(engine);
  const auto node = net.add_node("host");
  os::Cpu cpu(engine, "cpu");
  orb::OrbEndpoint orb_endpoint(net, node, cpu);
  orb::Poa& poa = orb_endpoint.create_poa("app");
  const auto n = state.range(0);
  for (std::int64_t i = 0; i < n; ++i) {
    poa.activate_object("servant" + std::to_string(i),
                        std::make_shared<orb::FunctionServant>(
                            microseconds(1), [](orb::ServerRequest&) {}));
  }
  const std::string target = "servant" + std::to_string(n / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(poa.find(target));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PoaDemux)->Arg(10)->Arg(100)->Arg(1000)->Arg(10'000);

/// Full oneway invocation path (marshal -> transport -> demux -> dispatch
/// -> servant) drained to completion each iteration. Arg(0): the stock
/// endpoint (built-in pipeline only) — the hot path the interceptor
/// refactor must keep within 3% of the recorded pre-refactor baseline.
/// Arg(1): four extra registered no-op interceptors, bounding the
/// marginal per-interceptor cost.
void BM_InterceptorOverhead(benchmark::State& state) {
  const int extra = static_cast<int>(state.range(0));
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("client");
  const auto b = net.add_node("server");
  net::LinkConfig link;
  link.bandwidth_bps = 1e9;
  net.add_duplex_link(a, b, link);
  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");
  orb::OrbEndpoint client(net, a, client_cpu);
  orb::OrbEndpoint server(net, b, server_cpu);
  class NoopClientInterceptor final : public orb::ClientRequestInterceptor {
   public:
    [[nodiscard]] const char* name() const override { return "bench.noop"; }
  };
  class NoopServerInterceptor final : public orb::ServerRequestInterceptor {
   public:
    [[nodiscard]] const char* name() const override { return "bench.noop"; }
  };
  if (extra != 0) {
    client.add_client_interceptor(std::make_unique<NoopClientInterceptor>());
    client.add_client_interceptor(std::make_unique<NoopClientInterceptor>());
    server.add_server_interceptor(std::make_unique<NoopServerInterceptor>());
    server.add_server_interceptor(std::make_unique<NoopServerInterceptor>());
  }
  orb::Poa& poa = server.create_poa("app");
  std::uint64_t handled = 0;
  const orb::ObjectRef ref = poa.activate_object(
      "sink", std::make_shared<orb::FunctionServant>(
                  microseconds(1), [&handled](orb::ServerRequest&) { ++handled; }));
  const std::vector<std::uint8_t> body(512);
  orb::InvokeOptions opts;
  opts.oneway = true;
  for (auto _ : state) {
    client.invoke(ref, "op", body, opts);
    engine.run();
  }
  benchmark::DoNotOptimize(handled);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterceptorOverhead)->Arg(0)->Arg(1);

/// AMI-style pipelined calls over the batched GIOP transport (DESIGN.md
/// §11): a 128-call window is submitted per iteration and rides one
/// staging pass (shared packet_overhead, one fragmentation run). The
/// client stub uses a pre-marshaled request template — the header shape is
/// fixed per (object, operation), so each call copies the template and
/// patches the request id, TAO-compiled-stub style. The server fully
/// decodes each request into a warm scratch message and answers through
/// its own reply batch with a void-return completion; the client demuxes
/// completions from zero-copy views by peeking the reply header's request
/// id — no per-reply copy or full decode. One item per completed call.
/// scripts/run_bench.sh holds the small-body point to >= 3x
/// BM_GiopRoundTrip calls/s measured in the same run: the per-message
/// marshal/overhead wall the batching tentpole amortizes.
void BM_GiopPipelined(benchmark::State& state) {
  constexpr std::uint32_t kWindow = 128;
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("client");
  const auto b = net.add_node("server");
  net::LinkConfig link;
  link.bandwidth_bps = 1e9;
  net.add_duplex_link(a, b, link);
  orb::TransportConfig cfg;
  cfg.mtu = 64 * 1024;
  cfg.batching.enabled = true;
  cfg.batching.max_messages = kWindow;  // the submit window flushes itself
  orb::GiopTransport client(net, a, cfg);
  orb::GiopTransport server(net, b, cfg);
  orb::CdrBufferPool client_pool;
  orb::CdrBufferPool server_pool;
  orb::GiopMessage scratch;
  orb::RequestHeader req;
  req.object_key = "sink";
  req.operation = "op";
  orb::ReplyHeader rep;
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));

  server.set_message_handler([&](net::NodeId src, const orb::MessageView& m) {
    orb::decode_into(scratch, m.bytes());
    rep.request_id = scratch.request.request_id;
    auto buf = server_pool.acquire();
    // Void-return completion: the reply carries the id + status the client
    // demuxes on, no result payload (the CORBA "ping" shape).
    orb::encode_reply(rep, {}, *buf);
    server_pool.note_message_size(buf->size());
    server.send_message(src, orb::CdrBufferPool::freeze(std::move(buf)),
                        net::dscp::kBestEffort, 2);
  });
  std::uint64_t completed = 0;
  std::uint64_t completed_ids = 0;
  client.set_message_handler([&](net::NodeId, const orb::MessageView& m) {
    // Reply header layout: GIOP header (12 B), then request_id u32 LE.
    const std::uint8_t* d = m.data();
    completed_ids += d[12] | (static_cast<std::uint32_t>(d[13]) << 8) |
                     (static_cast<std::uint32_t>(d[14]) << 16) |
                     (static_cast<std::uint32_t>(d[15]) << 24);
    ++completed;
  });

  // The stub's request template: marshaled once, copied + id-patched per
  // call. request_id sits at bytes 12-15 (u32 LE right after the header).
  std::vector<std::uint8_t> templ;
  orb::encode_request(req, body, templ);
  client_pool.note_message_size(templ.size());

  std::uint32_t next_id = 1;
  std::uint64_t issued_ids = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kWindow; ++i) {
      const std::uint32_t id = next_id++;
      issued_ids += id;
      auto buf = client_pool.acquire();
      buf->assign(templ.begin(), templ.end());
      (*buf)[12] = static_cast<std::uint8_t>(id);
      (*buf)[13] = static_cast<std::uint8_t>(id >> 8);
      (*buf)[14] = static_cast<std::uint8_t>(id >> 16);
      (*buf)[15] = static_cast<std::uint8_t>(id >> 24);
      client.send_message(b, orb::CdrBufferPool::freeze(std::move(buf)),
                          net::dscp::kBestEffort, 1);
    }
    client.flush_all();  // submit/flush pipeline boundary (usually a no-op:
                         // the window hits the count threshold)
    engine.run();
  }
  if (completed != state.iterations() * kWindow || completed_ids != issued_ids) {
    state.SkipWithError("pipelined completions diverged from submissions");
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_GiopPipelined)->Arg(64)->Arg(1024);

/// Oneway fan-out over the batched transport: 64 oneway requests per
/// iteration coalesce into one wire write; the server decodes each entry
/// from its zero-copy view. The no-reply upper bound of the batching path.
void BM_GiopBatchedOneway(benchmark::State& state) {
  constexpr std::uint32_t kWindow = 64;
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("client");
  const auto b = net.add_node("server");
  net::LinkConfig link;
  link.bandwidth_bps = 1e9;
  net.add_duplex_link(a, b, link);
  orb::TransportConfig cfg;
  cfg.mtu = 64 * 1024;
  cfg.batching.enabled = true;
  cfg.batching.max_messages = kWindow;
  orb::GiopTransport client(net, a, cfg);
  orb::GiopTransport server(net, b, cfg);
  orb::CdrBufferPool pool;
  orb::GiopMessage scratch;
  orb::RequestHeader req;
  req.object_key = "sink";
  req.operation = "op";
  req.response_expected = false;
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  std::uint64_t handled = 0;
  server.set_message_handler([&](net::NodeId, const orb::MessageView& m) {
    orb::decode_into(scratch, m.bytes());
    ++handled;
  });
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < kWindow; ++i) {
      req.request_id = static_cast<std::uint32_t>(handled + i + 1);
      auto buf = pool.acquire();
      orb::encode_request(req, body, *buf);
      pool.note_message_size(buf->size());
      client.send_message(b, orb::CdrBufferPool::freeze(std::move(buf)),
                          net::dscp::kBestEffort, 1);
    }
    engine.run();
  }
  benchmark::DoNotOptimize(handled);
  state.SetItemsProcessed(state.iterations() * kWindow);
}
BENCHMARK(BM_GiopBatchedOneway)->Arg(64)->Arg(1024);

/// Live policy re-stamp cost (DESIGN.md §13): QoSSession::update diffing a
/// changed priority/deadline onto the versioned interceptor binding.
/// Arg(0): the direct session path. Arg(1): the same re-stamp driven
/// through QosControlPlane::override_flow (merge + managed-slot
/// bookkeeping on top). Both are synchronous and allocation-free in
/// steady state — this prices the per-update arithmetic the
/// FeedbackScheduler and override channel pay every actuation.
void BM_PolicyUpdate(benchmark::State& state) {
  const bool via_plane = state.range(0) != 0;
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("client");
  const auto b = net.add_node("server");
  net::LinkConfig link;
  link.bandwidth_bps = 1e9;
  net.add_duplex_link(a, b, link);
  os::Cpu client_cpu(engine, "client-cpu");
  os::Cpu server_cpu(engine, "server-cpu");
  orb::OrbEndpoint client(net, a, client_cpu);
  orb::OrbEndpoint server(net, b, server_cpu);
  orb::Poa& poa = server.create_poa("app");
  const orb::ObjectRef ref = poa.activate_object(
      "sink", std::make_shared<orb::FunctionServant>(microseconds(1),
                                                     [](orb::ServerRequest&) {}));
  orb::ObjectStub stub(client, ref);
  stub.set_flow(42);
  core::QoSSession session(client, stub);
  core::EndToEndQosPolicy policy;
  policy.flow = 42;
  policy.priority = 10'000;
  policy.deadline = milliseconds(20);
  session.apply(policy);
  orb::Poa& ctrl_poa = client.create_poa("ctrl");
  core::QosControlPlane plane(ctrl_poa);
  plane.manage(42, session);
  core::PolicyOverride ov;
  std::uint32_t i = 0;
  for (auto _ : state) {
    const auto priority = static_cast<orb::CorbaPriority>(10'000 + (i & 1) * 5'000);
    if (via_plane) {
      ov.priority = priority;
      ov.deadline = milliseconds(5 + (i % 3));
      benchmark::DoNotOptimize(plane.override_flow(42, ov).ok());
    } else {
      policy.priority = priority;
      policy.deadline = milliseconds(5 + (i % 3));
      session.update(policy);
    }
    ++i;
  }
  benchmark::DoNotOptimize(session.updates_applied());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyUpdate)->Arg(0)->Arg(1);

void BM_ContractEval(benchmark::State& state) {
  sim::Engine engine;
  quo::ValueSysCond bw("bw", 10.0);
  quo::Contract contract(engine, "bench");
  contract.add_region("high", [&] { return bw.value() >= 8.0; })
      .add_region("medium", [&] { return bw.value() >= 4.0; })
      .add_region("low", nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contract.eval());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ContractEval);

}  // namespace

int main(int argc, char** argv) {
  return aqm::bench::run_with_json_report(argc, argv, "orb");
}

// Micro-benchmarks of CDR marshaling and GIOP message encode/decode — the
// per-invocation byte-shuffling cost of the ORB. Tracked as BENCH_orb.json
// from PR to PR.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "common/json_report.hpp"
#include "orb/buffer_pool.hpp"
#include "orb/cdr.hpp"
#include "orb/giop.hpp"

namespace {

using namespace aqm;

orb::RequestHeader make_header() {
  orb::RequestHeader header;
  header.request_id = 1;
  header.object_key = "video/receiver";
  header.operation = "push_frame";
  header.contexts.push_back(orb::make_priority_context(20'000));
  header.contexts.push_back(orb::make_timestamp_context(TimePoint{123}));
  return header;
}

/// Headline: the production request-encode path, as exercised once per ORB
/// invocation by OrbEndpoint::invoke() — pooled buffer, encode, freeze into
/// the shared MessageBuffer the transport fragments.
void BM_GiopEncodeRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  const orb::RequestHeader header = make_header();
  orb::CdrBufferPool pool;
  for (auto _ : state) {
    auto buf = pool.acquire();
    orb::encode_request(header, body, *buf);
    pool.note_message_size(buf->size());
    orb::MessageBuffer bytes = orb::CdrBufferPool::freeze(std::move(buf));
    benchmark::DoNotOptimize(bytes->data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(body.size()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GiopEncodeRequest)->Arg(128)->Arg(1400)->Arg(13'600);

void BM_GiopEncodeReply(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  orb::ReplyHeader header;
  header.request_id = 9;
  header.contexts.push_back(orb::make_priority_context(20'000));
  header.contexts.push_back(orb::make_timestamp_context(TimePoint{456}));
  orb::CdrBufferPool pool;
  for (auto _ : state) {
    auto buf = pool.acquire();
    orb::encode_reply(header, body, *buf);
    pool.note_message_size(buf->size());
    orb::MessageBuffer bytes = orb::CdrBufferPool::freeze(std::move(buf));
    benchmark::DoNotOptimize(bytes->data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(body.size()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GiopEncodeReply)->Arg(1400);

void BM_GiopDecodeRequest(benchmark::State& state) {
  const std::vector<std::uint8_t> body(static_cast<std::size_t>(state.range(0)));
  const auto bytes = orb::encode_request(make_header(), body);
  for (auto _ : state) {
    const auto msg = orb::decode(bytes);
    benchmark::DoNotOptimize(msg.request.request_id);
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes.size()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GiopDecodeRequest)->Arg(1400);

/// Full encode→decode round trip of a frame-sized request.
void BM_GiopRoundTrip(benchmark::State& state) {
  const std::vector<std::uint8_t> body(13'600);
  const orb::RequestHeader header = make_header();
  for (auto _ : state) {
    const auto bytes = orb::encode_request(header, body);
    const auto msg = orb::decode(bytes);
    benchmark::DoNotOptimize(msg.body.data());
  }
  state.SetBytesProcessed(state.iterations() * 13'600);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GiopRoundTrip);

/// String-heavy marshaling (object keys, operation names, naming paths).
void BM_CdrWriteStrings(benchmark::State& state) {
  for (auto _ : state) {
    orb::CdrWriter w;
    for (int i = 0; i < 32; ++i) {
      w.write_string("application/naming/context/object-key");
      w.write_u32(static_cast<std::uint32_t>(i));
    }
    benchmark::DoNotOptimize(w.size());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CdrWriteStrings);

void BM_CdrWriteOctets(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(13'600, 0xAB);
  for (auto _ : state) {
    orb::CdrWriter w;
    w.write_u32(7);
    w.write_octets(payload);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(payload.size()));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CdrWriteOctets);

}  // namespace

int main(int argc, char** argv) {
  return aqm::bench::run_with_json_report(argc, argv, "orb");
}

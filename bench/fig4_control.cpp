// Figure 4: control runs. Two video senders with equal priorities, no
// network management; (a) idle network, (b) 16 Mbps cross traffic through
// the 10 Mbps bottleneck.
//
// Paper shape: (a) flat ~1.5 ms latency; (b) latency fluctuating wildly
// between a few milliseconds and over a second, with heavy loss.
//
// The two runs are independent trials on the shard-parallel experiment
// runner (--jobs N); output is byte-identical for every worker count.
#include <iostream>

#include "common/priority_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  PriorityScenarioConfig idle;
  idle.duration = seconds(30);
  PriorityScenarioConfig congested = idle;
  congested.cross_traffic = true;

  core::Experiment<PriorityScenarioResult> exp;
  exp.add("fig4a-idle", idle.seed,
          [idle](const core::TrialSpec&) { return run_priority_scenario(idle); });
  exp.add("fig4b-congested", congested.seed, [congested](const core::TrialSpec&) {
    return run_priority_scenario(congested);
  });
  const auto results = exp.run(opts);
  const auto& idle_result = results[0];
  const auto& congested_result = results[1];

  banner("Figure 4(a): equal priorities, no DSCP, no cross traffic");
  print_latency_series(idle_result, seconds(2), TimePoint{seconds(30).ns()});
  print_summary("Figure 4(a) summary", idle_result);

  banner("Figure 4(b): equal priorities, no DSCP, 16 Mbps cross traffic");
  print_latency_series(congested_result, seconds(2), TimePoint{seconds(30).ns()});
  print_summary("Figure 4(b) summary", congested_result);

  const auto a = idle_result.s1_stats();
  const auto b = congested_result.s1_stats();
  std::cout << "\nShape check vs paper:\n"
            << "  (a) flat low latency:      mean " << fmt(a.mean()) << " ms, stddev "
            << fmt(a.stddev()) << " ms\n"
            << "  (b) unpredictable latency: mean " << fmt(b.mean()) << " ms, max "
            << fmt(b.max()) << " ms ("
            << fmt(b.max() / std::max(1.0, a.mean()), 0) << "x the idle mean)\n";
  return 0;
}

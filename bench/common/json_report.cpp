#include "common/json_report.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

namespace aqm::bench {
namespace {

/// Formats a double without trailing noise (JSON-safe, locale-independent).
std::string fmt(double v) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os.precision(6);
  os << std::fixed << v;
  std::string s = os.str();
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s.empty() ? "0" : s;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

JsonReporter::JsonReporter(std::string path, std::string suite)
    : path_(std::move(path)), suite_(std::move(suite)) {}

bool JsonReporter::ReportContext(const Context&) { return true; }

void JsonReporter::ReportRuns(const std::vector<Run>& runs) {
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    if (run.run_type == Run::RT_Aggregate) continue;
    Entry e;
    e.name = run.benchmark_name();
    e.iterations = static_cast<std::int64_t>(run.iterations);
    e.real_time_ns = run.GetAdjustedRealTime();
    e.cpu_time_ns = run.GetAdjustedCPUTime();
    for (const auto& [name, counter] : run.counters) {
      if (name == "items_per_second") {
        e.items_per_second = counter.value;
      } else if (name == "bytes_per_second") {
        e.bytes_per_second = counter.value;
      } else {
        e.counters.emplace_back(name, counter.value);
      }
    }
    entries_.push_back(std::move(e));
  }
}

void JsonReporter::Finalize() {
  std::ofstream out(path_);
  if (!out) {
    std::cerr << "json_report: cannot open " << path_ << " for writing\n";
    failed_ = true;
    return;
  }
  out << "{\n  \"suite\": \"" << escape(suite_) << "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out << "    {\"name\": \"" << escape(e.name) << "\", \"iterations\": " << e.iterations
        << ", \"real_time_ns\": " << fmt(e.real_time_ns)
        << ", \"cpu_time_ns\": " << fmt(e.cpu_time_ns)
        << ", \"items_per_second\": " << fmt(e.items_per_second)
        << ", \"bytes_per_second\": " << fmt(e.bytes_per_second);
    if (!e.counters.empty()) {
      out << ", \"counters\": {";
      for (std::size_t j = 0; j < e.counters.size(); ++j) {
        out << "\"" << escape(e.counters[j].first) << "\": " << fmt(e.counters[j].second)
            << (j + 1 < e.counters.size() ? ", " : "");
      }
      out << "}";
    }
    out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run_with_json_report(int argc, char** argv, const std::string& suite) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    constexpr const char* kFlag = "--json_out=";
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      json_path = argv[i] + std::strlen(kFlag);
    } else {
      args.push_back(argv[i]);
    }
  }
  // The library refuses a custom file reporter unless --benchmark_out is
  // set; point it at /dev/null — JsonReporter writes its own file.
  std::string devnull = "--benchmark_out=/dev/null";
  if (!json_path.empty()) args.push_back(devnull.data());

  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;

  benchmark::ConsoleReporter console;
  int rc = 0;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks(&console);
  } else {
    JsonReporter json(json_path, suite);
    benchmark::RunSpecifiedBenchmarks(&console, &json);
    if (json.failed()) rc = 1;
  }
  benchmark::Shutdown();
  return rc;
}

}  // namespace aqm::bench

// JSON perf-report emitter for the micro-benchmarks.
//
// Google Benchmark's own JSON output embeds machine context (timestamps,
// CPU scaling info, library version) that makes diffs noisy. This reporter
// writes a compact, stable schema meant to be checked in (`BENCH_*.json`)
// and compared across PRs:
//
//   {
//     "suite": "engine",
//     "benchmarks": [
//       {"name": "BM_...", "iterations": N, "real_time_ns": 123.4,
//        "cpu_time_ns": 120.1, "items_per_second": 8.1e6,
//        "bytes_per_second": 0.0,
//        "counters": {"events_per_packet": 1.02}},   // user counters, if any
//       ...
//     ]
//   }
//
// Use run_with_json_report() from a benchmark main(): it recognises
// `--json_out=FILE` (and strips it before handing the rest to Google
// Benchmark), prints the usual console table, and additionally writes the
// JSON file when requested.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

namespace aqm::bench {

class JsonReporter : public benchmark::BenchmarkReporter {
 public:
  JsonReporter(std::string path, std::string suite);

  bool ReportContext(const Context& context) override;
  void ReportRuns(const std::vector<Run>& runs) override;
  void Finalize() override;

  /// True if the report file could not be written.
  bool failed() const { return failed_; }

 private:
  struct Entry {
    std::string name;
    std::int64_t iterations = 0;
    double real_time_ns = 0.0;
    double cpu_time_ns = 0.0;
    double items_per_second = 0.0;
    double bytes_per_second = 0.0;
    // Any other user counters (benchmark::State::counters), in map order.
    std::vector<std::pair<std::string, double>> counters;
  };

  std::string path_;
  std::string suite_;
  std::vector<Entry> entries_;
  bool failed_ = false;
};

/// Drives a benchmark binary: parses/strips `--json_out=FILE`, initialises
/// Google Benchmark with the remaining args, runs everything with the
/// console reporter, and writes the JSON report when a path was given.
/// Returns the process exit code.
int run_with_json_report(int argc, char** argv, const std::string& suite);

}  // namespace aqm::bench

// Flash-crowd scenario: the adaptation-loop showcase shared by the
// bench/flash_crowd driver and the control-plane tests.
//
// Two reserved flows cross the ReservationTestbed's IntServ bottleneck
// while the 43.8 Mbps load source keeps best-effort service saturated, so
// any traffic outside a flow's reservation is effectively lost. Flow A
// starts inside its reservation; at `step_at` its offered load steps up
// (the flash crowd) far past the reserved rate. Under a static policy the
// excess rides best effort and drowns — a sustained drop-rate SLO breach.
// With the FeedbackScheduler controlling the bottleneck's per-flow HTB
// rates, flow A's measured drop deficit pulls reservation share away from
// the comfortable flow B within a few epochs and the SLO recovers while
// the crowd is still arriving.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "core/feedback_scheduler.hpp"
#include "obs/telemetry.hpp"

namespace aqm::bench {

struct FlashCrowdConfig {
  /// false: reservations stay at their admission-time rates (static
  /// policy). true: a FeedbackScheduler re-divides the bottleneck pool.
  bool feedback = false;

  Duration duration = seconds(20);
  Duration step_at = seconds(6);     // flash-crowd arrival
  std::size_t message_bytes = 1000;  // oneway payload per message

  // Offered load (bps of payload).
  double a_base_rate_bps = 1.5e6;   // flow A before the step
  double a_crowd_rate_bps = 4.5e6;  // flow A after the step
  double b_rate_bps = 1.5e6;        // flow B, steady

  // Admission-time reservations (the static policy).
  double a_reserve_bps = 2e6;
  double b_reserve_bps = 2e6;
  std::uint32_t bucket_bytes = 40'000;

  /// Drop-rate SLO evaluated on the telemetry hub's sliding window.
  double max_drop_rate = 0.05;
  obs::TelemetryConfig telemetry{};

  /// Controller tuning (feedback mode). The pool is what the 10 Mbps
  /// bottleneck can actually promise next to the best-effort load.
  core::FeedbackConfig controller{
      .epoch = milliseconds(500),
      .net_pool_bps = 8e6,
      .min_share = 0.25,
      .smoothing = 0.5,
      .hysteresis = 0.05,
      .miss_weight = 0.0,
      .drop_weight = 4.0,
      .latency_weight = 0.0,
  };

  std::uint64_t load_seed = 43;
};

struct FlashCrowdResult {
  std::uint64_t a_sent = 0;
  std::uint64_t a_received = 0;
  std::uint64_t b_sent = 0;
  std::uint64_t b_received = 0;
  /// Flow A SLO transitions over the run (from the health stream).
  std::uint64_t a_breaches = 0;
  std::uint64_t a_recoveries = 0;
  bool a_breached_at_end = false;
  std::int64_t a_breached_ns = 0;  // total time flow A spent breached
  /// Post-step delivery ratio for flow A (received/sent after step_at).
  double a_post_step_delivery = 0.0;
  /// Controller accounting (zeros in static mode).
  std::uint64_t epochs_run = 0;
  std::uint64_t restamps_applied = 0;
  obs::HealthReport health;
};

FlashCrowdResult run_flash_crowd(const FlashCrowdConfig& cfg);

}  // namespace aqm::bench

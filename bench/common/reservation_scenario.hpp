// Shared runner for the Figure 7 / Table 1 experiments: MPEG-1 video over
// the 10 Mbps bottleneck with a 43.8 Mbps load pulse, under all
// combinations of {no / partial / full RSVP reservation} x {QuO frame
// filtering on/off}.
//
// The QuO machinery is wired the way the paper describes it: the receiver
// reports delivery counts upstream on a marked control channel (status
// collection); sender-side system condition objects expose offered vs
// delivered rate; a contract with full/10fps/2fps regions drives a frame
// filter inside the delegate in front of the stream binding.
#pragma once

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "media/video_sink.hpp"
#include "net/rsvp.hpp"

namespace aqm::bench {

enum class ReservationLevel : std::uint8_t { None, Partial, Full };

[[nodiscard]] constexpr const char* to_string(ReservationLevel r) {
  switch (r) {
    case ReservationLevel::None: return "No Reservation";
    case ReservationLevel::Partial: return "Partial Reservation";
    case ReservationLevel::Full: return "Full Reservation";
  }
  return "?";
}

struct ReservationScenarioConfig {
  ReservationLevel reservation = ReservationLevel::None;
  bool frame_filtering = false;

  /// The paper's partial reservation is "670 Kbps" of MPEG payload. Our
  /// token buckets police wire bytes (payload + GIOP + per-packet
  /// overhead), so we reserve the wire-rate equivalent: the 10 fps I+P
  /// stream is ~654 kbps of payload ~= 730 kbps on the wire.
  double partial_rate_bps = 730e3;
  double full_rate_bps = 1.35e6;  // wire rate of the full ~1.2 Mbps stream

  Duration total = seconds(300);       // paper: 300 s of video
  Duration load_start = seconds(60);   // paper: load from t=60 s
  Duration load_duration = seconds(60);
  double load_rate_bps = 43.8e6;

  double fps = 30.0;
  Duration sink_decode_cost = microseconds(500);
  /// Per-trial seed of the 43.8 Mbps load generator (explicit-seed ctor).
  std::uint64_t load_seed = 43;
};

struct ReservationScenarioResult {
  std::uint64_t frames_sourced = 0;      // produced by the 30 fps source
  std::uint64_t frames_transmitted = 0;  // post-filter
  std::uint64_t frames_received = 0;
  std::uint64_t frames_decodable = 0;
  std::uint64_t i_frames_transmitted = 0;
  std::uint64_t i_frames_received = 0;

  // Under-load window measurements (the paper's Table 1 columns).
  std::uint64_t sent_under_load = 0;
  std::uint64_t received_under_load = 0;
  RunningStats latency_under_load_ms;
  RunningStats latency_overall_ms;

  // Per-second frames transmitted/received (the paper's Figure 7 series).
  std::vector<TimeSeries::Bucket> tx_per_second;
  std::vector<TimeSeries::Bucket> rx_per_second;

  // Contract activity (filtering runs only).
  std::vector<std::pair<TimePoint, std::string>> contract_history;

  [[nodiscard]] double delivered_percent_under_load() const {
    return sent_under_load == 0
               ? 0.0
               : 100.0 * static_cast<double>(received_under_load) /
                     static_cast<double>(sent_under_load);
  }
};

ReservationScenarioResult run_reservation_scenario(const ReservationScenarioConfig& cfg);

}  // namespace aqm::bench

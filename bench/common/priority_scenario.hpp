// Shared runner for the Figure 4/5/6 experiments: two video-sender tasks
// pushing GIOP messages through the contended router to two receiver
// servants in separate POAs, with optional thread priorities, DSCP marking,
// CPU load on the receiver host, and cross traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/policy_builder.hpp"
#include "common/stats.hpp"
#include "net/dscp.hpp"
#include "core/qos_policy.hpp"
#include "core/testbed.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "orb/types.hpp"

namespace aqm::bench {

/// Baseline per-sender policy: flow id for the classifier plus a low CORBA
/// priority; drivers override the fields their figure varies (usually by
/// rebuilding with PolicyBuilder::sender and chaining the varied knobs).
inline core::EndToEndQosPolicy default_sender_policy(net::FlowId flow) {
  return PolicyBuilder::sender(flow);
}

struct PriorityScenarioConfig {
  /// Declarative per-sender QoS: each binding's priority, priority->DSCP
  /// mapping, explicit DSCP, and flow id ride one EndToEndQosPolicy applied
  /// through a QoSSession (i.e. the core QoS-policy interceptor) — the same
  /// path applications use, replacing the former per-driver scatter of
  /// stub/ORB mutations.
  core::EndToEndQosPolicy sender1_policy = default_sender_policy(core::kFlowSender1);
  core::EndToEndQosPolicy sender2_policy = default_sender_policy(core::kFlowSender2);
  /// Build the router with a DiffServ (strict-priority PHB) bottleneck
  /// queue instead of plain drop-tail. Implied by either policy's
  /// map_priority_to_dscp (the mapping needs a DiffServ PHB to matter).
  bool diffserv_router = false;
  /// Competing network traffic through the bottleneck (16 Mbps).
  bool cross_traffic = false;
  double cross_rate_bps = 16e6;
  std::size_t queue_pkts = 1000;  // bottleneck egress queue depth
  /// Competing CPU load on the receiver host (between the two mapped
  /// thread priorities).
  bool cpu_load = false;
  os::Priority cpu_load_priority = 128;
  Duration cpu_load_burst = milliseconds(15);
  Duration cpu_load_interval = milliseconds(25);

  /// Message workload: ~1.2 Mbps per sender (paper Section 5.1).
  double messages_per_second = 120.0;
  std::uint32_t message_bytes = 1200;
  Duration servant_cost = microseconds(300);

  Duration duration = seconds(60);
  /// Per-trial seeds: `seed` drives the CPU load generator, `cross_seed`
  /// the cross-traffic generator. Both reach their generator through the
  /// explicit-seed constructor, so a trial's randomness is fully determined
  /// by its config — a requirement for shard-parallel sweeps.
  std::uint64_t seed = 11;
  std::uint64_t cross_seed = 42;

  /// Record a causal trace of the whole trial into result.trace (Chrome
  /// trace-event JSON via TraceRecorder::write_chrome_json). Off for
  /// sweeps: tracing stores every ORB/link/queue event.
  bool trace = false;
  /// Fill result.metrics with ORB/network/CPU counters at trial end.
  bool collect_metrics = false;
  /// Attach a TelemetryHub to the engine for the trial: per-flow SLO specs
  /// on the sender policies are installed through QoSSession, the flight
  /// ring records (as the engine tracer unless `trace` already claims it),
  /// and result.health / result.flight_dumps carry the outcome.
  bool telemetry = false;
  obs::TelemetryConfig telemetry_config{};
};

struct PriorityScenarioResult {
  TimeSeries s1_latency_ms;  // one point per delivered message
  TimeSeries s2_latency_ms;
  std::uint64_t s1_sent = 0;
  std::uint64_t s2_sent = 0;
  std::uint64_t s1_received = 0;
  std::uint64_t s2_received = 0;
  /// Receiver-side FlowMonitor accounting (zeros unless cfg.collect_metrics
  /// or cfg.telemetry installed the monitor).
  double s1_jitter_ms = 0.0;
  double s2_jitter_ms = 0.0;
  std::uint64_t s1_dropped = 0;
  std::uint64_t s2_dropped = 0;
  /// Trial-end metrics snapshot (empty unless cfg.collect_metrics).
  obs::MetricsSnapshot metrics;
  /// Recorded trial trace (null unless cfg.trace).
  std::shared_ptr<obs::TraceRecorder> trace;
  /// Health stream + flight dumps (empty unless cfg.telemetry).
  obs::HealthReport health;
  std::vector<obs::FlightDump> flight_dumps;

  [[nodiscard]] RunningStats s1_stats() const { return s1_latency_ms.stats(); }
  [[nodiscard]] RunningStats s2_stats() const { return s2_latency_ms.stats(); }
};

/// Builds a PriorityTestbed (DiffServ bottleneck iff requested or implied
/// by a priority->DSCP mapping policy) and runs the scenario to completion.
PriorityScenarioResult run_priority_scenario(const PriorityScenarioConfig& cfg);

/// Prints the per-second latency series of both senders side by side —
/// the textual equivalent of the paper's latency-vs-time figures.
void print_latency_series(const PriorityScenarioResult& result, Duration bucket,
                          TimePoint end);

/// Prints the summary block (count, mean/min/max latency, jitter, loss).
void print_summary(const std::string& title, const PriorityScenarioResult& result);

}  // namespace aqm::bench

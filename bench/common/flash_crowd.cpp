#include "common/flash_crowd.hpp"

#include <cmath>
#include <memory>
#include <vector>

#include "common/log.hpp"
#include "common/policy_builder.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"
#include "net/queue.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"
#include "sim/engine.hpp"

namespace aqm::bench {
namespace {

Duration message_interval(double rate_bps, std::size_t message_bytes) {
  const double mps = rate_bps / (8.0 * static_cast<double>(message_bytes));
  return Duration{static_cast<std::int64_t>(std::llround(1e9 / mps))};
}

}  // namespace

FlashCrowdResult run_flash_crowd(const FlashCrowdConfig& cfg) {
  core::ReservationTestbedParams params;
  params.load_seed = cfg.load_seed;
  core::ReservationTestbed bed(params);

  obs::TelemetryHub hub(cfg.telemetry);
  bed.engine.set_telemetry(&hub);
  bed.engine.set_tracer(&hub.flight());

  FlashCrowdResult result;
  const TimePoint step_time = TimePoint::zero() + cfg.step_at;
  std::uint64_t a_sent_post = 0;
  std::uint64_t a_received_post = 0;

  // One counting sink per flow on the receiver host.
  auto make_sink = [&](const char* poa_name, std::uint64_t& count,
                       std::uint64_t* post_count) {
    orb::Poa& poa = bed.receiver_orb.create_poa(poa_name);
    auto servant = std::make_shared<orb::FunctionServant>(
        microseconds(5), [&count, post_count, &bed, step_time](orb::ServerRequest&) {
          ++count;
          if (post_count != nullptr && bed.engine.now() >= step_time) ++*post_count;
        });
    return poa.activate_object("sink", std::move(servant));
  };
  const orb::ObjectRef sink_a = make_sink("recv-a", result.a_received, &a_received_post);
  const orb::ObjectRef sink_b = make_sink("recv-b", result.b_received, nullptr);

  // Admission-time policy per flow: classification, the static RSVP
  // reservation, and the drop-rate SLO the run is judged by.
  obs::SloSpec slo;
  slo.max_drop_rate = cfg.max_drop_rate;
  orb::ObjectStub stub_a(bed.sender_orb, sink_a);
  core::QoSSession session_a(bed.sender_orb, stub_a, &bed.qos);
  session_a.apply(PolicyBuilder::sender(core::kFlowSender1)
                      .network(cfg.a_reserve_bps, cfg.bucket_bytes)
                      .slo(slo));
  orb::ObjectStub stub_b(bed.sender_orb, sink_b);
  core::QoSSession session_b(bed.sender_orb, stub_b, &bed.qos);
  session_b.apply(PolicyBuilder::sender(core::kFlowSender2)
                      .network(cfg.b_reserve_bps, cfg.bucket_bytes)
                      .slo(slo));
  // Let the RSVP Path/Resv exchanges settle before traffic starts.
  bed.engine.run_until(TimePoint::zero() + milliseconds(500));

  // The adaptation loop (feedback mode): both flows' HTB rates at the
  // bottleneck are under proportional-to-deficit control.
  net::IntServQueue& bottleneck = *static_cast<net::IntServQueue*>(
      &bed.network.link_between(bed.switch_node, bed.receiver_node)->queue());
  std::unique_ptr<core::FeedbackScheduler> controller;
  if (cfg.feedback) {
    controller =
        std::make_unique<core::FeedbackScheduler>(bed.engine, hub, cfg.controller);
    controller->control_rate(core::kFlowSender1, bottleneck, cfg.bucket_bytes);
    controller->control_rate(core::kFlowSender2, bottleneck, cfg.bucket_bytes);
    controller->start();
  }

  const Duration base_interval = message_interval(cfg.a_base_rate_bps, cfg.message_bytes);
  const Duration crowd_interval =
      message_interval(cfg.a_crowd_rate_bps, cfg.message_bytes);
  sim::PeriodicTimer task_a(bed.engine, base_interval, [&] {
    ++result.a_sent;
    if (bed.engine.now() >= step_time) ++a_sent_post;
    stub_a.oneway("frame", std::vector<std::uint8_t>(cfg.message_bytes));
  });
  sim::PeriodicTimer task_b(
      bed.engine, message_interval(cfg.b_rate_bps, cfg.message_bytes), [&] {
        ++result.b_sent;
        stub_b.oneway("frame", std::vector<std::uint8_t>(cfg.message_bytes));
      });

  task_a.start();
  task_b.start_after(milliseconds(7));  // decollide the two send grids
  bed.load_traffic->start();

  // The flash crowd: flow A's arrival rate steps up at step_at.
  bed.engine.at(step_time, [&] {
    task_a.stop();
    task_a.set_period(crowd_interval);
    task_a.start();
  });

  bed.engine.run_until(TimePoint::zero() + cfg.duration);
  // Judge the SLO at end of traffic, before the drain: once arrivals stop,
  // every window goes clean and even the collapsed static run would log a
  // vacuous "recovery".
  hub.poll(bed.engine.now());
  result.a_breached_at_end = hub.breached(core::kFlowSender1);
  {
    const auto rep = hub.report();
    const auto it = rep.flows.find(core::kFlowSender1);
    if (it != rep.flows.end()) {
      result.a_breaches = it->second.breaches;
      result.a_recoveries = it->second.recoveries;
    }
  }
  task_a.stop();
  task_b.stop();
  bed.load_traffic->stop();
  if (controller) controller->stop();
  // Drain in-flight messages.
  bed.engine.run_until(TimePoint::zero() + cfg.duration + seconds(2));

  hub.finalize(bed.engine.now());
  result.health = hub.report();
  const auto it = result.health.flows.find(core::kFlowSender1);
  if (it != result.health.flows.end()) {
    result.a_breached_ns = it->second.breached_ns;
  }
  result.a_post_step_delivery =
      a_sent_post == 0 ? 0.0
                       : static_cast<double>(a_received_post) /
                             static_cast<double>(a_sent_post);
  if (controller) {
    result.epochs_run = controller->epochs_run();
    result.restamps_applied = controller->restamps_applied();
  }
  bed.engine.set_telemetry(nullptr);
  bed.engine.set_tracer(nullptr);
  return result;
}

}  // namespace aqm::bench

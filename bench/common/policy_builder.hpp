// Fluent EndToEndQosPolicy construction for the bench drivers. Every
// driver used to hand-assemble its policies field by field; the builder
// keeps each driver's QoS declaration to one expression and gives the
// recurring shapes (a classified sender at a priority, a reserved stream,
// an SLO-bearing flow) a single definition the drivers share.
//
// The builder only ever sets the fields named in the chain — build()
// returns exactly the policy the equivalent field assignments produced,
// so converting a driver cannot change its output bytes.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "core/qos_policy.hpp"
#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "net/rsvp.hpp"
#include "obs/telemetry.hpp"
#include "orb/types.hpp"
#include "os/cpu.hpp"

namespace aqm::bench {

class PolicyBuilder {
 public:
  PolicyBuilder() = default;

  /// The common baseline: flow id for the classifier plus a low CORBA
  /// priority (what default_sender_policy used to hard-code).
  [[nodiscard]] static PolicyBuilder sender(net::FlowId flow,
                                            orb::CorbaPriority priority = 1000) {
    return PolicyBuilder{}.flow(flow).priority(priority);
  }

  PolicyBuilder& flow(net::FlowId flow) {
    p_.flow = flow;
    return *this;
  }
  PolicyBuilder& priority(orb::CorbaPriority priority) {
    p_.priority = priority;
    return *this;
  }
  /// Banded CORBA-priority -> DSCP mapping (needs a DiffServ PHB to matter).
  PolicyBuilder& banded_dscp(bool on = true) {
    p_.map_priority_to_dscp = on;
    return *this;
  }
  PolicyBuilder& dscp(net::Dscp dscp) {
    p_.explicit_dscp = dscp;
    return *this;
  }
  PolicyBuilder& deadline(Duration deadline) {
    p_.deadline = deadline;
    return *this;
  }
  PolicyBuilder& cpu_reserve(Duration compute, Duration period, bool hard = false) {
    p_.server_cpu_reserve = os::ReserveSpec{compute, period, hard};
    return *this;
  }
  PolicyBuilder& network(double rate_bps, std::uint32_t bucket_bytes = 40'000) {
    p_.network_reservation = net::FlowSpec{rate_bps, bucket_bytes};
    return *this;
  }
  PolicyBuilder& batching(const core::OnewayBatchingPolicy& batching) {
    p_.oneway_batching = batching;
    return *this;
  }
  PolicyBuilder& slo(const obs::SloSpec& slo) {
    p_.slo = slo;
    return *this;
  }

  [[nodiscard]] core::EndToEndQosPolicy build() const { return p_; }
  operator core::EndToEndQosPolicy() const { return p_; }  // NOLINT(google-explicit-constructor)

 private:
  core::EndToEndQosPolicy p_;
};

}  // namespace aqm::bench

#include "common/priority_scenario.hpp"

#include <cmath>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/qos_session.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"
#include "os/load_generator.hpp"
#include "sim/engine.hpp"

namespace aqm::bench {

PriorityScenarioResult run_priority_scenario(const PriorityScenarioConfig& cfg) {
  core::PriorityTestbedParams params;
  params.diffserv_bottleneck = cfg.diffserv_router ||
                               cfg.sender1_policy.map_priority_to_dscp ||
                               cfg.sender2_policy.map_priority_to_dscp;
  params.cross_rate_bps = cfg.cross_rate_bps;
  params.router_queue_pkts = cfg.queue_pkts;
  params.cross_seed = cfg.cross_seed;
  core::PriorityTestbed bed(params);

  PriorityScenarioResult result;

  if (cfg.trace) {
    result.trace = std::make_shared<obs::TraceRecorder>();
    bed.engine.set_tracer(result.trace.get());
  }

  // Two servants in two separate POAs, as in the paper's receiver host.
  auto make_sink = [&](const std::string& poa_name, TimeSeries& series,
                       std::uint64_t& count) {
    orb::Poa& poa = bed.receiver_orb.create_poa(poa_name);
    auto servant = std::make_shared<orb::FunctionServant>(
        cfg.servant_cost, [&series, &count, &bed](orb::ServerRequest& req) {
          ++count;
          if (req.client_send_time) {
            series.add(bed.engine.now(),
                       (bed.engine.now() - *req.client_send_time).millis());
          }
        });
    return poa.activate_object("sink", std::move(servant));
  };
  const orb::ObjectRef sink1 = make_sink("recv1", result.s1_latency_ms, result.s1_received);
  const orb::ObjectRef sink2 = make_sink("recv2", result.s2_latency_ms, result.s2_received);

  // Each sender's QoS (priority, DSCP mapping, flow id) is declared once in
  // its EndToEndQosPolicy and applied atomically through a QoSSession, which
  // binds it on the client ORB's QoS-policy interceptor for this target.
  orb::ObjectStub stub1(bed.sender_orb, sink1);
  core::QoSSession session1(bed.sender_orb, stub1);
  session1.apply(cfg.sender1_policy);
  orb::ObjectStub stub2(bed.sender_orb, sink2);
  core::QoSSession session2(bed.sender_orb, stub2);
  session2.apply(cfg.sender2_policy);

  const auto interval =
      Duration{static_cast<std::int64_t>(std::llround(1e9 / cfg.messages_per_second))};
  sim::PeriodicTimer task1(bed.engine, interval, [&] {
    ++result.s1_sent;
    stub1.oneway("frame", std::vector<std::uint8_t>(cfg.message_bytes));
  });
  sim::PeriodicTimer task2(bed.engine, interval, [&] {
    ++result.s2_sent;
    stub2.oneway("frame", std::vector<std::uint8_t>(cfg.message_bytes));
  });

  std::unique_ptr<os::LoadGenerator> load;
  if (cfg.cpu_load) {
    os::LoadGenerator::Config load_cfg;
    load_cfg.priority = cfg.cpu_load_priority;
    load_cfg.burst_mean = cfg.cpu_load_burst;
    load_cfg.interval_mean = cfg.cpu_load_interval;
    load = std::make_unique<os::LoadGenerator>(bed.engine, bed.receiver_cpu, load_cfg,
                                               cfg.seed);
    load->start();
  }

  task1.start();
  // Stagger the second task half a period so the senders do not always
  // collide on the shared uplink at the exact same instant.
  task2.start_after(interval / 2 + interval);
  if (cfg.cross_traffic) bed.cross_traffic->start();

  bed.engine.run_until(TimePoint::zero() + cfg.duration);
  task1.stop();
  task2.stop();
  if (cfg.cross_traffic) bed.cross_traffic->stop();
  if (load) load->stop();
  // Drain in-flight messages.
  bed.engine.run_until(TimePoint::zero() + cfg.duration + seconds(5));

  if (cfg.collect_metrics) {
    obs::MetricsRegistry reg;
    bed.sender_orb.export_metrics(reg, "orb.sender");
    bed.receiver_orb.export_metrics(reg, "orb.receiver");
    bed.network.export_metrics(reg, "net");
    bed.sender_cpu.export_metrics(reg, "cpu.sender");
    bed.receiver_cpu.export_metrics(reg, "cpu.receiver");
    reg.counter("scenario.s1_sent").set(result.s1_sent);
    reg.counter("scenario.s2_sent").set(result.s2_sent);
    reg.counter("scenario.s1_received").set(result.s1_received);
    reg.counter("scenario.s2_received").set(result.s2_received);
    reg.stats("scenario.s1_latency_ms").merge(result.s1_latency_ms.stats());
    reg.stats("scenario.s2_latency_ms").merge(result.s2_latency_ms.stats());
    auto& h1 = reg.histogram("scenario.s1_latency_ms_hist", 0.0, 2000.0, 100);
    for (const auto& pt : result.s1_latency_ms.points()) h1.add(pt.value);
    auto& h2 = reg.histogram("scenario.s2_latency_ms_hist", 0.0, 2000.0, 100);
    for (const auto& pt : result.s2_latency_ms.points()) h2.add(pt.value);
    result.metrics = reg.snapshot();
  }
  return result;
}

void print_latency_series(const PriorityScenarioResult& result, Duration bucket,
                          TimePoint end) {
  const auto b1 = result.s1_latency_ms.bucketize(bucket, end);
  const auto b2 = result.s2_latency_ms.bucketize(bucket, end);
  TextTable table({"t(s)", "s1 msgs", "s1 mean(ms)", "s1 max(ms)", "s2 msgs",
                   "s2 mean(ms)", "s2 max(ms)"});
  for (std::size_t i = 0; i < b1.size(); ++i) {
    const auto& r1 = b1[i];
    const auto& r2 = i < b2.size() ? b2[i] : b1[i];
    table.row({fmt(r1.start.seconds(), 0), std::to_string(r1.count), fmt(r1.mean),
               fmt(r1.max), std::to_string(r2.count), fmt(r2.mean), fmt(r2.max)});
  }
  table.print();
}

void print_summary(const std::string& title, const PriorityScenarioResult& result) {
  const RunningStats s1 = result.s1_stats();
  const RunningStats s2 = result.s2_stats();
  std::cout << "\n" << title << "\n";
  TextTable table({"sender", "sent", "delivered", "loss%", "mean(ms)", "stddev(ms)",
                   "min(ms)", "max(ms)"});
  auto add = [&](const char* name, std::uint64_t sent, std::uint64_t recv,
                 const RunningStats& s) {
    const double loss =
        sent == 0 ? 0.0
                  : 100.0 * static_cast<double>(sent - std::min(sent, recv)) /
                        static_cast<double>(sent);
    table.row({name, std::to_string(sent), std::to_string(recv), fmt(loss, 1),
               fmt(s.mean()), fmt(s.stddev()), fmt(s.empty() ? 0 : s.min()),
               fmt(s.empty() ? 0 : s.max())});
  };
  add("sender1", result.s1_sent, result.s1_received, s1);
  add("sender2", result.s2_sent, result.s2_received, s2);
  table.print();
}

}  // namespace aqm::bench

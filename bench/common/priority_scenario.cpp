#include "common/priority_scenario.hpp"

#include <cmath>
#include <iostream>
#include <memory>

#include "common/table.hpp"
#include "core/qos_session.hpp"
#include "net/flow_monitor.hpp"
#include "obs/telemetry.hpp"
#include "orb/orb.hpp"
#include "orb/servant.hpp"
#include "os/load_generator.hpp"
#include "sim/engine.hpp"

namespace aqm::bench {

PriorityScenarioResult run_priority_scenario(const PriorityScenarioConfig& cfg) {
  core::PriorityTestbedParams params;
  params.diffserv_bottleneck = cfg.diffserv_router ||
                               cfg.sender1_policy.map_priority_to_dscp ||
                               cfg.sender2_policy.map_priority_to_dscp;
  params.cross_rate_bps = cfg.cross_rate_bps;
  params.router_queue_pkts = cfg.queue_pkts;
  params.cross_seed = cfg.cross_seed;
  core::PriorityTestbed bed(params);

  PriorityScenarioResult result;

  if (cfg.trace) {
    result.trace = std::make_shared<obs::TraceRecorder>();
    bed.engine.set_tracer(result.trace.get());
  }

  // Telemetry hub: attached before the QoS sessions apply, so per-policy
  // SLO specs land on it. With full tracing off, the hub's flight ring
  // doubles as the engine tracer (lossy, bounded, near-zero cost).
  std::unique_ptr<obs::TelemetryHub> hub;
  if (cfg.telemetry) {
    hub = std::make_unique<obs::TelemetryHub>(cfg.telemetry_config);
    bed.engine.set_telemetry(hub.get());
    if (cfg.trace) {
      hub->set_dump_source(result.trace.get());
    } else {
      bed.engine.set_tracer(&hub->flight());
    }
  }

  // Receiver-side FlowMonitor: a pure tap in front of the ORB transport's
  // receiver (swap_receiver chains it as downstream). Feeds jitter into
  // the hub and the "recv.*" registry names.
  std::unique_ptr<net::FlowMonitor> monitor;
  if (cfg.collect_metrics || cfg.telemetry) {
    monitor = std::make_unique<net::FlowMonitor>(bed.network, bed.receiver_node);
  }

  // Two servants in two separate POAs, as in the paper's receiver host.
  auto make_sink = [&](const std::string& poa_name, TimeSeries& series,
                       std::uint64_t& count) {
    orb::Poa& poa = bed.receiver_orb.create_poa(poa_name);
    auto servant = std::make_shared<orb::FunctionServant>(
        cfg.servant_cost, [&series, &count, &bed](orb::ServerRequest& req) {
          ++count;
          if (req.client_send_time) {
            series.add(bed.engine.now(),
                       (bed.engine.now() - *req.client_send_time).millis());
          }
        });
    return poa.activate_object("sink", std::move(servant));
  };
  const orb::ObjectRef sink1 = make_sink("recv1", result.s1_latency_ms, result.s1_received);
  const orb::ObjectRef sink2 = make_sink("recv2", result.s2_latency_ms, result.s2_received);

  // Each sender's QoS (priority, DSCP mapping, flow id) is declared once in
  // its EndToEndQosPolicy and applied atomically through a QoSSession, which
  // binds it on the client ORB's QoS-policy interceptor for this target.
  orb::ObjectStub stub1(bed.sender_orb, sink1);
  core::QoSSession session1(bed.sender_orb, stub1);
  session1.apply(cfg.sender1_policy);
  orb::ObjectStub stub2(bed.sender_orb, sink2);
  core::QoSSession session2(bed.sender_orb, stub2);
  session2.apply(cfg.sender2_policy);

  const auto interval =
      Duration{static_cast<std::int64_t>(std::llround(1e9 / cfg.messages_per_second))};
  sim::PeriodicTimer task1(bed.engine, interval, [&] {
    ++result.s1_sent;
    stub1.oneway("frame", std::vector<std::uint8_t>(cfg.message_bytes));
  });
  sim::PeriodicTimer task2(bed.engine, interval, [&] {
    ++result.s2_sent;
    stub2.oneway("frame", std::vector<std::uint8_t>(cfg.message_bytes));
  });

  std::unique_ptr<os::LoadGenerator> load;
  if (cfg.cpu_load) {
    os::LoadGenerator::Config load_cfg;
    load_cfg.priority = cfg.cpu_load_priority;
    load_cfg.burst_mean = cfg.cpu_load_burst;
    load_cfg.interval_mean = cfg.cpu_load_interval;
    load = std::make_unique<os::LoadGenerator>(bed.engine, bed.receiver_cpu, load_cfg,
                                               cfg.seed);
    load->start();
  }

  task1.start();
  // Stagger the second task half a period so the senders do not always
  // collide on the shared uplink at the exact same instant.
  task2.start_after(interval / 2 + interval);
  if (cfg.cross_traffic) bed.cross_traffic->start();

  bed.engine.run_until(TimePoint::zero() + cfg.duration);
  task1.stop();
  task2.stop();
  if (cfg.cross_traffic) bed.cross_traffic->stop();
  if (load) load->stop();
  // Drain in-flight messages.
  bed.engine.run_until(TimePoint::zero() + cfg.duration + seconds(5));

  if (hub) {
    hub->finalize(bed.engine.now());
    result.health = hub->report();
    result.flight_dumps = hub->dumps();
    bed.engine.set_telemetry(nullptr);
    if (!cfg.trace) bed.engine.set_tracer(nullptr);
  }
  if (monitor) {
    const net::FlowId f1 = cfg.sender1_policy.flow.value_or(core::kFlowSender1);
    const net::FlowId f2 = cfg.sender2_policy.flow.value_or(core::kFlowSender2);
    result.s1_jitter_ms = monitor->jitter_ms(f1);
    result.s2_jitter_ms = monitor->jitter_ms(f2);
    result.s1_dropped = monitor->dropped(f1);
    result.s2_dropped = monitor->dropped(f2);
  }

  if (cfg.collect_metrics) {
    obs::MetricsRegistry reg;
    bed.sender_orb.export_metrics(reg, "orb.sender");
    bed.receiver_orb.export_metrics(reg, "orb.receiver");
    bed.network.export_metrics(reg, "net");
    bed.sender_cpu.export_metrics(reg, "cpu.sender");
    bed.receiver_cpu.export_metrics(reg, "cpu.receiver");
    // Receiver-side quality signals go through registry names (not ad-hoc
    // prints): recv.flow<id>.jitter_ms / .dropped / .interarrival_ms etc.
    if (monitor) monitor->export_metrics(reg, "recv");
    if (hub) hub->export_metrics(reg, "telemetry");
    reg.counter("scenario.s1_sent").set(result.s1_sent);
    reg.counter("scenario.s2_sent").set(result.s2_sent);
    reg.counter("scenario.s1_received").set(result.s1_received);
    reg.counter("scenario.s2_received").set(result.s2_received);
    reg.stats("scenario.s1_latency_ms").merge(result.s1_latency_ms.stats());
    reg.stats("scenario.s2_latency_ms").merge(result.s2_latency_ms.stats());
    auto& h1 = reg.histogram("scenario.s1_latency_ms_hist", 0.0, 2000.0, 100);
    for (const auto& pt : result.s1_latency_ms.points()) h1.add(pt.value);
    auto& h2 = reg.histogram("scenario.s2_latency_ms_hist", 0.0, 2000.0, 100);
    for (const auto& pt : result.s2_latency_ms.points()) h2.add(pt.value);
    result.metrics = reg.snapshot();
  }
  return result;
}

void print_latency_series(const PriorityScenarioResult& result, Duration bucket,
                          TimePoint end) {
  const auto b1 = result.s1_latency_ms.bucketize(bucket, end);
  const auto b2 = result.s2_latency_ms.bucketize(bucket, end);
  TextTable table({"t(s)", "s1 msgs", "s1 mean(ms)", "s1 max(ms)", "s2 msgs",
                   "s2 mean(ms)", "s2 max(ms)"});
  for (std::size_t i = 0; i < b1.size(); ++i) {
    const auto& r1 = b1[i];
    const auto& r2 = i < b2.size() ? b2[i] : b1[i];
    table.row({fmt(r1.start.seconds(), 0), std::to_string(r1.count), fmt(r1.mean),
               fmt(r1.max), std::to_string(r2.count), fmt(r2.mean), fmt(r2.max)});
  }
  table.print();
}

void print_summary(const std::string& title, const PriorityScenarioResult& result) {
  const RunningStats s1 = result.s1_stats();
  const RunningStats s2 = result.s2_stats();
  std::cout << "\n" << title << "\n";
  TextTable table({"sender", "sent", "delivered", "dropped", "loss%", "mean(ms)",
                   "stddev(ms)", "min(ms)", "max(ms)", "jitter(ms)"});
  auto add = [&](const char* name, std::uint64_t sent, std::uint64_t recv,
                 std::uint64_t dropped, double jitter, const RunningStats& s) {
    const double loss =
        sent == 0 ? 0.0
                  : 100.0 * static_cast<double>(sent - std::min(sent, recv)) /
                        static_cast<double>(sent);
    table.row({name, std::to_string(sent), std::to_string(recv),
               std::to_string(dropped), fmt(loss, 1), fmt(s.mean()), fmt(s.stddev()),
               fmt(s.empty() ? 0 : s.min()), fmt(s.empty() ? 0 : s.max()),
               fmt(jitter)});
  };
  add("sender1", result.s1_sent, result.s1_received, result.s1_dropped,
      result.s1_jitter_ms, s1);
  add("sender2", result.s2_sent, result.s2_received, result.s2_dropped,
      result.s2_jitter_ms, s2);
  table.print();
}

}  // namespace aqm::bench

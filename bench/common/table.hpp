// Plain-text table formatting for benchmark output that mirrors the
// paper's tables and figure series.
#pragma once

#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

namespace aqm::bench {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  TextTable& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], r[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "  ";
      for (std::size_t i = 0; i < cells.size(); ++i) {
        os << std::left << std::setw(static_cast<int>(widths[i]) + 3) << cells[i];
      }
      os << "\n";
    };
    print_row(headers_);
    std::size_t total = 2;
    for (const auto w : widths) total += w + 3;
    os << "  " << std::string(total - 2, '-') << "\n";
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace aqm::bench

#include "common/reservation_scenario.hpp"

#include <memory>

#include "avstreams/rate_adaptation.hpp"
#include "avstreams/stream.hpp"
#include "common/log.hpp"
#include "common/policy_builder.hpp"
#include "core/qos_session.hpp"
#include "core/testbed.hpp"
#include "media/frame_filter.hpp"
#include "media/video_source.hpp"
#include "quo/status_channel.hpp"

namespace aqm::bench {

ReservationScenarioResult run_reservation_scenario(const ReservationScenarioConfig& cfg) {
  core::ReservationTestbedParams params;
  params.load_rate_bps = cfg.load_rate_bps;
  params.load_seed = cfg.load_seed;
  core::ReservationTestbed bed(params);

  const media::GopStructure gop = media::GopStructure::mpeg1_paper_profile();
  const double ip_rate = gop.rate_bps_filtered(cfg.fps, true, true, false);

  ReservationScenarioResult result;
  media::VideoSinkStats stats(bed.engine, gop);

  // --- receiver side: sink endpoint ---------------------------------------------
  orb::Poa& video_poa = bed.receiver_orb.create_poa("video");
  av::VideoSinkEndpoint sink(video_poa, "display", cfg.sink_decode_cost,
                             [&](const media::VideoFrame& f) { stats.on_received(f); });

  // --- sender side: source -> QuO frame filter -> stream binding -----------------
  av::StreamBinding binding(bed.sender_orb, sink.ref(), core::kFlowVideo);
  media::FrameFilter filter(media::FilterLevel::Full);

  double reserved_rate = 0.0;
  if (cfg.reservation == ReservationLevel::Partial) reserved_rate = cfg.partial_rate_bps;
  if (cfg.reservation == ReservationLevel::Full) reserved_rate = cfg.full_rate_bps;

  std::unique_ptr<av::RateAdaptationQosket> qosket;
  if (cfg.frame_filtering) {
    av::RateAdaptationConfig qcfg;
    qcfg.reserved_rate_bps = reserved_rate;
    qcfg.ip_stream_rate_bps = ip_rate;
    qosket = std::make_unique<av::RateAdaptationQosket>(bed.engine, filter, qcfg);
  }

  media::VideoSource source(bed.engine, gop, cfg.fps, [&](const media::VideoFrame& f) {
    ++result.frames_sourced;
    stats.on_source(f);
    if (cfg.frame_filtering && !filter.filter(f)) return;
    stats.on_transmitted(f);
    binding.push(f);
  });

  // --- QuO status collection (receiver reports upstream) -------------------------
  // The receiver's reporter pushes its cumulative delivery count to a
  // collector on the sender; the sender derives the per-window delivery
  // ratio against its own transmit count and feeds the qosket.
  orb::Poa& ctl_poa = bed.sender_orb.create_poa("ctl");
  quo::StatusCollector collector(ctl_poa, "video-status");
  quo::ValueSysCond& rx_total = collector.condition("frames_received");
  quo::StatusReporter reporter(bed.receiver_orb, collector.ref(), milliseconds(500));
  reporter.probe("frames_received",
                 [&] { return static_cast<double>(sink.frames_received()); });

  std::uint64_t last_rx = 0;
  std::uint64_t last_tx = 0;
  rx_total.subscribe([&] {
    const auto rx = static_cast<std::uint64_t>(rx_total.value());
    const std::uint64_t tx = stats.transmitted_count();
    const std::uint64_t dtx = tx - last_tx;
    const std::uint64_t drx = rx - last_rx;
    last_tx = tx;
    last_rx = rx;
    if (qosket && dtx > 0) {
      qosket->report(static_cast<double>(drx) / static_cast<double>(dtx));
    }
  });

  // --- reservations ------------------------------------------------------------
  // The RSVP reservation is requested declaratively: an EndToEndQosPolicy
  // whose network part the QoSSession signals through the network QoS
  // manager's sender-side agent for the stream binding's flow.
  core::QoSSession session(bed.sender_orb, binding.stub(), &bed.qos);
  if (cfg.reservation != ReservationLevel::None) {
    session.apply(PolicyBuilder{}.network(reserved_rate), [](Status<std::string> s) {
      if (!s.ok()) {
        AQM_WARN() << "reservation failed: " << s.error();
      }
    });
  }

  // --- schedule the run ----------------------------------------------------------
  const TimePoint video_start{seconds(1).ns()};
  const TimePoint video_end = video_start + cfg.total;
  source.run_between(video_start, video_end);
  reporter.start();
  const TimePoint load_start = video_start + cfg.load_start;
  const TimePoint load_end = load_start + cfg.load_duration;
  bed.load_traffic->run_between(load_start, load_end);

  bed.engine.run_until(video_end + seconds(5));
  reporter.stop();

  // --- harvest -------------------------------------------------------------------
  result.frames_transmitted = stats.transmitted_count();
  result.frames_received = stats.received_count();
  result.frames_decodable = stats.decodable_count();
  result.i_frames_transmitted = stats.transmitted_of(media::FrameType::I);
  result.i_frames_received = stats.received_of(media::FrameType::I);
  result.sent_under_load = stats.transmitted_between(load_start, load_end);
  result.received_under_load = stats.received_captured_between(load_start, load_end);
  result.latency_under_load_ms = stats.latency_between(load_start, load_end + seconds(1));
  result.latency_overall_ms = stats.latency_series().stats();
  result.tx_per_second = stats.transmit_series().bucketize(seconds(1), video_end);
  result.rx_per_second = stats.receive_series().bucketize(seconds(1), video_end);
  if (qosket) result.contract_history = qosket->history();
  return result;
}

}  // namespace aqm::bench

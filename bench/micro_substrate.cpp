// Micro-benchmarks of the simulation substrate itself (google-benchmark):
// event-engine throughput, CPU-scheduler throughput, packet forwarding,
// and the real edge-detection kernels (pixels/second of actual work).
#include <benchmark/benchmark.h>

#include "imgproc/edge.hpp"
#include "imgproc/synth.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aqm;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      engine.after(microseconds(i), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_CpuSchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    os::Cpu cpu(engine, "cpu");
    int done = 0;
    for (int i = 0; i < 2'000; ++i) {
      cpu.submit_for(microseconds(50), i % 16, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_CpuSchedulerThroughput);

void BM_PacketForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    net::Network net(engine);
    const auto a = net.add_node("a");
    const auto r = net.add_node("r");
    const auto b = net.add_node("b");
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    net.add_duplex_link(a, r, cfg);
    net.add_duplex_link(r, b, cfg);
    int delivered = 0;
    net.set_receiver(b, [&delivered](net::Packet&&) { ++delivered; });
    for (int i = 0; i < 2'000; ++i) {
      net::Packet p;
      p.dst = b;
      p.size_bytes = 1000;
      net.send(a, std::move(p));
    }
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_PacketForwarding);

void BM_DiffServQueueOps(benchmark::State& state) {
  net::DiffServQueue q(100'000);
  const TimePoint t0 = TimePoint::zero();
  std::uint8_t dscps[] = {0, 10, 34, 46};
  int i = 0;
  for (auto _ : state) {
    net::Packet p;
    p.dst = 0;
    p.size_bytes = 1000;
    p.dscp = dscps[i++ % 4];
    (void)q.enqueue(std::move(p), t0);
    benchmark::DoNotOptimize(q.dequeue(t0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffServQueueOps);

void BM_EdgeDetection(benchmark::State& state) {
  const img::GrayImage image = img::make_paper_scene(1).to_gray();
  const auto algorithm = static_cast<img::EdgeAlgorithm>(state.range(0));
  for (auto _ : state) {
    const img::GrayImage out = img::run_edge(algorithm, image);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.pixel_count()));
  state.SetLabel(img::to_string(algorithm));
}
BENCHMARK(BM_EdgeDetection)->Arg(0)->Arg(1)->Arg(2);  // Kirsch, Prewitt, Sobel

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks of the simulation substrate itself (google-benchmark):
// event-engine throughput, CPU-scheduler throughput, packet forwarding,
// link-event coalescing, the shard-parallel sweep runner, and the real
// edge-detection kernels (pixels/second of actual work). Tracked as
// BENCH_net.json from PR to PR.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json_report.hpp"
#include "core/experiment.hpp"
#include "core/feedback_scheduler.hpp"
#include "obs/telemetry.hpp"
#include "imgproc/edge.hpp"
#include "imgproc/synth.hpp"
#include "net/network.hpp"
#include "net/queue.hpp"
#include "net/traffic_gen.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/partition.hpp"

namespace {

using namespace aqm;

void BM_EngineEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    engine.reserve(10'000);
    int fired = 0;
    for (int i = 0; i < 10'000; ++i) {
      engine.after(microseconds(i), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_EngineEventThroughput);

void BM_CpuSchedulerThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    os::Cpu cpu(engine, "cpu");
    int done = 0;
    for (int i = 0; i < 2'000; ++i) {
      cpu.submit_for(microseconds(50), i % 16, [&done] { ++done; });
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_CpuSchedulerThroughput);

/// Scaling probe for the indexed scheduler: submit N mixed-priority jobs
/// up front (Arg 0 = N), optionally spread across four CPU reserves that
/// exhaust and replenish during the run (Arg 1), and drain the backlog.
/// The point is the shape, not the absolute rate: per-job scheduling cost
/// (ns_per_job) must stay roughly flat from 256 to 16384 pending jobs in
/// the plain variant — the scan-everything scheduler was quadratic here.
/// (The reserves variant is allowed to grow: each replenishment genuinely
/// re-prioritizes every job attached to the reserve, so its per-job cost
/// scales with attachment density by design.) CI asserts the plain-mode
/// flatness; run_bench.sh gates items/s floors like every other suite.
void BM_CpuSchedulerScaling(benchmark::State& state) {
  const int n_jobs = static_cast<int>(state.range(0));
  const bool with_reserves = state.range(1) != 0;
  for (auto _ : state) {
    sim::Engine engine;
    engine.reserve(1'024);
    os::Cpu cpu(engine, "cpu");
    std::array<os::ReserveId, 4> reserves{};
    if (with_reserves) {
      for (std::size_t r = 0; r < reserves.size(); ++r) {
        // Small budgets over short periods: jobs overrun, hard reserves
        // suspend and wake, soft ones demote — the expensive transitions.
        const auto id = cpu.create_reserve(
            {microseconds(200 + 100 * static_cast<std::int64_t>(r)),
             milliseconds(2 + static_cast<std::int64_t>(r)),
             /*hard=*/r % 2 == 0});
        reserves[r] = id.ok() ? id.value() : os::kNoReserve;
      }
    }
    int done = 0;
    for (int i = 0; i < n_jobs; ++i) {
      const os::ReserveId reserve =
          with_reserves && i % 4 == 0 ? reserves[static_cast<std::size_t>(i / 4) % 4]
                                      : os::kNoReserve;
      cpu.submit_for(microseconds(20), i % 32, [&done] { ++done; }, reserve);
    }
    engine.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * n_jobs);
  // Inverted rate scaled to nanoseconds per scheduled job (the 1e-9 keeps
  // the value >> the JSON reporter's 6-decimal precision). The
  // run_bench.sh gate fails if this grows >15% vs the recorded floor —
  // i.e. if per-decision cost regresses toward job-count dependence.
  state.counters["ns_per_job"] = benchmark::Counter(
      1e-9 * static_cast<double>(n_jobs) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetLabel(with_reserves ? "reserves" : "plain");
}
BENCHMARK(BM_CpuSchedulerScaling)
    ->Args({256, 0})
    ->Args({2048, 0})
    ->Args({16384, 0})
    ->Args({256, 1})
    ->Args({2048, 1})
    ->Args({16384, 1});

void BM_PacketForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    net::Network net(engine);
    const auto a = net.add_node("a");
    const auto r = net.add_node("r");
    const auto b = net.add_node("b");
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 1e9;
    net.add_duplex_link(a, r, cfg);
    net.add_duplex_link(r, b, cfg);
    int delivered = 0;
    net.set_receiver(b, [&delivered](net::Packet&&) { ++delivered; });
    for (int i = 0; i < 2'000; ++i) {
      net::Packet p;
      p.dst = b;
      p.size_bytes = 1000;
      net.send(a, std::move(p));
    }
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 2'000);
}
BENCHMARK(BM_PacketForwarding);

/// City-scale fan-in probe for the flow substrate: one IntServ egress queue
/// carrying N installed reservations (Arg 0 = N, 1k -> 256k), with traffic
/// striding across the whole flow space. The world is built once — the
/// timed region is pure steady-state forwarding, so the counter isolates
/// per-packet cost: hashed flow lookup + ready-index service on the indexed
/// table. The point is the shape, not the absolute rate: ns_per_packet must
/// stay roughly flat from 1k to 256k installed flows — the ordered-map
/// implementation walked reserved flows on the service path and re-summed
/// every reservation on admission, both linear in N. CI asserts the
/// flatness (256k within 3x of 1k); run_bench.sh gates the recorded floors
/// with the LOOSE margin used for every scaling suite.
void BM_RouterFanIn(benchmark::State& state) {
  const auto n_flows = static_cast<std::uint64_t>(state.range(0));
  constexpr int kPacketsPerIter = 1'024;

  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("a");
  const auto r = net.add_node("r");
  const auto b = net.add_node("b");
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 10e9;  // fast wire: queueing dynamics, not serialization
  net.add_duplex_link(a, r, cfg);
  net::IntServQueue::Config qc;
  qc.best_effort_capacity = 4'096;
  auto intserv = std::make_unique<net::IntServQueue>(qc);
  net::IntServQueue& egress = *intserv;
  net.add_link(r, b, cfg, std::move(intserv));
  net.add_link(b, r, cfg);
  // Ascending ids: every install extends the incremental reserved-rate sum
  // instead of forcing a full re-sum (the admission-path fast case).
  for (std::uint64_t f = 1; f <= n_flows; ++f) {
    egress.install_reservation(f, 20e3, 64'000, engine.now());
  }
  std::uint64_t delivered = 0;
  net.set_receiver(b, [&delivered](net::Packet&&) { ++delivered; });

  // Each iteration bursts one 1k-flow working set, rotated across the whole
  // space over successive iterations — every reservation sees traffic, but
  // a single burst has the locality real fan-in has. Algorithmic O(n) costs
  // (the legacy map's service scan, the admission re-sum) depend on TABLE
  // size, not on which flows are active, so the flatness gate still catches
  // them; what this avoids is measuring nothing but cold-cache misses.
  std::uint64_t base = 0;
  for (auto _ : state) {
    for (int i = 0; i < kPacketsPerIter; ++i) {
      net::Packet p;
      p.dst = b;
      p.flow = 1 + (base + static_cast<std::uint64_t>(i)) % n_flows;
      p.dscp = net::dscp::kEf;
      p.size_bytes = 1'000;
      net.send(a, std::move(p));
    }
    base += kPacketsPerIter;
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kPacketsPerIter);
  state.counters["ns_per_packet"] = benchmark::Counter(
      1e-9 * static_cast<double>(kPacketsPerIter) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
  state.SetLabel(std::to_string(n_flows) + "_flows");
}
BENCHMARK(BM_RouterFanIn)->Arg(1'024)->Arg(32'768)->Arg(262'144);

/// One FeedbackScheduler control epoch over N rate-controlled flows
/// (DESIGN.md §13): sense N hub windows, run the proportional-to-deficit
/// law, and re-stamp the IntServ reservations that moved outside the
/// hysteresis band. Alternate epochs drop half the flows' traffic so the
/// deficits genuinely oscillate and the actuation path (update_reservation
/// on a live table) is exercised, not just the dead zone. One item per
/// controlled-flow visit.
void BM_FeedbackEpoch(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  sim::Engine engine;
  obs::TelemetryHub hub;
  net::IntServQueue::Config qc;
  net::IntServQueue queue(qc);
  core::FeedbackConfig cfg;
  cfg.net_pool_bps = static_cast<double>(n) * 100e3;
  core::FeedbackScheduler fs(engine, hub, cfg);
  for (std::uint64_t f = 1; f <= n; ++f) {
    queue.install_reservation(f, 50e3, 64'000, engine.now());
    fs.control_rate(f, queue, 64'000);
  }
  fs.start();  // watches the controlled flows; epochs are stepped manually
  TimePoint now = TimePoint::zero();
  std::uint64_t epoch = 0;
  for (auto _ : state) {
    now = now + cfg.epoch;
    const bool stress = (epoch & 1) != 0;
    for (std::uint64_t f = 1; f <= n; ++f) {
      hub.on_delivery(f, now, 1'000);
      if (stress && (f & 1) != 0) hub.on_drop(f, now);
    }
    fs.run_epoch(now);
    ++epoch;
  }
  benchmark::DoNotOptimize(fs.restamps_applied());
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
  state.SetLabel(std::to_string(n) + "_flows");
}
BENCHMARK(BM_FeedbackEpoch)->Arg(4)->Arg(64);

/// Price of having the adaptation loop installed but disabled: the
/// BM_RouterFanIn forwarding world (1k reserved flows, bursty fan-in) with
/// a TelemetryHub on the engine in both arms (the hub's own budget is the
/// §12 telemetry gate). Arg(1) additionally installs a FeedbackScheduler
/// registered over every flow — watched windows, controlled table — but
/// never starts it: the controller-disabled configuration every deployment
/// ships with. scripts/run_bench.sh holds Arg(1) to >= 0.98x Arg(0)
/// measured in the same run (interleaved medians): disabling the
/// controller must actually make it free, within 2% (DESIGN.md §13).
void BM_ControllerOverhead(benchmark::State& state) {
  const bool installed = state.range(0) != 0;
  constexpr std::uint64_t kFlows = 1'024;
  constexpr int kPacketsPerIter = 1'024;

  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("a");
  const auto r = net.add_node("r");
  const auto b = net.add_node("b");
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 10e9;
  net.add_duplex_link(a, r, cfg);
  net::IntServQueue::Config qc;
  qc.best_effort_capacity = 4'096;
  auto intserv = std::make_unique<net::IntServQueue>(qc);
  net::IntServQueue& egress = *intserv;
  net.add_link(r, b, cfg, std::move(intserv));
  net.add_link(b, r, cfg);
  for (std::uint64_t f = 1; f <= kFlows; ++f) {
    egress.install_reservation(f, 20e3, 64'000, engine.now());
  }
  obs::TelemetryHub hub;
  engine.set_telemetry(&hub);
  std::unique_ptr<core::FeedbackScheduler> controller;
  if (installed) {
    controller = std::make_unique<core::FeedbackScheduler>(engine, hub);
    for (std::uint64_t f = 1; f <= kFlows; ++f) {
      controller->control_rate(f, egress, 64'000);
    }
    // Deliberately not started: the disabled controller must cost nothing
    // on the forwarding path.
  }
  std::uint64_t delivered = 0;
  net.set_receiver(b, [&delivered](net::Packet&&) { ++delivered; });

  std::uint64_t base = 0;
  for (auto _ : state) {
    for (int i = 0; i < kPacketsPerIter; ++i) {
      net::Packet p;
      p.dst = b;
      p.flow = 1 + (base + static_cast<std::uint64_t>(i)) % kFlows;
      p.dscp = net::dscp::kEf;
      p.size_bytes = 1'000;
      net.send(a, std::move(p));
    }
    base += kPacketsPerIter;
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
  engine.set_telemetry(nullptr);
  state.SetItemsProcessed(state.iterations() * kPacketsPerIter);
}
BENCHMARK(BM_ControllerOverhead)->Arg(0)->Arg(1);

/// A saturated 10 Mbps link draining a deep burst. Tracks the tentpole
/// metric of the event-coalescing change: simulator events executed per
/// delivered packet. Legacy two-event transmitter (Arg 0): ~2 events per
/// packet (tx-complete + delivery). Coalesced transmitter (Arg 1): ~1
/// (delivery only; the service decision piggybacks on it).
void BM_LinkSaturated(benchmark::State& state) {
  const bool coalesced = state.range(0) != 0;
  constexpr int kPackets = 4'000;
  std::uint64_t events = 0;
  std::uint64_t delivered_total = 0;
  for (auto _ : state) {
    sim::Engine engine;
    engine.reserve(1'024);
    net::Network net(engine);
    const auto a = net.add_node("a");
    const auto b = net.add_node("b");
    net::LinkConfig cfg;
    cfg.bandwidth_bps = 10e6;
    cfg.coalesced_events = coalesced;
    net.add_link(a, b, cfg, std::make_unique<net::DropTailQueue>(kPackets));
    net.add_link(b, a, cfg);
    int delivered = 0;
    net.set_receiver(b, [&delivered](net::Packet&&) { ++delivered; });
    for (int i = 0; i < kPackets; ++i) {
      net::Packet p;
      p.dst = b;
      p.size_bytes = 1000;
      net.send(a, std::move(p));
    }
    engine.run();
    events += engine.executed();
    delivered_total += static_cast<std::uint64_t>(delivered);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
  state.counters["events_per_packet"] =
      static_cast<double>(events) / static_cast<double>(delivered_total);
  state.SetLabel(coalesced ? "coalesced" : "legacy");
}
BENCHMARK(BM_LinkSaturated)->Arg(0)->Arg(1);

/// One self-contained sweep trial: Poisson traffic through a two-hop path
/// with a 10 Mbps bottleneck, private engine/network/RNG per trial.
std::uint64_t run_sweep_trial(std::uint64_t seed) {
  sim::Engine engine;
  net::Network net(engine);
  const auto a = net.add_node("a");
  const auto r = net.add_node("r");
  const auto b = net.add_node("b");
  net::LinkConfig access;
  access.bandwidth_bps = 100e6;
  net::LinkConfig bottleneck;
  bottleneck.bandwidth_bps = 10e6;
  net.add_duplex_link(a, r, access);
  net.add_duplex_link(r, b, bottleneck);

  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  net.set_receiver(b, [&](net::Packet&& p) {
    ++delivered;
    bytes += p.size_bytes;
  });

  net::TrafficGenerator::Config cfg;
  cfg.src = a;
  cfg.dst = b;
  cfg.rate_bps = 20e6;  // 2x the bottleneck: drops + queueing
  cfg.poisson = true;
  net::TrafficGenerator gen(net, cfg, seed);
  gen.run_between(TimePoint::zero(), TimePoint{milliseconds(100).ns()});
  engine.run();
  // Order-insensitive signature of the trial outcome.
  return delivered * 0x9E3779B97F4A7C15ULL + bytes;
}

/// The tentpole benchmark: a 32-trial sweep fanned out over the shard
/// runner at 1/2/4/8 workers. Real time is the metric (workers run outside
/// the timing thread); the "workers" counter records the fan-out so the
/// JSON report captures the speedup-vs-workers curve. Every worker count
/// must produce the identical aggregate — checked here on every iteration.
void BM_ParallelSweep(benchmark::State& state) {
  const auto jobs = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kTrials = 32;
  constexpr std::uint64_t kBaseSeed = 977;

  // Serial reference aggregate for the invariance check.
  static const std::uint64_t reference = [] {
    std::uint64_t agg = 0;
    for (std::size_t i = 0; i < kTrials; ++i) {
      agg ^= run_sweep_trial(core::derive_seed(kBaseSeed, i)) + i;
    }
    return agg;
  }();

  for (auto _ : state) {
    core::Experiment<std::uint64_t> exp;
    for (std::size_t i = 0; i < kTrials; ++i) {
      exp.add("sweep-" + std::to_string(i), core::derive_seed(kBaseSeed, i),
              [](const core::TrialSpec& spec) { return run_sweep_trial(spec.seed); });
    }
    core::ExperimentOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    const auto results = exp.run(opts);
    std::uint64_t agg = 0;
    for (std::size_t i = 0; i < results.size(); ++i) agg ^= results[i] + i;
    if (agg != reference) {
      state.SkipWithError("parallel sweep aggregate differs from serial reference");
      return;
    }
    benchmark::DoNotOptimize(agg);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kTrials));
  state.counters["workers"] = jobs;
}
BENCHMARK(BM_ParallelSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// A compact city_scale fabric (hosts -> edge routers -> core -> sink,
/// IntServ egress stages, every 8th flow reserved) executed by the
/// conservative-lookahead partitioned engine at 1/2/4 partitions. The cut
/// falls on the edge->core uplinks; partitions=1 is the verbatim
/// single-threaded engine, so its floor doubles as the no-regression gate
/// for the partitioning hooks on the plain path. Real time is the metric
/// (workers run outside the timing thread); null_msgs_per_event records
/// the synchronization tax — horizon publications per executed event.
/// Like BM_ParallelSweep, the multi-partition speedup is recorded, not
/// gated: CI runs on one core, where the barrier tax is all cost.
void BM_PartitionedWorld(benchmark::State& state) {
  const auto partitions = static_cast<unsigned>(state.range(0));
  constexpr std::size_t kEdges = 8;
  constexpr std::size_t kHosts = 128;
  constexpr std::size_t kFlowsPerHost = 32;
  constexpr int kPacketsPerFlow = 4;

  std::uint64_t events = 0;
  std::uint64_t horizon_posts = 0;
  for (auto _ : state) {
    sim::World world(sim::EngineConfig{partitions});
    for (unsigned p = 0; p < world.partitions(); ++p) world.engine(p).reserve(1 << 14);
    net::Network net(world);
    const net::NodeId core = net.add_node("core");
    const net::NodeId sink = net.add_node("sink");
    std::vector<net::NodeId> edges;
    for (std::size_t m = 0; m < kEdges; ++m) {
      edges.push_back(net.add_node("edge" + std::to_string(m)));
    }
    net::LinkConfig host_up;
    host_up.bandwidth_bps = 100e6;
    net::LinkConfig edge_up;
    edge_up.bandwidth_bps = 1e9;
    net::LinkConfig core_up;
    core_up.bandwidth_bps = 30e6;
    std::vector<net::NodeId> hosts;
    for (std::size_t h = 0; h < kHosts; ++h) {
      hosts.push_back(net.add_node("host" + std::to_string(h)));
      net.add_link(hosts[h], edges[h % kEdges], host_up);
    }
    std::vector<net::IntServQueue*> edge_egress;
    for (const net::NodeId e : edges) {
      net::IntServQueue::Config qc;
      qc.best_effort_capacity = 4'096;
      auto q = std::make_unique<net::IntServQueue>(qc);
      edge_egress.push_back(q.get());
      net.add_link(e, core, edge_up, std::move(q));
    }
    net::IntServQueue::Config core_qc;
    core_qc.best_effort_capacity = 4'096;
    auto core_q = std::make_unique<net::IntServQueue>(core_qc);
    net::IntServQueue& core_egress = *core_q;
    net.add_link(core, sink, core_up, std::move(core_q));

    const std::uint64_t n_flows = kHosts * kFlowsPerHost;
    for (std::uint64_t f = 1; f <= n_flows; f += 8) {
      const std::size_t host = static_cast<std::size_t>((f - 1) / kFlowsPerHost);
      edge_egress[host % kEdges]->install_reservation(f, 50e3, 16'000, TimePoint::zero());
      core_egress.install_reservation(f, 50e3, 16'000, TimePoint::zero());
    }
    net.auto_partition();

    std::uint64_t delivered = 0;
    net.set_receiver(sink, [&delivered](net::Packet&&) { ++delivered; });
    for (std::size_t h = 0; h < kHosts; ++h) {
      const TimePoint start =
          TimePoint::zero() +
          microseconds(static_cast<std::int64_t>(1 + (h * 1'000'000) / kHosts));
      const net::NodeId src = hosts[h];
      net.engine_of(src).at(start, [&net, src, sink, h] {
        for (int round = 0; round < kPacketsPerFlow; ++round) {
          for (std::size_t j = 0; j < kFlowsPerHost; ++j) {
            const auto f = static_cast<net::FlowId>(h * kFlowsPerHost + j + 1);
            net::Packet p;
            p.dst = sink;
            p.flow = f;
            p.seq = static_cast<std::uint64_t>(round);
            p.size_bytes = 700;
            p.dscp = (f - 1) % 8 == 0 ? net::dscp::kEf : net::dscp::kBestEffort;
            net.send(src, std::move(p));
          }
        }
      });
    }
    world.run();
    events += world.stats().events;
    horizon_posts += world.stats().horizon_posts;
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["null_msgs_per_event"] =
      events == 0 ? 0.0
                  : static_cast<double>(horizon_posts) / static_cast<double>(events);
  state.counters["partitions"] = partitions;
  state.SetLabel(std::to_string(partitions) + "_partitions");
}
BENCHMARK(BM_PartitionedWorld)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_DiffServQueueOps(benchmark::State& state) {
  net::DiffServQueue q(100'000);
  const TimePoint t0 = TimePoint::zero();
  std::uint8_t dscps[] = {0, 10, 34, 46};
  int i = 0;
  for (auto _ : state) {
    net::Packet p;
    p.dst = 0;
    p.size_bytes = 1000;
    p.dscp = dscps[i++ % 4];
    (void)q.enqueue(std::move(p), t0);
    benchmark::DoNotOptimize(q.dequeue(t0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiffServQueueOps);

void BM_EdgeDetection(benchmark::State& state) {
  const img::GrayImage image = img::make_paper_scene(1).to_gray();
  const auto algorithm = static_cast<img::EdgeAlgorithm>(state.range(0));
  for (auto _ : state) {
    const img::GrayImage out = img::run_edge(algorithm, image);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(image.pixel_count()));
  state.SetLabel(img::to_string(algorithm));
}
BENCHMARK(BM_EdgeDetection)->Arg(0)->Arg(1)->Arg(2);  // Kirsch, Prewitt, Sobel

}  // namespace

int main(int argc, char** argv) {
  return aqm::bench::run_with_json_report(argc, argv, "net");
}

// Table 1: summary of the network reservation experiments. All six
// combinations of {no, partial, full reservation} x {no filtering, QuO
// frame filtering}; reporting % frames delivered under load, average
// latency and jitter (standard deviation), as the paper does.
//
// Paper values for reference (shapes, not absolutes):
//   No adaptation                 0.83%  324 ms   (jitter n/a)
//   Partial reservation           43.9%  742 ms
//   Full reservation              ~100%  190 ms
//   No resv + frame filtering       ?    276 ms
//   Partial resv + filtering      ~100%* 187 ms   (*of the filtered stream)
//   Full resv + filtering         ~100%  171 ms   63.5
//
// The six cases fan out over the shard-parallel experiment runner
// (--jobs N); the table is assembled from results in case order, so the
// output is byte-identical for every worker count.
#include <iostream>

#include "common/reservation_scenario.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace aqm;
  using namespace aqm::bench;

  const auto opts = core::parse_experiment_options(argc, argv);

  banner("Table 1: network reservation experiments (under 43.8 Mbps load)");

  struct Case {
    const char* name;
    ReservationLevel level;
    bool filtering;
  };
  const Case cases[] = {
      {"No Adaptation", ReservationLevel::None, false},
      {"Partial Reservation", ReservationLevel::Partial, false},
      {"Full Reservation", ReservationLevel::Full, false},
      {"No Reservation; Frame Filtering", ReservationLevel::None, true},
      {"Partial Reservation; Frame Filtering", ReservationLevel::Partial, true},
      {"Full Reservation; Frame Filtering", ReservationLevel::Full, true},
  };

  core::Experiment<ReservationScenarioResult> exp;
  for (const auto& c : cases) {
    ReservationScenarioConfig cfg;
    cfg.reservation = c.level;
    cfg.frame_filtering = c.filtering;
    exp.add(c.name, cfg.load_seed,
            [cfg](const core::TrialSpec&) { return run_reservation_scenario(cfg); });
  }
  const auto results = exp.run(opts);

  TextTable table({"configuration", "% frames delivered", "avg latency (ms)",
                   "std dev (ms)", "I-frames recv/sent"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    table.row({cases[i].name, fmt(r.delivered_percent_under_load(), 1),
               fmt(r.latency_under_load_ms.mean(), 1),
               fmt(r.latency_under_load_ms.stddev(), 1),
               std::to_string(r.i_frames_received) + "/" +
                   std::to_string(r.i_frames_transmitted)});
  }
  std::cout << "\n";
  table.print();
  std::cout
      << "\nNotes: '%' counts frames transmitted while the load was active that\n"
      << "arrived end-to-end (filtering cases transmit a reduced stream, as in\n"
      << "the paper). Shape vs paper: no adaptation ~1%, partial ~40-60%, full\n"
      << "~100%; reservations cut latency and jitter; filtering keeps the\n"
      << "filtered stream inside its reservation so I-frames survive.\n";
  return 0;
}

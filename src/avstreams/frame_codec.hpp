// Wire codec for video frames pushed over the A/V streaming service.
// The CDR body carries the frame metadata followed by padding up to the
// frame's real size, so the network sees authentic MPEG frame sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "media/frame.hpp"

namespace aqm::av {

inline constexpr const char* kPushFrameOp = "push_frame";

[[nodiscard]] std::vector<std::uint8_t> encode_frame(const media::VideoFrame& f);

/// Throws orb::MarshalError on malformed bodies.
[[nodiscard]] media::VideoFrame decode_frame(const std::vector<std::uint8_t>& body);

}  // namespace aqm::av

#include "avstreams/stream.hpp"

#include <cassert>

#include "avstreams/frame_codec.hpp"
#include "orb/servant.hpp"

namespace aqm::av {

VideoSinkEndpoint::VideoSinkEndpoint(orb::Poa& poa, const std::string& object_id,
                                     Duration decode_cost, FrameHandler on_frame) {
  assert(on_frame);
  auto servant = std::make_shared<orb::FunctionServant>(
      decode_cost, [this, handler = std::move(on_frame)](orb::ServerRequest& req) {
        if (req.operation != kPushFrameOp) return;
        const media::VideoFrame frame = decode_frame(req.body);
        ++received_;
        handler(frame);
      });
  ref_ = poa.activate_object(object_id, std::move(servant));
}

StreamBinding::StreamBinding(orb::OrbEndpoint& orb, orb::ObjectRef sink, net::FlowId flow)
    : stub_(orb, std::move(sink)) {
  assert(flow != net::kNoFlow && "streams need a flow id for QoS and statistics");
  stub_.set_flow(flow);
}

void StreamBinding::push(const media::VideoFrame& frame) {
  ++pushed_;
  stub_.oneway(kPushFrameOp, encode_frame(frame));
}

void StreamBinding::reserve(net::RsvpAgent& agent, const net::FlowSpec& spec,
                            net::RsvpAgent::ReserveCallback cb) {
  assert(agent.node() != stub_.ref().node && "use the sender-side agent");
  agent.reserve(flow(), stub_.ref().node, spec, std::move(cb));
}

void StreamBinding::release(net::RsvpAgent& agent) { agent.release(flow()); }

}  // namespace aqm::av

// Reusable rate-adaptation qosket for video streams [Qosket:02].
//
// Packages the QuO behavior the paper's experiments rely on: watch the
// measured delivery ratio of a stream, and when the network cannot sustain
// the current frame rate, filter "down to 10 fps or 2 fps, whichever the
// network would support"; probe back up after sustained clean delivery
// with exponential backoff.
//
// The qosket owns a contract over a delivery-ratio system condition; the
// embedding application feeds ratio measurements (typically from a
// quo::StatusCollector condition) and wires the FrameFilter in front of
// its stream binding.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "media/frame_filter.hpp"
#include "quo/contract.hpp"
#include "quo/syscond.hpp"
#include "sim/engine.hpp"

namespace aqm::av {

struct RateAdaptationConfig {
  /// Delivery ratio below which the current level counts as failing.
  double loss_threshold = 0.9;
  /// Consecutive loss-y reports (after the first downgrade) before
  /// stepping down another level.
  int persistent_loss_reports = 4;
  /// Reports to ignore right after a level change (in-flight frames from
  /// the previous level would otherwise read as loss).
  int grace_reports = 4;
  /// Clean reports required before the first upgrade probe; doubles after
  /// every probe (exponential backoff), capped below.
  int initial_upgrade_hold_reports = 16;
  int max_upgrade_hold_reports = 128;
  /// Network rate granted to the stream (0 = none) and the rate the
  /// reduced (I+P) stream needs: decides whether a downgrade from full
  /// rate lands on 10 fps or all the way at 2 fps.
  double reserved_rate_bps = 0.0;
  double ip_stream_rate_bps = 0.0;
};

class RateAdaptationQosket {
 public:
  RateAdaptationQosket(sim::Engine& engine, media::FrameFilter& filter,
                       RateAdaptationConfig config);
  RateAdaptationQosket(const RateAdaptationQosket&) = delete;
  RateAdaptationQosket& operator=(const RateAdaptationQosket&) = delete;

  /// Feed one delivery-ratio measurement (delivered / transmitted over the
  /// report window).
  void report(double ratio);

  /// Convenience: subscribe to a condition carrying the ratio (e.g. a
  /// StatusCollector condition). Every change feeds report().
  void observe(quo::SysCond& ratio_condition);

  /// Update the granted reservation (e.g. after an RSVP modify) — affects
  /// future downgrade targets.
  void set_reserved_rate(double bps) { config_.reserved_rate_bps = bps; }

  [[nodiscard]] media::FilterLevel level() const { return filter_.level(); }
  [[nodiscard]] const quo::Contract& contract() const { return contract_; }
  [[nodiscard]] const std::vector<std::pair<TimePoint, std::string>>& history() const {
    return history_;
  }

 private:
  void set_level(media::FilterLevel level);
  void downgrade();
  void upgrade();
  [[nodiscard]] media::FilterLevel reduced_level() const {
    return config_.reserved_rate_bps >= config_.ip_stream_rate_bps
               ? media::FilterLevel::IpOnly
               : media::FilterLevel::IOnly;
  }

  sim::Engine& engine_;
  media::FrameFilter& filter_;
  RateAdaptationConfig config_;
  quo::ValueSysCond ratio_;
  quo::Contract contract_;
  std::vector<std::pair<TimePoint, std::string>> history_;
  int clean_reports_ = 0;
  int reports_in_loss_ = 0;
  int grace_reports_ = 0;
  int upgrade_hold_reports_;
};

}  // namespace aqm::av

#include "avstreams/frame_codec.hpp"

#include "orb/cdr.hpp"

namespace aqm::av {
namespace {
constexpr std::size_t kFrameHeaderBytes = 24;  // index + type + size + timestamp
}

std::vector<std::uint8_t> encode_frame(const media::VideoFrame& f) {
  orb::CdrWriter w;
  w.write_u64(f.index);
  w.write_u8(static_cast<std::uint8_t>(f.type));
  w.write_u32(f.size_bytes);
  w.write_i64(f.capture_time.ns());
  // Pad to the frame's actual size so transport/queueing behavior matches
  // real MPEG data volumes.
  if (f.size_bytes > w.size()) {
    const std::size_t pad = f.size_bytes - w.size();
    std::vector<std::uint8_t> zeros(pad, 0);
    w.write_raw(zeros);
  }
  return w.take();
}

media::VideoFrame decode_frame(const std::vector<std::uint8_t>& body) {
  if (body.size() < kFrameHeaderBytes) throw orb::MarshalError("frame body too short");
  orb::CdrReader r(body);
  media::VideoFrame f;
  f.index = r.read_u64();
  const std::uint8_t type = r.read_u8();
  if (type > static_cast<std::uint8_t>(media::FrameType::B)) {
    throw orb::MarshalError("bad frame type");
  }
  f.type = static_cast<media::FrameType>(type);
  f.size_bytes = r.read_u32();
  f.capture_time = TimePoint{r.read_i64()};
  return f;
}

}  // namespace aqm::av

// CORBA A/V Streaming Service analog [Avstreams:98, Mungee:00i].
//
// The service's role in the paper: "we utilize the CORBA A/V Streaming
// Service to set up the (video stream) paths between the communicating
// CORBA objects. Integrated with that is the ability to attach an RSVP
// reservation to the underlying network connection as it is set up."
//
//  * VideoSinkEndpoint — receiver side: activates a frame-sink servant in a
//    POA and hands arriving frames to application code.
//  * StreamBinding — sender side: a bound flow to a sink endpoint, pushing
//    frames as oneway GIOP requests; exposes RSVP reservation attach/detach
//    and per-stream priority, mirroring the explicit-binding + QoS model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "media/frame.hpp"
#include "net/rsvp.hpp"
#include "orb/orb.hpp"

namespace aqm::av {

class VideoSinkEndpoint {
 public:
  using FrameHandler = std::function<void(const media::VideoFrame&)>;

  /// Activates the sink servant as `<object_id>` in `poa`. `decode_cost`
  /// is the per-frame CPU cost of receiving/decoding on the sink host.
  VideoSinkEndpoint(orb::Poa& poa, const std::string& object_id, Duration decode_cost,
                    FrameHandler on_frame);

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }
  [[nodiscard]] std::uint64_t frames_received() const { return received_; }

 private:
  orb::ObjectRef ref_;
  std::uint64_t received_ = 0;
};

class StreamBinding {
 public:
  /// Binds a sender-side stream to a sink endpoint over flow `flow`.
  StreamBinding(orb::OrbEndpoint& orb, orb::ObjectRef sink, net::FlowId flow);

  /// Pushes one frame down the stream (oneway).
  void push(const media::VideoFrame& frame);

  /// Attaches an RSVP reservation to the stream's network flow via the
  /// sender-side agent. The callback reports the signaling outcome.
  void reserve(net::RsvpAgent& agent, const net::FlowSpec& spec,
               net::RsvpAgent::ReserveCallback cb);
  void release(net::RsvpAgent& agent);

  /// Per-stream CORBA priority (affects thread priorities and DSCP).
  void set_priority(orb::CorbaPriority priority) { stub_.set_priority(priority); }

  [[nodiscard]] net::FlowId flow() const { return stub_.flow(); }
  [[nodiscard]] orb::ObjectStub& stub() { return stub_; }
  [[nodiscard]] std::uint64_t frames_pushed() const { return pushed_; }

 private:
  orb::ObjectStub stub_;
  std::uint64_t pushed_ = 0;
};

}  // namespace aqm::av

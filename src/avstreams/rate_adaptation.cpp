#include "avstreams/rate_adaptation.hpp"

#include <algorithm>

namespace aqm::av {

RateAdaptationQosket::RateAdaptationQosket(sim::Engine& engine,
                                           media::FrameFilter& filter,
                                           RateAdaptationConfig config)
    : engine_(engine),
      filter_(filter),
      config_(config),
      ratio_("delivery-ratio", 1.0),
      contract_(engine, "video-rate-adaptation"),
      upgrade_hold_reports_(config.initial_upgrade_hold_reports) {
  contract_
      .add_region("ok", [this] { return ratio_.value() >= config_.loss_threshold; })
      .add_region("loss", nullptr)
      .observe(ratio_);
  contract_.on_enter("loss", [this] { downgrade(); });
  contract_.eval();
}

void RateAdaptationQosket::observe(quo::SysCond& ratio_condition) {
  ratio_condition.subscribe([this, &ratio_condition] { report(ratio_condition.value()); });
}

void RateAdaptationQosket::report(double ratio) {
  if (grace_reports_ > 0) {
    --grace_reports_;
    return;
  }
  const std::string before = contract_.current_region();
  ratio_.set(ratio);  // may transition the contract and trigger a downgrade
  if (contract_.current_region() == "loss") {
    if (before == "loss" && ++reports_in_loss_ >= config_.persistent_loss_reports) {
      downgrade();
      reports_in_loss_ = 0;
    }
    clean_reports_ = 0;
    return;
  }
  reports_in_loss_ = 0;
  ++clean_reports_;
  if (filter_.level() != media::FilterLevel::Full &&
      clean_reports_ >= upgrade_hold_reports_) {
    upgrade();
    clean_reports_ = 0;
  }
}

void RateAdaptationQosket::set_level(media::FilterLevel level) {
  if (filter_.level() == level) return;
  filter_.set_level(level);
  history_.emplace_back(engine_.now(), media::to_string(level));
  grace_reports_ = config_.grace_reports;
}

void RateAdaptationQosket::downgrade() {
  switch (filter_.level()) {
    case media::FilterLevel::Full:
      set_level(reduced_level());
      break;
    case media::FilterLevel::IpOnly:
      set_level(media::FilterLevel::IOnly);
      break;
    case media::FilterLevel::IOnly:
      break;  // floor
  }
}

void RateAdaptationQosket::upgrade() {
  switch (filter_.level()) {
    case media::FilterLevel::IOnly:
      set_level(reduced_level() == media::FilterLevel::IOnly ? media::FilterLevel::Full
                                                             : media::FilterLevel::IpOnly);
      break;
    case media::FilterLevel::IpOnly:
      set_level(media::FilterLevel::Full);
      break;
    case media::FilterLevel::Full:
      break;
  }
  upgrade_hold_reports_ =
      std::min(upgrade_hold_reports_ * 2, config_.max_upgrade_hold_reports);
}

}  // namespace aqm::av

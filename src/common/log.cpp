#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace aqm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;  // empty -> default stderr sink
  return sink;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

namespace {
thread_local std::string t_tag;
}  // namespace

void Log::set_thread_tag(std::string tag) { t_tag = std::move(tag); }

const std::string& Log::thread_tag() { return t_tag; }

void Log::write(LogLevel level, std::string_view msg) {
  if (!enabled(level)) return;
  std::string tagged;
  if (!t_tag.empty()) {
    tagged.reserve(t_tag.size() + msg.size() + 3);
    tagged.append("[").append(t_tag).append("] ").append(msg);
    msg = tagged;
  }
  // Snapshot the sink, then call it unlocked: a sink may itself log or
  // swap the sink without deadlocking, and slow sinks don't serialize
  // unrelated threads beyond the copy.
  Sink sink;
  {
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    sink = sink_storage();
  }
  if (sink) {
    sink(level, msg);
  } else {
    // stderr writes stay serialized so interleaved shard lines don't shear.
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::cerr << "[" << level_name(level) << "] " << msg << "\n";
  }
}

}  // namespace aqm

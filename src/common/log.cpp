#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace aqm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mutex;
Log::Sink& sink_storage() {
  static Log::Sink sink;  // empty -> default stderr sink
  return sink;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::write(LogLevel level, std::string_view msg) {
  if (!enabled(level)) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (sink_storage()) {
    sink_storage()(level, msg);
  } else {
    std::cerr << "[" << level_name(level) << "] " << msg << "\n";
  }
}

}  // namespace aqm

// Streaming statistics, histograms and time series used by experiment
// harnesses and QuO system condition objects.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace aqm {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void clear();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  /// Mean of the observed samples; 0 when empty.
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples are clamped
/// into the first/last bucket so totals always match the sample count.
/// Two bucket layouts share the same interface: the default linear layout
/// (equal-width buckets) and an HDR-style geometric layout from
/// `log_scaled` (equal-ratio buckets, so relative quantile error is
/// bounded across several orders of magnitude — the right shape for
/// latency p50/p99 tracking).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  /// Geometric bucket edges lo * (hi/lo)^(i/buckets); requires 0 < lo < hi.
  /// Samples <= lo clamp into the first bucket.
  [[nodiscard]] static Histogram log_scaled(double lo, double hi, std::size_t buckets);

  void add(double x);
  /// Bucket index `x` lands in — exposed so hot paths that feed several
  /// same-layout histograms classify once (one log for the log layout)
  /// and add_at() the shared index into each. Inline: telemetry
  /// observation points sit on the engine hot loop.
  [[nodiscard]] std::size_t bucket_index(double x) const {
    std::int64_t idx;
    if (log_scale_) {
      // Samples at or below lo (including non-positive values, which have
      // no logarithm) clamp into the first bucket.
      idx = x <= lo_ ? 0 : static_cast<std::int64_t>(std::log(x / lo_) * inv_log_step_);
    } else {
      const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
      idx = static_cast<std::int64_t>((x - lo_) / w);
    }
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(counts_.size()) - 1);
    return static_cast<std::size_t>(idx);
  }
  /// Increments the bucket at an index computed by bucket_index() on a
  /// histogram with the same layout.
  void add_at(std::size_t idx) {
    ++counts_[idx];
    ++total_;
  }
  void clear();

  [[nodiscard]] std::size_t count() const { return total_; }
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] bool log_scale() const { return log_scale_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// Linear-interpolated quantile in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  /// Merges another histogram with identical layout (bounds, bucket count
  /// and scale; bucket-wise sum). Returns false (and leaves this
  /// unchanged) on a layout mismatch.
  bool merge(const Histogram& other);

  /// Exact inverse of merge for sliding-window maintenance: bucket-wise
  /// subtraction of counts previously merged in. Returns false (and
  /// leaves this unchanged) on a layout mismatch; callers must only
  /// subtract histograms whose counts are still contained in this one.
  bool subtract(const Histogram& other);

 private:
  [[nodiscard]] bool same_layout(const Histogram& other) const;

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::size_t total_ = 0;
  bool log_scale_ = false;
  // Cached for the log layout: step = ln(hi/lo)/buckets and its inverse.
  double log_step_ = 0.0;
  double inv_log_step_ = 0.0;
};

/// A (time, value) series with helpers for per-interval aggregation.
/// Used to emit the per-second figure data the paper plots.
class TimeSeries {
 public:
  struct Point {
    TimePoint t;
    double value;
  };

  void add(TimePoint t, double value) { points_.push_back({t, value}); }
  void clear() { points_.clear(); }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  /// Stats over all points with t in [from, to).
  [[nodiscard]] RunningStats stats_between(TimePoint from, TimePoint to) const;
  /// Stats over the whole series.
  [[nodiscard]] RunningStats stats() const;

  struct Bucket {
    TimePoint start;
    std::size_t count;
    double mean;
    double min;
    double max;
  };
  /// Aggregates points into consecutive intervals of the given width,
  /// starting at t=0. Empty intervals are included with count 0.
  [[nodiscard]] std::vector<Bucket> bucketize(Duration width, TimePoint end) const;

 private:
  std::vector<Point> points_;
};

/// Renders a bucketized series as aligned text rows (one per interval),
/// for benchmark output that mirrors the paper's figures.
std::string format_series_table(const std::vector<TimeSeries::Bucket>& buckets,
                                const std::string& value_label);

}  // namespace aqm

#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <iomanip>

namespace aqm {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::clear() { *this = RunningStats{}; }

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

Histogram Histogram::log_scaled(double lo, double hi, std::size_t buckets) {
  assert(lo > 0.0);
  Histogram h(lo, hi, buckets);
  h.log_scale_ = true;
  h.log_step_ = std::log(hi / lo) / static_cast<double>(buckets);
  h.inv_log_step_ = 1.0 / h.log_step_;
  return h;
}

void Histogram::add(double x) { add_at(bucket_index(x)); }

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::bucket_lo(std::size_t i) const {
  if (log_scale_) {
    if (i == 0) return lo_;
    if (i >= counts_.size()) return hi_;
    return lo_ * std::exp(log_step_ * static_cast<double>(i));
  }
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + w * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    // Empty buckets never satisfy a quantile: q=0 should land in the first
    // occupied bucket, not at the histogram's lower bound.
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
    cum = next;
  }
  return hi_;
}

bool Histogram::same_layout(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size() && log_scale_ == other.log_scale_;
}

bool Histogram::merge(const Histogram& other) {
  if (!same_layout(other)) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  return true;
}

bool Histogram::subtract(const Histogram& other) {
  if (!same_layout(other)) return false;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    assert(counts_[i] >= other.counts_[i]);
    counts_[i] -= other.counts_[i];
  }
  assert(total_ >= other.total_);
  total_ -= other.total_;
  return true;
}

RunningStats TimeSeries::stats_between(TimePoint from, TimePoint to) const {
  RunningStats s;
  for (const auto& p : points_) {
    if (p.t >= from && p.t < to) s.add(p.value);
  }
  return s;
}

RunningStats TimeSeries::stats() const {
  return stats_between(TimePoint::zero(), TimePoint::max());
}

std::vector<TimeSeries::Bucket> TimeSeries::bucketize(Duration width, TimePoint end) const {
  assert(width > Duration::zero());
  std::vector<Bucket> out;
  for (TimePoint start = TimePoint::zero(); start < end; start = start + width) {
    const RunningStats s = stats_between(start, start + width);
    out.push_back({start, s.count(), s.mean(), s.empty() ? 0.0 : s.min(),
                   s.empty() ? 0.0 : s.max()});
  }
  return out;
}

std::string format_series_table(const std::vector<TimeSeries::Bucket>& buckets,
                                const std::string& value_label) {
  std::ostringstream os;
  os << std::setw(10) << "t(s)" << std::setw(10) << "count" << std::setw(14)
     << ("mean " + value_label) << std::setw(14) << "min" << std::setw(14) << "max"
     << "\n";
  os << std::fixed << std::setprecision(3);
  for (const auto& b : buckets) {
    os << std::setw(10) << b.start.seconds() << std::setw(10) << b.count
       << std::setw(14) << b.mean << std::setw(14) << b.min << std::setw(14) << b.max
       << "\n";
  }
  return os.str();
}

}  // namespace aqm

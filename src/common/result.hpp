// A small Result<T, E> for operations whose failure is an expected outcome
// (admission control rejections, reservation denials) rather than a
// programming or protocol error. Protocol errors use exceptions instead
// (see orb/exceptions.hpp).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace aqm {

template <typename T, typename E = std::string>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::in_place_index<0>, std::move(value)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Result err(E error) {
    return Result{std::variant<T, E>{std::in_place_index<1>, std::move(error)}};
  }

  [[nodiscard]] bool ok() const { return v_.index() == 0; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<0>(v_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<0>(v_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<0>(std::move(v_));
  }

  [[nodiscard]] const E& error() const {
    assert(!ok());
    return std::get<1>(v_);
  }

 private:
  explicit Result(std::variant<T, E> v) : v_(std::move(v)) {}
  std::variant<T, E> v_;
};

/// Result specialization-alike for operations with no payload.
template <typename E = std::string>
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  [[nodiscard]] static Status err(E error) {
    Status s;
    s.has_error_ = true;
    s.error_ = std::move(error);
    return s;
  }

  [[nodiscard]] bool ok() const { return !has_error_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const E& error() const {
    assert(has_error_);
    return error_;
  }

 private:
  bool has_error_ = false;
  E error_{};
};

}  // namespace aqm

// Deterministic random number generation.
//
// Experiments must be bit-reproducible across platforms, so we use a small
// self-contained xoshiro256** generator seeded through splitmix64 rather
// than std::mt19937 + std::*_distribution (whose outputs are not pinned by
// the standard for all distributions).
#pragma once

#include <cstdint>

namespace aqm {

/// xoshiro256** PRNG. Deterministic for a given seed on every platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Standard normal via Box-Muller, scaled to (mean, stddev).
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Creates an independent generator derived from this one's stream.
  Rng split();

 private:
  std::uint64_t s_[4];
  // Cached second Box-Muller variate.
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace aqm

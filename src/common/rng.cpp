#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace aqm {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u = next_double();
  while (u <= 0.0) u = next_double();
  const double v = next_double();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * 3.14159265358979323846 * v;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng{next_u64()}; }

}  // namespace aqm

// Minimal leveled logging with a swappable sink.
//
// Simulation components log sparingly at Debug/Trace; experiment harnesses
// usually keep the threshold at Info so that benchmark output stays clean.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace aqm {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Process-wide logging configuration. Intentionally the only mutable
/// global in the library; defaults to Warn on stderr.
///
/// Thread safety: set_sink/write may race freely — write snapshots the sink
/// under a mutex and invokes it outside the lock, so a sink that logs (or
/// installs another sink) cannot deadlock. Parallel experiment shards call
/// set_thread_tag("w<i>") so interleaved lines stay attributable.
class Log {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  static void set_level(LogLevel level);
  [[nodiscard]] static LogLevel level();
  static void set_sink(Sink sink);
  static void write(LogLevel level, std::string_view msg);

  /// Tags every message written by the calling thread with "[tag] ".
  /// Empty clears the tag. Thread-local; typically set once per worker.
  static void set_thread_tag(std::string tag);
  [[nodiscard]] static const std::string& thread_tag();

  [[nodiscard]] static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace aqm

#define AQM_LOG(level_)                         \
  if (!::aqm::Log::enabled(level_)) {           \
  } else                                        \
    ::aqm::detail::LogLine(level_)

#define AQM_TRACE() AQM_LOG(::aqm::LogLevel::Trace)
#define AQM_DEBUG() AQM_LOG(::aqm::LogLevel::Debug)
#define AQM_INFO() AQM_LOG(::aqm::LogLevel::Info)
#define AQM_WARN() AQM_LOG(::aqm::LogLevel::Warn)
#define AQM_ERROR() AQM_LOG(::aqm::LogLevel::Error)

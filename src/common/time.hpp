// Simulation time types.
//
// All simulation code measures time as integer nanoseconds to keep event
// ordering exact and runs bit-reproducible. Duration and TimePoint are
// distinct strong types so that "a time" and "a span of time" cannot be
// mixed up in interfaces.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <ostream>

namespace aqm {

/// A span of simulated time in nanoseconds. May be negative in arithmetic
/// intermediates, though most APIs expect non-negative values.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration d) { ns_ += d.ns_; return *this; }
  constexpr Duration& operator-=(Duration d) { ns_ -= d.ns_; return *this; }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

[[nodiscard]] constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns() + b.ns()}; }
[[nodiscard]] constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns() - b.ns()}; }
[[nodiscard]] constexpr Duration operator*(Duration a, std::int64_t k) { return Duration{a.ns() * k}; }
[[nodiscard]] constexpr Duration operator*(std::int64_t k, Duration a) { return a * k; }
[[nodiscard]] constexpr Duration operator/(Duration a, std::int64_t k) { return Duration{a.ns() / k}; }
[[nodiscard]] constexpr Duration operator-(Duration a) { return Duration{-a.ns()}; }

[[nodiscard]] constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
[[nodiscard]] constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
[[nodiscard]] constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
[[nodiscard]] constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }

/// Converts a floating-point number of seconds, rounding toward zero.
[[nodiscard]] constexpr Duration seconds_f(double v) {
  return Duration{static_cast<std::int64_t>(v * 1e9)};
}

/// An absolute instant on the simulation clock (ns since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{0}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t ns_ = 0;
};

[[nodiscard]] constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.ns() + d.ns()}; }
[[nodiscard]] constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
[[nodiscard]] constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.ns() - d.ns()}; }
[[nodiscard]] constexpr Duration operator-(TimePoint a, TimePoint b) { return Duration{a.ns() - b.ns()}; }

inline std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ns() << "ns"; }
inline std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << "t+" << t.ns() << "ns"; }

}  // namespace aqm

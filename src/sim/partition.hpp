// Conservative-lookahead partitioned execution of ONE simulated world.
//
// sim::World shards a single scenario across worker threads: each
// partition owns a private sim::Engine and the protocol advances all of
// them in lock-step "safe windows" (the synchronous variant of
// null-message / conservative DES synchronization, a la YAWNS):
//
//   window_end = min over partitions of (earliest pending event time)
//              + lookahead
//
// where `lookahead` is the minimum propagation delay over all
// cross-partition links (the only edge type allowed to cross a partition
// boundary — see DESIGN.md §14). Every partition may safely fire all
// events with time strictly below window_end, because any message a peer
// could still emit is committed at a time >= its own earliest event and
// arrives >= lookahead later, i.e. at or after window_end.
//
// Protocol per window (two std::barrier phases):
//   1. inject:  drain inbound channels, sort arrivals by
//               (time, source partition, channel sequence), schedule them
//               into the local engine; publish the local horizon
//               (earliest pending event time).
//   2. barrier A (completion step computes window_end / termination).
//   3. execute: Engine::run_before(window_end); handlers that cross a
//               boundary call World::post(), which appends to an SPSC
//               channel.
//   4. barrier B (posts become visible; window counter advances).
//
// Channels are single-producer/single-consumer by construction: channel
// (q -> p) is written only by partition q's thread during execute and
// drained only by partition p's thread during inject, and the two phases
// are separated by barriers on every path — so plain vectors suffice and
// the whole protocol is data-race-free without a single atomic on the
// message path.
//
// Determinism: arrivals are injected in (time, src, seq) order, which is a
// pure function of simulation state — never of thread scheduling — so a
// partitioned run is bit-reproducible for any host machine or core count.
// `partitions == 1` bypasses the protocol entirely and runs the plain
// single-threaded engine, byte-identical to a world-less run; it is the
// differential oracle for the partitioned path (same pattern as
// legacy_scan / legacy_flow_map).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/time.hpp"
#include "sim/engine.hpp"

namespace aqm::sim {

/// Engine-level execution configuration. `partitions == 1` (the default)
/// is today's verbatim single-threaded path; N > 1 runs the conservative
/// safe-window protocol across N worker threads.
struct EngineConfig {
  unsigned partitions = 1;
};

/// Aggregate protocol counters for one World::run().
struct WorldStats {
  std::uint64_t windows = 0;        ///< safe-window barrier rounds
  std::uint64_t horizon_posts = 0;  ///< null-message analogs (windows x partitions)
  std::uint64_t messages = 0;       ///< cross-partition payload messages
  std::uint64_t events = 0;         ///< events executed across all engines
};

class World {
 public:
  explicit World(EngineConfig config = {});
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  [[nodiscard]] unsigned partitions() const { return static_cast<unsigned>(engines_.size()); }
  [[nodiscard]] Engine& engine(unsigned p) {
    assert(p < engines_.size());
    return *engines_[p];
  }

  /// Partition index of the calling thread: the owning partition inside a
  /// worker, 0 on any other thread (setup / teardown code runs against
  /// partition 0's engine and clock).
  [[nodiscard]] static unsigned current_partition() { return current_partition_; }

  /// The calling thread's engine — partition 0's outside the run loop.
  [[nodiscard]] Engine& current_engine() { return engine(current_partition()); }

  /// Sets the conservative lookahead: the minimum propagation delay over
  /// all cross-partition links. Must be > 0 when partitions() > 1 (a
  /// zero-lookahead cut would never open a safe window). The boundary
  /// wiring layer (net::Network::finalize_partitions) computes and
  /// installs this; tests may set it directly.
  void set_lookahead(Duration d) { lookahead_ = d; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Registers a hook run single-threaded (on the calling thread) at the
  /// top of run(), before any worker starts. Used to force lazily-built
  /// shared state (routing tables, boundary wiring) ahead of parallel
  /// execution.
  void add_start_hook(std::function<void()> hook) { start_hooks_.push_back(std::move(hook)); }

  /// Posts a handler to fire at absolute time `t` on partition `to`.
  /// Must be called from the owning thread of some other partition during
  /// execute (i.e. from inside a handler), with `t` at least lookahead()
  /// past the posting partition's current event time — the boundary-link
  /// layer guarantees this by construction. The handler is injected,
  /// deterministically ordered, before the destination fires any event at
  /// or beyond the current window end.
  template <typename F>
  void post(unsigned to, TimePoint t, F&& fn) {
    const unsigned from = current_partition();
    assert(to < engines_.size() && to != from && "post() is for cross-partition handoff");
    Channel& ch = channels_[from * engines_.size() + to];
    ch.msgs.push_back(Msg{t.ns(), ch.next_seq++, InlineHandler(std::forward<F>(fn))});
  }

  /// Runs the world to completion. partitions() == 1 executes the plain
  /// engine on the calling thread; otherwise spawns one thread per
  /// partition and drives the safe-window protocol. Rethrows the first
  /// handler exception after all workers join.
  void run();

  [[nodiscard]] const WorldStats& stats() const { return stats_; }

 private:
  struct Msg {
    std::int64_t time_ns;
    std::uint64_t seq;  // per-channel FIFO sequence
    InlineHandler fn;
  };
  // SPSC by phase separation (see file comment): producer-side push in
  // execute, consumer-side drain in inject, never concurrently.
  struct Channel {
    std::vector<Msg> msgs;
    std::uint64_t next_seq = 0;
  };

  struct Sync;  // the two protocol barriers (defined in partition.cpp)

  void worker(unsigned p);
  void inject(unsigned p);

  static thread_local unsigned current_partition_;

  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Channel> channels_;  // [from * P + to]
  std::vector<std::function<void()>> start_hooks_;
  Duration lookahead_ = Duration::max();
  WorldStats stats_;

  // Safe-window shared state. Written only inside barrier completion
  // steps or by the single owning worker between barriers; the barriers
  // publish every write, so none of these need to be atomic.
  Sync* sync_ = nullptr;               // live only inside run()
  std::vector<std::int64_t> next_ns_;  // per-partition horizon, kInfNs = drained
  std::vector<std::uint64_t> messages_in_;  // per-partition, folded into stats_ post-join
  std::int64_t window_end_ns_ = 0;
  bool done_ = false;
  // Exception capture is the one place two workers may write concurrently
  // (two handlers throwing in the same window), hence the only atomic in
  // the protocol. The mutex guards error_ on that same cold path.
  std::atomic<bool> abort_{false};
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace aqm::sim

#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace aqm::sim {

EventId Engine::at(TimePoint t, Handler fn) {
  assert(t >= now_ && "cannot schedule events in the past");
  assert(fn && "event handler must be callable");
  const std::uint64_t seq = next_seq_++;
  queue_.push_back(Event{t, seq, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  if (!id.valid()) return false;
  if (id.seq >= next_seq_) return false;
  // Lazy cancellation: remember the sequence number and skip it on pop.
  return cancelled_.insert(id.seq).second;
}

bool Engine::pop_next(Event& out) {
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    Event ev = std::move(queue_.back());
    queue_.pop_back();
    if (cancelled_.erase(ev.seq) > 0) continue;
    out = std::move(ev);
    return true;
  }
  return false;
}

bool Engine::peek_next_time(TimePoint& t) {
  while (!queue_.empty() && cancelled_.count(queue_.front().seq) > 0) {
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    cancelled_.erase(queue_.back().seq);
    queue_.pop_back();
  }
  if (queue_.empty()) return false;
  t = queue_.front().time;
  return true;
}

bool Engine::step() {
  Event ev;
  if (!pop_next(ev)) return false;
  assert(ev.time >= now_);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(TimePoint t) {
  TimePoint next;
  while (peek_next_time(next) && next <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

PeriodicTimer::PeriodicTimer(Engine& engine, Duration period, std::function<void()> on_tick)
    : engine_(engine), period_(period), on_tick_(std::move(on_tick)) {
  assert(period_ > Duration::zero());
  assert(on_tick_);
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) engine_.cancel(pending_);
  pending_ = EventId{};
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = engine_.after(delay, [this] {
    pending_ = EventId{};
    if (!running_) return;
    on_tick_();
    // on_tick_ may have stopped the timer (or restarted it).
    if (running_ && !pending_.valid()) arm(period_);
  });
}

}  // namespace aqm::sim

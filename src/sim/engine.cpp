#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <utility>

namespace aqm::sim {

namespace {

/// Sort a bucket by Engine-style (time, order) descending. Buckets hold
/// ~kBucketTarget nearly-random entries; at that size insertion sort beats
/// std::sort's introsort dispatch by a wide margin (it is the single
/// hottest piece of refill). Oversized buckets (many events at one
/// timestamp land in one bucket) fall back to std::sort to avoid the
/// quadratic worst case. Keys are unique, so both produce the same order.
template <typename T, typename Less>
void small_sort(std::vector<T>& v, Less less) {
  const std::size_t n = v.size();
  if (n > 32) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  for (std::size_t i = 1; i < n; ++i) {
    T tmp = v[i];
    std::size_t j = i;
    for (; j > 0 && less(tmp, v[j - 1]); --j) v[j] = v[j - 1];
    v[j] = tmp;
  }
}

}  // namespace

void Engine::reserve(std::size_t n_slots) {
  slots_.reserve(n_slots);
  far_.reserve(n_slots);
  // A drained bucket swaps its storage into near_, so near_ only ever holds
  // one bucket's worth of entries (plus same-rung inserts).
  near_.reserve(std::min<std::size_t>(n_slots, 64 * kBucketTarget));
  buckets_.reserve(std::clamp<std::size_t>(n_slots / kBucketTarget, 1, kMaxBuckets));
}

bool Engine::refill() {
  assert(near_.empty());
  for (;;) {
    while (cur_ < nb_) {
      std::vector<QEntry>& b = buckets_[cur_];
      ++cur_;
      if (b.empty()) continue;
      // Swap rather than copy: the drained near_ vector's storage cycles
      // back into the bucket, so steady state allocates nothing.
      near_.swap(b);
      small_sort(near_, later);
      near_end_ = rung_start_ + (static_cast<std::int64_t>(cur_) << shift_);
      return true;
    }
    nb_ = 0;
    if (far_.empty()) return false;
    build_rung();
  }
}

void Engine::build_rung() {
  // All far_ times are >= near_end_ (and >= the previous rung_end_), so the
  // new rung's range cannot overlap anything already ordered.
  assert(far_min_ >= near_end_);
  rung_start_ = far_min_;
  const auto span = static_cast<std::uint64_t>(far_max_ - far_min_) + 1;
  const std::uint64_t target =
      std::clamp<std::uint64_t>(far_.size() / kBucketTarget, 1, kMaxBuckets);
  // Bucket width rounded up to a power of two so routing is a shift.
  const std::uint64_t width = (span + target - 1) / target;
  shift_ = width <= 1 ? 0 : static_cast<unsigned>(std::bit_width(width - 1));
  nb_ = static_cast<std::size_t>(((span - 1) >> shift_) + 1);
  cur_ = 0;
  if (buckets_.size() < nb_) buckets_.resize(nb_);
  constexpr std::int64_t kMaxTime = std::numeric_limits<std::int64_t>::max();
  const std::uint64_t extent = static_cast<std::uint64_t>(nb_) << shift_;
  rung_end_ = extent > static_cast<std::uint64_t>(kMaxTime - rung_start_)
                  ? kMaxTime
                  : rung_start_ + static_cast<std::int64_t>(extent);
  for (const QEntry& e : far_) {
    buckets_[static_cast<std::uint64_t>(e.time_ns - rung_start_) >> shift_].push_back(e);
  }
  far_.clear();
  far_min_ = std::numeric_limits<std::int64_t>::max();
  far_max_ = std::numeric_limits<std::int64_t>::min();
}

void Engine::tidy_slab() {
  assert(live_ == 0);
  if (!slab_scrambled_) return;
  slab_scrambled_ = false;
  const std::size_t n = slots_.size();
  if (n == 0) {
    free_head_ = kNoFreeSlot;
    return;
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    slots_[i].next_free = static_cast<std::uint32_t>(i + 1);
  }
  slots_[n - 1].next_free = kNoFreeSlot;
  free_head_ = 0;
}

bool Engine::peek_next_time(TimePoint& t) {
  // Discard tombstoned heads so the reported time is a live event's.
  for (;;) {
    if (near_.empty() && !refill()) return false;
    const QEntry top = near_.back();
    if (!slots_[top.slot].fn) {
      near_.pop_back();
      free_slot(top.slot);
      continue;
    }
    t = TimePoint{top.time_ns};
    return true;
  }
}

void Engine::run_until(TimePoint t) {
  TimePoint next;
  while (peek_next_time(next) && next <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

void Engine::run_before(TimePoint t) {
  TimePoint next;
  while (peek_next_time(next) && next < t) {
    step();
  }
}

PeriodicTimer::PeriodicTimer(Engine& engine, Duration period, std::function<void()> on_tick)
    : engine_(engine), period_(period), on_tick_(std::move(on_tick)) {
  assert(period_ > Duration::zero());
  assert(on_tick_);
}

void PeriodicTimer::start() { start_after(period_); }

void PeriodicTimer::start_after(Duration initial_delay) {
  stop();
  running_ = true;
  arm(initial_delay);
}

void PeriodicTimer::stop() {
  if (pending_.valid()) engine_.cancel(pending_);
  pending_ = EventId{};
  running_ = false;
}

void PeriodicTimer::arm(Duration delay) {
  pending_ = engine_.after(delay, [this] {
    pending_ = EventId{};
    if (!running_) return;
    on_tick_();
    // on_tick_ may have stopped the timer (or restarted it).
    if (running_ && !pending_.valid()) arm(period_);
  });
}

}  // namespace aqm::sim

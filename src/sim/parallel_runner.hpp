// Shard-parallel execution of independent simulation trials.
//
// The engine is single-threaded and bit-deterministic, which makes whole
// trials embarrassingly parallel: each worker thread constructs its own
// Engine / Network / testbed inside the task, runs it to completion, and
// writes its result into a slot owned by that task index. Nothing is
// shared between trials (the only process-wide mutable state, the log
// sink, is mutex-guarded), so the aggregate output is byte-identical for
// any worker count — including jobs == 1, which runs inline on the
// calling thread with no threads created at all.
//
// Work distribution is a single atomic ticket counter: workers pull the
// next unstarted index, so long trials do not stall short ones behind a
// static partition. The first exception thrown by any task is captured
// and rethrown on the calling thread after all workers join.
#pragma once

#include <cstddef>
#include <functional>

namespace aqm::sim {

class ParallelRunner {
 public:
  /// `jobs` as requested; 0 means "one per hardware thread".
  explicit ParallelRunner(unsigned jobs = 1) : jobs_(resolve_jobs(jobs)) {}

  /// Maps 0 to std::thread::hardware_concurrency() (min 1).
  [[nodiscard]] static unsigned resolve_jobs(unsigned requested);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Runs task(0) .. task(n-1), each exactly once. With jobs() == 1 (or
  /// n <= 1) the tasks run inline in index order; otherwise min(jobs, n)
  /// worker threads pull indices from a shared atomic ticket. Blocks until
  /// every task finished; rethrows the first task exception afterwards.
  void run(std::size_t n, const std::function<void(std::size_t)>& task) const;

 private:
  unsigned jobs_;
};

}  // namespace aqm::sim

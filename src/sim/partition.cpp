#include "sim/partition.hpp"

#include <algorithm>
#include <barrier>
#include <limits>
#include <thread>
#include <utility>

namespace aqm::sim {

namespace {
constexpr std::int64_t kInfNs = std::numeric_limits<std::int64_t>::max();
}  // namespace

thread_local unsigned World::current_partition_ = 0;

/// The two protocol barriers. Barrier A closes the inject phase: its
/// completion step (run by exactly one thread while the rest are blocked,
/// so the shared fields need no atomics) folds the published horizons into
/// the next window end and decides termination. Barrier B closes the
/// execute phase, publishing every cross-partition post made during it.
struct World::Sync {
  explicit Sync(World& w, std::ptrdiff_t n)
      : a(n, CloseInject{&w}), b(n, CloseExecute{&w}) {}

  struct CloseInject {
    World* w;
    void operator()() noexcept {
      std::int64_t min_ns = kInfNs;
      for (const std::int64_t t : w->next_ns_) min_ns = std::min(min_ns, t);
      w->done_ = min_ns == kInfNs || w->abort_.load(std::memory_order_relaxed);
      const std::int64_t la = w->lookahead_.ns();
      w->window_end_ns_ = la > kInfNs - min_ns ? kInfNs : min_ns + la;
      w->stats_.horizon_posts += w->engines_.size();
    }
  };
  struct CloseExecute {
    World* w;
    void operator()() noexcept { ++w->stats_.windows; }
  };

  std::barrier<CloseInject> a;
  std::barrier<CloseExecute> b;
};

World::World(EngineConfig config) {
  const unsigned p = config.partitions == 0 ? 1 : config.partitions;
  engines_.reserve(p);
  for (unsigned i = 0; i < p; ++i) engines_.push_back(std::make_unique<Engine>());
  channels_.resize(static_cast<std::size_t>(p) * p);
  next_ns_.assign(p, kInfNs);
}

World::~World() = default;

void World::inject(unsigned p) {
  const unsigned n = partitions();
  // Gather this window's arrivals from every inbound channel, then order
  // them by (time, source partition, channel sequence) — a schedule that
  // depends only on simulation state, never on thread timing.
  struct Arrival {
    std::int64_t time_ns;
    unsigned src;
    std::uint64_t seq;
    InlineHandler fn;
  };
  std::vector<Arrival> arrivals;
  for (unsigned q = 0; q < n; ++q) {
    if (q == p) continue;
    Channel& ch = channels_[q * n + p];
    for (Msg& m : ch.msgs) {
      arrivals.push_back(Arrival{m.time_ns, q, m.seq, std::move(m.fn)});
    }
    ch.msgs.clear();
  }
  std::sort(arrivals.begin(), arrivals.end(), [](const Arrival& x, const Arrival& y) {
    if (x.time_ns != y.time_ns) return x.time_ns < y.time_ns;
    if (x.src != y.src) return x.src < y.src;
    return x.seq < y.seq;
  });
  Engine& eng = *engines_[p];
  messages_in_[p] += arrivals.size();
  for (Arrival& a : arrivals) {
    eng.at(TimePoint{a.time_ns}, std::move(a.fn));
  }
}

void World::worker(unsigned p) {
  current_partition_ = p;
  Engine& eng = *engines_[p];
  for (;;) {
    inject(p);
    TimePoint t;
    next_ns_[p] = eng.next_event_time(t) ? t.ns() : kInfNs;
    sync_->a.arrive_and_wait();
    if (done_) break;
    try {
      eng.run_before(TimePoint{window_end_ns_});
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
      abort_.store(true, std::memory_order_relaxed);
    }
    sync_->b.arrive_and_wait();
  }
  current_partition_ = 0;
}

void World::run() {
  for (const auto& hook : start_hooks_) hook();
  const unsigned n = partitions();
  if (n == 1) {
    // The oracle path: no protocol, no threads — today's engine loop.
    Engine& eng = *engines_[0];
    const std::uint64_t before = eng.executed();
    eng.run();
    stats_.events += eng.executed() - before;
    return;
  }
  assert(lookahead_ > Duration::zero() &&
         "partitioned execution needs a positive cross-partition lookahead");
  std::vector<std::uint64_t> executed_before(n);
  for (unsigned p = 0; p < n; ++p) executed_before[p] = engines_[p]->executed();
  done_ = false;
  abort_.store(false, std::memory_order_relaxed);
  messages_in_.assign(n, 0);
  Sync sync(*this, static_cast<std::ptrdiff_t>(n));
  sync_ = &sync;
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (unsigned p = 0; p < n; ++p) {
    threads.emplace_back([this, p] { worker(p); });
  }
  for (std::thread& th : threads) th.join();
  sync_ = nullptr;
  for (unsigned p = 0; p < n; ++p) {
    stats_.events += engines_[p]->executed() - executed_before[p];
    stats_.messages += messages_in_[p];
  }
  if (error_) {
    std::exception_ptr e = std::exchange(error_, nullptr);
    std::rethrow_exception(e);
  }
}

}  // namespace aqm::sim

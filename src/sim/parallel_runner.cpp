#include "sim/parallel_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"

namespace aqm::sim {

unsigned ParallelRunner::resolve_jobs(unsigned requested) {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelRunner::run(std::size_t n,
                         const std::function<void(std::size_t)>& task) const {
  if (n == 0) return;
  if (jobs_ <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> ticket{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  // Once any task fails, remaining workers stop pulling tickets: results
  // would be discarded by the rethrow anyway, so finish fast.
  std::atomic<bool> abort{false};

  auto worker = [&](std::size_t w) {
    // Tag this worker's log lines so interleaved shard output stays
    // attributable when trials log concurrently.
    Log::set_thread_tag("w" + std::to_string(w));
    for (;;) {
      if (abort.load(std::memory_order_relaxed)) return;
      const std::size_t i = ticket.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        task(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const std::size_t workers = std::min<std::size_t>(jobs_, n);
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace aqm::sim

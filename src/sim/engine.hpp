// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order they
// were scheduled. All simulated subsystems (CPU schedulers, links, queues,
// RSVP agents, ORB transports, QuO contracts) are driven by this engine.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"

namespace aqm::sim {

/// Identifies a scheduled event so it can be cancelled before it fires.
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class Engine {
 public:
  using Handler = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules a handler at an absolute time (must be >= now()).
  EventId at(TimePoint t, Handler fn);

  /// Schedules a handler after a relative delay (must be >= 0).
  EventId after(Duration d, Handler fn) { return at(now_ + d, std::move(fn)); }

  /// Cancels a pending event. Cancelling an already-fired or invalid id is a
  /// no-op. Returns true if the event was pending and is now cancelled.
  bool cancel(EventId id);

  /// Runs the earliest pending event. Returns false if none remain.
  bool step();

  /// Runs until no events remain.
  void run();

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(TimePoint t);

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }

  /// Total events executed so far (for tests / sanity reporting).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops the next non-cancelled event into `out`; false if none.
  bool pop_next(Event& out);
  // Time of the next non-cancelled event (discarding cancelled heads).
  bool peek_next_time(TimePoint& t);

  TimePoint now_ = TimePoint::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::vector<Event> queue_;  // binary heap via std::push_heap/pop_heap
  std::unordered_set<std::uint64_t> cancelled_;
};

/// Repeatedly invokes a callback with a fixed period until stopped.
/// The first tick fires one period after start() (or at a given phase).
class PeriodicTimer {
 public:
  PeriodicTimer(Engine& engine, Duration period, std::function<void()> on_tick);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  /// Starts with the first tick at now() + initial_delay.
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

 private:
  void arm(Duration delay);

  Engine& engine_;
  Duration period_;
  std::function<void()> on_tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace aqm::sim

// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events fire in (time, insertion-sequence)
// order, so two events scheduled for the same instant run in the order they
// were scheduled. All simulated subsystems (CPU schedulers, links, queues,
// RSVP agents, ORB transports, QuO contracts) are driven by this engine.
//
// The hot path is allocation-free in steady state:
//  * Handlers are stored in an InlineHandler — a small-buffer-optimized
//    callable with 48 bytes of inline storage, so capture-light lambdas
//    (the overwhelming majority of simulation events) never touch the heap.
//  * Handlers live in a slab of recycled slots addressed by index; the
//    event queue holds 24-byte POD entries, so queue maintenance moves
//    plain words instead of type-erased callables.
//  * Cancellation is a generation/tombstone scheme: EventId encodes
//    (slot, generation), cancel() marks the slot and destroys the handler
//    eagerly, and pop discards tombstones with a flag test — no hashing
//    anywhere on the schedule/fire/cancel paths.
//
// The queue is a calendar ("ladder") queue rather than a binary heap:
// events are appended unsorted to a far list, periodically distributed into
// time buckets ("a rung"), and each bucket is sorted by (time, seq) only
// when the clock reaches it. Every event is touched a constant number of
// times (append, distribute, one small sort, pop), so schedule→fire is
// amortized O(1) versus the heap's O(log n) pointer-chasing sifts — while
// firing order stays bit-identical to a (time, seq) priority queue.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "obs/trace.hpp"

namespace aqm::obs {
class TelemetryHub;
}

namespace aqm::sim {

/// Small-buffer-optimized move-only callable for simulation event handlers.
/// Callables up to kInlineSize bytes (that are nothrow-move-constructible)
/// are stored inline; larger ones fall back to a single heap allocation.
class InlineHandler {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineHandler() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineHandler> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineHandler(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    construct<F>(std::forward<F>(f));
  }

  /// Replaces the stored callable, constructing the new one in place (no
  /// intermediate InlineHandler moves). Accepts another InlineHandler too.
  template <typename F>
  void assign(F&& f) {
    if constexpr (std::is_same_v<std::decay_t<F>, InlineHandler>) {
      *this = std::forward<F>(f);
    } else {
      reset();
      construct<F>(std::forward<F>(f));
    }
  }

  InlineHandler(InlineHandler&& other) noexcept { steal(other); }
  InlineHandler& operator=(InlineHandler&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;
  ~InlineHandler() { reset(); }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty InlineHandler");
    ops_->invoke(buf_);
  }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  /// True when the stored callable lives in the inline buffer (no heap).
  [[nodiscard]] bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  // relocate/destroy are null for trivially-relocatable/-destructible
  // callables: moves become a fixed-size memcpy and destruction a no-op,
  // so the common capture-of-refs-and-ints lambda costs no indirect calls
  // outside the actual invocation.
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* src, void* dst) noexcept;  // move-construct into dst, destroy src
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename F, typename D = std::decay_t<F>>
  void construct(F&& f) {
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* src, void* dst) noexcept {
              D* s = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*s));
              s->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); },
      true,
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      nullptr,  // pointer payload: relocation is the default memcpy
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<D**>(p)); },
      false,
  };

  void steal(InlineHandler& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(other.buf_, buf_);
      } else {
        std::memcpy(buf_, other.buf_, kInlineSize);
      }
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineSize];
};

/// Identifies a scheduled event so it can be cancelled before it fires.
/// Encodes (slot, generation); stale ids — already fired or already
/// cancelled — are recognised and rejected by Engine::cancel().
struct EventId {
  std::uint64_t seq = 0;
  [[nodiscard]] bool valid() const { return seq != 0; }
};

class Engine {
 public:
  using Handler = InlineHandler;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulation time.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Attaches (or detaches, with nullptr) a trace recorder. The engine does
  /// not own it; the caller keeps it alive for the run. Subsystems reach
  /// their recorder through the engine so a trial needs exactly one wiring
  /// point.
  void set_tracer(obs::TraceRecorder* tracer) {
#if AQM_OBS_ENABLED
    tracer_ = tracer;
    engine_track_ = tracer != nullptr ? tracer->track("engine") : 0;
#else
    (void)tracer;
#endif
  }
  [[nodiscard]] obs::TraceRecorder* tracer() const {
#if AQM_OBS_ENABLED
    return tracer_;
#else
    return nullptr;
#endif
  }
  /// The attached recorder iff it wants `cat`, else nullptr. This is THE
  /// instrumentation guard: one pointer test when tracing is off.
  [[nodiscard]] obs::TraceRecorder* tracer_for(obs::TraceCategory cat) const {
#if AQM_OBS_ENABLED
    return tracer_ != nullptr && tracer_->wants(cat) ? tracer_ : nullptr;
#else
    (void)cat;
    return nullptr;
#endif
  }

  /// Attaches (or detaches, with nullptr) the streaming telemetry hub,
  /// exactly like the tracer: the engine does not own it, subsystems reach
  /// it through the engine, and every observation point costs one pointer
  /// test when telemetry is detached.
  void set_telemetry(obs::TelemetryHub* hub) {
#if AQM_OBS_ENABLED
    telemetry_ = hub;
#else
    (void)hub;
#endif
  }
  [[nodiscard]] obs::TelemetryHub* telemetry() const {
#if AQM_OBS_ENABLED
    return telemetry_;
#else
    return nullptr;
#endif
  }

  /// Schedules a handler at an absolute time (must be >= now()). The
  /// callable is constructed directly in its slab slot (no intermediate
  /// handler moves).
  template <typename F>
  EventId at(TimePoint t, F&& fn) {
    assert(t >= now_ && "cannot schedule events in the past");
    const std::uint32_t slot = alloc_slot();
    Slot& s = slots_[slot];
    s.fn.assign(std::forward<F>(fn));
    assert(s.fn && "event handler must be callable");
    q_push(QEntry{t.ns(), next_order_++, slot});
    ++live_;
    return EventId{(static_cast<std::uint64_t>(s.gen) << 32) | (slot + 1)};
  }

  /// Schedules a handler after a relative delay (must be >= 0). A delay
  /// that would carry the target past TimePoint::max() saturates to the
  /// end of time instead of wrapping negative (a wrapped target would trip
  /// the cannot-schedule-in-the-past assert in debug builds and corrupt
  /// calendar routing in release builds).
  template <typename F>
  EventId after(Duration d, F&& fn) {
    assert(d >= Duration::zero() && "after() takes a non-negative delay");
    const std::int64_t headroom = TimePoint::max().ns() - now_.ns();
    const TimePoint t = d.ns() > headroom ? TimePoint::max() : now_ + d;
    return at(t, std::forward<F>(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled
  /// or invalid id is a no-op returning false. Returns true if the event was
  /// pending and is now cancelled. The handler is destroyed eagerly; the
  /// queue entry is tombstoned and discarded when it reaches the front.
  bool cancel(EventId id) {
    if (!id.valid()) return false;
    const auto slot = static_cast<std::uint32_t>(id.seq & 0xffffffffu) - 1;
    const auto gen = static_cast<std::uint32_t>(id.seq >> 32);
    if (slot >= slots_.size()) return false;
    Slot& s = slots_[slot];
    if (s.gen != gen || !s.fn) return false;
    // Tombstone: an empty handler in an occupied slot. The heap entry is
    // discarded with a flag test when it reaches the front.
    s.fn.reset();
    --live_;
    return true;
  }

  /// Runs the earliest pending event. Returns false if none remain.
  bool step() {
    for (;;) {
      if (near_.empty() && !refill()) {
        tidy_slab();
        return false;
      }
      const QEntry top = near_.back();
      near_.pop_back();
      if (!slots_[top.slot].fn) {  // tombstoned by cancel()
        free_slot(top.slot);
        continue;
      }
      assert(top.time_ns >= now_.ns());
      now_ = TimePoint{top.time_ns};
      ++executed_;
      --live_;
#if AQM_OBS_ENABLED
      if (obs::TraceRecorder* tr = tracer_for(obs::TraceCategory::Engine)) {
        tr->instant(obs::TraceCategory::Engine, "dispatch", engine_track_, now_, 0,
                    {{"pending", static_cast<double>(live_)}});
      }
#endif
      // Move the handler out before invoking: the handler may schedule new
      // events, growing the slab and invalidating references into it. This
      // also lets the slot be recycled by the handler itself.
      Handler fn = std::move(slots_[top.slot].fn);
      free_slot(top.slot);
#if defined(__GNUC__) || defined(__clang__)
      // The next event's slot is a data-dependent load; start it early.
      if (!near_.empty()) __builtin_prefetch(&slots_[near_.back().slot]);
#endif
      fn();
      return true;
    }
  }

  /// Runs until no events remain.
  void run() {
    while (step()) {
    }
  }

  /// Runs all events with time <= t, then advances the clock to t.
  void run_until(TimePoint t);

  /// Runs all events with time strictly < t. Unlike run_until, the clock
  /// is NOT advanced to t afterwards: it stays at the last fired event so
  /// that events arriving from outside (cross-partition handoff) may still
  /// be scheduled anywhere in [now, t). This is the safe-window primitive
  /// of the partitioned executor (sim::World).
  void run_before(TimePoint t);

  /// Time of the earliest pending (non-cancelled) event. Returns false and
  /// leaves `t` untouched when the queue is empty. Used by the partitioned
  /// executor to compute the next global safe window.
  [[nodiscard]] bool next_event_time(TimePoint& t) { return peek_next_time(t); }

  /// Pre-sizes the handler slab and calendar storage for roughly `n_slots`
  /// concurrently pending events. Capacity-only: scheduling behaviour and
  /// firing order are unchanged; the ramp-up of a large scenario (or the
  /// first iterations of a benchmark) just stops paying vector growth.
  void reserve(std::size_t n_slots);

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events executed so far (for tests / sanity reporting).
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  // One cache line: the handler plus bookkeeping. A slot referenced from
  // the queue is live iff fn is non-empty (empty means tombstoned).
  struct Slot {
    Handler fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;
  };
  // POD queue entry: ordered by (time, insertion order) for determinism.
  struct QEntry {
    std::int64_t time_ns;
    std::uint64_t order;
    std::uint32_t slot;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;
  // Target events per calendar bucket: big enough to amortize refill,
  // small enough that the bucket sort stays in std::sort's branch-cheap
  // insertion regime (measured best on the hold-model benchmark).
  static constexpr std::size_t kBucketTarget = 8;
  static constexpr std::size_t kMaxBuckets = 1u << 14;

  /// Descending (time, order): near_ is kept in this order so that
  /// pop_back() always yields the earliest pending entry.
  static bool later(const QEntry& a, const QEntry& b) {
    if (a.time_ns != b.time_ns) return a.time_ns > b.time_ns;
    return a.order > b.order;
  }

  std::uint32_t alloc_slot() {
    if (free_head_ != kNoFreeSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slots_[s].next_free;
      return s;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void free_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn.reset();
    ++s.gen;  // invalidate any outstanding EventId for this slot
    s.next_free = free_head_;
    free_head_ = slot;
    slab_scrambled_ = true;
  }

  // Relinks the free list in slot order once the engine fully drains.
  // Events pop in time order, so after a drain the free list is a random
  // walk over the slab; the next batch of schedules would then write
  // handlers to scattered cache lines. Cold: runs at most once per drain.
  void tidy_slab();

  // Calendar-queue routing. Pending entries are partitioned into three
  // structures whose time ranges are disjoint and ascending:
  //   near_    [-inf, near_end_)          sorted, drained by pop_back
  //   rung     [near_end_, rung_end_)     buckets of width 2^shift_
  //   far_     [rung_end_, +inf)          unsorted append
  // so an entry is routed with two compares and at most one shift — no
  // O(log n) sift. Entries inside one bucket are only sorted when the
  // clock reaches that bucket (refill), keeping every event O(1) amortized.
  void q_push(const QEntry& e) {
    if (e.time_ns < near_end_) {
      near_insert(e);
    } else if (nb_ != 0 && e.time_ns < rung_end_) {
      const auto idx = static_cast<std::size_t>(
          static_cast<std::uint64_t>(e.time_ns - rung_start_) >> shift_);
      assert(idx >= cur_ && "bucket already drained");
      buckets_[idx].push_back(e);
    } else {
      far_.push_back(e);
      if (e.time_ns < far_min_) far_min_ = e.time_ns;
      if (e.time_ns > far_max_) far_max_ = e.time_ns;
    }
  }

  /// Sorted insert into the (small, L1-resident) drain vector.
  void near_insert(const QEntry& e) {
    near_.insert(std::lower_bound(near_.begin(), near_.end(), e, later), e);
  }

  // Advances to the next non-empty bucket, sorts it into near_ (or rebuilds
  // the rung from far_). Returns false when no events remain. Cold-ish:
  // runs once per ~kBucketTarget events.
  bool refill();
  void build_rung();

  // Time of the next non-cancelled event (discarding cancelled heads).
  bool peek_next_time(TimePoint& t);

  TimePoint now_ = TimePoint::zero();
#if AQM_OBS_ENABLED
  obs::TraceRecorder* tracer_ = nullptr;
  obs::TelemetryHub* telemetry_ = nullptr;
  std::uint16_t engine_track_ = 0;
#endif
  std::uint64_t next_order_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  bool slab_scrambled_ = false;

  // --- calendar queue state ---
  std::vector<QEntry> near_;  // descending (time, order); back() is earliest
  std::int64_t near_end_ = std::numeric_limits<std::int64_t>::min();
  std::vector<std::vector<QEntry>> buckets_;  // storage reused across rungs
  std::size_t nb_ = 0;   // buckets in the active rung (0 = no rung)
  std::size_t cur_ = 0;  // next bucket to drain
  unsigned shift_ = 0;   // bucket width is 1 << shift_ nanoseconds
  std::int64_t rung_start_ = 0;
  std::int64_t rung_end_ = 0;
  std::vector<QEntry> far_;  // unsorted; min/max tracked for rung building
  std::int64_t far_min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t far_max_ = std::numeric_limits<std::int64_t>::min();
};

/// Repeatedly invokes a callback with a fixed period until stopped.
/// The first tick fires one period after start() (or at a given phase).
class PeriodicTimer {
 public:
  PeriodicTimer(Engine& engine, Duration period, std::function<void()> on_tick);
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start();
  /// Starts with the first tick at now() + initial_delay.
  void start_after(Duration initial_delay);
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] Duration period() const { return period_; }
  void set_period(Duration period) { period_ = period; }

 private:
  void arm(Duration delay);

  Engine& engine_;
  Duration period_;
  std::function<void()> on_tick_;
  EventId pending_{};
  bool running_ = false;
};

}  // namespace aqm::sim

// GIOP transport adapter: moves whole GIOP messages between nodes over the
// packet network, fragmenting to the MTU on send and reassembling on
// receive. Packet loss under congestion means messages can arrive
// incomplete; reassembly state expires after a timeout and the message
// counts as lost (video semantics: no retransmission, matching the paper's
// streaming experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "orb/buffer_pool.hpp"  // MessageBuffer
#include "sim/engine.hpp"

namespace aqm::orb {

/// What each network packet carries.
struct GiopFragment {
  std::uint64_t message_id = 0;
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  MessageBuffer data;  // the full message; [offset, offset+length) is this fragment
};

struct TransportConfig {
  std::uint32_t mtu = net::kDefaultMtu;
  std::uint32_t packet_overhead = 40;  // IP + TCP-ish framing per fragment
  Duration reassembly_timeout = seconds(5);
  /// Send fragments ECN-capable: RED routers then mark instead of drop
  /// under incipient congestion, and ce_marks() exposes the feedback.
  bool ecn_capable = false;
};

class GiopTransport {
 public:
  /// (source node, complete message bytes, network-level receive time info)
  using MessageHandler = std::function<void(net::NodeId src, MessageBuffer msg)>;

  GiopTransport(net::Network& net, net::NodeId node, TransportConfig config = {});
  GiopTransport(const GiopTransport&) = delete;
  GiopTransport& operator=(const GiopTransport&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }

  void set_message_handler(MessageHandler handler) { handler_ = std::move(handler); }

  /// Sends a message to `dst`, stamped with the given DSCP and flow id.
  /// A nonzero `trace` rides on every fragment so per-hop network events
  /// chain to the originating request.
  void send_message(net::NodeId dst, MessageBuffer msg, net::Dscp dscp,
                    net::FlowId flow = net::kNoFlow, std::uint64_t trace = 0);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  /// Messages whose reassembly expired with fragments missing.
  [[nodiscard]] std::uint64_t messages_expired() const { return expired_; }
  /// Congestion-experienced marks seen on received packets of a flow
  /// (cumulative). The feedback signal for ECN-aware QuO adaptation.
  [[nodiscard]] std::uint64_t ce_marks(net::FlowId flow) const;

 private:
  struct Reassembly {
    std::uint32_t expected = 0;
    std::uint32_t arrived = 0;
    std::vector<bool> seen;
    MessageBuffer data;
    sim::EventId expiry{};
    std::uint64_t trace = 0;
  };

  void on_packet(net::Packet&& p);
  void expire(net::NodeId src, std::uint64_t message_id);
  /// Engine recorder iff ORB tracing is on; binds the "giop:<node>" lane on
  /// first use.
  [[nodiscard]] obs::TraceRecorder* tracer();

  net::Network& net_;
  net::NodeId node_;
  TransportConfig config_;
  MessageHandler handler_;
  std::uint64_t next_message_id_ = 1;
  std::map<net::FlowId, std::uint64_t> flow_seq_;
  std::map<net::FlowId, std::uint64_t> ce_marks_;
  std::map<std::pair<net::NodeId, std::uint64_t>, Reassembly> reassembly_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t expired_ = 0;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
};

}  // namespace aqm::orb

// GIOP transport adapter: moves whole GIOP messages between nodes over the
// packet network, fragmenting to the MTU on send and reassembling on
// receive. Packet loss under congestion means messages can arrive
// incomplete; reassembly state expires after a timeout and the message
// counts as lost (video semantics: no retransmission, matching the paper's
// streaming experiments).
//
// Batching session layer (DESIGN.md §11): with coalescing enabled, small
// messages to the same (destination, DSCP, flow) accumulate in a staging
// buffer and ship as one wire write — one fragmentation pass, one
// packet_overhead share — framed under a "GBAT" header and unpacked on the
// receive side into zero-copy MessageViews over the batch buffer. Flushes
// are driven by byte/count thresholds or an engine-timer deadline, so the
// batched world stays exactly as deterministic as the unbatched one. The
// unbatched path (batching disabled, the default) is the verbatim legacy
// code and serves as the differential oracle.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/time.hpp"
#include "net/flow_table.hpp"
#include "net/network.hpp"
#include "obs/trace.hpp"
#include "orb/buffer_pool.hpp"  // MessageBuffer
#include "orb/flat_index.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {

/// What each network packet carries.
struct GiopFragment {
  std::uint64_t message_id = 0;
  std::uint32_t index = 0;
  std::uint32_t count = 1;
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  MessageBuffer data;  // the full message; [offset, offset+length) is this fragment
};

/// Coalescing flush policy (DESIGN.md §11). A staged batch ships when it
/// reaches `max_bytes` or `max_messages`, or when `flush_delay` elapses
/// after its first message was staged — whichever comes first.
struct BatchPolicy {
  bool enabled = false;
  std::uint32_t max_bytes = 16 * 1024;
  std::uint32_t max_messages = 64;
  Duration flush_delay = microseconds(500);
};

struct TransportConfig {
  std::uint32_t mtu = net::kDefaultMtu;
  std::uint32_t packet_overhead = 40;  // IP + TCP-ish framing per fragment
  Duration reassembly_timeout = seconds(5);
  /// Send fragments ECN-capable: RED routers then mark instead of drop
  /// under incipient congestion, and ce_marks() exposes the feedback.
  bool ecn_capable = false;
  /// GIOP message coalescing. Disabled by default: the unbatched path is
  /// the differential oracle and the experiment drivers' wire behavior.
  BatchPolicy batching{};
};

/// A borrowed window into a delivered message. For unbatched traffic the
/// view spans the whole MessageBuffer; for batched traffic it is a slice of
/// the shared batch buffer — the zero-copy demux handoff. The view keeps
/// the underlying buffer alive; copying the view copies only the
/// shared_ptr, never the bytes.
class MessageView {
 public:
  MessageView() = default;
  /* implicit */ MessageView(MessageBuffer whole)
      : owner_(std::move(whole)),
        data_(owner_ ? owner_->data() : nullptr),
        size_(owner_ ? owner_->size() : 0) {}
  MessageView(MessageBuffer owner, const std::uint8_t* data, std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return {data_, size_}; }
  /// The buffer keeping this view alive (the whole batch for a slice).
  [[nodiscard]] const MessageBuffer& owner() const { return owner_; }

 private:
  friend class GiopTransport;
  /// Repoints the view at another slice of the same owner. Only the
  /// transport's batch-unpack loop uses this: one owner reference per
  /// batch, rebound per entry, so demux adds no refcount traffic.
  void rebind(const std::uint8_t* data, std::size_t size) {
    data_ = data;
    size_ = size;
  }

  MessageBuffer owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class GiopTransport {
 public:
  /// (source node, complete message bytes — possibly a view into a batch).
  /// The view is borrowed for the duration of the callback; a handler that
  /// retains the bytes past its return must copy the view (cheap: one
  /// shared_ptr, never the payload).
  using MessageHandler = std::function<void(net::NodeId src, const MessageView& msg)>;

  GiopTransport(net::Network& net, net::NodeId node, TransportConfig config = {});
  GiopTransport(const GiopTransport&) = delete;
  GiopTransport& operator=(const GiopTransport&) = delete;

  [[nodiscard]] net::NodeId node() const { return node_; }

  void set_message_handler(MessageHandler handler) { handler_ = std::move(handler); }

  /// Sends a message to `dst`, stamped with the given DSCP and flow id.
  /// A nonzero `trace` rides on every fragment so per-hop network events
  /// chain to the originating request. With coalescing enabled for the
  /// flow, the message may be staged instead of shipped immediately;
  /// `flush_override` (from the interceptor pipeline / QoS policy) pulls
  /// the staging deadline earlier than the configured flush_delay.
  void send_message(net::NodeId dst, MessageBuffer msg, net::Dscp dscp,
                    net::FlowId flow = net::kNoFlow, std::uint64_t trace = 0,
                    std::optional<Duration> flush_override = {});

  /// Flushes the staging buffer of one (dst, dscp, flow) key, if any.
  void flush(net::NodeId dst, net::Dscp dscp, net::FlowId flow);
  /// Flushes every active staging buffer, in sorted (dst, dscp, flow)
  /// order — the pipelining submit/flush boundary.
  void flush_all();

  /// Per-flow coalescing override (QoSSession plumbs EndToEndQosPolicy's
  /// oneway_batching here). A flow-level policy wins over config batching,
  /// so a session can batch one flow while the transport default stays off.
  void set_flow_batching(net::FlowId flow, BatchPolicy policy);
  void clear_flow_batching(net::FlowId flow);
  [[nodiscard]] const BatchPolicy* flow_batching(net::FlowId flow) const;

  /// Logical messages passed to send_message (batched or not).
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  /// Logical messages handed to the handler (each batch entry counts).
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  /// Wire-level messages whose reassembly expired with fragments missing
  /// (a lost batch counts once, however many messages it carried).
  [[nodiscard]] std::uint64_t messages_expired() const { return expired_; }
  /// Congestion-experienced marks seen on received packets of a flow
  /// (cumulative). The feedback signal for ECN-aware QuO adaptation.
  [[nodiscard]] std::uint64_t ce_marks(net::FlowId flow) const;

  // --- batching counters ------------------------------------------------------
  [[nodiscard]] std::uint64_t batches_sent() const { return batches_sent_; }
  [[nodiscard]] std::uint64_t batched_messages() const { return batched_messages_; }
  [[nodiscard]] std::uint64_t batches_delivered() const { return batches_delivered_; }

 private:
  struct Reassembly {
    std::uint32_t expected = 0;
    std::uint32_t arrived = 0;
    std::vector<std::uint64_t> seen;  // bitmap; capacity survives slot recycling
    MessageBuffer data;
    sim::EventId expiry{};
    std::uint64_t trace = 0;
    net::NodeId src = net::kInvalidNode;
    std::uint64_t message_id = 0;
  };

  /// One staging buffer per (dst, dscp, flow) key. Slots are created on
  /// first use and deactivated (never erased) on flush, so the key set
  /// stays allocation-stable.
  struct Staging {
    std::shared_ptr<std::vector<std::uint8_t>> buf;  // pooled; null while inactive
    std::uint32_t count = 0;
    sim::EventId flush_event{};
    TimePoint flush_at{};
    std::uint64_t trace = 0;  // the first staged message's trace labels the batch
    net::NodeId dst = net::kInvalidNode;
    net::Dscp dscp = 0;
    net::FlowId flow = net::kNoFlow;
    bool active = false;
  };

  /// The pre-batching wire path, verbatim: fragment to MTU and send. Both
  /// the oracle (batching off) and flushed batches go through here.
  void transmit(net::NodeId dst, MessageBuffer msg, net::Dscp dscp, net::FlowId flow,
                std::uint64_t trace);
  void on_packet(net::Packet&& p);
  /// Hands a complete wire message up: unpacks "GBAT" batches into one
  /// view per entry, passes everything else through as a whole-buffer view.
  void deliver(net::NodeId src, MessageBuffer msg);
  void expire(net::NodeId src, std::uint64_t message_id);

  [[nodiscard]] const BatchPolicy& policy_for(net::FlowId flow) const;
  [[nodiscard]] std::uint32_t staging_slot(net::NodeId dst, net::Dscp dscp,
                                           net::FlowId flow);
  void flush_slot(std::uint32_t slot);
  void deadline_flush(std::uint32_t slot);

  std::uint32_t acquire_reassembly_slot();
  void release_reassembly_slot(std::uint32_t slot);

  [[nodiscard]] static std::uint64_t reassembly_hi(net::NodeId src) {
    return static_cast<std::uint32_t>(src);
  }
  [[nodiscard]] static std::uint64_t staging_hi(net::NodeId dst, net::Dscp dscp) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 8) | dscp;
  }

  /// Engine recorder iff ORB tracing is on; binds the "giop:<node>" lane on
  /// first use.
  [[nodiscard]] obs::TraceRecorder* tracer();

  net::Network& net_;
  net::NodeId node_;
  TransportConfig config_;
  MessageHandler handler_;
  std::uint64_t next_message_id_ = 1;
  net::FlowMap<std::uint64_t> flow_seq_;
  net::FlowMap<std::uint64_t> ce_marks_;

  // Reassembly: flat (src, message_id)-keyed index over a recycled slot
  // arena — the steady-state receive path touches no allocator.
  Key128Map reassembly_index_;
  std::vector<Reassembly> reassembly_slots_;
  std::vector<std::uint32_t> reassembly_free_;

  // Coalescing: flat (dst, dscp, flow)-keyed index over persistent slots;
  // staging buffers are recycled through the batch buffer pool.
  Key128Map staging_index_;
  std::vector<Staging> staging_;
  CdrBufferPool batch_pool_;
  net::FlowMap<BatchPolicy> flow_batching_;
  std::vector<std::uint32_t> flush_scratch_;  // flush_all ordering, reused
  // One-entry MRU cache over staging_index_ (staging slots are persistent,
  // so a cached index never dangles).
  net::NodeId last_dst_ = net::kInvalidNode;
  net::Dscp last_dscp_ = 0;
  net::FlowId last_flow_ = net::kNoFlow;
  std::uint32_t last_slot_ = Key128Map::kNoSlot;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t batches_sent_ = 0;
  std::uint64_t batched_messages_ = 0;
  std::uint64_t batches_delivered_ = 0;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
};

}  // namespace aqm::orb

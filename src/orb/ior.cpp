#include "orb/ior.hpp"

#include <array>

#include "orb/cdr.hpp"

namespace aqm::orb {
namespace {

constexpr char kPrefix[] = "IOR:";
constexpr std::uint32_t kProfileMagic = 0x41514D52;  // "AQMR"
constexpr std::uint8_t kVersion = 1;

constexpr std::array<char, 16> kHex = {'0', '1', '2', '3', '4', '5', '6', '7',
                                       '8', '9', 'a', 'b', 'c', 'd', 'e', 'f'};

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string object_to_string(const ObjectRef& ref) {
  if (!ref.valid()) throw BadParam("cannot stringify an invalid object reference");
  CdrWriter w;
  w.write_u32(kProfileMagic);
  w.write_u8(kVersion);
  w.write_i32(ref.node);
  w.write_string(ref.object_key);
  w.write_u8(static_cast<std::uint8_t>(ref.priority_model));
  w.write_i32(ref.server_priority);
  w.write_bool(ref.protocol.dscp.has_value());
  w.write_u8(ref.protocol.dscp.value_or(0));

  std::string out(kPrefix);
  out.reserve(out.size() + w.size() * 2);
  for (const std::uint8_t b : w.buffer()) {
    out.push_back(kHex[static_cast<std::size_t>(b >> 4)]);
    out.push_back(kHex[static_cast<std::size_t>(b & 0x0F)]);
  }
  return out;
}

ObjectRef string_to_object(const std::string& ior) {
  const std::string_view prefix(kPrefix);
  if (ior.size() < prefix.size() || ior.compare(0, prefix.size(), prefix) != 0) {
    throw MarshalError("not an IOR string");
  }
  const std::string_view hex(ior.data() + prefix.size(), ior.size() - prefix.size());
  if (hex.size() % 2 != 0) throw MarshalError("odd IOR hex length");
  std::vector<std::uint8_t> bytes;
  bytes.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw MarshalError("bad IOR hex digit");
    bytes.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }

  CdrReader r(bytes);
  if (r.read_u32() != kProfileMagic) throw MarshalError("bad IOR profile magic");
  if (r.read_u8() != kVersion) throw MarshalError("unsupported IOR profile version");
  ObjectRef ref;
  ref.node = r.read_i32();
  ref.object_key = r.read_string();
  const std::uint8_t model = r.read_u8();
  if (model > static_cast<std::uint8_t>(PriorityModel::ServerDeclared)) {
    throw MarshalError("bad priority model in IOR");
  }
  ref.priority_model = static_cast<PriorityModel>(model);
  ref.server_priority = r.read_i32();
  const bool has_dscp = r.read_bool();
  const std::uint8_t dscp = r.read_u8();
  if (has_dscp) ref.protocol.dscp = dscp;
  if (!ref.valid()) throw MarshalError("IOR decodes to an invalid reference");
  return ref;
}

}  // namespace aqm::orb

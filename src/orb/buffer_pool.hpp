// Reusable encode buffers for the CDR/GIOP send path.
//
// Every ORB invocation used to build its wire message in a fresh
// std::vector (growing from empty) and wrap it in a fresh shared_ptr. The
// pool keeps a small set of buffers alive: acquire() hands out a cleared
// buffer whose capacity survives from earlier messages, freeze() converts
// it into the immutable MessageBuffer the transport layer shares between
// fragments, and when the last fragment releases its reference the buffer
// automatically becomes reusable (use_count drops back to one — no
// explicit release call, so early-dropped or expired messages recycle too).
// A rolling size hint pre-reserves acquire()d buffers to the largest
// recently seen message, so steady-state encoding never reallocates.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace aqm::orb {

/// Bytes of a whole GIOP message, shared between its fragments.
/// (Defined here so the pool and the transport agree on the type.)
using MessageBuffer = std::shared_ptr<const std::vector<std::uint8_t>>;

class CdrBufferPool {
 public:
  explicit CdrBufferPool(std::size_t max_buffers = 64) : max_buffers_(max_buffers) {}
  CdrBufferPool(const CdrBufferPool&) = delete;
  CdrBufferPool& operator=(const CdrBufferPool&) = delete;

  /// Returns an empty buffer with capacity >= size_hint(). Reuses a pooled
  /// buffer when one is free; falls back to a fresh (untracked) buffer when
  /// all `max_buffers` are still referenced by in-flight messages.
  [[nodiscard]] std::shared_ptr<std::vector<std::uint8_t>> acquire();

  /// Converts an acquired buffer into the immutable shared form handed to
  /// the transport. No copy: the same control block, const-qualified.
  [[nodiscard]] static MessageBuffer freeze(std::shared_ptr<std::vector<std::uint8_t>> buf) {
    return MessageBuffer{std::move(buf)};
  }

  /// Feeds the rolling size hint (call with each encoded message's size).
  void note_message_size(std::size_t bytes) {
    // Decay toward the recent maximum so one huge message does not pin
    // every pooled buffer at its size forever.
    hint_ = bytes > hint_ ? bytes : hint_ - (hint_ - bytes) / 8;
  }

  [[nodiscard]] std::size_t size_hint() const { return hint_; }
  [[nodiscard]] std::size_t pooled_buffers() const { return slots_.size(); }

  // Introspection for tests and reports.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

 private:
  std::vector<std::shared_ptr<std::vector<std::uint8_t>>> slots_;
  std::size_t scan_ = 0;  // rotating cursor: the next free slot is usually here
  std::size_t max_buffers_;
  std::size_t hint_ = 256;
  std::uint64_t reuses_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace aqm::orb

#include "orb/giop.hpp"

#include <cstring>

namespace aqm::orb {
namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'I', 'O', 'P'};
constexpr std::uint8_t kVersionMajor = 1;
constexpr std::uint8_t kVersionMinor = 2;
constexpr std::uint8_t kFlagLittleEndian = 0x01;
constexpr std::size_t kHeaderSize = 12;

void write_contexts(CdrWriter& w, const std::vector<ServiceContext>& contexts) {
  w.write_u32(static_cast<std::uint32_t>(contexts.size()));
  for (const auto& c : contexts) {
    w.write_u32(c.id);
    w.write_octets(c.data);
  }
}

/// Reads the context sequence into `out`, reusing the vector's elements
/// (and their data buffers) when the shapes line up — the common case for
/// a scratch GiopMessage decoding a stream of similarly stamped messages.
void read_contexts_into(CdrReader& r, std::vector<ServiceContext>& out) {
  const std::uint32_t n = r.read_u32();
  if (n > 1024) throw MarshalError("unreasonable service-context count");
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out[i].id = r.read_u32();
    r.read_octets_into(out[i].data);
  }
}

std::vector<ServiceContext> read_contexts(CdrReader& r) {
  std::vector<ServiceContext> out;
  read_contexts_into(r, out);
  return out;
}

void finish(CdrWriter& w) {
  // Patch msg_size = bytes after the 12-byte header.
  w.patch_u32(8, static_cast<std::uint32_t>(w.size() - kHeaderSize));
}

void write_header(CdrWriter& w, GiopMsgType type) {
  // One appended block instead of eight byte-wise writes: the header is
  // fixed-shape, so build it on the stack and let write_raw do one
  // capacity check. msg_size (last 4 bytes) is patched by finish().
  const std::uint8_t hdr[kHeaderSize] = {kMagic[0],     kMagic[1],
                                         kMagic[2],     kMagic[3],
                                         kVersionMajor, kVersionMinor,
                                         kFlagLittleEndian,
                                         static_cast<std::uint8_t>(type),
                                         0,             0,
                                         0,             0};
  w.write_raw(hdr);
}

}  // namespace

void encode_request(const RequestHeader& header, std::span<const std::uint8_t> body,
                    std::vector<std::uint8_t>& out) {
  out.clear();
  CdrWriter w(out);
  write_header(w, GiopMsgType::Request);
  w.write_u32(header.request_id);
  w.write_u8(header.response_expected ? 1 : 0);
  w.write_string(header.object_key);
  w.write_string(header.operation);
  write_contexts(w, header.contexts);
  w.align(8);  // GIOP 1.2 aligns the body to 8
  w.write_raw(body);
  finish(w);
}

void encode_reply(const ReplyHeader& header, std::span<const std::uint8_t> body,
                  std::vector<std::uint8_t>& out) {
  out.clear();
  CdrWriter w(out);
  write_header(w, GiopMsgType::Reply);
  w.write_u32(header.request_id);
  w.write_u32(static_cast<std::uint32_t>(header.status));
  write_contexts(w, header.contexts);
  w.align(8);
  w.write_raw(body);
  finish(w);
}

std::vector<std::uint8_t> encode_request(const RequestHeader& header,
                                         std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  encode_request(header, body, out);
  return out;
}

std::vector<std::uint8_t> encode_reply(const ReplyHeader& header,
                                       std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  encode_reply(header, body, out);
  return out;
}

void decode_into(GiopMessage& msg, std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize) throw MarshalError("GIOP message shorter than header");
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) throw MarshalError("bad GIOP magic");
  const std::uint8_t flags = bytes[6];
  const bool big_endian = (flags & kFlagLittleEndian) == 0;
  const auto type_byte = bytes[7];
  if (type_byte > static_cast<std::uint8_t>(GiopMsgType::Reply)) {
    throw MarshalError("unknown GIOP message type");
  }

  CdrReader r(bytes, big_endian);
  r.skip(8);
  const std::uint32_t msg_size = r.read_u32();
  if (msg_size + kHeaderSize != bytes.size()) {
    throw MarshalError("GIOP message size mismatch");
  }

  msg.type = static_cast<GiopMsgType>(type_byte);
  if (msg.type == GiopMsgType::Request) {
    msg.request.request_id = r.read_u32();
    msg.request.response_expected = r.read_u8() != 0;
    r.read_string_into(msg.request.object_key);
    r.read_string_into(msg.request.operation);
    read_contexts_into(r, msg.request.contexts);
  } else {
    msg.reply.request_id = r.read_u32();
    const std::uint32_t status = r.read_u32();
    if (status != 0 && status != 2) throw MarshalError("unknown reply status");
    msg.reply.status = static_cast<ReplyStatus>(status);
    read_contexts_into(r, msg.reply.contexts);
  }
  r.align(8);
  const auto rest = r.remaining_bytes();
  msg.body.assign(rest.begin(), rest.end());
}

GiopMessage decode(std::span<const std::uint8_t> bytes) {
  GiopMessage msg;
  decode_into(msg, bytes);
  return msg;
}

ServiceContext make_priority_context(CorbaPriority priority) {
  CdrWriter w;
  w.write_i32(priority);
  return ServiceContext{kRtCorbaPriorityContextId, w.take()};
}

std::optional<CorbaPriority> find_priority(const std::vector<ServiceContext>& contexts) {
  for (const auto& c : contexts) {
    if (c.id != kRtCorbaPriorityContextId) continue;
    CdrReader r(c.data);
    return r.read_i32();
  }
  return std::nullopt;
}

ServiceContext make_timestamp_context(TimePoint t) {
  CdrWriter w;
  w.write_i64(t.ns());
  return ServiceContext{kTimestampContextId, w.take()};
}

std::optional<TimePoint> find_timestamp(const std::vector<ServiceContext>& contexts) {
  for (const auto& c : contexts) {
    if (c.id != kTimestampContextId) continue;
    CdrReader r(c.data);
    return TimePoint{r.read_i64()};
  }
  return std::nullopt;
}

ServiceContext make_trace_context(std::uint64_t trace_id) {
  CdrWriter w;
  w.write_u64(trace_id);
  return ServiceContext{kTraceContextId, w.take()};
}

std::optional<std::uint64_t> find_trace(const std::vector<ServiceContext>& contexts) {
  for (const auto& c : contexts) {
    if (c.id != kTraceContextId) continue;
    CdrReader r(c.data);
    return r.read_u64();
  }
  return std::nullopt;
}

ServiceContext make_deadline_context(TimePoint deadline) {
  CdrWriter w;
  w.write_i64(deadline.ns());
  return ServiceContext{kDeadlineContextId, w.take()};
}

std::optional<TimePoint> find_deadline(const std::vector<ServiceContext>& contexts) {
  for (const auto& c : contexts) {
    if (c.id != kDeadlineContextId) continue;
    CdrReader r(c.data);
    return TimePoint{r.read_i64()};
  }
  return std::nullopt;
}

}  // namespace aqm::orb

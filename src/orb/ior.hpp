// Stringified interoperable object references.
//
// Real CORBA exports object references as "IOR:<hex>" strings produced by
// CDR-encoding the reference's profiles; that is how references cross
// process boundaries out of band (files, naming services, command lines).
// We do the same for ObjectRef, including its RT-CORBA tagged components
// (priority model, server priority, protocol properties).
#pragma once

#include <string>

#include "orb/types.hpp"

namespace aqm::orb {

/// "IOR:" + hex(CDR profile). Deterministic for a given reference.
[[nodiscard]] std::string object_to_string(const ObjectRef& ref);

/// Parses object_to_string() output; throws MarshalError on malformed or
/// non-IOR input.
[[nodiscard]] ObjectRef string_to_object(const std::string& ior);

}  // namespace aqm::orb

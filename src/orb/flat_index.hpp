// Open-addressing (hi, lo) -> slot index for the transport's per-message
// tables (DESIGN.md §11).
//
// The GIOP transport keys transient state by composite ids that outgrow a
// single 64-bit word: reassembly by (source node, message id), batch
// staging by (destination, DSCP, flow). std::map gave O(log n) walks and
// std::unordered_map allocates a fresh node per insert — visible on the
// steady-state receive path, where every inbound wire message opens and
// closes one reassembly entry. Key128Map is a linear-probe table over two
// flat arrays (cells + a spare used for rehash), so insert/erase churn at
// stable occupancy touches no allocator at all: growth doubles the cell
// array, tombstone pressure rehashes in place by swapping with the spare,
// and both arrays keep their capacity forever after warm-up.
//
// Determinism rule (same as net::FlowMap): probe order is unspecified, so
// the table exposes no iteration — consumers that need ordered emission
// must keep their own sorted view of the keys.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace aqm::orb {

class Key128Map {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Returns the mapped slot, or kNoSlot when the key is absent.
  [[nodiscard]] std::uint32_t find(std::uint64_t hi, std::uint64_t lo) const {
    if (cells_.empty()) return kNoSlot;
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = mix(hi, lo) & mask;; i = (i + 1) & mask) {
      const Cell& c = cells_[i];
      if (c.state == State::Empty) return kNoSlot;
      if (c.state == State::Used && c.hi == hi && c.lo == lo) return c.slot;
    }
  }

  /// Inserts a new mapping; the key must be absent.
  void insert(std::uint64_t hi, std::uint64_t lo, std::uint32_t slot) {
    assert(find(hi, lo) == kNoSlot && "Key128Map::insert on a present key");
    // Rehash at 3/4 occupancy counting tombstones, so probe chains stay
    // short even under sustained insert/erase churn.
    if (cells_.empty() || (used_ + tombs_ + 1) * 4 >= cells_.size() * 3) {
      rehash(cells_.empty() ? 16 : (used_ + 1) * 4 > cells_.size() * 3
                                       ? cells_.size() * 2
                                       : cells_.size());
    }
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = mix(hi, lo) & mask;; i = (i + 1) & mask) {
      Cell& c = cells_[i];
      if (c.state == State::Used) continue;
      if (c.state == State::Tomb) --tombs_;
      c = Cell{hi, lo, slot, State::Used};
      ++used_;
      return;
    }
  }

  /// Removes the key; returns false when absent.
  bool erase(std::uint64_t hi, std::uint64_t lo) {
    if (cells_.empty()) return false;
    const std::size_t mask = cells_.size() - 1;
    for (std::size_t i = mix(hi, lo) & mask;; i = (i + 1) & mask) {
      Cell& c = cells_[i];
      if (c.state == State::Empty) return false;
      if (c.state == State::Used && c.hi == hi && c.lo == lo) {
        c.state = State::Tomb;
        --used_;
        ++tombs_;
        return true;
      }
    }
  }

  [[nodiscard]] std::size_t size() const { return used_; }
  [[nodiscard]] bool empty() const { return used_ == 0; }

  void reserve(std::size_t n) {
    std::size_t cap = 16;
    while (n * 4 >= cap * 3) cap *= 2;
    if (cap > cells_.size()) rehash(cap);
  }

 private:
  enum class State : std::uint8_t { Empty = 0, Used = 1, Tomb = 2 };
  struct Cell {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;
    std::uint32_t slot = 0;
    State state = State::Empty;
  };

  /// splitmix64-style avalanche over both words.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t hi, std::uint64_t lo) {
    std::uint64_t x = hi * 0x9E3779B97F4A7C15ull ^ (lo + 0xBF58476D1CE4E5B9ull);
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  }

  void rehash(std::size_t new_cap) {
    spare_.assign(new_cap, Cell{});
    const std::size_t mask = new_cap - 1;
    for (const Cell& c : cells_) {
      if (c.state != State::Used) continue;
      std::size_t i = mix(c.hi, c.lo) & mask;
      while (spare_[i].state == State::Used) i = (i + 1) & mask;
      spare_[i] = c;
    }
    cells_.swap(spare_);
    tombs_ = 0;
  }

  std::vector<Cell> cells_;
  std::vector<Cell> spare_;  // rehash target; retained so rehash never allocates
  std::size_t used_ = 0;
  std::size_t tombs_ = 0;
};

}  // namespace aqm::orb

// The ORB endpoint: one per simulated host.
//
// Client side: invoke() marshals a GIOP request (costed on the host CPU at
// the request's mapped native priority), stamps the RTCorbaPriority and
// timestamp service contexts, maps the priority to a DSCP, and hands the
// bytes to the transport. Twoway replies are matched by request id with a
// timeout.
//
// Server side: complete messages are demultiplexed to a POA/servant, then
// dispatched into the POA's RT thread pool at the priority chosen by the
// POA's priority model (CLIENT_PROPAGATED reads the service context,
// SERVER_DECLARED uses the POA's declared priority). The request's CPU cost
// (demux + demarshal + servant work) executes on the host CPU; the servant
// handler runs at completion and, for twoways, the reply travels back with
// the same priority/DSCP treatment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/giop.hpp"
#include "orb/poa.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "orb/rt/priority_mapping.hpp"
#include "orb/servant.hpp"
#include "orb/transport.hpp"
#include "orb/types.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::orb {

struct OrbConfig {
  /// Client-side request marshaling cost: base + per-KB of message.
  Duration marshal_base = microseconds(20);
  Duration marshal_per_kb = microseconds(4);
  /// Server-side header parse + POA demux cost, and demarshal per KB.
  Duration demux_base = microseconds(25);
  Duration demarshal_per_kb = microseconds(4);
  /// Priority used when a CLIENT_PROPAGATED request carries no context.
  CorbaPriority default_priority = 0;
  TransportConfig transport{};
};

struct InvokeOptions {
  bool oneway = false;
  Duration timeout = seconds(2);
  /// Overrides the ambient client priority / server-declared priority.
  std::optional<CorbaPriority> priority;
  /// Network flow id (for reservations and per-flow statistics).
  net::FlowId flow = net::kNoFlow;
};

struct OrbStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_dispatched = 0;
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dispatch_rejected = 0;  // thread-pool queue overflows
  std::uint64_t collocated_calls = 0;   // requests that skipped the transport
};

class OrbEndpoint {
 public:
  using ResponseCallback =
      std::function<void(CompletionStatus, std::vector<std::uint8_t> body)>;

  OrbEndpoint(net::Network& net, net::NodeId node, os::Cpu& cpu, OrbConfig config = {});
  OrbEndpoint(const OrbEndpoint&) = delete;
  OrbEndpoint& operator=(const OrbEndpoint&) = delete;

  // --- RT-CORBA managers ------------------------------------------------------

  [[nodiscard]] rt::PriorityMappingManager& priority_mappings() { return priority_mappings_; }
  [[nodiscard]] const rt::PriorityMappingManager& priority_mappings() const {
    return priority_mappings_;
  }
  [[nodiscard]] rt::DscpMappingManager& dscp_mappings() { return dscp_mappings_; }

  /// RTCurrent: ambient CORBA priority of this endpoint's client calls.
  void set_client_priority(CorbaPriority p) { client_priority_ = p; }
  [[nodiscard]] CorbaPriority client_priority() const { return client_priority_; }

  // --- server side -------------------------------------------------------------

  Poa& create_poa(const std::string& name, PoaPolicies policies = {});
  [[nodiscard]] Poa* find_poa(const std::string& name);

  // --- client side -------------------------------------------------------------

  /// Fire an invocation. For oneways `cb` may be null; for twoways it is
  /// called exactly once with the outcome.
  void invoke(const ObjectRef& ref, const std::string& operation,
              std::vector<std::uint8_t> body, InvokeOptions options,
              ResponseCallback cb = nullptr);

  // --- plumbing -----------------------------------------------------------------

  [[nodiscard]] net::NodeId node() const { return transport_.node(); }
  [[nodiscard]] os::Cpu& cpu() { return cpu_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] sim::Engine& engine() { return net_.engine(); }
  [[nodiscard]] GiopTransport& transport() { return transport_; }
  [[nodiscard]] const OrbStats& stats() const { return stats_; }
  [[nodiscard]] const OrbConfig& config() const { return config_; }
  /// Encode-buffer pool shared by this endpoint's request and reply paths.
  [[nodiscard]] CdrBufferPool& buffer_pool() { return pool_; }

  /// Trace id of the most recently dispatched (server-side) request. Lets
  /// application code executing downstream of a dispatch — QuO measurement
  /// probes, adaptation callbacks — chain its events to the causing
  /// request. 0 when no traced request has been dispatched.
  [[nodiscard]] std::uint64_t last_dispatch_trace() const { return last_dispatch_trace_; }

  /// Dumps the endpoint's counters into a registry under
  /// "<prefix>.requests_sent" etc.
  void export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const;

 private:
  struct PendingRequest {
    ResponseCallback cb;
    CorbaPriority priority;
    sim::EventId timeout{};
    std::uint64_t trace = 0;
    const char* span_name = nullptr;  // interned "call <op>" for the async end
  };

  void on_message(net::NodeId src, MessageBuffer msg);
  void handle_request(net::NodeId src, GiopMessage msg, std::size_t wire_size);
  void handle_reply(GiopMessage msg, std::size_t wire_size);
  void send_reply(net::NodeId client, std::uint32_t request_id, ReplyStatus status,
                  std::vector<std::uint8_t> body, CorbaPriority priority,
                  std::uint64_t trace = 0);
  /// Engine recorder iff orb tracing is on; binds the "orb:<node>" lane on
  /// first use.
  [[nodiscard]] obs::TraceRecorder* orb_tracer();
  [[nodiscard]] net::Dscp dscp_for(const ObjectRef& ref, CorbaPriority priority) const;
  [[nodiscard]] Duration marshal_cost(std::size_t bytes) const;
  [[nodiscard]] Duration demarshal_cost(std::size_t bytes) const;

  net::Network& net_;
  os::Cpu& cpu_;
  OrbConfig config_;
  CdrBufferPool pool_;
  GiopTransport transport_;
  rt::PriorityMappingManager priority_mappings_;
  rt::DscpMappingManager dscp_mappings_;
  CorbaPriority client_priority_ = 0;
  std::map<std::string, std::unique_ptr<Poa>> poas_;
  std::map<std::uint32_t, PendingRequest> pending_;
  std::uint32_t next_request_id_ = 1;
  OrbStats stats_;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
  std::uint64_t last_dispatch_trace_ = 0;
};

/// Client-side proxy bound to one object reference. Carries per-binding
/// QoS (flow id for reservations, priority override) — the moral
/// equivalent of RT-CORBA explicit binding.
class ObjectStub {
 public:
  ObjectStub(OrbEndpoint& orb, ObjectRef ref) : orb_(&orb), ref_(std::move(ref)) {}

  [[nodiscard]] const ObjectRef& ref() const { return ref_; }
  [[nodiscard]] ObjectRef& ref() { return ref_; }

  void set_flow(net::FlowId flow) { flow_ = flow; }
  [[nodiscard]] net::FlowId flow() const { return flow_; }
  void set_priority(CorbaPriority p) { priority_ = p; }
  void clear_priority() { priority_.reset(); }

  void oneway(const std::string& operation, std::vector<std::uint8_t> body);
  void twoway(const std::string& operation, std::vector<std::uint8_t> body,
              OrbEndpoint::ResponseCallback cb, Duration timeout = seconds(2));

 private:
  OrbEndpoint* orb_;
  ObjectRef ref_;
  net::FlowId flow_ = net::kNoFlow;
  std::optional<CorbaPriority> priority_;
};

}  // namespace aqm::orb

// The ORB endpoint: one per simulated host.
//
// Client side: invoke() runs the client interceptor chain's establish
// phase (QoS decisions: priority, DSCP, flow, deadline), marshals a GIOP
// request (costed on the host CPU at the mapped native priority), runs the
// send_request phase (service-context stamping, DSCP/flow classification),
// and hands the bytes to the transport. Twoway replies are matched by
// request id with a timeout; the receive_reply / receive_exception phases
// run before the caller's callback (the deadline/retry interceptor may
// re-issue the invocation instead of completing it).
//
// Server side: complete messages are demultiplexed to a POA/servant, the
// server chain's receive_request phase resolves QoS from the service
// contexts (and may veto — e.g. the deadline interceptor drops expired
// requests before any servant work), then the request is dispatched into
// the POA's RT thread pool. For twoways the reply runs the send_reply
// phase (context stamping, priority-derived DSCP) on its way out.
//
// All previously hard-wired QoS behaviors live in built-in interceptors
// (see orb/interceptor.hpp); invoke/handle_request/send_reply are now
// marshal + pipeline + transport.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "orb/exceptions.hpp"
#include "orb/giop.hpp"
#include "orb/interceptor.hpp"
#include "orb/poa.hpp"
#include "orb/rt/dscp_mapping.hpp"
#include "orb/rt/priority_mapping.hpp"
#include "orb/servant.hpp"
#include "orb/transport.hpp"
#include "orb/types.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::net {
class FlowClassifier;
}  // namespace aqm::net

namespace aqm::orb {

struct OrbConfig {
  /// Client-side request marshaling cost: base + per-KB of message.
  Duration marshal_base = microseconds(20);
  Duration marshal_per_kb = microseconds(4);
  /// Server-side header parse + POA demux cost, and demarshal per KB.
  Duration demux_base = microseconds(25);
  Duration demarshal_per_kb = microseconds(4);
  /// Priority used when a CLIENT_PROPAGATED request carries no context.
  CorbaPriority default_priority = 0;
  TransportConfig transport{};
};

// InvokeOptions lives in orb/interceptor.hpp with the rest of the
// per-invocation pipeline types (deadline/retry knobs included).

struct OrbStats {
  std::uint64_t requests_sent = 0;
  std::uint64_t requests_dispatched = 0;
  std::uint64_t replies_ok = 0;
  std::uint64_t replies_error = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dispatch_rejected = 0;  // thread-pool queue overflows
  std::uint64_t collocated_calls = 0;   // requests that skipped the transport
  // --- pipeline counters ---------------------------------------------------
  std::uint64_t client_vetoed = 0;     // invocations short-circuited client-side
  std::uint64_t server_vetoed = 0;     // requests rejected by the server chain
  std::uint64_t deadline_dropped = 0;  // server vetoes for expired deadlines
  std::uint64_t retries = 0;           // re-issued attempts (deadline/retry)
  std::uint64_t deadline_missed = 0;   // client-side misses: pre-send expiry + timeouts
};

class OrbEndpoint {
 public:
  using ResponseCallback =
      std::function<void(CompletionStatus, std::vector<std::uint8_t> body)>;

  OrbEndpoint(net::Network& net, net::NodeId node, os::Cpu& cpu, OrbConfig config = {});
  OrbEndpoint(const OrbEndpoint&) = delete;
  OrbEndpoint& operator=(const OrbEndpoint&) = delete;

  // --- RT-CORBA managers ------------------------------------------------------

  [[nodiscard]] rt::PriorityMappingManager& priority_mappings() { return priority_mappings_; }
  [[nodiscard]] const rt::PriorityMappingManager& priority_mappings() const {
    return priority_mappings_;
  }
  [[nodiscard]] rt::DscpMappingManager& dscp_mappings() { return dscp_mappings_; }

  /// RTCurrent: ambient CORBA priority of this endpoint's client calls.
  void set_client_priority(CorbaPriority p) { client_priority_ = p; }
  [[nodiscard]] CorbaPriority client_priority() const { return client_priority_; }

  // --- invocation pipeline ------------------------------------------------------

  /// Registers a client interceptor. User interceptors run BEFORE the
  /// built-ins in the establish/send_request phases (their QoS decisions
  /// feed the built-in stampers) and after them, in reverse registration
  /// order, on the receive_reply/receive_exception path. Returns the
  /// registered instance.
  ClientRequestInterceptor& add_client_interceptor(
      std::unique_ptr<ClientRequestInterceptor> icpt);
  /// Registers a server interceptor. User interceptors run AFTER the
  /// built-ins (they observe fully resolved requests) in every phase.
  ServerRequestInterceptor& add_server_interceptor(
      std::unique_ptr<ServerRequestInterceptor> icpt);
  /// Finds a registered interceptor by name() (nullptr when absent).
  [[nodiscard]] ClientRequestInterceptor* find_client_interceptor(std::string_view name);
  [[nodiscard]] ServerRequestInterceptor* find_server_interceptor(std::string_view name);

  /// Installs the flow classifier consulted by the built-in net.flow
  /// interceptor (non-owning; nullptr uninstalls).
  void set_flow_classifier(net::FlowClassifier* classifier) {
    flow_classifier_ = classifier;
  }
  [[nodiscard]] net::FlowClassifier* flow_classifier() const { return flow_classifier_; }

  // --- server side -------------------------------------------------------------

  Poa& create_poa(const std::string& name, PoaPolicies policies = {});
  [[nodiscard]] Poa* find_poa(const std::string& name);

  // --- client side -------------------------------------------------------------

  /// Fire an invocation. For oneways `cb` may be null; for twoways it is
  /// called exactly once with the outcome. With transport batching on,
  /// any number of invocations can be in flight on one logical connection
  /// — completions demux by request id — and small requests coalesce in
  /// the transport until a threshold/deadline flush or flush_transport().
  void invoke(const ObjectRef& ref, const std::string& operation,
              std::vector<std::uint8_t> body, InvokeOptions options,
              ResponseCallback cb = nullptr);

  /// Ships every staged (batched) message now — the AMI-style pipelining
  /// submit/flush boundary. A no-op when nothing is staged.
  void flush_transport() { transport_.flush_all(); }

  // --- plumbing -----------------------------------------------------------------

  [[nodiscard]] net::NodeId node() const { return transport_.node(); }
  [[nodiscard]] os::Cpu& cpu() { return cpu_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] sim::Engine& engine() { return net_.engine(); }
  [[nodiscard]] GiopTransport& transport() { return transport_; }
  [[nodiscard]] const OrbStats& stats() const { return stats_; }
  [[nodiscard]] const OrbConfig& config() const { return config_; }
  /// Encode-buffer pool shared by this endpoint's request and reply paths.
  [[nodiscard]] CdrBufferPool& buffer_pool() { return pool_; }

  /// Trace id of the most recently dispatched (server-side) request. Lets
  /// application code executing downstream of a dispatch — QuO measurement
  /// probes, adaptation callbacks — chain its events to the causing
  /// request. 0 when no traced request has been dispatched.
  [[nodiscard]] std::uint64_t last_dispatch_trace() const { return last_dispatch_trace_; }

  /// Dumps the endpoint's counters into a registry under
  /// "<prefix>.requests_sent" etc.
  void export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const;

 private:
  /// Everything needed to re-issue an invocation; materialized only when
  /// the invocation opted into retries, so the common path stays
  /// allocation-free.
  struct RetryState {
    ObjectRef ref;
    std::string operation;
    std::vector<std::uint8_t> body;
    InvokeOptions options;
    int attempt = 1;
    std::optional<TimePoint> deadline;
  };

  struct PendingRequest {
    ResponseCallback cb;
    CorbaPriority priority;
    sim::EventId timeout{};
    std::uint64_t trace = 0;
    const char* span_name = nullptr;  // interned "call <op>" for the async end
    int attempt = 1;
    std::shared_ptr<RetryState> retry;  // null unless retries were requested
    net::FlowId flow = net::kNoFlow;    // resolved flow, for telemetry
    TimePoint sent_at{};                // post-marshal send instant
  };

  template <typename T>
  struct InterceptorEntry {
    std::unique_ptr<T> icpt;
    bool builtin = false;
    std::uint64_t runs = 0;
    std::uint64_t vetoes = 0;
  };

  void install_builtin_interceptors();
  void invoke_internal(const ObjectRef& ref, const std::string& operation,
                       std::vector<std::uint8_t> body, InvokeOptions options,
                       ResponseCallback cb, int attempt,
                       std::optional<TimePoint> deadline);
  /// Runs receive_exception and either schedules a retry or completes `cb`.
  void complete_exception(ResponseCallback cb, CompletionStatus status, int attempt,
                          std::shared_ptr<RetryState> retry_state, std::uint64_t trace);

  InterceptStatus run_client_establish(ClientRequestContext& ctx);
  InterceptStatus run_client_send(ClientRequestContext& ctx);
  void run_client_reply(ClientRequestContext& ctx);
  void run_client_exception(ClientRequestContext& ctx);
  InterceptStatus run_server_receive(ServerRequestContext& ctx);
  InterceptStatus run_server_reply(ServerRequestContext& ctx);

  void on_message(net::NodeId src, const MessageView& msg);
  /// Both take the decode scratch by reference and move its movable
  /// fields out; decode_into reinitializes them on the next message.
  void handle_request(net::NodeId src, GiopMessage& msg, std::size_t wire_size);
  void handle_reply(GiopMessage& msg, std::size_t wire_size);
  void send_reply(net::NodeId client, std::uint32_t request_id, ReplyStatus status,
                  std::vector<std::uint8_t> body, CorbaPriority priority,
                  std::uint64_t trace = 0);
  /// Engine recorder iff orb tracing is on; binds the "orb:<node>" lane on
  /// first use.
  [[nodiscard]] obs::TraceRecorder* orb_tracer();
  /// Engine recorder iff the (chatty, off-by-default) per-interceptor
  /// pipeline lane is enabled.
  [[nodiscard]] obs::TraceRecorder* pipeline_tracer();
  [[nodiscard]] Duration marshal_cost(std::size_t bytes) const;
  [[nodiscard]] Duration demarshal_cost(std::size_t bytes) const;

  net::Network& net_;
  os::Cpu& cpu_;
  OrbConfig config_;
  CdrBufferPool pool_;
  GiopTransport transport_;
  rt::PriorityMappingManager priority_mappings_;
  rt::DscpMappingManager dscp_mappings_;
  CorbaPriority client_priority_ = 0;
  std::map<std::string, std::unique_ptr<Poa>> poas_;
  /// In-flight twoway completions, demuxed by request id. Hashed (O(1) at
  /// pipelining depths) and never iterated, so determinism holds.
  std::unordered_map<std::uint32_t, PendingRequest> pending_;
  /// Receive-path decode scratch: every inbound message decodes into this
  /// one GiopMessage, reusing its strings/contexts/body capacity. Safe
  /// because servant and callback work is always deferred through the CPU
  /// or thread pool, so no nested on_message can run while it is live.
  GiopMessage decode_scratch_;
  std::uint32_t next_request_id_ = 1;
  OrbStats stats_;
  // Client chain: [user..., built-ins...]; server chain: [built-ins..., user...].
  std::vector<InterceptorEntry<ClientRequestInterceptor>> client_chain_;
  std::vector<InterceptorEntry<ServerRequestInterceptor>> server_chain_;
  std::size_t client_user_count_ = 0;  // insertion point for user client interceptors
  net::FlowClassifier* flow_classifier_ = nullptr;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
  std::uint64_t last_dispatch_trace_ = 0;
};

/// Client-side proxy bound to one object reference. Carries per-binding
/// QoS (flow id for reservations, priority override) — the moral
/// equivalent of RT-CORBA explicit binding.
class ObjectStub {
 public:
  ObjectStub(OrbEndpoint& orb, ObjectRef ref) : orb_(&orb), ref_(std::move(ref)) {}

  [[nodiscard]] const ObjectRef& ref() const { return ref_; }
  [[nodiscard]] ObjectRef& ref() { return ref_; }
  [[nodiscard]] OrbEndpoint& orb() const { return *orb_; }

  void set_flow(net::FlowId flow) { flow_ = flow; }
  [[nodiscard]] net::FlowId flow() const { return flow_; }
  void set_priority(CorbaPriority p) { priority_ = p; }
  void clear_priority() { priority_.reset(); }
  /// Per-binding end-to-end deadline applied to every invocation (the
  /// server drops requests that arrive expired).
  void set_deadline(Duration deadline) { deadline_ = deadline; }
  void clear_deadline() { deadline_.reset(); }
  /// Per-binding retry policy for twoway timeouts (bounded exponential
  /// backoff, driven by the deadline/retry interceptor).
  void set_retry(RetryPolicy retry) { retry_ = retry; }

  void oneway(const std::string& operation, std::vector<std::uint8_t> body);
  void twoway(const std::string& operation, std::vector<std::uint8_t> body,
              OrbEndpoint::ResponseCallback cb, Duration timeout = seconds(2));

 private:
  /// Single funnel for both call styles: assembles the binding's
  /// InvokeOptions (flow, priority, deadline, retry) exactly once.
  void invoke_with_binding(const std::string& operation, std::vector<std::uint8_t> body,
                           bool oneway, OrbEndpoint::ResponseCallback cb,
                           Duration timeout);

  OrbEndpoint* orb_;
  ObjectRef ref_;
  net::FlowId flow_ = net::kNoFlow;
  std::optional<CorbaPriority> priority_;
  std::optional<Duration> deadline_;
  RetryPolicy retry_;
};

}  // namespace aqm::orb

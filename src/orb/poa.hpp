// Portable Object Adapter with RT-CORBA policies.
//
// Demultiplexing uses a flat hash map over object ids — the moral
// equivalent of TAO's perfect-hashing / active-demultiplexing object
// adapter: constant-time lookup independent of the number of servants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "orb/rt/threadpool.hpp"
#include "orb/servant.hpp"
#include "orb/types.hpp"

namespace aqm::orb {

class OrbEndpoint;

struct PoaPolicies {
  PriorityModel priority_model = PriorityModel::ClientPropagated;
  /// Used when priority_model == ServerDeclared (and advertised in IORs).
  CorbaPriority server_priority = 0;
  /// Thread-pool lanes; a single default lane is created when empty.
  std::vector<rt::ThreadpoolLane> lanes;
};

/// Per-POA request accounting, maintained by the ORB's dispatch path and
/// exported next to the endpoint-level totals.
struct PoaDispatchStats {
  std::uint64_t dispatched = 0;
  std::uint64_t rejected = 0;    // thread-pool queue overflows
  std::uint64_t collocated = 0;  // requests that arrived via the loopback
};

class Poa {
 public:
  Poa(OrbEndpoint& orb, std::string name, PoaPolicies policies);
  Poa(const Poa&) = delete;
  Poa& operator=(const Poa&) = delete;

  /// Registers a servant and returns the object reference a client needs.
  /// The reference embeds the POA's QoS policies, mirroring RT-CORBA's
  /// tagged components ("server-side policies that affect client-side
  /// requests are embedded within a tagged component in the object
  /// reference").
  ObjectRef activate_object(const std::string& object_id, std::shared_ptr<Servant> servant);

  void deactivate_object(const std::string& object_id);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const PoaPolicies& policies() const { return policies_; }
  [[nodiscard]] std::size_t servant_count() const { return servants_.size(); }

  /// Constant-time servant lookup (active demultiplexing).
  [[nodiscard]] std::shared_ptr<Servant> find(const std::string& object_id) const;

  [[nodiscard]] rt::ThreadPool& thread_pool() { return *pool_; }

  [[nodiscard]] const PoaDispatchStats& dispatch_stats() const { return dispatch_stats_; }
  [[nodiscard]] PoaDispatchStats& dispatch_stats() { return dispatch_stats_; }

 private:
  OrbEndpoint& orb_;
  std::string name_;
  PoaPolicies policies_;
  PoaDispatchStats dispatch_stats_;
  std::unordered_map<std::string, std::shared_ptr<Servant>> servants_;
  std::unique_ptr<rt::ThreadPool> pool_;
};

}  // namespace aqm::orb

#include "orb/orb.hpp"

#include <cassert>
#include <utility>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace aqm::orb {
namespace {

/// Encodes a CompletionStatus code as an exception reply body.
std::vector<std::uint8_t> encode_error_body(CompletionStatus status) {
  CdrWriter w;
  w.write_u32(static_cast<std::uint32_t>(status));
  return w.take();
}

CompletionStatus decode_error_body(const std::vector<std::uint8_t>& body) {
  try {
    CdrReader r(body);
    const auto code = r.read_u32();
    if (code > static_cast<std::uint32_t>(CompletionStatus::SystemError)) {
      return CompletionStatus::SystemError;
    }
    return static_cast<CompletionStatus>(code);
  } catch (const MarshalError&) {
    return CompletionStatus::SystemError;
  }
}

}  // namespace

OrbEndpoint::OrbEndpoint(net::Network& net, net::NodeId node, os::Cpu& cpu, OrbConfig config)
    : net_(net), cpu_(cpu), config_(config), transport_(net, node, config.transport) {
  transport_.set_message_handler(
      [this](net::NodeId src, const MessageView& msg) { on_message(src, msg); });
  install_builtin_interceptors();
}

Poa& OrbEndpoint::create_poa(const std::string& name, PoaPolicies policies) {
  assert(poas_.count(name) == 0 && "POA already exists");
  auto poa = std::make_unique<Poa>(*this, name, std::move(policies));
  Poa& ref = *poa;
  poas_[name] = std::move(poa);
  return ref;
}

Poa* OrbEndpoint::find_poa(const std::string& name) {
  const auto it = poas_.find(name);
  return it == poas_.end() ? nullptr : it->second.get();
}

Duration OrbEndpoint::marshal_cost(std::size_t bytes) const {
  return config_.marshal_base +
         config_.marshal_per_kb * static_cast<std::int64_t>(bytes / 1024);
}

Duration OrbEndpoint::demarshal_cost(std::size_t bytes) const {
  return config_.demux_base +
         config_.demarshal_per_kb * static_cast<std::int64_t>(bytes / 1024);
}

obs::TraceRecorder* OrbEndpoint::orb_tracer() {
  obs::TraceRecorder* tr = engine().tracer_for(obs::TraceCategory::Orb);
  if (tr != nullptr && obs_bound_ != tr) {
    obs_track_ = tr->track("orb:" + net_.node_name(node()));
    obs_bound_ = tr;
  }
  return tr;
}

obs::TraceRecorder* OrbEndpoint::pipeline_tracer() {
  obs::TraceRecorder* tr = engine().tracer_for(obs::TraceCategory::Pipeline);
  if (tr != nullptr && obs_bound_ != tr) {
    obs_track_ = tr->track("orb:" + net_.node_name(node()));
    obs_bound_ = tr;
  }
  return tr;
}

// --- interceptor registration ------------------------------------------------

void OrbEndpoint::install_builtin_interceptors() {
  // Client chain (wire-nearest last): the priority mapper must run before
  // the DSCP/flow stages that consume the resolved priority, and the DSCP
  // stage before flow classification (classifiers may key on the codepoint).
  client_chain_.push_back(InterceptorEntry<ClientRequestInterceptor>{
      std::make_unique<PriorityInterceptor>(*this), /*builtin=*/true});
  client_chain_.push_back(InterceptorEntry<ClientRequestInterceptor>{
      std::make_unique<TimestampInterceptor>(), /*builtin=*/true});
  client_chain_.push_back(InterceptorEntry<ClientRequestInterceptor>{
      std::make_unique<TraceInterceptor>(), /*builtin=*/true});
  client_chain_.push_back(InterceptorEntry<ClientRequestInterceptor>{
      std::make_unique<DeadlineRetryInterceptor>(), /*builtin=*/true});
  client_chain_.push_back(InterceptorEntry<ClientRequestInterceptor>{
      std::make_unique<DscpInterceptor>(*this), /*builtin=*/true});
  client_chain_.push_back(InterceptorEntry<ClientRequestInterceptor>{
      std::make_unique<FlowClassificationInterceptor>(*this), /*builtin=*/true});

  // Server chain: context extraction order mirrors the client stamping
  // order (priority, timestamp, trace), then the deadline gate.
  server_chain_.push_back(InterceptorEntry<ServerRequestInterceptor>{
      std::make_unique<PriorityInterceptor>(*this), /*builtin=*/true});
  server_chain_.push_back(InterceptorEntry<ServerRequestInterceptor>{
      std::make_unique<TimestampInterceptor>(), /*builtin=*/true});
  server_chain_.push_back(InterceptorEntry<ServerRequestInterceptor>{
      std::make_unique<TraceInterceptor>(), /*builtin=*/true});
  server_chain_.push_back(InterceptorEntry<ServerRequestInterceptor>{
      std::make_unique<DeadlineDropInterceptor>(), /*builtin=*/true});
  server_chain_.push_back(InterceptorEntry<ServerRequestInterceptor>{
      std::make_unique<DscpInterceptor>(*this), /*builtin=*/true});
}

ClientRequestInterceptor& OrbEndpoint::add_client_interceptor(
    std::unique_ptr<ClientRequestInterceptor> icpt) {
  assert(icpt != nullptr);
  const auto it = client_chain_.insert(
      client_chain_.begin() + static_cast<std::ptrdiff_t>(client_user_count_),
      InterceptorEntry<ClientRequestInterceptor>{std::move(icpt)});
  ++client_user_count_;
  return *it->icpt;
}

ServerRequestInterceptor& OrbEndpoint::add_server_interceptor(
    std::unique_ptr<ServerRequestInterceptor> icpt) {
  assert(icpt != nullptr);
  server_chain_.push_back(InterceptorEntry<ServerRequestInterceptor>{std::move(icpt)});
  return *server_chain_.back().icpt;
}

ClientRequestInterceptor* OrbEndpoint::find_client_interceptor(std::string_view name) {
  for (auto& entry : client_chain_) {
    if (name == entry.icpt->name()) return entry.icpt.get();
  }
  return nullptr;
}

ServerRequestInterceptor* OrbEndpoint::find_server_interceptor(std::string_view name) {
  for (auto& entry : server_chain_) {
    if (name == entry.icpt->name()) return entry.icpt.get();
  }
  return nullptr;
}

// --- chain runners -----------------------------------------------------------
// Forward in every phase except the client reply/exception path, which
// unwinds in reverse so user interceptors (registered before the built-ins)
// observe replies last-in-first-out relative to their request-path order.
// The server send_reply phase stays forward: the built-in stampers define
// the reply's service-context byte order.

InterceptStatus OrbEndpoint::run_client_establish(ClientRequestContext& ctx) {
  obs::TraceRecorder* tr = pipeline_tracer();
  for (auto& entry : client_chain_) {
    ++entry.runs;
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::Pipeline, entry.icpt->name(), obs_track_,
                  engine().now(), ctx.trace_id);
    }
    if (auto st = entry.icpt->establish(ctx); !st) {
      ++entry.vetoes;
      return st;
    }
  }
  return {};
}

InterceptStatus OrbEndpoint::run_client_send(ClientRequestContext& ctx) {
  for (auto& entry : client_chain_) {
    if (auto st = entry.icpt->send_request(ctx); !st) {
      ++entry.vetoes;
      return st;
    }
  }
  return {};
}

void OrbEndpoint::run_client_reply(ClientRequestContext& ctx) {
  for (auto it = client_chain_.rbegin(); it != client_chain_.rend(); ++it) {
    it->icpt->receive_reply(ctx);
  }
}

void OrbEndpoint::run_client_exception(ClientRequestContext& ctx) {
  for (auto it = client_chain_.rbegin(); it != client_chain_.rend(); ++it) {
    it->icpt->receive_exception(ctx);
  }
}

InterceptStatus OrbEndpoint::run_server_receive(ServerRequestContext& ctx) {
  obs::TraceRecorder* tr = pipeline_tracer();
  for (auto& entry : server_chain_) {
    ++entry.runs;
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::Pipeline, entry.icpt->name(), obs_track_,
                  engine().now(), ctx.trace);
    }
    if (auto st = entry.icpt->receive_request(ctx); !st) {
      ++entry.vetoes;
      return st;
    }
  }
  return {};
}

InterceptStatus OrbEndpoint::run_server_reply(ServerRequestContext& ctx) {
  for (auto& entry : server_chain_) {
    if (auto st = entry.icpt->send_reply(ctx); !st) {
      ++entry.vetoes;
      return st;
    }
  }
  return {};
}

// --- metrics -----------------------------------------------------------------

void OrbEndpoint::export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.counter(p + ".requests_sent").set(stats_.requests_sent);
  reg.counter(p + ".requests_dispatched").set(stats_.requests_dispatched);
  reg.counter(p + ".replies_ok").set(stats_.replies_ok);
  reg.counter(p + ".replies_error").set(stats_.replies_error);
  reg.counter(p + ".timeouts").set(stats_.timeouts);
  reg.counter(p + ".dispatch_rejected").set(stats_.dispatch_rejected);
  reg.counter(p + ".collocated_calls").set(stats_.collocated_calls);
  reg.counter(p + ".messages_expired").set(transport_.messages_expired());
  // Emitted only when coalescing is actually in play, so metrics sidecars
  // of batching-off runs stay byte-identical to the pre-batching ORB.
  if (config_.transport.batching.enabled || transport_.batched_messages() > 0) {
    reg.counter(p + ".transport.batches_sent").set(transport_.batches_sent());
    reg.counter(p + ".transport.batched_messages").set(transport_.batched_messages());
    reg.counter(p + ".transport.batches_delivered").set(transport_.batches_delivered());
  }
  reg.counter(p + ".interceptor.client_vetoed").set(stats_.client_vetoed);
  reg.counter(p + ".interceptor.server_vetoed").set(stats_.server_vetoed);
  reg.counter(p + ".interceptor.deadline_dropped").set(stats_.deadline_dropped);
  reg.counter(p + ".interceptor.deadline_missed").set(stats_.deadline_missed);
  reg.counter(p + ".interceptor.retries").set(stats_.retries);
  for (const auto& entry : client_chain_) {
    const std::string base = p + ".interceptor.client." + entry.icpt->name();
    reg.counter(base + ".runs").set(entry.runs);
    reg.counter(base + ".vetoes").set(entry.vetoes);
  }
  for (const auto& entry : server_chain_) {
    const std::string base = p + ".interceptor.server." + entry.icpt->name();
    reg.counter(base + ".runs").set(entry.runs);
    reg.counter(base + ".vetoes").set(entry.vetoes);
  }
  for (const auto& [name, poa] : poas_) {
    const std::string base = p + ".poa." + name;
    reg.counter(base + ".dispatched").set(poa->dispatch_stats().dispatched);
    reg.counter(base + ".rejected").set(poa->dispatch_stats().rejected);
    reg.counter(base + ".collocated").set(poa->dispatch_stats().collocated);
  }
}

// --- client side -------------------------------------------------------------

void OrbEndpoint::invoke(const ObjectRef& ref, const std::string& operation,
                         std::vector<std::uint8_t> body, InvokeOptions options,
                         ResponseCallback cb) {
  if (!ref.valid()) throw BadParam("invoke on invalid object reference");
  if (!options.oneway && !cb) throw BadParam("twoway invoke requires a callback");
  invoke_internal(ref, operation, std::move(body), std::move(options), std::move(cb),
                  /*attempt=*/1, /*deadline=*/std::nullopt);
}

void OrbEndpoint::invoke_internal(const ObjectRef& ref, const std::string& operation,
                                  std::vector<std::uint8_t> body, InvokeOptions options,
                                  ResponseCallback cb, int attempt,
                                  std::optional<TimePoint> deadline) {
  const CorbaPriority resolved =
      options.priority.value_or(ref.priority_model == PriorityModel::ServerDeclared
                                    ? ref.server_priority
                                    : client_priority_);
  const std::uint32_t request_id = next_request_id_++;

  // Establish phase: QoS decisions (priority/DSCP/flow/deadline rewrites)
  // before any CPU cost is paid; the built-in priority stage maps the final
  // CORBA priority to the native band the marshal job runs at.
  ClientRequestContext ectx;
  ectx.ref = &ref;
  ectx.operation = &operation;
  ectx.options = &options;
  ectx.request_id = request_id;
  ectx.oneway = options.oneway;
  ectx.attempt = attempt;
  ectx.now = engine().now();
  ectx.priority = resolved;
  ectx.flow = options.flow;
  ectx.deadline = deadline;  // carried across retries
  ectx.retry = options.retry;
  ectx.body = &body;
  if (const auto st = run_client_establish(ectx); !st) {
    ++stats_.client_vetoed;
    if (st.error() == CompletionStatus::Timeout) {
      // Deadline already expired at establish time: the pipeline vetoed the
      // call before any cost was paid, but the application still missed it.
      ++stats_.deadline_missed;
      if (obs::TelemetryHub* th = engine().telemetry()) {
        th->on_deadline_miss(ectx.flow, engine().now());
      }
    }
    if (obs::TraceRecorder* tr = orb_tracer()) {
      tr->instant(obs::TraceCategory::Orb, "icpt.veto", obs_track_, engine().now(), 0,
                  {{"request_id", static_cast<double>(request_id)}});
    }
    // Vetoed invocations complete synchronously: no CPU or wire cost.
    if (!options.oneway && cb) cb(st.error(), {});
    return;
  }
  ectx.body = nullptr;

  const CorbaPriority priority = ectx.priority;
  const os::Priority native = ectx.native_priority;
  const Duration cost = marshal_cost(body.size() + operation.size() + 64);

  // A traced request gets one end-to-end id here; it rides in a GIOP
  // service context (next to the RT-CORBA priority) and on every fragment
  // packet, so all layers chain their events to this call.
  std::uint64_t trace_id = 0;
  const char* span_name = nullptr;
  if (obs::TraceRecorder* tr = orb_tracer()) {
    trace_id = tr->next_id();
    span_name = tr->intern("call " + operation);
    tr->async_begin(obs::TraceCategory::Orb, span_name, obs_track_, engine().now(),
                    trace_id,
                    {{"request_id", static_cast<double>(request_id)},
                     {"priority", static_cast<double>(priority)}});
  }

  // Materialized only when another attempt is still possible, so the
  // common (no-retry) path stays allocation-free.
  std::shared_ptr<RetryState> retry_state;
  if (!options.oneway && options.retry.enabled() && attempt < options.retry.max_attempts) {
    retry_state = std::make_shared<RetryState>(
        RetryState{ref, operation, body, options, attempt, ectx.deadline});
  }

  // Marshal on the client CPU at the request's native priority, run the
  // send_request (stamping) phase, then ship.
  cpu_.submit_for(
      cost, native,
      [this, ref, operation, body = std::move(body), options, cb = std::move(cb),
       priority, request_id, trace_id, span_name, attempt, deadline = ectx.deadline,
       dscp_override = ectx.dscp_override, flow = ectx.flow,
       flush_override = ectx.batch_flush_override,
       retry_state = std::move(retry_state)]() mutable {
        RequestHeader header;
        header.request_id = request_id;
        header.response_expected = !options.oneway;
        header.object_key = ref.object_key;
        header.operation = operation;

        ClientRequestContext ctx;
        ctx.ref = &ref;
        ctx.operation = &operation;
        ctx.options = &options;
        ctx.request_id = request_id;
        ctx.oneway = options.oneway;
        ctx.attempt = attempt;
        ctx.now = engine().now();
        ctx.priority = priority;
        ctx.dscp_override = dscp_override;
        ctx.flow = flow;
        ctx.deadline = deadline;
        ctx.batch_flush_override = flush_override;
        ctx.trace_id = trace_id;
        ctx.retry = options.retry;
        ctx.contexts = &header.contexts;
        if (const auto st = run_client_send(ctx); !st) {
          ++stats_.client_vetoed;
          if (trace_id != 0 && span_name != nullptr) {
            if (obs::TraceRecorder* tr = orb_tracer()) {
              tr->async_end(obs::TraceCategory::Orb, span_name, obs_track_,
                            engine().now(), trace_id, {{"veto", 1.0}});
            }
          }
          if (!options.oneway && cb) cb(st.error(), {});
          return;
        }

        auto buf = pool_.acquire();
        encode_request(header, body, *buf);
        pool_.note_message_size(buf->size());
        MessageBuffer bytes = CdrBufferPool::freeze(std::move(buf));
        ++stats_.requests_sent;
        const bool collocated = ref.node == node();
        if (collocated) ++stats_.collocated_calls;
        if (obs::TraceRecorder* tr = orb_tracer()) {
          tr->instant(obs::TraceCategory::Orb, "send", obs_track_, engine().now(),
                      trace_id, {{"bytes", static_cast<double>(bytes->size())}});
        }

        if (!options.oneway) {
          PendingRequest pending;
          pending.cb = std::move(cb);
          pending.priority = priority;
          pending.trace = trace_id;
          pending.span_name = span_name;
          pending.attempt = attempt;
          pending.retry = std::move(retry_state);
          pending.flow = ctx.flow;
          pending.sent_at = engine().now();
          pending.timeout = engine().after(options.timeout, [this, request_id] {
            const auto it = pending_.find(request_id);
            if (it == pending_.end()) return;
            auto callback = std::move(it->second.cb);
            const std::uint64_t trace = it->second.trace;
            const char* span = it->second.span_name;
            const int att = it->second.attempt;
            const net::FlowId flow = it->second.flow;
            auto retry = std::move(it->second.retry);
            pending_.erase(it);
            ++stats_.timeouts;
            ++stats_.deadline_missed;
            if (obs::TelemetryHub* th = engine().telemetry()) {
              th->on_deadline_miss(flow, engine().now(), trace);
            }
            if (trace != 0 && span != nullptr) {
              if (obs::TraceRecorder* tr = orb_tracer()) {
                tr->async_end(obs::TraceCategory::Orb, span, obs_track_, engine().now(),
                              trace, {{"timeout", 1.0}});
              }
            }
            complete_exception(std::move(callback), CompletionStatus::Timeout, att,
                               std::move(retry), trace);
          });
          pending_.emplace(request_id, std::move(pending));
        } else if (trace_id != 0 && span_name != nullptr) {
          // Oneways have no reply; the client span closes at the send.
          if (obs::TraceRecorder* tr = orb_tracer()) {
            tr->async_end(obs::TraceCategory::Orb, span_name, obs_track_,
                          engine().now(), trace_id);
          }
        }

        if (collocated) {
          // Collocation optimization (TAO-style): the target lives in this
          // ORB, so the request short-circuits the transport entirely —
          // same marshaling and dispatch semantics, zero wire time.
          on_message(node(), std::move(bytes));
        } else {
          transport_.send_message(ref.node, std::move(bytes), ctx.dscp, ctx.flow,
                                  trace_id, ctx.batch_flush_override);
        }
      });
}

void OrbEndpoint::complete_exception(ResponseCallback cb, CompletionStatus status,
                                     int attempt, std::shared_ptr<RetryState> retry_state,
                                     std::uint64_t trace) {
  ClientRequestContext ctx;
  ctx.attempt = attempt;
  ctx.now = engine().now();
  ctx.status = status;
  ctx.trace_id = trace;
  if (retry_state != nullptr) {
    ctx.ref = &retry_state->ref;
    ctx.operation = &retry_state->operation;
    ctx.options = &retry_state->options;
    ctx.retry = retry_state->options.retry;
    ctx.deadline = retry_state->deadline;
  }
  run_client_exception(ctx);

  if (ctx.retry_requested && retry_state != nullptr) {
    ++stats_.retries;
    if (obs::TelemetryHub* th = engine().telemetry()) {
      th->on_retry(retry_state->options.flow, engine().now());
    }
    if (obs::TraceRecorder* tr = orb_tracer()) {
      tr->instant(obs::TraceCategory::Orb, "icpt.retry", obs_track_, engine().now(),
                  trace,
                  {{"attempt", static_cast<double>(attempt + 1)},
                   {"backoff_us", static_cast<double>(ctx.retry_backoff.ns()) / 1e3}});
    }
    engine().after(ctx.retry_backoff,
                   [this, state = std::move(retry_state), cb = std::move(cb)]() mutable {
                     invoke_internal(state->ref, state->operation, state->body,
                                     state->options, std::move(cb), state->attempt + 1,
                                     state->deadline);
                   });
    return;
  }
  if (cb) cb(status, {});
}

// --- server side -------------------------------------------------------------

void OrbEndpoint::on_message(net::NodeId src, const MessageView& msg) {
  // Decode into the endpoint scratch: batched traffic hands us views into a
  // shared batch buffer, and this path re-parses headers without allocating
  // once the scratch's strings/contexts/body are warm.
  try {
    decode_into(decode_scratch_, msg.bytes());
  } catch (const MarshalError& e) {
    AQM_WARN() << "orb@" << net_.node_name(node()) << ": dropping malformed GIOP ("
               << e.what() << ")";
    return;
  }
  if (decode_scratch_.type == GiopMsgType::Request) {
    handle_request(src, decode_scratch_, msg.size());
  } else {
    handle_reply(decode_scratch_, msg.size());
  }
}

void OrbEndpoint::handle_request(net::NodeId src, GiopMessage& msg, std::size_t wire_size) {
  RequestHeader& header = msg.request;

  // object_key = "<poa>/<object-id>"
  const auto slash = header.object_key.find('/');
  Poa* poa = nullptr;
  std::shared_ptr<Servant> servant;
  if (slash != std::string::npos) {
    poa = find_poa(header.object_key.substr(0, slash));
    if (poa != nullptr) servant = poa->find(header.object_key.substr(slash + 1));
  }
  if (servant == nullptr) {
    AQM_DEBUG() << "orb@" << net_.node_name(node()) << ": no servant for key "
                << header.object_key;
    if (header.response_expected) {
      send_reply(src, header.request_id, ReplyStatus::SystemException,
                 encode_error_body(CompletionStatus::ObjectNotExist),
                 config_.default_priority);
    }
    return;
  }

  // Receive_request phase: the built-ins resolve priority / timestamp /
  // trace / deadline from the service contexts; a veto rejects the request
  // before any thread-pool or servant work is spent on it.
  ServerRequestContext rctx;
  rctx.operation = &header.operation;
  rctx.object_key = &header.object_key;
  rctx.poa = poa;
  rctx.request_id = header.request_id;
  rctx.response_expected = header.response_expected;
  rctx.collocated = src == node();
  rctx.client = src;
  rctx.now = engine().now();
  rctx.contexts = &header.contexts;
  if (const auto st = run_server_receive(rctx); !st) {
    ++stats_.server_vetoed;
    if (st.error() == CompletionStatus::Timeout) ++stats_.deadline_dropped;
    if (obs::TraceRecorder* tr = orb_tracer()) {
      tr->instant(obs::TraceCategory::Orb, "icpt.veto", obs_track_, engine().now(),
                  rctx.trace,
                  {{"request_id", static_cast<double>(header.request_id)},
                   {"status", static_cast<double>(st.error())}});
    }
    if (header.response_expected) {
      send_reply(src, header.request_id, ReplyStatus::SystemException,
                 encode_error_body(st.error()), rctx.priority, rctx.trace);
    }
    return;
  }

  const CorbaPriority priority = rctx.priority;
  const std::uint64_t trace = rctx.trace;
  if (rctx.collocated) ++poa->dispatch_stats().collocated;

  auto req = std::make_shared<ServerRequest>();
  req->operation = std::move(header.operation);
  req->body = std::move(msg.body);
  req->client = src;
  req->priority = priority;
  req->client_send_time = rctx.client_send_time;

  const Duration cost = demarshal_cost(wire_size) + servant->cpu_cost(*req);
  const bool response_expected = header.response_expected;
  const std::uint32_t request_id = header.request_id;

  // Reply channel, usable synchronously (after handle() returns) or
  // asynchronously via ServerRequest::defer(). Answers at most once, even
  // if a deferred replier races an exception reply.
  auto replied = std::make_shared<bool>(false);
  if (response_expected) {
    req->replier = [this, src, request_id, priority, trace,
                    replied](std::vector<std::uint8_t> reply_body) {
      if (*replied) return;
      *replied = true;
      send_reply(src, request_id, ReplyStatus::NoException, std::move(reply_body),
                 priority, trace);
    };
  }

  const bool accepted = poa->thread_pool().dispatch(
      priority, cost,
      [this, poa, servant, req, response_expected, request_id, src, replied, trace] {
        ++stats_.requests_dispatched;
        ++poa->dispatch_stats().dispatched;
        req->handled_at = engine().now();
        obs::TraceRecorder* tr = orb_tracer();
        if (tr != nullptr) {
          tr->instant(obs::TraceCategory::Orb, "dispatch", obs_track_, engine().now(),
                      trace,
                      {{"request_id", static_cast<double>(request_id)},
                       {"priority", static_cast<double>(req->priority)}});
          // Make the request's trace ambient while the servant runs, so
          // downstream effects (syscond updates, contract transitions,
          // reservations) chain their events to this request.
          tr->set_current(trace);
        }
        if (trace != 0) last_dispatch_trace_ = trace;
        ReplyStatus status = ReplyStatus::NoException;
        std::vector<std::uint8_t> reply_body;
        try {
          servant->handle(*req);
          reply_body = std::move(req->reply_body);
        } catch (const ObjectNotExist&) {
          status = ReplyStatus::SystemException;
          reply_body = encode_error_body(CompletionStatus::ObjectNotExist);
        } catch (const Transient&) {
          status = ReplyStatus::SystemException;
          reply_body = encode_error_body(CompletionStatus::Transient);
        } catch (const SystemException&) {
          status = ReplyStatus::SystemException;
          reply_body = encode_error_body(CompletionStatus::SystemError);
        }
        if (tr != nullptr) tr->set_current(0);
        if (!response_expected) return;
        if (status == ReplyStatus::NoException) {
          if (!req->deferred()) req->replier(std::move(reply_body));
          // deferred: the servant's replier fires later.
        } else if (!*replied) {
          // Exceptions answer immediately, deferred or not.
          *replied = true;
          send_reply(src, request_id, status, std::move(reply_body), req->priority,
                     trace);
        }
      });

  if (!accepted) {
    ++stats_.dispatch_rejected;
    ++poa->dispatch_stats().rejected;
    if (obs::TraceRecorder* tr = orb_tracer()) {
      tr->instant(obs::TraceCategory::Orb, "dispatch.reject", obs_track_,
                  engine().now(), trace,
                  {{"priority", static_cast<double>(priority)}});
    }
    if (response_expected) {
      send_reply(src, request_id, ReplyStatus::SystemException,
                 encode_error_body(CompletionStatus::Transient), priority, trace);
    }
  }
}

void OrbEndpoint::send_reply(net::NodeId client, std::uint32_t request_id,
                             ReplyStatus status, std::vector<std::uint8_t> body,
                             CorbaPriority priority, std::uint64_t trace) {
  const os::Priority native = priority_mappings_.to_native(priority);
  const Duration cost = marshal_cost(body.size() + 32);
  cpu_.submit_for(
      cost, native,
      [this, client, request_id, status, body = std::move(body), priority, trace] {
        ReplyHeader header;
        header.request_id = request_id;
        header.status = status;

        // Send_reply phase: built-in stampers append the reply's service
        // contexts and derive the egress DSCP from the reply priority.
        ServerRequestContext rctx;
        rctx.request_id = request_id;
        rctx.response_expected = true;
        rctx.client = client;
        rctx.now = engine().now();
        rctx.priority = priority;
        rctx.trace = trace;
        rctx.reply_contexts = &header.contexts;
        rctx.reply_status = status;
        if (const auto st = run_server_reply(rctx); !st) {
          // Reply suppressed: the client sees a timeout.
          ++stats_.server_vetoed;
          return;
        }

        auto buf = pool_.acquire();
        encode_reply(header, body, *buf);
        pool_.note_message_size(buf->size());
        MessageBuffer bytes = CdrBufferPool::freeze(std::move(buf));
        if (obs::TraceRecorder* tr = orb_tracer()) {
          tr->instant(obs::TraceCategory::Orb, "reply.send", obs_track_, engine().now(),
                      trace, {{"bytes", static_cast<double>(bytes->size())}});
        }
        transport_.send_message(client, std::move(bytes), rctx.reply_dscp, net::kNoFlow,
                                trace);
      });
}

void OrbEndpoint::handle_reply(GiopMessage& msg, std::size_t wire_size) {
  const auto it = pending_.find(msg.reply.request_id);
  if (it == pending_.end()) return;  // late reply after timeout: drop
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);
  engine().cancel(pending.timeout);

  const os::Priority native = priority_mappings_.to_native(pending.priority);
  const Duration cost = demarshal_cost(wire_size);
  const ReplyStatus status = msg.reply.status;
  if (obs::TraceRecorder* tr = orb_tracer()) {
    tr->instant(obs::TraceCategory::Orb, "reply.recv", obs_track_, engine().now(),
                pending.trace, {{"bytes", static_cast<double>(wire_size)}});
  }
  cpu_.submit_for(
      cost, native,
      [this, cb = std::move(pending.cb), status, trace = pending.trace,
       span = pending.span_name, attempt = pending.attempt,
       retry_state = std::move(pending.retry), priority = pending.priority,
       flow = pending.flow, sent_at = pending.sent_at,
       request_id = msg.reply.request_id, body = std::move(msg.body)]() mutable {
        // The client call span closes once the reply is
        // demarshaled — end-to-end latency as the app sees it.
        if (trace != 0 && span != nullptr) {
          if (obs::TraceRecorder* tr = orb_tracer()) {
            tr->async_end(obs::TraceCategory::Orb, span, obs_track_, engine().now(),
                          trace,
                          {{"ok", status == ReplyStatus::NoException ? 1.0 : 0.0}});
          }
        }
        if (status == ReplyStatus::NoException) {
          ++stats_.replies_ok;
          if (obs::TelemetryHub* th = engine().telemetry()) {
            th->on_call(flow, engine().now(), (engine().now() - sent_at).millis(),
                        trace);
          }
          ClientRequestContext ctx;
          ctx.request_id = request_id;
          ctx.attempt = attempt;
          ctx.now = engine().now();
          ctx.priority = priority;
          ctx.trace_id = trace;
          ctx.status = CompletionStatus::Ok;
          if (retry_state != nullptr) {
            ctx.ref = &retry_state->ref;
            ctx.operation = &retry_state->operation;
            ctx.options = &retry_state->options;
            ctx.retry = retry_state->options.retry;
            ctx.deadline = retry_state->deadline;
          }
          run_client_reply(ctx);
          cb(CompletionStatus::Ok, std::move(body));
        } else {
          ++stats_.replies_error;
          complete_exception(std::move(cb), decode_error_body(body), attempt,
                             std::move(retry_state), trace);
        }
      });
}

// --- ObjectStub --------------------------------------------------------------

void ObjectStub::invoke_with_binding(const std::string& operation,
                                     std::vector<std::uint8_t> body, bool oneway,
                                     OrbEndpoint::ResponseCallback cb, Duration timeout) {
  InvokeOptions options;
  options.oneway = oneway;
  options.timeout = timeout;
  options.flow = flow_;
  options.priority = priority_;
  options.deadline = deadline_;
  options.retry = retry_;
  orb_->invoke(ref_, operation, std::move(body), std::move(options), std::move(cb));
}

void ObjectStub::oneway(const std::string& operation, std::vector<std::uint8_t> body) {
  invoke_with_binding(operation, std::move(body), /*oneway=*/true, nullptr, seconds(2));
}

void ObjectStub::twoway(const std::string& operation, std::vector<std::uint8_t> body,
                        OrbEndpoint::ResponseCallback cb, Duration timeout) {
  invoke_with_binding(operation, std::move(body), /*oneway=*/false, std::move(cb),
                      timeout);
}

}  // namespace aqm::orb

#include "orb/orb.hpp"

#include <cassert>
#include <utility>

#include "common/log.hpp"

namespace aqm::orb {
namespace {

/// Encodes a CompletionStatus code as an exception reply body.
std::vector<std::uint8_t> encode_error_body(CompletionStatus status) {
  CdrWriter w;
  w.write_u32(static_cast<std::uint32_t>(status));
  return w.take();
}

CompletionStatus decode_error_body(const std::vector<std::uint8_t>& body) {
  try {
    CdrReader r(body);
    const auto code = r.read_u32();
    if (code > static_cast<std::uint32_t>(CompletionStatus::SystemError)) {
      return CompletionStatus::SystemError;
    }
    return static_cast<CompletionStatus>(code);
  } catch (const MarshalError&) {
    return CompletionStatus::SystemError;
  }
}

}  // namespace

OrbEndpoint::OrbEndpoint(net::Network& net, net::NodeId node, os::Cpu& cpu, OrbConfig config)
    : net_(net), cpu_(cpu), config_(config), transport_(net, node, config.transport) {
  transport_.set_message_handler(
      [this](net::NodeId src, MessageBuffer msg) { on_message(src, std::move(msg)); });
}

Poa& OrbEndpoint::create_poa(const std::string& name, PoaPolicies policies) {
  assert(poas_.count(name) == 0 && "POA already exists");
  auto poa = std::make_unique<Poa>(*this, name, std::move(policies));
  Poa& ref = *poa;
  poas_[name] = std::move(poa);
  return ref;
}

Poa* OrbEndpoint::find_poa(const std::string& name) {
  const auto it = poas_.find(name);
  return it == poas_.end() ? nullptr : it->second.get();
}

Duration OrbEndpoint::marshal_cost(std::size_t bytes) const {
  return config_.marshal_base +
         config_.marshal_per_kb * static_cast<std::int64_t>(bytes / 1024);
}

Duration OrbEndpoint::demarshal_cost(std::size_t bytes) const {
  return config_.demux_base +
         config_.demarshal_per_kb * static_cast<std::int64_t>(bytes / 1024);
}

net::Dscp OrbEndpoint::dscp_for(const ObjectRef& ref, CorbaPriority priority) const {
  if (ref.protocol.dscp) return *ref.protocol.dscp;
  return dscp_mappings_.to_dscp(priority);
}

obs::TraceRecorder* OrbEndpoint::orb_tracer() {
  obs::TraceRecorder* tr = engine().tracer_for(obs::TraceCategory::Orb);
  if (tr != nullptr && obs_bound_ != tr) {
    obs_track_ = tr->track("orb:" + net_.node_name(node()));
    obs_bound_ = tr;
  }
  return tr;
}

void OrbEndpoint::export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.counter(p + ".requests_sent").set(stats_.requests_sent);
  reg.counter(p + ".requests_dispatched").set(stats_.requests_dispatched);
  reg.counter(p + ".replies_ok").set(stats_.replies_ok);
  reg.counter(p + ".replies_error").set(stats_.replies_error);
  reg.counter(p + ".timeouts").set(stats_.timeouts);
  reg.counter(p + ".dispatch_rejected").set(stats_.dispatch_rejected);
  reg.counter(p + ".collocated_calls").set(stats_.collocated_calls);
  reg.counter(p + ".messages_expired").set(transport_.messages_expired());
}

void OrbEndpoint::invoke(const ObjectRef& ref, const std::string& operation,
                         std::vector<std::uint8_t> body, InvokeOptions options,
                         ResponseCallback cb) {
  if (!ref.valid()) throw BadParam("invoke on invalid object reference");
  if (!options.oneway && !cb) throw BadParam("twoway invoke requires a callback");

  const CorbaPriority priority =
      options.priority.value_or(ref.priority_model == PriorityModel::ServerDeclared
                                    ? ref.server_priority
                                    : client_priority_);
  const std::uint32_t request_id = next_request_id_++;
  const os::Priority native = priority_mappings_.to_native(priority);
  const Duration cost = marshal_cost(body.size() + operation.size() + 64);

  // A traced request gets one end-to-end id here; it rides in a GIOP
  // service context (next to the RT-CORBA priority) and on every fragment
  // packet, so all layers chain their events to this call.
  std::uint64_t trace_id = 0;
  const char* span_name = nullptr;
  if (obs::TraceRecorder* tr = orb_tracer()) {
    trace_id = tr->next_id();
    span_name = tr->intern("call " + operation);
    tr->async_begin(obs::TraceCategory::Orb, span_name, obs_track_, engine().now(),
                    trace_id,
                    {{"request_id", static_cast<double>(request_id)},
                     {"priority", static_cast<double>(priority)}});
  }

  // Marshal on the client CPU at the request's native priority, then ship.
  cpu_.submit_for(
      cost, native,
      [this, ref, operation, body = std::move(body), options, cb = std::move(cb),
       priority, request_id, trace_id, span_name]() mutable {
        RequestHeader header;
        header.request_id = request_id;
        header.response_expected = !options.oneway;
        header.object_key = ref.object_key;
        header.operation = operation;
        header.contexts.push_back(make_priority_context(priority));
        header.contexts.push_back(make_timestamp_context(engine().now()));
        if (trace_id != 0) header.contexts.push_back(make_trace_context(trace_id));

        auto buf = pool_.acquire();
        encode_request(header, body, *buf);
        pool_.note_message_size(buf->size());
        MessageBuffer bytes = CdrBufferPool::freeze(std::move(buf));
        ++stats_.requests_sent;
        const bool collocated = ref.node == node();
        if (collocated) ++stats_.collocated_calls;
        if (obs::TraceRecorder* tr = orb_tracer()) {
          tr->instant(obs::TraceCategory::Orb, "send", obs_track_, engine().now(),
                      trace_id, {{"bytes", static_cast<double>(bytes->size())}});
        }

        if (!options.oneway) {
          PendingRequest pending;
          pending.cb = std::move(cb);
          pending.priority = priority;
          pending.trace = trace_id;
          pending.span_name = span_name;
          pending.timeout = engine().after(options.timeout, [this, request_id] {
            const auto it = pending_.find(request_id);
            if (it == pending_.end()) return;
            auto callback = std::move(it->second.cb);
            const std::uint64_t trace = it->second.trace;
            const char* span = it->second.span_name;
            pending_.erase(it);
            ++stats_.timeouts;
            if (trace != 0 && span != nullptr) {
              if (obs::TraceRecorder* tr = orb_tracer()) {
                tr->async_end(obs::TraceCategory::Orb, span, obs_track_, engine().now(),
                              trace, {{"timeout", 1.0}});
              }
            }
            callback(CompletionStatus::Timeout, {});
          });
          pending_.emplace(request_id, std::move(pending));
        } else if (trace_id != 0 && span_name != nullptr) {
          // Oneways have no reply; the client span closes at the send.
          if (obs::TraceRecorder* tr = orb_tracer()) {
            tr->async_end(obs::TraceCategory::Orb, span_name, obs_track_,
                          engine().now(), trace_id);
          }
        }

        if (collocated) {
          // Collocation optimization (TAO-style): the target lives in this
          // ORB, so the request short-circuits the transport entirely —
          // same marshaling and dispatch semantics, zero wire time.
          on_message(node(), std::move(bytes));
        } else {
          transport_.send_message(ref.node, std::move(bytes), dscp_for(ref, priority),
                                  options.flow, trace_id);
        }
      });
}

void OrbEndpoint::on_message(net::NodeId src, MessageBuffer msg) {
  GiopMessage decoded;
  try {
    decoded = decode(*msg);
  } catch (const MarshalError& e) {
    AQM_WARN() << "orb@" << net_.node_name(node()) << ": dropping malformed GIOP ("
               << e.what() << ")";
    return;
  }
  if (decoded.type == GiopMsgType::Request) {
    handle_request(src, std::move(decoded), msg->size());
  } else {
    handle_reply(std::move(decoded), msg->size());
  }
}

void OrbEndpoint::handle_request(net::NodeId src, GiopMessage msg, std::size_t wire_size) {
  RequestHeader& header = msg.request;

  // object_key = "<poa>/<object-id>"
  const auto slash = header.object_key.find('/');
  Poa* poa = nullptr;
  std::shared_ptr<Servant> servant;
  if (slash != std::string::npos) {
    poa = find_poa(header.object_key.substr(0, slash));
    if (poa != nullptr) servant = poa->find(header.object_key.substr(slash + 1));
  }
  if (servant == nullptr) {
    AQM_DEBUG() << "orb@" << net_.node_name(node()) << ": no servant for key "
                << header.object_key;
    if (header.response_expected) {
      send_reply(src, header.request_id, ReplyStatus::SystemException,
                 encode_error_body(CompletionStatus::ObjectNotExist),
                 config_.default_priority);
    }
    return;
  }

  const CorbaPriority priority =
      poa->policies().priority_model == PriorityModel::ServerDeclared
          ? poa->policies().server_priority
          : find_priority(header.contexts).value_or(config_.default_priority);

  auto req = std::make_shared<ServerRequest>();
  req->operation = std::move(header.operation);
  req->body = std::move(msg.body);
  req->client = src;
  req->priority = priority;
  req->client_send_time = find_timestamp(header.contexts);
  const std::uint64_t trace = find_trace(header.contexts).value_or(0);

  const Duration cost = demarshal_cost(wire_size) + servant->cpu_cost(*req);
  const bool response_expected = header.response_expected;
  const std::uint32_t request_id = header.request_id;

  // Reply channel, usable synchronously (after handle() returns) or
  // asynchronously via ServerRequest::defer(). Answers at most once, even
  // if a deferred replier races an exception reply.
  auto replied = std::make_shared<bool>(false);
  if (response_expected) {
    req->replier = [this, src, request_id, priority, trace,
                    replied](std::vector<std::uint8_t> reply_body) {
      if (*replied) return;
      *replied = true;
      send_reply(src, request_id, ReplyStatus::NoException, std::move(reply_body),
                 priority, trace);
    };
  }

  const bool accepted = poa->thread_pool().dispatch(
      priority, cost,
      [this, servant, req, response_expected, request_id, src, replied, trace] {
        ++stats_.requests_dispatched;
        req->handled_at = engine().now();
        obs::TraceRecorder* tr = orb_tracer();
        if (tr != nullptr) {
          tr->instant(obs::TraceCategory::Orb, "dispatch", obs_track_, engine().now(),
                      trace,
                      {{"request_id", static_cast<double>(request_id)},
                       {"priority", static_cast<double>(req->priority)}});
          // Make the request's trace ambient while the servant runs, so
          // downstream effects (syscond updates, contract transitions,
          // reservations) chain their events to this request.
          tr->set_current(trace);
        }
        if (trace != 0) last_dispatch_trace_ = trace;
        ReplyStatus status = ReplyStatus::NoException;
        std::vector<std::uint8_t> reply_body;
        try {
          servant->handle(*req);
          reply_body = std::move(req->reply_body);
        } catch (const ObjectNotExist&) {
          status = ReplyStatus::SystemException;
          reply_body = encode_error_body(CompletionStatus::ObjectNotExist);
        } catch (const Transient&) {
          status = ReplyStatus::SystemException;
          reply_body = encode_error_body(CompletionStatus::Transient);
        } catch (const SystemException&) {
          status = ReplyStatus::SystemException;
          reply_body = encode_error_body(CompletionStatus::SystemError);
        }
        if (tr != nullptr) tr->set_current(0);
        if (!response_expected) return;
        if (status == ReplyStatus::NoException) {
          if (!req->deferred()) req->replier(std::move(reply_body));
          // deferred: the servant's replier fires later.
        } else if (!*replied) {
          // Exceptions answer immediately, deferred or not.
          *replied = true;
          send_reply(src, request_id, status, std::move(reply_body), req->priority,
                     trace);
        }
      });

  if (!accepted) {
    ++stats_.dispatch_rejected;
    if (obs::TraceRecorder* tr = orb_tracer()) {
      tr->instant(obs::TraceCategory::Orb, "dispatch.reject", obs_track_,
                  engine().now(), trace,
                  {{"priority", static_cast<double>(priority)}});
    }
    if (response_expected) {
      send_reply(src, request_id, ReplyStatus::SystemException,
                 encode_error_body(CompletionStatus::Transient), priority, trace);
    }
  }
}

void OrbEndpoint::send_reply(net::NodeId client, std::uint32_t request_id,
                             ReplyStatus status, std::vector<std::uint8_t> body,
                             CorbaPriority priority, std::uint64_t trace) {
  const os::Priority native = priority_mappings_.to_native(priority);
  const Duration cost = marshal_cost(body.size() + 32);
  cpu_.submit_for(
      cost, native,
      [this, client, request_id, status, body = std::move(body), priority, trace] {
        ReplyHeader header;
        header.request_id = request_id;
        header.status = status;
        header.contexts.push_back(make_priority_context(priority));
        header.contexts.push_back(make_timestamp_context(engine().now()));
        if (trace != 0) header.contexts.push_back(make_trace_context(trace));
        auto buf = pool_.acquire();
        encode_reply(header, body, *buf);
        pool_.note_message_size(buf->size());
        MessageBuffer bytes = CdrBufferPool::freeze(std::move(buf));
        if (obs::TraceRecorder* tr = orb_tracer()) {
          tr->instant(obs::TraceCategory::Orb, "reply.send", obs_track_, engine().now(),
                      trace, {{"bytes", static_cast<double>(bytes->size())}});
        }
        // Replies inherit the priority-derived DSCP.
        transport_.send_message(client, std::move(bytes),
                                dscp_mappings_.to_dscp(priority), net::kNoFlow, trace);
      });
}

void OrbEndpoint::handle_reply(GiopMessage msg, std::size_t wire_size) {
  const auto it = pending_.find(msg.reply.request_id);
  if (it == pending_.end()) return;  // late reply after timeout: drop
  PendingRequest pending = std::move(it->second);
  pending_.erase(it);
  engine().cancel(pending.timeout);

  const os::Priority native = priority_mappings_.to_native(pending.priority);
  const Duration cost = demarshal_cost(wire_size);
  const ReplyStatus status = msg.reply.status;
  if (obs::TraceRecorder* tr = orb_tracer()) {
    tr->instant(obs::TraceCategory::Orb, "reply.recv", obs_track_, engine().now(),
                pending.trace, {{"bytes", static_cast<double>(wire_size)}});
  }
  cpu_.submit_for(cost, native,
                  [this, cb = std::move(pending.cb), status, trace = pending.trace,
                   span = pending.span_name, body = std::move(msg.body)]() mutable {
                    // The client call span closes once the reply is
                    // demarshaled — end-to-end latency as the app sees it.
                    if (trace != 0 && span != nullptr) {
                      if (obs::TraceRecorder* tr = orb_tracer()) {
                        tr->async_end(obs::TraceCategory::Orb, span, obs_track_,
                                      engine().now(), trace,
                                      {{"ok", status == ReplyStatus::NoException
                                                  ? 1.0
                                                  : 0.0}});
                      }
                    }
                    if (status == ReplyStatus::NoException) {
                      ++stats_.replies_ok;
                      cb(CompletionStatus::Ok, std::move(body));
                    } else {
                      ++stats_.replies_error;
                      cb(decode_error_body(body), {});
                    }
                  });
}

void ObjectStub::oneway(const std::string& operation, std::vector<std::uint8_t> body) {
  InvokeOptions options;
  options.oneway = true;
  options.flow = flow_;
  options.priority = priority_;
  orb_->invoke(ref_, operation, std::move(body), options);
}

void ObjectStub::twoway(const std::string& operation, std::vector<std::uint8_t> body,
                        OrbEndpoint::ResponseCallback cb, Duration timeout) {
  InvokeOptions options;
  options.oneway = false;
  options.timeout = timeout;
  options.flow = flow_;
  options.priority = priority_;
  orb_->invoke(ref_, operation, std::move(body), options, std::move(cb));
}

}  // namespace aqm::orb

#include "orb/rt/threadpool.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::orb::rt {

ThreadPool::ThreadPool(os::Cpu& cpu, const PriorityMappingManager& mapping,
                       std::vector<ThreadpoolLane> lanes)
    : cpu_(cpu), mapping_(mapping) {
  assert(!lanes.empty());
  std::sort(lanes.begin(), lanes.end(),
            [](const ThreadpoolLane& a, const ThreadpoolLane& b) {
              return a.lane_priority < b.lane_priority;
            });
  lanes_.reserve(lanes.size());
  for (auto& l : lanes) {
    assert(l.static_threads > 0);
    lanes_.push_back(Lane{l, 0, {}});
  }
}

std::size_t ThreadPool::lane_for(CorbaPriority priority) const {
  // Highest lane priority <= request priority; lowest lane as fallback.
  // Lanes are sorted ascending by priority at construction, so this is a
  // binary search: first lane above the request, then step back one.
  const auto above = std::upper_bound(
      lanes_.begin(), lanes_.end(), priority,
      [](CorbaPriority p, const Lane& lane) { return p < lane.spec.lane_priority; });
  if (above == lanes_.begin()) return 0;
  return static_cast<std::size_t>(above - lanes_.begin()) - 1;
}

bool ThreadPool::dispatch(CorbaPriority priority, Duration cpu_cost,
                          std::function<void()> on_complete) {
  const std::size_t idx = lane_for(priority);
  Lane& lane = lanes_[idx];
  Pending work{priority, cpu_cost, std::move(on_complete)};
  if (lane.busy < lane.spec.static_threads) {
    run(idx, std::move(work));
    return true;
  }
  if (lane.queue.size() >= lane.spec.max_queue) {
    ++rejected_;
    return false;
  }
  lane.queue.push_back(std::move(work));
  return true;
}

void ThreadPool::run(std::size_t lane_idx, Pending work) {
  Lane& lane = lanes_[lane_idx];
  ++lane.busy;
  const os::Priority native = mapping_.to_native(work.priority);
  cpu_.submit_for(work.cpu_cost, native,
                  [this, lane_idx, fn = std::move(work.on_complete)] {
                    ++completed_;
                    if (fn) fn();
                    on_thread_free(lane_idx);
                  });
}

void ThreadPool::on_thread_free(std::size_t lane_idx) {
  Lane& lane = lanes_[lane_idx];
  assert(lane.busy > 0);
  --lane.busy;
  if (lane.queue.empty()) return;
  Pending next = std::move(lane.queue.front());
  lane.queue.pop_front();
  run(lane_idx, std::move(next));
}

}  // namespace aqm::orb::rt

// RT-CORBA priority -> DiffServ codepoint mapping.
//
// This is the paper's second TAO enhancement (Section 3.2): "a mechanism to
// map RT-CORBA priorities to DiffServ network priorities. The TAO ORB
// provides a priority-mapping manager that supports installation of a
// custom mapping to override the default mapping."
#pragma once

#include <map>
#include <memory>

#include "net/dscp.hpp"
#include "orb/types.hpp"

namespace aqm::orb::rt {

class DscpMapping {
 public:
  virtual ~DscpMapping() = default;
  [[nodiscard]] virtual net::Dscp to_dscp(CorbaPriority corba) const = 0;
};

/// Default mapping: all traffic best effort (network prioritization is
/// opt-in, as in the paper's control runs).
class BestEffortDscpMapping final : public DscpMapping {
 public:
  [[nodiscard]] net::Dscp to_dscp(CorbaPriority) const override {
    return net::dscp::kBestEffort;
  }
};

/// Banded mapping: thresholds on the CORBA priority select codepoints of
/// increasing service class.
class BandedDscpMapping final : public DscpMapping {
 public:
  /// Default bands: [0,8k) BE, [8k,16k) AF11, [16k,24k) AF21,
  /// [24k,28k) AF41, [28k,32k] EF.
  BandedDscpMapping();

  /// Custom bands: map from lowest CORBA priority of the band to its DSCP.
  explicit BandedDscpMapping(std::map<CorbaPriority, net::Dscp> bands);

  [[nodiscard]] net::Dscp to_dscp(CorbaPriority corba) const override;

 private:
  std::map<CorbaPriority, net::Dscp> bands_;  // band lower bound -> dscp
};

class DscpMappingManager {
 public:
  DscpMappingManager();

  /// Replaces the active mapping. Passing nullptr restores the default.
  void install(std::unique_ptr<DscpMapping> mapping);

  [[nodiscard]] net::Dscp to_dscp(CorbaPriority corba) const { return active_->to_dscp(corba); }

 private:
  std::unique_ptr<DscpMapping> active_;
};

}  // namespace aqm::orb::rt

#include "orb/rt/priority_mapping.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::orb::rt {

LinearPriorityMapping::LinearPriorityMapping(os::Priority native_min, os::Priority native_max)
    : min_(native_min), max_(native_max) {
  assert(native_min < native_max);
}

os::Priority LinearPriorityMapping::to_native(CorbaPriority corba) const {
  corba = std::clamp(corba, kMinCorbaPriority, kMaxCorbaPriority);
  const auto span = static_cast<std::int64_t>(max_ - min_);
  return min_ + static_cast<os::Priority>(static_cast<std::int64_t>(corba) * span /
                                          kMaxCorbaPriority);
}

CorbaPriority LinearPriorityMapping::to_corba(os::Priority native) const {
  native = std::clamp(native, min_, max_);
  const auto span = static_cast<std::int64_t>(max_ - min_);
  if (span == 0) return kMinCorbaPriority;
  return static_cast<CorbaPriority>(static_cast<std::int64_t>(native - min_) *
                                    kMaxCorbaPriority / span);
}

std::unique_ptr<PriorityMapping> make_qnx_mapping() {
  return std::make_unique<LinearPriorityMapping>(1, 31);
}

std::unique_ptr<PriorityMapping> make_lynxos_mapping() {
  return std::make_unique<LinearPriorityMapping>(0, 255);
}

std::unique_ptr<PriorityMapping> make_solaris_rt_mapping() {
  return std::make_unique<LinearPriorityMapping>(100, 159);
}

PriorityMappingManager::PriorityMappingManager()
    : active_(std::make_unique<LinearPriorityMapping>()) {}

void PriorityMappingManager::install(std::unique_ptr<PriorityMapping> mapping) {
  active_ = mapping ? std::move(mapping) : std::make_unique<LinearPriorityMapping>();
}

}  // namespace aqm::orb::rt

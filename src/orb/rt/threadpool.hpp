// RT-CORBA thread pools with lanes.
//
// A lane owns a fixed number of "threads" at a lane priority and a bounded
// request queue (RT-CORBA's bounded buffering of requests). A request is
// dispatched into the lane with the highest lane priority <= the request's
// CORBA priority (or the lowest lane if none qualifies). While a lane has a
// free thread the request's CPU work is submitted immediately; otherwise it
// waits in the lane queue, and is rejected (TRANSIENT) when the queue is
// full. CLIENT_PROPAGATED requests execute at the *request's* mapped native
// priority; SERVER_DECLARED ones arrive already carrying the declared
// priority, so the same rule applies.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/time.hpp"
#include "os/cpu.hpp"
#include "orb/rt/priority_mapping.hpp"
#include "orb/types.hpp"

namespace aqm::orb::rt {

struct ThreadpoolLane {
  CorbaPriority lane_priority = 0;
  unsigned static_threads = 1;
  std::size_t max_queue = 64;  // pending requests beyond the busy threads
};

class ThreadPool {
 public:
  /// `lanes` must be non-empty; they are sorted by lane priority internally.
  ThreadPool(os::Cpu& cpu, const PriorityMappingManager& mapping,
             std::vector<ThreadpoolLane> lanes);

  /// Submits request work costing `cpu_cost` at `priority`. `on_complete`
  /// runs when the work finishes. Returns false when the chosen lane's
  /// queue is full (the caller should answer TRANSIENT).
  bool dispatch(CorbaPriority priority, Duration cpu_cost, std::function<void()> on_complete);

  [[nodiscard]] std::size_t lane_count() const { return lanes_.size(); }
  [[nodiscard]] std::size_t queued(std::size_t lane) const { return lanes_.at(lane).queue.size(); }
  [[nodiscard]] unsigned busy(std::size_t lane) const { return lanes_.at(lane).busy; }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

  /// Index of the lane a request of this priority lands in.
  [[nodiscard]] std::size_t lane_for(CorbaPriority priority) const;

 private:
  struct Pending {
    CorbaPriority priority;
    Duration cpu_cost;
    std::function<void()> on_complete;
  };
  struct Lane {
    ThreadpoolLane spec;
    unsigned busy = 0;
    std::deque<Pending> queue;
  };

  void run(std::size_t lane_idx, Pending work);
  void on_thread_free(std::size_t lane_idx);

  os::Cpu& cpu_;
  const PriorityMappingManager& mapping_;
  std::vector<Lane> lanes_;  // sorted ascending by lane_priority
  std::uint64_t rejected_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace aqm::orb::rt

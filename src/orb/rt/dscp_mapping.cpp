#include "orb/rt/dscp_mapping.hpp"

#include <cassert>

namespace aqm::orb::rt {

BandedDscpMapping::BandedDscpMapping()
    : bands_{{0, net::dscp::kBestEffort},
             {8'000, net::dscp::kAf11},
             {16'000, net::dscp::kAf21},
             {24'000, net::dscp::kAf41},
             {28'000, net::dscp::kEf}} {}

BandedDscpMapping::BandedDscpMapping(std::map<CorbaPriority, net::Dscp> bands)
    : bands_(std::move(bands)) {
  assert(!bands_.empty());
}

net::Dscp BandedDscpMapping::to_dscp(CorbaPriority corba) const {
  auto it = bands_.upper_bound(corba);
  if (it == bands_.begin()) return net::dscp::kBestEffort;
  --it;
  return it->second;
}

DscpMappingManager::DscpMappingManager() : active_(std::make_unique<BestEffortDscpMapping>()) {}

void DscpMappingManager::install(std::unique_ptr<DscpMapping> mapping) {
  active_ = mapping ? std::move(mapping) : std::make_unique<BestEffortDscpMapping>();
}

}  // namespace aqm::orb::rt

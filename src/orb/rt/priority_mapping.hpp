// RT-CORBA priority mappings: translate platform-independent CORBA
// priorities [0, 32767] to native OS priorities and back. A
// PriorityMappingManager allows installation of a custom mapping, exactly
// like the TAO extension the paper describes for its DiffServ work.
#pragma once

#include <memory>

#include "os/priority.hpp"
#include "orb/types.hpp"

namespace aqm::orb::rt {

class PriorityMapping {
 public:
  virtual ~PriorityMapping() = default;
  [[nodiscard]] virtual os::Priority to_native(CorbaPriority corba) const = 0;
  [[nodiscard]] virtual CorbaPriority to_corba(os::Priority native) const = 0;
};

/// Default: linear scaling of [0, 32767] onto [kMinPriority, kMaxPriority].
class LinearPriorityMapping final : public PriorityMapping {
 public:
  LinearPriorityMapping(os::Priority native_min = os::kMinPriority,
                        os::Priority native_max = os::kMaxPriority);

  [[nodiscard]] os::Priority to_native(CorbaPriority corba) const override;
  [[nodiscard]] CorbaPriority to_corba(os::Priority native) const override;

 private:
  os::Priority min_;
  os::Priority max_;
};

// --- per-OS mappings (paper Figure 2) -------------------------------------------
//
// Each RTOS exposes a different native priority range, so the same CORBA
// priority lands on a different native value per host while the
// RTCorbaPriority service context carries the platform-independent value
// end to end (the paper's example: CORBA 100 -> QNX 16 / LynxOS 128 /
// Solaris 136). These factories produce mappings confined to each OS's
// real-time band.

/// QNX Neutrino: priorities 1..31.
[[nodiscard]] std::unique_ptr<PriorityMapping> make_qnx_mapping();
/// LynxOS: priorities 0..255.
[[nodiscard]] std::unique_ptr<PriorityMapping> make_lynxos_mapping();
/// Solaris RT scheduling class: global priorities 100..159.
[[nodiscard]] std::unique_ptr<PriorityMapping> make_solaris_rt_mapping();

/// Holds the active mapping; supports installing a custom one at run time
/// (TAO's priority-mapping manager).
class PriorityMappingManager {
 public:
  PriorityMappingManager();

  /// Replaces the active mapping. Passing nullptr restores the default.
  void install(std::unique_ptr<PriorityMapping> mapping);

  [[nodiscard]] const PriorityMapping& mapping() const { return *active_; }
  [[nodiscard]] os::Priority to_native(CorbaPriority corba) const {
    return active_->to_native(corba);
  }
  [[nodiscard]] CorbaPriority to_corba(os::Priority native) const {
    return active_->to_corba(native);
  }

 private:
  std::unique_ptr<PriorityMapping> active_;
};

}  // namespace aqm::orb::rt

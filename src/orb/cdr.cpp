#include "orb/cdr.hpp"

namespace aqm::orb {

using detail::byteswap;
using detail::kHostLittle;

// --- CdrWriter ---------------------------------------------------------------

void CdrWriter::write_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  write_u32(bits);
}

void CdrWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  write_u64(bits);
}

void CdrWriter::write_string(std::string_view s) {
  // One growth for prefix (+ alignment slack) + bytes + NUL instead of
  // letting the vector grow piecemeal.
  grow(buf_->size() + s.size() + 8);
  write_u32(static_cast<std::uint32_t>(s.size() + 1));
  const auto off = buf_->size();
  buf_->resize(off + s.size() + 1);
  std::memcpy(buf_->data() + off, s.data(), s.size());
  (*buf_)[off + s.size()] = 0;
}

void CdrWriter::write_octets(std::span<const std::uint8_t> bytes) {
  grow(buf_->size() + bytes.size() + 8);
  write_u32(static_cast<std::uint32_t>(bytes.size()));
  write_raw(bytes);
}

void CdrWriter::write_raw(std::span<const std::uint8_t> bytes) {
  buf_->insert(buf_->end(), bytes.begin(), bytes.end());
}

void CdrWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  if (offset + 4 > buf_->size()) throw MarshalError("patch_u32 out of range");
  if constexpr (!kHostLittle) v = byteswap(v);
  std::memcpy(buf_->data() + offset, &v, 4);
}

// --- CdrReader ---------------------------------------------------------------

CdrReader::CdrReader(std::span<const std::uint8_t> data, bool big_endian)
    // Swap when producer endianness differs from host endianness.
    : data_(data), swap_(big_endian == kHostLittle) {}

void CdrReader::require(std::size_t n) const {
  if (pos_ + n > data_.size()) throw MarshalError("CDR buffer underrun");
}

void CdrReader::align(std::size_t n) {
  const std::size_t rem = pos_ % n;
  if (rem != 0) skip(n - rem);
}

void CdrReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

std::uint8_t CdrReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t CdrReader::read_u16() {
  align(2);
  require(2);
  std::uint16_t v;
  std::memcpy(&v, data_.data() + pos_, 2);
  pos_ += 2;
  return swap_ ? byteswap(v) : v;
}

std::uint32_t CdrReader::read_u32() {
  align(4);
  require(4);
  std::uint32_t v;
  std::memcpy(&v, data_.data() + pos_, 4);
  pos_ += 4;
  return swap_ ? byteswap(v) : v;
}

std::uint64_t CdrReader::read_u64() {
  align(8);
  require(8);
  std::uint64_t v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return swap_ ? byteswap(v) : v;
}

float CdrReader::read_f32() {
  const std::uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

double CdrReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string CdrReader::read_string() {
  const std::uint32_t len = read_u32();
  if (len == 0) throw MarshalError("CDR string with zero length");
  require(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len - 1);
  if (data_[pos_ + len - 1] != 0) throw MarshalError("CDR string missing terminator");
  pos_ += len;
  return s;
}

void CdrReader::read_string_into(std::string& out) {
  const std::uint32_t len = read_u32();
  if (len == 0) throw MarshalError("CDR string with zero length");
  require(len);
  if (data_[pos_ + len - 1] != 0) throw MarshalError("CDR string missing terminator");
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len - 1);
  pos_ += len;
}

void CdrReader::read_octets_into(std::vector<std::uint8_t>& out) {
  const std::uint32_t len = read_u32();
  require(len);
  out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
}

std::vector<std::uint8_t> CdrReader::read_octets() {
  const std::uint32_t len = read_u32();
  require(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace aqm::orb

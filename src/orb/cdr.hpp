// Common Data Representation (CDR) marshaling.
//
// Real byte-level encoding with CORBA CDR alignment rules: every primitive
// is aligned to its own size relative to the start of the buffer. Writers
// always emit the host-independent little-endian form and set the GIOP
// byte-order flag; readers byte-swap when the flag disagrees, so the
// encoder/decoder pair round-trips across simulated "architectures".
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "orb/exceptions.hpp"

namespace aqm::orb {

namespace detail {

inline constexpr bool kHostLittle = std::endian::native == std::endian::little;

template <typename T>
inline T byteswap(T v) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  }
  T out;
  std::memcpy(&out, bytes, sizeof(T));
  return out;
}

}  // namespace detail

class CdrWriter {
 public:
  CdrWriter() = default;

  /// Owning writer with pre-reserved capacity — a size hint from the
  /// caller (e.g. the previous message's size) avoids regrowth.
  explicit CdrWriter(std::size_t size_hint) { own_.reserve(size_hint); }

  /// Non-owning writer that appends to `external` (typically a pooled
  /// buffer whose capacity survives across messages). The buffer must
  /// outlive the writer; take() is not available in this mode.
  explicit CdrWriter(std::vector<std::uint8_t>& external) : buf_(&external) {}

  void write_u8(std::uint8_t v) { buf_->push_back(v); }
  void write_i8(std::int8_t v) { write_u8(static_cast<std::uint8_t>(v)); }
  void write_bool(bool v) { write_u8(v ? 1 : 0); }
  void write_u16(std::uint16_t v) { write_prim(v); }
  void write_i16(std::int16_t v) { write_u16(static_cast<std::uint16_t>(v)); }
  void write_u32(std::uint32_t v) { write_prim(v); }
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_u64(std::uint64_t v) { write_prim(v); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f32(float v);
  void write_f64(double v);

  /// CORBA string: u32 length including NUL, bytes, NUL.
  void write_string(std::string_view s);
  /// sequence<octet>: u32 length + raw bytes.
  void write_octets(std::span<const std::uint8_t> bytes);
  /// Raw bytes with no length prefix (for nested pre-encoded data).
  void write_raw(std::span<const std::uint8_t> bytes);

  /// Pads with zeros so the next write lands on an n-byte boundary
  /// (n must be a power of two, as CDR alignments are).
  void align(std::size_t n) {
    assert((n & (n - 1)) == 0);
    const std::size_t target = (buf_->size() + n - 1) & ~(n - 1);
    if (target != buf_->size()) buf_->resize(target);  // resize zero-fills the pad
  }

  [[nodiscard]] std::size_t size() const { return buf_->size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const { return *buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() {
    assert(buf_ == &own_ && "take() on a non-owning CdrWriter");
    return std::move(own_);
  }

  /// Patches a previously written u32 (used for GIOP message-size fixup).
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  /// Aligned fixed-width write: the workhorse behind write_u16/u32/u64.
  /// Always emits little-endian (the writer's advertised byte order).
  template <typename T>
  void write_prim(T v) {
    align(sizeof(T));
    if constexpr (!detail::kHostLittle) v = detail::byteswap(v);
    const auto off = buf_->size();
    buf_->resize(off + sizeof(T));
    std::memcpy(buf_->data() + off, &v, sizeof(T));
  }

  /// Ensures capacity for `need` total bytes without defeating the vector's
  /// geometric growth (a bare reserve(need) would make each subsequent
  /// write reallocate again).
  void grow(std::size_t need) {
    if (need > buf_->capacity()) buf_->reserve(std::max(need, buf_->capacity() * 2));
  }

  std::vector<std::uint8_t> own_;
  std::vector<std::uint8_t>* buf_ = &own_;
};

class CdrReader {
 public:
  /// `big_endian` is the GIOP byte-order flag of the producer.
  explicit CdrReader(std::span<const std::uint8_t> data, bool big_endian = false);

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::int8_t read_i8() { return static_cast<std::int8_t>(read_u8()); }
  [[nodiscard]] bool read_bool() { return read_u8() != 0; }
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::int16_t read_i16() { return static_cast<std::int16_t>(read_u16()); }
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::int32_t read_i32() { return static_cast<std::int32_t>(read_u32()); }
  [[nodiscard]] std::uint64_t read_u64();
  [[nodiscard]] std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  [[nodiscard]] float read_f32();
  [[nodiscard]] double read_f64();
  [[nodiscard]] std::string read_string();
  [[nodiscard]] std::vector<std::uint8_t> read_octets();

  /// Capacity-reusing variants for decode-into-scratch callers (the
  /// steady-state receive path): same wire semantics as read_string /
  /// read_octets, but assign into `out` instead of constructing fresh.
  void read_string_into(std::string& out);
  void read_octets_into(std::vector<std::uint8_t>& out);

  void align(std::size_t n);
  void skip(std::size_t n);

  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::span<const std::uint8_t> remaining_bytes() const {
    return data_.subspan(pos_);
  }

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool swap_;
};

}  // namespace aqm::orb

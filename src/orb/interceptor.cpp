#include "orb/interceptor.hpp"

#include "net/flow_classifier.hpp"
#include "orb/orb.hpp"
#include "orb/poa.hpp"

namespace aqm::orb {

// --- rt.priority -----------------------------------------------------------

InterceptStatus PriorityInterceptor::establish(ClientRequestContext& ctx) {
  // Priority->native mapping: the marshal job is scheduled at this band.
  // Runs after user/policy interceptors, so ctx.priority is final here.
  ctx.native_priority = orb_.priority_mappings().to_native(ctx.priority);
  return {};
}

InterceptStatus PriorityInterceptor::send_request(ClientRequestContext& ctx) {
  ctx.contexts->push_back(make_priority_context(ctx.priority));
  return {};
}

InterceptStatus PriorityInterceptor::receive_request(ServerRequestContext& ctx) {
  ctx.priority = ctx.poa->policies().priority_model == PriorityModel::ServerDeclared
                     ? ctx.poa->policies().server_priority
                     : find_priority(*ctx.contexts).value_or(
                           orb_.config().default_priority);
  return {};
}

InterceptStatus PriorityInterceptor::send_reply(ServerRequestContext& ctx) {
  ctx.reply_contexts->push_back(make_priority_context(ctx.priority));
  return {};
}

// --- obs.timestamp ---------------------------------------------------------

InterceptStatus TimestampInterceptor::send_request(ClientRequestContext& ctx) {
  ctx.contexts->push_back(make_timestamp_context(ctx.now));
  return {};
}

InterceptStatus TimestampInterceptor::receive_request(ServerRequestContext& ctx) {
  ctx.client_send_time = find_timestamp(*ctx.contexts);
  return {};
}

InterceptStatus TimestampInterceptor::send_reply(ServerRequestContext& ctx) {
  ctx.reply_contexts->push_back(make_timestamp_context(ctx.now));
  return {};
}

// --- obs.trace -------------------------------------------------------------

InterceptStatus TraceInterceptor::send_request(ClientRequestContext& ctx) {
  if (ctx.trace_id != 0) ctx.contexts->push_back(make_trace_context(ctx.trace_id));
  return {};
}

InterceptStatus TraceInterceptor::receive_request(ServerRequestContext& ctx) {
  ctx.trace = find_trace(*ctx.contexts).value_or(0);
  return {};
}

InterceptStatus TraceInterceptor::send_reply(ServerRequestContext& ctx) {
  if (ctx.trace != 0) ctx.reply_contexts->push_back(make_trace_context(ctx.trace));
  return {};
}

// --- rt.deadline (client) --------------------------------------------------

InterceptStatus DeadlineRetryInterceptor::establish(ClientRequestContext& ctx) {
  if (!ctx.deadline && ctx.options != nullptr && ctx.options->deadline) {
    ctx.deadline = ctx.now + *ctx.options->deadline;
  }
  // A retry can be scheduled past the deadline; kill it before it pays
  // marshal cost.
  if (ctx.deadline && ctx.now > *ctx.deadline) return veto(CompletionStatus::Timeout);
  return {};
}

InterceptStatus DeadlineRetryInterceptor::send_request(ClientRequestContext& ctx) {
  if (ctx.deadline) ctx.contexts->push_back(make_deadline_context(*ctx.deadline));
  return {};
}

void DeadlineRetryInterceptor::receive_exception(ClientRequestContext& ctx) {
  if (ctx.status != CompletionStatus::Timeout &&
      ctx.status != CompletionStatus::Transient) {
    return;  // hard failures are not retryable
  }
  if (!ctx.retry.enabled() || ctx.attempt >= ctx.retry.max_attempts) return;
  const Duration backoff = ctx.retry.backoff_after(ctx.attempt);
  if (ctx.deadline && ctx.now + backoff > *ctx.deadline) return;
  ctx.request_retry(backoff);
}

// --- rt.deadline (server) --------------------------------------------------

InterceptStatus DeadlineDropInterceptor::receive_request(ServerRequestContext& ctx) {
  ctx.deadline = find_deadline(*ctx.contexts);
  if (ctx.deadline && ctx.now > *ctx.deadline) {
    // Expired before any servant work: reject with the status the client's
    // retry interceptor understands as a (retryable) timeout.
    return veto(CompletionStatus::Timeout);
  }
  return {};
}

// --- rt.dscp ---------------------------------------------------------------

InterceptStatus DscpInterceptor::send_request(ClientRequestContext& ctx) {
  if (ctx.dscp_override) {
    ctx.dscp = *ctx.dscp_override;
  } else if (ctx.ref->protocol.dscp) {
    ctx.dscp = *ctx.ref->protocol.dscp;
  } else {
    ctx.dscp = orb_.dscp_mappings().to_dscp(ctx.priority);
  }
  return {};
}

InterceptStatus DscpInterceptor::send_reply(ServerRequestContext& ctx) {
  // Replies inherit the priority-derived DSCP.
  ctx.reply_dscp = orb_.dscp_mappings().to_dscp(ctx.priority);
  return {};
}

// --- net.flow --------------------------------------------------------------

InterceptStatus FlowClassificationInterceptor::send_request(ClientRequestContext& ctx) {
  if (net::FlowClassifier* classifier = orb_.flow_classifier()) {
    ctx.flow = classifier->classify(orb_.node(), ctx.ref->node, ctx.dscp, ctx.flow);
  }
  return {};
}

}  // namespace aqm::orb

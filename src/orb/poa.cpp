#include "orb/poa.hpp"

#include <cassert>

#include "orb/orb.hpp"

namespace aqm::orb {

Poa::Poa(OrbEndpoint& orb, std::string name, PoaPolicies policies)
    : orb_(orb), name_(std::move(name)), policies_(std::move(policies)) {
  assert(!name_.empty());
  if (policies_.lanes.empty()) {
    policies_.lanes.push_back(rt::ThreadpoolLane{0, 4, 256});
  }
  pool_ = std::make_unique<rt::ThreadPool>(orb_.cpu(), orb_.priority_mappings(),
                                           policies_.lanes);
}

ObjectRef Poa::activate_object(const std::string& object_id,
                               std::shared_ptr<Servant> servant) {
  assert(servant != nullptr);
  assert(!object_id.empty());
  assert(object_id.find('/') == std::string::npos && "object id must not contain '/'");
  servants_[object_id] = std::move(servant);

  ObjectRef ref;
  ref.node = orb_.node();
  ref.object_key = name_ + "/" + object_id;
  ref.priority_model = policies_.priority_model;
  ref.server_priority = policies_.server_priority;
  return ref;
}

void Poa::deactivate_object(const std::string& object_id) { servants_.erase(object_id); }

std::shared_ptr<Servant> Poa::find(const std::string& object_id) const {
  const auto it = servants_.find(object_id);
  return it == servants_.end() ? nullptr : it->second;
}

}  // namespace aqm::orb

#include "orb/servant.hpp"

#include <cassert>
#include <utility>

#include "orb/exceptions.hpp"

namespace aqm::orb {

ServerRequest::Replier ServerRequest::defer() {
  if (!replier) {
    throw BadParam("defer() on a oneway request (no reply channel)");
  }
  deferred_ = true;
  return replier;
}

Duration Servant::cpu_cost(const ServerRequest& req) const {
  // Default: a small fixed cost plus a per-KB touch of the payload.
  return microseconds(50) + microseconds(2) * static_cast<std::int64_t>(req.body.size() / 1024);
}

FunctionServant::FunctionServant(Duration fixed_cost, Handler handler)
    : cost_([fixed_cost](const ServerRequest&) { return fixed_cost; }),
      handler_(std::move(handler)) {
  assert(handler_);
}

FunctionServant::FunctionServant(CostFn cost, Handler handler)
    : cost_(std::move(cost)), handler_(std::move(handler)) {
  assert(cost_);
  assert(handler_);
}

Duration FunctionServant::cpu_cost(const ServerRequest& req) const { return cost_(req); }

void FunctionServant::handle(ServerRequest& req) { handler_(req); }

}  // namespace aqm::orb

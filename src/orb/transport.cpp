#include "orb/transport.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::orb {

// Fragments ride in every data packet; keep them inside the payload's
// inline buffer so forwarding never allocates.
static_assert(sizeof(GiopFragment) <= net::PacketPayload::kInlineSize);

GiopTransport::GiopTransport(net::Network& net, net::NodeId node, TransportConfig config)
    : net_(net), node_(node), config_(config) {
  assert(config_.mtu > config_.packet_overhead);
  net_.set_receiver(node_, [this](net::Packet&& p) { on_packet(std::move(p)); });
}

void GiopTransport::send_message(net::NodeId dst, MessageBuffer msg, net::Dscp dscp,
                                 net::FlowId flow, std::uint64_t trace) {
  assert(msg != nullptr && !msg->empty());
  const std::uint32_t payload_mtu = config_.mtu - config_.packet_overhead;
  const auto total = static_cast<std::uint32_t>(msg->size());
  const std::uint32_t count = (total + payload_mtu - 1) / payload_mtu;
  const std::uint64_t message_id = next_message_id_++;
  ++sent_;

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t offset = i * payload_mtu;
    const std::uint32_t length = std::min(payload_mtu, total - offset);
    net::Packet p;
    p.dst = dst;
    p.size_bytes = length + config_.packet_overhead;
    p.dscp = dscp;
    p.ecn = config_.ecn_capable ? net::Ecn::Capable : net::Ecn::NotCapable;
    p.flow = flow;
    p.seq = flow_seq_[flow]++;
    p.trace = trace;
    p.payload = GiopFragment{message_id, i, count, offset, length, msg};
    net_.send(node_, std::move(p));
  }
}

obs::TraceRecorder* GiopTransport::tracer() {
  obs::TraceRecorder* tr = net_.engine().tracer_for(obs::TraceCategory::Orb);
  if (tr != nullptr && obs_bound_ != tr) {
    obs_track_ = tr->track("giop:" + net_.node_name(node_));
    obs_bound_ = tr;
  }
  return tr;
}

std::uint64_t GiopTransport::ce_marks(net::FlowId flow) const {
  const auto it = ce_marks_.find(flow);
  return it == ce_marks_.end() ? 0 : it->second;
}

void GiopTransport::on_packet(net::Packet&& p) {
  if (!p.payload.has_value()) return;  // not a GIOP fragment (ignore)
  const auto* frag = p.payload.get<GiopFragment>();
  if (frag == nullptr) return;
  if (p.ecn == net::Ecn::CongestionExperienced) {
    ++ce_marks_[p.flow];
    if (obs::TraceRecorder* tr = tracer()) {
      tr->instant(obs::TraceCategory::Orb, "ce.mark", obs_track_, net_.engine().now(),
                  p.trace, {{"flow", static_cast<double>(p.flow)}});
    }
  }

  if (frag->count == 1) {
    ++delivered_;
    if (handler_) handler_(p.src, frag->data);
    return;
  }

  const auto key = std::make_pair(p.src, frag->message_id);
  auto it = reassembly_.find(key);
  if (it == reassembly_.end()) {
    Reassembly r;
    r.expected = frag->count;
    r.seen.assign(frag->count, false);
    r.data = frag->data;
    r.trace = p.trace;
    r.expiry = net_.engine().after(
        config_.reassembly_timeout,
        [this, src = p.src, id = frag->message_id] { expire(src, id); });
    it = reassembly_.emplace(key, std::move(r)).first;
  }
  Reassembly& r = it->second;
  if (frag->index >= r.expected || r.seen[frag->index]) return;  // dup/garbage
  r.seen[frag->index] = true;
  ++r.arrived;
  if (r.arrived < r.expected) return;

  net_.engine().cancel(r.expiry);
  MessageBuffer msg = std::move(r.data);
  reassembly_.erase(it);
  ++delivered_;
  if (handler_) handler_(p.src, std::move(msg));
}

void GiopTransport::expire(net::NodeId src, std::uint64_t message_id) {
  const auto it = reassembly_.find({src, message_id});
  if (it == reassembly_.end()) return;
  const std::uint64_t trace = it->second.trace;
  const std::uint32_t missing = it->second.expected - it->second.arrived;
  reassembly_.erase(it);
  ++expired_;
  if (obs::TraceRecorder* tr = tracer()) {
    tr->instant(obs::TraceCategory::Orb, "reassembly.expire", obs_track_,
                net_.engine().now(), trace,
                {{"missing", static_cast<double>(missing)}});
  }
}

}  // namespace aqm::orb

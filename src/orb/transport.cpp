#include "orb/transport.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <tuple>

namespace aqm::orb {
namespace {

// Batch framing (DESIGN.md §11): 8-byte header, then `count` entries, each
// 4-aligned as [u32 length LE][length bytes]. "GBAT" is disjoint from the
// "GIOP" magic, so the receive side distinguishes batches from plain
// messages without out-of-band state; application payloads beginning with
// "GBAT" are reserved.
constexpr std::uint8_t kBatchMagic[4] = {'G', 'B', 'A', 'T'};
constexpr std::uint8_t kBatchVersion = 1;
constexpr std::size_t kBatchHeaderSize = 8;
constexpr std::size_t kBatchCountOffset = 6;  // u16 LE, patched at flush
constexpr std::uint32_t kBatchMaxCount = 0xFFFF;

}  // namespace

// Fragments ride in every data packet; keep them inside the payload's
// inline buffer so forwarding never allocates.
static_assert(sizeof(GiopFragment) <= net::PacketPayload::kInlineSize);

GiopTransport::GiopTransport(net::Network& net, net::NodeId node, TransportConfig config)
    : net_(net), node_(node), config_(config) {
  assert(config_.mtu > config_.packet_overhead);
  net_.set_receiver(node_, [this](net::Packet&& p) { on_packet(std::move(p)); });
}

const BatchPolicy& GiopTransport::policy_for(net::FlowId flow) const {
  // The hash probe only runs when some flow actually carries an override —
  // the common case (global config only) stays branch-predictable.
  if (flow_batching_.size() != 0) {
    if (const BatchPolicy* p = flow_batching_.find(flow)) return *p;
  }
  return config_.batching;
}

void GiopTransport::set_flow_batching(net::FlowId flow, BatchPolicy policy) {
  flow_batching_[flow] = policy;
}

void GiopTransport::clear_flow_batching(net::FlowId flow) {
  // Ship anything the departing policy left staged before the override
  // goes away (the key may never see another send).
  for (std::size_t i = 0; i < staging_.size(); ++i) {
    if (staging_[i].active && staging_[i].flow == flow) {
      flush_slot(static_cast<std::uint32_t>(i));
    }
  }
  flow_batching_.erase(flow);
}

const BatchPolicy* GiopTransport::flow_batching(net::FlowId flow) const {
  return flow_batching_.find(flow);
}

void GiopTransport::send_message(net::NodeId dst, MessageBuffer msg, net::Dscp dscp,
                                 net::FlowId flow, std::uint64_t trace,
                                 std::optional<Duration> flush_override) {
  assert(msg != nullptr && !msg->empty());
  ++sent_;
  const BatchPolicy& pol = policy_for(flow);
  if (!pol.enabled) {
    transmit(dst, std::move(msg), dscp, flow, trace);
    return;
  }

  // Oversized messages bypass staging; flush the key's pending batch first
  // so per-key delivery order matches submission order.
  if (msg->size() >= pol.max_bytes) {
    flush(dst, dscp, flow);
    transmit(dst, std::move(msg), dscp, flow, trace);
    return;
  }

  const std::uint32_t slot = staging_slot(dst, dscp, flow);
  Staging& s = staging_[slot];
  if (!s.active) {
    s.buf = batch_pool_.acquire();
    s.buf->assign(kBatchMagic, kBatchMagic + 4);
    s.buf->push_back(kBatchVersion);
    s.buf->push_back(0);  // flags
    s.buf->push_back(0);  // count lo, patched at flush
    s.buf->push_back(0);  // count hi
    s.count = 0;
    s.trace = trace;
    s.active = true;
    const Duration delay = flush_override.value_or(pol.flush_delay);
    s.flush_at = net_.engine().now() + delay;
    s.flush_event = net_.engine().after(delay, [this, slot] { deadline_flush(slot); });
  } else if (flush_override) {
    // A tighter per-invocation deadline pulls the whole batch forward.
    const TimePoint want = net_.engine().now() + *flush_override;
    if (want < s.flush_at) {
      net_.engine().cancel(s.flush_event);
      s.flush_at = want;
      s.flush_event =
          net_.engine().after(*flush_override, [this, slot] { deadline_flush(slot); });
    }
  }

  // Append [pad to 4][u32 length LE][bytes] in one growth step: resize
  // zero-fills the alignment pad, then the length and payload land via
  // direct stores — no per-byte capacity checks on the hot path.
  auto& b = *s.buf;
  const std::size_t aligned = (b.size() + 3u) & ~std::size_t{3};
  const auto len = static_cast<std::uint32_t>(msg->size());
  b.resize(aligned + 4 + len);
  std::uint8_t* out = b.data() + aligned;
  out[0] = static_cast<std::uint8_t>(len);
  out[1] = static_cast<std::uint8_t>(len >> 8);
  out[2] = static_cast<std::uint8_t>(len >> 16);
  out[3] = static_cast<std::uint8_t>(len >> 24);
  std::memcpy(out + 4, msg->data(), len);
  ++s.count;
  ++batched_messages_;

  if (b.size() >= pol.max_bytes || s.count >= pol.max_messages ||
      s.count == kBatchMaxCount) {
    flush_slot(slot);
  }
}

std::uint32_t GiopTransport::staging_slot(net::NodeId dst, net::Dscp dscp,
                                          net::FlowId flow) {
  // One-entry MRU cache: pipelined traffic hammers a single key, and slots
  // are never erased, so a cached index can never go stale.
  if (dst == last_dst_ && dscp == last_dscp_ && flow == last_flow_) {
    return last_slot_;
  }
  const std::uint64_t hi = staging_hi(dst, dscp);
  std::uint32_t slot = staging_index_.find(hi, flow);
  if (slot == Key128Map::kNoSlot) {
    slot = static_cast<std::uint32_t>(staging_.size());
    Staging s;
    s.dst = dst;
    s.dscp = dscp;
    s.flow = flow;
    staging_.push_back(std::move(s));
    staging_index_.insert(hi, flow, slot);
  }
  last_dst_ = dst;
  last_dscp_ = dscp;
  last_flow_ = flow;
  last_slot_ = slot;
  return slot;
}

void GiopTransport::flush(net::NodeId dst, net::Dscp dscp, net::FlowId flow) {
  const std::uint32_t slot = staging_index_.find(staging_hi(dst, dscp), flow);
  if (slot != Key128Map::kNoSlot) flush_slot(slot);
}

void GiopTransport::flush_all() {
  // Hash-table order never leaks (DESIGN.md §10): emit in sorted key order.
  std::vector<std::uint32_t>& active = flush_scratch_;
  active.clear();
  for (std::size_t i = 0; i < staging_.size(); ++i) {
    if (staging_[i].active) active.push_back(static_cast<std::uint32_t>(i));
  }
  std::sort(active.begin(), active.end(), [this](std::uint32_t a, std::uint32_t b) {
    const Staging& sa = staging_[a];
    const Staging& sb = staging_[b];
    return std::tie(sa.dst, sa.dscp, sa.flow) < std::tie(sb.dst, sb.dscp, sb.flow);
  });
  for (const std::uint32_t slot : active) flush_slot(slot);
}

void GiopTransport::deadline_flush(std::uint32_t slot) {
  Staging& s = staging_[slot];
  if (!s.active) return;
  s.flush_event = {};  // this event already fired
  if (obs::TraceRecorder* tr = tracer()) {
    tr->instant(obs::TraceCategory::Orb, "batch.deadline", obs_track_,
                net_.engine().now(), s.trace,
                {{"count", static_cast<double>(s.count)}});
  }
  flush_slot(slot);
}

void GiopTransport::flush_slot(std::uint32_t slot) {
  Staging& s = staging_[slot];
  if (!s.active) return;
  net_.engine().cancel(s.flush_event);
  s.flush_event = {};
  (*s.buf)[kBatchCountOffset] = static_cast<std::uint8_t>(s.count);
  (*s.buf)[kBatchCountOffset + 1] = static_cast<std::uint8_t>(s.count >> 8);
  batch_pool_.note_message_size(s.buf->size());
  MessageBuffer batch = CdrBufferPool::freeze(std::move(s.buf));
  const net::NodeId dst = s.dst;
  const net::Dscp dscp = s.dscp;
  const net::FlowId flow = s.flow;
  const std::uint64_t trace = s.trace;
  s.active = false;
  s.count = 0;
  s.trace = 0;
  ++batches_sent_;
  transmit(dst, std::move(batch), dscp, flow, trace);
}

void GiopTransport::transmit(net::NodeId dst, MessageBuffer msg, net::Dscp dscp,
                             net::FlowId flow, std::uint64_t trace) {
  const std::uint32_t payload_mtu = config_.mtu - config_.packet_overhead;
  const auto total = static_cast<std::uint32_t>(msg->size());
  const std::uint32_t count = (total + payload_mtu - 1) / payload_mtu;
  const std::uint64_t message_id = next_message_id_++;

  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t offset = i * payload_mtu;
    const std::uint32_t length = std::min(payload_mtu, total - offset);
    net::Packet p;
    p.dst = dst;
    p.size_bytes = length + config_.packet_overhead;
    p.dscp = dscp;
    p.ecn = config_.ecn_capable ? net::Ecn::Capable : net::Ecn::NotCapable;
    p.flow = flow;
    p.seq = flow_seq_[flow]++;
    p.trace = trace;
    p.payload = GiopFragment{message_id, i, count, offset, length, msg};
    net_.send(node_, std::move(p));
  }
}

obs::TraceRecorder* GiopTransport::tracer() {
  obs::TraceRecorder* tr = net_.engine().tracer_for(obs::TraceCategory::Orb);
  if (tr != nullptr && obs_bound_ != tr) {
    obs_track_ = tr->track("giop:" + net_.node_name(node_));
    obs_bound_ = tr;
  }
  return tr;
}

std::uint64_t GiopTransport::ce_marks(net::FlowId flow) const {
  const std::uint64_t* marks = ce_marks_.find(flow);
  return marks == nullptr ? 0 : *marks;
}

std::uint32_t GiopTransport::acquire_reassembly_slot() {
  if (!reassembly_free_.empty()) {
    const std::uint32_t slot = reassembly_free_.back();
    reassembly_free_.pop_back();
    return slot;
  }
  reassembly_slots_.emplace_back();
  return static_cast<std::uint32_t>(reassembly_slots_.size() - 1);
}

void GiopTransport::release_reassembly_slot(std::uint32_t slot) {
  Reassembly& r = reassembly_slots_[slot];
  reassembly_index_.erase(reassembly_hi(r.src), r.message_id);
  // Drop the message reference now (the sender's pooled buffer recycles),
  // but keep the `seen` bitmap's capacity for the next message in this slot
  // — the zero-alloc steady-state receive path depends on it.
  r.data.reset();
  r.expected = 0;
  r.arrived = 0;
  r.trace = 0;
  r.expiry = {};
  reassembly_free_.push_back(slot);
}

void GiopTransport::on_packet(net::Packet&& p) {
  if (!p.payload.has_value()) return;  // not a GIOP fragment (ignore)
  const auto* frag = p.payload.get<GiopFragment>();
  if (frag == nullptr) return;
  if (p.ecn == net::Ecn::CongestionExperienced) {
    ++ce_marks_[p.flow];
    if (obs::TraceRecorder* tr = tracer()) {
      tr->instant(obs::TraceCategory::Orb, "ce.mark", obs_track_, net_.engine().now(),
                  p.trace, {{"flow", static_cast<double>(p.flow)}});
    }
  }

  if (frag->count == 1) {
    deliver(p.src, frag->data);
    return;
  }

  std::uint32_t slot = reassembly_index_.find(reassembly_hi(p.src), frag->message_id);
  if (slot == Key128Map::kNoSlot) {
    slot = acquire_reassembly_slot();
    Reassembly& r = reassembly_slots_[slot];
    r.expected = frag->count;
    r.arrived = 0;
    r.seen.assign((frag->count + 63) / 64, 0);  // reuses the slot's capacity
    r.data = frag->data;
    r.trace = p.trace;
    r.src = p.src;
    r.message_id = frag->message_id;
    r.expiry = net_.engine().after(
        config_.reassembly_timeout,
        [this, src = p.src, id = frag->message_id] { expire(src, id); });
    reassembly_index_.insert(reassembly_hi(p.src), frag->message_id, slot);
  }
  Reassembly& r = reassembly_slots_[slot];
  if (frag->index >= r.expected) return;  // garbage
  std::uint64_t& word = r.seen[frag->index >> 6];
  const std::uint64_t bit = 1ull << (frag->index & 63);
  if ((word & bit) != 0) return;  // duplicate
  word |= bit;
  ++r.arrived;
  if (r.arrived < r.expected) return;

  net_.engine().cancel(r.expiry);
  MessageBuffer msg = std::move(r.data);
  release_reassembly_slot(slot);
  deliver(p.src, std::move(msg));
}

void GiopTransport::deliver(net::NodeId src, MessageBuffer msg) {
  const std::vector<std::uint8_t>& b = *msg;
  if (b.size() >= kBatchHeaderSize && b[0] == kBatchMagic[0] && b[1] == kBatchMagic[1] &&
      b[2] == kBatchMagic[2] && b[3] == kBatchMagic[3]) {
    ++batches_delivered_;
    const std::uint32_t count = b[kBatchCountOffset] |
                                (static_cast<std::uint32_t>(b[kBatchCountOffset + 1]) << 8);
    // One owner reference for the whole batch; the view is rebound per
    // entry, so unpacking N messages costs zero refcount round-trips.
    MessageView view(msg, nullptr, 0);
    std::size_t off = kBatchHeaderSize;
    for (std::uint32_t i = 0; i < count; ++i) {
      off = (off + 3) & ~std::size_t{3};
      if (off + 4 > b.size()) break;  // truncated batch: drop the tail
      const std::uint32_t len = b[off] | (static_cast<std::uint32_t>(b[off + 1]) << 8) |
                                (static_cast<std::uint32_t>(b[off + 2]) << 16) |
                                (static_cast<std::uint32_t>(b[off + 3]) << 24);
      off += 4;
      if (off + len > b.size()) break;
      ++delivered_;
      view.rebind(b.data() + off, len);
      if (handler_) handler_(src, view);
      off += len;
    }
    return;
  }
  ++delivered_;
  if (handler_) {
    const MessageView view(std::move(msg));
    handler_(src, view);
  }
}

void GiopTransport::expire(net::NodeId src, std::uint64_t message_id) {
  const std::uint32_t slot = reassembly_index_.find(reassembly_hi(src), message_id);
  if (slot == Key128Map::kNoSlot) return;
  const std::uint64_t trace = reassembly_slots_[slot].trace;
  const std::uint32_t missing =
      reassembly_slots_[slot].expected - reassembly_slots_[slot].arrived;
  release_reassembly_slot(slot);
  ++expired_;
  if (obs::TraceRecorder* tr = tracer()) {
    tr->instant(obs::TraceCategory::Orb, "reassembly.expire", obs_track_,
                net_.engine().now(), trace,
                {{"missing", static_cast<double>(missing)}});
  }
}

}  // namespace aqm::orb

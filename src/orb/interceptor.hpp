// Portable-interceptor-style invocation pipeline (RT-CORBA PI flavor).
//
// Every invocation flows through ordered interceptor chains registered on
// the OrbEndpoint:
//
//   client:  establish -> [marshal cpu cost] -> send_request -> wire
//            wire -> [demarshal cpu cost] -> receive_reply / receive_exception
//   server:  wire -> demux -> receive_request -> [dispatch] -> servant
//            servant -> send_reply -> wire
//
// `establish` runs at invocation time, before the marshal work is
// scheduled: it is the QoS-decision point (priority, DSCP override, flow,
// deadline) because the chosen priority also schedules the marshal job
// itself. `send_request` runs on the client CPU after the marshal cost has
// been charged, immediately before GIOP encoding: it is the stamping point
// (service contexts, final DSCP, flow classification) — the send timestamp
// can only exist there.
//
// Built-in interceptors re-implement the previously hard-wired ORB
// behaviors: priority resolution + native mapping, RTCorbaPriority /
// timestamp / trace / deadline service contexts, priority->DSCP stamping,
// and flow classification. They sit closest to the wire: user client
// interceptors are inserted BEFORE the built-ins (so their establish-phase
// QoS decisions are visible to the built-in stampers), user server
// interceptors AFTER them (so they observe fully resolved requests).
//
// A veto (`InterceptStatus::err`) short-circuits the invocation with the
// CompletionStatus encoding of a CORBA system exception — exceptions cannot
// cross simulated hosts, so the status code is what travels (see
// orb/exceptions.hpp). Contexts are stack-allocated views into pooled
// state: steady-state invocations allocate nothing in the pipeline itself.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/time.hpp"
#include "net/dscp.hpp"
#include "net/packet.hpp"
#include "orb/exceptions.hpp"
#include "orb/giop.hpp"
#include "orb/types.hpp"
#include "os/priority.hpp"

namespace aqm::orb {

class OrbEndpoint;
class Poa;

/// Bounded retry with exponential backoff, driven by the client-side
/// deadline/retry interceptor. max_attempts == 1 disables retries.
struct RetryPolicy {
  int max_attempts = 1;
  Duration initial_backoff = milliseconds(50);
  double backoff_multiplier = 2.0;

  [[nodiscard]] bool enabled() const { return max_attempts > 1; }
  /// Backoff before re-issuing attempt `attempt + 1` (attempts are 1-based).
  [[nodiscard]] Duration backoff_after(int attempt) const {
    double scale = 1.0;
    for (int i = 1; i < attempt; ++i) scale *= backoff_multiplier;
    return Duration{static_cast<std::int64_t>(
        static_cast<double>(initial_backoff.ns()) * scale)};
  }
};

struct InvokeOptions {
  bool oneway = false;
  Duration timeout = seconds(2);
  /// Overrides the ambient client priority / server-declared priority.
  std::optional<CorbaPriority> priority;
  /// Network flow id (for reservations and per-flow statistics).
  net::FlowId flow = net::kNoFlow;
  /// Per-invocation end-to-end deadline. Rides a service context; the
  /// server drops requests whose deadline already expired before any
  /// servant work runs. Also bounds retries.
  std::optional<Duration> deadline;
  RetryPolicy retry;
};

/// Continue, or short-circuit the invocation with the wire encoding of a
/// CORBA system exception.
using InterceptStatus = Status<CompletionStatus>;

[[nodiscard]] inline InterceptStatus veto(CompletionStatus status) {
  return InterceptStatus::err(status);
}

/// Per-invocation client-side context. Pointer fields are phase-scoped:
/// `body` is only valid in establish (pre-marshal), `contexts` only in
/// send_request (stamping), and `ref`/`operation`/`options` are null on the
/// reply path of an invocation whose originals are gone (non-retryable).
struct ClientRequestContext {
  const ObjectRef* ref = nullptr;
  const std::string* operation = nullptr;
  const InvokeOptions* options = nullptr;
  std::uint32_t request_id = 0;
  bool oneway = false;
  int attempt = 1;  // 1-based
  TimePoint now{};

  // --- QoS decision slots (establish rewrites, send_request consumes) ------
  CorbaPriority priority = 0;
  /// Native priority the marshal job is scheduled at (priority->native
  /// mapping, applied by the built-in priority interceptor in establish).
  os::Priority native_priority = 0;
  /// Set by policy/user interceptors to pre-empt the priority->DSCP
  /// mapping; consumed by the built-in DSCP interceptor.
  std::optional<net::Dscp> dscp_override;
  /// Final egress codepoint (valid after the built-in DSCP interceptor ran).
  net::Dscp dscp = net::dscp::kBestEffort;
  net::FlowId flow = net::kNoFlow;
  /// Absolute end-to-end deadline (simulation clock).
  std::optional<TimePoint> deadline;
  /// Transport-coalescing flush deadline for this invocation (QoS policy /
  /// user interceptors). Tightens the staged batch's flush timer; no
  /// effect when batching is off for the request's flow.
  std::optional<Duration> batch_flush_override;
  std::uint64_t trace_id = 0;

  /// Request payload — mutable during establish only (pre-marshal).
  std::vector<std::uint8_t>* body = nullptr;
  /// Request service contexts — valid during send_request only.
  std::vector<ServiceContext>* contexts = nullptr;

  // --- reply path ----------------------------------------------------------
  CompletionStatus status = CompletionStatus::Ok;
  /// Effective retry policy of this invocation (receive_exception only).
  RetryPolicy retry;
  bool retry_requested = false;
  Duration retry_backoff{};
  /// Ask the ORB to re-issue the invocation after `backoff` instead of
  /// completing the caller's callback. Honored only when the invocation
  /// opted into retries (receive_exception phase).
  void request_retry(Duration backoff) {
    retry_requested = true;
    retry_backoff = backoff;
  }
};

/// Per-request server-side context. `contexts` is valid in
/// receive_request, `reply_contexts`/`reply_status`/`reply_dscp` in
/// send_reply.
struct ServerRequestContext {
  const std::string* operation = nullptr;
  const std::string* object_key = nullptr;
  const Poa* poa = nullptr;
  std::uint32_t request_id = 0;
  bool response_expected = true;
  bool collocated = false;
  net::NodeId client = net::kInvalidNode;
  TimePoint now{};

  const std::vector<ServiceContext>* contexts = nullptr;
  CorbaPriority priority = 0;
  std::optional<TimePoint> client_send_time;
  std::optional<TimePoint> deadline;
  std::uint64_t trace = 0;

  // --- send_reply phase ----------------------------------------------------
  std::vector<ServiceContext>* reply_contexts = nullptr;
  ReplyStatus reply_status = ReplyStatus::NoException;
  net::Dscp reply_dscp = net::dscp::kBestEffort;
};

class ClientRequestInterceptor {
 public:
  virtual ~ClientRequestInterceptor() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// QoS-decision point, at invocation time on the caller's host (may
  /// rewrite priority/dscp_override/flow/deadline/body, or veto before any
  /// CPU cost is paid).
  virtual InterceptStatus establish(ClientRequestContext&) { return {}; }
  /// Stamping point, on the client CPU post-marshal / pre-encode.
  virtual InterceptStatus send_request(ClientRequestContext&) { return {}; }
  /// Successful reply, post-demarshal / pre-callback.
  virtual void receive_reply(ClientRequestContext&) {}
  /// Error reply or local timeout; may call ctx.request_retry().
  virtual void receive_exception(ClientRequestContext&) {}
};

class ServerRequestInterceptor {
 public:
  virtual ~ServerRequestInterceptor() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Post-demux, pre-dispatch: resolves QoS from service contexts; a veto
  /// rejects the request before any thread-pool/servant work.
  virtual InterceptStatus receive_request(ServerRequestContext&) { return {}; }
  /// Reply stamping, on the server CPU post-marshal-cost; a veto suppresses
  /// the reply (the client times out).
  virtual InterceptStatus send_reply(ServerRequestContext&) { return {}; }
};

// --- built-in interceptors -------------------------------------------------
// Constructed by OrbEndpoint at start-up; exposed here so tests and
// documentation can reference the concrete pipeline stages.

/// Priority resolution artifacts: maps the resolved CORBA priority to the
/// native priority band (client establish) and stamps/extracts the
/// RTCorbaPriority service context.
class PriorityInterceptor final : public ClientRequestInterceptor,
                                  public ServerRequestInterceptor {
 public:
  explicit PriorityInterceptor(OrbEndpoint& orb) : orb_(orb) {}
  [[nodiscard]] const char* name() const override { return "rt.priority"; }
  InterceptStatus establish(ClientRequestContext& ctx) override;
  InterceptStatus send_request(ClientRequestContext& ctx) override;
  InterceptStatus receive_request(ServerRequestContext& ctx) override;
  InterceptStatus send_reply(ServerRequestContext& ctx) override;

 private:
  OrbEndpoint& orb_;
};

/// Send-timestamp service context (latency measurement), both directions.
class TimestampInterceptor final : public ClientRequestInterceptor,
                                   public ServerRequestInterceptor {
 public:
  [[nodiscard]] const char* name() const override { return "obs.timestamp"; }
  InterceptStatus send_request(ClientRequestContext& ctx) override;
  InterceptStatus receive_request(ServerRequestContext& ctx) override;
  InterceptStatus send_reply(ServerRequestContext& ctx) override;
};

/// Causal trace-id propagation: one trace id per invocation rides a
/// service context end-to-end (see obs/trace.hpp).
class TraceInterceptor final : public ClientRequestInterceptor,
                               public ServerRequestInterceptor {
 public:
  [[nodiscard]] const char* name() const override { return "obs.trace"; }
  InterceptStatus send_request(ClientRequestContext& ctx) override;
  InterceptStatus receive_request(ServerRequestContext& ctx) override;
  InterceptStatus send_reply(ServerRequestContext& ctx) override;
};

/// Client half of the deadline/retry behavior: computes the absolute
/// deadline, stamps the deadline service context, and decides bounded
/// exponential-backoff retries on timeout.
class DeadlineRetryInterceptor final : public ClientRequestInterceptor {
 public:
  [[nodiscard]] const char* name() const override { return "rt.deadline"; }
  InterceptStatus establish(ClientRequestContext& ctx) override;
  InterceptStatus send_request(ClientRequestContext& ctx) override;
  void receive_exception(ClientRequestContext& ctx) override;
};

/// Server half: drops requests whose end-to-end deadline already expired
/// before any servant work is spent on them.
class DeadlineDropInterceptor final : public ServerRequestInterceptor {
 public:
  [[nodiscard]] const char* name() const override { return "rt.deadline"; }
  InterceptStatus receive_request(ServerRequestContext& ctx) override;
};

/// Priority->DSCP stamping: explicit override (policy / protocol
/// properties) wins, otherwise the endpoint's DSCP mapping manager decides.
class DscpInterceptor final : public ClientRequestInterceptor,
                              public ServerRequestInterceptor {
 public:
  explicit DscpInterceptor(OrbEndpoint& orb) : orb_(orb) {}
  [[nodiscard]] const char* name() const override { return "rt.dscp"; }
  InterceptStatus send_request(ClientRequestContext& ctx) override;
  InterceptStatus send_reply(ServerRequestContext& ctx) override;

 private:
  OrbEndpoint& orb_;
};

/// Per-flow classification hook: consults the endpoint's installed
/// net::FlowClassifier (RSVP/token-bucket steering) for the final flow id.
class FlowClassificationInterceptor final : public ClientRequestInterceptor {
 public:
  explicit FlowClassificationInterceptor(OrbEndpoint& orb) : orb_(orb) {}
  [[nodiscard]] const char* name() const override { return "net.flow"; }
  InterceptStatus send_request(ClientRequestContext& ctx) override;

 private:
  OrbEndpoint& orb_;
};

}  // namespace aqm::orb

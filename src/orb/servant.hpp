// Server-side request objects and the servant interface.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "net/packet.hpp"
#include "orb/types.hpp"

namespace aqm::orb {

/// One incoming request as seen by a servant.
struct ServerRequest {
  std::string operation;
  std::vector<std::uint8_t> body;
  net::NodeId client = net::kInvalidNode;
  /// CORBA priority the dispatch used (propagated or server-declared).
  CorbaPriority priority = 0;
  /// Client-side send timestamp (from the timestamp service context).
  std::optional<TimePoint> client_send_time;
  /// When the servant handler ran (i.e. after queueing + CPU processing).
  TimePoint handled_at{};

  /// Filled by the servant for twoway requests answered synchronously.
  std::vector<std::uint8_t> reply_body;

  /// Asynchronous (AMI-style deferred) replies: handle() may call defer()
  /// and keep the returned replier. The ORB then sends no reply when
  /// handle() returns; the reply goes out when the replier is invoked.
  /// Invoking it more than once is a no-op; never invoking it leaves the
  /// client to its timeout. Throws BadParam on oneway requests.
  using Replier = std::function<void(std::vector<std::uint8_t> reply_body)>;
  [[nodiscard]] Replier defer();

  [[nodiscard]] bool deferred() const { return deferred_; }

  // --- ORB plumbing (set by the dispatch path, not by servants) ---------------
  Replier replier;  // non-null for twoway requests
 private:
  bool deferred_ = false;
};

class Servant {
 public:
  virtual ~Servant() = default;

  /// CPU time the request consumes (demultiplexed, demarshaled and
  /// processed) before handle() observes it. Simulated on the host CPU at
  /// the request's dispatch priority.
  [[nodiscard]] virtual Duration cpu_cost(const ServerRequest& req) const;

  /// Application logic; runs when the simulated CPU work completes.
  /// May throw a SystemException to answer the client with an error.
  virtual void handle(ServerRequest& req) = 0;
};

/// Convenience servant wrapping a callable with a fixed or computed cost.
class FunctionServant final : public Servant {
 public:
  using Handler = std::function<void(ServerRequest&)>;
  using CostFn = std::function<Duration(const ServerRequest&)>;

  FunctionServant(Duration fixed_cost, Handler handler);
  FunctionServant(CostFn cost, Handler handler);

  [[nodiscard]] Duration cpu_cost(const ServerRequest& req) const override;
  void handle(ServerRequest& req) override;

 private:
  CostFn cost_;
  Handler handler_;
};

}  // namespace aqm::orb

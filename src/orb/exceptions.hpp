// CORBA-style system exceptions raised by the ORB runtime.
#pragma once

#include <stdexcept>
#include <string>

namespace aqm::orb {

/// Root of the CORBA system-exception hierarchy we model.
class SystemException : public std::runtime_error {
 public:
  explicit SystemException(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or truncated CDR/GIOP data.
class MarshalError : public SystemException {
 public:
  explicit MarshalError(const std::string& what) : SystemException("MARSHAL: " + what) {}
};

/// Request target not found (unknown object key / POA).
class ObjectNotExist : public SystemException {
 public:
  explicit ObjectNotExist(const std::string& what)
      : SystemException("OBJECT_NOT_EXIST: " + what) {}
};

/// Transient resource exhaustion (e.g. thread-pool queue full).
class Transient : public SystemException {
 public:
  explicit Transient(const std::string& what) : SystemException("TRANSIENT: " + what) {}
};

/// Bad policy or argument combination.
class BadParam : public SystemException {
 public:
  explicit BadParam(const std::string& what) : SystemException("BAD_PARAM: " + what) {}
};

/// Reply codes carried back to asynchronous callers (exceptions cannot
/// propagate across simulated hosts, so twoway completion reports one of
/// these instead).
enum class CompletionStatus {
  Ok,
  Timeout,          // no reply within the caller's deadline
  ObjectNotExist,   // server could not find the target
  Transient,        // server-side overload (queue full)
  SystemError,      // any other server-side failure
};

[[nodiscard]] constexpr const char* to_string(CompletionStatus s) {
  switch (s) {
    case CompletionStatus::Ok: return "OK";
    case CompletionStatus::Timeout: return "TIMEOUT";
    case CompletionStatus::ObjectNotExist: return "OBJECT_NOT_EXIST";
    case CompletionStatus::Transient: return "TRANSIENT";
    case CompletionStatus::SystemError: return "SYSTEM_ERROR";
  }
  return "?";
}

}  // namespace aqm::orb

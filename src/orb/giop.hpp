// GIOP 1.2-style message encoding over CDR.
//
// Layout (all CDR-encoded, little-endian with the byte-order flag set):
//   header : 'G' 'I' 'O' 'P'  ver_major  ver_minor  flags  msg_type  msg_size
//   Request: request_id(u32) response_flags(u8) object_key(string)
//            operation(string) service_contexts(seq) body(raw octets)
//   Reply  : request_id(u32) reply_status(u32) service_contexts(seq) body
//
// Service contexts are (id, octet-sequence) pairs. The RTCorbaPriority
// context propagates the client's RT-CORBA priority end-to-end (Figure 2 in
// the paper); a vendor context carries the send timestamp used by the
// experiments to measure one-way latency.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/time.hpp"
#include "orb/cdr.hpp"
#include "orb/types.hpp"

namespace aqm::orb {

enum class GiopMsgType : std::uint8_t { Request = 0, Reply = 1 };

/// Reply status values (subset of GIOP's ReplyStatusType).
enum class ReplyStatus : std::uint32_t {
  NoException = 0,
  SystemException = 2,
};

struct ServiceContext {
  std::uint32_t id = 0;
  std::vector<std::uint8_t> data;
};

/// RTCorbaPriority service context (RT-CORBA 1.0 §4, IOP service id).
inline constexpr std::uint32_t kRtCorbaPriorityContextId = 21;
/// Vendor context: simulation send timestamp for latency measurement.
inline constexpr std::uint32_t kTimestampContextId = 0x41514D01;
/// Vendor context: causal trace id, propagated end-to-end exactly like the
/// RT-CORBA priority so every hop of a request shares one trace.
inline constexpr std::uint32_t kTraceContextId = 0x41514D02;
/// Vendor context: absolute end-to-end deadline (simulation clock). The
/// server-side deadline interceptor drops requests that arrive expired
/// before any servant work is spent on them.
inline constexpr std::uint32_t kDeadlineContextId = 0x41514D03;

struct RequestHeader {
  std::uint32_t request_id = 0;
  bool response_expected = true;
  std::string object_key;
  std::string operation;
  std::vector<ServiceContext> contexts;
};

struct ReplyHeader {
  std::uint32_t request_id = 0;
  ReplyStatus status = ReplyStatus::NoException;
  std::vector<ServiceContext> contexts;
};

struct GiopMessage {
  GiopMsgType type = GiopMsgType::Request;
  RequestHeader request;  // valid when type == Request
  ReplyHeader reply;      // valid when type == Reply
  std::vector<std::uint8_t> body;
};

[[nodiscard]] std::vector<std::uint8_t> encode_request(const RequestHeader& header,
                                                       std::span<const std::uint8_t> body);
[[nodiscard]] std::vector<std::uint8_t> encode_reply(const ReplyHeader& header,
                                                     std::span<const std::uint8_t> body);

/// Zero-allocation variants: encode into `out` (cleared first), reusing its
/// capacity. These are the hot path — the ORB encodes into pooled buffers.
void encode_request(const RequestHeader& header, std::span<const std::uint8_t> body,
                    std::vector<std::uint8_t>& out);
void encode_reply(const ReplyHeader& header, std::span<const std::uint8_t> body,
                  std::vector<std::uint8_t>& out);

/// Parses a full GIOP message; throws MarshalError on malformed input.
[[nodiscard]] GiopMessage decode(std::span<const std::uint8_t> bytes);

/// Capacity-reusing decode: parses into `out`, reusing its strings,
/// context vectors, and body storage. The steady-state receive path
/// decodes every message into one scratch GiopMessage and allocates
/// nothing once warm. Fields of the non-matching header (request vs
/// reply) are left stale; `out.type` discriminates.
void decode_into(GiopMessage& out, std::span<const std::uint8_t> bytes);

// --- service-context helpers ---------------------------------------------------

[[nodiscard]] ServiceContext make_priority_context(CorbaPriority priority);
[[nodiscard]] std::optional<CorbaPriority> find_priority(
    const std::vector<ServiceContext>& contexts);

[[nodiscard]] ServiceContext make_timestamp_context(TimePoint t);
[[nodiscard]] std::optional<TimePoint> find_timestamp(
    const std::vector<ServiceContext>& contexts);

[[nodiscard]] ServiceContext make_trace_context(std::uint64_t trace_id);
[[nodiscard]] std::optional<std::uint64_t> find_trace(
    const std::vector<ServiceContext>& contexts);

[[nodiscard]] ServiceContext make_deadline_context(TimePoint deadline);
[[nodiscard]] std::optional<TimePoint> find_deadline(
    const std::vector<ServiceContext>& contexts);

}  // namespace aqm::orb

#include "orb/buffer_pool.hpp"

namespace aqm::orb {

std::shared_ptr<std::vector<std::uint8_t>> CdrBufferPool::acquire() {
  const std::size_t n = slots_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = scan_ + i < n ? scan_ + i : scan_ + i - n;
    auto& slot = slots_[idx];
    // use_count()==1 means every MessageBuffer handed out from this slot
    // has been released — only the pool still holds it.
    if (slot.use_count() == 1) {
      scan_ = idx + 1 == n ? 0 : idx + 1;
      slot->clear();
      slot->reserve(hint_);
      ++reuses_;
      return slot;
    }
  }
  ++allocations_;
  auto buf = std::make_shared<std::vector<std::uint8_t>>();
  buf->reserve(hint_);
  if (slots_.size() < max_buffers_) slots_.push_back(buf);
  // Pool full: hand out an untracked one-off buffer (freed normally).
  return buf;
}

}  // namespace aqm::orb

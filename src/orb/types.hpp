// Core ORB value types: CORBA priorities, priority models, protocol
// properties and object references.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/dscp.hpp"
#include "net/packet.hpp"

namespace aqm::orb {

/// RT-CORBA priority: a platform-independent priority in [0, 32767] that
/// priority-mapping managers translate to native OS priorities and (in our
/// TAO-style extension) to DiffServ codepoints.
using CorbaPriority = std::int32_t;
inline constexpr CorbaPriority kMinCorbaPriority = 0;
inline constexpr CorbaPriority kMaxCorbaPriority = 32767;

/// RT-CORBA PriorityModelPolicy.
enum class PriorityModel : std::uint8_t {
  /// Requests run at the priority propagated by the client in the
  /// RTCorbaPriority service context.
  ClientPropagated,
  /// Requests run at the priority declared by the server in the IOR.
  ServerDeclared,
};

/// TAO-style protocol properties (the paper's first enhancement: exposing
/// the DiffServ codepoint of GIOP traffic as an ORB protocol property).
struct ProtocolProperties {
  /// When set, overrides the DSCP derived from the priority mapping.
  std::optional<net::Dscp> dscp;
};

/// A simulated interoperable object reference. Carries the addressing
/// information plus the QoS-relevant tagged components a real RT-CORBA IOR
/// embeds (priority model, server priority, protocol properties).
struct ObjectRef {
  net::NodeId node = net::kInvalidNode;
  std::string object_key;  // "<poa>/<object-id>"
  PriorityModel priority_model = PriorityModel::ClientPropagated;
  CorbaPriority server_priority = 0;
  ProtocolProperties protocol;

  [[nodiscard]] bool valid() const { return node != net::kInvalidNode && !object_key.empty(); }
};

}  // namespace aqm::orb

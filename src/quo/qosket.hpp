// Qoskets: reusable bundles of QoS behavior [Qosket:02].
//
// "QuO ... supports dynamic QoS provisioning via its Qosket mechanisms" —
// a qosket packages contracts, system condition objects and delegate
// behaviors under one name so the same adaptive behavior can be attached
// to different applications.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "quo/contract.hpp"
#include "quo/delegate.hpp"
#include "quo/syscond.hpp"

namespace aqm::quo {

class Qosket {
 public:
  explicit Qosket(std::string name) : name_(std::move(name)) {}
  Qosket(const Qosket&) = delete;
  Qosket& operator=(const Qosket&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Creates and owns a contract.
  Contract& make_contract(sim::Engine& engine, const std::string& contract_name);

  /// Adds an owned system condition object; returns a typed reference.
  template <typename T, typename... Args>
  T& make_syscond(Args&&... args) {
    auto cond = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *cond;
    sysconds_[ref.name()] = std::move(cond);
    return ref;
  }

  [[nodiscard]] Contract* contract(const std::string& contract_name);
  [[nodiscard]] SysCond* syscond(const std::string& cond_name);

  [[nodiscard]] std::size_t contract_count() const { return contracts_.size(); }
  [[nodiscard]] std::size_t syscond_count() const { return sysconds_.size(); }

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Contract>> contracts_;
  std::map<std::string, std::unique_ptr<SysCond>> sysconds_;
};

}  // namespace aqm::quo

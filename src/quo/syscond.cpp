#include "quo/syscond.hpp"

namespace aqm::quo {

RateSysCond::RateSysCond(sim::Engine& engine, std::string name, Duration window)
    : SysCond(std::move(name)),
      engine_(engine),
      window_(window),
      tick_(engine, window / 4 > Duration::zero() ? window / 4 : milliseconds(250), [this] {
        const double v = value();
        if (v != last_notified_) {
          last_notified_ = v;
          notify();
        }
      }) {
  bind_engine(engine);
}

void RateSysCond::prune(TimePoint now) const {
  while (!events_.empty() && events_.front().first + window_ < now) events_.pop_front();
}

void RateSysCond::record(double amount) {
  const TimePoint now = engine_.now();
  prune(now);
  events_.emplace_back(now, amount);
  const double v = value();
  if (v != last_notified_) {
    last_notified_ = v;
    notify();
  }
}

double RateSysCond::value() const {
  prune(engine_.now());
  double sum = 0.0;
  for (const auto& [t, amount] : events_) sum += amount;
  return sum / window_.seconds();
}

void RateSysCond::start() { tick_.start(); }

void RateSysCond::stop() { tick_.stop(); }

}  // namespace aqm::quo

#include "quo/syscond.hpp"

namespace aqm::quo {

RateSysCond::RateSysCond(sim::Engine& engine, std::string name, Duration window)
    : SysCond(std::move(name)),
      engine_(engine),
      window_(window),
      tick_(engine, window / 4 > Duration::zero() ? window / 4 : milliseconds(250), [this] {
        const double v = value();
        if (v != last_notified_) {
          last_notified_ = v;
          notify();
        }
      }) {
  bind_engine(engine);
}

void RateSysCond::prune(TimePoint now) const {
  while (!events_.empty() && events_.front().first + window_ < now) events_.pop_front();
}

void RateSysCond::record(double amount) {
  const TimePoint now = engine_.now();
  prune(now);
  events_.emplace_back(now, amount);
  const double v = value();
  if (v != last_notified_) {
    last_notified_ = v;
    notify();
  }
}

double RateSysCond::value() const {
  prune(engine_.now());
  double sum = 0.0;
  for (const auto& [t, amount] : events_) sum += amount;
  return sum / window_.seconds();
}

void RateSysCond::start() { tick_.start(); }

void RateSysCond::stop() { tick_.stop(); }

TelemetrySysCond::TelemetrySysCond(sim::Engine& engine, obs::TelemetryHub& hub,
                                   std::string name, std::uint64_t flow,
                                   Metric metric, Duration poll_period)
    : SysCond(std::move(name)),
      engine_(engine),
      hub_(hub),
      flow_(flow),
      metric_(metric),
      tick_(engine, poll_period, [this] { notify(); }) {
  hub_.watch(flow_);
  bind_engine(engine);
}

double TelemetrySysCond::value() const {
  const obs::WindowStats w = hub_.window(flow_, engine_.now());
  switch (metric_) {
    case Metric::MissRate:
      return w.miss_rate;
    case Metric::DropRate:
      return w.drop_rate;
    case Metric::P99LatencyMs:
      return w.p99_latency_ms;
    case Metric::ThroughputBps:
      return w.throughput_bps;
  }
  return 0.0;
}

void TelemetrySysCond::start() { tick_.start(); }

void TelemetrySysCond::stop() { tick_.stop(); }

}  // namespace aqm::quo

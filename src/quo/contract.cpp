#include "quo/contract.hpp"

#include <cassert>

#include "common/log.hpp"

namespace aqm::quo {

Contract::Contract(sim::Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

Contract& Contract::add_region(std::string region, Predicate predicate) {
  assert(!region.empty());
  regions_.push_back(Region{std::move(region), std::move(predicate)});
  return *this;
}

Contract& Contract::on_enter(const std::string& region, TransitionCallback cb) {
  enter_callbacks_.emplace(region, std::move(cb));
  return *this;
}

Contract& Contract::on_transition(const std::string& from, const std::string& to,
                                  TransitionCallback cb) {
  transition_callbacks_.emplace(std::make_pair(from, to), std::move(cb));
  return *this;
}

Contract& Contract::observe(SysCond& cond) {
  cond.bind_engine(engine_);
  cond.subscribe([this] { eval(); });
  return *this;
}

const std::string& Contract::eval() {
  assert(!regions_.empty() && "contract has no regions");
  // Transition callbacks may set conditions that re-trigger eval();
  // suppress re-entrancy so one outermost eval settles the region.
  if (evaluating_) return current_;
  evaluating_ = true;

  const std::string* selected = nullptr;
  for (const auto& r : regions_) {
    if (!r.predicate || r.predicate()) {
      selected = &r.name;
      break;
    }
  }
  // No region matched: stay where we are.
  if (selected == nullptr) {
    evaluating_ = false;
    return current_;
  }

  if (*selected != current_) {
    const std::string from = current_;
    current_ = *selected;
    history_.emplace_back(engine_.now(), current_);
    AQM_DEBUG() << "contract " << name_ << ": region '" << from << "' -> '" << current_
                << "' at " << engine_.now().seconds() << "s";
    if (obs::TraceRecorder* tr = engine_.tracer_for(obs::TraceCategory::Quo)) {
      if (obs_bound_ != tr) {
        obs_track_ = tr->track("quo:" + name_);
        obs_bound_ = tr;
        region_span_ = 0;
      }
      const TimePoint now = engine_.now();
      // The active region renders as a nestable async span; the transition
      // itself is an instant correlated (by id) with the request/measurement
      // that caused this evaluation, closing the causal chain end to end.
      if (region_span_ != 0) {
        tr->async_end(obs::TraceCategory::Quo, tr->intern("region " + from), obs_track_,
                      now, region_span_);
      }
      region_span_ = tr->next_id();
      tr->async_begin(obs::TraceCategory::Quo, tr->intern("region " + current_),
                      obs_track_, now, region_span_);
      tr->instant(obs::TraceCategory::Quo,
                  tr->intern("transition " + from + "->" + current_), obs_track_, now,
                  tr->current());
    }
    const auto [tb, te] = transition_callbacks_.equal_range({from, current_});
    for (auto it = tb; it != te; ++it) it->second();
    const auto [eb, ee] = enter_callbacks_.equal_range(current_);
    for (auto it = eb; it != ee; ++it) it->second();
  }
  evaluating_ = false;
  return current_;
}

}  // namespace aqm::quo

#include "quo/status_channel.hpp"

#include <cassert>

#include "orb/cdr.hpp"
#include "orb/servant.hpp"

namespace aqm::quo {

std::vector<std::uint8_t> encode_status_report(const StatusReport& report) {
  orb::CdrWriter w;
  w.write_i64(report.sent_at.ns());
  w.write_u32(static_cast<std::uint32_t>(report.values.size()));
  for (const auto& [name, value] : report.values) {
    w.write_string(name);
    w.write_f64(value);
  }
  return w.take();
}

StatusReport decode_status_report(const std::vector<std::uint8_t>& body) {
  orb::CdrReader r(body);
  StatusReport report;
  report.sent_at = TimePoint{r.read_i64()};
  const std::uint32_t n = r.read_u32();
  if (n > 4096) throw orb::MarshalError("unreasonable status-report entry count");
  report.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = r.read_string();
    const double value = r.read_f64();
    report.values.emplace_back(std::move(name), value);
  }
  return report;
}

StatusCollector::StatusCollector(orb::Poa& poa, const std::string& object_id) {
  auto servant = std::make_shared<orb::FunctionServant>(
      microseconds(20), [this](orb::ServerRequest& req) {
        if (req.operation != kStatusReportOp) return;
        apply(decode_status_report(req.body));
        ++received_;
        last_at_ = req.handled_at;
      });
  ref_ = poa.activate_object(object_id, std::move(servant));
}

ValueSysCond& StatusCollector::condition(const std::string& name, double initial) {
  auto it = conditions_.find(name);
  if (it == conditions_.end()) {
    it = conditions_.emplace(name, std::make_unique<ValueSysCond>(name, initial)).first;
  }
  return *it->second;
}

void StatusCollector::apply(const StatusReport& report) {
  for (const auto& [name, value] : report.values) {
    const auto it = conditions_.find(name);
    if (it != conditions_.end()) it->second->update(value);
  }
}

StatusReporter::StatusReporter(orb::OrbEndpoint& orb, orb::ObjectRef collector,
                               Duration period, net::Dscp dscp)
    : orb_(orb),
      stub_(orb, std::move(collector)),
      timer_(orb.engine(), period, [this] { emit(); }) {
  stub_.ref().protocol.dscp = dscp;
}

StatusReporter& StatusReporter::probe(const std::string& name, Probe fn) {
  assert(fn);
  probes_.emplace_back(name, std::move(fn));
  return *this;
}

void StatusReporter::emit() {
  StatusReport report;
  report.sent_at = orb_.engine().now();
  report.values.reserve(probes_.size());
  for (const auto& [name, fn] : probes_) report.values.emplace_back(name, fn());
  ++sent_;
  stub_.oneway(kStatusReportOp, encode_status_report(report));
}

}  // namespace aqm::quo

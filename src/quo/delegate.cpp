#include "quo/delegate.hpp"

namespace aqm::quo {

void Delegate::oneway(const std::string& operation, std::vector<std::uint8_t> body) {
  if (pre_ && pre_(operation, body) == CallAction::Drop) {
    ++dropped_;
    return;
  }
  ++forwarded_;
  stub_.oneway(operation, std::move(body));
}

void Delegate::twoway(const std::string& operation, std::vector<std::uint8_t> body,
                      orb::OrbEndpoint::ResponseCallback cb, Duration timeout) {
  if (pre_ && pre_(operation, body) == CallAction::Drop) {
    ++dropped_;
    return;
  }
  ++forwarded_;
  stub_.twoway(operation, std::move(body),
               [this, operation, cb = std::move(cb)](orb::CompletionStatus status,
                                                     std::vector<std::uint8_t> reply) {
                 if (post_) post_(operation, status);
                 if (cb) cb(status, std::move(reply));
               },
               timeout);
}

}  // namespace aqm::quo

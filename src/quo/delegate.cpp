#include "quo/delegate.hpp"

namespace aqm::quo {

DelegateInterceptor& DelegateInterceptor::install(orb::OrbEndpoint& orb) {
  if (DelegateInterceptor* existing = find(orb)) return *existing;
  return static_cast<DelegateInterceptor&>(
      orb.add_client_interceptor(std::make_unique<DelegateInterceptor>()));
}

DelegateInterceptor* DelegateInterceptor::find(orb::OrbEndpoint& orb) {
  return static_cast<DelegateInterceptor*>(orb.find_client_interceptor(kName));
}

void DelegateInterceptor::bind(net::NodeId node, std::string object_key,
                               Delegate* delegate) {
  bindings_[node].insert_or_assign(std::move(object_key), delegate);
}

void DelegateInterceptor::unbind(net::NodeId node, std::string_view object_key) {
  const auto nit = bindings_.find(node);
  if (nit == bindings_.end()) return;
  const auto bit = nit->second.find(object_key);
  if (bit == nit->second.end()) return;
  nit->second.erase(bit);
  if (nit->second.empty()) bindings_.erase(nit);
}

orb::InterceptStatus DelegateInterceptor::establish(orb::ClientRequestContext& ctx) {
  const auto nit = bindings_.find(ctx.ref->node);
  if (nit == bindings_.end()) return {};
  const auto bit = nit->second.find(std::string_view(ctx.ref->object_key));
  if (bit == nit->second.end()) return {};
  return bit->second->run_establish(ctx);
}

Delegate::Delegate(orb::ObjectStub stub) : stub_(std::move(stub)) {
  DelegateInterceptor::install(stub_.orb())
      .bind(stub_.ref().node, stub_.ref().object_key, this);
}

Delegate::~Delegate() {
  if (DelegateInterceptor* icpt = DelegateInterceptor::find(stub_.orb())) {
    icpt->unbind(stub_.ref().node, stub_.ref().object_key);
  }
}

void Delegate::gate_on_contract(Contract& contract, std::string allowed_region) {
  gate_contract_ = &contract;
  gate_region_ = std::move(allowed_region);
}

void Delegate::clear_contract_gate() {
  gate_contract_ = nullptr;
  gate_region_.clear();
}

orb::InterceptStatus Delegate::run_establish(orb::ClientRequestContext& ctx) {
  if (gate_contract_ != nullptr && gate_contract_->current_region() != gate_region_) {
    ++dropped_;
    return orb::veto(orb::CompletionStatus::Transient);
  }
  if (pre_ && ctx.operation != nullptr && ctx.body != nullptr &&
      pre_(*ctx.operation, *ctx.body) == CallAction::Drop) {
    ++dropped_;
    return orb::veto(orb::CompletionStatus::Transient);
  }
  ++forwarded_;
  return {};
}

void Delegate::oneway(const std::string& operation, std::vector<std::uint8_t> body) {
  stub_.oneway(operation, std::move(body));
}

void Delegate::twoway(const std::string& operation, std::vector<std::uint8_t> body,
                      orb::OrbEndpoint::ResponseCallback cb, Duration timeout) {
  stub_.twoway(operation, std::move(body),
               [this, operation, cb = std::move(cb)](orb::CompletionStatus status,
                                                     std::vector<std::uint8_t> reply) {
                 if (post_) post_(operation, status);
                 if (cb) cb(status, std::move(reply));
               },
               timeout);
}

}  // namespace aqm::quo

#include "quo/qosket.hpp"

#include <cassert>

namespace aqm::quo {

Contract& Qosket::make_contract(sim::Engine& engine, const std::string& contract_name) {
  assert(contracts_.count(contract_name) == 0);
  auto c = std::make_unique<Contract>(engine, contract_name);
  Contract& ref = *c;
  contracts_[contract_name] = std::move(c);
  return ref;
}

Contract* Qosket::contract(const std::string& contract_name) {
  const auto it = contracts_.find(contract_name);
  return it == contracts_.end() ? nullptr : it->second.get();
}

SysCond* Qosket::syscond(const std::string& cond_name) {
  const auto it = sysconds_.find(cond_name);
  return it == sysconds_.end() ? nullptr : it->second.get();
}

}  // namespace aqm::quo

// QuO contracts.
//
// "The operating regions and service requirements of the application are
// encoded in contracts, which describe the possible states the system might
// be in, as well as which actions to perform when the state changes."
//
// A contract is an ordered list of named regions with boolean predicates
// (usually over system condition objects). eval() selects the first region
// whose predicate holds; when the active region changes, transition
// callbacks fire. Contracts subscribe to their conditions so evaluation is
// automatic.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "quo/syscond.hpp"
#include "sim/engine.hpp"

namespace aqm::quo {

class Contract {
 public:
  using Predicate = std::function<bool()>;
  using TransitionCallback = std::function<void()>;

  Contract(sim::Engine& engine, std::string name);
  Contract(const Contract&) = delete;
  Contract& operator=(const Contract&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Appends a region. Order matters: the first region whose predicate is
  /// true wins. A null predicate means "always true" (use for the fallback
  /// region, typically added last).
  Contract& add_region(std::string region, Predicate predicate);

  /// Fires whenever the active region becomes `region`.
  Contract& on_enter(const std::string& region, TransitionCallback cb);

  /// Fires on the specific (from, to) transition.
  Contract& on_transition(const std::string& from, const std::string& to,
                          TransitionCallback cb);

  /// Subscribes this contract to a condition; any change re-evaluates.
  Contract& observe(SysCond& cond);

  /// Evaluates predicates and performs the region change if needed.
  /// Returns the active region after evaluation.
  const std::string& eval();

  [[nodiscard]] const std::string& current_region() const { return current_; }

  /// (time, region) at each region change, including the initial eval.
  [[nodiscard]] const std::vector<std::pair<TimePoint, std::string>>& history() const {
    return history_;
  }
  [[nodiscard]] std::size_t transition_count() const {
    return history_.empty() ? 0 : history_.size() - 1;
  }

 private:
  struct Region {
    std::string name;
    Predicate predicate;
  };

  sim::Engine& engine_;
  std::string name_;
  std::vector<Region> regions_;
  std::string current_;
  std::multimap<std::string, TransitionCallback> enter_callbacks_;
  std::multimap<std::pair<std::string, std::string>, TransitionCallback> transition_callbacks_;
  std::vector<std::pair<TimePoint, std::string>> history_;
  bool evaluating_ = false;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
  std::uint64_t region_span_ = 0;  // open async span for the active region
};

}  // namespace aqm::quo

// QuO system condition objects.
//
// "System condition objects are wrapper facades that provide consistent
// interfaces to infrastructure mechanisms, services, and managers. [They]
// are used to measure and control the states of resources, mechanisms, and
// managers that are relevant to contracts."
//
// A SysCond exposes a scalar value and notifies subscribed contracts when
// it changes. Concrete kinds:
//   * ValueSysCond     — directly settable measurement or knob.
//   * RateSysCond      — windowed event rate (frames/s, bytes/s), evaluated
//                        periodically on the simulation clock.
//   * LambdaSysCond    — pull-through facade over any component getter.
//   * TelemetrySysCond — facade over one flow's TelemetryHub window metric
//                        (miss rate, drop rate, p99 latency, throughput),
//                        polled periodically so contract regions track the
//                        same measured aggregates the feedback control
//                        plane actuates on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "obs/telemetry.hpp"
#include "sim/engine.hpp"

namespace aqm::quo {

class SysCond {
 public:
  using Listener = std::function<void()>;

  virtual ~SysCond() = default;
  SysCond(const SysCond&) = delete;
  SysCond& operator=(const SysCond&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] virtual double value() const = 0;

  /// Contracts subscribe to re-evaluate when the condition changes.
  void subscribe(Listener listener) { listeners_.push_back(std::move(listener)); }

  /// Observability: gives the condition a clock to stamp update instants
  /// with. Called by Contract::observe (and RateSysCond's constructor), so
  /// any observed condition traces automatically when a recorder is
  /// attached to the engine.
  void bind_engine(const sim::Engine& engine) { clock_ = &engine; }

 protected:
  explicit SysCond(std::string name) : name_(std::move(name)) {}

  /// Implementations call this when their value changes.
  void notify() {
    if (clock_ != nullptr) {
      if (obs::TraceRecorder* tr = clock_->tracer_for(obs::TraceCategory::Quo)) {
        if (obs_bound_ != tr) {
          obs_track_ = tr->track("quo:syscond");
          obs_bound_ = tr;
        }
        tr->instant(obs::TraceCategory::Quo, name_.c_str(), obs_track_, clock_->now(),
                    tr->current(), {{"value", value()}});
      }
    }
    for (const auto& l : listeners_) l();
  }

 private:
  std::string name_;
  std::vector<Listener> listeners_;
  const sim::Engine* clock_ = nullptr;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
};

/// A directly settable condition (measurement pushed in, or control knob).
class ValueSysCond final : public SysCond {
 public:
  explicit ValueSysCond(std::string name, double initial = 0.0)
      : SysCond(std::move(name)), value_(initial) {}

  [[nodiscard]] double value() const override { return value_; }

  /// Sets the value; notifies only when it changed.
  void set(double v) {
    if (v == value_) return;
    value_ = v;
    notify();
  }

  /// Sets the value and notifies unconditionally. For conditions fed by
  /// periodic measurements, where "same value again" is itself a signal
  /// (e.g. a delivery counter that stalled during total loss).
  void update(double v) {
    value_ = v;
    notify();
  }

 private:
  double value_;
};

/// Pull-through facade over an arbitrary getter (no change notification of
/// its own; pair with a contract evaluated by other conditions or timers).
class LambdaSysCond final : public SysCond {
 public:
  LambdaSysCond(std::string name, std::function<double()> getter)
      : SysCond(std::move(name)), getter_(std::move(getter)) {}

  [[nodiscard]] double value() const override { return getter_(); }

 private:
  std::function<double()> getter_;
};

/// Windowed rate: record(amount) accumulates events; value() is the amount
/// per second over the trailing window. A periodic tick re-evaluates and
/// notifies so contracts see rate *drops* (not just new events).
class RateSysCond final : public SysCond {
 public:
  RateSysCond(sim::Engine& engine, std::string name, Duration window = seconds(1));

  void record(double amount = 1.0);
  [[nodiscard]] double value() const override;

  void start();
  void stop();

 private:
  void prune(TimePoint now) const;

  sim::Engine& engine_;
  Duration window_;
  mutable std::deque<std::pair<TimePoint, double>> events_;
  sim::PeriodicTimer tick_;
  double last_notified_ = -1.0;
};

/// Observes one flow's measured window aggregate from the TelemetryHub.
/// Each poll period it rolls the flow's window to now, extracts the chosen
/// metric and notifies unconditionally (a steady bad value must keep the
/// contract evaluating, exactly like a stalled delivery counter). Contract
/// regions keyed on this condition see the same numbers the
/// FeedbackScheduler's control law consumes — the paper's "contracts
/// observe the managed resources through system condition objects" closed
/// over the streaming-telemetry plane.
class TelemetrySysCond final : public SysCond {
 public:
  enum class Metric { MissRate, DropRate, P99LatencyMs, ThroughputBps };

  TelemetrySysCond(sim::Engine& engine, obs::TelemetryHub& hub, std::string name,
                   std::uint64_t flow, Metric metric,
                   Duration poll_period = milliseconds(250));

  [[nodiscard]] double value() const override;

  void start();
  void stop();

 private:
  sim::Engine& engine_;
  obs::TelemetryHub& hub_;
  std::uint64_t flow_;
  Metric metric_;
  sim::PeriodicTimer tick_;
};

}  // namespace aqm::quo

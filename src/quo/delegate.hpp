// QuO delegates.
//
// "Delegates are proxies that can be inserted into the path of object
// interactions transparently, but with woven in QoS aware and adaptive
// code. When a method call or return is made, the delegate checks the
// system state, as recorded by a set of contracts, and selects a behavior
// based upon it."
//
// A Delegate wraps an ObjectStub and weaves its in-band behaviors into the
// ORB's invocation pipeline: constructing one installs a per-target
// registration on the client ORB's "quo.delegate" interceptor, so the
// pre-invoke behavior (drop / rewrite / annotate) and the contract gate run
// in the establish phase for EVERY invocation of the target — including
// calls made through other stubs — before any marshal cost is paid.
// Dropped invocations complete with CompletionStatus::Transient. Frame
// filtering in the video pipeline is a pre-invoke behavior; region-based
// call gating (gate_on_contract) is the contract-driven one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "orb/interceptor.hpp"
#include "orb/orb.hpp"
#include "quo/contract.hpp"

namespace aqm::quo {

class Delegate;

/// Decision made by a pre-invoke behavior.
enum class CallAction : std::uint8_t {
  Proceed,  // forward the (possibly rewritten) call
  Drop,     // suppress the call (completes with Transient)
};

/// Pipeline half of the QuO delegate layer: one instance per client ORB
/// (find-or-install by name) routing the establish phase to the Delegate
/// registered for the invocation's target reference.
class DelegateInterceptor final : public orb::ClientRequestInterceptor {
 public:
  static constexpr const char* kName = "quo.delegate";

  [[nodiscard]] const char* name() const override { return kName; }

  static DelegateInterceptor& install(orb::OrbEndpoint& orb);
  [[nodiscard]] static DelegateInterceptor* find(orb::OrbEndpoint& orb);

  void bind(net::NodeId node, std::string object_key, Delegate* delegate);
  void unbind(net::NodeId node, std::string_view object_key);

  orb::InterceptStatus establish(orb::ClientRequestContext& ctx) override;

 private:
  std::map<net::NodeId, std::map<std::string, Delegate*, std::less<>>> bindings_;
};

class Delegate {
 public:
  /// May inspect/rewrite the operation's body; returns whether to forward.
  using PreInvoke = std::function<CallAction(const std::string& op,
                                             std::vector<std::uint8_t>& body)>;
  /// Observes replies (after the ORB's completion callback fires).
  using PostInvoke =
      std::function<void(const std::string& op, orb::CompletionStatus status)>;

  explicit Delegate(orb::ObjectStub stub);
  ~Delegate();
  Delegate(const Delegate&) = delete;
  Delegate& operator=(const Delegate&) = delete;

  [[nodiscard]] orb::ObjectStub& stub() { return stub_; }

  void set_pre_invoke(PreInvoke hook) { pre_ = std::move(hook); }
  void set_post_invoke(PostInvoke hook) { post_ = std::move(hook); }

  /// Contract-driven gating: invocations of the target proceed only while
  /// `contract` is in `allowed_region`; anywhere else they are dropped in
  /// the establish phase. The contract must outlive the delegate.
  void gate_on_contract(Contract& contract, std::string allowed_region);
  void clear_contract_gate();

  void oneway(const std::string& operation, std::vector<std::uint8_t> body);
  void twoway(const std::string& operation, std::vector<std::uint8_t> body,
              orb::OrbEndpoint::ResponseCallback cb, Duration timeout = seconds(2));

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  friend class DelegateInterceptor;
  /// Establish-phase entry, invoked by the ORB's delegate interceptor.
  orb::InterceptStatus run_establish(orb::ClientRequestContext& ctx);

  orb::ObjectStub stub_;
  Contract* gate_contract_ = nullptr;
  std::string gate_region_;
  PreInvoke pre_;
  PostInvoke post_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace aqm::quo

// QuO delegates.
//
// "Delegates are proxies that can be inserted into the path of object
// interactions transparently, but with woven in QoS aware and adaptive
// code. When a method call or return is made, the delegate checks the
// system state, as recorded by a set of contracts, and selects a behavior
// based upon it."
//
// A Delegate wraps an ObjectStub and runs pluggable in-band behaviors
// before the call goes out (drop / rewrite / annotate) and after a reply
// returns. Frame filtering in the video pipeline is a pre-invoke behavior.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "orb/orb.hpp"

namespace aqm::quo {

/// Decision made by a pre-invoke behavior.
enum class CallAction : std::uint8_t {
  Proceed,  // forward the (possibly rewritten) call
  Drop,     // suppress the call entirely
};

class Delegate {
 public:
  /// May inspect/rewrite the operation's body; returns whether to forward.
  using PreInvoke = std::function<CallAction(const std::string& op,
                                             std::vector<std::uint8_t>& body)>;
  /// Observes replies (after the ORB's completion callback fires).
  using PostInvoke =
      std::function<void(const std::string& op, orb::CompletionStatus status)>;

  explicit Delegate(orb::ObjectStub stub) : stub_(std::move(stub)) {}

  [[nodiscard]] orb::ObjectStub& stub() { return stub_; }

  void set_pre_invoke(PreInvoke hook) { pre_ = std::move(hook); }
  void set_post_invoke(PostInvoke hook) { post_ = std::move(hook); }

  void oneway(const std::string& operation, std::vector<std::uint8_t> body);
  void twoway(const std::string& operation, std::vector<std::uint8_t> body,
              orb::OrbEndpoint::ResponseCallback cb, Duration timeout = seconds(2));

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  orb::ObjectStub stub_;
  PreInvoke pre_;
  PostInvoke post_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace aqm::quo

// Distributed system-condition plumbing.
//
// QuO contracts often depend on conditions measured on *other* hosts
// (Figure 1's "Status Collection" path): a receiver knows the delivery
// rate, the sender's contract needs it. A StatusReporter periodically
// pushes a set of named scalar values over the ORB (oneway, low-rate,
// optionally DSCP-marked so reports survive congestion); a StatusCollector
// servant on the consuming host feeds them into ValueSysConds, which
// contracts observe as usual.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "orb/orb.hpp"
#include "quo/syscond.hpp"
#include "sim/engine.hpp"

namespace aqm::quo {

inline constexpr const char* kStatusReportOp = "quo_status_report";

/// Wire codec for a report: sequence of (name, value) pairs plus the
/// sender-side timestamp.
struct StatusReport {
  TimePoint sent_at{};
  std::vector<std::pair<std::string, double>> values;
};

[[nodiscard]] std::vector<std::uint8_t> encode_status_report(const StatusReport& report);
/// Throws orb::MarshalError on malformed input.
[[nodiscard]] StatusReport decode_status_report(const std::vector<std::uint8_t>& body);

/// Consumer side: a servant that updates registered ValueSysConds from
/// incoming reports. Conditions not mentioned in a report are untouched;
/// report entries with no registered condition are ignored.
class StatusCollector {
 public:
  /// Activates the collector servant as `<object_id>` in `poa`.
  StatusCollector(orb::Poa& poa, const std::string& object_id);

  /// Registers (or creates) the condition updated by entries named `name`.
  ValueSysCond& condition(const std::string& name, double initial = 0.0);

  [[nodiscard]] const orb::ObjectRef& ref() const { return ref_; }
  [[nodiscard]] std::uint64_t reports_received() const { return received_; }
  /// Simulation time of the most recent report, if any.
  [[nodiscard]] std::optional<TimePoint> last_report_at() const { return last_at_; }

 private:
  void apply(const StatusReport& report);

  orb::ObjectRef ref_;
  std::map<std::string, std::unique_ptr<ValueSysCond>> conditions_;
  std::uint64_t received_ = 0;
  std::optional<TimePoint> last_at_;
};

/// Producer side: samples named probes on a period and pushes a report.
class StatusReporter {
 public:
  using Probe = std::function<double()>;

  /// Reports travel as oneways to `collector`; `dscp` (default CS6-ish EF)
  /// keeps the control channel alive under data-plane congestion.
  StatusReporter(orb::OrbEndpoint& orb, orb::ObjectRef collector,
                 Duration period = milliseconds(500),
                 net::Dscp dscp = net::dscp::kCs6);

  /// Adds a named probe sampled at every report.
  StatusReporter& probe(const std::string& name, Probe fn);

  void start() { timer_.start(); }
  void stop() { timer_.stop(); }
  [[nodiscard]] bool running() const { return timer_.running(); }
  [[nodiscard]] std::uint64_t reports_sent() const { return sent_; }

 private:
  void emit();

  orb::OrbEndpoint& orb_;
  orb::ObjectStub stub_;
  std::vector<std::pair<std::string, Probe>> probes_;
  sim::PeriodicTimer timer_;
  std::uint64_t sent_ = 0;
};

}  // namespace aqm::quo

// Competing CPU load, as used by the paper's Figure 5 ("increase the CPU
// load to simulate CPU intensive processing") and Table 2 ("the load added
// was variable and not sustained").
//
// The generator submits bursts of CPU work open-loop: burst arrivals follow
// a (fixed or exponential) inter-arrival process and each burst costs a
// randomized amount of CPU time, all at a fixed priority. Seeded, so load
// patterns are reproducible.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "os/cpu.hpp"
#include "sim/engine.hpp"

namespace aqm::os {

class LoadGenerator {
 public:
  struct Config {
    Priority priority = kDefaultPriority;
    Duration burst_mean = milliseconds(20);    // mean CPU cost per burst
    double burst_jitter = 0.5;                 // burst ~ U[mean*(1-j), mean*(1+j)]
    Duration interval_mean = milliseconds(60); // mean time between burst arrivals
    bool exponential_arrivals = true;          // false = fixed interval
    std::uint64_t seed = 1;
  };

  LoadGenerator(sim::Engine& engine, Cpu& cpu, Config config);
  /// Explicit per-trial seed, overriding config.seed. The generator owns a
  /// private Rng (no shared or global stream), so trials seeded identically
  /// produce identical load patterns on any worker thread.
  LoadGenerator(sim::Engine& engine, Cpu& cpu, Config config, std::uint64_t trial_seed);
  ~LoadGenerator() { stop(); }
  LoadGenerator(const LoadGenerator&) = delete;
  LoadGenerator& operator=(const LoadGenerator&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Average fraction of the CPU this generator asks for (mean burst /
  /// mean interval); may exceed what it actually gets under contention.
  [[nodiscard]] double offered_utilization() const;

  [[nodiscard]] std::uint64_t bursts_submitted() const { return bursts_; }
  [[nodiscard]] std::uint64_t bursts_completed() const { return completed_; }

 private:
  void arm_next();
  void emit_burst();

  sim::Engine& engine_;
  Cpu& cpu_;
  Config config_;
  Rng rng_;
  bool running_ = false;
  sim::EventId next_event_{};
  std::uint64_t bursts_ = 0;
  std::uint64_t completed_ = 0;
};

}  // namespace aqm::os

// Simulated single-core CPU with a preemptive fixed-priority scheduler and
// TimeSys-style resource-kernel CPU reserves.
//
// Scheduling model
// ----------------
//  * Work arrives as jobs with a cycle cost, a base priority and an optional
//    attached reserve. The highest effective-priority runnable job runs.
//  * Within one priority level jobs share the CPU round-robin with a
//    configurable quantum (vanilla-Linux-like timesharing). Preemption by a
//    higher priority job is immediate. Setting the quantum to Duration::max()
//    yields SCHED_FIFO run-to-completion semantics.
//  * A reserve guarantees `compute` CPU time every `period` (the TimeSys
//    resource-kernel model [TimeSys:01]). While a reserve has budget, jobs
//    attached to it run in a boosted band above all non-reserved work and
//    deplete the budget 1:1 with CPU time. On exhaustion a *hard* reserve
//    suspends its jobs until the next replenishment; a *soft* reserve lets
//    them continue at their base priority. Budgets replenish to `compute`
//    every `period`.
//  * Reserve admission control enforces sum(C_i/T_i) <= utilization cap.
//
// Scheduling decisions are indexed, not scanned (DESIGN.md §9): runnable
// jobs live in per-effective-priority-level FIFO queues under an ordered
// occupied-level index, reserves keep a membership index of their attached
// jobs, and period boundaries sit in lazily-invalidated min-heaps — so
// submit/complete/cancel cost is independent of the number of pending jobs.
// The original scan-everything implementation is kept verbatim behind
// Config::legacy_scan as a differential oracle (tests/test_cpu_sched_diff
// drives both through randomized workloads and asserts identical traces).
//
// The scheduler records an optional run trace (contiguous slices of which
// job ran at what effective priority) that property tests use to check the
// "no lower-priority job runs while a higher-priority job is runnable"
// invariant and reserve guarantees.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "common/time.hpp"
#include "obs/metrics.hpp"
#include "os/priority.hpp"
#include "sim/engine.hpp"

namespace aqm::os {

using JobId = std::uint64_t;
using ReserveId = std::uint64_t;
inline constexpr ReserveId kNoReserve = 0;

/// Parameters of a CPU reserve: `compute` time guaranteed every `period`.
struct ReserveSpec {
  Duration compute;
  Duration period;
  bool hard = true;

  [[nodiscard]] double utilization() const {
    return static_cast<double>(compute.ns()) / static_cast<double>(period.ns());
  }

  friend bool operator==(const ReserveSpec&, const ReserveSpec&) = default;
};

struct CpuConfig {
  std::uint64_t hz = 1'000'000'000;       // 1 GHz, like the paper's testbed
  Duration quantum = milliseconds(10);    // round-robin slice within a priority
  double reserve_utilization_cap = 0.9;   // admission bound for sum(C/T)
  /// Differential oracle: when true every scheduling decision rescans all
  /// jobs and reserves (the original O(n) implementation). Identical
  /// observable behavior to the indexed scheduler; exists so randomized
  /// tests can diff the two (same pattern as LinkConfig::coalesced_events).
  bool legacy_scan = false;
};

class Cpu {
 public:
  using Config = CpuConfig;

  Cpu(sim::Engine& engine, std::string name, Config config = {});
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // --- job submission -----------------------------------------------------

  /// Submits a job costing `cycles` CPU cycles at `priority`. The completion
  /// callback runs (in simulation time) the instant the job finishes.
  JobId submit(std::uint64_t cycles, Priority priority, std::function<void()> on_complete,
               ReserveId reserve = kNoReserve);

  /// Convenience: submits a job sized so it takes `cpu_time` of pure
  /// execution on this CPU.
  JobId submit_for(Duration cpu_time, Priority priority, std::function<void()> on_complete,
                   ReserveId reserve = kNoReserve);

  /// Cancels a pending or running job (its completion callback never runs).
  /// Returns false if the job already completed or does not exist.
  bool cancel(JobId id);

  /// Changes a job's base priority in place (the primitive priority-
  /// inheritance protocols need). Returns false for unknown jobs.
  bool set_base_priority(JobId id, Priority priority);

  /// Current base priority of a job, if it exists.
  [[nodiscard]] std::optional<Priority> base_priority(JobId id) const;

  // --- reserves -------------------------------------------------------------

  /// Creates a reserve if admission control admits it.
  Result<ReserveId> create_reserve(const ReserveSpec& spec);

  /// Resizes a live reserve in place — the control-plane re-stamp primitive.
  /// Admission re-checks sum(C/T) with the reserve's own old utilization
  /// excluded; on success the current period keeps its phase (period_start
  /// is untouched) and the remaining budget becomes
  /// max(0, new compute - consumed-this-period), so re-applying the same
  /// spec is a no-op (idempotent) and a resize can never mint back budget
  /// the jobs already burned. Attached jobs stay attached throughout: no
  /// detach-reattach, no completion callbacks fire, the ready index is
  /// repaired via reindex_attached.
  Status<std::string> update_reserve(ReserveId id, const ReserveSpec& spec);

  /// Destroys a reserve. Jobs attached to it continue at base priority.
  void destroy_reserve(ReserveId id);

  [[nodiscard]] bool has_reserve(ReserveId id) const { return reserves_.count(id) > 0; }

  /// Remaining budget in the current period (zero for unknown reserves).
  [[nodiscard]] Duration reserve_budget(ReserveId id) const;

  /// Sum of C/T over all live reserves. O(1): the sum is maintained
  /// incrementally on create/destroy (legacy_scan mode recomputes, as the
  /// original did; the two are bit-identical — see DESIGN.md §9).
  [[nodiscard]] double reserved_utilization() const;

  // --- introspection --------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t hz() const { return config_.hz; }
  [[nodiscard]] bool idle() const { return !running_.has_value(); }
  [[nodiscard]] std::size_t job_count() const { return jobs_.size(); }
  /// Jobs runnable right now (pending jobs minus hard-reserve-suspended
  /// ones). O(1) for the indexed scheduler, O(n) under legacy_scan.
  [[nodiscard]] std::size_t runnable_count() const;
  /// Total CPU time spent executing jobs so far.
  [[nodiscard]] Duration busy_time() const;
  /// busy_time / elapsed simulated time (0 if no time has elapsed).
  [[nodiscard]] double utilization() const;
  [[nodiscard]] Duration duration_of(std::uint64_t cycles) const;
  [[nodiscard]] std::uint64_t cycles_for(Duration cpu_time) const;

  /// Effective priority currently executing, if any.
  [[nodiscard]] std::optional<Priority> running_priority() const;

  /// Dumps utilization/busy-time counters into a registry under
  /// "<prefix>.utilization" etc.
  void export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const;

  // --- run trace (for tests) ------------------------------------------------

  struct RunSlice {
    JobId job;
    Priority effective_priority;
    ReserveId reserve;  // kNoReserve if the slice ran unboosted
    bool boosted;
    TimePoint start;
    TimePoint end;
  };
  void enable_trace(bool on) { trace_enabled_ = on; }
  [[nodiscard]] const std::vector<RunSlice>& trace() const { return trace_; }

 private:
  struct Job {
    JobId id = 0;
    std::uint64_t cycles_remaining = 0;
    Priority base_priority = kDefaultPriority;
    ReserveId reserve = kNoReserve;
    std::function<void()> on_complete;
    std::uint64_t queue_rank = 0;  // FIFO order within a priority level
    // Indexed-scheduler placement: which ready-queue level holds the job
    // (meaningless while !in_ready; hard-suspended jobs are in no queue).
    Priority ready_level = 0;
    bool in_ready = false;
  };

  struct Reserve {
    ReserveId id = 0;
    ReserveSpec spec;
    Duration budget = Duration::zero();
    /// Start of the current replenishment period. Budgets refresh lazily:
    /// roll_periods() advances this and resets the budget whenever the
    /// clock has crossed one or more period boundaries. A scheduler wake
    /// event is armed at the next boundary only while jobs are attached,
    /// so an idle reserve generates no simulation events.
    TimePoint period_start{};
  };

  // Effective priority of a job right now; nullopt when not runnable
  // (hard reserve with exhausted budget).
  [[nodiscard]] std::optional<Priority> effective_priority(const Job& job) const;
  [[nodiscard]] bool is_boosted(const Job& job) const;

  /// Engine recorder iff os tracing is on; binds the "cpu:<name>" lane on
  /// first use and caches the binding per recorder. The indexed hot path
  /// only resolves it when an instant is actually emitted.
  [[nodiscard]] obs::TraceRecorder* os_tracer();

  [[nodiscard]] bool indexed() const { return !config_.legacy_scan; }

  // --- ready-queue index (indexed mode only) --------------------------------
  /// FIFO within a level: queue_rank -> job. Ranks are globally unique and
  /// monotonically assigned, so map order == arrival order; reserve state
  /// transitions re-insert jobs at their existing rank, which keeps the
  /// legacy "smallest rank first" tie-break exact even when a demoted job
  /// lands between jobs that were already queued at that level.
  using LevelQueue = std::map<std::uint64_t, JobId>;

  void ready_insert(Job& job);   // no-op (stays out) when not runnable
  void ready_remove(Job& job);   // no-op when not in a queue
  void reindex_job(Job& job) {
    ready_remove(job);
    ready_insert(job);
  }
  /// Recomputes queue placement of every job attached to `id` after a
  /// boost-state transition (exhaust/replenish/create/destroy).
  void reindex_attached(ReserveId id);

  [[nodiscard]] static TimePoint boundary_of(const Reserve& r) {
    return r.period_start + r.spec.period;
  }
  void push_wake(const Reserve& r);

  void charge_running();            // account CPU time of running job up to now()
  void reschedule();                // pick next job, arm completion/limit events
  void complete(JobId id);          // finish a job, fire callback
  void roll_periods();              // lazy budget replenishment
  void arm_reserve_wake();          // wake at the next relevant period boundary
  void clear_pending_events();

  sim::Engine& engine_;
  std::string name_;
  Config config_;

  // Job/reserve ids are handed out sequentially and never iterated on the
  // decision path (the legacy scan's pick is a strict total order on
  // (effective priority, rank), so even its result is hash-order-proof).
  std::unordered_map<JobId, Job> jobs_;
  std::map<ReserveId, Reserve> reserves_;  // ordered: id-order replenish traces
  JobId next_job_id_ = 1;
  ReserveId next_reserve_id_ = 1;
  std::uint64_t next_rank_ = 1;

  // --- indexed-scheduler state (maintained iff !config_.legacy_scan) -------
  /// Occupied effective-priority levels, highest first; levels are erased
  /// when empty so begin() is always the level to run.
  std::map<Priority, LevelQueue, std::greater<Priority>> ready_;
  std::size_t ready_count_ = 0;
  /// Live jobs referencing each reserve id — including ids with no live
  /// reserve (a job may be submitted against a reserve created later; the
  /// legacy scheduler resolves the reserve lazily, so must we).
  std::map<ReserveId, std::set<JobId>> attached_;
  /// Lazily-invalidated min-heaps of (period boundary ns, reserve id). An
  /// entry is stale when the reserve is gone or its boundary moved on; the
  /// wake heap additionally requires attached jobs. Exactly one live
  /// replenish entry exists per reserve (pushed on create and on each
  /// replenish); wake entries are pushed on first attach and on replenish.
  using BoundaryHeap =
      std::priority_queue<std::pair<std::int64_t, ReserveId>,
                          std::vector<std::pair<std::int64_t, ReserveId>>,
                          std::greater<>>;
  BoundaryHeap replenish_heap_;
  BoundaryHeap wake_heap_;
  /// Incremental sum(C/T): += on create; recomputed in id order on destroy
  /// so the value stays bit-identical to a from-scratch summation.
  double reserved_util_sum_ = 0.0;

  std::optional<JobId> running_;
  bool running_boosted_ = false;
  TimePoint run_start_{};
  sim::EventId completion_event_{};
  sim::EventId limit_event_{};      // budget exhaustion or quantum expiry
  sim::EventId reserve_wake_event_{};

  std::int64_t busy_ns_ = 0;
  bool trace_enabled_ = false;
  std::vector<RunSlice> trace_;
  obs::TraceRecorder* obs_bound_ = nullptr;
  std::uint16_t obs_track_ = 0;
};

}  // namespace aqm::os

// Native OS priority model used by the simulated hosts.
//
// Higher value = more important (the RT-CORBA priority-mapping managers in
// orb/rt translate 0..32767 CORBA priorities into this range, mimicking the
// per-OS mappings the paper shows in Figure 2 for QNX/LynxOS/Solaris).
#pragma once

namespace aqm::os {

using Priority = int;

/// Lowest schedulable priority (idle/background work).
inline constexpr Priority kMinPriority = 0;
/// Highest application priority.
inline constexpr Priority kMaxPriority = 255;
/// Default priority for work submitted without an explicit priority.
inline constexpr Priority kDefaultPriority = 100;

}  // namespace aqm::os

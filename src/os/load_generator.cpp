#include "os/load_generator.hpp"

#include <algorithm>
#include <cassert>

namespace aqm::os {

namespace {

LoadGenerator::Config with_seed(LoadGenerator::Config c, std::uint64_t seed) {
  c.seed = seed;
  return c;
}

}  // namespace

LoadGenerator::LoadGenerator(sim::Engine& engine, Cpu& cpu, Config config)
    : engine_(engine), cpu_(cpu), config_(config), rng_(config.seed) {
  assert(config_.burst_mean > Duration::zero());
  assert(config_.interval_mean > Duration::zero());
  assert(config_.burst_jitter >= 0.0 && config_.burst_jitter <= 1.0);
}

LoadGenerator::LoadGenerator(sim::Engine& engine, Cpu& cpu, Config config,
                             std::uint64_t trial_seed)
    : LoadGenerator(engine, cpu, with_seed(config, trial_seed)) {}

void LoadGenerator::start() {
  if (running_) return;
  running_ = true;
  arm_next();
}

void LoadGenerator::stop() {
  if (!running_) return;
  running_ = false;
  if (next_event_.valid()) engine_.cancel(next_event_);
  next_event_ = sim::EventId{};
}

double LoadGenerator::offered_utilization() const {
  return static_cast<double>(config_.burst_mean.ns()) /
         static_cast<double>(config_.interval_mean.ns());
}

void LoadGenerator::arm_next() {
  const double mean_ns = static_cast<double>(config_.interval_mean.ns());
  const double wait_ns = config_.exponential_arrivals
                             ? rng_.exponential(mean_ns)
                             : mean_ns;
  next_event_ = engine_.after(Duration{std::max<std::int64_t>(1, static_cast<std::int64_t>(wait_ns))},
                              [this] {
                                next_event_ = sim::EventId{};
                                if (!running_) return;
                                emit_burst();
                                arm_next();
                              });
}

void LoadGenerator::emit_burst() {
  const double jitter = config_.burst_jitter;
  const double factor = jitter == 0.0 ? 1.0 : rng_.uniform(1.0 - jitter, 1.0 + jitter);
  const auto cost =
      Duration{std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                             static_cast<double>(config_.burst_mean.ns()) * factor))};
  ++bursts_;
  cpu_.submit_for(cost, config_.priority, [this] { ++completed_; });
}

}  // namespace aqm::os

#include "os/cpu.hpp"

#include <algorithm>
#include <cassert>

#include "common/log.hpp"
#include "obs/telemetry.hpp"

namespace aqm::os {
namespace {

// Effective-priority band for reserve-boosted jobs: above every base
// priority, ordered among themselves by base priority.
constexpr Priority kBoostBand = 10'000;

std::uint64_t mul_div(std::uint64_t a, std::uint64_t num, std::uint64_t den) {
  return static_cast<std::uint64_t>(
      static_cast<unsigned __int128>(a) * num / den);
}

std::uint64_t mul_div_ceil(std::uint64_t a, std::uint64_t num, std::uint64_t den) {
  const auto wide = static_cast<unsigned __int128>(a) * num;
  return static_cast<std::uint64_t>((wide + den - 1) / den);
}

}  // namespace

Cpu::Cpu(sim::Engine& engine, std::string name, Config config)
    : engine_(engine), name_(std::move(name)), config_(config) {
  assert(config_.hz > 0);
  assert(config_.quantum > Duration::zero());
  assert(config_.reserve_utilization_cap > 0.0);
}

Duration Cpu::duration_of(std::uint64_t cycles) const {
  return Duration{static_cast<std::int64_t>(mul_div_ceil(cycles, 1'000'000'000ULL, config_.hz))};
}

std::uint64_t Cpu::cycles_for(Duration cpu_time) const {
  assert(cpu_time >= Duration::zero());
  return mul_div_ceil(static_cast<std::uint64_t>(cpu_time.ns()), config_.hz, 1'000'000'000ULL);
}

// --- ready-queue index ------------------------------------------------------

void Cpu::ready_insert(Job& job) {
  assert(!job.in_ready);
  const auto ep = effective_priority(job);
  if (!ep) return;  // hard reserve with exhausted budget: suspended
  ready_[*ep].emplace(job.queue_rank, job.id);
  job.ready_level = *ep;
  job.in_ready = true;
  ++ready_count_;
}

void Cpu::ready_remove(Job& job) {
  if (!job.in_ready) return;
  const auto lit = ready_.find(job.ready_level);
  assert(lit != ready_.end());
  lit->second.erase(job.queue_rank);
  if (lit->second.empty()) ready_.erase(lit);
  job.in_ready = false;
  --ready_count_;
}

void Cpu::reindex_attached(ReserveId id) {
  const auto ait = attached_.find(id);
  if (ait == attached_.end()) return;
  for (const JobId jid : ait->second) {
    const auto it = jobs_.find(jid);
    assert(it != jobs_.end());
    reindex_job(it->second);
  }
}

void Cpu::push_wake(const Reserve& r) {
  wake_heap_.push({boundary_of(r).ns(), r.id});
}

// --- job submission ---------------------------------------------------------

JobId Cpu::submit(std::uint64_t cycles, Priority priority, std::function<void()> on_complete,
                  ReserveId reserve) {
  const JobId id = next_job_id_++;
  Job job;
  job.id = id;
  job.cycles_remaining = cycles;
  job.base_priority = priority;
  job.reserve = reserve;
  job.on_complete = std::move(on_complete);
  job.queue_rank = next_rank_++;
  const auto [it, inserted] = jobs_.emplace(id, std::move(job));
  assert(inserted);
  (void)inserted;
  if (indexed()) {
    if (reserve != kNoReserve) {
      auto& members = attached_[reserve];
      const bool first = members.empty();
      members.insert(id);
      if (first) {
        // First attached job: the wake heap may hold no live entry for this
        // reserve (entries go stale when the set drains), so seed one.
        const auto rit = reserves_.find(reserve);
        if (rit != reserves_.end()) push_wake(rit->second);
      }
    }
    ready_insert(it->second);
  }
  reschedule();
  return id;
}

JobId Cpu::submit_for(Duration cpu_time, Priority priority, std::function<void()> on_complete,
                      ReserveId reserve) {
  return submit(cycles_for(cpu_time), priority, std::move(on_complete), reserve);
}

bool Cpu::cancel(JobId id) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  if (running_ && *running_ == id) {
    charge_running();
    clear_pending_events();
    running_.reset();
  }
  if (indexed()) {
    ready_remove(it->second);
    if (it->second.reserve != kNoReserve) {
      const auto ait = attached_.find(it->second.reserve);
      if (ait != attached_.end()) {
        ait->second.erase(id);
        if (ait->second.empty()) attached_.erase(ait);
      }
    }
  }
  jobs_.erase(it);
  reschedule();
  return true;
}

obs::TraceRecorder* Cpu::os_tracer() {
  obs::TraceRecorder* tr = engine_.tracer_for(obs::TraceCategory::Os);
  if (tr != nullptr && obs_bound_ != tr) {
    obs_track_ = tr->track("cpu:" + name_);
    obs_bound_ = tr;
  }
  return tr;
}

bool Cpu::set_base_priority(JobId id, Priority priority) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  if (it->second.base_priority == priority) return true;
  if (obs::TraceRecorder* tr = os_tracer()) {
    tr->instant(obs::TraceCategory::Os, "priority.change", obs_track_, engine_.now(),
                tr->current(),
                {{"from", static_cast<double>(it->second.base_priority)},
                 {"to", static_cast<double>(priority)}});
  }
  it->second.base_priority = priority;
  if (indexed()) reindex_job(it->second);
  reschedule();
  return true;
}

std::optional<Priority> Cpu::base_priority(JobId id) const {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.base_priority;
}

// --- reserves ---------------------------------------------------------------

Result<ReserveId> Cpu::create_reserve(const ReserveSpec& spec) {
  if (spec.compute <= Duration::zero() || spec.period <= Duration::zero() ||
      spec.compute > spec.period) {
    return Result<ReserveId>::err("invalid reserve spec: need 0 < compute <= period");
  }
  if (reserved_utilization() + spec.utilization() > config_.reserve_utilization_cap) {
    return Result<ReserveId>::err("reserve admission denied: utilization cap exceeded");
  }
  const ReserveId id = next_reserve_id_++;
  Reserve r;
  r.id = id;
  r.spec = spec;
  r.budget = spec.compute;  // starts with a full budget
  r.period_start = engine_.now();
  const auto [rit, inserted] = reserves_.emplace(id, std::move(r));
  assert(inserted);
  (void)inserted;
  reserved_util_sum_ += spec.utilization();
  AQM_DEBUG() << "cpu " << name_ << ": reserve " << id << " admitted ("
              << spec.compute.millis() << "ms/" << spec.period.millis() << "ms)";
  if (obs::TraceRecorder* tr = os_tracer()) {
    tr->instant(obs::TraceCategory::Os, "reserve.admit", obs_track_, engine_.now(),
                tr->current(),
                {{"compute_ms", spec.compute.millis()}, {"period_ms", spec.period.millis()}});
  }
  if (indexed()) {
    replenish_heap_.push({boundary_of(rit->second).ns(), id});
    const auto ait = attached_.find(id);
    if (ait != attached_.end() && !ait->second.empty()) {
      // Jobs submitted against this id before the reserve existed attach
      // now (the legacy scheduler resolves the reserve lazily on scan).
      push_wake(rit->second);
      reindex_attached(id);
    }
  }
  reschedule();
  return id;
}

Status<std::string> Cpu::update_reserve(ReserveId id, const ReserveSpec& spec) {
  if (spec.compute <= Duration::zero() || spec.period <= Duration::zero() ||
      spec.compute > spec.period) {
    return Status<std::string>::err("invalid reserve spec: need 0 < compute <= period");
  }
  const auto it = reserves_.find(id);
  if (it == reserves_.end()) {
    return Status<std::string>::err("unknown reserve");
  }
  Reserve& r = it->second;
  if (r.spec.compute == spec.compute && r.spec.period == spec.period &&
      r.spec.hard == spec.hard) {
    return {};  // idempotent: re-stamping the current spec touches nothing
  }
  // Settle the running slice and any due replenishments under the OLD
  // parameters first, so consumed-budget accounting can't straddle specs.
  reschedule();
  // Admission with the reserve's own old utilization excluded. Summed over
  // reserves_ in id order with the candidate substituted, so the admitted
  // value is bit-identical to a fresh summation (and to legacy_scan).
  double candidate_sum = 0.0;
  for (const auto& [rid, other] : reserves_) {
    candidate_sum += (rid == id ? spec : other.spec).utilization();
  }
  if (candidate_sum > config_.reserve_utilization_cap) {
    return Status<std::string>::err("reserve admission denied: utilization cap exceeded");
  }
  const Duration consumed = std::max(Duration::zero(), r.spec.compute - r.budget);
  r.spec = spec;
  r.budget = std::max(Duration::zero(), spec.compute - consumed);
  reserved_util_sum_ = candidate_sum;
  AQM_DEBUG() << "cpu " << name_ << ": reserve " << id << " re-stamped ("
              << spec.compute.millis() << "ms/" << spec.period.millis() << "ms)";
  if (obs::TraceRecorder* tr = os_tracer()) {
    tr->instant(obs::TraceCategory::Os, "reserve.update", obs_track_, engine_.now(),
                tr->current(),
                {{"compute_ms", spec.compute.millis()}, {"period_ms", spec.period.millis()}});
  }
  if (indexed()) {
    // The boundary moved with the new period: push a fresh replenish entry
    // (the old one goes stale and is skipped lazily) and re-place attached
    // jobs — the resize may have flipped the boost state in either
    // direction (budget gained or clamped to zero).
    replenish_heap_.push({boundary_of(r).ns(), id});
    const auto ait = attached_.find(id);
    if (ait != attached_.end() && !ait->second.empty()) push_wake(r);
    reindex_attached(id);
  }
  reschedule();
  return {};
}

void Cpu::destroy_reserve(ReserveId id) {
  const auto it = reserves_.find(id);
  if (it == reserves_.end()) return;
  reserves_.erase(it);
  // Recompute in id order rather than subtracting: bit-identical to a fresh
  // summation, so float drift can never skew admission. Destroys are rare
  // control-plane events; admissions stay O(1).
  reserved_util_sum_ = 0.0;
  for (const auto& [rid, r] : reserves_) reserved_util_sum_ += r.spec.utilization();
  if (indexed()) {
    // Jobs that referenced the reserve fall back to base priority; heap
    // entries for the dead id are skipped lazily.
    reindex_attached(id);
  }
  reschedule();
}

Duration Cpu::reserve_budget(ReserveId id) const {
  const auto it = reserves_.find(id);
  if (it == reserves_.end()) return Duration::zero();
  const Reserve& r = it->second;
  const TimePoint now = engine_.now();
  Duration budget = r.budget;
  TimePoint period_start = r.period_start;
  // Lazy replenishment view: crossing a boundary refills the budget.
  if (now >= period_start + r.spec.period) {
    const std::int64_t k = (now - period_start).ns() / r.spec.period.ns();
    period_start = period_start + r.spec.period * k;
    budget = r.spec.compute;
  }
  // Account for depletion by the currently running boosted job. The wake
  // event interrupts at boundaries, so the running slice never straddles
  // one by more than scheduling latency.
  if (running_ && running_boosted_) {
    const auto jit = jobs_.find(*running_);
    if (jit != jobs_.end() && jit->second.reserve == id) {
      const TimePoint from = std::max(run_start_, period_start);
      budget = std::max(Duration::zero(), budget - (now - from));
    }
  }
  return budget;
}

double Cpu::reserved_utilization() const {
  if (config_.legacy_scan) {
    double u = 0.0;
    for (const auto& [id, r] : reserves_) u += r.spec.utilization();
    return u;
  }
  return reserved_util_sum_;
}

// --- introspection ----------------------------------------------------------

std::size_t Cpu::runnable_count() const {
  if (config_.legacy_scan) {
    std::size_t n = 0;
    for (const auto& [id, job] : jobs_) {
      if (effective_priority(job)) ++n;
    }
    return n;
  }
  return ready_count_;
}

Duration Cpu::busy_time() const {
  std::int64_t ns = busy_ns_;
  if (running_) ns += (engine_.now() - run_start_).ns();
  return Duration{ns};
}

double Cpu::utilization() const {
  const std::int64_t elapsed = engine_.now().ns();
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(busy_time().ns()) / static_cast<double>(elapsed);
}

void Cpu::export_metrics(obs::MetricsRegistry& reg, std::string_view prefix) const {
  const std::string p(prefix);
  reg.gauge(p + ".utilization").set(utilization());
  reg.gauge(p + ".reserved_utilization").set(reserved_utilization());
  reg.counter(p + ".busy_ns").set(static_cast<std::uint64_t>(busy_time().ns()));
  reg.counter(p + ".reserves").set(reserves_.size());
  reg.counter(p + ".jobs_pending").set(jobs_.size());
  reg.counter(p + ".jobs_runnable").set(runnable_count());
}

std::optional<Priority> Cpu::running_priority() const {
  if (!running_) return std::nullopt;
  const auto it = jobs_.find(*running_);
  if (it == jobs_.end()) return std::nullopt;
  return effective_priority(it->second);
}

std::optional<Priority> Cpu::effective_priority(const Job& job) const {
  if (job.reserve != kNoReserve) {
    const auto it = reserves_.find(job.reserve);
    if (it != reserves_.end()) {
      if (it->second.budget > Duration::zero()) return kBoostBand + job.base_priority;
      if (it->second.spec.hard) return std::nullopt;  // suspended until replenish
    }
  }
  return job.base_priority;
}

bool Cpu::is_boosted(const Job& job) const {
  if (job.reserve == kNoReserve) return false;
  const auto it = reserves_.find(job.reserve);
  return it != reserves_.end() && it->second.budget > Duration::zero();
}

// --- scheduling core --------------------------------------------------------

void Cpu::charge_running() {
  if (!running_) return;
  const auto it = jobs_.find(*running_);
  assert(it != jobs_.end());
  Job& job = it->second;
  const Duration elapsed = engine_.now() - run_start_;
  assert(elapsed >= Duration::zero());
  if (elapsed == Duration::zero()) return;

  const std::uint64_t used = std::min(
      job.cycles_remaining,
      mul_div(static_cast<std::uint64_t>(elapsed.ns()), config_.hz, 1'000'000'000ULL));
  job.cycles_remaining -= used;
  busy_ns_ += elapsed.ns();

  if (running_boosted_) {
    const auto rit = reserves_.find(job.reserve);
    if (rit != reserves_.end()) {
      rit->second.budget = std::max(Duration::zero(), rit->second.budget - elapsed);
      if (rit->second.budget == Duration::zero()) {
        if (obs::TraceRecorder* tr = os_tracer()) {
          tr->instant(obs::TraceCategory::Os, "reserve.deplete", obs_track_,
                      engine_.now(), 0,
                      {{"reserve", static_cast<double>(job.reserve)},
                       {"hard", rit->second.spec.hard ? 1.0 : 0.0}});
        }
        if (obs::TelemetryHub* th = engine_.telemetry()) {
          th->on_reserve_overrun(static_cast<std::uint64_t>(job.reserve),
                                 engine_.now());
        }
        // Boost state flipped: attached jobs drop out of the boost band
        // (hard: out of the ready index entirely until replenishment).
        if (indexed()) reindex_attached(job.reserve);
      }
    }
  }
  if (trace_enabled_) {
    trace_.push_back(RunSlice{job.id,
                              effective_priority(job).value_or(job.base_priority),
                              running_boosted_ ? job.reserve : kNoReserve,
                              running_boosted_, run_start_, engine_.now()});
  }
  run_start_ = engine_.now();
}

void Cpu::clear_pending_events() {
  if (completion_event_.valid()) engine_.cancel(completion_event_);
  if (limit_event_.valid()) engine_.cancel(limit_event_);
  if (reserve_wake_event_.valid()) engine_.cancel(reserve_wake_event_);
  completion_event_ = sim::EventId{};
  limit_event_ = sim::EventId{};
  reserve_wake_event_ = sim::EventId{};
}

void Cpu::roll_periods() {
  const TimePoint now = engine_.now();
  if (config_.legacy_scan) {
    obs::TraceRecorder* tr = os_tracer();
    for (auto& [id, r] : reserves_) {
      if (now < r.period_start + r.spec.period) continue;
      const std::int64_t k = (now - r.period_start).ns() / r.spec.period.ns();
      r.period_start = r.period_start + r.spec.period * k;
      r.budget = r.spec.compute;  // unused budget does not accumulate
      if (tr != nullptr) {
        tr->instant(obs::TraceCategory::Os, "reserve.replenish", obs_track_, now, 0,
                    {{"reserve", static_cast<double>(id)},
                     {"budget_ms", r.budget.millis()}});
      }
    }
    return;
  }

  // Indexed: pop due boundaries off the min-heap; the common case (nothing
  // due) is a single comparison and touches neither reserves nor the tracer.
  if (replenish_heap_.empty() || replenish_heap_.top().first > now.ns()) return;
  std::vector<ReserveId> due;
  while (!replenish_heap_.empty() && replenish_heap_.top().first <= now.ns()) {
    const auto [at_ns, id] = replenish_heap_.top();
    replenish_heap_.pop();
    const auto it = reserves_.find(id);
    if (it == reserves_.end()) continue;                  // destroyed: stale
    if (boundary_of(it->second).ns() != at_ns) continue;  // boundary moved: stale
    due.push_back(id);
  }
  if (due.empty()) return;
  // Replenish in id order so the emitted trace instants match the legacy
  // reserves_-iteration order byte for byte.
  std::sort(due.begin(), due.end());
  obs::TraceRecorder* tr = os_tracer();
  for (const ReserveId id : due) {
    Reserve& r = reserves_.find(id)->second;
    const std::int64_t k = (now - r.period_start).ns() / r.spec.period.ns();
    r.period_start = r.period_start + r.spec.period * k;
    const bool was_exhausted = r.budget == Duration::zero();
    r.budget = r.spec.compute;  // unused budget does not accumulate
    replenish_heap_.push({boundary_of(r).ns(), id});
    const auto ait = attached_.find(id);
    const bool has_jobs = ait != attached_.end() && !ait->second.empty();
    if (has_jobs) {
      push_wake(r);
      // Suspended (hard) and demoted (soft) jobs re-enter the boost band.
      if (was_exhausted) reindex_attached(id);
    }
    if (tr != nullptr) {
      tr->instant(obs::TraceCategory::Os, "reserve.replenish", obs_track_, now, 0,
                  {{"reserve", static_cast<double>(id)},
                   {"budget_ms", r.budget.millis()}});
    }
  }
}

void Cpu::arm_reserve_wake() {
  // Wake the scheduler at the next period boundary of any reserve that has
  // jobs attached, so suspended jobs resume and budgets refresh on time.
  // Idle reserves arm nothing, which keeps the event queue drainable.
  if (config_.legacy_scan) {
    TimePoint next = TimePoint::max();
    for (const auto& [jid, job] : jobs_) {
      if (job.reserve == kNoReserve) continue;
      const auto rit = reserves_.find(job.reserve);
      if (rit == reserves_.end()) continue;
      next = std::min(next, rit->second.period_start + rit->second.spec.period);
    }
    if (next == TimePoint::max()) return;
    reserve_wake_event_ = engine_.at(next, [this] {
      reserve_wake_event_ = sim::EventId{};
      reschedule();
    });
    return;
  }

  // Indexed: the earliest live wake-heap entry IS the next boundary of an
  // attached reserve (entries are pushed on first attach and on every
  // replenish while attached, and a live entry is never popped as stale).
  while (!wake_heap_.empty()) {
    const auto [at_ns, id] = wake_heap_.top();
    const auto rit = reserves_.find(id);
    bool live = rit != reserves_.end() && boundary_of(rit->second).ns() == at_ns;
    if (live) {
      const auto ait = attached_.find(id);
      live = ait != attached_.end() && !ait->second.empty();
    }
    if (!live) {
      wake_heap_.pop();
      continue;
    }
    reserve_wake_event_ = engine_.at(TimePoint{at_ns}, [this] {
      reserve_wake_event_ = sim::EventId{};
      reschedule();
    });
    return;
  }
}

void Cpu::reschedule() {
  charge_running();
  clear_pending_events();
  running_.reset();
  running_boosted_ = false;
  roll_periods();
  arm_reserve_wake();

  // Pick the runnable job with the highest effective priority; FIFO within
  // a level (smallest queue_rank first).
  Job* best = nullptr;
  Priority best_prio = 0;
  if (indexed()) {
    if (!ready_.empty()) {
      const auto& [level, queue] = *ready_.begin();
      assert(!queue.empty());
      best = &jobs_.find(queue.begin()->second)->second;
      best_prio = level;
    }
  } else {
    // Legacy oracle: scan every job. The comparison is a strict total order
    // ((effective priority, unique rank)), so iteration order is irrelevant.
    for (auto& [id, job] : jobs_) {
      const auto ep = effective_priority(job);
      if (!ep) continue;
      if (best == nullptr || *ep > best_prio ||
          (*ep == best_prio && job.queue_rank < best->queue_rank)) {
        best = &job;
        best_prio = *ep;
      }
    }
  }
  if (best == nullptr) return;  // idle

  running_ = best->id;
  running_boosted_ = is_boosted(*best);
  run_start_ = engine_.now();

  const Duration to_completion = duration_of(best->cycles_remaining);

  // The running job may be stopped early by reserve-budget exhaustion or by
  // quantum expiry (round-robin with an equal-priority peer).
  Duration limit = Duration::max();
  if (running_boosted_) {
    limit = reserves_.at(best->reserve).budget;
  }
  if (config_.quantum < Duration::max()) {
    bool has_peer = false;
    if (indexed()) {
      // The running job sits at the front of its level queue; any second
      // entry is an equal-effective-priority peer.
      has_peer = ready_.begin()->second.size() > 1;
    } else {
      for (const auto& [id, job] : jobs_) {
        if (id == best->id) continue;
        const auto ep = effective_priority(job);
        if (ep && *ep == best_prio) {
          has_peer = true;
          break;
        }
      }
    }
    if (has_peer) limit = std::min(limit, config_.quantum);
  }

  if (to_completion <= limit) {
    completion_event_ =
        engine_.after(to_completion, [this, id = best->id] { complete(id); });
  } else {
    limit_event_ = engine_.after(limit, [this] {
      limit_event_ = sim::EventId{};
      // Rotate the interrupted job behind its equal-priority peers, then
      // re-evaluate. Budget exhaustion is picked up by effective_priority()
      // after charge_running() updates the reserve.
      if (running_) {
        const auto it = jobs_.find(*running_);
        if (it != jobs_.end()) {
          if (indexed()) {
            ready_remove(it->second);
            it->second.queue_rank = next_rank_++;
            ready_insert(it->second);
          } else {
            it->second.queue_rank = next_rank_++;
          }
        }
      }
      reschedule();
    });
  }
}

void Cpu::complete(JobId id) {
  completion_event_ = sim::EventId{};
  assert(running_ && *running_ == id);
  charge_running();
  clear_pending_events();
  running_.reset();
  running_boosted_ = false;

  const auto it = jobs_.find(id);
  assert(it != jobs_.end());
  // Completion was scheduled for the exact finish instant; rounding in
  // charge_running() can leave a sub-nanosecond residue of cycles.
  it->second.cycles_remaining = 0;
  auto on_complete = std::move(it->second.on_complete);
  if (indexed()) {
    ready_remove(it->second);
    if (it->second.reserve != kNoReserve) {
      const auto ait = attached_.find(it->second.reserve);
      if (ait != attached_.end()) {
        ait->second.erase(id);
        if (ait->second.empty()) attached_.erase(ait);
      }
    }
  }
  jobs_.erase(it);

  reschedule();
  if (on_complete) on_complete();
}

}  // namespace aqm::os
